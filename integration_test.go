package gnnvault_test

// End-to-end integration tests: each asserts one of the paper's headline
// claims across module boundaries, using the shared trained state from
// bench_helpers_test.go (60-epoch budget on the cora stand-in).

import (
	"testing"

	"gnnvault/internal/attack"
	"gnnvault/internal/core"
	"gnnvault/internal/enclave"
)

// TestClaimProtectionPerformance asserts the Table II claim: the public
// backbone is much worse than the original model, and every rectifier
// design recovers most of the gap.
func TestClaimProtectionPerformance(t *testing.T) {
	ds, orig := trainedOriginal(t)
	pOrg := orig.TestAccuracy(ds.X, ds.Labels, ds.TestMask)
	pBB := benchBB.TestAccuracy(ds.X, ds.Labels, ds.TestMask)
	if pOrg-pBB < 0.10 {
		t.Fatalf("backbone too accurate: p_org %.3f vs p_bb %.3f (need a >10pt gap)", pOrg, pBB)
	}
	for design, vault := range benchVault {
		labels, _, err := vault.Predict(ds.X)
		if err != nil {
			t.Fatalf("%s: %v", design, err)
		}
		correct := 0
		for _, i := range ds.TestMask {
			if labels[i] == ds.Labels[i] {
				correct++
			}
		}
		pRec := float64(correct) / float64(len(ds.TestMask))
		if pRec <= pBB+0.05 {
			t.Errorf("%s: rectifier barely improves on the backbone (%.3f vs %.3f)", design, pRec, pBB)
		}
	}
}

// TestClaimNoEdgeLeakage asserts the Table IV claim: link-stealing AUC on
// GNNVault's observable surface drops to the feature-only baseline while
// the unprotected model leaks heavily.
func TestClaimNoEdgeLeakage(t *testing.T) {
	ds, orig := trainedOriginal(t)
	sample := attack.SamplePairs(ds.Graph, 250, 7)
	aucOrg := attack.Run(orig.Embeddings(ds.X), sample)
	aucGV := attack.Run(benchBB.Embeddings(ds.X), sample)
	for _, m := range attack.Metrics {
		if aucOrg[m]-aucGV[m] < 0.05 {
			t.Errorf("%s: protection gained only %.3f AUC (org %.3f, gv %.3f)",
				m, aucOrg[m]-aucGV[m], aucOrg[m], aucGV[m])
		}
	}
}

// TestClaimEnclaveFeasibility asserts the Fig. 6 claim: every rectifier
// deployment fits the 96 MB EPC with room to spare, and the output is
// label-only.
func TestClaimEnclaveFeasibility(t *testing.T) {
	ds, _ := trainedOriginal(t)
	for design, vault := range benchVault {
		labels, bd, err := vault.Predict(ds.X)
		if err != nil {
			t.Fatalf("%s: %v", design, err)
		}
		if err := core.VerifyLabelOnly(labels, ds.NumClasses); err != nil {
			t.Errorf("%s: %v", design, err)
		}
		if bd.PeakEPCBytes > vault.Enclave.EPCLimit()/2 {
			t.Errorf("%s: peak EPC %d uses more than half the budget", design, bd.PeakEPCBytes)
		}
	}
}

// TestClaimBundleLifecycle asserts the deployment lifecycle works across
// module boundaries: export → import → identical predictions, with the
// sealed sections unreadable outside the measured enclave.
func TestClaimBundleLifecycle(t *testing.T) {
	ds, _ := trainedOriginal(t)
	vault := benchVault[core.Parallel]
	data, err := vault.Export("cora")
	if err != nil {
		t.Skipf("export unavailable for this backbone: %v", err)
	}
	imported, err := core.Import(data, enclave.DefaultCostModel())
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	want, _, err := vault.Predict(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := imported.Predict(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("imported vault diverges at node %d", i)
		}
	}
	// A different enclave build cannot unseal the private sections.
	stranger := enclave.New(enclave.DefaultCostModel(), []byte("other build"))
	sealedParams, _ := vault.SealedArtifacts()
	if _, err := stranger.Unseal(sealedParams); err == nil {
		t.Fatal("foreign enclave unsealed the rectifier")
	}
}

// TestClaimArchitectureGenerality asserts the future-work extension: the
// strategy holds under GraphSAGE and GAT too (trained at test budget).
func TestClaimArchitectureGenerality(t *testing.T) {
	if testing.Short() {
		t.Skip("trains six models")
	}
	ds, _ := trainedOriginal(t)
	for _, conv := range []core.ConvKind{core.ConvSAGE, core.ConvGAT} {
		spec := core.SpecForDataset("cora")
		spec.Conv = conv
		cfg := core.PipelineConfig{
			Spec: spec, Design: core.Series,
			SubKind: "knn", KNNK: 2,
			Train:        core.TrainConfig{Epochs: 40, LR: 0.01, WeightDecay: 5e-4, Seed: 1},
			SkipOriginal: true,
		}
		res := core.RunPipeline(ds, cfg)
		if res.PRec <= res.PBB {
			t.Errorf("%s: Δp = %.3f ≤ 0", conv, res.DeltaP())
		}
	}
}
