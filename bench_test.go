package gnnvault_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation. Each benchmark regenerates its experiment through
// internal/experiments and reports the headline quantities as custom bench
// metrics, so `go test -bench=. -benchmem` reproduces the whole evaluation.
//
// Benchmarks run with a reduced epoch budget (the shapes stabilise well
// before the paper's 200 epochs); cmd/experiments runs the full-budget
// version.

import (
	"testing"

	"gnnvault/internal/core"
	"gnnvault/internal/experiments"
	"gnnvault/internal/substitute"
)

// benchOpts is the reduced-budget configuration shared by all benches.
func benchOpts() experiments.Options {
	return experiments.Options{Epochs: 60, Seed: 1, AttackPairs: 300}
}

func BenchmarkTable1DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table1(benchOpts())
		if len(rows) != 6 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

func BenchmarkTable2Rectifiers(b *testing.B) {
	opts := benchOpts()
	opts.Datasets = []string{"cora"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table2(opts)
		r := rows[0]
		b.ReportMetric(r.POrg*100, "p_org_%")
		b.ReportMetric(r.PBB*100, "p_bb_%")
		b.ReportMetric(r.Designs[core.Parallel].PRec*100, "p_rec_par_%")
		if r.Designs[core.Parallel].PRec <= r.PBB {
			b.Fatal("rectifier did not beat backbone")
		}
	}
}

func BenchmarkTable3Backbones(b *testing.B) {
	opts := benchOpts()
	opts.Datasets = []string{"cora"}
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table3(opts)
		r := rows[0]
		b.ReportMetric(r.Kinds[substitute.KindDNN].PBB*100, "dnn_p_bb_%")
		b.ReportMetric(r.Kinds[substitute.KindRandom].PBB*100, "rand_p_bb_%")
		b.ReportMetric(r.Kinds[substitute.KindKNN].PBB*100, "knn_p_bb_%")
		if r.Kinds[substitute.KindRandom].PBB >= r.Kinds[substitute.KindKNN].PBB {
			b.Fatal("random backbone should be worst")
		}
	}
}

func BenchmarkTable4LinkStealing(b *testing.B) {
	opts := benchOpts()
	opts.Datasets = []string{"cora"}
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Table4(opts)
		var worstOrg, worstGV float64
		for _, r := range rows {
			if r.MOrg > worstOrg {
				worstOrg = r.MOrg
			}
			if r.MGV > worstGV {
				worstGV = r.MGV
			}
		}
		b.ReportMetric(worstOrg, "auc_org")
		b.ReportMetric(worstGV, "auc_gv")
		if worstGV >= worstOrg {
			b.Fatal("GNNVault did not reduce link leakage")
		}
	}
}

func BenchmarkFig4Silhouette(b *testing.B) {
	opts := benchOpts()
	opts.Datasets = []string{"cora"}
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig4(opts)
		last := len(res.RectifierSilhouette) - 1
		b.ReportMetric(res.RectifierSilhouette[last], "sil_rec")
		b.ReportMetric(res.BackboneSilhouette[len(res.BackboneSilhouette)-1], "sil_bb")
	}
}

func BenchmarkFig5Ablation(b *testing.B) {
	opts := benchOpts()
	opts.Datasets = []string{"cora"}
	for i := 0; i < b.N; i++ {
		results, _ := experiments.Fig5(opts)
		res := results[0]
		b.ReportMetric(res.KNNK[1].PRec*100, "knn_k2_p_rec_%")
		b.ReportMetric(res.RandomRatio[len(res.RandomRatio)-1].PRec*100, "rand_200pct_p_rec_%")
	}
}

func BenchmarkFig6Overhead(b *testing.B) {
	opts := benchOpts()
	opts.Datasets = []string{"cora"} // M1 row of Fig. 6
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.Fig6(opts)
		for _, r := range rows {
			if r.Design == core.Series {
				b.ReportMetric(r.OverheadPct, "series_overhead_%")
				b.ReportMetric(float64(r.EnclaveMemBytes)/(1<<20), "series_epc_MB")
			}
			if !r.FitsEPC {
				b.Fatalf("%s/%s rectifier does not fit EPC", r.Model, r.Design)
			}
		}
	}
}

// BenchmarkVaultPredict isolates the deployed inference path (no training
// in the loop): the per-query cost a device would see.
func BenchmarkVaultPredict(b *testing.B) {
	for _, design := range core.Designs {
		b.Run(string(design), func(b *testing.B) {
			ds, vault := deployedVault(b, design)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := vault.Predict(ds.X); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkUnprotectedInference is the Fig. 6 CPU baseline.
func BenchmarkUnprotectedInference(b *testing.B) {
	ds, orig := trainedOriginal(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.UnprotectedInference(orig, ds.X)
	}
}

// BenchmarkExtArchitectures covers the paper's future work: GNNVault with
// GraphSAGE and GAT convolutions.
func BenchmarkExtArchitectures(b *testing.B) {
	opts := benchOpts()
	opts.Datasets = []string{"cora"}
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.ExtArchitectures(opts)
		for _, r := range rows {
			if r.PRec <= r.PBB {
				b.Fatalf("%s: partition strategy failed", r.Conv)
			}
		}
	}
}

// BenchmarkExtLabelOnly is the ablation for the Sec. IV-E label-only
// output rule.
func BenchmarkExtLabelOnly(b *testing.B) {
	opts := benchOpts()
	opts.Datasets = []string{"cora"}
	for i := 0; i < b.N; i++ {
		rows, _ := experiments.ExtLabelOnly(opts)
		b.ReportMetric(rows[1].WorstAUC, "logit_auc")
		b.ReportMetric(rows[2].WorstAUC, "label_auc")
	}
}
