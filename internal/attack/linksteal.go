// Package attack implements the link-stealing attack of He et al. (USENIX
// Security '21) used for the paper's security analysis (Table IV): an
// honest-but-curious attacker observes node embeddings in the untrusted
// world and scores node pairs by embedding similarity, betting that GNN
// message passing makes connected nodes more similar than unconnected ones.
//
// Six distance metrics are evaluated, matching the paper: Euclidean,
// correlation, cosine, Chebyshev, Bray-Curtis, and Canberra. Attack
// strength is reported as ROC-AUC over a balanced sample of edges and
// non-edges; 0.5 means the observations leak nothing.
package attack

import (
	"fmt"
	"math"
	"math/rand"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
	"gnnvault/internal/metrics"
)

// Metric names a pairwise distance on embeddings.
type Metric string

// The six similarity metrics of Table IV.
const (
	Euclidean   Metric = "euclidean"
	Correlation Metric = "correlation"
	Cosine      Metric = "cosine"
	Chebyshev   Metric = "chebyshev"
	BrayCurtis  Metric = "braycurtis"
	Canberra    Metric = "canberra"
)

// Metrics lists all supported metrics in the paper's Table IV order.
var Metrics = []Metric{Euclidean, Correlation, Cosine, Chebyshev, BrayCurtis, Canberra}

// Distance returns the metric distance between two equal-length vectors.
// Smaller means more similar (more likely connected).
func Distance(m Metric, a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("attack: vector length mismatch %d vs %d", len(a), len(b)))
	}
	switch m {
	case Euclidean:
		s := 0.0
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	case Correlation:
		return 1 - pearson(a, b)
	case Cosine:
		return 1 - cosineSim(a, b)
	case Chebyshev:
		mx := 0.0
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > mx {
				mx = d
			}
		}
		return mx
	case BrayCurtis:
		num, den := 0.0, 0.0
		for i := range a {
			num += math.Abs(a[i] - b[i])
			den += math.Abs(a[i] + b[i])
		}
		if den == 0 {
			return 0
		}
		return num / den
	case Canberra:
		s := 0.0
		for i := range a {
			den := math.Abs(a[i]) + math.Abs(b[i])
			if den > 0 {
				s += math.Abs(a[i]-b[i]) / den
			}
		}
		return s
	default:
		panic(fmt.Sprintf("attack: unknown metric %q", m))
	}
}

func cosineSim(a, b []float64) float64 {
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	if n == 0 {
		return 0
	}
	ma, mb := 0.0, 0.0
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	cov, va, vb := 0.0, 0.0, 0.0
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// PairSample is a balanced set of node pairs: every positive is a real
// edge, every negative a verified non-edge.
type PairSample struct {
	Pairs    []graph.Edge
	Positive []bool
}

// SamplePairs draws up to numPos edges (all edges if the graph has fewer)
// and an equal number of uniform non-edges. Deterministic in seed.
func SamplePairs(g *graph.Graph, numPos int, seed int64) PairSample {
	rng := rand.New(rand.NewSource(seed))
	edges := g.UndirectedEdges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	if numPos > len(edges) {
		numPos = len(edges)
	}
	ps := PairSample{}
	for _, e := range edges[:numPos] {
		ps.Pairs = append(ps.Pairs, e)
		ps.Positive = append(ps.Positive, true)
	}
	n := g.N()
	for neg := 0; neg < numPos; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		ps.Pairs = append(ps.Pairs, graph.Edge{U: u, V: v})
		ps.Positive = append(ps.Positive, false)
		neg++
	}
	return ps
}

// AUC runs the attack with one metric on one observation surface: for each
// sampled pair the score is the summed negative distance across all
// observed embedding matrices (the paper's "using all intermediate
// embeddings"), z-scored per matrix so no single layer's scale dominates.
func AUC(m Metric, observations []*mat.Matrix, sample PairSample) float64 {
	if len(observations) == 0 {
		panic("attack: no observations")
	}
	scores := make([]float64, len(sample.Pairs))
	dists := make([]float64, len(sample.Pairs))
	for _, obs := range observations {
		for i, p := range sample.Pairs {
			dists[i] = Distance(m, obs.Row(p.U), obs.Row(p.V))
		}
		sanitizeDists(dists)
		mean, std := meanStd(dists)
		for i := range scores {
			scores[i] -= (dists[i] - mean) / std
		}
	}
	return metrics.ROCAUC(scores, sample.Positive)
}

// sanitizeDists clamps non-finite distances — NaN/±Inf from degenerate
// observations (constant rows, overflowed posteriors) — to one past the
// largest finite distance, so a poisoned pair reads as maximally
// dissimilar instead of propagating NaN into every pair's z-score and
// pushing the reported AUC outside [0,1].
func sanitizeDists(dists []float64) {
	maxFinite, hasFinite := 0.0, false
	for _, d := range dists {
		if !math.IsNaN(d) && !math.IsInf(d, 0) {
			if !hasFinite || d > maxFinite {
				maxFinite, hasFinite = d, true
			}
		}
	}
	for i, d := range dists {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			dists[i] = maxFinite + 1
		}
	}
}

// Run evaluates every metric against the same observation surface and
// sample, producing one Table IV cell set.
func Run(observations []*mat.Matrix, sample PairSample) map[Metric]float64 {
	out := make(map[Metric]float64, len(Metrics))
	for _, m := range Metrics {
		out[m] = AUC(m, observations, sample)
	}
	return out
}

func meanStd(xs []float64) (mean, std float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 1
	}
	for _, v := range xs {
		mean += v
	}
	mean /= n
	for _, v := range xs {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / n)
	if std == 0 {
		std = 1
	}
	return mean, std
}
