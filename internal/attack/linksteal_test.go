package attack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

func TestDistanceEuclidean(t *testing.T) {
	if d := Distance(Euclidean, []float64{0, 0}, []float64{3, 4}); math.Abs(d-5) > 1e-12 {
		t.Fatalf("euclidean = %v, want 5", d)
	}
}

func TestDistanceCosine(t *testing.T) {
	if d := Distance(Cosine, []float64{1, 0}, []float64{1, 0}); math.Abs(d) > 1e-12 {
		t.Fatalf("cosine identical = %v, want 0", d)
	}
	if d := Distance(Cosine, []float64{1, 0}, []float64{0, 1}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("cosine orthogonal = %v, want 1", d)
	}
}

func TestDistanceCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8} // perfectly correlated
	if d := Distance(Correlation, a, b); math.Abs(d) > 1e-12 {
		t.Fatalf("correlation = %v, want 0", d)
	}
	c := []float64{4, 3, 2, 1} // anti-correlated
	if d := Distance(Correlation, a, c); math.Abs(d-2) > 1e-12 {
		t.Fatalf("anti-correlation = %v, want 2", d)
	}
}

func TestDistanceChebyshev(t *testing.T) {
	if d := Distance(Chebyshev, []float64{1, 5, 2}, []float64{2, 1, 2}); d != 4 {
		t.Fatalf("chebyshev = %v, want 4", d)
	}
}

func TestDistanceBrayCurtis(t *testing.T) {
	// |1-3|+|2-2| / |1+3|+|2+2| = 2/8.
	if d := Distance(BrayCurtis, []float64{1, 2}, []float64{3, 2}); math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("braycurtis = %v, want 0.25", d)
	}
	if d := Distance(BrayCurtis, []float64{0, 0}, []float64{0, 0}); d != 0 {
		t.Fatalf("braycurtis zeros = %v", d)
	}
}

func TestDistanceCanberra(t *testing.T) {
	// |1-3|/(1+3) + |0-0|/0(skipped) = 0.5.
	if d := Distance(Canberra, []float64{1, 0}, []float64{3, 0}); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("canberra = %v, want 0.5", d)
	}
}

func TestDistanceMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Distance(Euclidean, []float64{1}, []float64{1, 2})
}

func TestDistanceUnknownMetricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown metric did not panic")
		}
	}()
	Distance(Metric("hamming"), []float64{1}, []float64{1})
}

func TestPropDistanceSymmetricNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 8)
		b := make([]float64, 8)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		for _, m := range Metrics {
			d1 := Distance(m, a, b)
			d2 := Distance(m, b, a)
			if math.Abs(d1-d2) > 1e-9 {
				return false
			}
			// Correlation/cosine/braycurtis can be slightly negative-free;
			// all our metrics are ≥ 0 up to fp error except correlation
			// which lives in [0,2].
			if d1 < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropDistanceIdentityIsMinimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 6)
		for i := range a {
			a[i] = rng.NormFloat64() + 2 // keep away from 0 for canberra
		}
		for _, m := range Metrics {
			if Distance(m, a, a) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSamplePairsBalanced(t *testing.T) {
	g := graph.Random(60, 150, 1)
	s := SamplePairs(g, 80, 2)
	pos, neg := 0, 0
	for i, p := range s.Positive {
		pair := s.Pairs[i]
		if p {
			pos++
			if !g.HasEdge(pair.U, pair.V) {
				t.Fatal("positive pair is not an edge")
			}
		} else {
			neg++
			if g.HasEdge(pair.U, pair.V) {
				t.Fatal("negative pair is an edge")
			}
		}
	}
	if pos != 80 || neg != 80 {
		t.Fatalf("pos=%d neg=%d, want 80/80", pos, neg)
	}
}

func TestSamplePairsClampsToEdgeCount(t *testing.T) {
	g := graph.Random(20, 10, 3)
	s := SamplePairs(g, 1000, 4)
	if len(s.Pairs) != 20 { // 10 pos + 10 neg
		t.Fatalf("pairs = %d, want 20", len(s.Pairs))
	}
}

func TestSamplePairsDeterministic(t *testing.T) {
	g := graph.Random(40, 80, 5)
	a := SamplePairs(g, 50, 6)
	b := SamplePairs(g, 50, 6)
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] || a.Positive[i] != b.Positive[i] {
			t.Fatal("sampling not deterministic")
		}
	}
}

// embeddingsLeaky builds embeddings where connected nodes are near-copies,
// so the attack should succeed; embeddingsOpaque is pure noise.
func embeddingsLeaky(g *graph.Graph, seed int64) *mat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	// Positive-mean like post-ReLU GNN activations.
	emb := mat.RandNormal(rng, n, 8, 1.5, 1)
	// Average each node with its neighbours (one message-passing round)
	// which is exactly why GNN embeddings leak links.
	sm := mat.New(n, 8)
	for u := 0; u < n; u++ {
		row := sm.Row(u)
		copy(row, emb.Row(u))
		for _, v := range g.Neighbors(u) {
			for j, x := range emb.Row(v) {
				row[j] += x
			}
		}
		for j := range row {
			row[j] /= float64(g.Degree(u) + 1)
		}
	}
	return sm
}

func TestAUCDetectsLeakyEmbeddings(t *testing.T) {
	g := graph.Random(100, 250, 7)
	leaky := embeddingsLeaky(g, 7)
	s := SamplePairs(g, 120, 8)
	for _, m := range Metrics {
		auc := AUC(m, []*mat.Matrix{leaky}, s)
		if auc < 0.7 {
			t.Errorf("%s: AUC = %v on leaky embeddings, want > 0.7", m, auc)
		}
	}
}

func TestAUCNearChanceOnNoise(t *testing.T) {
	g := graph.Random(100, 250, 9)
	rng := rand.New(rand.NewSource(10))
	noise := mat.RandNormal(rng, 100, 8, 0, 1)
	s := SamplePairs(g, 120, 11)
	for _, m := range Metrics {
		auc := AUC(m, []*mat.Matrix{noise}, s)
		if auc < 0.35 || auc > 0.65 {
			t.Errorf("%s: AUC = %v on noise, want ≈ 0.5", m, auc)
		}
	}
}

func TestAUCMultiLayerObservations(t *testing.T) {
	g := graph.Random(80, 200, 12)
	leaky := embeddingsLeaky(g, 12)
	rng := rand.New(rand.NewSource(13))
	noise := mat.RandNormal(rng, 80, 8, 0, 1)
	s := SamplePairs(g, 100, 14)
	// Adding a noise layer must not destroy the signal completely.
	auc := AUC(Cosine, []*mat.Matrix{leaky, noise}, s)
	if auc < 0.6 {
		t.Fatalf("multi-layer AUC = %v, want > 0.6", auc)
	}
}

func TestAUCNoObservationsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no observations did not panic")
		}
	}()
	AUC(Cosine, nil, PairSample{})
}

func TestRunAllMetrics(t *testing.T) {
	g := graph.Random(60, 150, 15)
	leaky := embeddingsLeaky(g, 15)
	s := SamplePairs(g, 80, 16)
	res := Run([]*mat.Matrix{leaky}, s)
	if len(res) != len(Metrics) {
		t.Fatalf("got %d metrics, want %d", len(res), len(Metrics))
	}
	for m, auc := range res {
		if auc < 0 || auc > 1 {
			t.Errorf("%s: AUC %v out of range", m, auc)
		}
	}
}
