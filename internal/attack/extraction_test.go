package attack

import (
	"math/rand"
	"testing"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
	"gnnvault/internal/nn"
)

// victimSetup builds a synthetic victim whose logits are a simple linear
// function of class-clustered features, so extraction has a well-defined
// target.
func victimSetup(seed int64) (x *mat.Matrix, g *graph.Graph, logits *mat.Matrix, labels []int) {
	rng := rand.New(rand.NewSource(seed))
	n, d, classes := 150, 12, 3
	x = mat.New(n, d)
	labels = make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		row := x.Row(i)
		for j := range row {
			row[j] = 0.3 * rng.NormFloat64()
		}
		row[c] += 2
	}
	g, _ = graph.PlantedPartition(graph.PlantedPartitionConfig{
		Nodes: n, Classes: classes, AvgDegree: 5, Homophily: 0.9, Seed: seed,
	})
	// Victim logits: strong signal on the true class plus noise.
	logits = mat.New(n, classes)
	for i := 0; i < n; i++ {
		for j := 0; j < classes; j++ {
			v := 0.2 * rng.NormFloat64()
			if j == labels[i] {
				v += 3
			}
			logits.Set(i, j, v)
		}
	}
	return x, g, logits, labels
}

func queryAll(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func TestExtractFromLogitsHighFidelity(t *testing.T) {
	x, g, logits, _ := victimSetup(1)
	cfg := ExtractionConfig{HiddenDims: []int{32}, Epochs: 200, LR: 0.02, Seed: 1}
	mask := queryAll(x.Rows)
	s := ExtractFromLogits(x, g, logits, mask, cfg)
	fid := Fidelity(s.Predict(x), logits.ArgmaxRows(), mask)
	if fid < 0.9 {
		t.Fatalf("logit-distillation fidelity = %v, want > 0.9 on separable victim", fid)
	}
}

func TestExtractFromLabelsWorks(t *testing.T) {
	x, g, logits, _ := victimSetup(2)
	cfg := ExtractionConfig{HiddenDims: []int{32}, Epochs: 200, LR: 0.02, Seed: 2}
	mask := queryAll(x.Rows)
	s := ExtractFromLabels(x, g, logits.ArgmaxRows(), logits.Cols, mask, cfg)
	fid := Fidelity(s.Predict(x), logits.ArgmaxRows(), mask)
	if fid < 0.8 {
		t.Fatalf("hard-label fidelity = %v, want > 0.8 on separable victim", fid)
	}
}

func TestExtractMLPWhenNoGraph(t *testing.T) {
	x, _, logits, _ := victimSetup(3)
	cfg := ExtractionConfig{HiddenDims: []int{16}, Epochs: 60, LR: 0.02, Seed: 3}
	s := ExtractFromLogits(x, nil, logits, queryAll(x.Rows), cfg)
	if _, ok := s.Model.Layers[0].(*nn.Dense); !ok {
		t.Fatal("nil graph should produce an MLP surrogate")
	}
}

func TestFidelity(t *testing.T) {
	if f := Fidelity([]int{1, 2, 3}, []int{1, 0, 3}, []int{0, 1, 2}); f != 2.0/3.0 {
		t.Fatalf("Fidelity = %v", f)
	}
	if f := Fidelity(nil, nil, nil); f != 0 {
		t.Fatalf("empty Fidelity = %v", f)
	}
}

func TestDefaultExtractionConfig(t *testing.T) {
	cfg := DefaultExtractionConfig()
	if cfg.Epochs <= 0 || cfg.LR <= 0 || len(cfg.HiddenDims) == 0 {
		t.Fatalf("bad defaults: %+v", cfg)
	}
}

func TestSoftCrossEntropyGradientSigns(t *testing.T) {
	logits := mat.FromSlice(1, 2, []float64{0, 0})
	targets := mat.FromSlice(1, 2, []float64{1, 0})
	loss, grad := nn.SoftCrossEntropy(logits, targets, []int{0})
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	if grad.At(0, 0) >= 0 || grad.At(0, 1) <= 0 {
		t.Fatalf("gradient signs wrong: %v", grad.Data)
	}
}

func TestSoftCrossEntropyPanics(t *testing.T) {
	cases := map[string]func(){
		"shape":      func() { nn.SoftCrossEntropy(mat.New(1, 2), mat.New(1, 3), []int{0}) },
		"empty mask": func() { nn.SoftCrossEntropy(mat.New(1, 2), mat.New(1, 2), nil) },
		"mask range": func() { nn.SoftCrossEntropy(mat.New(1, 2), mat.New(1, 2), []int{5}) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
