package attack

import (
	"math"
	"testing"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

// FuzzAttackSurface hammers the attack math with degenerate observation
// surfaces — constant embeddings, NaN/Inf posteriors, tied scores, empty
// masks — asserting the invariants the privacy harness relies on: every
// metric's AUC stays a number in [0,1], Distance never returns a panic on
// equal-length rows, and Fidelity never panics and stays in [0,1].
func FuzzAttackSurface(f *testing.F) {
	f.Add(uint8(4), uint8(3), []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11})
	f.Add(uint8(2), uint8(1), []byte{})                     // minimal graph, zero-filled obs
	f.Add(uint8(8), uint8(4), []byte{255, 255, 255, 255})   // NaN/Inf-heavy palette
	f.Add(uint8(6), uint8(2), []byte{7, 7, 7, 7, 7, 7, 7})  // constant rows: all ties
	f.Add(uint8(16), uint8(8), []byte{1, 250, 3, 252, 128}) // mixed finite and poisoned

	// palette maps fuzz bytes to cell values, weighted toward the
	// degenerate cases the satellite task names.
	palette := []float64{
		0, 0, 1, 1, 0.5, -1, 1e300, -1e300, 1e-300,
		math.NaN(), math.Inf(1), math.Inf(-1),
	}
	f.Fuzz(func(t *testing.T, nRaw, dimRaw uint8, cells []byte) {
		// n >= 4: the ring graph below must leave non-edges for
		// SamplePairs' negative draw (a complete graph would spin forever).
		n := 4 + int(nRaw)%13    // [4,16] nodes
		dim := 1 + int(dimRaw)%8 // [1,8] observation width

		obs := mat.New(n, dim)
		for i := 0; i < n; i++ {
			row := obs.Row(i)
			for j := range row {
				if len(cells) > 0 {
					row[j] = palette[int(cells[(i*dim+j)%len(cells)])%len(palette)]
				}
			}
		}

		// A ring graph guarantees edges and non-edges exist for n >= 4.
		edges := make([]graph.Edge, 0, n)
		for i := 0; i < n; i++ {
			edges = append(edges, graph.Edge{U: i, V: (i + 1) % n})
		}
		g := graph.New(n, edges)
		sample := SamplePairs(g, n, int64(nRaw)*31+int64(dimRaw))

		for _, m := range Metrics {
			for _, p := range sample.Pairs {
				d := Distance(m, obs.Row(p.U), obs.Row(p.V)) // must not panic
				_ = d
			}
			auc := AUC(m, []*mat.Matrix{obs}, sample)
			if math.IsNaN(auc) || auc < 0 || auc > 1 {
				t.Fatalf("%s: AUC %v outside [0,1] on %dx%d obs", m, auc, n, dim)
			}
		}

		// Fidelity: tied / degenerate label vectors and empty masks.
		surrogate := make([]int, n)
		victim := make([]int, n)
		for i := range surrogate {
			if len(cells) > 0 {
				surrogate[i] = int(cells[i%len(cells)]) % 4
				victim[i] = int(cells[(i+1)%len(cells)]) % 4
			}
		}
		masks := [][]int{
			nil, {}, {0},
			{sample.Pairs[0].U, sample.Pairs[0].V},
			allNodes(n),
		}
		for _, mask := range masks {
			fid := Fidelity(surrogate, victim, mask) // must not panic
			if math.IsNaN(fid) || fid < 0 || fid > 1 {
				t.Fatalf("Fidelity %v outside [0,1] for mask %v", fid, mask)
			}
		}
	})
}

// allNodes is the full-graph mask.
func allNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
