package attack

import (
	"math/rand"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
	"gnnvault/internal/nn"
)

// Model extraction (the "model steal" arm of the paper's threat model,
// Fig. 1): the attacker queries the deployed model on every node and trains
// a surrogate from the responses. What the deployment exposes determines
// the attack strength:
//
//   - an unprotected deployment answers with logits → the attacker can
//     distil the victim (soft targets carry dark knowledge);
//   - GNNVault answers with labels only → the attacker gets hard targets,
//     and the substitute graph is all the structure they have.
//
// Fidelity — agreement between surrogate and victim predictions on held-out
// nodes — is the standard extraction metric.

// ExtractionConfig parameterises a surrogate-training run.
type ExtractionConfig struct {
	// HiddenDims are the surrogate GCN's hidden widths.
	HiddenDims []int
	// Epochs / LR for Adam.
	Epochs int
	LR     float64
	Seed   int64
}

// DefaultExtractionConfig is a reasonable attacker budget.
func DefaultExtractionConfig() ExtractionConfig {
	return ExtractionConfig{HiddenDims: []int{64, 32}, Epochs: 150, LR: 0.01, Seed: 1}
}

// Surrogate is an extracted model plus its evaluation hooks.
type Surrogate struct {
	Model *nn.Model
}

// Predict returns the surrogate's argmax labels.
func (s *Surrogate) Predict(x *mat.Matrix) []int {
	return s.Model.Forward(x, false).ArgmaxRows()
}

// buildSurrogate assembles the attacker's GCN over the graph they can see
// (the public substitute graph; nil degenerates to an MLP).
func buildSurrogate(rng *rand.Rand, inDim, classes int, hidden []int, public *graph.Graph) *nn.Model {
	dims := append(append([]int{}, hidden...), classes)
	var adj *graph.NormAdjacency
	if public != nil {
		adj = graph.Normalize(public)
	}
	var layers []nn.Layer
	prev := inDim
	for i, d := range dims {
		if adj != nil {
			layers = append(layers, nn.NewGCNConv(rng, prev, d, adj))
		} else {
			layers = append(layers, nn.NewDense(rng, prev, d))
		}
		if i < len(dims)-1 {
			layers = append(layers, nn.NewReLU())
		}
		prev = d
	}
	return nn.NewModel(layers...)
}

// ExtractFromLogits trains a surrogate by distilling the victim's exposed
// logits (softened to probabilities) on the query nodes — the attack an
// unprotected deployment permits.
func ExtractFromLogits(x *mat.Matrix, public *graph.Graph, victimLogits *mat.Matrix, queryMask []int, cfg ExtractionConfig) *Surrogate {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := buildSurrogate(rng, x.Cols, victimLogits.Cols, cfg.HiddenDims, public)
	targets := nn.Softmax(victimLogits)
	opt := nn.NewAdam(cfg.LR, 0)
	for e := 0; e < cfg.Epochs; e++ {
		out := m.Forward(x, true)
		_, dOut := nn.SoftCrossEntropy(out, targets, queryMask)
		m.Backward(dOut)
		opt.Step(m.Params())
	}
	return &Surrogate{Model: m}
}

// ExtractFromLabels trains a surrogate from hard label responses only —
// all a GNNVault deployment gives the attacker.
func ExtractFromLabels(x *mat.Matrix, public *graph.Graph, victimLabels []int, classes int, queryMask []int, cfg ExtractionConfig) *Surrogate {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := buildSurrogate(rng, x.Cols, classes, cfg.HiddenDims, public)
	opt := nn.NewAdam(cfg.LR, 0)
	for e := 0; e < cfg.Epochs; e++ {
		out := m.Forward(x, true)
		_, dOut := nn.MaskedCrossEntropy(out, victimLabels, queryMask)
		m.Backward(dOut)
		opt.Step(m.Params())
	}
	return &Surrogate{Model: m}
}

// Fidelity returns the fraction of nodes in mask where the surrogate
// reproduces the victim's prediction — the extraction success metric.
func Fidelity(surrogate, victim []int, mask []int) float64 {
	if len(mask) == 0 {
		return 0
	}
	agree := 0
	for _, i := range mask {
		if surrogate[i] == victim[i] {
			agree++
		}
	}
	return float64(agree) / float64(len(mask))
}
