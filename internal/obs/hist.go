package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// numBuckets covers every non-negative int64 at power-of-two resolution:
// bucket 0 holds the value 0, bucket i (i ≥ 1) holds [2^(i-1), 2^i).
const numBuckets = 64

// Histogram is a fixed-bucket log₂-scale histogram of non-negative
// values (latencies in ns, byte counts). Observe is an index computation
// plus three atomic ops — no per-sample allocation ever — and quantiles
// are derived from the buckets at snapshot time, so p50/p95/p99 cost
// nothing until someone asks. The zero value is ready to use and the
// struct embeds directly into hot-path owners (no pointer indirection).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Uint64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	return bits.Len64(uint64(v)) // 0 → 0, [2^(i-1), 2^i) → i
}

// Observe records one sample. Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Snapshot copies the histogram state for reading. Concurrent Observe
// calls may land between field reads; derived statistics (Avg, Quantile)
// clamp against Max so a snapshot can never report avg > max.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     int64
	Max     int64
	Buckets [numBuckets]uint64
}

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1)
	}
	return (int64(1) << i) - 1
}

// Avg returns the mean sample, clamped to Max (concurrent observes can
// skew Sum ahead of Max inside one snapshot; the clamp keeps the
// reported pair consistent).
func (s *HistSnapshot) Avg() int64 {
	if s.Count == 0 {
		return 0
	}
	avg := s.Sum / int64(s.Count)
	if avg > s.Max {
		avg = s.Max
	}
	return avg
}

// Quantile returns the q-th (0 < q ≤ 1) sample quantile at the ceiling
// rank — the smallest rank r with r/Count ≥ q, so p99 of two samples is
// the larger one — linearly interpolated inside the bucket holding that
// rank and clamped to the observed Max. Quantile(1) is exactly Max and
// every quantile of a one-bucket histogram stays inside that bucket's
// bounds.
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := int64(0)
			if i > 0 {
				lo = int64(1) << (i - 1)
			}
			hi := BucketUpper(i)
			// Position of the target rank inside this bucket.
			frac := float64(rank-cum) / float64(n)
			v := lo + int64(frac*float64(hi-lo))
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		cum += n
	}
	return s.Max
}

// Merge returns the bucket-wise union of two snapshots — how the serving
// layer derives one overall latency distribution from its per-endpoint
// histograms without a second recording path.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	if o.Max > out.Max {
		out.Max = o.Max
	}
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	return out
}
