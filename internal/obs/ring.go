package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Ring is the live Recorder: a preallocated circular span buffer. Record
// overwrites the oldest span once the buffer is full, so a long-running
// server always holds the most recent window of activity — the flight
// recorder model. Recording takes a mutex (spans are multi-word structs;
// a lock is the race-free way to publish them to readers) but never
// allocates; at serving rates of ~10 spans per millisecond-scale query
// the lock is far below measurement noise, which the obs overhead gate
// (BENCH_obs.json) holds at ≤5%.
type Ring struct {
	start time.Time
	ids   atomic.Uint64

	mu    sync.Mutex
	spans []Span
	n     uint64 // total spans ever recorded
}

// NewRing preallocates a recorder holding the last capacity spans
// (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{start: time.Now(), spans: make([]Span, capacity)}
}

// Enabled reports true: a Ring always records.
func (r *Ring) Enabled() bool { return true }

// NewSpan returns a fresh non-zero span ID.
func (r *Ring) NewSpan() uint64 { return r.ids.Add(1) }

// Clock returns ns since the ring was created.
func (r *Ring) Clock() int64 { return int64(time.Since(r.start)) }

// Record stores one span, overwriting the oldest when full.
func (r *Ring) Record(s Span) {
	r.mu.Lock()
	r.spans[r.n%uint64(len(r.spans))] = s
	r.n++
	r.mu.Unlock()
}

// Cap returns the ring's span capacity.
func (r *Ring) Cap() int { return len(r.spans) }

// Len returns how many spans the ring currently holds.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < uint64(len(r.spans)) {
		return int(r.n)
	}
	return len(r.spans)
}

// Last returns the most recent n spans in recording order (oldest
// first). It allocates the result — a cold-path (debug endpoint) call.
func (r *Ring) Last(n int) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	held := uint64(len(r.spans))
	if r.n < held {
		held = r.n
	}
	if n <= 0 || uint64(n) > held {
		n = int(held)
	}
	out := make([]Span, n)
	for i := 0; i < n; i++ {
		idx := (r.n - uint64(n) + uint64(i)) % uint64(len(r.spans))
		out[i] = r.spans[idx]
	}
	return out
}
