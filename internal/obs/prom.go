package obs

import (
	"fmt"
	"io"
)

// Hand-rolled Prometheus text exposition (format version 0.0.4). The
// metric owners call these helpers from their scrape handlers; there is
// no registry and no client library — a metric line is just a name, an
// ordered label list and a value.

// Label is one name="value" pair; samples carry an ordered list of them.
type Label struct {
	Name, Value string
}

// WriteHeader emits the # HELP / # TYPE preamble for a metric family.
// Call it once per family, before the family's samples.
func WriteHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteSample emits one sample line.
func WriteSample(w io.Writer, name string, labels []Label, value float64) {
	writeName(w, name, labels, "")
	fmt.Fprintf(w, " %g\n", value)
}

// WriteHistogram emits a snapshot as a Prometheus histogram: cumulative
// le buckets at the power-of-two upper bounds (empty buckets elided,
// +Inf always present), then _sum and _count. scale converts recorded
// units to exposed units — 1e-9 turns nanosecond samples into the
// seconds Prometheus conventions expect.
func WriteHistogram(w io.Writer, name string, labels []Label, s HistSnapshot, scale float64) {
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		writeName(w, name+"_bucket", labels, fmt.Sprintf("%g", float64(BucketUpper(i))*scale))
		fmt.Fprintf(w, " %d\n", cum)
	}
	writeName(w, name+"_bucket", labels, "+Inf")
	fmt.Fprintf(w, " %d\n", s.Count)
	writeName(w, name+"_sum", labels, "")
	fmt.Fprintf(w, " %g\n", float64(s.Sum)*scale)
	writeName(w, name+"_count", labels, "")
	fmt.Fprintf(w, " %d\n", s.Count)
}

// writeName emits `name{labels...}` with le appended when non-empty.
// Label values go through %q, which produces exactly the \\, \" and \n
// escapes the exposition format requires.
func writeName(w io.Writer, name string, labels []Label, le string) {
	io.WriteString(w, name) //nolint:errcheck
	if len(labels) == 0 && le == "" {
		return
	}
	sep := "{"
	for _, l := range labels {
		fmt.Fprintf(w, "%s%s=%q", sep, l.Name, l.Value)
		sep = ","
	}
	if le != "" {
		fmt.Fprintf(w, "%sle=%q", sep, le)
		sep = ","
	}
	io.WriteString(w, "}") //nolint:errcheck
}
