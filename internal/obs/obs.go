// Package obs is the flight recorder behind every GNNVault serving
// surface: a zero-alloc-on-hot-path telemetry core of atomic counters,
// gauges and fixed-bucket log-scale histograms, plus a preallocated
// ring-buffer span recorder that captures where inside a query time and
// bytes go (expand → induce → ECALL → per-op tiles → spill).
//
// Everything here is built so the instrumented hot paths keep their
// 0 allocs/op invariant: counters and histograms are arrays of atomics
// (recording is an index computation and an atomic add), spans are plain
// structs of scalars written into a preallocated ring, and the Recorder
// interface has a no-op default so uninstrumented deployments pay one
// predictable-branch interface call per probe and nothing else. Outputs
// are bit-identical whether telemetry is on or off — the recorder only
// ever observes, never participates.
//
// The package deliberately has no registration framework and no external
// dependencies: metric owners (internal/serve) hold their counters and
// histograms directly and render them with the hand-rolled Prometheus
// text helpers in prom.go.
package obs

import "sync/atomic"

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, residency). The
// zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// SpanKind names what a recorded span measures. Query kinds are trace
// roots; the rest nest under them.
type SpanKind uint8

// The span vocabulary, mirroring the stages of the two serving paths:
// a full-graph query is backbone → ECALL(ops); a node query is expand →
// induce(public) → backbone → ECALL(induce(private) + ops). Plan and
// evict spans come from the registry's workspace scheduler.
const (
	SpanQuery         SpanKind = iota + 1 // full-graph predict, trace root
	SpanNodeQuery                         // subgraph predict_nodes, trace root
	SpanExpand                            // L-hop frontier expansion (normal world)
	SpanInduce                            // public sub-CSR induction (normal world)
	SpanBackbone                          // backbone forward (normal world)
	SpanECall                             // modelled enclave transition + in-enclave work
	SpanInducePrivate                     // private sub-CSR induction (inside the ECALL)
	SpanOp                                // one executor op (see Span.Op)
	SpanPlan                              // registry cold-start workspace plan
	SpanEvict                             // registry LRU eviction
	SpanFault                             // shard enclave lost / breaker tripped (Rows = shard)
	SpanRecover                           // shard recovered and rejoined (Rows = shard, Dur = outage)
)

// String names the span kind for trace output.
func (k SpanKind) String() string {
	switch k {
	case SpanQuery:
		return "query"
	case SpanNodeQuery:
		return "node_query"
	case SpanExpand:
		return "expand"
	case SpanInduce:
		return "induce"
	case SpanBackbone:
		return "backbone"
	case SpanECall:
		return "ecall"
	case SpanInducePrivate:
		return "induce_private"
	case SpanOp:
		return "op"
	case SpanPlan:
		return "plan"
	case SpanEvict:
		return "evict"
	case SpanFault:
		return "fault"
	case SpanRecover:
		return "recover"
	default:
		return "unknown"
	}
}

// Span is one completed measurement. All fields are scalars so recording
// a span can never allocate. Trace is the root span's ID (every span of
// one query shares it), Parent links the tree, and ID is non-zero only
// for spans that other spans reference as a parent.
type Span struct {
	Trace  uint64
	ID     uint64
	Parent uint64
	Kind   SpanKind
	Op     uint8 // exec.OpKind for SpanOp spans
	Rows   int32 // batch height the span processed
	Tiles  int32 // tile count for SpanOp spans (1 when direct)
	Bytes  int64 // boundary bytes: ECALL payload+spill, or per-op tile flush
	Start  int64 // ns since the recorder started
	Dur    int64 // ns
}

// Recorder is the span-recording interface instrumentation compiles
// against. The hot paths hold a Recorder and probe it per stage; the
// no-op implementation (Nop) keeps those probes at one interface call
// each, preserving 0 allocs/op and bit-identical outputs, while a *Ring
// captures real spans.
type Recorder interface {
	// Enabled reports whether Record does anything; instrumentation
	// skips its timing work entirely when false.
	Enabled() bool
	// NewSpan allocates a fresh span ID (0 when disabled). The first
	// span ID of a query doubles as its trace ID.
	NewSpan() uint64
	// Clock returns ns since the recorder started (0 when disabled);
	// span Start fields are stamped against it.
	Clock() int64
	// Record stores one completed span. Implementations must not retain
	// anything beyond copying the value, and must not allocate.
	Record(s Span)
}

// nop is the disabled Recorder.
type nop struct{}

func (nop) Enabled() bool   { return false }
func (nop) NewSpan() uint64 { return 0 }
func (nop) Clock() int64    { return 0 }
func (nop) Record(Span)     {}

// Nop is the no-op Recorder every instrumented component defaults to.
var Nop Recorder = nop{}
