package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the bucket mapping at the exact
// power-of-two edges: 2^i-1 and 2^i must land in adjacent buckets, and
// zero in bucket 0.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4},
		{1023, 10}, {1024, 11},
		{(1 << 40) - 1, 40}, {1 << 40, 41},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
		if c.v > 0 {
			lo := int64(1) << (bucketOf(c.v) - 1)
			if c.v < lo || c.v > BucketUpper(bucketOf(c.v)) {
				t.Errorf("value %d outside its bucket bounds [%d, %d]", c.v, lo, BucketUpper(bucketOf(c.v)))
			}
		}
	}
	if BucketUpper(0) != 0 {
		t.Errorf("BucketUpper(0) = %d, want 0", BucketUpper(0))
	}
	if BucketUpper(3) != 7 {
		t.Errorf("BucketUpper(3) = %d, want 7", BucketUpper(3))
	}
}

// TestHistogramQuantiles checks quantile extraction against a known
// distribution: quantiles must be monotone in q, land inside the bucket
// holding the target rank, and clamp to the exact observed Max at the
// top.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 samples in [8, 15] (bucket 4), 9 in [1024, 2047] (bucket 11),
	// one exact max at 5000 (bucket 13).
	for i := 0; i < 90; i++ {
		h.Observe(8 + int64(i%8))
	}
	for i := 0; i < 9; i++ {
		h.Observe(1024 + int64(i*100))
	}
	h.Observe(5000)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d, want 100", s.Count)
	}
	if p50 := s.Quantile(0.50); p50 < 8 || p50 > 15 {
		t.Errorf("p50 = %d, want within [8, 15]", p50)
	}
	if p95 := s.Quantile(0.95); p95 < 1024 || p95 > 2047 {
		t.Errorf("p95 = %d, want within [1024, 2047]", p95)
	}
	if p100 := s.Quantile(1); p100 != 5000 {
		t.Errorf("p100 = %d, want exactly the max 5000", p100)
	}
	if s.Quantile(0.5) > s.Quantile(0.95) || s.Quantile(0.95) > s.Quantile(0.99) {
		t.Error("quantiles not monotone in q")
	}
	if avg := s.Avg(); avg > s.Max {
		t.Errorf("avg %d > max %d", avg, s.Max)
	}
}

// TestHistogramSingleSample pins the degenerate cases: every quantile of
// a one-sample histogram is that sample, and an empty histogram reports
// zeros.
func TestHistogramSingleSample(t *testing.T) {
	var empty Histogram
	es := empty.Snapshot()
	if es.Quantile(0.99) != 0 || es.Avg() != 0 {
		t.Error("empty histogram must report zero quantiles and avg")
	}

	var h Histogram
	h.Observe(777)
	s := h.Snapshot()
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 777 {
			t.Errorf("Quantile(%g) = %d, want 777 (max-clamped single sample)", q, got)
		}
	}
	if s.Avg() != 777 {
		t.Errorf("Avg = %d, want 777", s.Avg())
	}
}

// TestHistogramMerge checks the per-endpoint → overall union the serving
// stats derive.
func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(10)
	a.Observe(20)
	b.Observe(3000)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 3 || m.Sum != 3030 || m.Max != 3000 {
		t.Fatalf("merge = count %d sum %d max %d, want 3/3030/3000", m.Count, m.Sum, m.Max)
	}
	if p100 := m.Quantile(1); p100 != 3000 {
		t.Errorf("merged p100 = %d, want 3000", p100)
	}
}

// TestRingWraparound fills a small ring past capacity and checks Last
// returns the newest spans in order.
func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 10; i++ {
		r.Record(Span{Trace: uint64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	got := r.Last(0)
	if len(got) != 4 {
		t.Fatalf("Last(0) returned %d spans, want 4", len(got))
	}
	for i, s := range got {
		if want := uint64(7 + i); s.Trace != want {
			t.Errorf("span %d trace %d, want %d", i, s.Trace, want)
		}
	}
	if last := r.Last(2); len(last) != 2 || last[1].Trace != 10 {
		t.Errorf("Last(2) = %v, want the two newest", last)
	}
}

// TestRingConcurrent hammers Record/Last/NewSpan under -race.
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := r.NewSpan()
				r.Record(Span{Trace: id, ID: id, Start: r.Clock()})
				if i%50 == 0 {
					r.Last(16)
				}
			}
		}()
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want full ring 64", r.Len())
	}
}

// TestNopRecorder pins the disabled recorder's contract: no IDs, no
// clock, Enabled false.
func TestNopRecorder(t *testing.T) {
	if Nop.Enabled() || Nop.NewSpan() != 0 || Nop.Clock() != 0 {
		t.Fatal("Nop recorder must be inert")
	}
	Nop.Record(Span{}) // must not panic
}

// TestWriteHistogramExposition checks the hand-rolled Prometheus text:
// cumulative buckets, +Inf, _sum/_count, and label escaping.
func TestWriteHistogramExposition(t *testing.T) {
	var h Histogram
	h.Observe(3)
	h.Observe(3)
	h.Observe(100)
	var b strings.Builder
	WriteHeader(&b, "x_seconds", "histogram", "test family")
	WriteHistogram(&b, "x_seconds", []Label{{"vault", "cora/parallel"}}, h.Snapshot(), 1)
	out := b.String()
	for _, want := range []string{
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{vault="cora/parallel",le="3"} 2`,
		`x_seconds_bucket{vault="cora/parallel",le="127"} 3`,
		`x_seconds_bucket{vault="cora/parallel",le="+Inf"} 3`,
		`x_seconds_sum{vault="cora/parallel"} 106`,
		`x_seconds_count{vault="cora/parallel"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestCounterGauge smoke-tests the scalar primitives.
func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Load() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Load())
	}
}
