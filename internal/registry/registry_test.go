package registry

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/substitute"
)

// Shared trained model state: every test deploys fresh vaults (cheap) from
// one trained backbone+rectifier pair (expensive).
var (
	regOnce    sync.Once
	regDS      *datasets.Dataset
	regBB      *core.Backbone
	regRec     *core.Rectifier
	regPersist int64 // persistent EPC per deployed vault
	regWSBytes int64 // EPC per planned workspace
)

func trained(t testing.TB) {
	t.Helper()
	regOnce.Do(func() {
		regDS = datasets.Load("cora")
		cfg := core.TrainConfig{Epochs: 10, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
		spec := core.SpecForDataset("cora")
		regBB = core.TrainBackbone(regDS, spec, substitute.KindKNN, substitute.KNN(regDS.X, 2), cfg)
		regRec = core.TrainRectifier(regDS, regBB, core.Parallel, cfg)
		// Measure the two EPC quanta on a throwaway roomy deployment.
		v, err := core.Deploy(regBB, regRec, regDS.Graph, enclave.DefaultCostModel())
		if err != nil {
			panic(err)
		}
		regPersist = v.PersistentBytes()
		ws, err := v.Plan(v.Nodes())
		if err != nil {
			panic(err)
		}
		regWSBytes = ws.EnclaveBytes()
		ws.Release()
	})
}

// newFleet deploys n vaults (sharing the trained backbone/rectifier) into
// one enclave whose EPC fits every vault's persistent state plus exactly
// `admit` planned workspaces, and registers them as v0…v(n-1).
func newFleet(t testing.TB, n, admit int, cfg Config) (*enclave.Enclave, *Registry, []string) {
	t.Helper()
	trained(t)
	cost := enclave.DefaultCostModel()
	cost.EPCBytes = int64(n)*regPersist + int64(admit)*regWSBytes + regWSBytes/2
	encl := enclave.New(cost, regRec.Identity())
	reg := New(encl, cfg)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = "v" + string(rune('0'+i))
		v, err := core.DeployInto(encl, regBB, regRec, regDS.Graph)
		if err != nil {
			t.Fatalf("deploy %s: %v", ids[i], err)
		}
		if err := reg.Register(ids[i], v); err != nil {
			t.Fatalf("register %s: %v", ids[i], err)
		}
	}
	return encl, reg, ids
}

// serveOne acquires, predicts, and releases one request for id.
func serveOne(t testing.TB, reg *Registry, id string) {
	t.Helper()
	v, ws, err := reg.Acquire(id)
	if err != nil {
		t.Fatalf("acquire %s: %v", id, err)
	}
	if _, _, err := v.PredictInto(regDS.X, ws); err != nil {
		t.Fatalf("predict %s: %v", id, err)
	}
	reg.Release(id, ws)
}

func TestRegistryLazyPlanAndHotReuse(t *testing.T) {
	_, reg, ids := newFleet(t, 2, 4, Config{})
	defer reg.Close()

	serveOne(t, reg, ids[0])
	serveOne(t, reg, ids[0]) // hot: must reuse the cached workspace
	serveOne(t, reg, ids[1])

	st := reg.Stats()
	if st.Requests != 3 || st.Plans != 2 || st.Evictions != 0 {
		t.Fatalf("requests/plans/evictions = %d/%d/%d, want 3/2/0",
			st.Requests, st.Plans, st.Evictions)
	}
	if st.Resident != 2 {
		t.Fatalf("resident %d, want 2", st.Resident)
	}
	if got := st.PerVault[0]; got.ID != ids[0] || got.Requests != 2 || got.Plans != 1 {
		t.Fatalf("per-vault stats for %s: %+v", ids[0], got)
	}
	if st.EPCFree != st.EPCLimit-st.EPCUsed {
		t.Fatalf("EPCFree %d != limit %d - used %d", st.EPCFree, st.EPCLimit, st.EPCUsed)
	}
}

func TestRegistryRegisterValidation(t *testing.T) {
	_, reg, ids := newFleet(t, 1, 2, Config{})
	defer reg.Close()
	if err := reg.Register(ids[0], reg.Vault(ids[0])); err == nil {
		t.Fatal("duplicate id accepted")
	}
	other, err := core.Deploy(regBB, regRec, regDS.Graph, enclave.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Register("foreign", other); err == nil {
		t.Fatal("vault from a different enclave accepted")
	}
	if _, _, err := reg.Acquire("nope"); !errors.Is(err, ErrUnknownVault) {
		t.Fatalf("unknown vault: %v, want ErrUnknownVault", err)
	}
}

// TestRegistryLRUEviction pins the eviction order: with room for two
// resident vaults, admitting a third evicts the least recently served.
func TestRegistryLRUEviction(t *testing.T) {
	_, reg, ids := newFleet(t, 3, 2, Config{WorkspacesPerVault: 1})
	defer reg.Close()
	a, b, c := ids[0], ids[1], ids[2]

	serveOne(t, reg, a)
	serveOne(t, reg, b)
	serveOne(t, reg, c) // must evict a (LRU)

	st := reg.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
	resident := map[string]bool{}
	for _, vs := range st.PerVault {
		resident[vs.ID] = vs.Resident
	}
	if resident[a] || !resident[b] || !resident[c] {
		t.Fatalf("residency after admitting %s: %v", c, resident)
	}

	serveOne(t, reg, a) // must evict b, now the LRU
	st = reg.Stats()
	for _, vs := range st.PerVault {
		if vs.ID == b && vs.Resident {
			t.Fatalf("%s still resident after LRU eviction", b)
		}
	}
	if st.Evictions != 2 || st.Plans != 4 {
		t.Fatalf("evictions/plans = %d/%d, want 2/4", st.Evictions, st.Plans)
	}
}

func TestRegistryAcquireBlocksUntilRelease(t *testing.T) {
	_, reg, ids := newFleet(t, 1, 1, Config{WorkspacesPerVault: 1})
	defer reg.Close()
	id := ids[0]

	_, ws, err := reg.Acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan struct{})
	go func() {
		_, ws2, err := reg.Acquire(id)
		if err != nil {
			t.Error(err)
		} else {
			reg.Release(id, ws2)
		}
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("second acquire did not block at the workspace cap")
	default:
	}
	reg.Release(id, ws)
	<-acquired
}

// TestRegistryUnservableRequestFails covers the only legitimate failure:
// a workspace that cannot fit the EPC even with every other vault evicted.
func TestRegistryUnservableRequestFails(t *testing.T) {
	trained(t)
	cost := enclave.DefaultCostModel()
	cost.EPCBytes = regPersist + regWSBytes/2 // persistent fits, workspace never
	encl := enclave.New(cost, regRec.Identity())
	v, err := core.DeployInto(encl, regBB, regRec, regDS.Graph)
	if err != nil {
		t.Fatal(err)
	}
	reg := New(encl, Config{})
	defer reg.Close()
	if err := reg.Register("big", v); err != nil {
		t.Fatal(err)
	}
	if _, _, err := reg.Acquire("big"); !errors.Is(err, enclave.ErrEPCExhausted) {
		t.Fatalf("unservable acquire: %v, want ErrEPCExhausted", err)
	}
}

func TestRegistryRemoveAndUndeploy(t *testing.T) {
	encl, reg, ids := newFleet(t, 2, 4, Config{})
	defer reg.Close()
	id := ids[0]

	v, ws, err := reg.Acquire(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Remove(id); err == nil {
		t.Fatal("Remove succeeded with a workspace checked out")
	}
	reg.Release(id, ws)
	if err := reg.Remove(id); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, _, err := reg.Acquire(id); !errors.Is(err, ErrUnknownVault) {
		t.Fatalf("acquire after remove: %v", err)
	}
	if st := reg.Stats(); st.Evictions != 0 {
		t.Fatalf("administrative Remove counted %d evictions, want 0", st.Evictions)
	}
	before := encl.EPCUsed()
	v.Undeploy()
	v.Undeploy() // idempotent
	if got := encl.EPCUsed(); got != before-v.PersistentBytes() {
		t.Fatalf("Undeploy freed %d bytes, want %d", before-got, v.PersistentBytes())
	}
	if _, err := v.Plan(v.Nodes()); err == nil {
		t.Fatal("Plan on undeployed vault succeeded")
	}
}

func TestRegistryCloseRejectsAndDrains(t *testing.T) {
	encl, reg, ids := newFleet(t, 2, 4, Config{})
	baseline := int64(2) * regPersist

	serveOne(t, reg, ids[0])
	_, ws, err := reg.Acquire(ids[1])
	if err != nil {
		t.Fatal(err)
	}
	reg.Close()
	reg.Close() // idempotent
	if _, _, err := reg.Acquire(ids[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("acquire after close: %v, want ErrClosed", err)
	}
	// The checked-out workspace still holds EPC until its holder releases.
	if got := encl.EPCUsed(); got != baseline+regWSBytes {
		t.Fatalf("EPC after close with one in-flight workspace: %d, want %d",
			got, baseline+regWSBytes)
	}
	reg.Release(ids[1], ws)
	if got := encl.EPCUsed(); got != baseline {
		t.Fatalf("EPC after drain %d, want deploy-time baseline %d", got, baseline)
	}
}

// TestRegistryHotPathAllocFree pins the scheduler's fast path: once a
// vault is resident, acquire→predict→release touches zero fresh heap.
// Kernels are pinned to one worker via the registry's own plan shape
// (goroutine spawns allocate), not the deprecated process-global knob.
func TestRegistryHotPathAllocFree(t *testing.T) {
	_, reg, ids := newFleet(t, 1, 2, Config{Plan: core.PlanConfig{Workers: 1}})
	defer reg.Close()
	id := ids[0]
	serveOne(t, reg, id) // warm-up: plan + first predict

	allocs := testing.AllocsPerRun(10, func() {
		v, ws, err := reg.Acquire(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := v.PredictInto(regDS.X, ws); err != nil {
			t.Fatal(err)
		}
		reg.Release(id, ws)
	})
	if allocs > 0 {
		t.Fatalf("hot acquire/predict/release allocates %.1f objects/op, want 0", allocs)
	}
}

// TestRegistryEvictionHammer is the -race regression test for the whole
// scheduler: concurrent clients hit more vaults than the EPC admits, so
// plans, evictions, and blocked admissions interleave constantly. The EPC
// must never exceed capacity and must return to the deploy-time baseline
// once the registry is closed and drained.
func TestRegistryEvictionHammer(t *testing.T) {
	const vaults, admit = 4, 2
	encl, reg, ids := newFleet(t, vaults, admit, Config{WorkspacesPerVault: 1})
	baseline := int64(vaults) * regPersist

	stop := make(chan struct{})
	var overCap atomic.Bool
	var monitor sync.WaitGroup
	monitor.Add(1)
	go func() { // capacity invariant, sampled while the hammer runs
		defer monitor.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if encl.EPCUsed() > encl.EPCLimit() {
					overCap.Store(true)
					return
				}
			}
		}
	}()

	const clients, perClient = 8, 6
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < perClient; r++ {
				id := ids[rng.Intn(len(ids))]
				v, ws, err := reg.Acquire(id)
				if err != nil {
					errCh <- err
					return
				}
				_, _, err = v.PredictInto(regDS.X, ws)
				reg.Release(id, ws)
				if err != nil {
					errCh <- err
					return
				}
			}
		}(int64(c))
	}
	wg.Wait()
	close(stop)
	monitor.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if overCap.Load() {
		t.Fatal("EPC usage exceeded capacity during the hammer")
	}

	st := reg.Stats()
	if st.Requests != clients*perClient {
		t.Fatalf("requests %d, want %d", st.Requests, clients*perClient)
	}
	if st.Plans <= uint64(admit) {
		t.Fatalf("plans %d: oversubscribed fleet should re-plan beyond the %d admitted", st.Plans, admit)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite oversubscription")
	}

	reg.Close()
	if got := encl.EPCUsed(); got != baseline {
		t.Fatalf("EPC after close %d, want baseline %d", got, baseline)
	}
	if used := encl.EPCUsed(); used > encl.EPCLimit() {
		t.Fatalf("ledger above capacity after close: %d > %d", used, encl.EPCLimit())
	}
}

// nodeQueryGeometry is the sampling geometry shared by the node-query
// tests and the sizing measurement below.
func nodeQueryGeometry() NodeQueryConfig {
	return NodeQueryConfig{Hops: 2, Fanout: 4, MaxSeeds: 4, Seed: 7}
}

// subPlanBytes measures the EPC one node-query workspace charges under
// nodeQueryGeometry, on a throwaway roomy deployment.
func subPlanBytes(t testing.TB) int64 {
	t.Helper()
	trained(t)
	v, err := core.Deploy(regBB, regRec, regDS.Graph, enclave.DefaultCostModel())
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	defer v.Undeploy()
	nq := nodeQueryGeometry()
	ws, err := v.PlanSubgraph(nq.MaxSeeds, nq.Subgraph())
	if err != nil {
		t.Fatalf("PlanSubgraph: %v", err)
	}
	defer ws.Release()
	return ws.EnclaveBytes()
}

func TestAcquireSubgraphServesNodeQueries(t *testing.T) {
	nq := nodeQueryGeometry()
	_, reg, ids := newFleet(t, 1, 2, Config{NodeQuery: &nq})
	defer reg.Close()
	if err := reg.EnableNodeQueries(ids[0], regDS.X); err != nil {
		t.Fatalf("EnableNodeQueries: %v", err)
	}
	v, ws, x, err := reg.AcquireSubgraph(ids[0])
	if err != nil {
		t.Fatalf("AcquireSubgraph: %v", err)
	}
	labels, _, err := v.PredictNodesInto(x, []int{3, 9}, ws)
	if err != nil {
		t.Fatalf("PredictNodesInto: %v", err)
	}
	if len(labels) != 2 {
		t.Fatalf("got %d labels, want 2", len(labels))
	}
	reg.ReleaseSubgraph(ids[0], ws)

	st := reg.Stats()
	vs := st.PerVault[0]
	if vs.NodeWorkspaces != 1 || vs.NodeQueries != 1 {
		t.Fatalf("stats = %+v, want 1 node workspace and 1 node query", vs)
	}
	// A hot re-acquire must come from the cache: no second plan.
	plansBefore := reg.Stats().Plans
	_, ws2, _, err := reg.AcquireSubgraph(ids[0])
	if err != nil {
		t.Fatalf("hot AcquireSubgraph: %v", err)
	}
	reg.ReleaseSubgraph(ids[0], ws2)
	if got := reg.Stats().Plans; got != plansBefore {
		t.Fatalf("hot acquire planned again: %d -> %d", plansBefore, got)
	}
}

func TestAcquireSubgraphDisabled(t *testing.T) {
	// Registry without a NodeQuery config.
	_, reg, ids := newFleet(t, 1, 2, Config{})
	defer reg.Close()
	if err := reg.EnableNodeQueries(ids[0], regDS.X); !errors.Is(err, ErrNodeQueriesDisabled) {
		t.Fatalf("EnableNodeQueries without config: err = %v", err)
	}
	if _, _, _, err := reg.AcquireSubgraph(ids[0]); !errors.Is(err, ErrNodeQueriesDisabled) {
		t.Fatalf("AcquireSubgraph without config: err = %v", err)
	}
	reg.Close()

	// Registry with a config but a vault that never enabled node queries.
	nq := nodeQueryGeometry()
	_, reg2, ids2 := newFleet(t, 1, 2, Config{NodeQuery: &nq})
	defer reg2.Close()
	if _, _, _, err := reg2.AcquireSubgraph(ids2[0]); !errors.Is(err, ErrNodeQueriesDisabled) {
		t.Fatalf("AcquireSubgraph without features: err = %v", err)
	}
}

// TestSubgraphPlanAdmittedWhereFullPlanIsNot is the sizing point of the
// node-query pool: an EPC too small for the vault's full-graph workspace
// still admits the capped subgraph workspace, so node-level traffic keeps
// flowing where full-graph traffic is unservable.
func TestSubgraphPlanAdmittedWhereFullPlanIsNot(t *testing.T) {
	subBytes := subPlanBytes(t)
	if subBytes*2 >= regWSBytes {
		t.Fatalf("geometry broken: subgraph plan %d B not clearly below full plan %d B", subBytes, regWSBytes)
	}
	nq := nodeQueryGeometry()
	cost := enclave.DefaultCostModel()
	cost.EPCBytes = regPersist + subBytes + subBytes/2 // room for sub, not for full
	encl := enclave.New(cost, regRec.Identity())
	reg := New(encl, Config{NodeQuery: &nq, WorkspacesPerVault: 1})
	defer reg.Close()
	v, err := core.DeployInto(encl, regBB, regRec, regDS.Graph)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if err := reg.Register("v0", v); err != nil {
		t.Fatal(err)
	}
	if err := reg.EnableNodeQueries("v0", regDS.X); err != nil {
		t.Fatal(err)
	}

	if _, _, err := reg.Acquire("v0"); !errors.Is(err, enclave.ErrEPCExhausted) {
		t.Fatalf("full-graph Acquire: err = %v, want ErrEPCExhausted", err)
	}
	vv, ws, x, err := reg.AcquireSubgraph("v0")
	if err != nil {
		t.Fatalf("AcquireSubgraph in tight EPC: %v", err)
	}
	if _, _, err := vv.PredictNodesInto(x, []int{5}, ws); err != nil {
		t.Fatalf("PredictNodesInto: %v", err)
	}
	if used, limit := encl.EPCUsed(), encl.EPCLimit(); used > limit {
		t.Fatalf("EPC overcommitted: %d > %d", used, limit)
	}
	reg.ReleaseSubgraph("v0", ws)
}

// TestSubgraphAcquireEvictsIdleFullWorkspaces checks the pools share one
// eviction policy: admitting a node-query plan may evict another vault's
// cached full-graph workspace.
func TestSubgraphAcquireEvictsIdleFullWorkspaces(t *testing.T) {
	subBytes := subPlanBytes(t)
	nq := nodeQueryGeometry()
	cost := enclave.DefaultCostModel()
	// Fits both persistents plus one full workspace, but not +subgraph.
	cost.EPCBytes = 2*regPersist + regWSBytes + subBytes/2
	encl := enclave.New(cost, regRec.Identity())
	reg := New(encl, Config{NodeQuery: &nq, WorkspacesPerVault: 1})
	defer reg.Close()
	for _, id := range []string{"v0", "v1"} {
		v, err := core.DeployInto(encl, regBB, regRec, regDS.Graph)
		if err != nil {
			t.Fatalf("deploy %s: %v", id, err)
		}
		if err := reg.Register(id, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := reg.EnableNodeQueries("v1", regDS.X); err != nil {
		t.Fatal(err)
	}

	serveOne(t, reg, "v0") // v0 now caches a full workspace
	_, ws, _, err := reg.AcquireSubgraph("v1")
	if err != nil {
		t.Fatalf("AcquireSubgraph under pressure: %v", err)
	}
	reg.ReleaseSubgraph("v1", ws)
	st := reg.Stats()
	if st.Evictions == 0 {
		t.Fatal("admitting the node-query plan evicted nothing; expected v0's cached workspace to go")
	}
	if used, limit := encl.EPCUsed(), encl.EPCLimit(); used > limit {
		t.Fatalf("EPC overcommitted: %d > %d", used, limit)
	}
}

// TestBudgetedPlansFlipEvictionChurn reproduces the EPC cliff the untiled
// registry pays — a fleet whose EPC admits only one untiled workspace
// plans/evicts on every vault switch — and shows a per-workspace EPC
// budget (tiled plans) admitting the whole fleet at once: every vault stays
// resident, and steady-state traffic causes no further plans or evictions.
func TestBudgetedPlansFlipEvictionChurn(t *testing.T) {
	const vaults = 4

	// Untiled control: EPC fits all persistent state + 1 workspace.
	_, reg, ids := newFleet(t, vaults, 1, Config{WorkspacesPerVault: 1})
	for round := 0; round < 3; round++ {
		for _, id := range ids {
			serveOne(t, reg, id)
		}
	}
	churn := reg.Stats()
	if churn.Evictions == 0 {
		t.Fatal("untiled control fleet shows no eviction churn; the comparison is vacuous")
	}
	reg.Close()

	// Budgeted fleet on the *same* EPC geometry: tiled workspaces are a
	// fraction of regWSBytes, so all four vaults cache one and stay hot.
	budget := regWSBytes / 8
	_, reg, ids = newFleet(t, vaults, 1, Config{
		WorkspacesPerVault: 1,
		Plan:               core.PlanConfig{EPCBudgetBytes: budget},
	})
	defer reg.Close()
	for round := 0; round < 3; round++ {
		for _, id := range ids {
			serveOne(t, reg, id)
		}
	}
	st := reg.Stats()
	if st.Evictions != 0 {
		t.Fatalf("budgeted fleet evicted %d times; tiled plans should all fit", st.Evictions)
	}
	if st.Plans != vaults {
		t.Fatalf("budgeted fleet planned %d times, want one cold plan per vault (%d)", st.Plans, vaults)
	}
	if st.Resident != vaults {
		t.Fatalf("budgeted fleet has %d resident vaults, want %d", st.Resident, vaults)
	}
	for _, vs := range st.PerVault {
		if vs.Workspaces != 1 {
			t.Fatalf("vault %s holds %d workspaces, want 1 cached", vs.ID, vs.Workspaces)
		}
	}
}
