// Package registry schedules many deployed vaults onto one enclave's
// scarce EPC: the multi-tenant edge device hosting several GNNVault
// deployments (datasets × rectifier designs) behind a single trusted
// compartment.
//
// Every vault charges the EPC twice: once at deploy time for its persistent
// residents (rectifier parameters + private adjacency, held until
// core.Vault.Undeploy), and once per planned inference workspace
// (core.Vault.Plan). The Registry manages the second, elastic, part:
// workspaces are planned lazily on the first request for a vault, cached on
// a per-vault free list while the vault is hot, and evicted — least
// recently served first — when admitting another vault's workspace would
// exceed the EPC. Plan and eviction counts are recorded per vault so the
// memory/latency trade is visible in Stats: a fleet that fits the EPC
// serves every request from cached workspaces at zero allocation, while an
// oversubscribed fleet pays a measured re-plan cost on every cold vault.
//
// Acquire blocks while the EPC is full but other requests still hold
// workspaces, and fails only when no admission order could ever fit the
// request. See DESIGN.md ("Multi-vault registry and EPC scheduling") for
// the eviction policy and the accounting invariants the tests enforce.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"gnnvault/internal/core"
	"gnnvault/internal/enclave"
	"gnnvault/internal/mat"
	"gnnvault/internal/obs"
	"gnnvault/internal/subgraph"
)

// ErrClosed is returned by Acquire after Close.
var ErrClosed = errors.New("registry: closed")

// ErrUnknownVault is returned by Acquire for an unregistered vault ID.
var ErrUnknownVault = errors.New("registry: unknown vault")

// ErrNodeQueriesDisabled is returned by AcquireSubgraph when the registry
// has no NodeQuery configuration or the vault never called
// EnableNodeQueries (no feature matrix to gather from).
var ErrNodeQueriesDisabled = errors.New("registry: node queries not enabled")

// NodeQueryConfig fixes the subgraph sampling geometry for the
// registry's node-level serving path. Subgraph workspaces are planned
// (and evicted) by the same scheduler as full-graph workspaces, but their
// EPC charge is bounded by hops × fanout × seeds instead of the graph
// size — a vault whose full-graph plan can never be admitted may still
// serve node queries.
type NodeQueryConfig struct {
	// Hops is the neighborhood expansion depth L. Default 2.
	Hops int
	// Fanout caps sampled neighbours per node per hop; 0 = unlimited
	// (exact L-hop, worst-case O(graph)). Default 10.
	Fanout int
	// MaxSeeds bounds the seed nodes one coalesced extraction serves.
	// Default 16.
	MaxSeeds int
	// Seed drives the deterministic sampler.
	Seed uint64
}

// WithDefaults returns the config with unset fields replaced by the
// documented defaults (hops 2, fanout 10, 16 seeds). Exported so other
// front-ends (serve.Server) share one default table.
func (c NodeQueryConfig) WithDefaults() NodeQueryConfig {
	if c.Hops <= 0 {
		c.Hops = 2
	}
	if c.Fanout < 0 {
		c.Fanout = 10
	}
	if c.MaxSeeds <= 0 {
		c.MaxSeeds = 16
	}
	return c
}

// Subgraph returns the sampling geometry as a subgraph.Config.
func (c NodeQueryConfig) Subgraph() subgraph.Config {
	return subgraph.Config{Hops: c.Hops, Fanout: c.Fanout, Seed: c.Seed}
}

// Config tunes the scheduler.
type Config struct {
	// WorkspacesPerVault caps how many concurrent inference workspaces one
	// vault may hold (its maximum worker parallelism). Default 2, matching
	// serve.Config's worker default. Full-graph and subgraph workspaces
	// are capped independently.
	WorkspacesPerVault int
	// Plan shapes every full-graph workspace the registry plans. Setting
	// Plan.EPCBudgetBytes makes cold plans tile-streamed: a vault whose
	// untiled plan could never be admitted (or whose admission would evict
	// the whole fleet) is charged only a tile-sized working set, which
	// collapses the plan/evict churn an oversubscribed EPC otherwise pays.
	// Vaults with non-tileable (SAGE/GAT) convolutions fail admission with
	// core.ErrTiledUnsupported under a budget. Setting Plan.Precision
	// shrinks every planned workspace by the element width; vaults serving
	// int8 must have calibration features registered
	// (core.Vault.SetCalibrationFeatures) before their first request, or
	// admission fails with core.ErrCalibrationRequired — an accuracy
	// refusal, deliberately not an EPC error, so it never triggers
	// evictions.
	Plan core.PlanConfig
	// NodeQuery, when non-nil, lets vaults with EnableNodeQueries serve
	// node-level requests through AcquireSubgraph.
	NodeQuery *NodeQueryConfig
	// Recorder receives the scheduler's flight-recorder events: one
	// SpanPlan per cold-start workspace plan and one SpanEvict per LRU
	// eviction. When Plan.Recorder is unset it also propagates to every
	// planned workspace, so one recorder wires the whole stack. Nil means
	// obs.Nop.
	Recorder obs.Recorder
}

func (c Config) withDefaults() Config {
	if c.WorkspacesPerVault <= 0 {
		c.WorkspacesPerVault = 2
	}
	if c.NodeQuery != nil {
		nq := c.NodeQuery.WithDefaults()
		c.NodeQuery = &nq
	}
	if c.Recorder == nil {
		c.Recorder = obs.Nop
	}
	if c.Plan.Recorder == nil {
		c.Plan.Recorder = c.Recorder
	}
	return c
}

// entry is one registered vault's residency state.
type entry struct {
	id    string
	vault *core.Vault

	free  []*core.Workspace // planned, idle workspaces (cap fixed at Register)
	inUse int               // workspaces currently checked out via Acquire

	// Node-query pool: the subgraph-plan mirror of free/inUse, populated
	// only after EnableNodeQueries. x is the vault's public feature
	// matrix, handed out with every subgraph checkout.
	x           *mat.Matrix
	freeSub     []*core.SubgraphWorkspace
	inUseSub    int
	nodeQueries uint64

	lastServed uint64 // registry clock at the vault's last acquire/release
	requests   uint64
	plans      uint64
	evictions  uint64
}

// resident reports whether the vault holds any workspace EPC (of either
// kind).
func (e *entry) resident() bool {
	return e.inUse > 0 || len(e.free) > 0 || e.inUseSub > 0 || len(e.freeSub) > 0
}

// idle reports whether the vault holds cached EPC with nothing checked
// out — the eviction candidates.
func (e *entry) idle() bool {
	return e.inUse == 0 && e.inUseSub == 0 && (len(e.free) > 0 || len(e.freeSub) > 0)
}

// Registry schedules per-vault inference workspaces for a fleet of vaults
// deployed into one shared enclave. All methods are safe for concurrent
// use.
type Registry struct {
	encl *enclave.Enclave
	cfg  Config

	mu     sync.Mutex
	cond   *sync.Cond
	vaults map[string]*entry
	clock  uint64 // logical last-served time, bumped on every acquire/release
	inUse  int    // workspaces checked out across all vaults
	closed bool

	plans     uint64
	evictions uint64
	requests  uint64
}

// New creates an empty registry over the shared enclave. The enclave is
// typically created with enclave.New over every hosted rectifier's
// Identity, then populated via core.DeployInto and Register.
func New(encl *enclave.Enclave, cfg Config) *Registry {
	r := &Registry{
		encl:   encl,
		cfg:    cfg.withDefaults(),
		vaults: map[string]*entry{},
	}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Register adds a deployed vault under id. The vault must be deployed into
// the registry's enclave (core.DeployInto) so its EPC accounting lands in
// the shared ledger.
func (r *Registry) Register(id string, v *core.Vault) error {
	if v.Enclave != r.encl {
		return fmt.Errorf("registry: vault %q deployed into a different enclave", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if _, dup := r.vaults[id]; dup {
		return fmt.Errorf("registry: vault %q already registered", id)
	}
	r.vaults[id] = &entry{
		id:    id,
		vault: v,
		// Fixed capacity so the hot-path Release append never allocates.
		free: make([]*core.Workspace, 0, r.cfg.WorkspacesPerVault),
	}
	return nil
}

// Remove releases the vault's cached workspaces (without counting them as
// evictions — removal is administrative, not EPC pressure) and unregisters
// it. The vault's persistent EPC stays charged; call core.Vault.Undeploy to
// release that too. Remove fails while any of the vault's workspaces are
// checked out.
func (r *Registry) Remove(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.vaults[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownVault, id)
	}
	if e.inUse > 0 || e.inUseSub > 0 {
		return fmt.Errorf("registry: vault %q has %d workspaces in use", id, e.inUse+e.inUseSub)
	}
	r.releaseAllLocked(e) // administrative removal, not EPC pressure
	delete(r.vaults, id)
	r.cond.Broadcast() // freed EPC may admit a waiting Acquire
	return nil
}

// IDs returns the registered vault IDs, sorted.
func (r *Registry) IDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.vaults))
	for id := range r.vaults {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Vault returns the registered vault for id, or nil.
func (r *Registry) Vault(id string) *core.Vault {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.vaults[id]; ok {
		return e.vault
	}
	return nil
}

// EnableNodeQueries registers the vault's public feature matrix and opens
// the node-level serving path for it: subsequent AcquireSubgraph calls may
// plan subgraph workspaces against the registry's NodeQuery geometry. The
// registry itself must have been created with Config.NodeQuery set.
func (r *Registry) EnableNodeQueries(id string, x *mat.Matrix) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if r.cfg.NodeQuery == nil {
		return fmt.Errorf("%w: registry has no NodeQuery config", ErrNodeQueriesDisabled)
	}
	e, ok := r.vaults[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownVault, id)
	}
	if x == nil || x.Rows != e.vault.Nodes() {
		return fmt.Errorf("registry: vault %q features must cover %d nodes", id, e.vault.Nodes())
	}
	e.x = x
	if e.freeSub == nil {
		e.freeSub = make([]*core.SubgraphWorkspace, 0, r.cfg.WorkspacesPerVault)
	}
	return nil
}

// Acquire checks out one inference workspace for the vault registered
// under id, planning it lazily on first use. When the vault is hot (a
// cached workspace is free) Acquire is a map lookup and a slice pop —
// no allocation, no enclave traffic. When it is cold, Acquire plans a new
// workspace, evicting idle vaults in least-recently-served order until the
// plan fits the EPC; the plan and each eviction are counted in Stats.
//
// If the vault is at its workspace cap, or the EPC cannot admit the plan
// while other requests hold workspaces, Acquire blocks until a Release or
// Remove changes the picture. It fails with enclave.ErrEPCExhausted
// (wrapped) only when nothing is checked out anywhere and no eviction
// could make the plan fit — the request is simply too big for the device.
//
// Every successful Acquire must be paired with Release.
func (r *Registry) Acquire(id string) (*core.Vault, *core.Workspace, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return nil, nil, ErrClosed
		}
		e, ok := r.vaults[id]
		if !ok {
			return nil, nil, fmt.Errorf("%w: %q", ErrUnknownVault, id)
		}
		if n := len(e.free); n > 0 {
			ws := e.free[n-1]
			e.free = e.free[:n-1]
			r.checkoutLocked(e)
			return e.vault, ws, nil
		}
		if e.inUse < r.cfg.WorkspacesPerVault {
			ws, err := r.planLocked(e)
			if err == nil {
				r.checkoutLocked(e)
				return e.vault, ws, nil
			}
			if !errors.Is(err, enclave.ErrEPCExhausted) {
				return nil, nil, err
			}
			if r.inUse == 0 {
				// Nothing left to wait for: every workspace is evicted and
				// the plan still does not fit.
				return nil, nil, fmt.Errorf("registry: vault %q cannot be admitted: %w", id, err)
			}
		}
		// Either the vault is at its workspace cap or the EPC is full of
		// in-flight workspaces; wait for a Release/Remove and retry.
		r.cond.Wait()
	}
}

// AcquireSubgraph checks out one node-query (subgraph) workspace for the
// vault registered under id, along with the vault and its public feature
// matrix. It follows Acquire's contract — cached-hot checkouts are
// allocation-free, cold ones plan lazily and evict idle vaults LRU-first,
// saturation blocks until a release — but the planned working set is the
// capped hops×fanout geometry of Config.NodeQuery, typically orders of
// magnitude below the full-graph plan. A vault too big for Acquire can
// therefore still be admitted here; see the DESIGN.md accounting section.
//
// AcquireSubgraph fails with ErrNodeQueriesDisabled unless the registry
// has a NodeQuery config and the vault called EnableNodeQueries. Every
// successful call must be paired with ReleaseSubgraph.
func (r *Registry) AcquireSubgraph(id string) (*core.Vault, *core.SubgraphWorkspace, *mat.Matrix, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return nil, nil, nil, ErrClosed
		}
		e, ok := r.vaults[id]
		if !ok {
			return nil, nil, nil, fmt.Errorf("%w: %q", ErrUnknownVault, id)
		}
		if r.cfg.NodeQuery == nil || e.x == nil {
			return nil, nil, nil, fmt.Errorf("%w: vault %q", ErrNodeQueriesDisabled, id)
		}
		if n := len(e.freeSub); n > 0 {
			ws := e.freeSub[n-1]
			e.freeSub = e.freeSub[:n-1]
			r.checkoutSubLocked(e)
			return e.vault, ws, e.x, nil
		}
		if e.inUseSub < r.cfg.WorkspacesPerVault {
			ws, err := r.planSubLocked(e)
			if err == nil {
				r.checkoutSubLocked(e)
				return e.vault, ws, e.x, nil
			}
			if !errors.Is(err, enclave.ErrEPCExhausted) {
				return nil, nil, nil, err
			}
			if r.inUse == 0 {
				return nil, nil, nil, fmt.Errorf("registry: vault %q node-query plan cannot be admitted: %w", id, err)
			}
		}
		r.cond.Wait()
	}
}

// checkoutLocked records one workspace handed to a caller.
func (r *Registry) checkoutLocked(e *entry) {
	e.inUse++
	r.inUse++
	e.requests++
	r.requests++
	r.clock++
	e.lastServed = r.clock
}

// checkoutSubLocked records one subgraph workspace handed to a caller.
func (r *Registry) checkoutSubLocked(e *entry) {
	e.inUseSub++
	r.inUse++
	e.requests++
	e.nodeQueries++
	r.requests++
	r.clock++
	e.lastServed = r.clock
}

// planLocked plans one full-graph workspace for e, evicting idle vaults
// LRU-first while the enclave reports EPC exhaustion. Planning happens
// under the registry lock: admission is a critical section, so two cold
// requests cannot both out-evict each other.
func (r *Registry) planLocked(e *entry) (*core.Workspace, error) {
	var ws *core.Workspace
	err := r.admitLocked(e, func() error {
		var err error
		ws, err = e.vault.PlanWith(e.vault.Nodes(), r.cfg.Plan)
		return err
	})
	return ws, err
}

// planSubLocked is planLocked for the node-query pool.
func (r *Registry) planSubLocked(e *entry) (*core.SubgraphWorkspace, error) {
	nq := r.cfg.NodeQuery
	var ws *core.SubgraphWorkspace
	err := r.admitLocked(e, func() error {
		var err error
		ws, err = e.vault.PlanSubgraphWith(nq.MaxSeeds, nq.Subgraph(), r.cfg.Plan)
		return err
	})
	return ws, err
}

// admitLocked runs one plan attempt, evicting idle vaults LRU-first for
// as long as the enclave reports EPC exhaustion and victims remain.
func (r *Registry) admitLocked(e *entry, plan func() error) error {
	rec := r.cfg.Recorder
	for {
		var t0 int64
		if rec.Enabled() {
			t0 = rec.Clock()
		}
		err := plan()
		if err == nil {
			e.plans++
			r.plans++
			if rec.Enabled() {
				rec.Record(obs.Span{Kind: obs.SpanPlan, Start: t0, Dur: rec.Clock() - t0})
			}
			return nil
		}
		if !errors.Is(err, enclave.ErrEPCExhausted) {
			return err
		}
		victim := r.lruIdleLocked(e)
		if victim == nil {
			return err
		}
		r.evictLocked(victim)
	}
}

// lruIdleLocked returns the least-recently-served vault that holds
// workspace EPC but has none checked out (evicting a busy vault would pull
// buffers out from under a running inference), or nil. The requesting
// vault's own cache is never a victim.
func (r *Registry) lruIdleLocked(requester *entry) *entry {
	var victim *entry
	for _, e := range r.vaults {
		if e == requester || !e.idle() {
			continue
		}
		if victim == nil || e.lastServed < victim.lastServed {
			victim = e
		}
	}
	return victim
}

// evictLocked releases every cached workspace of e (both pools) to make
// room for another vault, counting each as an eviction.
func (r *Registry) evictLocked(e *entry) {
	n := uint64(len(e.free) + len(e.freeSub))
	if rec := r.cfg.Recorder; rec.Enabled() {
		var bytes int64
		for _, ws := range e.free {
			bytes += ws.EnclaveBytes()
		}
		for _, ws := range e.freeSub {
			bytes += ws.EnclaveBytes()
		}
		rec.Record(obs.Span{Kind: obs.SpanEvict, Rows: int32(n), Bytes: bytes, Start: rec.Clock()})
	}
	r.releaseAllLocked(e)
	e.evictions += n
	r.evictions += n
}

// releaseAllLocked returns e's cached workspace EPC (both pools) to the
// enclave without touching the eviction counters — for administrative
// paths (Remove, Close) that are not EPC pressure.
func (r *Registry) releaseAllLocked(e *entry) {
	for _, ws := range e.free {
		ws.Release()
	}
	e.free = e.free[:0]
	for _, ws := range e.freeSub {
		ws.Release()
	}
	e.freeSub = e.freeSub[:0]
}

// Release returns a workspace checked out by Acquire to the vault's free
// list and refreshes the vault's last-served time. Never allocates.
func (r *Registry) Release(id string, ws *core.Workspace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.vaults[id]
	if !ok || e.inUse <= 0 {
		panic(fmt.Sprintf("registry: release of %q without matching acquire", id))
	}
	e.inUse--
	r.inUse--
	r.clock++
	e.lastServed = r.clock
	if r.closed {
		// Close already ran; late releases free their EPC immediately.
		ws.Release()
		r.cond.Broadcast()
		return
	}
	e.free = append(e.free, ws)
	r.cond.Broadcast()
}

// ReleaseSubgraph returns a workspace checked out by AcquireSubgraph to
// the vault's node-query free list and refreshes its last-served time.
// Never allocates.
func (r *Registry) ReleaseSubgraph(id string, ws *core.SubgraphWorkspace) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.vaults[id]
	if !ok || e.inUseSub <= 0 {
		panic(fmt.Sprintf("registry: subgraph release of %q without matching acquire", id))
	}
	e.inUseSub--
	r.inUse--
	r.clock++
	e.lastServed = r.clock
	if r.closed {
		// Close already ran; late releases free their EPC immediately.
		ws.Release()
		r.cond.Broadcast()
		return
	}
	e.freeSub = append(e.freeSub, ws)
	r.cond.Broadcast()
}

// VaultStats is one vault's slice of the registry counters.
type VaultStats struct {
	ID         string
	Resident   bool // holds at least one planned workspace
	Workspaces int  // full-graph workspaces, cached + checked out
	// NodeWorkspaces counts the node-query (subgraph) pool, cached +
	// checked out.
	NodeWorkspaces int
	Requests       uint64 // successful Acquires + AcquireSubgraphs
	// NodeQueries is the AcquireSubgraph share of Requests.
	NodeQueries uint64
	Plans       uint64 // workspaces planned, either kind (cold starts)
	Evictions   uint64 // workspaces evicted to admit other vaults
}

// Stats is a snapshot of the scheduler's counters since New.
type Stats struct {
	Vaults    int // registered
	Resident  int // holding workspace EPC
	Requests  uint64
	Plans     uint64
	Evictions uint64

	EPCUsed  int64 // persistent + workspace bytes currently charged
	EPCFree  int64 // headroom before the next plan must evict
	EPCLimit int64

	// Ledger is the shared enclave's transition ledger at snapshot time —
	// ECALL/OCALL counts, boundary bytes, page swaps — the numbers the
	// serving /metrics surface exposes as enclave counters.
	Ledger enclave.Ledger

	PerVault []VaultStats // sorted by ID
}

// Stats returns a snapshot of the registry and per-vault counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		Vaults:    len(r.vaults),
		Requests:  r.requests,
		Plans:     r.plans,
		Evictions: r.evictions,
		EPCUsed:   r.encl.EPCUsed(),
		EPCFree:   r.encl.EPCFree(),
		EPCLimit:  r.encl.EPCLimit(),
		Ledger:    r.encl.Ledger(),
		PerVault:  make([]VaultStats, 0, len(r.vaults)),
	}
	for _, e := range r.vaults {
		if e.resident() {
			st.Resident++
		}
		st.PerVault = append(st.PerVault, VaultStats{
			ID:             e.id,
			Resident:       e.resident(),
			Workspaces:     e.inUse + len(e.free),
			NodeWorkspaces: e.inUseSub + len(e.freeSub),
			Requests:       e.requests,
			NodeQueries:    e.nodeQueries,
			Plans:          e.plans,
			Evictions:      e.evictions,
		})
	}
	sort.Slice(st.PerVault, func(i, j int) bool { return st.PerVault[i].ID < st.PerVault[j].ID })
	return st
}

// Close evicts every cached workspace and fails all further Acquires with
// ErrClosed. Workspaces still checked out are released (and their EPC
// freed) as their holders call Release, so after Close and all in-flight
// Releases the enclave is back to its deploy-time baseline. Registered
// vaults stay deployed. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	// Plain release, not evictLocked: shutdown is not EPC pressure and must
	// not inflate the eviction counters.
	for _, e := range r.vaults {
		r.releaseAllLocked(e)
	}
	r.cond.Broadcast()
}
