package registry_test

import (
	"fmt"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/registry"
	"gnnvault/internal/substitute"
)

// Example deploys two vaults into one enclave whose EPC only admits a
// single inference workspace, so serving the second vault must evict the
// first — the plan/evict churn the registry's stats make visible.
func Example() {
	ds := datasets.Load("cora")
	cfg := core.TrainConfig{Epochs: 3, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
	spec := core.SpecForDataset("cora")
	bb := core.TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), cfg)
	rec := core.TrainRectifier(ds, bb, core.Parallel, cfg)

	// Capacity planning: measure the two EPC quanta — persistent state per
	// deployed vault and bytes per planned workspace — on a roomy throwaway
	// deployment, then size the real device to hold two vaults but only one
	// workspace.
	scratch, err := core.Deploy(bb, rec, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		panic(err)
	}
	ws, err := scratch.Plan(scratch.Nodes())
	if err != nil {
		panic(err)
	}
	persist, wsBytes := scratch.PersistentBytes(), ws.EnclaveBytes()
	ws.Release()

	cost := enclave.DefaultCostModel()
	cost.EPCBytes = 2*persist + wsBytes + wsBytes/2
	encl := enclave.New(cost, rec.Identity())
	reg := registry.New(encl, registry.Config{WorkspacesPerVault: 1})
	for _, id := range []string{"cora/a", "cora/b"} {
		v, err := core.DeployInto(encl, bb, rec, ds.Graph)
		if err != nil {
			panic(err)
		}
		if err := reg.Register(id, v); err != nil {
			panic(err)
		}
	}
	defer reg.Close()

	// a is cold (plan), a again is hot (cached workspace), b evicts a.
	for _, id := range []string{"cora/a", "cora/a", "cora/b"} {
		v, ws, err := reg.Acquire(id)
		if err != nil {
			panic(err)
		}
		if _, _, err := v.PredictInto(ds.X, ws); err != nil {
			panic(err)
		}
		reg.Release(id, ws)
	}

	st := reg.Stats()
	fmt.Printf("requests=%d plans=%d evictions=%d resident=%d/%d\n",
		st.Requests, st.Plans, st.Evictions, st.Resident, st.Vaults)
	fmt.Println("EPC within capacity:", st.EPCUsed <= st.EPCLimit)
	// Output:
	// requests=3 plans=2 evictions=1 resident=1/2
	// EPC within capacity: true
}
