package bundle

import (
	"bytes"
	"testing"
	"testing/quick"
)

func sampleBundle() *Bundle {
	var m [32]byte
	copy(m[:], "measurement-of-the-rectifier")
	b := New(m, Manifest{
		Dataset: "cora", ModelSpec: "M1", Design: "parallel", Conv: "gcn",
		Classes: 7, FeatureDim: 128, Nodes: 600,
		ThetaBackbone: 20871, ThetaRectifier: 21944,
	})
	b.Add(SectionBackboneParams, []byte("backbone-weights"))
	b.Add(SectionSubstituteCOO, []byte("substitute-coo"))
	b.Add(SectionSealedRectifier, []byte{0xde, 0xad, 0xbe, 0xef})
	b.Add(SectionSealedGraph, []byte{0xca, 0xfe})
	return b
}

func TestRoundTrip(t *testing.T) {
	b := sampleBundle()
	data, err := b.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Measurement != b.Measurement {
		t.Error("measurement lost")
	}
	if got.Manifest != b.Manifest {
		t.Errorf("manifest = %+v, want %+v", got.Manifest, b.Manifest)
	}
	for _, name := range b.Names() {
		want, _ := b.Section(name)
		gotBody, ok := got.Section(name)
		if !ok || !bytes.Equal(gotBody, want) {
			t.Errorf("section %s lost", name)
		}
	}
}

func TestSectionOrderPreserved(t *testing.T) {
	b := sampleBundle()
	data, _ := b.Marshal()
	got, _ := Unmarshal(data)
	names := got.Names()
	if names[0] != SectionBackboneParams || names[3] != SectionSealedGraph {
		t.Fatalf("order = %v", names)
	}
}

func TestAddReplaces(t *testing.T) {
	b := sampleBundle()
	b.Add(SectionBackboneParams, []byte("new"))
	if len(b.Names()) != 4 {
		t.Fatal("Add duplicated a section")
	}
	body, _ := b.Section(SectionBackboneParams)
	if string(body) != "new" {
		t.Fatal("Add did not replace")
	}
}

func TestAddCopies(t *testing.T) {
	b := sampleBundle()
	payload := []byte("mutable")
	b.Add("x", payload)
	payload[0] = 'X'
	body, _ := b.Section("x")
	if body[0] == 'X' {
		t.Fatal("Add aliases caller memory")
	}
}

func TestIntegrityHashDetectsCorruption(t *testing.T) {
	data, _ := sampleBundle().Marshal()
	for _, idx := range []int{0, 10, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[idx] ^= 0xFF
		if _, err := Unmarshal(bad); err == nil {
			t.Errorf("corruption at byte %d not detected", idx)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"short":     {1, 2, 3},
		"truncated": func() []byte { d, _ := sampleBundle().Marshal(); return d[:len(d)-40] }(),
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestPropRoundTripArbitrarySections(t *testing.T) {
	f := func(m [32]byte, bodies [][]byte) bool {
		b := New(m, Manifest{Dataset: "d"})
		for i, body := range bodies {
			if i >= 8 {
				break
			}
			b.Add(string(rune('a'+i)), body)
		}
		data, err := b.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		for _, name := range b.Names() {
			want, _ := b.Section(name)
			gotBody, ok := got.Section(name)
			if !ok || !bytes.Equal(gotBody, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
