// Package bundle defines the on-disk deployment artifact a model vendor
// ships to an edge device: the public backbone (parameters + substitute
// graph, stored in the clear — they are public by construction) together
// with the sealed rectifier parameters and sealed private COO adjacency,
// bound to an expected enclave measurement.
//
// The format is a single self-describing binary file:
//
//	magic   uint32 "GNVB"
//	version uint16
//	measurement [32]byte       — enclave identity the sealed sections bind to
//	meta    length-prefixed JSON (Manifest)
//	section count uint16, then per section:
//	  name  length-prefixed string
//	  body  length-prefixed bytes
//	sha256  [32]byte            — integrity hash over everything above
//
// The integrity hash detects accidental corruption; *confidentiality and
// tamper-evidence of the private sections come from AES-GCM sealing*, not
// from this hash (an attacker can rewrite public sections, which is
// equivalent to them just running their own backbone).
package bundle

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

const (
	magic   = uint32(0x474E5642) // "GNVB"
	version = uint16(1)
)

// Section names used by GNNVault deployments.
const (
	SectionBackboneParams  = "backbone/params"
	SectionSubstituteCOO   = "backbone/substitute-coo"
	SectionSealedRectifier = "enclave/sealed-rectifier"
	SectionSealedGraph     = "enclave/sealed-coo"
)

// Manifest describes the deployment for tooling and attestation checks.
type Manifest struct {
	Dataset    string `json:"dataset"`
	ModelSpec  string `json:"model_spec"`
	Design     string `json:"design"`
	Conv       string `json:"conv"`
	Classes    int    `json:"classes"`
	FeatureDim int    `json:"feature_dim"`
	Nodes      int    `json:"nodes"`
	// ThetaBackbone / ThetaRectifier are parameter counts, recorded for
	// audit (Table II's θ columns).
	ThetaBackbone  int `json:"theta_backbone"`
	ThetaRectifier int `json:"theta_rectifier"`
}

// Bundle is a parsed deployment artifact.
type Bundle struct {
	Measurement [32]byte
	Manifest    Manifest
	sections    map[string][]byte
	order       []string
}

// New creates an empty bundle bound to an enclave measurement.
func New(measurement [32]byte, m Manifest) *Bundle {
	return &Bundle{Measurement: measurement, Manifest: m, sections: map[string][]byte{}}
}

// Add stores a named section (copying the body). Re-adding a name replaces
// its body but keeps its position.
func (b *Bundle) Add(name string, body []byte) {
	if _, ok := b.sections[name]; !ok {
		b.order = append(b.order, name)
	}
	b.sections[name] = append([]byte(nil), body...)
}

// Section returns a section body (nil, false if absent).
func (b *Bundle) Section(name string) ([]byte, bool) {
	s, ok := b.sections[name]
	return s, ok
}

// Names lists section names in insertion order.
func (b *Bundle) Names() []string { return append([]string(nil), b.order...) }

// Marshal serialises the bundle.
func (b *Bundle) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	w := func(v any) { binary.Write(&buf, binary.LittleEndian, v) } //nolint:errcheck
	w(magic)
	w(version)
	buf.Write(b.Measurement[:])
	meta, err := json.Marshal(b.Manifest)
	if err != nil {
		return nil, fmt.Errorf("bundle: manifest: %w", err)
	}
	w(uint32(len(meta)))
	buf.Write(meta)
	w(uint16(len(b.order)))
	for _, name := range b.order {
		w(uint32(len(name)))
		buf.WriteString(name)
		body := b.sections[name]
		w(uint32(len(body)))
		buf.Write(body)
	}
	sum := sha256.Sum256(buf.Bytes())
	buf.Write(sum[:])
	return buf.Bytes(), nil
}

// Unmarshal parses and integrity-checks a bundle.
func Unmarshal(data []byte) (*Bundle, error) {
	if len(data) < 4+2+32+4+2+32 {
		return nil, fmt.Errorf("bundle: truncated (%d bytes)", len(data))
	}
	body, sumGot := data[:len(data)-32], data[len(data)-32:]
	sumWant := sha256.Sum256(body)
	if !bytes.Equal(sumGot, sumWant[:]) {
		return nil, fmt.Errorf("bundle: integrity hash mismatch")
	}
	r := bytes.NewReader(body)
	var m uint32
	var v uint16
	if err := binary.Read(r, binary.LittleEndian, &m); err != nil || m != magic {
		return nil, fmt.Errorf("bundle: bad magic")
	}
	if err := binary.Read(r, binary.LittleEndian, &v); err != nil || v != version {
		return nil, fmt.Errorf("bundle: unsupported version %d", v)
	}
	b := &Bundle{sections: map[string][]byte{}}
	if _, err := r.Read(b.Measurement[:]); err != nil {
		return nil, fmt.Errorf("bundle: measurement: %w", err)
	}
	var metaLen uint32
	if err := binary.Read(r, binary.LittleEndian, &metaLen); err != nil {
		return nil, fmt.Errorf("bundle: meta length: %w", err)
	}
	if int(metaLen) > r.Len() {
		return nil, fmt.Errorf("bundle: meta length %d exceeds payload", metaLen)
	}
	meta := make([]byte, metaLen)
	if _, err := r.Read(meta); err != nil {
		return nil, fmt.Errorf("bundle: meta: %w", err)
	}
	if err := json.Unmarshal(meta, &b.Manifest); err != nil {
		return nil, fmt.Errorf("bundle: manifest json: %w", err)
	}
	var count uint16
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("bundle: section count: %w", err)
	}
	for i := 0; i < int(count); i++ {
		name, err := readBlob(r, "section name")
		if err != nil {
			return nil, err
		}
		blob, err := readBlob(r, string(name))
		if err != nil {
			return nil, err
		}
		b.Add(string(name), blob)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("bundle: %d trailing bytes", r.Len())
	}
	return b, nil
}

func readBlob(r *bytes.Reader, what string) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("bundle: %s length: %w", what, err)
	}
	if int(n) > r.Len() {
		return nil, fmt.Errorf("bundle: %s length %d exceeds payload", what, n)
	}
	blob := make([]byte, n)
	if n == 0 {
		return blob, nil
	}
	if _, err := io.ReadFull(r, blob); err != nil {
		return nil, fmt.Errorf("bundle: %s body: %w", what, err)
	}
	return blob, nil
}
