package substitute

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gnnvault/internal/datasets"
	"gnnvault/internal/mat"
)

func clusteredFeatures(rng *rand.Rand, n, d, classes int) (*mat.Matrix, []int) {
	x := mat.New(n, d)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		row := x.Row(i)
		for j := 0; j < d; j++ {
			row[j] = 0.1 * rng.NormFloat64()
		}
		// Strong class-aligned component.
		row[c%d] += 3
	}
	return x, labels
}

func TestCosineSim(t *testing.T) {
	if got := CosineSim([]float64{1, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("identical vectors: %v", got)
	}
	if got := CosineSim([]float64{1, 0}, []float64{0, 1}); math.Abs(got) > 1e-12 {
		t.Fatalf("orthogonal vectors: %v", got)
	}
	if got := CosineSim([]float64{1, 0}, []float64{-1, 0}); math.Abs(got+1) > 1e-12 {
		t.Fatalf("opposite vectors: %v", got)
	}
	if got := CosineSim([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("zero vector: %v", got)
	}
}

func TestKNNDegreesAtLeastK(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, _ := clusteredFeatures(rng, 50, 10, 5)
	g := KNN(x, 3)
	if g.N() != 50 {
		t.Fatalf("n = %d", g.N())
	}
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) < 3 {
			t.Fatalf("deg(%d) = %d < k after symmetrisation", u, g.Degree(u))
		}
	}
}

func TestKNNConnectsSameClass(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, labels := clusteredFeatures(rng, 100, 20, 4)
	g := KNN(x, 2)
	if h := g.Homophily(labels); h < 0.9 {
		t.Fatalf("KNN homophily = %v, want high for separable clusters", h)
	}
}

func TestKNNInvalidKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	KNN(mat.New(5, 2), 0)
}

func TestKNNKClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, _ := clusteredFeatures(rng, 6, 4, 2)
	g := KNN(x, 100) // k >= n clamps to n-1 → complete graph
	if g.NumUndirectedEdges() != 15 {
		t.Fatalf("edges = %d, want complete K6 = 15", g.NumUndirectedEdges())
	}
}

func TestCosineThresholdMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, _ := clusteredFeatures(rng, 80, 16, 4)
	loose := Cosine(x, 0.2)
	tight := Cosine(x, 0.8)
	if tight.NumUndirectedEdges() > loose.NumUndirectedEdges() {
		t.Fatalf("tightening τ added edges: %d > %d",
			tight.NumUndirectedEdges(), loose.NumUndirectedEdges())
	}
}

func TestCosineHighThresholdSameClassOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, labels := clusteredFeatures(rng, 100, 20, 4)
	g := Cosine(x, 0.9)
	if g.NumUndirectedEdges() == 0 {
		t.Skip("threshold too tight for this sample")
	}
	if h := g.Homophily(labels); h < 0.95 {
		t.Fatalf("high-τ cosine graph homophily = %v", h)
	}
}

func TestCosineDensityMatched(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, _ := clusteredFeatures(rng, 60, 12, 3)
	want := 100
	g, tau := CosineDensityMatched(x, want)
	// Ties at the threshold may add a few extra edges but never fewer.
	if g.NumUndirectedEdges() < want {
		t.Fatalf("edges = %d, want >= %d", g.NumUndirectedEdges(), want)
	}
	if g.NumUndirectedEdges() > want+want/5 {
		t.Fatalf("edges = %d, way above target %d (τ=%v)", g.NumUndirectedEdges(), want, tau)
	}
}

func TestRandomFractionScalesEdges(t *testing.T) {
	g1 := Random(100, 200, 0.5, 7)
	g2 := Random(100, 200, 1.0, 7)
	if g1.NumUndirectedEdges() != 100 || g2.NumUndirectedEdges() != 200 {
		t.Fatalf("edges = %d, %d; want 100, 200", g1.NumUndirectedEdges(), g2.NumUndirectedEdges())
	}
}

func TestRandomNegativeFractionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative fraction did not panic")
		}
	}()
	Random(10, 10, -1, 1)
}

func TestBuildKinds(t *testing.T) {
	ds := datasets.Load("cora")
	real := ds.Graph.NumUndirectedEdges()
	for _, kind := range []Kind{KindKNN, KindCosine, KindRandom} {
		g := Build(kind, ds.X, 2, real, 9)
		if g == nil || g.N() != ds.X.Rows {
			t.Errorf("%s: bad graph", kind)
			continue
		}
		if g.NumUndirectedEdges() == 0 {
			t.Errorf("%s: empty substitute graph", kind)
		}
	}
	if Build(KindDNN, ds.X, 2, real, 9) != nil {
		t.Error("DNN kind should produce no graph")
	}
}

func TestBuildUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	Build(Kind("bogus"), mat.New(3, 2), 1, 1, 0)
}

func TestSubstituteNeverSeesPrivateEdges(t *testing.T) {
	// Two datasets with identical features but different private graphs
	// must produce identical substitute graphs: the builders are functions
	// of X only.
	ds := datasets.Load("cora")
	g1 := KNN(ds.X, 2)
	g2 := KNN(ds.X.Clone(), 2)
	if !g1.Equal(g2) {
		t.Fatal("KNN output depends on something besides the features")
	}
}

func TestKNNRecoversPartOfRealGraph(t *testing.T) {
	// On a feature-correlated dataset the KNN substitute graph should be
	// much more class-homophilous than random — the property Table III
	// relies on.
	ds := datasets.Load("cora")
	knn := KNN(ds.X, 2)
	rnd := Random(ds.X.Rows, ds.Graph.NumUndirectedEdges(), 1.0, 11)
	hKNN := knn.Homophily(ds.Labels)
	hRnd := rnd.Homophily(ds.Labels)
	if hKNN < hRnd+0.2 {
		t.Fatalf("KNN homophily %v not clearly above random %v", hKNN, hRnd)
	}
}

func TestPropKNNDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, _ := clusteredFeatures(rng, 20+rng.Intn(30), 8, 3)
		return KNN(x, 2).Equal(KNN(x, 2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPropCosineSymmetricRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 6)
		b := make([]float64, 6)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		s1 := CosineSim(a, b)
		s2 := CosineSim(b, a)
		return math.Abs(s1-s2) < 1e-12 && s1 >= -1-1e-12 && s1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
