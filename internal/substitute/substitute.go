// Package substitute builds the substitute adjacency matrices GNNVault's
// public backbone is trained with (paper Sec. IV-C). The substitute graph
// is derived from *public node features only* — never from the private
// edges — so deploying it in the untrusted world leaks nothing.
//
// Three constructions from the paper are provided:
//
//   - KNN(k): connect each node to its k most feature-similar nodes,
//   - Cosine(τ): connect every pair with cosine similarity ≥ τ (Eq. 2),
//   - Random(fraction): an edge-count-matched Erdős–Rényi graph, the
//     misinformation baseline of Table III and Fig. 5.
package substitute

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

// Kind names a substitute-graph construction.
type Kind string

// The substitute graph kinds evaluated in Table III.
const (
	KindKNN    Kind = "knn"
	KindCosine Kind = "cosine"
	KindRandom Kind = "random"
	// KindDNN means "no graph": the backbone degenerates to an MLP on
	// node features (the DNN column of Table III).
	KindDNN Kind = "dnn"
)

// CosineSim returns the cosine similarity of two feature vectors, 0 when
// either has zero norm.
func CosineSim(a, b []float64) float64 {
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// KNN connects each node to its k most similar nodes by cosine similarity
// of the public features (ties broken by lower index). The result is
// symmetrised, so degrees may exceed k.
func KNN(x *mat.Matrix, k int) *graph.Graph {
	n := x.Rows
	if k < 1 {
		panic(fmt.Sprintf("substitute: KNN k=%d < 1", k))
	}
	if k >= n {
		k = n - 1
	}
	norms := rowNorms(x)
	edges := make([][]graph.Edge, workerCountFor(n))
	parallelRows(n, len(edges), func(w, lo, hi int) {
		top := make(simHeap, 0, k+1)
		for i := lo; i < hi; i++ {
			top = top[:0]
			xi := x.Row(i)
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				s := dotSim(xi, x.Row(j), norms[i], norms[j])
				if len(top) < k {
					heap.Push(&top, simEntry{j, s})
				} else if s > top[0].sim {
					top[0] = simEntry{j, s}
					heap.Fix(&top, 0)
				}
			}
			for _, e := range top {
				edges[w] = append(edges[w], graph.Edge{U: i, V: e.node})
			}
		}
	})
	return graph.New(n, flatten(edges))
}

// Cosine connects every node pair whose feature cosine similarity is at
// least tau (Eq. 2 of the paper with F = cosine similarity).
func Cosine(x *mat.Matrix, tau float64) *graph.Graph {
	n := x.Rows
	norms := rowNorms(x)
	edges := make([][]graph.Edge, workerCountFor(n))
	parallelRows(n, len(edges), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			xi := x.Row(i)
			for j := i + 1; j < n; j++ {
				if dotSim(xi, x.Row(j), norms[i], norms[j]) >= tau {
					edges[w] = append(edges[w], graph.Edge{U: i, V: j})
				}
			}
		}
	})
	return graph.New(n, flatten(edges))
}

// CosineDensityMatched picks the threshold τ so the resulting graph has (as
// close as possible) the given number of undirected edges, then builds it.
// Table III samples each substitute graph's density to match the real
// graph; this implements that matching. Returns the graph and the chosen τ.
func CosineDensityMatched(x *mat.Matrix, wantUndirected int) (*graph.Graph, float64) {
	n := x.Rows
	norms := rowNorms(x)
	// Collect all pairwise similarities (n is laptop-scale here) and pick
	// the wantUndirected-th largest as the threshold.
	sims := make([]float64, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		xi := x.Row(i)
		for j := i + 1; j < n; j++ {
			sims = append(sims, dotSim(xi, x.Row(j), norms[i], norms[j]))
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sims)))
	if wantUndirected < 1 {
		wantUndirected = 1
	}
	if wantUndirected > len(sims) {
		wantUndirected = len(sims)
	}
	tau := sims[wantUndirected-1]
	return Cosine(x, tau), tau
}

// Random returns an edge-count-matched random substitute graph: fraction
// scales the number of undirected edges relative to realEdges (Fig. 5's
// "% of random edges" knob; 1.0 matches the real graph's density).
func Random(n, realEdges int, fraction float64, seed int64) *graph.Graph {
	if fraction < 0 {
		panic(fmt.Sprintf("substitute: negative fraction %v", fraction))
	}
	return graph.Random(n, int(float64(realEdges)*fraction), seed)
}

// Build constructs the named substitute kind with its Table III default
// parameters: KNN uses k, cosine density-matches the real edge count, and
// random matches the real edge count. KindDNN returns nil (no graph).
func Build(kind Kind, x *mat.Matrix, k int, realUndirectedEdges int, seed int64) *graph.Graph {
	switch kind {
	case KindKNN:
		return KNN(x, k)
	case KindCosine:
		g, _ := CosineDensityMatched(x, realUndirectedEdges)
		return g
	case KindRandom:
		return Random(x.Rows, realUndirectedEdges, 1.0, seed)
	case KindDNN:
		return nil
	default:
		panic(fmt.Sprintf("substitute: unknown kind %q", kind))
	}
}

// --- internals ---

type simEntry struct {
	node int
	sim  float64
}

// simHeap is a min-heap on similarity so the root is the weakest of the
// current top-k.
type simHeap []simEntry

func (h simHeap) Len() int      { return len(h) }
func (h simHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h simHeap) Less(i, j int) bool {
	if h[i].sim != h[j].sim {
		return h[i].sim < h[j].sim
	}
	return h[i].node > h[j].node // prefer lower index on ties
}
func (h *simHeap) Push(x any) { *h = append(*h, x.(simEntry)) }
func (h *simHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func rowNorms(x *mat.Matrix) []float64 {
	norms := make([]float64, x.Rows)
	for i := range norms {
		s := 0.0
		for _, v := range x.Row(i) {
			s += v * v
		}
		norms[i] = math.Sqrt(s)
	}
	return norms
}

func dotSim(a, b []float64, na, nb float64) float64 {
	if na == 0 || nb == 0 {
		return 0
	}
	dot := 0.0
	for i := range a {
		dot += a[i] * b[i]
	}
	return dot / (na * nb)
}

func workerCountFor(n int) int {
	w := runtime.GOMAXPROCS(0)
	if n < 128 || w < 1 {
		return 1
	}
	return w
}

func parallelRows(n, workers int, body func(w, lo, hi int)) {
	if workers <= 1 {
		body(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			body(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

func flatten(parts [][]graph.Edge) []graph.Edge {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]graph.Edge, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
