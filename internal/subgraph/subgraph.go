// Package subgraph is the minibatch inference engine under GNNVault's
// node-level serving path: GraphSAGE-style L-hop neighborhood expansion
// with per-hop fanout sampling, followed by induced-subgraph extraction
// that relabels node IDs into a small CSR whose values are gathered from
// the full GCN-normalised adjacency.
//
// Full-graph GCN inference costs O(graph) per query; a node-level query
// ("what is the label of node u?") touches only u's L-hop neighborhood.
// The engine turns each query batch into a tiny induced-CSR forward pass:
//
//  1. Expand: BFS from the seed nodes over one CSR adjacency, visiting at
//     most Fanout sampled neighbours per node per hop. Seeds occupy local
//     IDs 0..len(seeds)-1, so the caller reads its answers off the first
//     rows of any per-node result.
//  2. Induce: for any adjacency over the same node universe, materialise
//     the sub-CSR restricted to the extracted set — values copied from
//     the full normalised operator, rows capped at Fanout entries with
//     Horvitz–Thompson rescaling so sampled rows estimate the full
//     restricted aggregate.
//  3. GatherRowsInto: copy the extracted nodes' feature rows into a
//     caller-owned dense workspace.
//
// Everything runs against pre-sized, caller-owned buffers (Plan bounds
// every buffer from hops × fanout × seeds at plan time, which is when the
// enclave EPC is charged), so the hot path performs zero heap
// allocations. Sampling is deterministic: the same (seeds, Config) always
// extracts the same subgraph.
package subgraph

import (
	"errors"
	"fmt"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

// Named errors for the hot serving path. They carry no per-call context so
// callers never pay a fmt in the query loop; wrap them at the edges.
var (
	// ErrSeedOutOfRange is returned when a seed node ID falls outside the
	// planned graph's node range.
	ErrSeedOutOfRange = errors.New("subgraph: seed node out of range")
	// ErrDuplicateSeed is returned when the same seed appears twice in one
	// extraction; callers coalesce and deduplicate batches first.
	ErrDuplicateSeed = errors.New("subgraph: duplicate seed node")
	// ErrTooManySeeds is returned when a batch exceeds the plan's MaxSeeds.
	ErrTooManySeeds = errors.New("subgraph: seed batch exceeds planned capacity")
	// ErrNoSeeds is returned for an empty seed batch.
	ErrNoSeeds = errors.New("subgraph: empty seed batch")
)

// Config fixes the sampling geometry of one subgraph serving plan.
type Config struct {
	// Hops is the BFS depth L. For exact-GCN receptive fields it should
	// be at least the total message-passing depth of the served model;
	// smaller values trade accuracy for latency.
	Hops int
	// Fanout caps how many neighbours are sampled per node per hop, and
	// how many in-set neighbours an induced row keeps. 0 (or negative)
	// means unlimited: exact L-hop extraction, worst-case O(graph).
	Fanout int
	// Seed drives the deterministic sampler. Extraction is a pure
	// function of (Seed, seed nodes), independent of previous queries.
	Seed uint64
}

// Plan bounds every buffer a subgraph workspace needs from the sampling
// geometry, so callers (and the enclave EPC ledger) are charged once, at
// plan time, for the worst case.
type Plan struct {
	Cfg Config
	// MaxSeeds is the largest seed batch one extraction accepts.
	MaxSeeds int
	// N is the full graph's node count.
	N int
	// CapNodes is the worst-case extracted node count:
	// MaxSeeds·(1+F+F²+…+F^L) clamped to N (and exactly N for unlimited
	// fanout).
	CapNodes int
}

// NewPlan sizes a plan for batches of up to maxSeeds seeds over an
// n-node graph. It panics on non-positive hops, maxSeeds, or n — plan
// construction is configuration, not a request path.
func NewPlan(cfg Config, maxSeeds, n int) Plan {
	if cfg.Hops <= 0 || maxSeeds <= 0 || n <= 0 {
		panic(fmt.Sprintf("subgraph: invalid plan (hops=%d maxSeeds=%d n=%d)", cfg.Hops, maxSeeds, n))
	}
	if maxSeeds > n {
		maxSeeds = n
	}
	cap := n
	if cfg.Fanout > 0 {
		frontier, total := maxSeeds, maxSeeds
		for h := 0; h < cfg.Hops && total < n; h++ {
			frontier *= cfg.Fanout
			total += frontier
		}
		if total < n {
			cap = total
		}
	}
	return Plan{Cfg: cfg, MaxSeeds: maxSeeds, N: n, CapNodes: cap}
}

// CapEdges bounds the non-zeros of one induced CSR over an adjacency with
// the given full-graph nnz: each extracted row keeps at most Fanout
// neighbours plus its self loop, and can never exceed the full operator.
func (p Plan) CapEdges(nnz int) int {
	if p.Cfg.Fanout <= 0 {
		return nnz
	}
	cap := p.CapNodes * (p.Cfg.Fanout + 1)
	if cap > nnz {
		cap = nnz
	}
	return cap
}

// Workspace holds the expansion state for one extraction stream: visit
// stamps, the global→local relabeling, the extracted node list, and the
// deterministic sampler. One Workspace belongs to one goroutine at a time.
type Workspace struct {
	plan Plan

	// stamp[u]==epoch marks u as extracted this round; epochs avoid an
	// O(N) clear per query. local[u] is u's local (relabeled) ID, valid
	// only where stamped.
	stamp []uint32
	epoch uint32
	local []int

	nodes  []int // extracted global IDs; [0:numSeeds] are the seeds, in order
	hopEnd []int // hopEnd[h] = node count after hop h (hopEnd[0] = numSeeds)

	rng  uint64 // xorshift64* sampler state
	resv []int  // reservoir of sampled row positions, cap Fanout
}

// NewWorkspace allocates the expansion buffers the plan bounds.
func (p Plan) NewWorkspace() *Workspace {
	return &Workspace{
		plan:   p,
		stamp:  make([]uint32, p.N),
		local:  make([]int, p.N),
		nodes:  make([]int, 0, p.CapNodes),
		hopEnd: make([]int, 0, p.Cfg.Hops+1),
		resv:   make([]int, max(p.Cfg.Fanout, 0)),
	}
}

// Plan returns the sizing this workspace was built from.
func (ws *Workspace) Plan() Plan { return ws.plan }

// NumBytes returns the workspace's buffer footprint (stamps, relabeling,
// node list, reservoir), for memory accounting.
func (ws *Workspace) NumBytes() int64 {
	return int64(len(ws.stamp))*4 +
		int64(len(ws.local)+cap(ws.nodes)+cap(ws.hopEnd)+cap(ws.resv))*8
}

// Nodes returns the extracted global node IDs of the last Expand, seeds
// first. The slice aliases workspace memory and is overwritten by the
// next Expand.
func (ws *Workspace) Nodes() []int { return ws.nodes }

// NumNodes returns the extracted node count of the last Expand.
func (ws *Workspace) NumNodes() int { return len(ws.nodes) }

// xorshift64* step; splitmix-style seeding happens in reseed.
func (ws *Workspace) next() uint64 {
	x := ws.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	ws.rng = x
	return x * 0x2545F4914F6CDD1D
}

// intn returns a deterministic sample from [0,n). n must be positive.
func (ws *Workspace) intn(n int) int {
	return int(ws.next() % uint64(n))
}

// reseed derives the sampler state from the plan seed and the seed batch,
// so extraction is a pure function of the query.
func (ws *Workspace) reseed(seeds []int) {
	h := ws.plan.Cfg.Seed ^ 0x9E3779B97F4A7C15
	for _, s := range seeds {
		h ^= uint64(s) + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
	}
	if h == 0 {
		h = 1 // xorshift state must be non-zero
	}
	ws.rng = h
}

// bump starts a new extraction epoch, clearing stamps lazily (a full
// clear happens only on uint32 wraparound).
func (ws *Workspace) bump() {
	ws.epoch++
	if ws.epoch == 0 {
		clear(ws.stamp)
		ws.epoch = 1
	}
}

// visit stamps global node v with the next local ID if unseen.
func (ws *Workspace) visit(v int) {
	if ws.stamp[v] != ws.epoch {
		ws.stamp[v] = ws.epoch
		ws.local[v] = len(ws.nodes)
		ws.nodes = append(ws.nodes, v)
	}
}

// Expand runs the L-hop BFS from seeds over adj, sampling at most Fanout
// non-self neighbours per expanded node per hop (reservoir sampling, so
// every neighbour is equally likely). It returns the extracted node
// count. Seeds take local IDs 0..len(seeds)-1; later nodes follow in BFS
// discovery order, which keeps each hop's rows contiguous in the induced
// CSR (frontier locality). Expand never allocates.
func (ws *Workspace) Expand(adj *graph.NormAdjacency, seeds []int) (int, error) {
	if adj.N != ws.plan.N {
		return 0, fmt.Errorf("subgraph: adjacency over %d nodes, plan over %d", adj.N, ws.plan.N)
	}
	if len(seeds) == 0 {
		return 0, ErrNoSeeds
	}
	if len(seeds) > ws.plan.MaxSeeds {
		return 0, ErrTooManySeeds
	}
	ws.bump()
	ws.nodes = ws.nodes[:0]
	ws.hopEnd = ws.hopEnd[:0]
	for _, s := range seeds {
		if s < 0 || s >= ws.plan.N {
			return 0, ErrSeedOutOfRange
		}
		if ws.stamp[s] == ws.epoch {
			return 0, ErrDuplicateSeed
		}
		ws.visit(s)
	}
	ws.reseed(seeds)
	ws.hopEnd = append(ws.hopEnd, len(ws.nodes))

	fanout := ws.plan.Cfg.Fanout
	lo, hi := 0, len(ws.nodes)
	for h := 0; h < ws.plan.Cfg.Hops; h++ {
		for i := lo; i < hi; i++ {
			u := ws.nodes[i]
			rlo, rhi := adj.RowPtr[u], adj.RowPtr[u+1]
			// rhi-rlo counts the self loop too, so this bound is safe even
			// for operators without one.
			if fanout <= 0 || rhi-rlo <= fanout {
				// Unlimited (or small-degree) row: visit every neighbour.
				for p := rlo; p < rhi; p++ {
					if v := adj.ColIdx[p]; v != u {
						ws.visit(v)
					}
				}
				continue
			}
			// Reservoir-sample fanout of the non-self entries.
			seen := 0
			for p := rlo; p < rhi; p++ {
				if adj.ColIdx[p] == u {
					continue
				}
				if seen < fanout {
					ws.resv[seen] = p
				} else if j := ws.intn(seen + 1); j < fanout {
					ws.resv[j] = p
				}
				seen++
			}
			for _, p := range ws.resv[:min(seen, fanout)] {
				ws.visit(adj.ColIdx[p])
			}
		}
		ws.hopEnd = append(ws.hopEnd, len(ws.nodes))
		lo, hi = hi, len(ws.nodes)
	}
	return len(ws.nodes), nil
}

// CSRSpace holds one induced sub-CSR's pre-sized buffers plus the
// graph.NormAdjacency header that views them. A plan typically owns two:
// one for the public substitute operator (normal world) and one for the
// private operator (enclave-resident, EPC-charged).
type CSRSpace struct {
	rowPtr []int
	colIdx []int
	val    []float64
	sub    graph.NormAdjacency
}

// NewCSRSpace sizes an induced-CSR buffer set for adjacencies with up to
// nnz full-graph non-zeros.
func (p Plan) NewCSRSpace(nnz int) *CSRSpace {
	capEdges := p.CapEdges(nnz)
	return &CSRSpace{
		rowPtr: make([]int, p.CapNodes+1),
		colIdx: make([]int, 0, capEdges),
		val:    make([]float64, 0, capEdges),
	}
}

// NumBytes returns the buffer footprint — the quantity charged against
// the enclave EPC for the private operator's CSR space.
func (cs *CSRSpace) NumBytes() int64 {
	return int64(len(cs.rowPtr))*8 + int64(cap(cs.colIdx))*8 + int64(cap(cs.val))*8
}

// Sub returns the induced operator of the last Induce into this space.
// The view aliases the space's buffers and is overwritten by the next
// Induce.
func (cs *CSRSpace) Sub() *graph.NormAdjacency { return &cs.sub }

// Induce materialises the sub-CSR of adj restricted to the last Expand's
// node set, relabeled to local IDs. adj may be any normalised operator
// over the same node universe — the expansion adjacency or another one
// (GNNVault induces the private operator over the publicly-expanded set).
//
// Values are gathered from the full operator, so rows whose neighbourhood
// is entirely extracted reproduce the full-graph aggregation exactly.
// When Fanout caps a row, the kept non-self values are rescaled by
// (candidates/kept) — the Horvitz–Thompson estimate of the restricted row
// aggregate. Self loops are always kept and never rescaled. Induce never
// allocates.
func (ws *Workspace) Induce(adj *graph.NormAdjacency, cs *CSRSpace) (*graph.NormAdjacency, error) {
	if adj.N != ws.plan.N {
		return nil, fmt.Errorf("subgraph: adjacency over %d nodes, plan over %d", adj.N, ws.plan.N)
	}
	fanout := ws.plan.Cfg.Fanout
	cs.colIdx = cs.colIdx[:0]
	cs.val = cs.val[:0]
	cs.rowPtr[0] = 0
	for i, u := range ws.nodes {
		selfVal := 0.0
		hasSelf := false
		kept := 0 // non-self in-set entries appended (or reservoir-held)
		seen := 0 // non-self in-set candidates
		for p := adj.RowPtr[u]; p < adj.RowPtr[u+1]; p++ {
			v := adj.ColIdx[p]
			if v == u {
				selfVal = adj.Val[p]
				hasSelf = true
				continue
			}
			if ws.stamp[v] != ws.epoch {
				continue
			}
			if fanout <= 0 || seen < fanout {
				cs.colIdx = append(cs.colIdx, ws.local[v])
				cs.val = append(cs.val, adj.Val[p])
				kept++
			} else if j := ws.intn(seen + 1); j < fanout {
				// Replace a reservoir slot in the already-appended row.
				at := len(cs.colIdx) - kept + j
				cs.colIdx[at] = ws.local[v]
				cs.val[at] = adj.Val[p]
			}
			seen++
		}
		if fanout > 0 && seen > kept && kept > 0 {
			// Row was sampled: rescale survivors to estimate the full
			// restricted aggregate.
			scale := float64(seen) / float64(kept)
			for at := len(cs.val) - kept; at < len(cs.val); at++ {
				cs.val[at] *= scale
			}
		}
		if hasSelf {
			cs.colIdx = append(cs.colIdx, i)
			cs.val = append(cs.val, selfVal)
		}
		cs.rowPtr[i+1] = len(cs.colIdx)
	}
	s := len(ws.nodes)
	cs.sub = graph.NormAdjacency{
		N:      s,
		RowPtr: cs.rowPtr[:s+1],
		ColIdx: cs.colIdx,
		Val:    cs.val,
	}
	return &cs.sub, nil
}

// GatherRowsInto copies x's rows for the given global node IDs into dst's
// first len(nodes) rows. dst must already be viewed to len(nodes) rows of
// x.Cols columns; the copy never allocates.
func GatherRowsInto(dst, x *mat.Matrix, nodes []int) {
	if dst.Rows != len(nodes) || dst.Cols != x.Cols {
		panic(fmt.Sprintf("subgraph: gather destination %s, want %dx%d", dst.Shape(), len(nodes), x.Cols))
	}
	d := x.Cols
	for i, u := range nodes {
		copy(dst.Data[i*d:(i+1)*d], x.Data[u*d:(u+1)*d])
	}
}
