package subgraph

import (
	"testing"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

// FuzzInducedSubgraph checks the extraction invariant against a dense
// reference implementation on fuzzer-shaped graphs: after a hop-1
// expansion with unlimited fanout, the seed rows of
// (relabeled induced CSR) × (gathered feature rows) must equal the same
// rows of the dense full-graph aggregation Â·X — the seeds' 1-hop
// neighbourhood is entirely extracted, so their restricted rows are the
// full rows.
func FuzzInducedSubgraph(f *testing.F) {
	f.Add(uint8(8), uint16(0xBEEF), uint8(2), uint8(3))
	f.Add(uint8(20), uint16(12345), uint8(5), uint8(1))
	f.Add(uint8(2), uint16(7), uint8(1), uint8(1))
	f.Add(uint8(50), uint16(60000), uint8(7), uint8(4))

	f.Fuzz(func(t *testing.T, nRaw uint8, edgeBits uint16, seedRaw, kRaw uint8) {
		n := int(nRaw)%50 + 2
		numEdges := int(edgeBits) % (n * 2)
		g := graph.Random(n, numEdges, int64(edgeBits)*31+int64(seedRaw))
		adj := graph.Normalize(g)

		// Derive 1..4 distinct in-range seeds from the fuzz input.
		numSeeds := int(kRaw)%4 + 1
		var seeds []int
		used := make(map[int]bool)
		s := int(seedRaw)
		for len(seeds) < numSeeds {
			s = (s*31 + 17) % n
			if !used[s] {
				used[s] = true
				seeds = append(seeds, s)
			}
		}

		p := NewPlan(Config{Hops: 1}, len(seeds), n)
		ws := p.NewWorkspace()
		cs := p.NewCSRSpace(adj.NNZ())
		cnt, err := ws.Expand(adj, seeds)
		if err != nil {
			t.Fatalf("Expand(%v): %v", seeds, err)
		}
		sub, err := ws.Induce(adj, cs)
		if err != nil {
			t.Fatalf("Induce: %v", err)
		}
		if sub.N != cnt {
			t.Fatalf("induced N = %d, extracted %d", sub.N, cnt)
		}

		// Deterministic pseudo-features keyed off the node ID.
		d := 3
		x := mat.New(n, d)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				x.Set(i, j, float64((i*7+j*13)%11)-5)
			}
		}
		gathered := mat.New(cnt, d)
		GatherRowsInto(gathered, x, ws.Nodes())

		// Dense reference: full Â as a dense matrix times X.
		want := mat.MatMulSerial(adj.Dense(), x)
		got := sub.MulDenseSerial(gathered)

		for i, seed := range seeds {
			for j := 0; j < d; j++ {
				gv, wv := got.At(i, j), want.At(seed, j)
				if diff := gv - wv; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("n=%d edges=%d seeds=%v: seed %d col %d: induced %.12f, dense reference %.12f",
						n, numEdges, seeds, seed, j, gv, wv)
				}
			}
		}

		// Structural invariants that hold for every extraction.
		for i := 0; i < sub.N; i++ {
			if sub.RowPtr[i+1] < sub.RowPtr[i] {
				t.Fatalf("row pointers not monotone at %d", i)
			}
			for pi := sub.RowPtr[i]; pi < sub.RowPtr[i+1]; pi++ {
				if c := sub.ColIdx[pi]; c < 0 || c >= sub.N {
					t.Fatalf("induced col %d out of range %d", c, sub.N)
				}
			}
		}
	})
}
