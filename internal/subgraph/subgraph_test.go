package subgraph

import (
	"errors"
	"math/rand"
	"testing"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

// testGraph builds a deterministic random graph and its normalisation.
func testGraph(t testing.TB, n, edges int, seed int64) (*graph.Graph, *graph.NormAdjacency) {
	t.Helper()
	g := graph.Random(n, edges, seed)
	return g, graph.Normalize(g)
}

func TestPlanSizing(t *testing.T) {
	p := NewPlan(Config{Hops: 2, Fanout: 10}, 8, 100000)
	want := 8 * (1 + 10 + 100)
	if p.CapNodes != want {
		t.Fatalf("CapNodes = %d, want %d", p.CapNodes, want)
	}
	if got := p.CapEdges(1 << 30); got != want*11 {
		t.Fatalf("CapEdges = %d, want %d", got, want*11)
	}
	// Unlimited fanout must cover the whole graph.
	p0 := NewPlan(Config{Hops: 3}, 4, 500)
	if p0.CapNodes != 500 {
		t.Fatalf("unlimited-fanout CapNodes = %d, want 500", p0.CapNodes)
	}
	if got := p0.CapEdges(1234); got != 1234 {
		t.Fatalf("unlimited-fanout CapEdges = %d, want 1234", got)
	}
	// Sizing saturates at N even for explosive fanout.
	pBig := NewPlan(Config{Hops: 4, Fanout: 1000}, 64, 300)
	if pBig.CapNodes != 300 {
		t.Fatalf("saturated CapNodes = %d, want 300", pBig.CapNodes)
	}
}

func TestExpandExactLHop(t *testing.T) {
	g, adj := testGraph(t, 200, 400, 7)
	p := NewPlan(Config{Hops: 2}, 4, g.N())
	ws := p.NewWorkspace()

	seeds := []int{3, 77}
	n, err := ws.Expand(adj, seeds)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}

	// Reference: exact 2-hop BFS over the raw graph.
	want := map[int]bool{}
	frontier := append([]int{}, seeds...)
	for _, s := range seeds {
		want[s] = true
	}
	for hop := 0; hop < 2; hop++ {
		var next []int
		for _, u := range frontier {
			for _, v := range g.Neighbors(u) {
				if !want[v] {
					want[v] = true
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	if n != len(want) {
		t.Fatalf("extracted %d nodes, want %d", n, len(want))
	}
	for i, u := range ws.Nodes() {
		if !want[u] {
			t.Fatalf("extracted node %d not in reference 2-hop set", u)
		}
		if i < len(seeds) && u != seeds[i] {
			t.Fatalf("local %d = %d, want seed %d", i, u, seeds[i])
		}
	}
}

func TestExpandFanoutBound(t *testing.T) {
	g, adj := testGraph(t, 400, 3000, 3)
	p := NewPlan(Config{Hops: 2, Fanout: 3, Seed: 9}, 2, g.N())
	ws := p.NewWorkspace()
	n, err := ws.Expand(adj, []int{1, 2})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if n > p.CapNodes {
		t.Fatalf("extracted %d nodes > plan cap %d", n, p.CapNodes)
	}
	sub, err := ws.Induce(adj, p.NewCSRSpace(adj.NNZ()))
	if err != nil {
		t.Fatalf("Induce: %v", err)
	}
	for i := 0; i < sub.N; i++ {
		row := sub.RowPtr[i+1] - sub.RowPtr[i]
		if row > p.Cfg.Fanout+1 {
			t.Fatalf("induced row %d has %d entries > fanout+1 = %d", i, row, p.Cfg.Fanout+1)
		}
	}
}

func TestExpandDeterminism(t *testing.T) {
	g, adj := testGraph(t, 300, 2000, 5)
	p := NewPlan(Config{Hops: 2, Fanout: 4, Seed: 42}, 4, g.N())
	ws1, ws2 := p.NewWorkspace(), p.NewWorkspace()

	// Interleave unrelated queries on ws2 to prove extraction is a pure
	// function of (seeds, config), not of sampler history.
	if _, err := ws2.Expand(adj, []int{9, 8, 7}); err != nil {
		t.Fatalf("warmup Expand: %v", err)
	}

	seeds := []int{11, 222}
	n1, err := ws1.Expand(adj, seeds)
	if err != nil {
		t.Fatalf("Expand ws1: %v", err)
	}
	n2, err := ws2.Expand(adj, seeds)
	if err != nil {
		t.Fatalf("Expand ws2: %v", err)
	}
	if n1 != n2 {
		t.Fatalf("node counts differ: %d vs %d", n1, n2)
	}
	for i := range ws1.Nodes() {
		if ws1.Nodes()[i] != ws2.Nodes()[i] {
			t.Fatalf("node %d differs: %d vs %d", i, ws1.Nodes()[i], ws2.Nodes()[i])
		}
	}
}

func TestExpandErrors(t *testing.T) {
	_, adj := testGraph(t, 50, 100, 1)
	p := NewPlan(Config{Hops: 1}, 2, 50)
	ws := p.NewWorkspace()
	if _, err := ws.Expand(adj, nil); !errors.Is(err, ErrNoSeeds) {
		t.Fatalf("empty seeds: err = %v, want ErrNoSeeds", err)
	}
	if _, err := ws.Expand(adj, []int{1, 2, 3}); !errors.Is(err, ErrTooManySeeds) {
		t.Fatalf("over cap: err = %v, want ErrTooManySeeds", err)
	}
	if _, err := ws.Expand(adj, []int{-1}); !errors.Is(err, ErrSeedOutOfRange) {
		t.Fatalf("negative: err = %v, want ErrSeedOutOfRange", err)
	}
	if _, err := ws.Expand(adj, []int{50}); !errors.Is(err, ErrSeedOutOfRange) {
		t.Fatalf("== n: err = %v, want ErrSeedOutOfRange", err)
	}
	if _, err := ws.Expand(adj, []int{4, 4}); !errors.Is(err, ErrDuplicateSeed) {
		t.Fatalf("dup: err = %v, want ErrDuplicateSeed", err)
	}
	// A failed Expand must not poison the next one.
	if _, err := ws.Expand(adj, []int{4, 5}); err != nil {
		t.Fatalf("Expand after errors: %v", err)
	}
}

// TestInduceHop1Exact is the non-fuzz form of the extraction invariant:
// with unlimited fanout, the seed rows of (induced CSR)·(gathered
// features) equal the same rows of the full-graph aggregation Â·X.
func TestInduceHop1Exact(t *testing.T) {
	g, adj := testGraph(t, 120, 360, 11)
	rng := rand.New(rand.NewSource(2))
	x := mat.RandUniform(rng, g.N(), 7, -1, 1)

	p := NewPlan(Config{Hops: 1}, 3, g.N())
	ws := p.NewWorkspace()
	cs := p.NewCSRSpace(adj.NNZ())
	seeds := []int{5, 60, 119}
	n, err := ws.Expand(adj, seeds)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	sub, err := ws.Induce(adj, cs)
	if err != nil {
		t.Fatalf("Induce: %v", err)
	}

	gathered := mat.New(n, x.Cols)
	GatherRowsInto(gathered, x, ws.Nodes())
	got := sub.MulDenseSerial(gathered)
	want := adj.MulDenseSerial(x)

	for i, s := range seeds {
		for j := 0; j < x.Cols; j++ {
			g, w := got.At(i, j), want.At(s, j)
			if diff := g - w; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("seed %d col %d: induced %.15f, full %.15f", s, j, g, w)
			}
		}
	}
}

func TestInduceSecondOperator(t *testing.T) {
	// Expansion over a public operator, induction over a different private
	// one on the same node universe — the GNNVault deployment shape.
	gPub, adjPub := testGraph(t, 150, 300, 21)
	_, adjPriv := testGraph(t, 150, 500, 22)
	p := NewPlan(Config{Hops: 2}, 2, gPub.N())
	ws := p.NewWorkspace()
	if _, err := ws.Expand(adjPub, []int{10, 20}); err != nil {
		t.Fatalf("Expand: %v", err)
	}
	sub, err := ws.Induce(adjPriv, p.NewCSRSpace(adjPriv.NNZ()))
	if err != nil {
		t.Fatalf("Induce: %v", err)
	}
	// Every induced entry must correspond to a real private-operator entry
	// between extracted nodes, with its exact value.
	nodes := ws.Nodes()
	for i := 0; i < sub.N; i++ {
		for pi := sub.RowPtr[i]; pi < sub.RowPtr[i+1]; pi++ {
			u, v := nodes[i], nodes[sub.ColIdx[pi]]
			found := false
			for q := adjPriv.RowPtr[u]; q < adjPriv.RowPtr[u+1]; q++ {
				if adjPriv.ColIdx[q] == v {
					if adjPriv.Val[q] != sub.Val[pi] {
						t.Fatalf("entry (%d,%d): induced %v, private %v", u, v, sub.Val[pi], adjPriv.Val[q])
					}
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("induced entry (%d,%d) not in private operator", u, v)
			}
		}
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	g, adj := testGraph(t, 500, 2500, 13)
	p := NewPlan(Config{Hops: 2, Fanout: 5, Seed: 1}, 4, g.N())
	ws := p.NewWorkspace()
	cs := p.NewCSRSpace(adj.NNZ())
	rng := rand.New(rand.NewSource(3))
	x := mat.RandUniform(rng, g.N(), 6, -1, 1)
	feat := mat.New(p.CapNodes, x.Cols)

	seeds := []int{1, 100, 200, 300}
	allocs := testing.AllocsPerRun(50, func() {
		n, err := ws.Expand(adj, seeds)
		if err != nil {
			t.Fatalf("Expand: %v", err)
		}
		if _, err := ws.Induce(adj, cs); err != nil {
			t.Fatalf("Induce: %v", err)
		}
		feat.Rows = n
		feat.Data = feat.Data[:n*feat.Cols]
		GatherRowsInto(feat, x, ws.Nodes())
	})
	if allocs != 0 {
		t.Fatalf("hot extraction path allocates %.1f per run, want 0", allocs)
	}
}
