package exec

import (
	"errors"
	"fmt"

	"gnnvault/internal/mat"
)

// Reduced-precision execution. A machine planned with Config.Elem F32 or
// I8 runs the same compiled program through the reduced kernel families
// (mat's fp32/int8 kernels, graph's narrowing/quantizing SpMM): weights
// are narrowed or column-quantized once at plan time, Run converts its
// float64 inputs at the ECALL boundary into pre-allocated typed buffers,
// every spill buffer and staging tile stores the reduced element, and
// the output is widened (or dequantized) back to float64 so callers see
// the same interface at every precision. Dequantization is folded into
// the existing epilogue — an int8 fused conv is still 2 ops — and the
// tiling/banding drivers are shared with the fp64 engine, so the
// within-precision bit-identity contract (tiled == direct ==
// tile-parallel) carries over: fp32 kernels keep the fp64 family's
// per-element order, int8 accumulates exactly in int32. fp32 is also
// bit-identical fused vs unfused, like fp64; int8 is not — fusion moves
// the requantization point (a fused bias adds to the exact accumulator,
// an unfused one to already-requantized codes), so each fusion state is
// internally bit-stable but the two legitimately differ.

// Elem is the element type of a machine's buffers, tiles and kernels.
type Elem uint8

// The element vocabulary. F64 is the zero value: existing Config
// literals plan the reference engine unchanged.
const (
	F64 Elem = iota // float64, the reference engine
	F32             // float32 kernels, 4-byte buffers/spill/payload
	I8              // symmetric int8 codes, int32 accumulation, 1-byte buffers
)

// Size returns the element width in bytes.
func (e Elem) Size() int {
	switch e {
	case F32:
		return 4
	case I8:
		return 1
	default:
		return 8
	}
}

// String names the element type for diagnostics and benchmark rows.
func (e Elem) String() string {
	switch e {
	case F32:
		return "fp32"
	case I8:
		return "int8"
	default:
		return "fp64"
	}
}

// ErrPrecisionUnsupported is returned when a reduced-precision machine
// is requested for a program containing ops without reduced kernels
// (OpFunc, whose opaque layer runs float64 internally).
var ErrPrecisionUnsupported = errors.New("exec: program contains ops without reduced-precision kernels")

// reduced holds a reduced-precision machine's typed state: value
// buffers, staging tiles, converted operands and scratch. The fp64
// boundary buffers (in-conversion is written into the typed in32/in8
// buffers directly; out64 holds the widened output) are simulation
// conveniences of the untrusted caller side — BufferBytes/TileBytes
// charge only the typed buffers, matching what a real enclave would keep
// resident.
type reduced struct {
	// F32 state.
	spill32 []*mat.Matrix32 // per value; nil for inputs and dead values
	views32 []mat.Matrix32  // per value, bound per Run
	in32    []*mat.Matrix32 // per program input: boundary conversion buffer
	tiles32 []*mat.Matrix32 // per worker staging tile (tiled mode)
	aux32   []opAux32       // per op: narrowed operands

	// I8 state.
	spill8 []*mat.MatrixI8
	views8 []mat.MatrixI8
	in8    []*mat.MatrixI8
	tiles8 []*mat.MatrixI8
	aux8   []opAux8

	scr   []reducedScratch // per tile worker (index 0 serves direct mode)
	out64 *mat.Matrix      // widened/dequantized output, bound as the output view

	// wideHead is the op index whose epilogue computes the program's
	// argmax labels "wide" — from the pre-requantization floats instead of
	// the output codes — or -1. Set for I8 machines when the argmax source
	// is produced by a MatMul/SpMM: the exact int32 accumulator separates
	// logits that requantization to shared int8 codes would collapse, the
	// dominant quantized-argmax error source on thin-margin heads.
	wideHead int
}

// opAux32 carries one op's narrowed operands.
type opAux32 struct {
	w    *mat.Matrix32 // OpMatMul weight
	b    []float32     // OpAddBias bias
	epiB []float32     // fused epilogue bias
}

// opAux8 carries one op's quantized operands and dequantization scales.
type opAux8 struct {
	// w holds an OpMatMul's folded weight codes: the source value's
	// per-column scales multiply into the weight's rows before column
	// quantization (the reduction runs over the source's columns, whose
	// scales vary inside the sum, so they must ride in the weight for the
	// MAC to stay int8×int8→int32).
	w *mat.MatrixI8
	// deq is the per-column combined dequantization scale fed to the
	// epilogue: the folded weight's column scales for MatMul,
	// source-column scale × value scale for SpMM (refreshed per Run).
	deq []float64
	// vs is the SpMM value scale of the current Run, derived from the
	// CSR's ValMaxAbs so re-induced subgraph operators stay calibrated.
	vs float64
	// cs holds the per-column source scales of an OpConcat, aligned to
	// Srcs.
	cs [][]float64
}

// reducedScratch is one tile worker's pre-allocated typed header set,
// mirroring workerScratch, plus the int32 accumulator row the int8
// kernels require (per worker, so tile-parallel runs never share one).
type reducedScratch struct {
	srcTiles32 []mat.Matrix32
	srcPtrs32  []*mat.Matrix32
	tileView32 mat.Matrix32
	dstTile32  mat.Matrix32
	resTile32  mat.Matrix32

	srcTiles8 []mat.MatrixI8
	srcPtrs8  []*mat.MatrixI8
	tileView8 mat.MatrixI8
	dstTile8  mat.MatrixI8
	resTile8  mat.MatrixI8

	acc []int32
}

func (r *reduced) tileBytes() int64 {
	n := int64(0)
	for _, t := range r.tiles32 {
		n += t.NumBytes()
	}
	for _, t := range r.tiles8 {
		n += t.NumBytes()
	}
	return n
}

func (r *reduced) bufferBytes() int64 {
	n := int64(0)
	for _, s := range r.spill32 {
		if s != nil {
			n += s.NumBytes()
		}
	}
	for _, s := range r.spill8 {
		if s != nil {
			n += s.NumBytes()
		}
	}
	return n
}

// planReduced allocates the typed buffers of an F32/I8 machine and
// converts the program's weights, called once from NewMachine after the
// shared (worker/tile) planning. Never called at F64.
func (m *Machine) planReduced() error {
	p, cfg := m.prog, m.cfg
	if !p.tileable {
		return ErrPrecisionUnsupported
	}
	r := &reduced{wideHead: -1}
	m.red = r
	if m.elem == I8 {
		if len(cfg.Scales) != len(p.vals) {
			return fmt.Errorf("exec: int8 machine needs %d per-value scale vectors, got %d (run CalibrateScales)", len(p.vals), len(cfg.Scales))
		}
		for i, v := range p.vals {
			if !v.dead && len(cfg.Scales[i]) != v.width {
				return fmt.Errorf("exec: int8 machine value %d needs %d per-column scales, got %d (run CalibrateScales)", i, v.width, len(cfg.Scales[i]))
			}
		}
		// Wide argmax head: when the argmax source comes straight out of a
		// MatMul/SpMM (the argmax op is always last — builders refuse ops
		// after it), label from that op's epilogue floats. A head produced
		// by an element-wise op keeps the code-space argmax.
		if p.hasArgmax {
			amSrc := p.ops[len(p.ops)-1].Srcs[0]
			for i := len(p.ops) - 2; i >= 0; i-- {
				op := &p.ops[i]
				if op.Dst != amSrc {
					continue
				}
				if op.Kind == OpMatMul || op.Kind == OpSpMM {
					r.wideHead = i
				}
				break
			}
		}
	}
	switch m.elem {
	case F32:
		r.spill32 = make([]*mat.Matrix32, len(p.vals))
		r.views32 = make([]mat.Matrix32, len(p.vals))
		r.in32 = make([]*mat.Matrix32, p.numInputs)
		for i, v := range p.vals {
			switch {
			case v.input >= 0:
				r.in32[v.input] = mat.New32(p.MaxRows, v.width)
			case !v.dead:
				r.spill32[i] = mat.New32(p.MaxRows+v.extra, v.width)
			}
		}
		if m.tiled {
			r.tiles32 = make([]*mat.Matrix32, m.tileWorkers)
			for w := range r.tiles32 {
				r.tiles32[w] = mat.New32(cfg.TileRows, p.maxWidth)
			}
		}
		r.aux32 = make([]opAux32, len(p.ops))
		for i := range p.ops {
			op, a := &p.ops[i], &r.aux32[i]
			if op.W != nil {
				a.w = mat.New32(op.W.Rows, op.W.Cols)
				mat.Convert32Into(a.w, op.W)
			}
			a.b = narrow(op.B)
			a.epiB = narrow(op.Epi.Bias)
		}
	case I8:
		r.spill8 = make([]*mat.MatrixI8, len(p.vals))
		r.views8 = make([]mat.MatrixI8, len(p.vals))
		r.in8 = make([]*mat.MatrixI8, p.numInputs)
		for i, v := range p.vals {
			switch {
			case v.input >= 0:
				r.in8[v.input] = mat.NewI8(p.MaxRows, v.width)
			case !v.dead:
				r.spill8[i] = mat.NewI8(p.MaxRows+v.extra, v.width)
			}
		}
		if m.tiled {
			r.tiles8 = make([]*mat.MatrixI8, m.tileWorkers)
			for w := range r.tiles8 {
				r.tiles8[w] = mat.NewI8(cfg.TileRows, p.maxWidth)
			}
		}
		r.aux8 = make([]opAux8, len(p.ops))
		for i := range p.ops {
			op, a := &p.ops[i], &r.aux8[i]
			switch op.Kind {
			case OpMatMul:
				// Fold the source's per-column scales into the weight rows,
				// then column-quantize the folded matrix: the MAC consumes raw
				// codes and the epilogue dequantizes with the folded column
				// scales alone.
				ss := cfg.Scales[op.Srcs[0]]
				folded := mat.New(op.W.Rows, op.W.Cols)
				for k := 0; k < op.W.Rows; k++ {
					frow := folded.Row(k)
					wrow := op.W.Row(k)
					for j, v := range wrow {
						frow[j] = v * ss[k]
					}
				}
				a.w, a.deq = mat.QuantizeColumnsI8(folded)
			case OpSpMM:
				a.deq = make([]float64, p.vals[op.Dst].width)
			case OpConcat:
				a.cs = make([][]float64, len(op.Srcs))
				for k, s := range op.Srcs {
					a.cs[k] = cfg.Scales[s]
				}
			}
		}
	}
	r.out64 = mat.New(p.MaxRows, p.vals[p.output].width)
	r.scr = make([]reducedScratch, m.tileWorkers)
	for w := range r.scr {
		s := &r.scr[w]
		switch m.elem {
		case F32:
			s.srcTiles32 = make([]mat.Matrix32, p.maxArity)
			s.srcPtrs32 = make([]*mat.Matrix32, p.maxArity)
		case I8:
			s.srcTiles8 = make([]mat.MatrixI8, p.maxArity)
			s.srcPtrs8 = make([]*mat.MatrixI8, p.maxArity)
			s.acc = make([]int32, p.maxWidth)
		}
	}
	return nil
}

// narrow converts a float64 vector to float32, nil for nil.
func narrow(v []float64) []float32 {
	if v == nil {
		return nil
	}
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// runReduced is Run's body for F32/I8 machines: convert inputs at the
// boundary, bind typed views, execute the op sequence through the shared
// direct/serial-tile/tile-parallel drivers, then widen (or dequantize)
// the output into the float64 view callers read. Allocation-free, like
// the F64 body.
func (m *Machine) runReduced(rows int, inputs []*mat.Matrix, labels []int) *mat.Matrix {
	p, r := m.prog, m.red
	busy0 := threadCPUNs()
	for i, v := range p.vals {
		switch {
		case v.input >= 0:
			in := inputs[v.input]
			if in.Rows != rows || in.Cols != v.width {
				panic(fmt.Sprintf("exec: input %d is %s, want %dx%d", v.input, in.Shape(), rows, v.width))
			}
			if m.elem == F32 {
				r.in32[v.input].ViewRows(0, rows, &r.views32[i])
				mat.Convert32Into(&r.views32[i], in)
			} else {
				r.in8[v.input].ViewRows(0, rows, &r.views8[i])
				mat.QuantizeColumnsI8Into(&r.views8[i], in, m.cfg.Scales[i])
			}
		case !v.dead:
			if m.elem == F32 {
				r.spill32[i].ViewRows(0, rows+v.extra, &r.views32[i])
			} else {
				r.spill8[i].ViewRows(0, rows+v.extra, &r.views8[i])
			}
		}
	}
	if m.elem == I8 {
		// Refresh each SpMM's value scale from the operator's current
		// contents: the subgraph path re-induces the CSR between runs, and
		// quantizing values on the fly under a per-run scale keeps every
		// execution mode (and every re-induction of the same rows)
		// bit-identical without materialising a second value array.
		for i := range p.ops {
			op := &p.ops[i]
			if op.Kind != OpSpMM {
				continue
			}
			a := &r.aux8[i]
			a.vs = mat.SymmetricScale(op.CSR.ValMaxAbs())
			ss := m.cfg.Scales[op.Srcs[0]]
			for j := range a.deq {
				a.deq[j] = a.vs * ss[j]
			}
		}
	}
	// Boundary conversion/quantization is this shard's own work; the
	// entry barrier below is not.
	m.busyNs += threadCPUNs() - busy0
	recOn := m.rec.Enabled()
	if recOn {
		m.profRuns++
	}
	if m.sync != nil {
		// Fleet entry barrier: every peer's typed views are bound (and
		// boundary-converted) before any shard starts reading across.
		if err := m.sync(); err != nil {
			panic(&fleetAbort{cause: err})
		}
	}
	for i := range p.ops {
		op := &p.ops[i]
		if op.Kind == OpSpMM && op.CSR.N != rows {
			panic(fmt.Sprintf("exec: SpMM operator over %d rows, run over %d", op.CSR.N, rows))
		}
		var t0 int64
		if recOn {
			t0 = m.rec.Clock()
		}
		if op.Kind == OpHalo {
			m.runHalo(op, rows)
			if recOn {
				m.opDone(i, op, rows, t0)
			}
			continue
		}
		opBusy0 := threadCPUNs()
		switch {
		case !m.tiled:
			if m.elem == F32 {
				m.runDirect32(i, op, rows, labels)
			} else {
				m.runDirectI8(i, op, rows, labels)
			}
		case m.tileWorkers > 1 && rows > m.cfg.TileRows:
			m.runOpParallel(i, op, rows, labels)
		default:
			for lo := 0; lo < rows; lo += m.cfg.TileRows {
				hi := min(lo+m.cfg.TileRows, rows)
				m.runTile(0, i, op, lo, hi, labels)
			}
		}
		m.busyNs += threadCPUNs() - opBusy0
		if recOn {
			m.opDone(i, op, rows, t0)
		}
	}
	outBusy0 := threadCPUNs()
	out := &m.views[p.output]
	r.out64.ViewRows(0, rows, out)
	if m.elem == F32 {
		mat.Widen32Into(out, &r.views32[p.output])
	} else {
		mat.DequantizeColumnsI8Into(out, &r.views8[p.output], m.cfg.Scales[p.output])
	}
	m.busyNs += threadCPUNs() - outBusy0
	return out
}

// runDirect32 executes one op at full height on the fp32 views, the F32
// counterpart of runDirect.
func (m *Machine) runDirect32(idx int, op *Op, rows int, labels []int) {
	r := m.red
	a := &r.aux32[idx]
	w := m.cfg.Workers
	var res *mat.Matrix32
	if op.Epi.Res >= 0 {
		res = &r.views32[op.Epi.Res]
	}
	switch op.Kind {
	case OpMatMul:
		mat.MatMul32BiasReLUInto(&r.views32[op.Dst], &r.views32[op.Srcs[0]], a.w, a.epiB, res, op.Epi.ReLU, w)
	case OpSpMM:
		op.CSR.MulDense32BiasReLUInto(&r.views32[op.Dst], &r.views32[op.Srcs[0]], a.epiB, res, op.Epi.ReLU, w)
	case OpAddBias:
		mat.AddBias32Into(&r.views32[op.Dst], &r.views32[op.Srcs[0]], a.b)
	case OpReLU:
		mat.ReLU32Into(&r.views32[op.Dst], &r.views32[op.Srcs[0]])
	case OpAdd:
		mat.Add32Into(&r.views32[op.Dst], &r.views32[op.Srcs[0]], &r.views32[op.Srcs[1]])
	case OpConcat:
		ptrs := r.scr[0].srcPtrs32
		for i, s := range op.Srcs {
			ptrs[i] = &r.views32[s]
		}
		mat.HConcat32Into(&r.views32[op.Dst], ptrs[:len(op.Srcs)]...)
	case OpArgmax:
		if labels != nil {
			r.views32[op.Srcs[0]].ArgmaxRowsInto(labels[:rows])
		}
	}
}

// runTile32 executes rows [lo, hi) of one op on tile worker w over the
// fp32 buffers, the F32 counterpart of runTile.
func (m *Machine) runTile32(w, idx int, op *Op, lo, hi int, labels []int) {
	r := m.red
	s := &r.scr[w]
	if op.Kind == OpArgmax {
		if labels != nil {
			r.views32[op.Srcs[0]].ViewRows(lo, hi, &s.srcTiles32[0])
			s.srcTiles32[0].ArgmaxRowsInto(labels[lo:hi])
		}
		return
	}
	a := &r.aux32[idx]
	width := m.prog.vals[op.Dst].width
	s.tileView32.Rows = hi - lo
	s.tileView32.Cols = width
	s.tileView32.Data = r.tiles32[w].Data[:(hi-lo)*width]
	var res *mat.Matrix32
	if op.Epi.Res >= 0 {
		r.views32[op.Epi.Res].ViewRows(lo, hi, &s.resTile32)
		res = &s.resTile32
	}
	switch op.Kind {
	case OpMatMul:
		r.views32[op.Srcs[0]].ViewRows(lo, hi, &s.srcTiles32[0])
		mat.MatMul32BiasReLUInto(&s.tileView32, &s.srcTiles32[0], a.w, a.epiB, res, op.Epi.ReLU, 1)
	case OpSpMM:
		op.CSR.MulDense32BiasReLURangeInto(&s.tileView32, &r.views32[op.Srcs[0]], lo, hi, a.epiB, res, op.Epi.ReLU)
	case OpAddBias:
		r.views32[op.Srcs[0]].ViewRows(lo, hi, &s.srcTiles32[0])
		mat.AddBias32Into(&s.tileView32, &s.srcTiles32[0], a.b)
	case OpReLU:
		r.views32[op.Srcs[0]].ViewRows(lo, hi, &s.srcTiles32[0])
		mat.ReLU32Into(&s.tileView32, &s.srcTiles32[0])
	case OpAdd:
		r.views32[op.Srcs[0]].ViewRows(lo, hi, &s.srcTiles32[0])
		r.views32[op.Srcs[1]].ViewRows(lo, hi, &s.srcTiles32[1])
		mat.Add32Into(&s.tileView32, &s.srcTiles32[0], &s.srcTiles32[1])
	case OpConcat:
		for i, src := range op.Srcs {
			r.views32[src].ViewRows(lo, hi, &s.srcTiles32[i])
			s.srcPtrs32[i] = &s.srcTiles32[i]
		}
		mat.HConcat32Into(&s.tileView32, s.srcPtrs32[:len(op.Srcs)]...)
	}
	r.views32[op.Dst].ViewRows(lo, hi, &s.dstTile32)
	mat.Copy32Into(&s.dstTile32, &s.tileView32)
}

// runDirectI8 executes one op at full height on the int8 views, the I8
// counterpart of runDirect. The in-enclave direct form is
// single-threaded by construction, so the int8 kernels are serial and
// worker budgets are ignored.
func (m *Machine) runDirectI8(idx int, op *Op, rows int, labels []int) {
	r := m.red
	a := &r.aux8[idx]
	var res *mat.MatrixI8
	var resScales []float64
	if op.Epi.Res >= 0 {
		res = &r.views8[op.Epi.Res]
		resScales = m.cfg.Scales[op.Epi.Res]
	}
	var wide []int
	if idx == r.wideHead && labels != nil {
		wide = labels[:rows]
	}
	switch op.Kind {
	case OpMatMul:
		mat.MatMulI8EpilogueInto(&r.views8[op.Dst], &r.views8[op.Srcs[0]], a.w, a.deq, op.Epi.Bias, res, resScales, op.Epi.ReLU, m.cfg.Scales[op.Dst], r.scr[0].acc, wide)
	case OpSpMM:
		op.CSR.MulDenseI8EpilogueRangeInto(&r.views8[op.Dst], &r.views8[op.Srcs[0]], 0, rows, a.vs, a.deq, op.Epi.Bias, res, resScales, op.Epi.ReLU, m.cfg.Scales[op.Dst], r.scr[0].acc, wide)
	case OpAddBias:
		addBiasI8(&r.views8[op.Dst], &r.views8[op.Srcs[0]], op.B, m.cfg.Scales[op.Srcs[0]], m.cfg.Scales[op.Dst])
	case OpReLU:
		reluI8(&r.views8[op.Dst], &r.views8[op.Srcs[0]], m.cfg.Scales[op.Srcs[0]], m.cfg.Scales[op.Dst])
	case OpAdd:
		addI8(&r.views8[op.Dst], &r.views8[op.Srcs[0]], &r.views8[op.Srcs[1]],
			m.cfg.Scales[op.Srcs[0]], m.cfg.Scales[op.Srcs[1]], m.cfg.Scales[op.Dst])
	case OpConcat:
		ptrs := r.scr[0].srcPtrs8
		for i, s := range op.Srcs {
			ptrs[i] = &r.views8[s]
		}
		concatI8(&r.views8[op.Dst], ptrs[:len(op.Srcs)], a.cs, m.cfg.Scales[op.Dst])
	case OpArgmax:
		if labels != nil && r.wideHead < 0 {
			r.views8[op.Srcs[0]].ArgmaxRowsScaledInto(labels[:rows], m.cfg.Scales[op.Srcs[0]])
		}
	}
}

// runTileI8 executes rows [lo, hi) of one op on tile worker w over the
// int8 buffers, the I8 counterpart of runTile. Each worker owns its
// int32 accumulator row, so tile-parallel spans never share one.
func (m *Machine) runTileI8(w, idx int, op *Op, lo, hi int, labels []int) {
	r := m.red
	s := &r.scr[w]
	if op.Kind == OpArgmax {
		if labels != nil && r.wideHead < 0 {
			r.views8[op.Srcs[0]].ViewRows(lo, hi, &s.srcTiles8[0])
			s.srcTiles8[0].ArgmaxRowsScaledInto(labels[lo:hi], m.cfg.Scales[op.Srcs[0]])
		}
		return
	}
	a := &r.aux8[idx]
	width := m.prog.vals[op.Dst].width
	s.tileView8.Rows = hi - lo
	s.tileView8.Cols = width
	s.tileView8.Data = r.tiles8[w].Data[:(hi-lo)*width]
	var res *mat.MatrixI8
	var resScales []float64
	if op.Epi.Res >= 0 {
		r.views8[op.Epi.Res].ViewRows(lo, hi, &s.resTile8)
		res = &s.resTile8
		resScales = m.cfg.Scales[op.Epi.Res]
	}
	dstScales := m.cfg.Scales[op.Dst]
	var wide []int
	if idx == r.wideHead && labels != nil {
		wide = labels[lo:hi]
	}
	switch op.Kind {
	case OpMatMul:
		r.views8[op.Srcs[0]].ViewRows(lo, hi, &s.srcTiles8[0])
		mat.MatMulI8EpilogueInto(&s.tileView8, &s.srcTiles8[0], a.w, a.deq, op.Epi.Bias, res, resScales, op.Epi.ReLU, dstScales, s.acc, wide)
	case OpSpMM:
		op.CSR.MulDenseI8EpilogueRangeInto(&s.tileView8, &r.views8[op.Srcs[0]], lo, hi, a.vs, a.deq, op.Epi.Bias, res, resScales, op.Epi.ReLU, dstScales, s.acc, wide)
	case OpAddBias:
		r.views8[op.Srcs[0]].ViewRows(lo, hi, &s.srcTiles8[0])
		addBiasI8(&s.tileView8, &s.srcTiles8[0], op.B, m.cfg.Scales[op.Srcs[0]], dstScales)
	case OpReLU:
		r.views8[op.Srcs[0]].ViewRows(lo, hi, &s.srcTiles8[0])
		reluI8(&s.tileView8, &s.srcTiles8[0], m.cfg.Scales[op.Srcs[0]], dstScales)
	case OpAdd:
		r.views8[op.Srcs[0]].ViewRows(lo, hi, &s.srcTiles8[0])
		r.views8[op.Srcs[1]].ViewRows(lo, hi, &s.srcTiles8[1])
		addI8(&s.tileView8, &s.srcTiles8[0], &s.srcTiles8[1],
			m.cfg.Scales[op.Srcs[0]], m.cfg.Scales[op.Srcs[1]], dstScales)
	case OpConcat:
		for i, src := range op.Srcs {
			r.views8[src].ViewRows(lo, hi, &s.srcTiles8[i])
			s.srcPtrs8[i] = &s.srcTiles8[i]
		}
		concatI8(&s.tileView8, s.srcPtrs8[:len(op.Srcs)], a.cs, dstScales)
	}
	r.views8[op.Dst].ViewRows(lo, hi, &s.dstTile8)
	mat.CopyI8Into(&s.dstTile8, &s.tileView8)
}

// addBiasI8 is the standalone (unfused) int8 bias add: dequantize under
// the source's per-column scales, add the float64 bias, requantize under
// the destination's. dst may alias src.
func addBiasI8(dst, src *mat.MatrixI8, bias []float64, srcScales, dstScales []float64) {
	cols := src.Cols
	for i := 0; i < src.Rows; i++ {
		srow := src.Data[i*cols : (i+1)*cols]
		drow := dst.Data[i*cols : (i+1)*cols]
		for j, q := range srow {
			drow[j] = mat.QuantizeI8(float64(q)*srcScales[j]+bias[j], dstScales[j])
		}
	}
}

// reluI8 is the standalone int8 ReLU: clamp codes at zero, requantizing
// only where source and destination column scales differ (they are equal
// for any column whose calibration maxabs was attained at a positive
// value, making a pure code max the common case).
func reluI8(dst, src *mat.MatrixI8, srcScales, dstScales []float64) {
	cols := src.Cols
	for i := 0; i < src.Rows; i++ {
		srow := src.Data[i*cols : (i+1)*cols]
		drow := dst.Data[i*cols : (i+1)*cols]
		for j, q := range srow {
			if srcScales[j] == dstScales[j] {
				if q > 0 {
					drow[j] = q
				} else {
					drow[j] = 0
				}
				continue
			}
			f := float64(q) * srcScales[j]
			if !(f > 0) {
				f = 0
			}
			drow[j] = mat.QuantizeI8(f, dstScales[j])
		}
	}
}

// addI8 is the standalone int8 element-wise add: dequantize both
// operands, add in float64, requantize at the destination's column scale.
func addI8(dst, a, b *mat.MatrixI8, sa, sb, sd []float64) {
	cols := a.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*cols : (i+1)*cols]
		brow := b.Data[i*cols : (i+1)*cols]
		drow := dst.Data[i*cols : (i+1)*cols]
		for j, q := range arow {
			drow[j] = mat.QuantizeI8(float64(q)*sa[j]+float64(brow[j])*sb[j], sd[j])
		}
	}
}

// concatI8 writes [srcs[0] | srcs[1] | …] into dst, requantizing each
// element from its source column scale to the destination's. Destination
// columns are source columns (concat moves them, calibration sees the
// same values), so the scales match exactly and every element is a plain
// copy in practice; the requantize branch is kept for robustness.
func concatI8(dst *mat.MatrixI8, srcs []*mat.MatrixI8, cs [][]float64, sd []float64) {
	cols := dst.Cols
	for i := 0; i < dst.Rows; i++ {
		out := dst.Data[i*cols : (i+1)*cols]
		off := 0
		for k, s := range srcs {
			srow := s.Data[i*s.Cols : (i+1)*s.Cols]
			for j, q := range srow {
				if cs[k][j] == sd[off+j] {
					out[off+j] = q
				} else {
					out[off+j] = mat.QuantizeI8(float64(q)*cs[k][j], sd[off+j])
				}
			}
			off += s.Cols
		}
	}
}

// CalibrateScales runs the fp64 reference engine over a calibration
// batch and returns, per program value, the symmetric per-column
// activation scales (column maxabs/127 over the batch — the static
// "quantizer preset" an int8 machine needs; per-channel rather than
// per-tensor, so one wide-ranging feature does not cost every other
// column its resolution) plus the reference argmax labels the caller
// checks a quantized plan's agreement against. The reference machine is
// direct with the default worker budget; the fp64 kernels are
// bit-deterministic under banding, so the labels match a serial
// in-enclave fp64 run.
func CalibrateScales(p *Program, rows int, inputs []*mat.Matrix) ([][]float64, []int, error) {
	m, err := p.NewMachine(Config{})
	if err != nil {
		return nil, nil, err
	}
	labels := make([]int, rows)
	out := m.Run(rows, inputs, labels)
	if !p.hasArgmax {
		out.ArgmaxRowsInto(labels)
	}
	scales := make([][]float64, len(p.vals))
	for i, v := range p.vals {
		if v.dead {
			continue
		}
		s := make([]float64, v.width)
		m.views[i].ColMaxAbsInto(s)
		for j, mx := range s {
			s[j] = mat.SymmetricScale(mx)
		}
		scales[i] = s
	}
	return scales, labels, nil
}
