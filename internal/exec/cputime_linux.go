//go:build linux

package exec

import (
	"syscall"
	"unsafe"
)

// clockThreadCPUTimeID is CLOCK_THREAD_CPUTIME_ID: the per-thread CPU
// clock, counting only cycles the calling OS thread actually executed.
const clockThreadCPUTimeID = 3

// threadCPUNs returns the calling OS thread's consumed CPU time. Busy
// accounting uses it instead of the wall clock so a fleet shard whose
// goroutine is preempted mid-kernel — on a shared host the scheduler
// interleaves peer shards inside any wall-clock window — is charged
// only for its own cycles. Callers must be pinned to their thread
// (runtime.LockOSThread) for deltas to be meaningful.
func threadCPUNs() int64 {
	var ts syscall.Timespec
	if _, _, errno := syscall.Syscall(syscall.SYS_CLOCK_GETTIME, clockThreadCPUTimeID, uintptr(unsafe.Pointer(&ts)), 0); errno != 0 {
		return 0
	}
	return syscall.TimespecToNsec(ts)
}
