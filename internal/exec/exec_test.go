package exec

import (
	"math/rand"
	"testing"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

// testCSR builds a deterministic random normalised adjacency over n nodes.
func testCSR(n int, seed int64) *graph.NormAdjacency {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for i := 0; i < n*3; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	return graph.Normalize(graph.New(n, edges))
}

func randMat(rng *rand.Rand, rows, cols int) *mat.Matrix {
	m := mat.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// buildGCNLikeProgram compiles a two-layer parallel-wired forward pass that
// exercises every tileable op kind: MatMul, SpMM, AddBias, ReLU, Add,
// Concat, Argmax.
func buildGCNLikeProgram(t testing.TB, n int, csr *graph.NormAdjacency) (*Program, []*mat.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	const d0, d1, h, c = 6, 4, 5, 3
	w1 := randMat(rng, d0, h)
	b1 := randMat(rng, 1, h).Data
	w2 := randMat(rng, h+d1, c)
	b2 := randMat(rng, 1, c).Data
	wSkip := randMat(rng, d0, h)

	b := NewBuilder(n)
	in0 := b.Input(d0)
	in1 := b.Input(d1)
	v := b.MatMul(in0, w1)
	v = b.SpMM(csr, v)
	v = b.AddBias(v, b1)
	skip := b.MatMul(in0, wSkip)
	v = b.Add(v, skip)
	v = b.ReLU(v)
	v = b.Concat(v, in1)
	v = b.MatMul(v, w2)
	v = b.AddBias(v, b2)
	b.Argmax(v)
	prog := b.Build()

	x0 := randMat(rng, n, d0)
	x1 := randMat(rng, n, d1)
	return prog, []*mat.Matrix{x0, x1}
}

// TestTiledMatchesDirect is the core tiling property: for tile heights
// {1, 7, n-1, n} the streamed execution is bit-identical to the direct
// reference — same kernels, same per-row loop order, only the staging
// differs.
func TestTiledMatchesDirect(t *testing.T) {
	const n = 53
	csr := testCSR(n, 1)
	prog, inputs := buildGCNLikeProgram(t, n, csr)

	direct, err := prog.NewMachine(Config{Workers: 1})
	if err != nil {
		t.Fatalf("direct machine: %v", err)
	}
	wantLabels := make([]int, n)
	wantLogits := direct.Run(n, inputs, wantLabels).Clone()

	for _, tile := range []int{1, 7, n - 1, n} {
		m, err := prog.NewMachine(Config{TileRows: tile, Workers: 1})
		if err != nil {
			t.Fatalf("tile=%d: %v", tile, err)
		}
		labels := make([]int, n)
		logits := m.Run(n, inputs, labels)
		if !logits.Equal(wantLogits) {
			t.Fatalf("tile=%d: logits differ from direct reference", tile)
		}
		for i := range labels {
			if labels[i] != wantLabels[i] {
				t.Fatalf("tile=%d: label[%d] = %d, want %d", tile, i, labels[i], wantLabels[i])
			}
		}
		if got := m.TileBytes(); got != int64(tile)*int64(prog.MaxWidth())*8 {
			t.Fatalf("tile=%d: TileBytes %d", tile, got)
		}
	}
}

// TestRunAllocFree pins the hot-path contract: steady-state Run performs
// zero heap allocations, in both execution modes.
func TestRunAllocFree(t *testing.T) {
	const n = 40
	csr := testCSR(n, 2)
	prog, inputs := buildGCNLikeProgram(t, n, csr)
	labels := make([]int, n)
	for _, tile := range []int{0, 9} {
		m, err := prog.NewMachine(Config{TileRows: tile, Workers: 1})
		if err != nil {
			t.Fatalf("tile=%d: %v", tile, err)
		}
		m.Run(n, inputs, labels) // warm-up
		allocs := testing.AllocsPerRun(10, func() {
			m.Run(n, inputs, labels)
		})
		if allocs > 0 {
			t.Fatalf("tile=%d: Run allocates %.1f objects/op, want 0", tile, allocs)
		}
	}
}

// TestVariableRows checks that one machine serves shrinking batch heights
// (the subgraph path) — for SpMM the operator is re-induced per run, here
// simulated by swapping the header contents.
func TestVariableRows(t *testing.T) {
	const cap = 30
	header := &graph.NormAdjacency{}
	rng := rand.New(rand.NewSource(3))
	w := randMat(rng, 4, 3)
	b := NewBuilder(cap)
	in := b.Input(4)
	v := b.MatMul(in, w)
	v = b.SpMM(header, v)
	b.Argmax(v)
	prog := b.Build()
	m, err := prog.NewMachine(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range []int{cap, 11, 1} {
		*header = *testCSR(rows, int64(rows))
		x := randMat(rng, rows, 4)
		labels := make([]int, rows)
		got := m.Run(rows, []*mat.Matrix{x}, labels)

		want := header.MulDenseSerial(mat.MatMulSerial(x, w))
		if !got.Equal(want) {
			t.Fatalf("rows=%d: output differs from reference", rows)
		}
	}
}

// TestFuncOpDirectOnly checks the opaque-layer escape hatch: it executes on
// direct machines and is rejected by tiled ones.
func TestFuncOpDirectOnly(t *testing.T) {
	const n = 8
	b := NewBuilder(n)
	in := b.Input(2)
	buf := mat.New(n, 2) // kernel-owned output, like a layer workspace's Out
	b.Func(in, 2, func(src *mat.Matrix) *mat.Matrix {
		for i, v := range src.Data {
			buf.Data[i] = 2 * v
		}
		return buf
	})
	prog := b.Build()
	if prog.Tileable() {
		t.Fatal("Func program reports tileable")
	}
	if _, err := prog.NewMachine(Config{TileRows: 4}); err == nil {
		t.Fatal("tiled machine accepted a Func program")
	}
	m, err := prog.NewMachine(Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	x := randMat(rng, n, 2)
	out := m.Run(n, []*mat.Matrix{x}, nil)
	for i := range x.Data {
		if out.Data[i] != 2*x.Data[i] {
			t.Fatalf("Func output[%d] = %v, want %v", i, out.Data[i], 2*x.Data[i])
		}
	}
}

// TestBuilderValidation spot-checks the compile-time shape rules.
func TestBuilderValidation(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	rng := rand.New(rand.NewSource(5))
	expectPanic("width mismatch", func() {
		b := NewBuilder(4)
		in := b.Input(3)
		b.MatMul(in, randMat(rng, 5, 2))
	})
	expectPanic("bias on input", func() {
		b := NewBuilder(4)
		in := b.Input(3)
		b.AddBias(in, make([]float64, 3))
	})
	expectPanic("empty program", func() {
		NewBuilder(4).Build()
	})
	expectPanic("op after argmax", func() {
		b := NewBuilder(4)
		in := b.Input(3)
		b.Argmax(in)
		b.ReLU(in)
	})
}
