//go:build !linux

package exec

import "time"

var threadCPUBase = time.Now()

// threadCPUNs falls back to the monotonic wall clock where the OS does
// not expose a per-thread CPU clock. Busy deltas then include any peer
// work the scheduler interleaves into the window, so sharded modelled
// compute is a (pessimistic) upper bound on such hosts.
func threadCPUNs() int64 {
	return int64(time.Since(threadCPUBase))
}
