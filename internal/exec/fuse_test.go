package exec

import (
	"math/rand"
	"runtime"
	"testing"

	"gnnvault/internal/mat"
)

// countKinds tallies the op kinds of a program.
func countKinds(p *Program) map[OpKind]int {
	m := map[OpKind]int{}
	for _, op := range p.Ops() {
		m[op.Kind]++
	}
	return m
}

// TestFusedMatchesUnfused is the fusion property the pass rests on: the
// fused program must be bit-identical to the unfused direct reference in
// every execution mode — direct, serially tiled at several heights, and
// tile-parallel at several fan-outs.
func TestFusedMatchesUnfused(t *testing.T) {
	const n = 53
	csr := testCSR(n, 11)
	prog, inputs := buildGCNLikeProgram(t, n, csr)

	direct, err := prog.NewMachine(Config{Workers: 1})
	if err != nil {
		t.Fatalf("direct machine: %v", err)
	}
	wantLabels := make([]int, n)
	wantLogits := direct.Run(n, inputs, wantLabels).Clone()

	fused := prog.Fused()
	if got, want := len(fused.Ops()), len(prog.Ops()); got >= want {
		t.Fatalf("fusion did not shrink the program: %d ops, had %d", got, want)
	}
	kinds := countKinds(fused)
	if kinds[OpAddBias]+kinds[OpReLU]+kinds[OpAdd] != 0 {
		t.Fatalf("element-wise ops survived fusion: %v", kinds)
	}
	check := func(name string, m *Machine) {
		t.Helper()
		labels := make([]int, n)
		logits := m.Run(n, inputs, labels)
		if !logits.Equal(wantLogits) {
			t.Fatalf("%s: logits differ from unfused direct reference", name)
		}
		for i := range labels {
			if labels[i] != wantLabels[i] {
				t.Fatalf("%s: label[%d] = %d, want %d", name, i, labels[i], wantLabels[i])
			}
		}
	}
	fd, err := fused.NewMachine(Config{Workers: 1})
	if err != nil {
		t.Fatalf("fused direct machine: %v", err)
	}
	check("fused direct", fd)
	for _, tile := range []int{1, 7, n} {
		for _, workers := range []int{1, 2, 5} {
			m, err := fused.NewMachine(Config{TileRows: tile, Workers: workers})
			if err != nil {
				t.Fatalf("tile=%d workers=%d: %v", tile, workers, err)
			}
			check("fused tiled", m)
		}
	}
}

// TestFusionCutsSpillTrafficAndBuffers pins the headline accounting: on
// the GCN-like program the fused tiled machine must report at least 40%
// less spill traffic than the unfused one, and dead-value elimination must
// shrink the value-buffer footprint.
func TestFusionCutsSpillTrafficAndBuffers(t *testing.T) {
	const n = 64
	csr := testCSR(n, 12)
	prog, _ := buildGCNLikeProgram(t, n, csr)
	fused := prog.Fused()

	um, err := prog.NewMachine(Config{TileRows: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fm, err := fused.NewMachine(Config{TileRows: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	before, after := um.SpillTraffic(n), fm.SpillTraffic(n)
	if after*10 > before*6 { // ≥40% reduction
		t.Fatalf("spill traffic %d → %d, want ≥40%% reduction", before, after)
	}
	if fm.BufferBytes() >= um.BufferBytes() {
		t.Fatalf("dead-value elimination did not shrink buffers: %d vs %d", fm.BufferBytes(), um.BufferBytes())
	}
}

// TestFusionKeepsPinnedValues checks Builder.Keep: a value a caller reads
// via Machine.Value must survive fusion with the same contents even when
// its only in-program consumer could absorb it.
func TestFusionKeepsPinnedValues(t *testing.T) {
	const n = 17
	csr := testCSR(n, 13)
	rng := rand.New(rand.NewSource(21))
	w1 := randMat(rng, 4, 6)
	b1 := randMat(rng, 1, 6).Data
	w2 := randMat(rng, 6, 3)

	build := func(keep bool) (*Program, int) {
		b := NewBuilder(n)
		in := b.Input(4)
		v := b.MatMul(in, w1)
		v = b.SpMM(csr, v)
		v = b.AddBias(v, b1)
		hidden := b.ReLU(v)
		if keep {
			b.Keep(hidden)
		}
		out := b.MatMul(hidden, w2)
		b.Argmax(out)
		return b.Build(), hidden
	}

	ref, hid := build(false)
	rm, err := ref.NewMachine(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	x := randMat(rng, n, 4)
	rm.Run(n, []*mat.Matrix{x}, nil)
	wantHidden := rm.Value(hid).Clone()

	kept, khid := build(true)
	fused := kept.Fused()
	// The ReLU feeding the kept value must still fold (its *input* is
	// free), but the kept value itself must stay materialised.
	if kinds := countKinds(fused); kinds[OpAddBias] != 0 {
		t.Fatalf("bias survived fusion: %v", kinds)
	}
	fm, err := fused.NewMachine(Config{TileRows: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fm.Run(n, []*mat.Matrix{x}, nil)
	if !fm.Value(khid).Equal(wantHidden) {
		t.Fatal("kept hidden embedding differs after fusion")
	}

	// Without Keep, the same value is legal to eliminate when tiling is
	// off the table for it — here it still feeds the second MatMul, so it
	// must stay alive either way; the pinned variant just guarantees it.
	unpinned, _ := build(false)
	if got := unpinned.Fused().MaxWidth(); got > kept.Fused().MaxWidth() {
		t.Fatalf("unpinned fused MaxWidth %d > pinned %d", got, kept.Fused().MaxWidth())
	}
}

// TestTileParallelAllocFree pins the tile-parallel hot path at zero
// steady-state heap allocations: the worker bodies are pre-built closures
// and every header lives in per-worker scratch. The GOMAXPROCS=1 run is
// the degenerate case the single-threaded-host CI leg exercises — the
// pool still spawns, the goroutines just timeshare one P.
func TestTileParallelAllocFree(t *testing.T) {
	const n = 40
	csr := testCSR(n, 14)
	prog, inputs := buildGCNLikeProgram(t, n, csr)
	fused := prog.Fused()
	labels := make([]int, n)
	run := func(name string) {
		t.Helper()
		m, err := fused.NewMachine(Config{TileRows: 7, Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := m.TileWorkers(); got != 4 {
			t.Fatalf("%s: TileWorkers = %d, want 4", name, got)
		}
		m.Run(n, inputs, labels) // warm-up
		allocs := testing.AllocsPerRun(10, func() {
			m.Run(n, inputs, labels)
		})
		if allocs > 0 {
			t.Fatalf("%s: tile-parallel Run allocates %.1f objects/op, want 0", name, allocs)
		}
	}
	run("default")
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	run("GOMAXPROCS=1")
}

// TestTileParallelConcurrentMachines hammers several tile-parallel
// machines planned from one shared (immutable) fused program on separate
// goroutines — the registry serving shape — and checks every stream
// reproduces the direct reference. Run under -race in CI: the workers of
// different machines interleave freely and must share nothing mutable.
func TestTileParallelConcurrentMachines(t *testing.T) {
	const n = 61
	csr := testCSR(n, 15)
	prog, inputs := buildGCNLikeProgram(t, n, csr)
	direct, err := prog.NewMachine(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := direct.Run(n, inputs, nil).Clone()
	fused := prog.Fused()

	const goroutines = 4
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			m, err := fused.NewMachine(Config{TileRows: 3 + 2*g, Workers: 1 + g})
			if err != nil {
				errs <- err
				return
			}
			for pass := 0; pass < 5; pass++ {
				if got := m.Run(n, inputs, nil); !got.Equal(want) {
					errs <- errDiverged
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestWorkersClampedToTiles checks the EPC-honesty clamp: a fan-out larger
// than the tile count allocates no extra staging buffers.
func TestWorkersClampedToTiles(t *testing.T) {
	const n = 10
	csr := testCSR(n, 16)
	prog, inputs := buildGCNLikeProgram(t, n, csr)
	m, err := prog.Fused().NewMachine(Config{TileRows: 4, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TileWorkers(); got != 3 { // ceil(10/4)
		t.Fatalf("TileWorkers = %d, want 3", got)
	}
	if got, want := m.TileBytes(), int64(3*4*prog.Fused().MaxWidth()*8); got != want {
		t.Fatalf("TileBytes = %d, want %d", got, want)
	}
	m.Run(n, inputs, nil)
}

var errDiverged = errorString("exec_test: tile-parallel output diverged from direct reference")

type errorString string

func (e errorString) Error() string { return string(e) }
