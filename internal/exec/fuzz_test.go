package exec

import (
	"math/rand"
	"testing"

	"gnnvault/internal/mat"
)

// FuzzTiledExec fuzzes the tiling invariant the whole engine rests on:
// for any program shape (row count, layer widths, sparsity seed) and any
// tile height, the tiled streaming execution must be bit-identical to the
// direct reference. CI runs this as a short smoke; longer local runs just
// raise -fuzztime.
func FuzzTiledExec(f *testing.F) {
	f.Add(uint8(16), uint8(3), uint8(4), uint8(5), int64(1))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), int64(2))
	f.Add(uint8(64), uint8(8), uint8(2), uint8(63), int64(3))
	f.Fuzz(func(t *testing.T, nRaw, dRaw, hRaw, tileRaw uint8, seed int64) {
		n := int(nRaw)%64 + 1
		d := int(dRaw)%8 + 1
		h := int(hRaw)%8 + 1
		tile := int(tileRaw)%n + 1
		rng := rand.New(rand.NewSource(seed))

		csr := testCSR(n, seed)
		w1 := randMat(rng, d, h)
		b1 := randMat(rng, 1, h).Data

		b := NewBuilder(n)
		in := b.Input(d)
		v := b.MatMul(in, w1)
		v = b.SpMM(csr, v)
		v = b.AddBias(v, b1)
		v = b.ReLU(v)
		v = b.Concat(v, in)
		_ = b.MatMul(v, randMat(rng, h+d, d))
		prog := b.Build()

		x := randMat(rng, n, d)
		direct, err := prog.NewMachine(Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := direct.Run(n, []*mat.Matrix{x}, nil).Clone()

		tiled, err := prog.NewMachine(Config{TileRows: tile, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got := tiled.Run(n, []*mat.Matrix{x}, nil)
		if !got.Equal(want) {
			t.Fatalf("n=%d d=%d h=%d tile=%d: tiled output differs from direct", n, d, h, tile)
		}
	})
}
