package exec

import (
	"math/rand"
	"testing"

	"gnnvault/internal/mat"
)

// FuzzTiledExec fuzzes the execution-equivalence invariants the whole
// engine rests on: for any program shape (row count, layer widths,
// sparsity seed), any tile height and any tile-parallel fan-out, all of
//
//   - tiled streaming execution,
//   - the epilogue-fused program (direct and tiled), and
//   - tile-parallel execution of the fused program
//
// must be bit-identical to the unfused direct reference. The fuzzed
// program includes a residual Add chain so the fusion pass exercises
// every epilogue step (bias, residual, ReLU). CI runs this as a short
// smoke; longer local runs just raise -fuzztime.
func FuzzTiledExec(f *testing.F) {
	f.Add(uint8(16), uint8(3), uint8(4), uint8(5), uint8(2), int64(1))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), int64(2))
	f.Add(uint8(64), uint8(8), uint8(2), uint8(63), uint8(7), int64(3))
	f.Fuzz(func(t *testing.T, nRaw, dRaw, hRaw, tileRaw, workersRaw uint8, seed int64) {
		n := int(nRaw)%64 + 1
		d := int(dRaw)%8 + 1
		h := int(hRaw)%8 + 1
		tile := int(tileRaw)%n + 1
		workers := int(workersRaw)%8 + 1
		rng := rand.New(rand.NewSource(seed))

		csr := testCSR(n, seed)
		w1 := randMat(rng, d, h)
		b1 := randMat(rng, 1, h).Data
		wSkip := randMat(rng, d, h)

		b := NewBuilder(n)
		in := b.Input(d)
		v := b.MatMul(in, w1)
		v = b.SpMM(csr, v)
		v = b.AddBias(v, b1)
		skip := b.MatMul(in, wSkip)
		v = b.Add(v, skip)
		v = b.ReLU(v)
		v = b.Concat(v, in)
		_ = b.MatMul(v, randMat(rng, h+d, d))
		prog := b.Build()

		x := randMat(rng, n, d)
		direct, err := prog.NewMachine(Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := direct.Run(n, []*mat.Matrix{x}, nil).Clone()

		check := func(name string, p *Program, cfg Config) {
			t.Helper()
			m, err := p.NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Run(n, []*mat.Matrix{x}, nil); !got.Equal(want) {
				t.Fatalf("n=%d d=%d h=%d tile=%d workers=%d: %s output differs from direct", n, d, h, tile, workers, name)
			}
		}
		check("tiled", prog, Config{TileRows: tile, Workers: 1})
		fused := prog.Fused()
		check("fused direct", fused, Config{Workers: 1})
		check("fused tiled", fused, Config{TileRows: tile, Workers: 1})
		check("fused tile-parallel", fused, Config{TileRows: tile, Workers: workers})
	})
}
