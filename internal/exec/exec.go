// Package exec is the tiled streaming execution engine behind every
// GNNVault inference path: a Backbone/Rectifier forward pass is compiled
// once into a flat op sequence (dense MatMul, sparse SpMM over a CSR row
// range, bias add, ReLU, element-wise add, horizontal concat, row argmax),
// and a Machine then executes that program either directly — every buffer
// resident, the pre-PR-4 behaviour — or row tile by row tile under a fixed
// working-set bound.
//
// The tiled mode is what makes full-graph plans admissible on a real
// enclave: a layer's full activations live in *spilled* host buffers
// (untrusted memory — a deployment would seal them the way SGX paging
// encrypts evicted EPC pages), while the enclave's Page Cache is charged
// only for the one tile-sized staging buffer every op writes through. The
// enclave footprint of an n-node forward pass therefore drops from
// O(n × maxWidth) to O(tileRows × maxWidth), at the price of streaming
// each activation across the boundary once per op.
//
// Row tiling works because every op is row-local in its output: output
// rows [lo, hi) of a MatMul/bias/ReLU/concat read only input rows
// [lo, hi), and a SpMM's output rows read arbitrary input rows — which is
// exactly why execution is op-major (each op finishes all tiles before the
// next op starts), so a SpMM always finds its full input spilled.
//
// Two rewrites make the engine fast on top of admissible. The fusion pass
// (Program.Fused) folds bias/residual/ReLU chains into their producing
// product op as an Epilogue and erases the fused-away intermediates, so a
// GCN layer flushes one tile instead of three and the dead values cost no
// spill buffers at all. And because row tiles of one op are independent, a
// tiled machine with Config.Workers > 1 streams them across a pool of tile
// workers — each with its own EPC-charged staging tile, SpMM spans split
// by non-zeros — modelling a multi-TCS ECALL.
//
// One Machine belongs to one goroutine at a time (its internal tile
// workers are invisible to the caller); its Run performs zero heap
// allocations, which the serving hot paths rely on.
package exec

import (
	"errors"
	"fmt"
	"sync"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
	"gnnvault/internal/obs"
)

// OpKind enumerates the primitive operations a compiled program is made of.
type OpKind uint8

// The op vocabulary. OpFunc is the escape hatch for layers without a
// row-tileable kernel decomposition (GAT attention, SAGE's fused form when
// wrapped whole): it runs an opaque full-width forward and is therefore
// rejected by tiled machines.
const (
	OpMatMul  OpKind = iota // dst = src · W
	OpSpMM                  // dst = CSR · src (src must be fully materialised)
	OpAddBias               // dst = src + b, in place (dst aliases src)
	OpReLU                  // dst = max(src, 0)
	OpAdd                   // dst = srcA + srcB
	OpConcat                // dst = [src0 | src1 | …]
	OpArgmax                // labels[i] = argmax(src row i); terminal, no dst
	OpFunc                  // dst = fn(src), opaque full-width layer
	OpHalo                  // dst = [src | peer boundary rows], fleet exchange
)

// String names the op kind for diagnostics.
func (k OpKind) String() string {
	switch k {
	case OpMatMul:
		return "matmul"
	case OpSpMM:
		return "spmm"
	case OpAddBias:
		return "addbias"
	case OpReLU:
		return "relu"
	case OpAdd:
		return "add"
	case OpConcat:
		return "concat"
	case OpArgmax:
		return "argmax"
	case OpFunc:
		return "func"
	case OpHalo:
		return "halo"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Op is one instruction of a compiled program. Dst and Srcs index the
// program's value table; the remaining fields are the operands one kind
// each needs.
type Op struct {
	Kind OpKind
	Dst  int   // destination value (-1 for OpArgmax)
	Srcs []int // source values, in kernel order

	// Epi is the fused element-wise tail of a MatMul/SpMM op. Builders
	// emit ops without one (Res == -1); the fusion pass (Program.Fused)
	// attaches them.
	Epi Epilogue

	W *mat.Matrix // OpMatMul weight
	B []float64   // OpAddBias bias
	// CSR is the sparse operator of an OpSpMM. The header pointer is
	// captured at compile time but its *contents* may change between runs
	// (the subgraph path re-induces into a stable header per query); the
	// only requirement is CSR.N == rows at Run time.
	CSR *graph.NormAdjacency
	// Fn is the opaque kernel of an OpFunc: it consumes src and returns
	// its full-rows result in a buffer it owns (valid until its next
	// invocation), which the machine binds as the destination value — no
	// staging buffer, no copy. Direct mode only.
	Fn func(src *mat.Matrix) *mat.Matrix
	// Halo lists, for an OpHalo, the peer rows gathered below the local
	// rows of src: dst row rows+k is peer Halo[k].Shard's local row
	// Halo[k].Row of the same value. Executing one requires a Fleet.
	Halo []HaloSlot
}

// HaloSlot addresses one boundary-node activation in a sharded fleet:
// the shard owning the row and the row's index local to that shard.
type HaloSlot struct {
	Shard int
	Row   int
}

// value is one entry of the program's value table.
type value struct {
	width int
	input int // ordinal among Run's inputs, or -1 for intermediates
	// funcOut marks an OpFunc destination: the producing kernel owns the
	// buffer, so the machine allocates no spill for it and binds its view
	// when the op executes.
	funcOut bool
	// keep pins the value across fusion: callers will read it through
	// Machine.Value, so the fusion pass must neither fold it away nor
	// eliminate its buffer.
	keep bool
	// dead marks a value orphaned by fusion: no surviving op touches it,
	// machines allocate no buffer for it.
	dead bool
	// extra is the halo row count of an OpHalo destination: its buffer
	// holds MaxRows local rows plus extra gathered peer rows, and views
	// bind rows+extra high so the shard's rectangular SpMM can consume
	// the halo-extended operand.
	extra int
}

// Program is a compiled forward pass: a value table (external inputs plus
// intermediates) and the flat op sequence that connects them. Programs are
// immutable once built; many Machines may be planned from one Program.
type Program struct {
	// MaxRows is the largest batch height any machine of this program can
	// execute; buffers are sized for it, Run may use fewer rows.
	MaxRows int

	vals      []value
	ops       []Op
	numInputs int
	output    int
	hasArgmax bool
	hasHalo   bool
	maxWidth  int
	maxArity  int
	tileable  bool
}

// HasHalo reports whether the program contains halo-exchange ops —
// machines planned from it can only Run inside a Fleet, at full height.
func (p *Program) HasHalo() bool { return p.hasHalo }

// NumInputs returns how many external input matrices Run expects.
func (p *Program) NumInputs() int { return p.numInputs }

// MaxWidth returns the widest value in the program — the column count the
// tile staging buffer must accommodate.
func (p *Program) MaxWidth() int { return p.maxWidth }

// Tileable reports whether every op has a row-tileable kernel (no OpFunc).
// Non-tileable programs still execute on direct machines.
func (p *Program) Tileable() bool { return p.tileable }

// OutputWidth returns the column count of the program's result value.
func (p *Program) OutputWidth() int { return p.vals[p.output].width }

// Ops returns the compiled op sequence (shared, not a copy; read-only).
func (p *Program) Ops() []Op { return p.ops }

// EpilogueOps counts the element-wise operations riding inside fused
// epilogues: one per attached bias, residual and ReLU across all ops.
// len(Ops()) + EpilogueOps() is the work-equivalent op count of the
// unfused program, which is what makes fused and unfused benchmark rows
// comparable — a fused program's bare op count undercounts what it does.
func (p *Program) EpilogueOps() int {
	n := 0
	for i := range p.ops {
		epi := &p.ops[i].Epi
		if epi.Bias != nil {
			n++
		}
		if epi.Res >= 0 {
			n++
		}
		if epi.ReLU {
			n++
		}
	}
	return n
}

// Builder assembles a Program. Methods return value ids to wire into later
// ops; Build freezes the sequence. Builders are single-use.
type Builder struct {
	p    Program
	last int
}

// NewBuilder starts a program for batches of up to maxRows rows. Zero
// is legal — an empty shard of a partitioned fleet still lowers and runs
// a (trivially empty) program so it participates in the fleet barriers.
func NewBuilder(maxRows int) *Builder {
	if maxRows < 0 {
		panic(fmt.Sprintf("exec: negative maxRows %d", maxRows))
	}
	return &Builder{p: Program{MaxRows: maxRows, tileable: true}, last: -1}
}

// newValue appends a value of the given width to the table.
func (b *Builder) newValue(width, input int) int {
	if width <= 0 {
		panic(fmt.Sprintf("exec: non-positive value width %d", width))
	}
	b.p.vals = append(b.p.vals, value{width: width, input: input})
	if width > b.p.maxWidth {
		b.p.maxWidth = width
	}
	id := len(b.p.vals) - 1
	b.last = id
	return id
}

// width returns the declared width of value v, panicking on bad ids.
func (b *Builder) width(v int) int {
	if v < 0 || v >= len(b.p.vals) {
		panic(fmt.Sprintf("exec: unknown value %d", v))
	}
	return b.p.vals[v].width
}

// push appends an op, tracking the program's maximum source arity.
func (b *Builder) push(op Op) {
	if b.p.hasArgmax {
		panic("exec: ops after Argmax")
	}
	op.Epi.Res = -1
	b.p.ops = append(b.p.ops, op)
	if len(op.Srcs) > b.p.maxArity {
		b.p.maxArity = len(op.Srcs)
	}
}

// Keep pins a value against the fusion pass: the caller will read it via
// Machine.Value after Run (backbone block embeddings, typically), so
// Fused must keep it materialised even when its only in-program consumer
// could otherwise absorb it.
func (b *Builder) Keep(v int) {
	b.width(v) // id check
	b.p.vals[v].keep = true
}

// Input declares the next external input (width columns) and returns its
// value id. Run consumes inputs in declaration order.
func (b *Builder) Input(width int) int {
	id := b.newValue(width, b.p.numInputs)
	b.p.numInputs++
	return id
}

// MatMul appends dst = src · w and returns dst.
func (b *Builder) MatMul(src int, w *mat.Matrix) int {
	if got := b.width(src); got != w.Rows {
		panic(fmt.Sprintf("exec: MatMul src width %d != weight rows %d", got, w.Rows))
	}
	dst := b.newValue(w.Cols, -1)
	b.push(Op{Kind: OpMatMul, Dst: dst, Srcs: []int{src}, W: w})
	return dst
}

// SpMM appends dst = csr · src and returns dst. The csr header is captured
// by pointer; its contents may be re-induced between runs as long as its N
// matches the run's row count.
func (b *Builder) SpMM(csr *graph.NormAdjacency, src int) int {
	dst := b.newValue(b.width(src), -1)
	b.push(Op{Kind: OpSpMM, Dst: dst, Srcs: []int{src}, CSR: csr})
	return dst
}

// AddBias appends src += bias (broadcast across rows), in place, and
// returns src. In-place is safe because a bias add always consumes a value
// this program just produced; biasing an external input is rejected.
func (b *Builder) AddBias(src int, bias []float64) int {
	if b.p.vals[src].input >= 0 {
		panic("exec: AddBias on an external input")
	}
	if got := b.width(src); got != len(bias) {
		panic(fmt.Sprintf("exec: AddBias width %d != bias length %d", got, len(bias)))
	}
	b.push(Op{Kind: OpAddBias, Dst: src, Srcs: []int{src}, B: bias})
	b.last = src
	return src
}

// ReLU appends dst = max(src, 0) and returns dst.
func (b *Builder) ReLU(src int) int {
	dst := b.newValue(b.width(src), -1)
	b.push(Op{Kind: OpReLU, Dst: dst, Srcs: []int{src}})
	return dst
}

// Add appends dst = a + b (element-wise; equal widths) and returns dst.
func (b *Builder) Add(a, c int) int {
	if b.width(a) != b.width(c) {
		panic(fmt.Sprintf("exec: Add width mismatch %d != %d", b.width(a), b.width(c)))
	}
	dst := b.newValue(b.width(a), -1)
	b.push(Op{Kind: OpAdd, Dst: dst, Srcs: []int{a, c}})
	return dst
}

// Concat appends dst = [srcs[0] | srcs[1] | …] and returns dst.
func (b *Builder) Concat(srcs ...int) int {
	if len(srcs) == 0 {
		panic("exec: Concat of nothing")
	}
	w := 0
	for _, s := range srcs {
		w += b.width(s)
	}
	dst := b.newValue(w, -1)
	b.push(Op{Kind: OpConcat, Dst: dst, Srcs: append([]int{}, srcs...)})
	return dst
}

// Halo appends dst = [src | gathered peer rows]: dst's first rows rows
// copy src and the next len(slots) rows gather, in slot order, the named
// boundary activations of the same value from peer shards of a Fleet.
// The dst value is rows+len(slots) high at run time — the halo-extended
// operand a shard's rectangular SpMM consumes. The op is emitted even
// with zero slots (a shard whose rows are all-local still synchronises
// with its peers — every shard of a fleet must make the same barrier
// calls per run); lowerings omit Halo entirely only when no shard of the
// partition has any halo column.
func (b *Builder) Halo(src int, slots []HaloSlot) int {
	dst := b.newValue(b.width(src), -1)
	b.p.vals[dst].extra = len(slots)
	b.push(Op{Kind: OpHalo, Dst: dst, Srcs: []int{src}, Halo: append([]HaloSlot{}, slots...)})
	b.p.hasHalo = true
	return dst
}

// Func appends dst = fn(src), an opaque full-width layer of the given
// output width. fn consumes src and returns its result in a buffer it
// owns (a planned layer workspace's output, typically); it is invoked
// only at the program's full MaxRows height, and programs containing Func
// ops cannot be tiled.
func (b *Builder) Func(src, width int, fn func(src *mat.Matrix) *mat.Matrix) int {
	if fn == nil {
		panic("exec: nil Func kernel")
	}
	dst := b.newValue(width, -1)
	b.p.vals[dst].funcOut = true
	b.push(Op{Kind: OpFunc, Dst: dst, Srcs: []int{src}, Fn: fn})
	b.p.tileable = false
	return dst
}

// Argmax appends the terminal label reduction over src. After Argmax the
// program is complete; src also becomes the program's output value.
func (b *Builder) Argmax(src int) {
	b.width(src) // id check
	b.push(Op{Kind: OpArgmax, Dst: -1, Srcs: []int{src}})
	b.p.hasArgmax = true
	b.last = src
}

// Build freezes the program. The output value is the Argmax source when
// one was appended, otherwise the most recently produced value.
func (b *Builder) Build() *Program {
	if b.last < 0 {
		panic("exec: empty program")
	}
	p := b.p
	p.output = b.last
	b.p = Program{} // poison the builder against reuse
	return &p
}

// Config tunes one machine planned from a program.
type Config struct {
	// TileRows selects tiled streaming execution with the given tile
	// height (clamped to MaxRows); 0 selects direct execution, where every
	// value buffer is resident and ops run at full height.
	TileRows int
	// Elem selects the element type the machine's value buffers, staging
	// tiles and kernels use. The zero value F64 is the reference engine;
	// F32 and I8 plan a reduced-precision machine: weights are narrowed
	// (or column-quantized) here at plan time, Run converts its float64
	// inputs at the boundary, and every byte of buffer, tile, spill and
	// payload accounting prices the reduced width. Reduced machines
	// require a tileable program (no OpFunc).
	Elem Elem
	// Scales holds, per program value, the symmetric per-column (per
	// feature channel) activation scales of that value. Required when Elem
	// is I8 (exec.CalibrateScales produces it) and ignored otherwise; dead
	// values may carry nil.
	Scales [][]float64
	// Workers means two different things depending on the mode.
	//
	// Direct machines: the per-kernel parallelism budget
	// (mat.ResolveWorkers semantics: 0 = process-global default, 1 =
	// inline). Enclave-side direct machines must use 1 — a direct
	// in-enclave forward is single-threaded.
	//
	// Tiled machines: the tile-parallel fan-out. Row tiles of one op are
	// independent (op-major order guarantees SpMM's full input is already
	// spilled), so Workers > 1 executes them across a worker pool, each
	// worker with its own EPC-charged staging tile — the model of an
	// enclave entered through that many TCS threads. Values <= 1 keep the
	// single-threaded ECALL of PR 4; the fan-out is clamped to the tile
	// count. Per-tile kernels always run inline.
	Workers int
	// Recorder receives one obs.SpanOp span per executed op (kind, rows,
	// tile count, flush bytes, duration) and feeds the machine's per-op
	// profile. Nil means obs.Nop: probes stay, recording doesn't, and Run
	// keeps its zero-allocation guarantee either way.
	Recorder obs.Recorder
}

// ErrNotTileable is returned when a tiled machine is requested for a
// program containing ops without a row-tileable kernel (OpFunc).
var ErrNotTileable = errors.New("exec: program contains non-tileable ops")

// Machine executes one program with pre-sized buffers. Direct machines
// hold every intermediate resident (BufferBytes is the enclave charge when
// the machine runs in-enclave); tiled machines hold full intermediates in
// spilled (untrusted) buffers and stage every op's output through
// tile-sized buffers, one per tile worker (TileBytes is the enclave
// charge). One machine belongs to one goroutine at a time; its tile
// workers are internal.
type Machine struct {
	prog        *Program
	cfg         Config
	elem        Elem // element type of buffers, tiles and kernels
	tiled       bool // TileRows > 0: op-major streaming execution
	tileWorkers int  // resolved tile-parallel fan-out; 1 = serial tiling

	spill []*mat.Matrix // per value; nil for inputs and dead values
	tiles []*mat.Matrix // tiled mode: per-worker EPC-resident staging buffers
	views []mat.Matrix  // per value: full-rows header, bound per Run

	// red holds the typed buffers and quantized operands of a
	// reduced-precision (F32/I8) machine; nil at F64.
	red *reduced

	// Fleet wiring for halo-exchange programs: peers[s] is shard s's
	// machine (including this one at its own index) and sync is the
	// fleet barrier, called after input binding and again before each
	// halo op so every peer's gathered value is complete. A non-nil
	// error from sync means the pass was poisoned (a peer aborted); the
	// machine unwinds by panicking with *fleetAbort, which Fleet.RunShard
	// recovers into an error. Both fields are set by NewFleet; nil
	// outside a fleet.
	peers []*Machine
	sync  func() error

	scratch []workerScratch // per tile worker (index 0 serves direct mode too)
	fns     []func()        // pre-built worker bodies, spawned per op
	wg      sync.WaitGroup

	// Per-op broadcast state for tile-parallel execution, written by Run
	// between waits and read by workers after spawn (the go statement and
	// wg.Wait provide the happens-before edges).
	curOp   *Op
	curIdx  int // index of curOp in the op sequence
	curRows int
	curLab  []int

	// Flight-recorder state. rec is never nil (obs.Nop by default); trace
	// and parent are the IDs the next Run's op spans attach to, bound by
	// SetTrace from the caller that owns the enclosing query span. profNs
	// accumulates per-op wall time across recorded runs — the plan-owned
	// profile — under the machine's one-goroutine-at-a-time contract.
	rec      obs.Recorder
	trace    uint64
	parent   uint64
	profNs   []int64
	profRuns int64

	// busyNs accumulates this machine's own execution time — input
	// binding/conversion, op kernels and halo copies, but never fleet
	// barrier waits. Shard ECALLs charge it as in-enclave compute via
	// TakeBusyNs: a fleet shard's wall time on a shared host includes
	// peer compute and barrier waits that distinct enclaves on real
	// hardware would overlap. Measured on the per-thread CPU clock
	// where the OS has one (see threadCPUNs), so even a goroutine
	// preempted mid-kernel is charged only its own cycles; the fleet
	// pins each shard goroutine to its thread for the run.
	busyNs int64
}

// workerScratch is one tile worker's pre-allocated header set. Workers
// write disjoint row ranges of the spill buffers, so the only per-worker
// state is the header scratch and the staging tile it indexes.
type workerScratch struct {
	srcTiles []mat.Matrix  // tile headers over source values
	srcPtrs  []*mat.Matrix // reused variadic argument list
	tileView mat.Matrix    // staging header over this worker's tile
	dstTile  mat.Matrix    // flush target header over the dst spill
	resTile  mat.Matrix    // fused-residual header
}

// NewMachine plans a machine for the program: all value buffers (and, when
// tiling, the per-worker staging tiles) are allocated here, never during
// Run.
func (p *Program) NewMachine(cfg Config) (*Machine, error) {
	if cfg.TileRows < 0 {
		return nil, fmt.Errorf("exec: negative TileRows %d", cfg.TileRows)
	}
	if cfg.TileRows > 0 && !p.tileable {
		return nil, ErrNotTileable
	}
	if cfg.TileRows > p.MaxRows {
		cfg.TileRows = p.MaxRows
	}
	if cfg.Elem > I8 {
		return nil, fmt.Errorf("exec: unknown element type %d", cfg.Elem)
	}
	m := &Machine{
		prog:        p,
		cfg:         cfg,
		elem:        cfg.Elem,
		tiled:       cfg.TileRows > 0,
		tileWorkers: 1,
		spill:       make([]*mat.Matrix, len(p.vals)),
		views:       make([]mat.Matrix, len(p.vals)),
		rec:         cfg.Recorder,
		profNs:      make([]int64, len(p.ops)),
	}
	if m.rec == nil {
		m.rec = obs.Nop
	}
	if cfg.Elem == F64 {
		for i, v := range p.vals {
			if v.input < 0 && !v.funcOut && !v.dead {
				m.spill[i] = mat.New(p.MaxRows+v.extra, v.width)
			}
		}
	}
	if cfg.TileRows > 0 {
		if w := cfg.Workers; w > 1 {
			if tiles := (p.MaxRows + cfg.TileRows - 1) / cfg.TileRows; w > tiles {
				w = tiles // more staging buffers than tiles is pure EPC waste
			}
			m.tileWorkers = w
		}
		if cfg.Elem == F64 {
			m.tiles = make([]*mat.Matrix, m.tileWorkers)
			for w := range m.tiles {
				m.tiles[w] = mat.New(cfg.TileRows, p.maxWidth)
			}
		}
		m.fns = make([]func(), m.tileWorkers)
		for w := 1; w < m.tileWorkers; w++ {
			w := w
			m.fns[w] = func() {
				m.runWorkerSpan(w)
				m.wg.Done()
			}
		}
	}
	m.scratch = make([]workerScratch, m.tileWorkers)
	for w := range m.scratch {
		m.scratch[w].srcTiles = make([]mat.Matrix, p.maxArity)
		m.scratch[w].srcPtrs = make([]*mat.Matrix, p.maxArity)
	}
	if cfg.Elem != F64 {
		if err := m.planReduced(); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// TileRows returns the tile height (0 for direct machines).
func (m *Machine) TileRows() int { return m.cfg.TileRows }

// TileWorkers returns the resolved tile-parallel fan-out (1 for direct and
// serially tiled machines).
func (m *Machine) TileWorkers() int { return m.tileWorkers }

// Elem returns the machine's element type.
func (m *Machine) Elem() Elem { return m.elem }

// TileBytes returns the staging-buffer footprint — Workers × tile bytes
// at the machine's element width, the only working memory a tiled run
// keeps enclave-resident.
func (m *Machine) TileBytes() int64 {
	n := int64(0)
	for _, t := range m.tiles {
		n += t.NumBytes()
	}
	if m.red != nil {
		n += m.red.tileBytes()
	}
	return n
}

// BufferBytes returns the total footprint of the machine's value buffers
// at the machine's element width — the enclave charge of a *direct*
// in-enclave machine, and the spilled (untrusted, uncharged) residency
// of a tiled one. For reduced machines this counts the typed value
// buffers only; the fp64 boundary-conversion buffers and the widened
// output live with the caller's payload accounting, not the enclave
// working set (see the reduced type).
func (m *Machine) BufferBytes() int64 {
	n := int64(0)
	for _, s := range m.spill {
		if s != nil {
			n += s.NumBytes()
		}
	}
	if m.red != nil {
		n += m.red.bufferBytes()
	}
	return n
}

// SpillTraffic returns the bytes a tiled run over rows rows streams from
// the staging tiles out to spilled buffers (one flush per op per row),
// priced at the machine's element width: the quantity charged as
// boundary-transfer payload per call. The count reflects the machine's
// actual program — for a fused program, chains folded into an epilogue
// flush once instead of once per element-wise op. Direct machines spill
// nothing.
func (m *Machine) SpillTraffic(rows int) int64 {
	if !m.tiled {
		return 0
	}
	es := int64(m.elem.Size())
	n := int64(0)
	for _, op := range m.prog.ops {
		if op.Dst >= 0 {
			n += int64(rows+m.prog.vals[op.Dst].extra) * int64(m.prog.vals[op.Dst].width) * es
		}
	}
	return n
}

// HaloBytes returns the bytes one Run gathers from peer shards — Σ over
// halo ops of slot count × value width at the machine's element width.
// This is cross-enclave traffic through sealed buffers, so callers add
// it to the ECALL payload accounting alongside SpillTraffic; zero for
// programs without halo ops.
func (m *Machine) HaloBytes() int64 {
	es := int64(m.elem.Size())
	n := int64(0)
	for i := range m.prog.ops {
		op := &m.prog.ops[i]
		if op.Kind == OpHalo {
			n += int64(len(op.Halo)) * int64(m.prog.vals[op.Dst].width) * es
		}
	}
	return n
}

// TakeBusyNs returns and resets the machine's accumulated busy time:
// input binding/conversion, op kernels and halo gather copies, excluding
// fleet barrier waits. Fleet shard ECALLs charge it as in-enclave compute
// (enclave.EcallMeasured) — a shard's wall time on a shared host includes
// peer compute and barrier waits that distinct enclaves on real hardware
// would overlap, so wall-clock measurement would charge the whole fleet's
// work to every shard. Shares the machine's one-goroutine-at-a-time
// contract with Run.
func (m *Machine) TakeBusyNs() int64 {
	n := m.busyNs
	m.busyNs = 0
	return n
}

// SetTrace binds the trace and parent span IDs the next Run's op spans
// attach to. The caller owning the enclosing span (the ECALL span for an
// in-enclave machine, the query span for the backbone) sets it before
// each Run; it is a plain field write under the machine's one-goroutine
// contract.
func (m *Machine) SetTrace(trace, parent uint64) { m.trace, m.parent = trace, parent }

// OpProfile is one op's accumulated execution profile across every run
// recorded while the machine's Recorder was enabled.
type OpProfile struct {
	Kind OpKind
	Ns   int64 // total wall time across recorded runs
	Runs int64 // recorded run count (shared by all ops of the program)
}

// Profile returns the plan-owned per-op profile. It allocates (cold
// path) and shares the machine's one-goroutine-at-a-time contract with
// Run.
func (m *Machine) Profile() []OpProfile {
	out := make([]OpProfile, len(m.prog.ops))
	for i := range m.prog.ops {
		out[i] = OpProfile{Kind: m.prog.ops[i].Kind, Ns: m.profNs[i], Runs: m.profRuns}
	}
	return out
}

// opDone closes one op's span: accumulates the plan-owned profile and
// records a SpanOp carrying the op kind, batch height, tile count and
// the bytes the op's tiles flushed across the boundary. Called only when
// the recorder is enabled.
func (m *Machine) opDone(i int, op *Op, rows int, t0 int64) {
	dur := m.rec.Clock() - t0
	m.profNs[i] += dur
	tiles := int32(1)
	var bytes int64
	switch {
	case op.Kind == OpHalo:
		// Halo ops run full-height in every mode; the boundary traffic
		// is the gathered peer rows.
		bytes = int64(len(op.Halo)) * int64(m.prog.vals[op.Dst].width) * int64(m.elem.Size())
	case m.tiled:
		tiles = int32((rows + m.cfg.TileRows - 1) / m.cfg.TileRows)
		if op.Dst >= 0 {
			bytes = int64(rows) * int64(m.prog.vals[op.Dst].width) * int64(m.elem.Size())
		}
	}
	m.rec.Record(obs.Span{
		Trace:  m.trace,
		Parent: m.parent,
		Kind:   obs.SpanOp,
		Op:     uint8(op.Kind),
		Rows:   int32(rows),
		Tiles:  tiles,
		Bytes:  bytes,
		Start:  t0,
		Dur:    dur,
	})
}

// Value returns the machine's stable header for a program value — the way
// callers read intermediate results (e.g. backbone block embeddings) after
// Run. The header is re-bound by every Run; the pointer itself is stable,
// so it can be captured once at plan time. Values readable this way must
// be pinned with Builder.Keep before fusion, or the fusion pass may fold
// them away (a dead value's header is never bound).
func (m *Machine) Value(v int) *mat.Matrix { return &m.views[v] }

// Output returns the stable header of the program's result value.
func (m *Machine) Output() *mat.Matrix { return &m.views[m.prog.output] }

// OutputWidth returns the column count of the program's result value —
// the class dimension of a rectifier program — available at plan time,
// before any Run has bound the output view.
func (m *Machine) OutputWidth() int { return m.prog.vals[m.prog.output].width }

// Run executes the program over the first rows rows. inputs must match the
// program's declared inputs (count, order, widths) and all have rows rows;
// labels receives the OpArgmax result and may be nil to skip the label
// reduction (callers that only want logits). The returned matrix is the
// output value's view — machine-owned, overwritten by the next Run.
//
// Run never allocates. Direct machines execute ops at full height with the
// configured worker budget, epilogues applied band-local by the fused
// kernels; tiled machines execute op-major, each op streaming row tiles
// through the staging buffers — serially on one goroutine when Workers <=
// 1 (the single-TCS in-enclave contract), or across the pre-planned tile
// worker pool otherwise, with SpMM tiles partitioned by non-zeros.
func (m *Machine) Run(rows int, inputs []*mat.Matrix, labels []int) *mat.Matrix {
	p := m.prog
	if rows < 0 || rows > p.MaxRows {
		panic(fmt.Sprintf("exec: rows %d outside [0, %d]", rows, p.MaxRows))
	}
	if p.hasHalo && rows != p.MaxRows {
		// Halo slots address peer rows assuming every shard runs full
		// height; partial batches have no meaning on a sharded program.
		panic(fmt.Sprintf("exec: halo program requires full height %d, got %d", p.MaxRows, rows))
	}
	if len(inputs) != p.numInputs {
		panic(fmt.Sprintf("exec: %d inputs, want %d", len(inputs), p.numInputs))
	}
	if m.elem != F64 {
		return m.runReduced(rows, inputs, labels)
	}
	// Bind every value's full-rows view: inputs alias the caller's
	// matrices, intermediates alias the first rows rows of their buffer
	// (plus the gathered halo rows for a halo destination). Func outputs
	// are bound when their op executes (the kernel owns the buffer),
	// which op order guarantees happens before any consumer; values the
	// fusion pass eliminated have no buffer to bind.
	for i, v := range p.vals {
		switch {
		case v.input >= 0:
			in := inputs[v.input]
			if in.Rows != rows || in.Cols != v.width {
				panic(fmt.Sprintf("exec: input %d is %s, want %dx%d", v.input, in.Shape(), rows, v.width))
			}
			m.views[i] = *in
		case !v.funcOut && !v.dead:
			m.spill[i].ViewRows(0, rows+v.extra, &m.views[i])
		}
	}
	recOn := m.rec.Enabled()
	if recOn {
		m.profRuns++
	}
	if m.sync != nil {
		// Fleet entry barrier: every peer's views are bound before any
		// shard starts reading across the fleet.
		if err := m.sync(); err != nil {
			panic(&fleetAbort{cause: err})
		}
	}
	for i := range p.ops {
		op := &p.ops[i]
		if op.Kind == OpSpMM && op.CSR.N != rows {
			panic(fmt.Sprintf("exec: SpMM operator over %d rows, run over %d", op.CSR.N, rows))
		}
		var t0 int64
		if recOn {
			t0 = m.rec.Clock()
		}
		if op.Kind == OpHalo {
			m.runHalo(op, rows)
			if recOn {
				m.opDone(i, op, rows, t0)
			}
			continue
		}
		busy0 := threadCPUNs()
		switch {
		case !m.tiled:
			m.runDirect(op, rows, labels)
		case m.tileWorkers > 1 && rows > m.cfg.TileRows:
			m.runOpParallel(i, op, rows, labels)
		default:
			for lo := 0; lo < rows; lo += m.cfg.TileRows {
				hi := min(lo+m.cfg.TileRows, rows)
				m.runTile(0, i, op, lo, hi, labels)
			}
		}
		m.busyNs += threadCPUNs() - busy0
		if recOn {
			m.opDone(i, op, rows, t0)
		}
	}
	return &m.views[p.output]
}

// runOpParallel executes one op's tiles across the worker pool: the rows
// are split into one contiguous span per worker — by non-zeros for SpMM
// (power-law hub rows would otherwise skew row-count spans badly), by row
// count for everything else — and each worker streams its span through its
// own staging tile. Workers write disjoint spill rows, so the only shared
// mutable state is the broadcast op pointer, sequenced by the spawn and
// the wait. The worker bodies are pre-built closures, so steady-state
// spawning performs no heap allocation.
func (m *Machine) runOpParallel(idx int, op *Op, rows int, labels []int) {
	m.curOp, m.curIdx, m.curRows, m.curLab = op, idx, rows, labels
	m.wg.Add(m.tileWorkers - 1)
	for w := 1; w < m.tileWorkers; w++ {
		go m.fns[w]()
	}
	m.runWorkerSpan(0)
	m.wg.Wait()
}

// runWorkerSpan computes worker w's row span of the current op and streams
// it tile by tile.
func (m *Machine) runWorkerSpan(w int) {
	op, rows := m.curOp, m.curRows
	var lo, hi int
	if op.Kind == OpSpMM {
		lo = op.CSR.NNZBound(0, rows, w, m.tileWorkers)
		hi = op.CSR.NNZBound(0, rows, w+1, m.tileWorkers)
	} else {
		chunk := (rows + m.tileWorkers - 1) / m.tileWorkers
		lo = min(w*chunk, rows)
		hi = min(lo+chunk, rows)
	}
	for t := lo; t < hi; t += m.cfg.TileRows {
		m.runTile(w, m.curIdx, op, t, min(t+m.cfg.TileRows, hi), m.curLab)
	}
}

// runDirect executes one op at full height into the resident value views.
// Fused MatMul/SpMM ops run their epilogue band-local inside the kernel —
// the direct-mode payoff of fusion: no separate full-matrix bias/ReLU/add
// passes over the activations. F64 only; reduced machines run their own
// direct bodies (runDirect32, runDirectI8).
func (m *Machine) runDirect(op *Op, rows int, labels []int) {
	w := m.cfg.Workers
	var res *mat.Matrix
	if op.Epi.Res >= 0 {
		res = &m.views[op.Epi.Res]
	}
	switch op.Kind {
	case OpMatMul:
		mat.MatMulBiasReLUInto(&m.views[op.Dst], &m.views[op.Srcs[0]], op.W, op.Epi.Bias, res, op.Epi.ReLU, w)
	case OpSpMM:
		op.CSR.MulDenseBiasReLUInto(&m.views[op.Dst], &m.views[op.Srcs[0]], op.Epi.Bias, res, op.Epi.ReLU, w)
	case OpAddBias:
		mat.AddBiasInto(&m.views[op.Dst], &m.views[op.Srcs[0]], op.B)
	case OpReLU:
		mat.ReLUInto(&m.views[op.Dst], &m.views[op.Srcs[0]])
	case OpAdd:
		mat.AddInto(&m.views[op.Dst], &m.views[op.Srcs[0]], &m.views[op.Srcs[1]])
	case OpConcat:
		ptrs := m.scratch[0].srcPtrs
		for i, s := range op.Srcs {
			ptrs[i] = &m.views[s]
		}
		mat.HConcatInto(&m.views[op.Dst], ptrs[:len(op.Srcs)]...)
	case OpArgmax:
		if labels != nil {
			m.views[op.Srcs[0]].ArgmaxRowsInto(labels[:rows])
		}
	case OpFunc:
		if rows != m.prog.MaxRows {
			panic(fmt.Sprintf("exec: Func op requires full height %d, got %d", m.prog.MaxRows, rows))
		}
		out := op.Fn(&m.views[op.Srcs[0]])
		if out.Rows != rows || out.Cols != m.prog.vals[op.Dst].width {
			panic(fmt.Sprintf("exec: Func result %s, want %dx%d", out.Shape(), rows, m.prog.vals[op.Dst].width))
		}
		m.views[op.Dst] = *out
	}
}

// runTile executes rows [lo, hi) of one op on tile worker w: sources are
// viewed in place (spilled/untrusted reads), the result — including any
// fused epilogue — is computed into the worker's EPC-resident staging
// tile, then flushed once to the destination's spilled buffer. idx is
// the op's program index, which the reduced-precision bodies — reached
// here because the tile-parallel driver is shared across element types —
// use to find their per-op operands.
func (m *Machine) runTile(w, idx int, op *Op, lo, hi int, labels []int) {
	switch m.elem {
	case F32:
		m.runTile32(w, idx, op, lo, hi, labels)
		return
	case I8:
		m.runTileI8(w, idx, op, lo, hi, labels)
		return
	}
	s := &m.scratch[w]
	if op.Kind == OpArgmax {
		if labels != nil {
			m.views[op.Srcs[0]].ViewRows(lo, hi, &s.srcTiles[0])
			s.srcTiles[0].ArgmaxRowsInto(labels[lo:hi])
		}
		return
	}
	width := m.prog.vals[op.Dst].width
	s.tileView.Rows = hi - lo
	s.tileView.Cols = width
	s.tileView.Data = m.tiles[w].Data[:(hi-lo)*width]
	var res *mat.Matrix
	if op.Epi.Res >= 0 {
		m.views[op.Epi.Res].ViewRows(lo, hi, &s.resTile)
		res = &s.resTile
	}
	switch op.Kind {
	case OpMatMul:
		m.views[op.Srcs[0]].ViewRows(lo, hi, &s.srcTiles[0])
		mat.MatMulBiasReLUInto(&s.tileView, &s.srcTiles[0], op.W, op.Epi.Bias, res, op.Epi.ReLU, 1)
	case OpSpMM:
		// The one op whose tile reads outside [lo, hi): it consumes the
		// full spilled input, which op-major order guarantees is complete.
		op.CSR.MulDenseBiasReLURangeInto(&s.tileView, &m.views[op.Srcs[0]], lo, hi, op.Epi.Bias, res, op.Epi.ReLU)
	case OpAddBias:
		m.views[op.Srcs[0]].ViewRows(lo, hi, &s.srcTiles[0])
		mat.AddBiasInto(&s.tileView, &s.srcTiles[0], op.B)
	case OpReLU:
		m.views[op.Srcs[0]].ViewRows(lo, hi, &s.srcTiles[0])
		mat.ReLUInto(&s.tileView, &s.srcTiles[0])
	case OpAdd:
		m.views[op.Srcs[0]].ViewRows(lo, hi, &s.srcTiles[0])
		m.views[op.Srcs[1]].ViewRows(lo, hi, &s.srcTiles[1])
		mat.AddInto(&s.tileView, &s.srcTiles[0], &s.srcTiles[1])
	case OpConcat:
		for i, src := range op.Srcs {
			m.views[src].ViewRows(lo, hi, &s.srcTiles[i])
			s.srcPtrs[i] = &s.srcTiles[i]
		}
		mat.HConcatInto(&s.tileView, s.srcPtrs[:len(op.Srcs)]...)
	}
	m.views[op.Dst].ViewRows(lo, hi, &s.dstTile)
	mat.CopyInto(&s.dstTile, &s.tileView)
}

// runHalo executes one halo-exchange op: wait on the fleet barrier (ops
// preceding the halo op are identical across shards, so passing it means
// every peer's gathered value is complete), copy the local rows of src
// into dst, then gather each slot's peer row below them. The copies are
// bit-exact row moves at the machine's element width, so sharded
// execution inherits the engine's bit-identity contract; the op runs
// full-height in every mode (direct, serial-tiled, tile-parallel) on the
// calling goroutine.
func (m *Machine) runHalo(op *Op, rows int) {
	if m.peers == nil {
		panic("exec: halo op outside a fleet (plan through NewFleet)")
	}
	if err := m.sync(); err != nil {
		panic(&fleetAbort{cause: err})
	}
	// Busy time starts after the barrier: only the gather copies are this
	// shard's own work; the wait is peer compute that real multi-enclave
	// hardware would overlap.
	busy0 := threadCPUNs()
	src, dst := op.Srcs[0], op.Dst
	d := m.prog.vals[dst].width
	// Halo slots are sorted by global column, so consecutive slots owned
	// by the same peer with adjacent local rows form runs that gather as
	// one copy each. On power-law graphs the halo is near-all-to-all and
	// runs span most of a peer's range, collapsing hundreds of thousands
	// of row-sized copies into a handful of block moves — same bytes,
	// same layout, so bit-identity is untouched.
	switch m.elem {
	case F32:
		r := m.red
		dv, sv := &r.views32[dst], &r.views32[src]
		copy(dv.Data[:rows*d], sv.Data[:rows*d])
		for k := 0; k < len(op.Halo); {
			sl := &op.Halo[k]
			j := k + 1
			for j < len(op.Halo) && op.Halo[j].Shard == sl.Shard && op.Halo[j].Row == sl.Row+(j-k) {
				j++
			}
			pv := &m.peers[sl.Shard].red.views32[src]
			copy(dv.Data[(rows+k)*d:(rows+j)*d], pv.Data[sl.Row*d:(sl.Row+j-k)*d])
			k = j
		}
	case I8:
		r := m.red
		dv, sv := &r.views8[dst], &r.views8[src]
		copy(dv.Data[:rows*d], sv.Data[:rows*d])
		for k := 0; k < len(op.Halo); {
			sl := &op.Halo[k]
			j := k + 1
			for j < len(op.Halo) && op.Halo[j].Shard == sl.Shard && op.Halo[j].Row == sl.Row+(j-k) {
				j++
			}
			pv := &m.peers[sl.Shard].red.views8[src]
			copy(dv.Data[(rows+k)*d:(rows+j)*d], pv.Data[sl.Row*d:(sl.Row+j-k)*d])
			k = j
		}
	default:
		dv, sv := &m.views[dst], &m.views[src]
		copy(dv.Data[:rows*d], sv.Data[:rows*d])
		for k := 0; k < len(op.Halo); {
			sl := &op.Halo[k]
			j := k + 1
			for j < len(op.Halo) && op.Halo[j].Shard == sl.Shard && op.Halo[j].Row == sl.Row+(j-k) {
				j++
			}
			pv := &m.peers[sl.Shard].views[src]
			copy(dv.Data[(rows+k)*d:(rows+j)*d], pv.Data[sl.Row*d:(sl.Row+j-k)*d])
			k = j
		}
	}
	m.busyNs += threadCPUNs() - busy0
}
