package exec

// Epilogue fusion. A lowered GNN forward pass is dominated by chains of
// the form product → bias → (residual) → ReLU, and in the op-major tiled
// machine every link of that chain pays a full pass over the activation:
// read the spilled input, write the staging tile, flush the tile back out.
// The fusion pass rewrites a program so each such chain becomes ONE op —
// the producing MatMul/SpMM with an Epilogue (bias vector, residual
// source, activation flag) applied to each output tile while it is still
// resident — and then erases the fused-away intermediates entirely
// (dead-value elimination), so they cost neither spill buffers nor flush
// traffic. Fused programs are bit-identical to their unfused form: the
// epilogue kernels perform exactly the float operations of the standalone
// ops, in the same element order (mat.ApplyEpilogueRow is the one
// definition of the per-row epilogue semantics).

// Epilogue is the element-wise tail fused into a producing MatMul/SpMM
// op, applied in canonical order: add Bias (broadcast), add the Res value
// (element-wise), then ReLU. The zero value plus Res == -1 means no
// epilogue; only the fusion pass sets one.
type Epilogue struct {
	Bias []float64 // optional broadcast bias, nil = none
	Res  int       // value id of the residual operand, -1 = none
	ReLU bool      // clamp at zero last
}

// Fused returns a program with epilogue fusion and dead-value elimination
// applied; the receiver is unchanged and remains valid. The pass is a
// peephole over adjacent ops — exactly the shape lowering emits — folding
// an AddBias/Add/ReLU into an immediately preceding MatMul/SpMM when the
// consumed value has no other consumer, is not an external input, is not
// marked kept (Builder.Keep) and is not the program output. Folding
// preserves canonical epilogue order (bias, then residual, then ReLU);
// chains in any other order are left unfused rather than reassociated,
// because float addition order is part of the bit-identity contract.
// Values orphaned by folding are marked dead: machines planned from the
// fused program allocate no buffers for them and SpillTraffic no longer
// counts their flushes.
func (p *Program) Fused() *Program {
	q := *p
	q.vals = append([]value(nil), p.vals...)

	// Use counts over the original sequence; folding decrements the count
	// of the value a folded op consumed so later folds in the same chain
	// see the remaining consumers.
	uses := make([]int, len(q.vals))
	for i := range p.ops {
		for _, s := range p.ops[i].Srcs {
			uses[s]++
		}
		if p.ops[i].Epi.Res >= 0 {
			uses[p.ops[i].Epi.Res]++
		}
	}
	// killable reports whether v may disappear when its single remaining
	// consumer is folded away.
	killable := func(v int) bool {
		return uses[v] == 1 && v != p.output && !q.vals[v].keep && q.vals[v].input < 0
	}

	ops := make([]Op, 0, len(p.ops))
	for _, op := range p.ops {
		if len(ops) > 0 {
			prev := &ops[len(ops)-1]
			if prev.Kind == OpMatMul || prev.Kind == OpSpMM {
				switch op.Kind {
				case OpAddBias:
					// In-place op: folding attaches the bias, the value id
					// is unchanged. Rejected once a residual or ReLU is
					// already attached — the bias would apply out of order.
					if op.Srcs[0] == prev.Dst && prev.Epi.Bias == nil && prev.Epi.Res < 0 && !prev.Epi.ReLU {
						prev.Epi.Bias = op.B
						uses[op.Srcs[0]]--
						continue
					}
				case OpAdd:
					if prev.Epi.Res < 0 && !prev.Epi.ReLU {
						other := -1
						switch prev.Dst {
						case op.Srcs[0]:
							other = op.Srcs[1]
						case op.Srcs[1]:
							other = op.Srcs[0]
						}
						// The residual add is commutative bit-for-bit, so
						// either operand order folds.
						if other >= 0 && other != prev.Dst && killable(prev.Dst) {
							prev.Epi.Res = other
							uses[prev.Dst]--
							prev.Dst = op.Dst
							continue
						}
					}
				case OpReLU:
					if op.Srcs[0] == prev.Dst && !prev.Epi.ReLU && killable(prev.Dst) {
						prev.Epi.ReLU = true
						uses[prev.Dst]--
						prev.Dst = op.Dst
						continue
					}
				}
			}
		}
		ops = append(ops, op)
	}
	q.ops = ops

	// Dead-value elimination: anything no surviving op reads or writes —
	// and that is not an input, kept, or the output — loses its buffer.
	// maxWidth is re-derived over live values so staging tiles (and the
	// EPC budget math built on MaxWidth) shrink with the program.
	alive := make([]bool, len(q.vals))
	for i := range q.vals {
		if q.vals[i].input >= 0 || q.vals[i].keep {
			alive[i] = true
		}
	}
	alive[q.output] = true
	for i := range ops {
		op := &ops[i]
		if op.Dst >= 0 {
			alive[op.Dst] = true
		}
		for _, s := range op.Srcs {
			alive[s] = true
		}
		if op.Epi.Res >= 0 {
			alive[op.Epi.Res] = true
		}
	}
	q.maxWidth = 0
	for i := range q.vals {
		q.vals[i].dead = !alive[i]
		if alive[i] && q.vals[i].width > q.maxWidth {
			q.maxWidth = q.vals[i].width
		}
	}
	return &q
}
