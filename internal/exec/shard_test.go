package exec

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

// gcnParams are the shared weights of the two-layer GCN used by the
// sharded-execution tests: every shard program and the unsharded
// reference consume the same matrices.
type gcnParams struct {
	w1, w2 *mat.Matrix
	b1, b2 []float64
}

func newGCNParams(rng *rand.Rand, d0, h, classes int) *gcnParams {
	return &gcnParams{
		w1: randMat(rng, d0, h),
		b1: randMat(rng, 1, h).Data,
		w2: randMat(rng, h, classes),
		b2: randMat(rng, 1, classes).Data,
	}
}

// buildGCN lowers the two-layer GCN over the given operator. With halo
// enabled, a Halo op is inserted between each MatMul and its SpMM — the
// sharded lowering shape — using the same slots every layer (the halo
// columns are graph-determined). Fused, like the production compilers.
func buildGCN(maxRows, d0 int, csr *graph.NormAdjacency, pr *gcnParams, slots []HaloSlot, withHalo bool) *Program {
	b := NewBuilder(maxRows)
	in := b.Input(d0)
	v := b.MatMul(in, pr.w1)
	if withHalo {
		v = b.Halo(v, slots)
	}
	v = b.SpMM(csr, v)
	v = b.AddBias(v, pr.b1)
	v = b.ReLU(v)
	v = b.MatMul(v, pr.w2)
	if withHalo {
		v = b.Halo(v, slots)
	}
	v = b.SpMM(csr, v)
	v = b.AddBias(v, pr.b2)
	b.Argmax(v)
	return b.Build().Fused()
}

// buildShardProgs lowers one program per shard of the partition. Halo
// ops are emitted on every shard as soon as any shard has a halo column,
// so the fleet's barrier calls stay uniform.
func buildShardProgs(part *graph.Partition, d0 int, pr *gcnParams) []*Program {
	withHalo := part.HaloCols() > 0
	progs := make([]*Program, part.Shards())
	for s := range progs {
		slots := HaloSlots(part.Bounds, part.Halo[s])
		progs[s] = buildGCN(part.Rows(s), d0, part.CSR[s], pr, slots, withHalo)
	}
	return progs
}

// newTestFleet plans one machine per shard under cfg and wires them into
// a fleet.
func newTestFleet(t testing.TB, progs []*Program, cfg func(s int) Config) *Fleet {
	t.Helper()
	machines := make([]*Machine, len(progs))
	for s := range progs {
		m, err := progs[s].NewMachine(cfg(s))
		if err != nil {
			t.Fatalf("shard %d machine: %v", s, err)
		}
		machines[s] = m
	}
	fleet, err := NewFleet(machines)
	if err != nil {
		t.Fatal(err)
	}
	return fleet
}

// fleetPass runs one pass of the fleet over x, every shard on its own
// goroutine. If skip >= 0 that shard never calls RunShard — modelling an
// enclave lost before its ECALL — and the pass is instead aborted with
// cause once the survivors have launched. Returns per-shard outputs and
// errors.
func fleetPass(fleet *Fleet, part *graph.Partition, x *mat.Matrix, labels []int, skip int, cause error) ([]*mat.Matrix, []error) {
	shards := fleet.Shards()
	outs := make([]*mat.Matrix, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		if s == skip {
			continue
		}
		s := s
		lo, hi := part.Bounds[s], part.Bounds[s+1]
		xs := &mat.Matrix{}
		x.ViewRows(lo, hi, xs)
		wg.Add(1)
		go func() {
			defer wg.Done()
			outs[s], errs[s] = fleet.RunShard(s, hi-lo, []*mat.Matrix{xs}, labels[lo:hi])
		}()
	}
	if skip >= 0 {
		fleet.Abort(cause)
	}
	wg.Wait()
	return outs, errs
}

// runFleetPass runs one pass that must succeed on every shard.
func runFleetPass(t testing.TB, fleet *Fleet, part *graph.Partition, x *mat.Matrix, labels []int) []*mat.Matrix {
	t.Helper()
	outs, errs := fleetPass(fleet, part, x, labels, -1, nil)
	for s, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
	}
	return outs
}

// runFleet plans one machine per shard under cfg, wires the fleet, and
// runs every shard concurrently over its row range of x; labels is the
// global label vector, stitched by row-range slicing. Returns the
// per-shard outputs.
func runFleet(t testing.TB, part *graph.Partition, progs []*Program, cfg func(s int) Config, x *mat.Matrix, labels []int) []*mat.Matrix {
	t.Helper()
	return runFleetPass(t, newTestFleet(t, progs, cfg), part, x, labels)
}

// checkSharded asserts the fleet's stitched outputs and labels are
// bit-identical to the unsharded reference.
func checkSharded(t *testing.T, name string, part *graph.Partition, outs []*mat.Matrix, labels []int, want *mat.Matrix, wantLabels []int) {
	t.Helper()
	for s, out := range outs {
		lo, hi := part.Bounds[s], part.Bounds[s+1]
		if out.Rows != hi-lo || out.Cols != want.Cols {
			t.Fatalf("%s: shard %d output %s, want %dx%d", name, s, out.Shape(), hi-lo, want.Cols)
		}
		for i := 0; i < out.Rows*out.Cols; i++ {
			w := want.Data[lo*want.Cols+i]
			if math.Float64bits(out.Data[i]) != math.Float64bits(w) {
				t.Fatalf("%s: shard %d element %d: %g != reference %g", name, s, i, out.Data[i], w)
			}
		}
	}
	for i, l := range labels {
		if l != wantLabels[i] {
			t.Fatalf("%s: label %d: %d != reference %d", name, i, l, wantLabels[i])
		}
	}
}

// TestShardedExecBitIdentical pins the fleet's core contract: sharded
// execution at every shard count, precision tier and execution mode is
// bit-identical to the single-machine run — outputs and argmax labels.
func TestShardedExecBitIdentical(t *testing.T) {
	const n, d0, h, classes = 61, 5, 7, 4
	rng := rand.New(rand.NewSource(11))
	pr := newGCNParams(rng, d0, h, classes)
	csr := testCSR(n, 3)
	x := randMat(rng, n, d0)

	ref := buildGCN(n, d0, csr, pr, nil, false)
	refMach, err := ref.NewMachine(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantLabels := make([]int, n)
	want := refMach.Run(n, []*mat.Matrix{x}, wantLabels).Clone()

	scales, _, err := CalibrateScales(ref, n, []*mat.Matrix{x})
	if err != nil {
		t.Fatal(err)
	}
	refI8, err := ref.NewMachine(Config{Elem: I8, Scales: scales})
	if err != nil {
		t.Fatal(err)
	}
	wantLabelsI8 := make([]int, n)
	wantI8 := refI8.Run(n, []*mat.Matrix{x}, wantLabelsI8).Clone()
	refF32, err := ref.NewMachine(Config{Elem: F32})
	if err != nil {
		t.Fatal(err)
	}
	wantLabelsF32 := make([]int, n)
	wantF32 := refF32.Run(n, []*mat.Matrix{x}, wantLabelsF32).Clone()

	for _, shards := range []int{1, 2, 3, 4} {
		part := graph.NewPartition(csr, shards)
		progs := buildShardProgs(part, d0, pr)
		labels := make([]int, n)

		for _, mode := range []struct {
			name string
			cfg  Config
		}{
			{"direct", Config{Workers: 1}},
			{"tiled", Config{TileRows: 8, Workers: 1}},
			{"tile-parallel", Config{TileRows: 4, Workers: 3}},
		} {
			outs := runFleet(t, part, progs, func(int) Config { return mode.cfg }, x, labels)
			checkSharded(t, mode.name, part, outs, labels, want, wantLabels)
		}

		outs := runFleet(t, part, progs, func(int) Config { return Config{Elem: F32, Workers: 1} }, x, labels)
		checkSharded(t, "fp32", part, outs, labels, wantF32, wantLabelsF32)

		outs = runFleet(t, part, progs, func(s int) Config {
			ss, err := ShardScales(progs[s], scales)
			if err != nil {
				t.Fatalf("shard %d scales: %v", s, err)
			}
			return Config{Elem: I8, Scales: ss, Workers: 1}
		}, x, labels)
		checkSharded(t, "int8", part, outs, labels, wantI8, wantLabelsI8)
	}
}

// TestShardedHaloAccounting pins the halo/spill pricing: HaloBytes sums
// slot×width bytes per halo op at the element width, and a halo
// destination's extra rows join SpillTraffic.
func TestShardedHaloAccounting(t *testing.T) {
	const n, d0, h, classes = 40, 3, 6, 4
	rng := rand.New(rand.NewSource(5))
	pr := newGCNParams(rng, d0, h, classes)
	csr := testCSR(n, 9)
	part := graph.NewPartition(csr, 2)
	if part.HaloCols() == 0 {
		t.Fatal("test graph produced no halo columns")
	}
	progs := buildShardProgs(part, d0, pr)
	total := int64(0)
	for s, p := range progs {
		m, err := p.NewMachine(Config{TileRows: 8, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		nh := len(part.Halo[s])
		// Two halo ops per program (one per layer), widths h and classes.
		wantHalo := int64(nh) * int64(h+classes) * 8
		if got := m.HaloBytes(); got != wantHalo {
			t.Fatalf("shard %d HaloBytes %d, want %d", s, got, wantHalo)
		}
		total += m.HaloBytes()
		rows := part.Rows(s)
		// SpillTraffic counts the halo rows of each halo destination on
		// top of the local rows of every op output.
		spill := m.SpillTraffic(rows)
		base := int64(0)
		for _, op := range p.Ops() {
			if op.Dst >= 0 {
				base += int64(rows) * int64(p.vals[op.Dst].width) * 8
			}
		}
		if spill != base+wantHalo {
			t.Fatalf("shard %d SpillTraffic %d, want %d local + %d halo", s, spill, base, wantHalo)
		}
	}
	machines := make([]*Machine, len(progs))
	for s, p := range progs {
		m, err := p.NewMachine(Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		machines[s] = m
	}
	fleet, err := NewFleet(machines)
	if err != nil {
		t.Fatal(err)
	}
	if got := fleet.HaloBytes(); got != total {
		t.Fatalf("fleet HaloBytes %d, want %d", got, total)
	}
}

// TestFleetValidation covers NewFleet's refusal cases and the bare-
// machine halo guard.
func TestFleetValidation(t *testing.T) {
	const n, d0, h, classes = 30, 3, 5, 3
	rng := rand.New(rand.NewSource(2))
	pr := newGCNParams(rng, d0, h, classes)
	csr := testCSR(n, 4)
	part := graph.NewPartition(csr, 2)
	progs := buildShardProgs(part, d0, pr)

	if _, err := NewFleet(nil); err == nil {
		t.Fatal("empty fleet accepted")
	}

	mach := func(s int, cfg Config) *Machine {
		m, err := progs[s].NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	// Mismatched op sequences: one shard lowered without halo ops.
	plain := buildGCN(part.Rows(1), d0, part.CSR[1], pr, nil, false)
	pm, err := plain.NewMachine(Config{Workers: 1})
	if err == nil {
		_, err = NewFleet([]*Machine{mach(0, Config{Workers: 1}), pm})
	}
	if err == nil {
		t.Fatal("fleet with mismatched op sequences accepted")
	}

	// Mismatched element types.
	if _, err := NewFleet([]*Machine{mach(0, Config{Workers: 1}), mach(1, Config{Elem: F32, Workers: 1})}); err == nil {
		t.Fatal("fleet with mixed element types accepted")
	}

	// Halo slots addressing shards or rows outside the fleet.
	for _, bad := range [][]HaloSlot{{{Shard: 5, Row: 0}}, {{Shard: 0, Row: part.Rows(0) + 7}}} {
		badProg := buildGCN(part.Rows(0), d0, part.CSR[0], pr, bad[:1], true)
		// The shard-0 CSR expects one halo column; rebuild it as a
		// single-slot operand so the program compiles, then let the
		// fleet reject the addressing.
		bm, err := badProg.NewMachine(Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewFleet([]*Machine{bm}); err == nil {
			t.Fatalf("fleet accepted bad halo slot %+v", bad[0])
		}
	}

	// A machine can join only one fleet.
	a, b := mach(0, Config{Workers: 1}), mach(1, Config{Workers: 1})
	if _, err := NewFleet([]*Machine{a, b}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFleet([]*Machine{a, b}); err == nil {
		t.Fatal("machines joined a second fleet")
	}

	// Halo programs refuse to run outside a fleet or at partial height.
	lone := mach(0, Config{Workers: 1})
	x := randMat(rng, part.Rows(0), d0)
	mustPanicExec(t, func() { lone.Run(part.Rows(0), []*mat.Matrix{x}, nil) })
	if part.Rows(0) > 1 {
		short := &mat.Matrix{}
		x.ViewRows(0, part.Rows(0)-1, short)
		mustPanicExec(t, func() { lone.Run(part.Rows(0)-1, []*mat.Matrix{short}, nil) })
	}
}

// TestFleetAbortUnwindAndReuse pins the poisonable-barrier contract: a
// shard that never arrives (lost enclave) plus an Abort unwinds every
// peer with ErrFleetAborted wrapping the cause instead of deadlocking;
// after Reset the same fleet — and the fleet after a Replace of the dead
// shard — reproduces the baseline bit-for-bit.
func TestFleetAbortUnwindAndReuse(t *testing.T) {
	const n, d0, h, classes = 48, 4, 6, 3
	rng := rand.New(rand.NewSource(17))
	pr := newGCNParams(rng, d0, h, classes)
	csr := testCSR(n, 6)
	x := randMat(rng, n, d0)
	part := graph.NewPartition(csr, 3)
	progs := buildShardProgs(part, d0, pr)
	cfg := func(int) Config { return Config{Workers: 1} }

	fleet := newTestFleet(t, progs, cfg)
	baseLabels := make([]int, n)
	base := runFleetPass(t, fleet, part, x, baseLabels)
	want := make([]*mat.Matrix, len(base))
	for s, o := range base {
		want[s] = o.Clone()
	}

	// Shard 2 dies before its ECALL: shards 0 and 1 block on the entry
	// barrier until the abort poisons it, then unwind with the cause.
	cause := errors.New("shard 2 enclave lost")
	labels := make([]int, n)
	_, errs := fleetPass(fleet, part, x, labels, 2, cause)
	for s := 0; s < 2; s++ {
		if !errors.Is(errs[s], ErrFleetAborted) {
			t.Fatalf("shard %d error %v does not wrap ErrFleetAborted", s, errs[s])
		}
		if !errors.Is(errs[s], cause) {
			t.Fatalf("shard %d error %v does not wrap the abort cause", s, errs[s])
		}
	}

	// The poison outlives the pass until Reset: a new pass fails fast.
	_, errs = fleetPass(fleet, part, x, labels, -1, nil)
	for s, err := range errs {
		if !errors.Is(err, ErrFleetAborted) {
			t.Fatalf("pre-Reset shard %d error %v, want ErrFleetAborted", s, err)
		}
	}

	// Reset re-arms the same fleet; the next pass is bit-identical.
	fleet.Reset()
	outs := runFleetPass(t, fleet, part, x, labels)
	for s := range outs {
		for i, v := range outs[s].Data {
			if math.Float64bits(v) != math.Float64bits(want[s].Data[i]) {
				t.Fatalf("post-Reset shard %d element %d: %g != %g", s, i, v, want[s].Data[i])
			}
		}
	}
	for i, l := range labels {
		if l != baseLabels[i] {
			t.Fatalf("post-Reset label %d: %d != %d", i, l, baseLabels[i])
		}
	}

	// Replace the dead shard with a fresh machine — the recovery rejoin —
	// and the fleet is again bit-identical.
	fresh, err := progs[2].NewMachine(cfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Replace(2, fresh); err != nil {
		t.Fatal(err)
	}
	outs = runFleetPass(t, fleet, part, x, labels)
	for s := range outs {
		for i, v := range outs[s].Data {
			if math.Float64bits(v) != math.Float64bits(want[s].Data[i]) {
				t.Fatalf("post-Replace shard %d element %d: %g != %g", s, i, v, want[s].Data[i])
			}
		}
	}

	// Replace refusals: out-of-range shard, machine already fleet-bound.
	if err := fleet.Replace(9, fresh); err == nil {
		t.Fatal("Replace accepted an out-of-range shard")
	}
	if err := fleet.Replace(2, fleet.Machine(0)); err == nil {
		t.Fatal("Replace accepted a machine already in a fleet")
	}
}

func mustPanicExec(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

// FuzzShardedExec fuzzes the sharded bit-identity contract: for fuzzed
// graph shapes, feature widths and precision tiers, running the fleet at
// every shard count in {1,2,3,4} — direct and tiled — must reproduce the
// single-machine outputs and labels bit-for-bit. CI runs this as a short
// smoke via `make fuzz-smoke`.
func FuzzShardedExec(f *testing.F) {
	f.Add(uint8(32), uint8(4), uint8(6), int64(1), uint8(0))
	f.Add(uint8(1), uint8(1), uint8(1), int64(2), uint8(1))
	f.Add(uint8(57), uint8(3), uint8(5), int64(3), uint8(2))
	f.Add(uint8(7), uint8(2), uint8(8), int64(4), uint8(5))
	f.Fuzz(func(t *testing.T, nRaw, dRaw, hRaw uint8, seed int64, modeRaw uint8) {
		n := int(nRaw)%64 + 1
		d0 := int(dRaw)%6 + 1
		h := int(hRaw)%8 + 1
		classes := int(modeRaw)%3 + 2
		elem := Elem(modeRaw % 3) // F64, F32 or I8
		tiled := modeRaw%2 == 1
		rng := rand.New(rand.NewSource(seed))
		pr := newGCNParams(rng, d0, h, classes)
		csr := testCSR(n, seed)
		x := randMat(rng, n, d0)

		ref := buildGCN(n, d0, csr, pr, nil, false)
		var scales [][]float64
		refCfg := Config{Elem: elem, Workers: 1}
		if elem == I8 {
			var err error
			scales, _, err = CalibrateScales(ref, n, []*mat.Matrix{x})
			if err != nil {
				t.Fatal(err)
			}
			refCfg.Scales = scales
		}
		refMach, err := ref.NewMachine(refCfg)
		if err != nil {
			t.Fatal(err)
		}
		wantLabels := make([]int, n)
		want := refMach.Run(n, []*mat.Matrix{x}, wantLabels).Clone()

		for shards := 1; shards <= 4; shards++ {
			part := graph.NewPartition(csr, shards)
			progs := buildShardProgs(part, d0, pr)
			labels := make([]int, n)
			cfgFn := func(s int) Config {
				cfg := Config{Elem: elem, Workers: 1}
				if tiled && part.Rows(s) > 1 {
					cfg.TileRows = part.Rows(s)/2 + 1
				}
				if elem == I8 {
					ss, err := ShardScales(progs[s], scales)
					if err != nil {
						t.Fatalf("shard %d scales: %v", s, err)
					}
					cfg.Scales = ss
				}
				return cfg
			}
			fleet := newTestFleet(t, progs, cfgFn)
			outs := runFleetPass(t, fleet, part, x, labels)
			checkSharded(t, elem.String(), part, outs, labels, want, wantLabels)

			if shards < 2 {
				continue
			}
			// Injected fault: a fuzz-chosen shard dies before its ECALL.
			// Every survivor must unwind with ErrFleetAborted (no
			// deadlock), and after Reset the same fleet must reproduce
			// the reference bit-for-bit.
			dead := int(seed%int64(shards)+int64(shards)) % shards
			cause := errors.New("injected enclave loss")
			_, errs := fleetPass(fleet, part, x, labels, dead, cause)
			for s, err := range errs {
				if s == dead {
					continue
				}
				if !errors.Is(err, ErrFleetAborted) || !errors.Is(err, cause) {
					t.Fatalf("shard %d after injected fault: %v", s, err)
				}
			}
			fleet.Reset()
			outs = runFleetPass(t, fleet, part, x, labels)
			checkSharded(t, elem.String()+"/post-fault", part, outs, labels, want, wantLabels)
		}
	})
}
