package exec

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"gnnvault/internal/mat"
)

// Fleet synchronisation for sharded execution. A partitioned vault runs
// one machine per shard, each inside its own enclave, and the shards'
// halo ops read each other's spill buffers directly — the simulation of
// a sealed activation exchange between enclaves. Correctness needs only
// two ordering guarantees, both provided by one reusable barrier: no
// shard reads across the fleet before every peer has bound its views
// (the entry barrier in Run), and no halo op gathers before every peer
// has finished the ops preceding it (the barrier in runHalo — programs
// are lowered with identical op sequences, so "my halo op i" implies
// "your value from op < i is complete"). Values are written exactly once
// per run, so no further synchronisation is needed: a shard that races
// ahead only writes values no peer reads anymore.
//
// The barrier is also the fleet's failure domain. A shard whose ECALL
// never starts (a lost enclave) never arrives, which would strand its
// peers forever — so the barrier is poisonable: Abort wakes every waiter
// and fails every later wait with the abort cause, each machine unwinds
// its run (no gather ever reads a half-written value, because unwinding
// happens only at barrier points and passing a barrier proves every peer
// completed the ops before it), and Reset re-arms the same fleet for the
// next pass.

// ErrFleetAborted is wrapped into the error every shard of an aborted
// fleet pass unwinds with, alongside the abort cause — a peer that only
// saw the poisoned barrier reports both "the pass was aborted" and why.
var ErrFleetAborted = errors.New("exec: fleet pass aborted")

// fleetAbort carries the abort cause through the panic that unwinds a
// machine's op loop when a barrier wait fails; RunShard recovers it.
type fleetAbort struct{ cause error }

// barrier is a reusable counting barrier. Each wait blocks until all n
// parties arrive; the phase counter makes it safely reusable because a
// party cannot start its k+1-th wait before its k-th completed, so all
// parties always sit in the same phase. A non-nil cause poisons the
// barrier: every current and future wait fails with it until reset.
type barrier struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	phase uint64
	cause error
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond.L = &b.mu
	return b
}

func (b *barrier) wait() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cause != nil {
		return b.cause
	}
	ph := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		return nil
	}
	for b.phase == ph && b.cause == nil {
		b.cond.Wait()
	}
	if b.phase == ph {
		// Woken by poison before the phase completed: withdraw this
		// arrival so reset sees a consistent count.
		b.count--
		return b.cause
	}
	return nil
}

// poison marks the barrier failed (first cause wins) and wakes every
// waiter.
func (b *barrier) poison(cause error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cause == nil {
		b.cause = cause
		b.cond.Broadcast()
	}
}

// reset re-arms a (possibly poisoned) barrier for the next round. The
// caller must have joined every party of the aborted round first.
func (b *barrier) reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.cause = nil
	b.count = 0
}

// Fleet couples one machine per shard of a partitioned program so their
// halo ops can exchange boundary activations. All shards of a round must
// run concurrently (RunShard from one goroutine per shard — the per-
// shard ECALL bodies); a shard run alone would wait forever on the
// barrier. A fleet handles one round at a time; the caller joins every
// RunShard before starting the next.
type Fleet struct {
	machines []*Machine
	bar      *barrier
}

// NewFleet wires the shard machines into a fleet: validates that their
// programs synchronise identically (same op-kind sequence, hence the
// same barrier calls per run), that every halo slot addresses a real
// peer row, and that all machines share an element type; then installs
// the peer table and barrier into each machine. Machines may belong to
// at most one fleet. Programs containing OpFunc are rejected — an opaque
// kernel could fail mid-run between barriers, and fleet execution must
// be infallible between barrier points (failure enters only through the
// poisonable barrier itself: Abort / RunShard errors).
func NewFleet(machines []*Machine) (*Fleet, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("exec: fleet of zero machines")
	}
	for s, m := range machines {
		if err := validateFleetMachine(machines, s, m); err != nil {
			return nil, err
		}
	}
	f := &Fleet{machines: machines, bar: newBarrier(len(machines))}
	for _, m := range machines {
		m.peers = machines
		m.sync = f.bar.wait
	}
	return f, nil
}

// validateFleetMachine checks machine m as shard s of the fleet: not yet
// fleet-bound, tileable, same element type and op-kind sequence as shard
// 0 (or, when validating a replacement for shard 0 itself, as another
// shard), and every halo slot in range of its peer.
func validateFleetMachine(machines []*Machine, s int, m *Machine) error {
	ref := machines[0]
	if s == 0 && m != machines[0] {
		ref = machines[len(machines)-1]
	}
	if m.peers != nil {
		return fmt.Errorf("exec: shard %d machine already belongs to a fleet", s)
	}
	if !m.prog.tileable {
		return fmt.Errorf("exec: shard %d program contains non-tileable ops (OpFunc cannot run in a fleet)", s)
	}
	if m.elem != ref.elem {
		return fmt.Errorf("exec: shard %d element type %s != shard 0 %s", s, m.elem, ref.elem)
	}
	if len(m.prog.ops) != len(ref.prog.ops) {
		return fmt.Errorf("exec: shard %d has %d ops, shard 0 has %d — shards must lower identically", s, len(m.prog.ops), len(ref.prog.ops))
	}
	for i := range m.prog.ops {
		if m.prog.ops[i].Kind != ref.prog.ops[i].Kind {
			return fmt.Errorf("exec: shard %d op %d is %s, shard 0 has %s — shards must lower identically", s, i, m.prog.ops[i].Kind, ref.prog.ops[i].Kind)
		}
	}
	for i := range m.prog.ops {
		op := &m.prog.ops[i]
		if op.Kind != OpHalo {
			continue
		}
		for _, sl := range op.Halo {
			if sl.Shard < 0 || sl.Shard >= len(machines) {
				return fmt.Errorf("exec: shard %d halo slot names shard %d of %d", s, sl.Shard, len(machines))
			}
			if sl.Row < 0 || sl.Row >= machines[sl.Shard].prog.MaxRows {
				return fmt.Errorf("exec: shard %d halo slot row %d outside peer %d's %d rows", s, sl.Row, sl.Shard, machines[sl.Shard].prog.MaxRows)
			}
		}
	}
	return nil
}

// Replace swaps a fresh machine in as shard s — the rejoin step of shard
// recovery, after the shard's enclave was lost and re-provisioned. The
// replacement must lower identically to its peers (same validation as
// NewFleet) and match the old machine's height, since peer halo slots
// address its rows. The peer table is shared, so every machine in the
// fleet sees the replacement immediately; the caller must guarantee no
// pass is in flight.
func (f *Fleet) Replace(s int, m *Machine) error {
	if s < 0 || s >= len(f.machines) {
		return fmt.Errorf("exec: replace shard %d of %d", s, len(f.machines))
	}
	if m.peers != nil {
		return fmt.Errorf("exec: replacement machine already belongs to a fleet")
	}
	if m.prog.MaxRows != f.machines[s].prog.MaxRows {
		return fmt.Errorf("exec: replacement shard %d is %d rows, fleet expects %d", s, m.prog.MaxRows, f.machines[s].prog.MaxRows)
	}
	if err := validateFleetMachine(f.machines, s, m); err != nil {
		return err
	}
	old := f.machines[s]
	f.machines[s] = m // shared peer slice: visible to every machine
	old.peers, old.sync = nil, nil
	m.peers = f.machines
	m.sync = f.bar.wait
	return nil
}

// Abort poisons the fleet's barrier: every shard blocked at (or later
// arriving at) a barrier unwinds its RunShard with an error wrapping
// ErrFleetAborted and the given cause, instead of deadlocking on a peer
// that will never arrive. The first cause wins; nil is recorded as a
// bare ErrFleetAborted. Safe from any goroutine — including one watching
// a context deadline. After every RunShard of the aborted pass has
// returned, Reset re-arms the fleet.
func (f *Fleet) Abort(cause error) {
	if cause == nil {
		f.bar.poison(ErrFleetAborted)
		return
	}
	f.bar.poison(fmt.Errorf("%w: %w", ErrFleetAborted, cause))
}

// Reset re-arms the fleet for the next pass after an aborted one. The
// caller must have joined every RunShard of the aborted pass first; the
// machines, their buffers and the peer table are untouched, so the fleet
// serves the next pass as if the abort never happened.
func (f *Fleet) Reset() {
	f.bar.reset()
}

// Shards returns the fleet's shard count.
func (f *Fleet) Shards() int { return len(f.machines) }

// Machine returns shard s's machine (for Value/Output reads and
// accounting; it stays owned by the fleet).
func (f *Fleet) Machine(s int) *Machine { return f.machines[s] }

// RunShard executes shard s's machine over its full shard height. It
// must be called concurrently for every shard of the fleet — typically
// from inside each shard enclave's ECALL body — and blocks at the fleet
// barriers until the peers catch up. Arguments and result are exactly
// Machine.Run's, over the shard's local rows; labels receives the
// shard's rows of the global label vector, so passing labels[lo:hi] per
// shard stitches the full result with no extra copy.
//
// When the pass is aborted (Fleet.Abort — a peer's enclave lost, a
// deadline expired) RunShard returns a nil matrix and an error wrapping
// ErrFleetAborted and the abort cause: the shard unwinds at its next
// barrier instead of deadlocking on a peer that will never arrive. A
// shard that had already passed its last barrier may still return its
// completed output; the caller discards the pass either way.
//
// The calling goroutine is pinned to its OS thread for the duration so
// the machine's busy accounting can read the per-thread CPU clock:
// only this shard's own cycles are charged, no matter how the host
// scheduler interleaves the peers.
func (f *Fleet) RunShard(s, rows int, inputs []*mat.Matrix, labels []int) (out *mat.Matrix, err error) {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	defer func() {
		if r := recover(); r != nil {
			fa, ok := r.(*fleetAbort)
			if !ok {
				panic(r)
			}
			out, err = nil, fmt.Errorf("exec: shard %d unwound: %w", s, fa.cause)
		}
	}()
	return f.machines[s].Run(rows, inputs, labels), nil
}

// HaloBytes returns the total boundary-activation traffic one fleet
// round exchanges, summed over shards — the quantity the sharded plans
// price into each ECALL payload and surface on /metrics.
func (f *Fleet) HaloBytes() int64 {
	n := int64(0)
	for _, m := range f.machines {
		n += m.HaloBytes()
	}
	return n
}

// HaloSlots resolves global halo column indices to fleet slots under the
// partition's row bounds (graph.Partition.Bounds): each column maps to
// its owning shard and its row index local to that shard. Kept here so
// lowering code can build halo ops without exec importing graph's
// partition type.
func HaloSlots(bounds []int, halo []int) []HaloSlot {
	slots := make([]HaloSlot, len(halo))
	for k, c := range halo {
		s := sort.SearchInts(bounds, c+1) - 1
		slots[k] = HaloSlot{Shard: s, Row: c - bounds[s]}
	}
	return slots
}

// ShardScales derives a sharded program's per-value int8 activation
// scales from the unsharded program's calibrated scales (CalibrateScales
// output). The two programs create non-halo values in identical order —
// the sharded lowering only inserts Halo ops, and fusion folds the same
// chains — so base scales are consumed sequentially, and each halo
// destination copies its source's scales: a halo value holds rows of the
// same global activation, so its per-column quantization grid must match
// exactly for the gathered codes to be bit-identical across shards.
func ShardScales(p *Program, base [][]float64) ([][]float64, error) {
	haloSrc := make(map[int]int)
	for i := range p.ops {
		if p.ops[i].Kind == OpHalo {
			haloSrc[p.ops[i].Dst] = p.ops[i].Srcs[0]
		}
	}
	out := make([][]float64, len(p.vals))
	j := 0
	for i := range p.vals {
		if src, ok := haloSrc[i]; ok {
			out[i] = out[src]
			continue
		}
		if j >= len(base) {
			return nil, fmt.Errorf("exec: sharded program has more non-halo values than the %d base scales", len(base))
		}
		out[i] = base[j]
		j++
	}
	if j != len(base) {
		return nil, fmt.Errorf("exec: sharded program consumed %d of %d base scale vectors — programs do not correspond", j, len(base))
	}
	return out, nil
}
