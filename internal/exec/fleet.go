package exec

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"gnnvault/internal/mat"
)

// Fleet synchronisation for sharded execution. A partitioned vault runs
// one machine per shard, each inside its own enclave, and the shards'
// halo ops read each other's spill buffers directly — the simulation of
// a sealed activation exchange between enclaves. Correctness needs only
// two ordering guarantees, both provided by one reusable barrier: no
// shard reads across the fleet before every peer has bound its views
// (the entry barrier in Run), and no halo op gathers before every peer
// has finished the ops preceding it (the barrier in runHalo — programs
// are lowered with identical op sequences, so "my halo op i" implies
// "your value from op < i is complete"). Values are written exactly once
// per run, so no further synchronisation is needed: a shard that races
// ahead only writes values no peer reads anymore.

// barrier is a reusable counting barrier. Each wait blocks until all n
// parties arrive; the phase counter makes it safely reusable because a
// party cannot start its k+1-th wait before its k-th completed, so all
// parties always sit in the same phase.
type barrier struct {
	mu    sync.Mutex
	cond  sync.Cond
	n     int
	count int
	phase uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond.L = &b.mu
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	ph := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for b.phase == ph {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Fleet couples one machine per shard of a partitioned program so their
// halo ops can exchange boundary activations. All shards of a round must
// run concurrently (RunShard from one goroutine per shard — the per-
// shard ECALL bodies); a shard run alone would wait forever on the
// barrier. A fleet handles one round at a time; the caller joins every
// RunShard before starting the next.
type Fleet struct {
	machines []*Machine
	bar      *barrier
}

// NewFleet wires the shard machines into a fleet: validates that their
// programs synchronise identically (same op-kind sequence, hence the
// same barrier calls per run), that every halo slot addresses a real
// peer row, and that all machines share an element type; then installs
// the peer table and barrier into each machine. Machines may belong to
// at most one fleet. Programs containing OpFunc are rejected — an opaque
// kernel could fail mid-run between barriers, and fleet execution must
// be infallible after the entry barrier.
func NewFleet(machines []*Machine) (*Fleet, error) {
	if len(machines) == 0 {
		return nil, fmt.Errorf("exec: fleet of zero machines")
	}
	ref := machines[0].prog
	for s, m := range machines {
		if m.peers != nil {
			return nil, fmt.Errorf("exec: shard %d machine already belongs to a fleet", s)
		}
		if !m.prog.tileable {
			return nil, fmt.Errorf("exec: shard %d program contains non-tileable ops (OpFunc cannot run in a fleet)", s)
		}
		if m.elem != machines[0].elem {
			return nil, fmt.Errorf("exec: shard %d element type %s != shard 0 %s", s, m.elem, machines[0].elem)
		}
		if len(m.prog.ops) != len(ref.ops) {
			return nil, fmt.Errorf("exec: shard %d has %d ops, shard 0 has %d — shards must lower identically", s, len(m.prog.ops), len(ref.ops))
		}
		for i := range m.prog.ops {
			if m.prog.ops[i].Kind != ref.ops[i].Kind {
				return nil, fmt.Errorf("exec: shard %d op %d is %s, shard 0 has %s — shards must lower identically", s, i, m.prog.ops[i].Kind, ref.ops[i].Kind)
			}
		}
		for i := range m.prog.ops {
			op := &m.prog.ops[i]
			if op.Kind != OpHalo {
				continue
			}
			for _, sl := range op.Halo {
				if sl.Shard < 0 || sl.Shard >= len(machines) {
					return nil, fmt.Errorf("exec: shard %d halo slot names shard %d of %d", s, sl.Shard, len(machines))
				}
				if sl.Row < 0 || sl.Row >= machines[sl.Shard].prog.MaxRows {
					return nil, fmt.Errorf("exec: shard %d halo slot row %d outside peer %d's %d rows", s, sl.Row, sl.Shard, machines[sl.Shard].prog.MaxRows)
				}
			}
		}
	}
	f := &Fleet{machines: machines, bar: newBarrier(len(machines))}
	for _, m := range machines {
		m.peers = machines
		m.sync = f.bar.wait
	}
	return f, nil
}

// Shards returns the fleet's shard count.
func (f *Fleet) Shards() int { return len(f.machines) }

// Machine returns shard s's machine (for Value/Output reads and
// accounting; it stays owned by the fleet).
func (f *Fleet) Machine(s int) *Machine { return f.machines[s] }

// RunShard executes shard s's machine over its full shard height. It
// must be called concurrently for every shard of the fleet — typically
// from inside each shard enclave's ECALL body — and blocks at the fleet
// barriers until the peers catch up. Arguments and result are exactly
// Machine.Run's, over the shard's local rows; labels receives the
// shard's rows of the global label vector, so passing labels[lo:hi] per
// shard stitches the full result with no extra copy.
//
// The calling goroutine is pinned to its OS thread for the duration so
// the machine's busy accounting can read the per-thread CPU clock:
// only this shard's own cycles are charged, no matter how the host
// scheduler interleaves the peers.
func (f *Fleet) RunShard(s, rows int, inputs []*mat.Matrix, labels []int) *mat.Matrix {
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	return f.machines[s].Run(rows, inputs, labels)
}

// HaloBytes returns the total boundary-activation traffic one fleet
// round exchanges, summed over shards — the quantity the sharded plans
// price into each ECALL payload and surface on /metrics.
func (f *Fleet) HaloBytes() int64 {
	n := int64(0)
	for _, m := range f.machines {
		n += m.HaloBytes()
	}
	return n
}

// HaloSlots resolves global halo column indices to fleet slots under the
// partition's row bounds (graph.Partition.Bounds): each column maps to
// its owning shard and its row index local to that shard. Kept here so
// lowering code can build halo ops without exec importing graph's
// partition type.
func HaloSlots(bounds []int, halo []int) []HaloSlot {
	slots := make([]HaloSlot, len(halo))
	for k, c := range halo {
		s := sort.SearchInts(bounds, c+1) - 1
		slots[k] = HaloSlot{Shard: s, Row: c - bounds[s]}
	}
	return slots
}

// ShardScales derives a sharded program's per-value int8 activation
// scales from the unsharded program's calibrated scales (CalibrateScales
// output). The two programs create non-halo values in identical order —
// the sharded lowering only inserts Halo ops, and fusion folds the same
// chains — so base scales are consumed sequentially, and each halo
// destination copies its source's scales: a halo value holds rows of the
// same global activation, so its per-column quantization grid must match
// exactly for the gathered codes to be bit-identical across shards.
func ShardScales(p *Program, base [][]float64) ([][]float64, error) {
	haloSrc := make(map[int]int)
	for i := range p.ops {
		if p.ops[i].Kind == OpHalo {
			haloSrc[p.ops[i].Dst] = p.ops[i].Srcs[0]
		}
	}
	out := make([][]float64, len(p.vals))
	j := 0
	for i := range p.vals {
		if src, ok := haloSrc[i]; ok {
			out[i] = out[src]
			continue
		}
		if j >= len(base) {
			return nil, fmt.Errorf("exec: sharded program has more non-halo values than the %d base scales", len(base))
		}
		out[i] = base[j]
		j++
	}
	if j != len(base) {
		return nil, fmt.Errorf("exec: sharded program consumed %d of %d base scale vectors — programs do not correspond", j, len(base))
	}
	return out, nil
}
