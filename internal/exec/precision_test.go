package exec

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"gnnvault/internal/mat"
)

// buildPrecisionProg assembles the fuzz/regression program the precision
// tests share: MatMul → SpMM → bias → residual Add → ReLU → Concat →
// MatMul → Argmax, fused — every op kind the reduced kernel families
// implement, in one chain.
func buildPrecisionProg(n, d, h int, seed int64) (*Program, *mat.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	csr := testCSR(n, seed)
	b := NewBuilder(n)
	in := b.Input(d)
	v := b.MatMul(in, randMat(rng, d, h))
	v = b.SpMM(csr, v)
	v = b.AddBias(v, randMat(rng, 1, h).Data)
	skip := b.MatMul(in, randMat(rng, d, h))
	v = b.Add(v, skip)
	v = b.ReLU(v)
	v = b.Concat(v, in)
	out := b.MatMul(v, randMat(rng, h+d, d))
	b.Argmax(out)
	return b.Build().Fused(), randMat(rng, n, d)
}

// runReducedLabels builds a machine of the given config over prog and
// returns its output clone and labels.
func runReducedLabels(t *testing.T, prog *Program, cfg Config, n int, x *mat.Matrix) (*mat.Matrix, []int) {
	t.Helper()
	m, err := prog.NewMachine(cfg)
	if err != nil {
		t.Fatalf("NewMachine(%+v): %v", cfg, err)
	}
	labels := make([]int, n)
	out := m.Run(n, []*mat.Matrix{x}, labels).Clone()
	return out, labels
}

// TestFP32MachineNearReference: the fp32 engine tracks the fp64 reference
// within single-precision rounding, and tiled/tile-parallel fp32 output
// is bit-identical to direct fp32.
func TestFP32MachineNearReference(t *testing.T) {
	const n, d, h = 57, 5, 7
	prog, x := buildPrecisionProg(n, d, h, 11)
	scales, refLabels, err := CalibrateScales(prog, n, []*mat.Matrix{x})
	if err != nil {
		t.Fatalf("CalibrateScales: %v", err)
	}
	if len(scales) == 0 || len(refLabels) != n {
		t.Fatalf("calibration returned %d scales, %d labels", len(scales), len(refLabels))
	}
	ref, _ := runReducedLabels(t, prog, Config{Workers: 1}, n, x)

	direct, dLabels := runReducedLabels(t, prog, Config{Workers: 1, Elem: F32}, n, x)
	maxRel := 0.0
	for i, v := range direct.Data {
		denom := math.Max(math.Abs(ref.Data[i]), 1)
		if rel := math.Abs(v-ref.Data[i]) / denom; rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel > 1e-4 {
		t.Fatalf("fp32 max relative error %g vs fp64", maxRel)
	}
	for _, cfg := range []Config{
		{TileRows: 13, Workers: 1, Elem: F32},
		{TileRows: 13, Workers: 4, Elem: F32},
		{TileRows: n, Workers: 2, Elem: F32},
	} {
		out, labels := runReducedLabels(t, prog, cfg, n, x)
		if !out.Equal(direct) {
			t.Fatalf("fp32 %+v output not bit-identical to fp32 direct", cfg)
		}
		for i := range labels {
			if labels[i] != dLabels[i] {
				t.Fatalf("fp32 %+v label[%d] differs", cfg, i)
			}
		}
	}
}

// TestI8MachineCalibrated: a calibrated int8 machine reproduces the fp64
// argmax on every row whose fp64 top-1/top-2 margin exceeds twice the
// measured quantization error, and tiled/tile-parallel int8 output is
// bit-identical to direct int8 (int32 accumulation is order-free).
func TestI8MachineCalibrated(t *testing.T) {
	const n, d, h = 57, 5, 7
	prog, x := buildPrecisionProg(n, d, h, 12)
	scales, refLabels, err := CalibrateScales(prog, n, []*mat.Matrix{x})
	if err != nil {
		t.Fatalf("CalibrateScales: %v", err)
	}
	ref, _ := runReducedLabels(t, prog, Config{Workers: 1}, n, x)

	direct, dLabels := runReducedLabels(t, prog, Config{Workers: 1, Elem: I8, Scales: scales}, n, x)
	// Measured dequantized error bounds which rows may legitimately flip.
	maxErr := 0.0
	for i := range direct.Data {
		if e := math.Abs(direct.Data[i] - ref.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	w := ref.Cols
	for r := 0; r < n; r++ {
		row := ref.Data[r*w : (r+1)*w]
		top, second := math.Inf(-1), math.Inf(-1)
		for _, v := range row {
			if v > top {
				top, second = v, top
			} else if v > second {
				second = v
			}
		}
		if top-second > 2*maxErr && dLabels[r] != refLabels[r] {
			t.Fatalf("int8 label[%d] = %d, fp64 %d despite margin %g > 2×err %g",
				r, dLabels[r], refLabels[r], top-second, maxErr)
		}
	}
	for _, cfg := range []Config{
		{TileRows: 13, Workers: 1, Elem: I8, Scales: scales},
		{TileRows: 13, Workers: 4, Elem: I8, Scales: scales},
	} {
		out, labels := runReducedLabels(t, prog, cfg, n, x)
		if !out.Equal(direct) {
			t.Fatalf("int8 %+v output not bit-identical to int8 direct", cfg)
		}
		for i := range labels {
			if labels[i] != dLabels[i] {
				t.Fatalf("int8 %+v label[%d] differs", cfg, i)
			}
		}
	}
}

// TestReducedMachineErrors pins the refusal surface: unknown element
// types, int8 without (or with misshapen) scales, and reduced machines
// over non-tileable programs.
func TestReducedMachineErrors(t *testing.T) {
	prog, x := buildPrecisionProg(16, 3, 4, 5)
	if _, err := prog.NewMachine(Config{Elem: I8}); err == nil {
		t.Fatal("int8 machine without scales accepted")
	}
	if _, err := prog.NewMachine(Config{Elem: I8, Scales: [][]float64{{1}}}); err == nil {
		t.Fatal("int8 machine with short scale list accepted")
	}
	goodScales, _, err := CalibrateScales(prog, 16, []*mat.Matrix{x})
	if err != nil {
		t.Fatalf("CalibrateScales: %v", err)
	}
	bad := make([][]float64, len(goodScales))
	copy(bad, goodScales)
	for i, s := range bad {
		if len(s) > 0 {
			bad[i] = s[:len(s)-1] // right value count, wrong column count
			break
		}
	}
	if _, err := prog.NewMachine(Config{Elem: I8, Scales: bad}); err == nil {
		t.Fatal("int8 machine with wrong per-column scale width accepted")
	}
	if _, err := prog.NewMachine(Config{Elem: I8 + 1}); err == nil {
		t.Fatal("unknown element type accepted")
	}

	b := NewBuilder(8)
	in := b.Input(3)
	v := b.Func(in, 3, func(src *mat.Matrix) *mat.Matrix { return src })
	b.Keep(v)
	opaque := b.Build()
	if _, err := opaque.NewMachine(Config{Elem: F32}); !errors.Is(err, ErrPrecisionUnsupported) {
		t.Fatalf("opaque fp32 machine: %v, want ErrPrecisionUnsupported", err)
	}
}

// TestReducedRunAllocFree: steady-state reduced Run stays off the heap,
// like the fp64 engine — conversion buffers are planned, not allocated
// per call.
func TestReducedRunAllocFree(t *testing.T) {
	const n = 40
	prog, x := buildPrecisionProg(n, 4, 6, 7)
	scales, _, err := CalibrateScales(prog, n, []*mat.Matrix{x})
	if err != nil {
		t.Fatalf("CalibrateScales: %v", err)
	}
	labels := make([]int, n)
	in := []*mat.Matrix{x}
	for _, cfg := range []Config{
		{Workers: 1, Elem: F32},
		{TileRows: 9, Workers: 1, Elem: F32},
		{Workers: 1, Elem: I8, Scales: scales},
		{TileRows: 9, Workers: 1, Elem: I8, Scales: scales},
	} {
		m, err := prog.NewMachine(cfg)
		if err != nil {
			t.Fatalf("NewMachine(%+v): %v", cfg, err)
		}
		m.Run(n, in, labels) // warm-up
		allocs := testing.AllocsPerRun(10, func() {
			m.Run(n, in, labels)
		})
		if allocs > 0 {
			t.Fatalf("%s Run allocates %.1f objects/op (cfg %+v)", cfg.Elem, allocs, cfg)
		}
	}
}

// TestReducedAccountingShrinks: reduced machines report element-width-
// scaled tile, buffer, and spill bytes.
func TestReducedAccountingShrinks(t *testing.T) {
	const n = 64
	prog, x := buildPrecisionProg(n, 4, 6, 9)
	scales, _, err := CalibrateScales(prog, n, []*mat.Matrix{x})
	if err != nil {
		t.Fatalf("CalibrateScales: %v", err)
	}
	mk := func(cfg Config) *Machine {
		m, err := prog.NewMachine(cfg)
		if err != nil {
			t.Fatalf("NewMachine(%+v): %v", cfg, err)
		}
		return m
	}
	f64 := mk(Config{TileRows: 8, Workers: 1})
	f32 := mk(Config{TileRows: 8, Workers: 1, Elem: F32})
	i8 := mk(Config{TileRows: 8, Workers: 1, Elem: I8, Scales: scales})
	if f32.TileBytes()*2 != f64.TileBytes() || i8.TileBytes()*8 != f64.TileBytes() {
		t.Fatalf("tile bytes fp64=%d fp32=%d int8=%d, want 2x/8x ratios", f64.TileBytes(), f32.TileBytes(), i8.TileBytes())
	}
	if f32.SpillTraffic(n)*2 != f64.SpillTraffic(n) || i8.SpillTraffic(n)*8 != f64.SpillTraffic(n) {
		t.Fatalf("spill fp64=%d fp32=%d int8=%d, want 2x/8x ratios", f64.SpillTraffic(n), f32.SpillTraffic(n), i8.SpillTraffic(n))
	}
}

// FuzzPrecision fuzzes the reduced-precision engine across program
// shapes × tile heights × worker counts:
//
//   - fp32 output stays within a generous single-precision relative
//     bound of the fp64 reference;
//   - calibrated int8 reproduces the fp64 argmax on every row whose
//     fp64 margin exceeds twice the measured dequantized error;
//   - within each precision, tiled and tile-parallel execution is
//     bit-identical to that precision's direct execution.
func FuzzPrecision(f *testing.F) {
	f.Add(uint8(16), uint8(3), uint8(4), uint8(5), uint8(2), int64(1))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(1), uint8(1), int64(2))
	f.Add(uint8(64), uint8(8), uint8(2), uint8(63), uint8(7), int64(3))
	f.Fuzz(func(t *testing.T, nRaw, dRaw, hRaw, tileRaw, workersRaw uint8, seed int64) {
		n := int(nRaw)%64 + 1
		d := int(dRaw)%8 + 1
		h := int(hRaw)%8 + 1
		tile := int(tileRaw)%n + 1
		workers := int(workersRaw)%8 + 1

		prog, x := buildPrecisionProg(n, d, h, seed)
		scales, refLabels, err := CalibrateScales(prog, n, []*mat.Matrix{x})
		if err != nil {
			t.Fatal(err)
		}
		refM, err := prog.NewMachine(Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		ref := refM.Run(n, []*mat.Matrix{x}, nil).Clone()

		check := func(name string, base *mat.Matrix, baseLabels []int, cfg Config) {
			t.Helper()
			m, err := prog.NewMachine(cfg)
			if err != nil {
				t.Fatal(err)
			}
			labels := make([]int, n)
			if got := m.Run(n, []*mat.Matrix{x}, labels); !got.Equal(base) {
				t.Fatalf("n=%d d=%d h=%d tile=%d workers=%d: %s output differs from its direct form", n, d, h, tile, workers, name)
			}
			for i := range labels {
				if labels[i] != baseLabels[i] {
					t.Fatalf("%s label[%d] differs from direct", name, i)
				}
			}
		}

		// fp32: bounded drift from fp64, bit-identity within the tier.
		f32cfg := Config{Workers: 1, Elem: F32}
		f32M, err := prog.NewMachine(f32cfg)
		if err != nil {
			t.Fatal(err)
		}
		f32Labels := make([]int, n)
		f32Out := f32M.Run(n, []*mat.Matrix{x}, f32Labels).Clone()
		for i, v := range f32Out.Data {
			denom := math.Max(math.Abs(ref.Data[i]), 1)
			if math.Abs(v-ref.Data[i])/denom > 1e-3 {
				t.Fatalf("fp32 value[%d] = %g, fp64 %g: beyond single-precision drift", i, v, ref.Data[i])
			}
		}
		check("fp32 tiled", f32Out, f32Labels, Config{TileRows: tile, Workers: 1, Elem: F32})
		check("fp32 tile-parallel", f32Out, f32Labels, Config{TileRows: tile, Workers: workers, Elem: F32})

		// int8: margin-gated argmax agreement, bit-identity within the tier.
		i8cfg := Config{Workers: 1, Elem: I8, Scales: scales}
		i8M, err := prog.NewMachine(i8cfg)
		if err != nil {
			t.Fatal(err)
		}
		i8Labels := make([]int, n)
		i8Out := i8M.Run(n, []*mat.Matrix{x}, i8Labels).Clone()
		maxErr := 0.0
		for i := range i8Out.Data {
			if e := math.Abs(i8Out.Data[i] - ref.Data[i]); e > maxErr {
				maxErr = e
			}
		}
		w := ref.Cols
		for r := 0; r < n; r++ {
			row := ref.Data[r*w : (r+1)*w]
			top, second := math.Inf(-1), math.Inf(-1)
			for _, v := range row {
				if v > top {
					top, second = v, top
				} else if v > second {
					second = v
				}
			}
			if top-second > 2*maxErr && i8Labels[r] != refLabels[r] {
				t.Fatalf("int8 label[%d] flips despite fp64 margin %g > 2×err %g", r, top-second, maxErr)
			}
		}
		check("int8 tiled", i8Out, i8Labels, Config{TileRows: tile, Workers: 1, Elem: I8, Scales: scales})
		check("int8 tile-parallel", i8Out, i8Labels, Config{TileRows: tile, Workers: workers, Elem: I8, Scales: scales})
	})
}
