package privharness

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gnnvault/internal/attack"
	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
	"gnnvault/internal/serve"
)

// Surface names what the adversary reads off each answered query.
const (
	// SurfaceScores observes the defended per-class posterior rows — the
	// richest output a deployment can expose.
	SurfaceScores = "scores"
	// SurfaceLabels observes hard labels only (one-hot observations) —
	// the paper's label-only output rule.
	SurfaceLabels = "labels"
)

// Path names which serving endpoint carries the queries.
const (
	// PathFull routes through POST /predict: exact full-graph inference
	// with per-node selection.
	PathFull = "full"
	// PathSubgraph routes through POST /predict_nodes: sampled L-hop
	// subgraph serving, whose fanout noise is itself a (cheap) defense.
	PathSubgraph = "subgraph"
)

// LinkStealConfig shapes one link-stealing run against the served API.
type LinkStealConfig struct {
	Surface string // SurfaceScores or SurfaceLabels
	Path    string // PathFull or PathSubgraph
	// Classes is the vault's class count (the observation row width).
	Classes int
	// BatchSize is how many nodes each query asks for. On the subgraph
	// path it must not exceed the fleet's MaxSeeds. Default 8.
	BatchSize int
	// MaxQueries caps the number of requests; 0 means query until every
	// needed node is observed (or the limiter cuts the run off).
	MaxQueries int
}

// LinkStealResult reports the attack strength and what it cost.
type LinkStealResult struct {
	// AUC per distance metric over the observation surface.
	AUC map[attack.Metric]float64
	// BestAUC is the strongest metric's AUC — the attacker picks their
	// best tool, so this is the number a defense must push toward 0.5.
	BestAUC float64
	// Queries issued and nodes actually observed (the two diverge when
	// the rate limiter cuts the run off).
	Queries  int
	Observed int
	// Limited reports that the run was stopped by serve.ErrRateLimited
	// and attacked with partial observations.
	Limited bool
}

// StealLinks replays the link-stealing attack of He et al. through the
// serving surface: it queries the posterior (or label) of every node
// appearing in sample's pairs, builds the observation matrix from the
// answers, and scores all six distance metrics. Nodes the adversary never
// observes — budget exhausted, rate-limited — stay zero rows, degrading
// their pairs toward coin-flip. The query stream is fully determined by
// (sample, cfg), so fixed-seed runs replay byte-identically.
func StealLinks(c QueryClient, attacker, vault string, n int, sample attack.PairSample, cfg LinkStealConfig) (LinkStealResult, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.Classes <= 0 {
		return LinkStealResult{}, fmt.Errorf("privharness: LinkStealConfig.Classes must be positive")
	}
	need := pairNodes(sample)
	obs := mat.New(n, cfg.Classes)
	res := LinkStealResult{}
	for start := 0; start < len(need); start += cfg.BatchSize {
		if cfg.MaxQueries > 0 && res.Queries >= cfg.MaxQueries {
			break
		}
		end := start + cfg.BatchSize
		if end > len(need) {
			end = len(need)
		}
		batch := need[start:end]
		scores, labels, limited, err := answerBatch(c, attacker, vault, batch, cfg)
		res.Queries++
		if limited {
			res.Limited = true
			break
		}
		if err != nil {
			return res, err
		}
		for i, u := range batch {
			row := obs.Row(u)
			if scores != nil {
				copy(row, scores[i])
			} else {
				row[labels[i]] = 1 // one-hot: hard labels are all we saw
			}
		}
		res.Observed += len(batch)
	}
	res.AUC = make(map[attack.Metric]float64, len(attack.Metrics))
	observations := []*mat.Matrix{obs}
	for _, m := range attack.Metrics {
		auc := attack.AUC(m, observations, sample)
		res.AUC[m] = auc
		if auc > res.BestAUC {
			res.BestAUC = auc
		}
	}
	return res, nil
}

// pairNodes returns the distinct node IDs appearing in sample, sorted
// ascending — the deterministic query work-list.
func pairNodes(sample attack.PairSample) []int {
	seen := make(map[int]bool, 2*len(sample.Pairs))
	for _, p := range sample.Pairs {
		seen[p.U] = true
		seen[p.V] = true
	}
	nodes := make([]int, 0, len(seen))
	for u := range seen {
		nodes = append(nodes, u)
	}
	sort.Ints(nodes)
	return nodes
}

// ExtractConfig shapes one model-extraction run against the served API.
type ExtractConfig struct {
	Surface string // SurfaceScores or SurfaceLabels
	Path    string // PathFull or PathSubgraph
	// Classes is the vault's class count.
	Classes int
	// Budget is how many distinct nodes the adversary may query.
	Budget int
	// BatchSize is nodes per query; default 8.
	BatchSize int
	// Seed draws the query nodes (and the held-out evaluation set is
	// whatever the caller picked — see Eval).
	Seed int64
	// Eval is the held-out node set fidelity is measured on. The victim's
	// reference labels for it are fetched under Oracle's identity so
	// ground truth never spends the adversary's budget.
	Eval []int
	// Oracle is the evaluation client identity. Default "oracle".
	Oracle string
	// Train is the surrogate-training budget.
	Train attack.ExtractionConfig
}

// ExtractResult reports extraction success and what it cost.
type ExtractResult struct {
	// Fidelity is the surrogate/victim agreement on the held-out set.
	Fidelity float64
	Queries  int
	Observed int
	Limited  bool
}

// ExtractModel replays the model-extraction attack through the serving
// surface: Budget nodes are drawn deterministically from Seed, queried in
// batches, and the answers — posterior rows or hard labels, whatever the
// deployment exposes — train a surrogate on the public features x and
// (optionally) the public substitute graph. Fidelity is measured against
// the victim's own answers on cfg.Eval, fetched under the oracle
// identity.
func ExtractModel(c QueryClient, attacker, vault string, x *mat.Matrix, public *graph.Graph, cfg ExtractConfig) (ExtractResult, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.Oracle == "" {
		cfg.Oracle = "oracle"
	}
	if cfg.Classes <= 0 {
		return ExtractResult{}, fmt.Errorf("privharness: ExtractConfig.Classes must be positive")
	}
	n := x.Rows
	if cfg.Budget <= 0 || cfg.Budget > n {
		cfg.Budget = n
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	queryNodes := rng.Perm(n)[:cfg.Budget]
	sort.Ints(queryNodes)

	res := ExtractResult{}
	victimLabels := make([]int, n)
	logits := mat.New(n, cfg.Classes)
	var mask []int
	lcfg := LinkStealConfig{Surface: cfg.Surface, Path: cfg.Path, Classes: cfg.Classes}
	for start := 0; start < len(queryNodes); start += cfg.BatchSize {
		end := start + cfg.BatchSize
		if end > len(queryNodes) {
			end = len(queryNodes)
		}
		batch := queryNodes[start:end]
		scores, labels, limited, err := answerBatch(c, attacker, vault, batch, lcfg)
		res.Queries++
		if limited {
			res.Limited = true
			break
		}
		if err != nil {
			return res, err
		}
		for i, u := range batch {
			victimLabels[u] = labels[i]
			if scores != nil {
				// The surrogate distils Softmax(logits); log of the
				// (defended) posterior reproduces it, with zeroed top-k
				// entries clamped — the defense's dark knowledge loss.
				row := logits.Row(u)
				for k, p := range scores[i] {
					row[k] = math.Log(math.Max(p, 1e-9))
				}
			}
			mask = append(mask, u)
		}
		res.Observed += len(batch)
	}
	if len(mask) == 0 {
		return res, nil // nothing observed: no surrogate, fidelity 0
	}

	var surrogate *attack.Surrogate
	if cfg.Surface == SurfaceScores {
		surrogate = attack.ExtractFromLogits(x, public, logits, mask, cfg.Train)
	} else {
		surrogate = attack.ExtractFromLabels(x, public, victimLabels, cfg.Classes, mask, cfg.Train)
	}

	// Ground truth on the held-out set, under the oracle identity: the
	// victim's own labels, not spent from the adversary's budget.
	evalLabels, err := c.Predict(cfg.Oracle, vault, cfg.Eval)
	if err != nil {
		return res, fmt.Errorf("privharness: oracle evaluation query: %w", err)
	}
	victimEval := make([]int, n)
	for i, u := range cfg.Eval {
		victimEval[u] = evalLabels[i]
	}
	res.Fidelity = attack.Fidelity(surrogate.Predict(x), victimEval, cfg.Eval)
	return res, nil
}

// answerBatch issues one extraction query, returning the surface rows.
func answerBatch(c QueryClient, attacker, vault string, batch []int, cfg LinkStealConfig) (scores [][]float64, labels []int, limited bool, err error) {
	switch {
	case cfg.Surface == SurfaceScores && cfg.Path == PathSubgraph:
		scores, labels, err = c.PredictNodesScores(attacker, vault, batch)
	case cfg.Surface == SurfaceScores:
		scores, labels, err = c.PredictScores(attacker, vault, batch)
	case cfg.Path == PathSubgraph:
		labels, err = c.PredictNodes(attacker, vault, batch)
	default:
		labels, err = c.Predict(attacker, vault, batch)
	}
	if err != nil {
		if errors.Is(err, serve.ErrRateLimited) {
			return nil, nil, true, nil
		}
		return nil, nil, false, err
	}
	return scores, labels, false, nil
}
