// Package privharness drives the privacy attacks of internal/attack
// through the serving surface the deployment actually ships — the
// serve.API endpoints — instead of the in-process Vault API. Every
// observation a simulated adversary uses must arrive as the answer to a
// /predict or /predict_nodes query, so whatever the serving stack does to
// those answers (label-only output, score rounding, top-k truncation,
// rate limits, subgraph sampling, reduced-precision kernels) is priced
// into the measured attack strength.
//
// Two QueryClient backends make the surface explicit: InProc calls the
// serve.API methods directly, HTTPClient speaks JSON to the same API's
// HTTP handlers. Both execute identical server-side code, which the
// golden determinism test pins down.
package privharness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"gnnvault/internal/obs"
	"gnnvault/internal/serve"
)

// QueryClient is everything an adversary gets: the four serving
// endpoints, addressed by client identity and vault ID.
type QueryClient interface {
	// Backend names the transport ("inproc" or "http") for reporting.
	Backend() string
	Predict(client, vault string, nodes []int) ([]int, error)
	PredictScores(client, vault string, nodes []int) ([][]float64, []int, error)
	PredictNodes(client, vault string, nodes []int) ([]int, error)
	PredictNodesScores(client, vault string, nodes []int) ([][]float64, []int, error)
}

// InProc drives a serve.API in-process — the same methods the HTTP
// handlers call, minus the JSON round-trip.
type InProc struct {
	API *serve.API
}

// Backend reports "inproc".
func (c *InProc) Backend() string { return "inproc" }

// Predict queries /predict semantics directly on the API.
func (c *InProc) Predict(client, vault string, nodes []int) ([]int, error) {
	return c.API.Predict(client, vault, nodes)
}

// PredictScores queries the defended scores surface on the API.
func (c *InProc) PredictScores(client, vault string, nodes []int) ([][]float64, []int, error) {
	return c.API.PredictScores(client, vault, nodes)
}

// PredictNodes queries /predict_nodes semantics directly on the API.
func (c *InProc) PredictNodes(client, vault string, nodes []int) ([]int, error) {
	return c.API.PredictNodes(client, vault, nodes)
}

// PredictNodesScores queries the subgraph scores surface on the API.
func (c *InProc) PredictNodesScores(client, vault string, nodes []int) ([][]float64, []int, error) {
	return c.API.PredictNodesScores(client, vault, nodes)
}

// HTTPClient drives the serve.API HTTP front-end over a real connection.
// Client identity travels as the X-Client header, matching how the
// handlers attribute rate-limit charges.
type HTTPClient struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client; http.DefaultClient when nil.
	HTTP *http.Client
}

// Backend reports "http".
func (c *HTTPClient) Backend() string { return "http" }

// Predict POSTs a label query to /predict.
func (c *HTTPClient) Predict(client, vault string, nodes []int) ([]int, error) {
	resp, err := c.post("/predict", client, vault, nodes, false)
	if err != nil {
		return nil, err
	}
	return resp.Labels, nil
}

// PredictScores POSTs a scores query to /predict.
func (c *HTTPClient) PredictScores(client, vault string, nodes []int) ([][]float64, []int, error) {
	resp, err := c.post("/predict", client, vault, nodes, true)
	if err != nil {
		return nil, nil, err
	}
	return resp.Scores, resp.Labels, nil
}

// PredictNodes POSTs a label query to /predict_nodes.
func (c *HTTPClient) PredictNodes(client, vault string, nodes []int) ([]int, error) {
	resp, err := c.post("/predict_nodes", client, vault, nodes, false)
	if err != nil {
		return nil, err
	}
	return resp.Labels, nil
}

// PredictNodesScores POSTs a scores query to /predict_nodes.
func (c *HTTPClient) PredictNodesScores(client, vault string, nodes []int) ([][]float64, []int, error) {
	resp, err := c.post("/predict_nodes", client, vault, nodes, true)
	if err != nil {
		return nil, nil, err
	}
	return resp.Scores, resp.Labels, nil
}

// wireResponse mirrors the serve.API predict response body.
type wireResponse struct {
	Labels []int       `json:"labels"`
	Scores [][]float64 `json:"scores"`
	Error  string      `json:"error"`
}

func (c *HTTPClient) post(path, client, vault string, nodes []int, scores bool) (*wireResponse, error) {
	body, err := json.Marshal(map[string]any{"vault": vault, "nodes": nodes, "scores": scores})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client", client)
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	httpResp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close() //nolint:errcheck
	var resp wireResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("privharness: decoding %s response (status %d): %w", path, httpResp.StatusCode, err)
	}
	// Map the typed statuses back to the serve errors so attack drivers
	// react identically over both backends (errors.Is on the sentinel).
	switch httpResp.StatusCode {
	case http.StatusOK:
		return &resp, nil
	case http.StatusTooManyRequests:
		return nil, fmt.Errorf("%w: %s", serve.ErrRateLimited, resp.Error)
	case http.StatusForbidden:
		return nil, fmt.Errorf("%w: %s", serve.ErrScoresDisabled, resp.Error)
	default:
		return nil, fmt.Errorf("privharness: %s failed with status %d: %s", path, httpResp.StatusCode, resp.Error)
	}
}

// Trace is the canonical record of an attack's query stream: one encoded
// line and one latency per query, in issue order. Two attack runs with
// the same seed must produce byte-identical Log slices — across repeats
// and across backends — which the golden test enforces.
type Trace struct {
	Log       []string
	Latencies []time.Duration
}

// Traced decorates a QueryClient, appending every query to a Trace.
type Traced struct {
	Inner QueryClient
	Trace *Trace
}

// Backend reports the inner client's transport.
func (t *Traced) Backend() string { return t.Inner.Backend() }

func (t *Traced) record(kind, client, vault string, nodes []int, scores bool, start time.Time) {
	t.Trace.Log = append(t.Trace.Log,
		fmt.Sprintf("%s client=%s vault=%s scores=%v nodes=%v", kind, client, vault, scores, nodes))
	t.Trace.Latencies = append(t.Trace.Latencies, time.Since(start))
}

// Predict forwards to the inner client, recording the query.
func (t *Traced) Predict(client, vault string, nodes []int) ([]int, error) {
	start := time.Now()
	out, err := t.Inner.Predict(client, vault, nodes)
	t.record("predict", client, vault, nodes, false, start)
	return out, err
}

// PredictScores forwards to the inner client, recording the query.
func (t *Traced) PredictScores(client, vault string, nodes []int) ([][]float64, []int, error) {
	start := time.Now()
	scores, out, err := t.Inner.PredictScores(client, vault, nodes)
	t.record("predict", client, vault, nodes, true, start)
	return scores, out, err
}

// PredictNodes forwards to the inner client, recording the query.
func (t *Traced) PredictNodes(client, vault string, nodes []int) ([]int, error) {
	start := time.Now()
	out, err := t.Inner.PredictNodes(client, vault, nodes)
	t.record("predict_nodes", client, vault, nodes, false, start)
	return out, err
}

// PredictNodesScores forwards to the inner client, recording the query.
func (t *Traced) PredictNodesScores(client, vault string, nodes []int) ([][]float64, []int, error) {
	start := time.Now()
	scores, out, err := t.Inner.PredictNodesScores(client, vault, nodes)
	t.record("predict_nodes", client, vault, nodes, true, start)
	return scores, out, err
}

// PerfSummary prices an attack's query stream: how many requests it
// issued and what the serving stack's latency distribution looked like
// from the adversary's side of the API.
type PerfSummary struct {
	Queries   int
	ReqPerSec float64
	AvgMS     float64
	P99MS     float64
}

// Perf summarises the recorded latencies through the same obs.Histogram
// the serving stack reports from, so the adversary-side and server-side
// percentiles come from one implementation. Queries are issued
// sequentially, so throughput is queries over summed latency.
func (t *Trace) Perf() PerfSummary {
	p := PerfSummary{Queries: len(t.Latencies)}
	if p.Queries == 0 {
		return p
	}
	var h obs.Histogram
	for _, d := range t.Latencies {
		h.Observe(d.Nanoseconds())
	}
	s := h.Snapshot()
	if secs := float64(s.Sum) * 1e-9; secs > 0 {
		p.ReqPerSec = float64(p.Queries) / secs
	}
	p.AvgMS = float64(s.Avg()) / 1e6
	p.P99MS = float64(s.Quantile(0.99)) / 1e6
	return p
}
