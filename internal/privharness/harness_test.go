package privharness

import (
	"net/http/httptest"
	"sync"
	"testing"

	"gnnvault/internal/attack"
	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/mat"
	"gnnvault/internal/registry"
	"gnnvault/internal/serve"
	"gnnvault/internal/substitute"
)

var (
	fixOnce sync.Once
	fixDS   *datasets.Dataset
	fixV    *core.Vault
)

// fixture trains one small cora vault shared across the package's tests.
func fixture(t testing.TB) (*datasets.Dataset, *core.Vault) {
	t.Helper()
	fixOnce.Do(func() {
		fixDS = datasets.Load("cora")
		cfg := core.TrainConfig{Epochs: 20, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
		bb := core.TrainBackbone(fixDS, core.SpecForDataset("cora"), substitute.KindKNN, substitute.KNN(fixDS.X, 2), cfg)
		rec := core.TrainRectifier(fixDS, bb, core.Parallel, cfg)
		v, err := core.Deploy(bb, rec, fixDS.Graph, enclave.DefaultCostModel())
		if err != nil {
			panic(err)
		}
		fixV = v
	})
	return fixDS, fixV
}

// servedAPI stands up the full stack — registry, MultiServer, serve.API —
// over the fixture vault. Fanout 0 keeps subgraph extraction a pure
// function of the seed set, so replays are deterministic.
func servedAPI(t *testing.T, scfg serve.Config, limit *serve.RateLimit) (*datasets.Dataset, *serve.API) {
	t.Helper()
	ds, v := fixture(t)
	reg := registry.New(v.Enclave, registry.Config{
		WorkspacesPerVault: 2,
		NodeQuery:          &registry.NodeQueryConfig{Hops: 2, Fanout: 0, MaxSeeds: 8, Seed: 5},
	})
	if err := reg.Register("cora/parallel", v); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := reg.EnableNodeQueries("cora/parallel", ds.X); err != nil {
		t.Fatalf("EnableNodeQueries: %v", err)
	}
	srv := serve.NewMulti(reg, scfg)
	api := serve.NewAPI(srv, reg, serve.APIConfig{
		Vaults: []serve.APIVault{
			{ID: "cora/parallel", Dataset: "cora", Design: "parallel", Nodes: ds.Graph.N()},
		},
		Features:    func(string) *mat.Matrix { return ds.X },
		NodeQueries: true,
		Limit:       limit,
	})
	t.Cleanup(func() {
		srv.Close()
		reg.Close()
	})
	return ds, api
}

// TestGoldenDeterministicReplay is the golden determinism satellite:
// SamplePairs plus harness replay with a fixed seed must produce
// byte-identical query streams across two runs and across the in-process
// vs HTTP backends — and the attack must read the same labels and compute
// the same AUC either way.
func TestGoldenDeterministicReplay(t *testing.T) {
	ds, api := servedAPI(t, serve.Config{Workers: 1, ExposeScores: true, RoundDigits: 3}, nil)
	sample := attack.SamplePairs(ds.Graph, 30, 7)
	classes := ds.NumClasses
	run := func(c QueryClient, path string) (*Trace, LinkStealResult, []int) {
		tr := &Trace{}
		tc := &Traced{Inner: c, Trace: tr}
		res, err := StealLinks(tc, "attacker", "cora/parallel", ds.Graph.N(), sample, LinkStealConfig{
			Surface:   SurfaceScores,
			Path:      path,
			Classes:   classes,
			BatchSize: 4,
		})
		if err != nil {
			t.Fatalf("StealLinks(%s/%s): %v", c.Backend(), path, err)
		}
		labels, err := tc.Predict("attacker", "cora/parallel", []int{0, 1, 2, 3, 4})
		if err != nil {
			t.Fatalf("Predict(%s): %v", c.Backend(), err)
		}
		return tr, res, labels
	}

	inproc := &InProc{API: api}
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()
	httpc := &HTTPClient{Base: ts.URL, HTTP: ts.Client()}

	for _, path := range []string{PathFull, PathSubgraph} {
		tr1, res1, lab1 := run(inproc, path)
		tr2, res2, lab2 := run(inproc, path)
		trH, resH, labH := run(httpc, path)

		if len(tr1.Log) == 0 {
			t.Fatalf("%s: empty query stream", path)
		}
		for i := range tr1.Log {
			if tr1.Log[i] != tr2.Log[i] {
				t.Fatalf("%s: replay diverged at query %d:\n  %s\n  %s", path, i, tr1.Log[i], tr2.Log[i])
			}
			if tr1.Log[i] != trH.Log[i] {
				t.Fatalf("%s: http stream diverged at query %d:\n  %s\n  %s", path, i, tr1.Log[i], trH.Log[i])
			}
		}
		if len(tr1.Log) != len(tr2.Log) || len(tr1.Log) != len(trH.Log) {
			t.Fatalf("%s: stream lengths %d/%d/%d", path, len(tr1.Log), len(tr2.Log), len(trH.Log))
		}
		for _, m := range attack.Metrics {
			if res1.AUC[m] != res2.AUC[m] {
				t.Fatalf("%s/%s: AUC diverged across replays: %v vs %v", path, m, res1.AUC[m], res2.AUC[m])
			}
			// encoding/json round-trips float64 exactly, so the HTTP
			// backend must agree to the last bit.
			if res1.AUC[m] != resH.AUC[m] {
				t.Fatalf("%s/%s: AUC diverged across backends: %v vs %v", path, m, res1.AUC[m], resH.AUC[m])
			}
		}
		for i := range lab1 {
			if lab1[i] != lab2[i] || lab1[i] != labH[i] {
				t.Fatalf("%s: labels diverged at %d: %d/%d/%d", path, i, lab1[i], lab2[i], labH[i])
			}
		}
	}
}

// TestLabelSurfaceWeakensLinkSteal sanity-checks the defense ordering the
// bench relies on: one-hot label observations cannot leak more than exact
// posterior observations, and both flow entirely through the served API.
func TestLabelSurfaceWeakensLinkSteal(t *testing.T) {
	ds, api := servedAPI(t, serve.Config{Workers: 2, ExposeScores: true}, nil)
	sample := attack.SamplePairs(ds.Graph, 60, 11)
	c := &InProc{API: api}
	steal := func(surface string) LinkStealResult {
		res, err := StealLinks(c, "atk-"+surface, "cora/parallel", ds.Graph.N(), sample, LinkStealConfig{
			Surface: surface, Path: PathFull, Classes: ds.NumClasses, BatchSize: 16,
		})
		if err != nil {
			t.Fatalf("StealLinks(%s): %v", surface, err)
		}
		return res
	}
	scores := steal(SurfaceScores)
	labels := steal(SurfaceLabels)
	if scores.BestAUC <= 0.5 {
		t.Fatalf("undefended scores AUC %.3f; the attack should beat a coin flip", scores.BestAUC)
	}
	if labels.BestAUC > scores.BestAUC+0.05 {
		t.Fatalf("label-only AUC %.3f above scores AUC %.3f: defense ordering inverted",
			labels.BestAUC, scores.BestAUC)
	}
}

// TestRateLimitedStealIsPartial checks the budget path end to end: the
// limiter cuts the attacker off mid-run, the harness attacks with partial
// observations, and the oracle identity is unaffected.
func TestRateLimitedStealIsPartial(t *testing.T) {
	ds, api := servedAPI(t, serve.Config{Workers: 1, ExposeScores: true}, &serve.RateLimit{Budget: 40})
	sample := attack.SamplePairs(ds.Graph, 60, 11)
	c := &InProc{API: api}
	res, err := StealLinks(c, "budgeted", "cora/parallel", ds.Graph.N(), sample, LinkStealConfig{
		Surface: SurfaceScores, Path: PathFull, Classes: ds.NumClasses, BatchSize: 8,
	})
	if err != nil {
		t.Fatalf("StealLinks: %v", err)
	}
	if !res.Limited {
		t.Fatal("expected the rate limiter to cut the run off")
	}
	if res.Observed == 0 || res.Observed > 40 {
		t.Fatalf("observed %d nodes, want in (0,40]", res.Observed)
	}
	// The oracle identity has its own bucket: ground truth still flows.
	if _, err := c.Predict("oracle", "cora/parallel", []int{0, 1}); err != nil {
		t.Fatalf("oracle query: %v", err)
	}
}

// TestExtractModelThroughAPI runs a tiny extraction end to end on both
// surfaces and checks the fidelity ordering the bench relies on.
func TestExtractModelThroughAPI(t *testing.T) {
	ds, api := servedAPI(t, serve.Config{Workers: 2, ExposeScores: true}, nil)
	c := &InProc{API: api}
	eval := make([]int, 0, 80)
	for i := 0; i < 80; i++ {
		eval = append(eval, (i*7+3)%ds.Graph.N())
	}
	train := attack.ExtractionConfig{HiddenDims: []int{16}, Epochs: 30, LR: 0.02, Seed: 3}
	ext := func(surface string) ExtractResult {
		res, err := ExtractModel(c, "thief-"+surface, "cora/parallel", ds.X, nil, ExtractConfig{
			Surface: surface, Path: PathFull, Classes: ds.NumClasses,
			Budget: 200, BatchSize: 32, Seed: 9, Eval: eval, Train: train,
		})
		if err != nil {
			t.Fatalf("ExtractModel(%s): %v", surface, err)
		}
		return res
	}
	scores := ext(SurfaceScores)
	labels := ext(SurfaceLabels)
	if scores.Fidelity <= 0 || scores.Fidelity > 1 {
		t.Fatalf("scores fidelity %v outside (0,1]", scores.Fidelity)
	}
	if labels.Fidelity <= 0 || labels.Fidelity > 1 {
		t.Fatalf("labels fidelity %v outside (0,1]", labels.Fidelity)
	}
	if scores.Observed != 200 || scores.Queries == 0 {
		t.Fatalf("scores run observed %d nodes over %d queries", scores.Observed, scores.Queries)
	}
}
