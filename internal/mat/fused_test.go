package mat

import (
	"math"
	"math/rand"
	"testing"
)

func fill(rng *rand.Rand, m *Matrix) *Matrix {
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// TestMatMulBiasReLUIntoMatchesUnfused pins the fused kernel to the exact
// bits of the unfused op sequence (product, bias add, residual add, ReLU)
// across every epilogue combination and worker budget — the property the
// exec fusion pass stakes its correctness on.
func TestMatMulBiasReLUIntoMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, k, p = 37, 9, 5
	a := fill(rng, New(n, k))
	// Sprinkle zeros so the skip paths run.
	for i := 0; i < n*k/3; i++ {
		a.Data[rng.Intn(n*k)] = 0
	}
	b := fill(rng, New(k, p))
	bias := fill(rng, New(1, p)).Data
	res := fill(rng, New(n, p))

	for _, withBias := range []bool{false, true} {
		for _, withRes := range []bool{false, true} {
			for _, relu := range []bool{false, true} {
				for _, workers := range []int{1, 3} {
					want := New(n, p)
					MatMulWorkersInto(want, a, b, 1)
					bv := []float64(nil)
					if withBias {
						bv = bias
						AddBiasInto(want, want, bias)
					}
					var rv *Matrix
					if withRes {
						rv = res
						AddInto(want, want, res)
					}
					if relu {
						ReLUInto(want, want)
					}
					got := New(n, p)
					MatMulBiasReLUInto(got, a, b, bv, rv, relu, workers)
					for i := range want.Data {
						if got.Data[i] != want.Data[i] {
							t.Fatalf("bias=%v res=%v relu=%v workers=%d: elem %d = %v, want %v",
								withBias, withRes, relu, workers, i, got.Data[i], want.Data[i])
						}
					}
				}
			}
		}
	}
}

// TestAxpyFamilyBitIdentity checks that the grouped/initialising axpy
// kernels reproduce the one-at-a-time accumulation bit for bit.
func TestAxpyFamilyBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{1, 3, 7, 8, 16, 33} {
		xs := make([][]float64, 4)
		as := make([]float64, 4)
		for i := range xs {
			xs[i] = fill(rng, New(1, d)).Data
			as[i] = rng.NormFloat64()
		}
		ref := make([]float64, d)
		for i := range xs {
			for j := 0; j < d; j++ {
				ref[j] += as[i] * xs[i][j]
			}
		}
		got := make([]float64, d)
		Axpy2Set(as[0], xs[0], as[1], xs[1], got)
		Axpy2(as[2], xs[2], as[3], xs[3], got)
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("d=%d Axpy2 path: elem %d = %v, want %v", d, j, got[j], ref[j])
			}
		}
		got4 := make([]float64, d)
		Axpy4Set(as[0], xs[0], as[1], xs[1], as[2], xs[2], as[3], xs[3], got4)
		for j := range ref {
			if got4[j] != ref[j] {
				t.Fatalf("d=%d Axpy4Set: elem %d = %v, want %v", d, j, got4[j], ref[j])
			}
		}
		gotD := Dot(xs[0], xs[1])
		refD := 0.0
		for j := 0; j < d; j++ {
			refD += xs[0][j] * xs[1][j]
		}
		if gotD != refD {
			t.Fatalf("d=%d Dot = %v, want %v", d, gotD, refD)
		}
	}
}

// TestApplyEpilogueRowReLUSemantics pins the ReLU step to ReLUInto's
// exact semantics: NaN and negative zero both become +0.
func TestApplyEpilogueRowReLUSemantics(t *testing.T) {
	row := []float64{math.NaN(), math.Copysign(0, -1), -1, 2}
	ApplyEpilogueRow(row, nil, nil, true)
	want := []float64{0, 0, 0, 2}
	for i, v := range row {
		if math.Signbit(v) || v != want[i] {
			t.Fatalf("elem %d = %v, want +%v", i, v, want[i])
		}
	}
}

// TestMatMulTransWorkersVariants checks the per-call-budget training
// kernels agree with their global-default forms.
func TestMatMulTransWorkersVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := fill(rng, New(19, 6))
	b := fill(rng, New(19, 4))
	wantA := MatMulTransA(a, b)
	for _, w := range []int{1, 2, 4} {
		if got := MatMulTransAWorkers(a, b, w); !got.Equal(wantA) {
			t.Fatalf("MatMulTransAWorkers(%d) differs from MatMulTransA", w)
		}
	}
	c := fill(rng, New(5, 6))
	wantB := MatMulTransB(a, c)
	for _, w := range []int{1, 2, 4} {
		if got := MatMulTransBWorkers(a, c, w); !got.Equal(wantB) {
			t.Fatalf("MatMulTransBWorkers(%d) differs from MatMulTransB", w)
		}
	}
}
