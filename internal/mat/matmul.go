package mat

import (
	"fmt"
	"runtime"
)

// parallelThreshold is the number of multiply-accumulate operations below
// which MatMul stays single-threaded; spawning goroutines for tiny products
// costs more than the work itself.
const parallelThreshold = 1 << 16

// maxWorkers bounds the goroutine fan-out of parallel kernels. Tests may
// lower it; 0 means use GOMAXPROCS.
var maxWorkers = 0

// SetMaxWorkers overrides the *process-global default* worker count used by
// parallel kernels (here and in graph's sparse products). n <= 0 restores
// the default (GOMAXPROCS).
//
// Deprecated: the global is racy when concurrent servers want different
// budgets — it survives only as the default that a zero per-call budget
// resolves to. New code should carry an explicit worker budget instead:
// the Workers variants of the kernels (MatMulWorkersInto, graph's
// MulDenseWorkersInto), nn's LayerWorkspace.Workers, exec.Config.Workers,
// and core.PlanConfig.Workers all thread one through per plan.
func SetMaxWorkers(n int) { maxWorkers = n }

// WorkerCount returns the effective parallel worker count for a kernel
// spanning rows rows, honouring SetMaxWorkers. Exported so sibling packages
// (graph's sparse kernels) share the same knob.
func WorkerCount(rows int) int { return workerCount(rows) }

func workerCount(rows int) int {
	return resolveWorkers(0, rows)
}

// ResolveWorkers maps a per-call worker budget to an effective count for a
// kernel spanning rows rows (budget <= 0 means the process-global default;
// the result is clamped to [1, rows]). Exported so sibling packages' kernels
// (graph's sparse products) resolve budgets by the same rule.
func ResolveWorkers(budget, rows int) int { return resolveWorkers(budget, rows) }

// resolveWorkers maps a per-call worker budget to an effective count for a
// kernel spanning rows rows: budget <= 0 falls back to the process-global
// default (SetMaxWorkers, then GOMAXPROCS), 1 means inline on the calling
// goroutine, and any budget is clamped to rows.
func resolveWorkers(budget, rows int) int {
	w := budget
	if w <= 0 {
		w = maxWorkers
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > rows {
		w = rows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// MatMul returns a·b. It panics if the inner dimensions disagree.
//
// The kernel is cache-blocked over k and parallelised over row bands of a,
// which is the dominant pattern in GNN inference (tall-skinny activations
// times small weight matrices). This is the allocating wrapper over
// MatMulInto.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMul inner dimension mismatch %s · %s", a.Shape(), b.Shape()))
	}
	out := New(a.Rows, b.Cols)
	matMulInto(out, a, b, 0)
	return out
}

// MatMulSerial computes a·b on the calling goroutine only. The enclave
// simulator uses it to model single-threaded in-enclave execution.
func MatMulSerial(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMulSerial inner dimension mismatch %s · %s", a.Shape(), b.Shape()))
	}
	out := New(a.Rows, b.Cols)
	matMulInto(out, a, b, 1)
	return out
}

// matMulRange computes rows [lo,hi) of out = a·b using an ikj loop order
// so the inner loop streams through contiguous rows of b and out.
func matMulRange(a, b, out *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*p : (i+1)*p]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransA returns aᵀ·b without materialising the transpose of a.
// Shapes: a is n×m, b is n×p, result is m×p. This is the gradient kernel
// dW = Hᵀ·dY in dense and GCN layers. Allocating wrapper over
// MatMulTransAInto.
func MatMulTransA(a, b *Matrix) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulTransAInto(out, a, b)
	return out
}

// MatMulTransB returns a·bᵀ without materialising the transpose of b.
// Shapes: a is n×m, b is p×m, result is n×p. This is the gradient kernel
// dH = dY·Wᵀ in dense and GCN layers. Allocating wrapper over
// MatMulTransBInto.
func MatMulTransB(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTransBInto(out, a, b)
	return out
}
