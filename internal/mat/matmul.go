package mat

import (
	"fmt"
	"runtime"
)

// parallelThreshold is the number of multiply-accumulate operations below
// which MatMul stays single-threaded; spawning goroutines for tiny products
// costs more than the work itself.
const parallelThreshold = 1 << 16

// maxWorkers bounds the goroutine fan-out of parallel kernels. Tests may
// lower it; 0 means use GOMAXPROCS.
var maxWorkers = 0

// SetMaxWorkers overrides the *process-global default* worker count used by
// parallel kernels (here and in graph's sparse products). n <= 0 restores
// the default (GOMAXPROCS).
//
// Deprecated: the global is racy when concurrent servers want different
// budgets — it survives only as the default that a zero per-call budget
// resolves to. New code should carry an explicit worker budget instead:
// the Workers variants of the kernels (MatMulWorkersInto, graph's
// MulDenseWorkersInto), nn's LayerWorkspace.Workers, exec.Config.Workers,
// and core.PlanConfig.Workers all thread one through per plan.
func SetMaxWorkers(n int) { maxWorkers = n }

// WorkerCount returns the effective parallel worker count for a kernel
// spanning rows rows, honouring SetMaxWorkers. Exported so sibling packages
// (graph's sparse kernels) share the same knob.
func WorkerCount(rows int) int { return workerCount(rows) }

func workerCount(rows int) int {
	return resolveWorkers(0, rows)
}

// ResolveWorkers maps a per-call worker budget to an effective count for a
// kernel spanning rows rows (budget <= 0 means the process-global default;
// the result is clamped to [1, rows]). Exported so sibling packages' kernels
// (graph's sparse products) resolve budgets by the same rule.
func ResolveWorkers(budget, rows int) int { return resolveWorkers(budget, rows) }

// resolveWorkers maps a per-call worker budget to an effective count for a
// kernel spanning rows rows: budget <= 0 falls back to the process-global
// default (SetMaxWorkers, then GOMAXPROCS), 1 means inline on the calling
// goroutine, and any budget is clamped to rows.
func resolveWorkers(budget, rows int) int {
	w := budget
	if w <= 0 {
		w = maxWorkers
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > rows {
		w = rows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// MatMul returns a·b. It panics if the inner dimensions disagree.
//
// The kernel is cache-blocked over k and parallelised over row bands of a,
// which is the dominant pattern in GNN inference (tall-skinny activations
// times small weight matrices). This is the allocating wrapper over
// MatMulInto.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMul inner dimension mismatch %s · %s", a.Shape(), b.Shape()))
	}
	out := New(a.Rows, b.Cols)
	matMulInto(out, a, b, 0)
	return out
}

// MatMulSerial computes a·b on the calling goroutine only. The enclave
// simulator uses it to model single-threaded in-enclave execution.
func MatMulSerial(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMulSerial inner dimension mismatch %s · %s", a.Shape(), b.Shape()))
	}
	out := New(a.Rows, b.Cols)
	matMulInto(out, a, b, 1)
	return out
}

// The row kernels below compute out = a·b one output row (or dense pair
// of rows) at a time, streaming through contiguous rows of b and out.
// The destination needs no prior zeroing: each output row is initialised
// by its first axpy group (Set form) and all-zero input rows are cleared
// explicitly. Zero entries of a are skipped — post-ReLU activations are
// roughly half zeros, and each skip saves a whole row-axpy — and the
// surviving non-zeros are fed through the multi-stream axpy kernels four
// at a time, which quarters the traffic over the output row while
// keeping the per-element accumulation order (and bits) of the
// one-at-a-time loop. The banded driver over these kernels lives in
// matMulEpilogueRange (fused.go) — one copy, epilogue optional.

// denseRow reports whether the row contains no exact zeros.
func denseRow(r []float64) bool {
	for _, v := range r {
		if v == 0 {
			return false
		}
	}
	return true
}

// matMulRowPairDense computes two output rows over a pair of fully dense
// input rows: quads of k feed the shared weight rows through the
// two-destination four-stream kernel, the first quad initialising both
// rows (n >= 4 is the caller's guard).
func matMulRowPairDense(r1, r2 []float64, b *Matrix, o1, o2 []float64, n, p int) {
	axpy4PairSet(r1[0], r1[1], r1[2], r1[3], r2[0], r2[1], r2[2], r2[3],
		b.Data[0:p], b.Data[p:2*p], b.Data[2*p:3*p], b.Data[3*p:4*p], o1, o2)
	k := 4
	for ; k+4 <= n; k += 4 {
		axpy4Pair(r1[k], r1[k+1], r1[k+2], r1[k+3], r2[k], r2[k+1], r2[k+2], r2[k+3],
			b.Data[k*p:(k+1)*p], b.Data[(k+1)*p:(k+2)*p], b.Data[(k+2)*p:(k+3)*p], b.Data[(k+3)*p:(k+4)*p], o1, o2)
	}
	for ; k < n; k++ {
		brow := b.Data[k*p : (k+1)*p]
		Axpy(r1[k], brow, o1)
		Axpy(r2[k], brow, o2)
	}
}

// matMulRow computes one output row with the zero-skip path: quads of
// consecutive k that are fully non-zero take the four-stream kernel after
// one combined test; mixed quads fall back to per-element skip. The first
// write to the row uses a Set kernel; all-zero rows are cleared.
func matMulRow(arow []float64, b *Matrix, orow []float64, n, p int) {
	k, inited := 0, false
	for ; k+4 <= n; k += 4 {
		a1, a2, a3, a4 := arow[k], arow[k+1], arow[k+2], arow[k+3]
		if a1 != 0 && a2 != 0 && a3 != 0 && a4 != 0 {
			if inited {
				Axpy4(a1, b.Data[k*p:(k+1)*p], a2, b.Data[(k+1)*p:(k+2)*p],
					a3, b.Data[(k+2)*p:(k+3)*p], a4, b.Data[(k+3)*p:(k+4)*p], orow)
			} else {
				Axpy4Set(a1, b.Data[k*p:(k+1)*p], a2, b.Data[(k+1)*p:(k+2)*p],
					a3, b.Data[(k+2)*p:(k+3)*p], a4, b.Data[(k+3)*p:(k+4)*p], orow)
				inited = true
			}
			continue
		}
		for j := k; j < k+4; j++ {
			if av := arow[j]; av != 0 {
				if inited {
					Axpy(av, b.Data[j*p:(j+1)*p], orow)
				} else {
					AxpySet(av, b.Data[j*p:(j+1)*p], orow)
					inited = true
				}
			}
		}
	}
	for ; k < n; k++ {
		if av := arow[k]; av != 0 {
			if inited {
				Axpy(av, b.Data[k*p:(k+1)*p], orow)
			} else {
				AxpySet(av, b.Data[k*p:(k+1)*p], orow)
				inited = true
			}
		}
	}
	if !inited {
		clear(orow)
	}
}

// MatMulTransA returns aᵀ·b without materialising the transpose of a.
// Shapes: a is n×m, b is n×p, result is m×p. This is the gradient kernel
// dW = Hᵀ·dY in dense and GCN layers. Allocating wrapper over
// MatMulTransAInto (process-global worker default).
func MatMulTransA(a, b *Matrix) *Matrix {
	return MatMulTransAWorkers(a, b, 0)
}

// MatMulTransAWorkers is MatMulTransA under an explicit per-call worker
// budget (MatMulWorkersInto semantics) — the form the training backward
// passes use so a layer's Serial mode never consults the deprecated
// process-global worker count.
func MatMulTransAWorkers(a, b *Matrix, workers int) *Matrix {
	out := New(a.Cols, b.Cols)
	MatMulTransAWorkersInto(out, a, b, workers)
	return out
}

// MatMulTransB returns a·bᵀ without materialising the transpose of b.
// Shapes: a is n×m, b is p×m, result is n×p. This is the gradient kernel
// dH = dY·Wᵀ in dense and GCN layers. Allocating wrapper over
// MatMulTransBInto (process-global worker default).
func MatMulTransB(a, b *Matrix) *Matrix {
	return MatMulTransBWorkers(a, b, 0)
}

// MatMulTransBWorkers is MatMulTransB under an explicit per-call worker
// budget (MatMulWorkersInto semantics).
func MatMulTransBWorkers(a, b *Matrix, workers int) *Matrix {
	out := New(a.Rows, b.Rows)
	MatMulTransBWorkersInto(out, a, b, workers)
	return out
}
