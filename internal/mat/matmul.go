package mat

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the number of multiply-accumulate operations below
// which MatMul stays single-threaded; spawning goroutines for tiny products
// costs more than the work itself.
const parallelThreshold = 1 << 16

// maxWorkers bounds the goroutine fan-out of parallel kernels. Tests may
// lower it; 0 means use GOMAXPROCS.
var maxWorkers = 0

// SetMaxWorkers overrides the worker count used by parallel kernels.
// n <= 0 restores the default (GOMAXPROCS).
func SetMaxWorkers(n int) { maxWorkers = n }

func workerCount(rows int) int {
	w := maxWorkers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > rows {
		w = rows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// MatMul returns a·b. It panics if the inner dimensions disagree.
//
// The kernel is cache-blocked over k and parallelised over row bands of a,
// which is the dominant pattern in GNN inference (tall-skinny activations
// times small weight matrices).
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMul inner dimension mismatch %s · %s", a.Shape(), b.Shape()))
	}
	out := New(a.Rows, b.Cols)
	ops := a.Rows * a.Cols * b.Cols
	if ops < parallelThreshold {
		matMulRange(a, b, out, 0, a.Rows)
		return out
	}
	workers := workerCount(a.Rows)
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, a.Rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(a, b, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// MatMulSerial computes a·b on the calling goroutine only. The enclave
// simulator uses it to model single-threaded in-enclave execution.
func MatMulSerial(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMulSerial inner dimension mismatch %s · %s", a.Shape(), b.Shape()))
	}
	out := New(a.Rows, b.Cols)
	matMulRange(a, b, out, 0, a.Rows)
	return out
}

// matMulRange computes rows [lo,hi) of out = a·b using an ikj loop order
// so the inner loop streams through contiguous rows of b and out.
func matMulRange(a, b, out *Matrix, lo, hi int) {
	n, p := a.Cols, b.Cols
	for i := lo; i < hi; i++ {
		arow := a.Data[i*n : (i+1)*n]
		orow := out.Data[i*p : (i+1)*p]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*p : (k+1)*p]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransA returns aᵀ·b without materialising the transpose of a.
// Shapes: a is n×m, b is n×p, result is m×p. This is the gradient kernel
// dW = Hᵀ·dY in dense and GCN layers.
func MatMulTransA(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MatMulTransA outer dimension mismatch %s ᵀ· %s", a.Shape(), b.Shape()))
	}
	m, p := a.Cols, b.Cols
	out := New(m, p)
	ops := a.Rows * m * p
	if ops < parallelThreshold {
		for i := 0; i < a.Rows; i++ {
			arow := a.Row(i)
			brow := b.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				orow := out.Data[k*p : (k+1)*p]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
		return out
	}
	// Parallelise over output rows (columns of a) with per-worker column
	// ranges, avoiding any write contention.
	workers := workerCount(m)
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		kLo := w * chunk
		kHi := min(kLo+chunk, m)
		if kLo >= kHi {
			break
		}
		wg.Add(1)
		go func(kLo, kHi int) {
			defer wg.Done()
			for i := 0; i < a.Rows; i++ {
				arow := a.Row(i)
				brow := b.Row(i)
				for k := kLo; k < kHi; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					orow := out.Data[k*p : (k+1)*p]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}(kLo, kHi)
	}
	wg.Wait()
	return out
}

// MatMulTransB returns a·bᵀ without materialising the transpose of b.
// Shapes: a is n×m, b is p×m, result is n×p. This is the gradient kernel
// dH = dY·Wᵀ in dense and GCN layers.
func MatMulTransB(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MatMulTransB inner dimension mismatch %s · %s ᵀ", a.Shape(), b.Shape()))
	}
	n, p, m := a.Rows, b.Rows, a.Cols
	out := New(n, p)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*m : (i+1)*m]
			orow := out.Data[i*p : (i+1)*p]
			for j := 0; j < p; j++ {
				brow := b.Data[j*m : (j+1)*m]
				s := 0.0
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] = s
			}
		}
	}
	if n*m*p < parallelThreshold {
		body(0, n)
		return out
	}
	workers := workerCount(n)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}
