package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantizeI8EdgeCases(t *testing.T) {
	if SymmetricScale(0) != 0 || SymmetricScale(-1) != 0 {
		t.Fatal("non-positive maxabs must yield scale 0")
	}
	s := SymmetricScale(12.7)
	if math.Abs(s-0.1) > 1e-15 {
		t.Fatalf("SymmetricScale(12.7) = %g, want 0.1", s)
	}
	// Round half away from zero, clamp to ±127, zero scale → code 0.
	cases := []struct {
		v, scale float64
		want     int8
	}{
		{0.05, 0.1, 1}, {-0.05, 0.1, -1}, {0.04, 0.1, 0},
		{1e9, 0.1, 127}, {-1e9, 0.1, -127}, {5, 0, 0},
	}
	for _, c := range cases {
		if got := QuantizeI8(c.v, c.scale); got != c.want {
			t.Fatalf("QuantizeI8(%g, %g) = %d, want %d", c.v, c.scale, got, c.want)
		}
	}
}

// TestQuantizeRoundTripBound: quantize→dequantize stays within half a
// step of the original for every in-range value.
func TestQuantizeRoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	src := RandNormal(rng, 17, 9, 0, 3)
	scale := SymmetricScale(src.MaxAbs())
	q := NewI8(17, 9)
	QuantizeI8Into(q, src, scale)
	back := New(17, 9)
	DequantizeI8Into(back, q, scale)
	for i := range src.Data {
		if err := math.Abs(back.Data[i] - src.Data[i]); err > scale/2+1e-12 {
			t.Fatalf("round-trip error %g at %d exceeds half-step %g", err, i, scale/2)
		}
	}
}

// TestQuantizeColumnsI8: per-column scales reconstruct each column within
// half its own step, and a zero column gets scale 0 and codes 0.
func TestQuantizeColumnsI8(t *testing.T) {
	w := New(5, 3)
	for r := 0; r < 5; r++ {
		w.Data[r*3] = float64(r) - 2 // column 0: [-2, 2]
		w.Data[r*3+1] = 0            // column 1: identically zero
		w.Data[r*3+2] = 100 * float64(r+1)
	}
	q, scales := QuantizeColumnsI8(w)
	if len(scales) != 3 {
		t.Fatalf("%d scales, want 3", len(scales))
	}
	if scales[1] != 0 {
		t.Fatalf("zero column scale %g, want 0", scales[1])
	}
	for r := 0; r < 5; r++ {
		for c := 0; c < 3; c++ {
			got := float64(q.Data[r*3+c]) * scales[c]
			want := w.Data[r*3+c]
			if math.Abs(got-want) > scales[c]/2+1e-12 {
				t.Fatalf("column %d row %d reconstructs to %g, want %g", c, r, got, want)
			}
		}
	}
}

func TestArgmaxRows32AndI8(t *testing.T) {
	m32 := New32(2, 3)
	copy(m32.Data, []float32{1, 5, 5, -2, -1, -3})
	labels := make([]int, 2)
	m32.ArgmaxRowsInto(labels)
	if labels[0] != 1 || labels[1] != 1 {
		t.Fatalf("fp32 argmax %v, want [1 1] (first max wins)", labels)
	}
	m8 := NewI8(2, 3)
	copy(m8.Data, []int8{-1, 7, 7, -5, -5, -6})
	m8.ArgmaxRowsInto(labels)
	if labels[0] != 1 || labels[1] != 0 {
		t.Fatalf("int8 argmax %v, want [1 0]", labels)
	}
}
