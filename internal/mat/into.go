package mat

import (
	"fmt"
	"sync"
)

// In-place kernel variants. Every allocating kernel in this package is a
// thin wrapper over one of these Into forms, which write their result into
// a caller-owned destination and never touch the heap. They exist for the
// steady-state inference path: a deployed vault sizes all of its buffers
// once at plan time and then serves requests without producing garbage,
// which is also how a real enclave manages its pre-allocated EPC.
//
// Destinations must not alias any input unless a kernel documents
// otherwise; kernels panic on detectable aliasing.

// requireShape panics unless m is rows×cols.
func (m *Matrix) requireShape(rows, cols int, op string) {
	if m.Rows != rows || m.Cols != cols {
		panic(fmt.Sprintf("mat: %s destination %s, want %dx%d", op, m.Shape(), rows, cols))
	}
}

// RequireNoAlias panics when dst shares backing storage with src. It only
// detects full aliasing (same underlying array), which covers every use in
// this codebase. op is the full panic label (e.g. "mat: MatMulInto");
// exported so sibling packages' Into kernels share one aliasing rule.
func RequireNoAlias(dst, src *Matrix, op string) {
	if dst == src || (len(dst.Data) > 0 && len(src.Data) > 0 && &dst.Data[0] == &src.Data[0]) {
		panic(fmt.Sprintf("%s destination aliases an input", op))
	}
}

// Zero clears every element of m.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MatMulInto computes dst = a·b using the parallel blocked kernel. dst must
// be a.Rows×b.Cols and must not alias a or b.
func MatMulInto(dst, a, b *Matrix) {
	matMulInto(dst, a, b, 0)
}

// MatMulSerialInto is MatMulInto restricted to the calling goroutine, the
// form in-enclave (single-threaded) code must use.
func MatMulSerialInto(dst, a, b *Matrix) {
	matMulInto(dst, a, b, 1)
}

// MatMulWorkersInto is MatMulInto under an explicit per-call worker budget:
// workers <= 0 resolves to the process-global default (SetMaxWorkers, then
// GOMAXPROCS), 1 runs inline on the calling goroutine, larger budgets are
// clamped to the row count. This is the form plan-scoped executors use so
// concurrent servers with different budgets cannot stomp each other through
// the global.
func MatMulWorkersInto(dst, a, b *Matrix, workers int) {
	matMulInto(dst, a, b, workers)
}

// matMulInto is the plain product: exactly MatMulBiasReLUInto with no
// epilogue — one banded driver, not two copies to keep in sync.
func matMulInto(dst, a, b *Matrix, budget int) {
	MatMulBiasReLUInto(dst, a, b, nil, nil, false, budget)
}

// MatMulTransAInto computes dst = aᵀ·b without materialising the transpose.
// Shapes: a is n×m, b is n×p, dst must be m×p and must not alias a or b.
// Resolves the process-global default worker count; see
// MatMulTransAWorkersInto for the per-call-budget form.
func MatMulTransAInto(dst, a, b *Matrix) {
	MatMulTransAWorkersInto(dst, a, b, 0)
}

// MatMulTransAWorkersInto is MatMulTransAInto under an explicit per-call
// worker budget (MatMulWorkersInto semantics: <= 0 resolves to the process
// global, 1 runs inline) — the form plan- and train-scoped callers use so
// concurrent jobs with different budgets never race on the deprecated
// SetMaxWorkers global.
func MatMulTransAWorkersInto(dst, a, b *Matrix, budget int) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MatMulTransAInto outer dimension mismatch %s ᵀ· %s", a.Shape(), b.Shape()))
	}
	m, p := a.Cols, b.Cols
	dst.requireShape(m, p, "MatMulTransAInto")
	RequireNoAlias(dst, a, "mat: MatMulTransAInto")
	RequireNoAlias(dst, b, "mat: MatMulTransAInto")
	dst.Zero()
	ops := a.Rows * m * p
	workers := resolveWorkers(budget, m)
	if ops < parallelThreshold || workers == 1 {
		matMulTransARange(a, b, dst, 0, m)
		return
	}
	// Parallelise over output rows (columns of a) with per-worker column
	// ranges, avoiding any write contention.
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for w := 0; w < workers; w++ {
		kLo := w * chunk
		kHi := min(kLo+chunk, m)
		if kLo >= kHi {
			break
		}
		wg.Add(1)
		go func(kLo, kHi int) {
			defer wg.Done()
			matMulTransARange(a, b, dst, kLo, kHi)
		}(kLo, kHi)
	}
	wg.Wait()
}

// matMulTransARange accumulates columns [kLo,kHi) of a into out = aᵀ·b.
func matMulTransARange(a, b, out *Matrix, kLo, kHi int) {
	p := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		for k := kLo; k < kHi; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			Axpy(av, brow, out.Data[k*p:(k+1)*p])
		}
	}
}

// MatMulTransBInto computes dst = a·bᵀ without materialising the transpose.
// Shapes: a is n×m, b is p×m, dst must be n×p and must not alias a or b.
// Resolves the process-global default worker count; see
// MatMulTransBWorkersInto for the per-call-budget form.
func MatMulTransBInto(dst, a, b *Matrix) {
	MatMulTransBWorkersInto(dst, a, b, 0)
}

// MatMulTransBWorkersInto is MatMulTransBInto under an explicit per-call
// worker budget (MatMulWorkersInto semantics: <= 0 resolves to the process
// global, 1 runs inline).
func MatMulTransBWorkersInto(dst, a, b *Matrix, budget int) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MatMulTransBInto inner dimension mismatch %s · %s ᵀ", a.Shape(), b.Shape()))
	}
	n, p := a.Rows, b.Rows
	dst.requireShape(n, p, "MatMulTransBInto")
	RequireNoAlias(dst, a, "mat: MatMulTransBInto")
	RequireNoAlias(dst, b, "mat: MatMulTransBInto")
	ops := n * a.Cols * p
	workers := resolveWorkers(budget, n)
	if ops < parallelThreshold || workers == 1 {
		matMulTransBRange(a, b, dst, 0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulTransBRange(a, b, dst, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulTransBRange computes rows [lo,hi) of out = a·bᵀ. Each output cell
// is written exactly once, so no prior zeroing is needed.
func matMulTransBRange(a, b, out *Matrix, lo, hi int) {
	m, p := a.Cols, b.Rows
	for i := lo; i < hi; i++ {
		arow := a.Data[i*m : (i+1)*m]
		orow := out.Data[i*p : (i+1)*p]
		for j := 0; j < p; j++ {
			orow[j] = Dot(arow, b.Data[j*m:(j+1)*m])
		}
	}
}

// AddBiasInto writes x + bias (bias broadcast across rows) into dst. dst
// may alias x; len(bias) must equal x.Cols.
func AddBiasInto(dst, x *Matrix, bias []float64) {
	if len(bias) != x.Cols {
		panic(fmt.Sprintf("mat: AddBiasInto bias length %d != cols %d", len(bias), x.Cols))
	}
	dst.requireShape(x.Rows, x.Cols, "AddBiasInto")
	for i := 0; i < x.Rows; i++ {
		xrow := x.Data[i*x.Cols : (i+1)*x.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j, v := range xrow {
			drow[j] = v + bias[j]
		}
	}
}

// ReLUInto writes max(x, 0) element-wise into dst. dst may alias x.
func ReLUInto(dst, x *Matrix) {
	dst.requireShape(x.Rows, x.Cols, "ReLUInto")
	for i, v := range x.Data {
		if v > 0 {
			dst.Data[i] = v
		} else {
			dst.Data[i] = 0
		}
	}
}

// AddInto writes a + b element-wise into dst. dst may alias a or b.
func AddInto(dst, a, b *Matrix) {
	a.requireSameShape(b, "AddInto")
	dst.requireShape(a.Rows, a.Cols, "AddInto")
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
}

// HConcatInto writes [m0 | m1 | …] into dst, which must be pre-sized to the
// concatenated shape and must not alias any input.
func HConcatInto(dst *Matrix, ms ...*Matrix) {
	rows, cols := 0, 0
	if len(ms) > 0 {
		rows = ms[0].Rows
	}
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("mat: HConcatInto row mismatch: %d != %d", m.Rows, rows))
		}
		RequireNoAlias(dst, m, "mat: HConcatInto")
		cols += m.Cols
	}
	dst.requireShape(rows, cols, "HConcatInto")
	for i := 0; i < rows; i++ {
		out := dst.Data[i*cols : (i+1)*cols]
		off := 0
		for _, m := range ms {
			copy(out[off:off+m.Cols], m.Data[i*m.Cols:(i+1)*m.Cols])
			off += m.Cols
		}
	}
}

// ArgmaxRowsInto writes, for each row, the column index of its maximum
// value into dst, which must have length m.Rows.
func (m *Matrix) ArgmaxRowsInto(dst []int) {
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: ArgmaxRowsInto destination length %d != rows %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		if m.Cols == 0 {
			dst[i] = 0
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		bestJ := 0
		best := row[0]
		for j, v := range row {
			if v > best {
				best, bestJ = v, j
			}
		}
		dst[i] = bestJ
	}
}

// CopyInto copies src into dst; shapes must match.
func CopyInto(dst, src *Matrix) {
	dst.requireShape(src.Rows, src.Cols, "CopyInto")
	copy(dst.Data, src.Data)
}
