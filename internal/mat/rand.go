package mat

import (
	"math"
	"math/rand"
)

// RandUniform returns a rows×cols matrix with entries drawn i.i.d. from
// U[lo, hi) using rng.
func RandUniform(rng *rand.Rand, rows, cols int, lo, hi float64) *Matrix {
	m := New(rows, cols)
	span := hi - lo
	for i := range m.Data {
		m.Data[i] = lo + span*rng.Float64()
	}
	return m
}

// RandNormal returns a rows×cols matrix with entries drawn i.i.d. from
// N(mean, std²) using rng.
func RandNormal(rng *rand.Rand, rows, cols int, mean, std float64) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = mean + std*rng.NormFloat64()
	}
	return m
}

// Glorot returns a fanIn×fanOut weight matrix initialised with the
// Glorot/Xavier uniform scheme, U[-a, a] with a = sqrt(6/(fanIn+fanOut)).
// This is the initialisation used by the reference GCN implementation.
func Glorot(rng *rand.Rand, fanIn, fanOut int) *Matrix {
	a := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(rng, fanIn, fanOut, -a, a)
}
