package mat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMatMul is the reference implementation the optimised kernels are
// checked against.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := MatMul(a, b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want) {
		t.Fatalf("MatMul = %v, want %v", got.Data, want.Data)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandNormal(rng, 17, 17, 0, 1)
	if !MatMul(a, Identity(17)).EqualApprox(a, 1e-12) {
		t.Fatal("A·I != A")
	}
	if !MatMul(Identity(17), a).EqualApprox(a, 1e-12) {
		t.Fatal("I·A != A")
	}
}

func TestMatMulMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with bad shapes did not panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulMatchesNaiveLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Large enough to take the parallel path.
	a := RandNormal(rng, 130, 70, 0, 1)
	b := RandNormal(rng, 70, 90, 0, 1)
	if !MatMul(a, b).EqualApprox(naiveMatMul(a, b), 1e-9) {
		t.Fatal("parallel MatMul disagrees with naive")
	}
}

func TestMatMulSerialMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandNormal(rng, 64, 48, 0, 1)
	b := RandNormal(rng, 48, 32, 0, 1)
	if !MatMulSerial(a, b).EqualApprox(MatMul(a, b), 1e-12) {
		t.Fatal("serial and parallel MatMul disagree")
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := RandNormal(rng, 40, 30, 0, 1)
	b := RandNormal(rng, 40, 20, 0, 1)
	want := naiveMatMul(a.T(), b)
	if !MatMulTransA(a, b).EqualApprox(want, 1e-9) {
		t.Fatal("MatMulTransA disagrees with explicit transpose")
	}
}

func TestMatMulTransALargeParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := RandNormal(rng, 200, 60, 0, 1)
	b := RandNormal(rng, 200, 50, 0, 1)
	want := naiveMatMul(a.T(), b)
	if !MatMulTransA(a, b).EqualApprox(want, 1e-9) {
		t.Fatal("parallel MatMulTransA disagrees")
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := RandNormal(rng, 40, 30, 0, 1)
	b := RandNormal(rng, 25, 30, 0, 1)
	want := naiveMatMul(a, b.T())
	if !MatMulTransB(a, b).EqualApprox(want, 1e-9) {
		t.Fatal("MatMulTransB disagrees with explicit transpose")
	}
}

func TestMatMulTransBLargeParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := RandNormal(rng, 180, 64, 0, 1)
	b := RandNormal(rng, 90, 64, 0, 1)
	want := naiveMatMul(a, b.T())
	if !MatMulTransB(a, b).EqualApprox(want, 1e-9) {
		t.Fatal("parallel MatMulTransB disagrees")
	}
}

func TestMatMulTransMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"TransA": func() { MatMulTransA(New(3, 2), New(4, 2)) },
		"TransB": func() { MatMulTransB(New(3, 2), New(4, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with bad shapes did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSetMaxWorkers(t *testing.T) {
	SetMaxWorkers(1)
	defer SetMaxWorkers(0)
	rng := rand.New(rand.NewSource(9))
	a := RandNormal(rng, 100, 100, 0, 1)
	b := RandNormal(rng, 100, 100, 0, 1)
	if !MatMul(a, b).EqualApprox(naiveMatMul(a, b), 1e-9) {
		t.Fatal("single-worker MatMul disagrees with naive")
	}
}

// randMatrixPair produces shape-compatible random matrices from quick's
// random source.
func randMatrixPair(r *rand.Rand) (a, b *Matrix) {
	n := 1 + r.Intn(12)
	m := 1 + r.Intn(12)
	p := 1 + r.Intn(12)
	return RandNormal(r, n, m, 0, 1), RandNormal(r, m, p, 0, 1)
}

func TestPropMatMulMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randMatrixPair(r)
		return MatMul(a, b).EqualApprox(naiveMatMul(a, b), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := RandNormal(r, 1+r.Intn(20), 1+r.Intn(20), 0, 1)
		return m.T().T().Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropMatMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randMatrixPair(r)
		c := RandNormal(r, b.Rows, b.Cols, 0, 1)
		left := MatMul(a, b.Add(c))
		right := MatMul(a, b).Add(MatMul(a, c))
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropTransposeOfProduct(t *testing.T) {
	// (AB)ᵀ = BᵀAᵀ
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randMatrixPair(r)
		return MatMul(a, b).T().EqualApprox(MatMul(b.T(), a.T()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGlorotBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	w := Glorot(rng, 64, 32)
	if w.Rows != 64 || w.Cols != 32 {
		t.Fatalf("Glorot shape = %s", w.Shape())
	}
	bound := 0.2501 // sqrt(6/96) = 0.25
	if w.MaxAbs() > bound {
		t.Fatalf("Glorot value out of bound: %v > %v", w.MaxAbs(), bound)
	}
}

func TestRandUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := RandUniform(rng, 10, 10, -2, 3)
	for _, v := range m.Data {
		if v < -2 || v >= 3 {
			t.Fatalf("uniform value %v outside [-2, 3)", v)
		}
	}
}

func TestRandNormalMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m := RandNormal(rng, 100, 100, 1.0, 2.0)
	mean := m.Sum() / float64(len(m.Data))
	if mean < 0.9 || mean > 1.1 {
		t.Fatalf("sample mean = %v, want ≈ 1.0", mean)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	x := RandNormal(rng, 256, 256, 0, 1)
	y := RandNormal(rng, 256, 256, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulSerial256(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	x := RandNormal(rng, 256, 256, 0, 1)
	y := RandNormal(rng, 256, 256, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulSerial(x, y)
	}
}

func TestPropMatMulAssociativity(t *testing.T) {
	// (AB)C = A(BC) within fp tolerance.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m, p, q := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := RandNormal(r, n, m, 0, 1)
		b := RandNormal(r, m, p, 0, 1)
		c := RandNormal(r, p, q, 0, 1)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		return left.EqualApprox(right, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropScaleCommutesWithMatMul(t *testing.T) {
	// (sA)B = s(AB)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := r.NormFloat64()
		a, b := randMatrixPair(r)
		return MatMul(a.Scale(s), b).EqualApprox(MatMul(a, b).Scale(s), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropHConcatSliceColsInverse(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		c1, c2 := 1+r.Intn(6), 1+r.Intn(6)
		a := RandNormal(r, n, c1, 0, 1)
		b := RandNormal(r, n, c2, 0, 1)
		cat := HConcat(a, b)
		return cat.SliceCols(0, c1).Equal(a) && cat.SliceCols(c1, c1+c2).Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
