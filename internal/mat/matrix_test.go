package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewZeroInitialised(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 {
		t.Fatalf("shape = %s, want 3x4", m.Shape())
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestFromSlice(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(0, 2) != 3 || m.At(1, 0) != 4 {
		t.Fatalf("layout wrong: %v", m.Data)
	}
}

func TestFromSliceSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 || m.At(2, 1) != 6 {
		t.Fatalf("FromRows wrong: %+v", m)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Fatalf("empty FromRows = %s", m.Shape())
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %v", i, j, id.At(i, j))
			}
		}
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 7.5)
	if m.At(1, 0) != 7.5 {
		t.Fatalf("At after Set = %v", m.At(1, 0))
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	m.At(2, 0)
}

func TestRowIsView(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 99 {
		t.Fatal("Row did not return a view")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 42
	if m.Data[0] == 42 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestTranspose(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("T shape = %s", tr.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeLargeBlocked(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := RandNormal(rng, 70, 45, 0, 1)
	tr := m.T()
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("blocked T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestAddSubHadamardScale(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{5, 6, 7, 8})
	if got := a.Add(b); !got.Equal(FromSlice(2, 2, []float64{6, 8, 10, 12})) {
		t.Errorf("Add = %v", got.Data)
	}
	if got := b.Sub(a); !got.Equal(FromSlice(2, 2, []float64{4, 4, 4, 4})) {
		t.Errorf("Sub = %v", got.Data)
	}
	if got := a.Hadamard(b); !got.Equal(FromSlice(2, 2, []float64{5, 12, 21, 32})) {
		t.Errorf("Hadamard = %v", got.Data)
	}
	if got := a.Scale(2); !got.Equal(FromSlice(2, 2, []float64{2, 4, 6, 8})) {
		t.Errorf("Scale = %v", got.Data)
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched shapes did not panic")
		}
	}()
	New(2, 2).Add(New(2, 3))
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	a.AddInPlace(FromSlice(1, 3, []float64{1, 1, 1}))
	if !a.Equal(FromSlice(1, 3, []float64{2, 3, 4})) {
		t.Errorf("AddInPlace = %v", a.Data)
	}
	a.ScaleInPlace(0.5)
	if !a.Equal(FromSlice(1, 3, []float64{1, 1.5, 2})) {
		t.Errorf("ScaleInPlace = %v", a.Data)
	}
}

func TestApply(t *testing.T) {
	a := FromSlice(1, 3, []float64{-1, 0, 2})
	got := a.Apply(math.Abs)
	if !got.Equal(FromSlice(1, 3, []float64{1, 0, 2})) {
		t.Errorf("Apply(abs) = %v", got.Data)
	}
}

func TestAddRowVector(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := a.AddRowVector([]float64{10, 20, 30})
	want := FromSlice(2, 3, []float64{11, 22, 33, 14, 25, 36})
	if !got.Equal(want) {
		t.Errorf("AddRowVector = %v", got.Data)
	}
}

func TestColSumsSum(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	cs := a.ColSums()
	if cs[0] != 5 || cs[1] != 7 || cs[2] != 9 {
		t.Errorf("ColSums = %v", cs)
	}
	if a.Sum() != 21 {
		t.Errorf("Sum = %v", a.Sum())
	}
}

func TestMaxAbsNorm(t *testing.T) {
	a := FromSlice(1, 3, []float64{3, -4, 0})
	if a.MaxAbs() != 4 {
		t.Errorf("MaxAbs = %v", a.MaxAbs())
	}
	if math.Abs(a.Norm()-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", a.Norm())
	}
}

func TestArgmaxRows(t *testing.T) {
	a := FromSlice(3, 3, []float64{1, 5, 2, 9, 0, 1, 2, 2, 3})
	got := a.ArgmaxRows()
	want := []int{1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgmaxRows = %v, want %v", got, want)
		}
	}
}

func TestSliceSelectRows(t *testing.T) {
	a := FromSlice(3, 2, []float64{1, 2, 3, 4, 5, 6})
	s := a.SliceRows(1, 3)
	if !s.Equal(FromSlice(2, 2, []float64{3, 4, 5, 6})) {
		t.Errorf("SliceRows = %v", s.Data)
	}
	sel := a.SelectRows([]int{2, 0})
	if !sel.Equal(FromSlice(2, 2, []float64{5, 6, 1, 2})) {
		t.Errorf("SelectRows = %v", sel.Data)
	}
}

func TestHConcat(t *testing.T) {
	a := FromSlice(2, 1, []float64{1, 2})
	b := FromSlice(2, 2, []float64{3, 4, 5, 6})
	got := HConcat(a, b)
	want := FromSlice(2, 3, []float64{1, 3, 4, 2, 5, 6})
	if !got.Equal(want) {
		t.Errorf("HConcat = %v", got.Data)
	}
}

func TestHConcatMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HConcat with row mismatch did not panic")
		}
	}()
	HConcat(New(2, 1), New(3, 1))
}

func TestEqualApprox(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := FromSlice(1, 2, []float64{1.0001, 2})
	if a.EqualApprox(b, 1e-6) {
		t.Error("EqualApprox too lax")
	}
	if !a.EqualApprox(b, 1e-3) {
		t.Error("EqualApprox too strict")
	}
}

func TestNumBytes(t *testing.T) {
	if got := New(4, 8).NumBytes(); got != 256 {
		t.Errorf("NumBytes = %d, want 256", got)
	}
}

func TestSliceCols(t *testing.T) {
	a := FromSlice(2, 4, []float64{1, 2, 3, 4, 5, 6, 7, 8})
	got := a.SliceCols(1, 3)
	want := FromSlice(2, 2, []float64{2, 3, 6, 7})
	if !got.Equal(want) {
		t.Errorf("SliceCols = %v", got.Data)
	}
}

func TestSliceColsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range SliceCols did not panic")
		}
	}()
	New(2, 3).SliceCols(1, 4)
}
