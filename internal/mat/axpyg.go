package mat

// Generic forms of the multi-stream axpy kernels in axpy.go, shared by the
// reduced-precision (float32) kernel family. The float64 kernels keep their
// dedicated definitions — their bits are pinned by the tiled/fused
// execution-equivalence tests and must not depend on how the compiler
// instantiates a generic — while the float32 family instantiates these with
// F = float32 and inherits the same unroll shape, bounds hints and
// per-element accumulation order, so tiled-vs-direct bit-identity holds
// within the reduced precision by the same argument as at fp64.

// Float constrains the generic axpy kernels to the element types the
// kernel families support.
type Float interface {
	~float32 | ~float64
}

// AxpyG accumulates y[j] += alpha·x[j] for j < len(x) — the generic form
// of Axpy, 8-wide unrolled with the same per-element order.
func AxpyG[F Float](alpha F, x, y []F) {
	y = y[:len(x)]
	i := 0
	for ; i+8 <= len(x); i += 8 {
		xs := x[i : i+8 : i+8]
		ys := y[i : i+8 : i+8]
		ys[0] += alpha * xs[0]
		ys[1] += alpha * xs[1]
		ys[2] += alpha * xs[2]
		ys[3] += alpha * xs[3]
		ys[4] += alpha * xs[4]
		ys[5] += alpha * xs[5]
		ys[6] += alpha * xs[6]
		ys[7] += alpha * xs[7]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// AxpySetG writes y[j] = alpha·x[j] — the generic initialising form of
// AxpySet.
func AxpySetG[F Float](alpha F, x, y []F) {
	y = y[:len(x)]
	i := 0
	for ; i+8 <= len(x); i += 8 {
		xs := x[i : i+8 : i+8]
		ys := y[i : i+8 : i+8]
		ys[0] = alpha * xs[0]
		ys[1] = alpha * xs[1]
		ys[2] = alpha * xs[2]
		ys[3] = alpha * xs[3]
		ys[4] = alpha * xs[4]
		ys[5] = alpha * xs[5]
		ys[6] = alpha * xs[6]
		ys[7] = alpha * xs[7]
	}
	for ; i < len(x); i++ {
		y[i] = alpha * x[i]
	}
}

// Axpy2G accumulates y[j] += a1·x1[j] + a2·x2[j] in one pass with two
// load streams — the generic form of Axpy2, left-associated per element.
func Axpy2G[F Float](a1 F, x1 []F, a2 F, x2 []F, y []F) {
	n := len(y)
	x1 = x1[:n]
	x2 = x2[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s1 := x1[i : i+4 : i+4]
		s2 := x2[i : i+4 : i+4]
		ys := y[i : i+4 : i+4]
		ys[0] = ys[0] + a1*s1[0] + a2*s2[0]
		ys[1] = ys[1] + a1*s1[1] + a2*s2[1]
		ys[2] = ys[2] + a1*s1[2] + a2*s2[2]
		ys[3] = ys[3] + a1*s1[3] + a2*s2[3]
	}
	for ; i < n; i++ {
		y[i] = y[i] + a1*x1[i] + a2*x2[i]
	}
}

// Axpy2SetG writes y[j] = a1·x1[j] + a2·x2[j], the generic initialising
// form of Axpy2Set.
func Axpy2SetG[F Float](a1 F, x1 []F, a2 F, x2 []F, y []F) {
	n := len(y)
	x1 = x1[:n]
	x2 = x2[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s1 := x1[i : i+4 : i+4]
		s2 := x2[i : i+4 : i+4]
		ys := y[i : i+4 : i+4]
		ys[0] = a1*s1[0] + a2*s2[0]
		ys[1] = a1*s1[1] + a2*s2[1]
		ys[2] = a1*s1[2] + a2*s2[2]
		ys[3] = a1*s1[3] + a2*s2[3]
	}
	for ; i < n; i++ {
		y[i] = a1*x1[i] + a2*x2[i]
	}
}

// Axpy4G accumulates four scaled rows into y in one pass — the generic
// form of Axpy4, left-associated per element.
func Axpy4G[F Float](a1 F, x1 []F, a2 F, x2 []F, a3 F, x3 []F, a4 F, x4 []F, y []F) {
	n := len(y)
	x1 = x1[:n]
	x2 = x2[:n]
	x3 = x3[:n]
	x4 = x4[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s1 := x1[i : i+4 : i+4]
		s2 := x2[i : i+4 : i+4]
		s3 := x3[i : i+4 : i+4]
		s4 := x4[i : i+4 : i+4]
		ys := y[i : i+4 : i+4]
		ys[0] = ys[0] + a1*s1[0] + a2*s2[0] + a3*s3[0] + a4*s4[0]
		ys[1] = ys[1] + a1*s1[1] + a2*s2[1] + a3*s3[1] + a4*s4[1]
		ys[2] = ys[2] + a1*s1[2] + a2*s2[2] + a3*s3[2] + a4*s4[2]
		ys[3] = ys[3] + a1*s1[3] + a2*s2[3] + a3*s3[3] + a4*s4[3]
	}
	for ; i < n; i++ {
		y[i] = y[i] + a1*x1[i] + a2*x2[i] + a3*x3[i] + a4*x4[i]
	}
}

// Axpy4SetG writes four scaled rows into y in one initialising pass, the
// generic form of Axpy4Set.
func Axpy4SetG[F Float](a1 F, x1 []F, a2 F, x2 []F, a3 F, x3 []F, a4 F, x4 []F, y []F) {
	n := len(y)
	x1 = x1[:n]
	x2 = x2[:n]
	x3 = x3[:n]
	x4 = x4[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s1 := x1[i : i+4 : i+4]
		s2 := x2[i : i+4 : i+4]
		s3 := x3[i : i+4 : i+4]
		s4 := x4[i : i+4 : i+4]
		ys := y[i : i+4 : i+4]
		ys[0] = a1*s1[0] + a2*s2[0] + a3*s3[0] + a4*s4[0]
		ys[1] = a1*s1[1] + a2*s2[1] + a3*s3[1] + a4*s4[1]
		ys[2] = a1*s1[2] + a2*s2[2] + a3*s3[2] + a4*s4[2]
		ys[3] = a1*s1[3] + a2*s2[3] + a3*s3[3] + a4*s4[3]
	}
	for ; i < n; i++ {
		y[i] = a1*x1[i] + a2*x2[i] + a3*x3[i] + a4*x4[i]
	}
}

// AxpyI8 accumulates y[j] += alpha·x[j] over an int8 row into an int32
// accumulator — the quantized kernel family's inner loop. Integer
// accumulation is exact and order-independent, which is what makes the
// int8 tiled/direct outputs bit-identical without any ordering argument.
func AxpyI8(alpha int32, x []int8, y []int32) {
	y = y[:len(x)]
	i := 0
	for ; i+8 <= len(x); i += 8 {
		xs := x[i : i+8 : i+8]
		ys := y[i : i+8 : i+8]
		ys[0] += alpha * int32(xs[0])
		ys[1] += alpha * int32(xs[1])
		ys[2] += alpha * int32(xs[2])
		ys[3] += alpha * int32(xs[3])
		ys[4] += alpha * int32(xs[4])
		ys[5] += alpha * int32(xs[5])
		ys[6] += alpha * int32(xs[6])
		ys[7] += alpha * int32(xs[7])
	}
	for ; i < len(x); i++ {
		y[i] += alpha * int32(x[i])
	}
}

// AxpyI8Set writes y[j] = alpha·x[j], the initialising form of AxpyI8.
func AxpyI8Set(alpha int32, x []int8, y []int32) {
	y = y[:len(x)]
	i := 0
	for ; i+8 <= len(x); i += 8 {
		xs := x[i : i+8 : i+8]
		ys := y[i : i+8 : i+8]
		ys[0] = alpha * int32(xs[0])
		ys[1] = alpha * int32(xs[1])
		ys[2] = alpha * int32(xs[2])
		ys[3] = alpha * int32(xs[3])
		ys[4] = alpha * int32(xs[4])
		ys[5] = alpha * int32(xs[5])
		ys[6] = alpha * int32(xs[6])
		ys[7] = alpha * int32(xs[7])
	}
	for ; i < len(x); i++ {
		y[i] = alpha * int32(x[i])
	}
}
