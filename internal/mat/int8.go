package mat

import (
	"fmt"
	"math"
)

// int8 quantized kernel family. Values are symmetric int8 codes
// (value ≈ code·scale): activations carry one scale per column of each
// program value (per-channel — a per-tensor scale wastes most of the 8
// bits on whichever channel ranges widest), weights one scale per output
// column (QuantizeColumnsI8). A matrix product's reduction runs over the
// source's columns, whose scales vary inside the sum, so the executor
// folds the source's per-column scales into the weight before column
// quantization and the MAC loop stays a pure int8×int8→int32 kernel.
// Products accumulate exactly in int32 — a dot of length-k rows is
// bounded by k·127² ≪ 2³¹ for every width in this codebase — and the
// combined dequantize (acc·deq), float64 bias/residual epilogue and
// requantize to the destination's per-column scales happen in one pass
// per output row (ApplyEpilogueRowI8). Integer accumulation is
// order-independent, so tiled, direct and tile-parallel int8 executions
// are bit-identical without any element-order argument.
//
// The kernels here are serial range forms: the in-enclave direct path is
// single-threaded by construction, and the tiled executor gets its
// parallelism from tile workers, each with a private int32 accumulator.

// ApplyEpilogueRowI8 finishes one int8 output row from its int32
// accumulator: dst[j] = quantize(acc[j]·deq[j] + bias[j] +
// rrow[j]·resScales[j], dstScales[j]) with optional ReLU before
// requantization. deq[j] is the combined dequantization scale (the folded
// weight's column scale for MatMul, source-column×CSR-value for SpMM);
// bias and rrow may be nil (resScales only read when rrow isn't).
// Unchecked, like ApplyEpilogueRow — callers validate shapes once up
// front.
//
// The return value is the row's argmax over the pre-requantization
// floats f (first maximum wins), the "wide head" the executor uses when
// this op feeds a fused argmax: the int32 accumulator is exact, so f
// separates logits that requantization to shared int8 codes would
// collapse, and f is a per-element function of deterministic inputs, so
// the label is identical across direct/tiled/tile-parallel execution.
func ApplyEpilogueRowI8(dst []int8, acc []int32, deq, bias []float64, rrow []int8, resScales []float64, relu bool, dstScales []float64) int {
	am, best := 0, math.Inf(-1)
	for j := range dst {
		f := float64(acc[j]) * deq[j]
		if bias != nil {
			f += bias[j]
		}
		if rrow != nil {
			f += float64(rrow[j]) * resScales[j]
		}
		if relu && !(f > 0) {
			f = 0
		}
		if f > best {
			best, am = f, j
		}
		dst[j] = QuantizeI8(f, dstScales[j])
	}
	return am
}

// MatMulI8EpilogueInto computes dst = requantize(epilogue(a·w)) over
// int8 codes with int32 accumulation: the quantized counterpart of
// MatMulBiasReLUInto. w must be the folded weight (source per-column
// scales multiplied in before column quantization) and deq its per-column
// scales, bias the float64 bias (nil for none), res/resScales the
// optional residual codes and their per-column scales, dstScales the
// destination value's per-column scales. acc is the caller-owned int32
// scratch row, at least w.Cols long — tile workers pass private
// accumulators so the kernel stays alloc-free and race-free. labels,
// when non-nil (length ≥ a.Rows), receives each row's wide argmax — the
// pre-requantization epilogue float, see ApplyEpilogueRowI8. Serial;
// runs on the calling goroutine.
func MatMulI8EpilogueInto(dst, a, w *MatrixI8, deq, bias []float64, res *MatrixI8, resScales []float64, relu bool, dstScales []float64, acc []int32, labels []int) {
	if a.Cols != w.Rows {
		panic(fmt.Sprintf("mat: MatMulI8EpilogueInto inner dimension mismatch %s · %s", a.Shape(), w.Shape()))
	}
	if dst.Rows != a.Rows || dst.Cols != w.Cols {
		panic(fmt.Sprintf("mat: MatMulI8EpilogueInto destination %s, want %dx%d", dst.Shape(), a.Rows, w.Cols))
	}
	if len(deq) != w.Cols {
		panic(fmt.Sprintf("mat: MatMulI8EpilogueInto deq length %d != cols %d", len(deq), w.Cols))
	}
	if bias != nil && len(bias) != w.Cols {
		panic(fmt.Sprintf("mat: MatMulI8EpilogueInto bias length %d != cols %d", len(bias), w.Cols))
	}
	if res != nil && (res.Rows != dst.Rows || res.Cols != dst.Cols) {
		panic(fmt.Sprintf("mat: MatMulI8EpilogueInto residual %s, want %s", res.Shape(), dst.Shape()))
	}
	if len(dstScales) != w.Cols {
		panic(fmt.Sprintf("mat: MatMulI8EpilogueInto dstScales length %d != cols %d", len(dstScales), w.Cols))
	}
	if len(acc) < w.Cols {
		panic(fmt.Sprintf("mat: MatMulI8EpilogueInto accumulator length %d < cols %d", len(acc), w.Cols))
	}
	if labels != nil && len(labels) < a.Rows {
		panic(fmt.Sprintf("mat: MatMulI8EpilogueInto labels length %d < rows %d", len(labels), a.Rows))
	}
	n, p := a.Cols, w.Cols
	for i := 0; i < a.Rows; i++ {
		matMulRowI8(a.Data[i*n:(i+1)*n], w, acc[:p], n, p)
		var rrow []int8
		if res != nil {
			rrow = res.Data[i*p : (i+1)*p]
		}
		am := ApplyEpilogueRowI8(dst.Data[i*p:(i+1)*p], acc, deq, bias, rrow, resScales, relu, dstScales)
		if labels != nil {
			labels[i] = am
		}
	}
}

// matMulRowI8 accumulates one output row into acc with the zero-skip
// path of matMulRow: zero codes skip a whole row-axpy, the first write
// uses the Set kernel, all-zero rows clear the accumulator.
func matMulRowI8(arow []int8, w *MatrixI8, acc []int32, n, p int) {
	inited := false
	for k := 0; k < n; k++ {
		if av := arow[k]; av != 0 {
			if inited {
				AxpyI8(int32(av), w.Data[k*p:(k+1)*p], acc)
			} else {
				AxpyI8Set(int32(av), w.Data[k*p:(k+1)*p], acc)
				inited = true
			}
		}
	}
	if !inited {
		clear(acc)
	}
}
