// Package mat provides dense row-major float64 matrices and the linear
// algebra kernels used throughout GNNVault: blocked parallel matrix
// multiplication, transposes, element-wise operations, reductions, and
// parameter initialisation.
//
// The package is deliberately small and dependency-free: GNNVault targets
// edge deployment where the rectifier runs inside a TEE enclave, so the
// same kernels must be usable both in the (parallel) normal world and in
// the (single-threaded, memory-accounted) enclave simulation.
package mat

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64 values.
//
// The zero value is an empty 0×0 matrix. Data is stored in a single
// contiguous slice; element (i, j) lives at Data[i*Cols+j].
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zero-initialised rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix. The slice is used directly
// (not copied); len(data) must equal rows*cols.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: FromSlice size mismatch: %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("mat: FromRows ragged input: row %d has %d cols, want %d", i, len(r), c))
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.Data[i*m.Cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.Data[i*m.Cols+j] = v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// SameShape reports whether m and o have identical dimensions.
func (m *Matrix) SameShape(o *Matrix) bool {
	return m.Rows == o.Rows && m.Cols == o.Cols
}

// Shape returns "RxC" for error messages and logs.
func (m *Matrix) Shape() string { return fmt.Sprintf("%dx%d", m.Rows, m.Cols) }

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.Cols, m.Rows)
	const blk = 32
	for ii := 0; ii < m.Rows; ii += blk {
		for jj := 0; jj < m.Cols; jj += blk {
			iMax := min(ii+blk, m.Rows)
			jMax := min(jj+blk, m.Cols)
			for i := ii; i < iMax; i++ {
				for j := jj; j < jMax; j++ {
					t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
				}
			}
		}
	}
	return t
}

// Add returns m + o element-wise.
func (m *Matrix) Add(o *Matrix) *Matrix {
	m.requireSameShape(o, "Add")
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] + o.Data[i]
	}
	return r
}

// AddInPlace adds o into m and returns m.
func (m *Matrix) AddInPlace(o *Matrix) *Matrix {
	m.requireSameShape(o, "AddInPlace")
	for i := range m.Data {
		m.Data[i] += o.Data[i]
	}
	return m
}

// Sub returns m - o element-wise.
func (m *Matrix) Sub(o *Matrix) *Matrix {
	m.requireSameShape(o, "Sub")
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] - o.Data[i]
	}
	return r
}

// Hadamard returns the element-wise product m ⊙ o.
func (m *Matrix) Hadamard(o *Matrix) *Matrix {
	m.requireSameShape(o, "Hadamard")
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = m.Data[i] * o.Data[i]
	}
	return r
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	r := New(m.Rows, m.Cols)
	for i := range m.Data {
		r.Data[i] = s * m.Data[i]
	}
	return r
}

// ScaleInPlace multiplies every element by s and returns m.
func (m *Matrix) ScaleInPlace(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// Apply returns f applied element-wise to m.
func (m *Matrix) Apply(f func(float64) float64) *Matrix {
	r := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		r.Data[i] = f(v)
	}
	return r
}

// AddRowVector adds the 1×Cols vector v to every row of m, returning a new
// matrix. Used for bias addition. Allocating wrapper over AddBiasInto.
func (m *Matrix) AddRowVector(v []float64) *Matrix {
	r := New(m.Rows, m.Cols)
	AddBiasInto(r, m, v)
	return r
}

// ColSums returns the per-column sums of m as a length-Cols slice.
func (m *Matrix) ColSums() []float64 {
	s := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			s[j] += v
		}
	}
	return s
}

// Sum returns the sum of all elements.
func (m *Matrix) Sum() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Norm returns the Frobenius norm of m.
func (m *Matrix) Norm() float64 {
	s := 0.0
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgmaxRows returns, for each row, the column index of its maximum value.
// Allocating wrapper over ArgmaxRowsInto.
func (m *Matrix) ArgmaxRows() []int {
	out := make([]int, m.Rows)
	m.ArgmaxRowsInto(out)
	return out
}

// ViewRows repoints view at rows [lo, hi) of m without copying: view's
// header is overwritten to alias m's backing array. Mutating the view
// mutates m. The tiled executor uses pre-allocated view headers to walk row
// tiles of spilled activations with zero steady-state allocation.
func (m *Matrix) ViewRows(lo, hi int, view *Matrix) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("mat: ViewRows [%d,%d) out of range %d", lo, hi, m.Rows))
	}
	view.Rows = hi - lo
	view.Cols = m.Cols
	view.Data = m.Data[lo*m.Cols : hi*m.Cols]
	return view
}

// SliceRows returns a copy of rows[lo:hi).
func (m *Matrix) SliceRows(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("mat: SliceRows [%d,%d) out of range %d", lo, hi, m.Rows))
	}
	r := New(hi-lo, m.Cols)
	copy(r.Data, m.Data[lo*m.Cols:hi*m.Cols])
	return r
}

// SelectRows returns a new matrix containing the given rows of m, in order.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	r := New(len(idx), m.Cols)
	for k, i := range idx {
		copy(r.Row(k), m.Row(i))
	}
	return r
}

// SliceCols returns a copy of columns [lo, hi) of m.
func (m *Matrix) SliceCols(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Cols || lo > hi {
		panic(fmt.Sprintf("mat: SliceCols [%d,%d) out of range %d", lo, hi, m.Cols))
	}
	r := New(m.Rows, hi-lo)
	for i := 0; i < m.Rows; i++ {
		copy(r.Row(i), m.Row(i)[lo:hi])
	}
	return r
}

// HConcat returns [m | o], the horizontal concatenation of m and o.
// Allocating wrapper over HConcatInto.
func HConcat(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return New(0, 0)
	}
	rows := ms[0].Rows
	cols := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("mat: HConcat row mismatch: %d != %d", m.Rows, rows))
		}
		cols += m.Cols
	}
	r := New(rows, cols)
	HConcatInto(r, ms...)
	return r
}

// Equal reports whether m and o are identical in shape and values.
func (m *Matrix) Equal(o *Matrix) bool {
	if !m.SameShape(o) {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// EqualApprox reports whether m and o agree element-wise within tol.
func (m *Matrix) EqualApprox(o *Matrix, tol float64) bool {
	if !m.SameShape(o) {
		return false
	}
	for i, v := range m.Data {
		if math.Abs(v-o.Data[i]) > tol {
			return false
		}
	}
	return true
}

// NumBytes returns the in-memory payload size of the matrix data in bytes.
// Used by the enclave simulator for EPC accounting and transfer costing.
func (m *Matrix) NumBytes() int64 { return int64(len(m.Data)) * 8 }

func (m *Matrix) requireSameShape(o *Matrix, op string) {
	if !m.SameShape(o) {
		panic(fmt.Sprintf("mat: %s shape mismatch %s vs %s", op, m.Shape(), o.Shape()))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
