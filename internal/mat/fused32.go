package mat

import (
	"fmt"
	"sync"
)

// float32 kernel family. These mirror the fp64 kernels (matmul.go,
// fused.go, into.go) over Matrix32: same zero-skip quad row kernel, same
// banded parallel driver, same canonical bias → residual → ReLU epilogue
// order, and the same per-row element order — so tiled, direct and
// banded-parallel executions are bit-identical *within* fp32 by the same
// argument that pins the fp64 engine. The only structural difference is
// that the fp32 row kernel has no dense-pair micro-kernel: reduced
// precision already halves memory traffic, and the single-row quad path
// keeps the family small.

// ApplyEpilogueRow32 applies the fused epilogue to one float32 output
// row: bias (broadcast), then residual row, then ReLU (non-positive and
// NaN entries become +0). Unchecked, like ApplyEpilogueRow — kernels
// validate shapes once up front.
func ApplyEpilogueRow32(drow, bias, rrow []float32, relu bool) {
	switch {
	case bias != nil && rrow == nil && relu:
		for j, bv := range bias {
			if v := drow[j] + bv; v > 0 {
				drow[j] = v
			} else {
				drow[j] = 0
			}
		}
		return
	case bias != nil:
		for j, bv := range bias {
			drow[j] += bv
		}
	}
	if rrow != nil {
		for j, rv := range rrow {
			drow[j] += rv
		}
	}
	if relu {
		for j, v := range drow {
			if v > 0 {
				continue
			}
			drow[j] = 0
		}
	}
}

// RequireNoAlias32 panics when dst shares backing storage with src —
// the Matrix32 form of RequireNoAlias (full aliasing only).
func RequireNoAlias32(dst, src *Matrix32, op string) {
	if dst == src || (len(dst.Data) > 0 && len(src.Data) > 0 && &dst.Data[0] == &src.Data[0]) {
		panic(fmt.Sprintf("%s destination aliases an input", op))
	}
}

func (m *Matrix32) requireShape(rows, cols int, op string) {
	if m.Rows != rows || m.Cols != cols {
		panic(fmt.Sprintf("mat: %s destination %s, want %dx%d", op, m.Shape(), rows, cols))
	}
}

// MatMul32BiasReLUInto computes dst = epilogue(a·b) over float32: the
// fp32 counterpart of MatMulBiasReLUInto, banded over rows with the
// epilogue applied while each output row is cache-hot. Any of bias, res
// may be nil and relu false — with all three unset this is the plain
// product. dst must be a.Rows×b.Cols and must not alias a, b or res.
// workers follows MatMulWorkersInto semantics (<= 0 resolves the
// process-global default, 1 runs inline, clamped to the row count).
func MatMul32BiasReLUInto(dst, a, b *Matrix32, bias []float32, res *Matrix32, relu bool, workers int) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMul32BiasReLUInto inner dimension mismatch %s · %s", a.Shape(), b.Shape()))
	}
	dst.requireShape(a.Rows, b.Cols, "MatMul32BiasReLUInto")
	RequireNoAlias32(dst, a, "mat: MatMul32BiasReLUInto")
	RequireNoAlias32(dst, b, "mat: MatMul32BiasReLUInto")
	if bias != nil && len(bias) != dst.Cols {
		panic(fmt.Sprintf("mat: MatMul32BiasReLUInto bias length %d != cols %d", len(bias), dst.Cols))
	}
	if res != nil {
		RequireNoAlias32(dst, res, "mat: MatMul32BiasReLUInto")
		res.requireShape(dst.Rows, dst.Cols, "MatMul32BiasReLUInto residual")
	}
	ops := a.Rows * a.Cols * b.Cols
	w := resolveWorkers(workers, a.Rows)
	if ops < parallelThreshold || w == 1 {
		matMul32EpilogueRange(a, b, dst, 0, a.Rows, bias, res, relu)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + w - 1) / w
	for i := 0; i < w; i++ {
		lo := i * chunk
		hi := min(lo+chunk, a.Rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMul32EpilogueRange(a, b, dst, lo, hi, bias, res, relu)
		}(lo, hi)
	}
	wg.Wait()
}

// matMul32EpilogueRange computes rows [lo,hi) of the product and applies
// the epilogue per row. Rows are independent, so banding does not change
// element order or bits.
func matMul32EpilogueRange(a, b, dst *Matrix32, lo, hi int, bias []float32, res *Matrix32, relu bool) {
	n, p := a.Cols, b.Cols
	epi := bias != nil || res != nil || relu
	for i := lo; i < hi; i++ {
		orow := dst.Data[i*p : (i+1)*p]
		matMulRow32(a.Data[i*n:(i+1)*n], b, orow, n, p)
		if epi {
			var rrow []float32
			if res != nil {
				rrow = res.Data[i*p : (i+1)*p]
			}
			ApplyEpilogueRow32(orow, bias, rrow, relu)
		}
	}
}

// matMulRow32 computes one float32 output row with the zero-skip quad
// path of matMulRow: fully non-zero quads of k take the four-stream
// kernel after one combined test, mixed quads fall back to per-element
// skip, the first write uses a Set kernel, all-zero rows are cleared.
func matMulRow32(arow []float32, b *Matrix32, orow []float32, n, p int) {
	k, inited := 0, false
	for ; k+4 <= n; k += 4 {
		a1, a2, a3, a4 := arow[k], arow[k+1], arow[k+2], arow[k+3]
		if a1 != 0 && a2 != 0 && a3 != 0 && a4 != 0 {
			if inited {
				Axpy4G(a1, b.Data[k*p:(k+1)*p], a2, b.Data[(k+1)*p:(k+2)*p],
					a3, b.Data[(k+2)*p:(k+3)*p], a4, b.Data[(k+3)*p:(k+4)*p], orow)
			} else {
				Axpy4SetG(a1, b.Data[k*p:(k+1)*p], a2, b.Data[(k+1)*p:(k+2)*p],
					a3, b.Data[(k+2)*p:(k+3)*p], a4, b.Data[(k+3)*p:(k+4)*p], orow)
				inited = true
			}
			continue
		}
		for j := k; j < k+4; j++ {
			if av := arow[j]; av != 0 {
				if inited {
					AxpyG(av, b.Data[j*p:(j+1)*p], orow)
				} else {
					AxpySetG(av, b.Data[j*p:(j+1)*p], orow)
					inited = true
				}
			}
		}
	}
	for ; k < n; k++ {
		if av := arow[k]; av != 0 {
			if inited {
				AxpyG(av, b.Data[k*p:(k+1)*p], orow)
			} else {
				AxpySetG(av, b.Data[k*p:(k+1)*p], orow)
				inited = true
			}
		}
	}
	if !inited {
		clear(orow)
	}
}

// AddBias32Into writes x + bias (broadcast across rows) into dst. dst
// may alias x; len(bias) must equal x.Cols.
func AddBias32Into(dst, x *Matrix32, bias []float32) {
	if len(bias) != x.Cols {
		panic(fmt.Sprintf("mat: AddBias32Into bias length %d != cols %d", len(bias), x.Cols))
	}
	dst.requireShape(x.Rows, x.Cols, "AddBias32Into")
	for i := 0; i < x.Rows; i++ {
		xrow := x.Data[i*x.Cols : (i+1)*x.Cols]
		drow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
		for j, v := range xrow {
			drow[j] = v + bias[j]
		}
	}
}

// ReLU32Into writes max(x, 0) element-wise into dst. dst may alias x.
func ReLU32Into(dst, x *Matrix32) {
	dst.requireShape(x.Rows, x.Cols, "ReLU32Into")
	for i, v := range x.Data {
		if v > 0 {
			dst.Data[i] = v
		} else {
			dst.Data[i] = 0
		}
	}
}

// Add32Into writes a + b element-wise into dst. dst may alias a or b.
func Add32Into(dst, a, b *Matrix32) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: Add32Into shape mismatch %s vs %s", a.Shape(), b.Shape()))
	}
	dst.requireShape(a.Rows, a.Cols, "Add32Into")
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
}

// HConcat32Into writes [m0 | m1 | …] into dst, which must be pre-sized
// to the concatenated shape and must not alias any input.
func HConcat32Into(dst *Matrix32, ms ...*Matrix32) {
	rows, cols := 0, 0
	if len(ms) > 0 {
		rows = ms[0].Rows
	}
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("mat: HConcat32Into row mismatch: %d != %d", m.Rows, rows))
		}
		RequireNoAlias32(dst, m, "mat: HConcat32Into")
		cols += m.Cols
	}
	dst.requireShape(rows, cols, "HConcat32Into")
	for i := 0; i < rows; i++ {
		out := dst.Data[i*cols : (i+1)*cols]
		off := 0
		for _, m := range ms {
			copy(out[off:off+m.Cols], m.Data[i*m.Cols:(i+1)*m.Cols])
			off += m.Cols
		}
	}
}
