package mat

import (
	"math/rand"
	"testing"
)

// fillGarbage seeds dst with stale values so tests catch kernels that fail
// to overwrite their destination.
func fillGarbage(m *Matrix) {
	for i := range m.Data {
		m.Data[i] = 1e9
	}
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Spans the serial fast path and the parallel band path.
	for _, dims := range [][3]int{{1, 1, 1}, {7, 5, 3}, {64, 48, 80}, {120, 90, 70}} {
		a := RandNormal(rng, dims[0], dims[1], 0, 1)
		b := RandNormal(rng, dims[1], dims[2], 0, 1)
		want := MatMul(a, b)
		dst := New(dims[0], dims[2])
		fillGarbage(dst)
		MatMulInto(dst, a, b)
		if !dst.EqualApprox(want, 1e-12) {
			t.Fatalf("%v: MatMulInto disagrees", dims)
		}
		fillGarbage(dst)
		MatMulSerialInto(dst, a, b)
		if !dst.EqualApprox(want, 1e-12) {
			t.Fatalf("%v: MatMulSerialInto disagrees", dims)
		}
	}
}

func TestMatMulTransIntoMatchGold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := RandNormal(rng, 30, 20, 0, 1)
	b := RandNormal(rng, 30, 25, 0, 1)
	want := MatMul(a.T(), b)
	dst := New(20, 25)
	fillGarbage(dst)
	MatMulTransAInto(dst, a, b)
	if !dst.EqualApprox(want, 1e-10) {
		t.Fatal("MatMulTransAInto disagrees with explicit transpose")
	}

	c := RandNormal(rng, 25, 20, 0, 1)
	want2 := MatMul(a, c.T())
	dst2 := New(30, 25)
	fillGarbage(dst2)
	MatMulTransBInto(dst2, a, c)
	if !dst2.EqualApprox(want2, 1e-10) {
		t.Fatal("MatMulTransBInto disagrees with explicit transpose")
	}
}

func TestAddBiasIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := RandNormal(rng, 6, 4, 0, 1)
	bias := []float64{1, -2, 3, -4}
	want := x.AddRowVector(bias)
	dst := New(6, 4)
	AddBiasInto(dst, x, bias)
	if !dst.Equal(want) {
		t.Fatal("AddBiasInto into fresh destination disagrees")
	}
	AddBiasInto(x, x, bias) // in-place form
	if !x.Equal(want) {
		t.Fatal("AddBiasInto in place disagrees")
	}
}

func TestReLUAndAddInto(t *testing.T) {
	x := FromSlice(2, 3, []float64{-1, 2, 0, 3, -4, 5})
	dst := New(2, 3)
	fillGarbage(dst)
	ReLUInto(dst, x)
	if !dst.Equal(FromSlice(2, 3, []float64{0, 2, 0, 3, 0, 5})) {
		t.Fatalf("ReLUInto = %v", dst.Data)
	}
	ReLUInto(x, x) // in-place form
	if !x.Equal(dst) {
		t.Fatal("ReLUInto in place disagrees")
	}

	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{10, 20, 30})
	sum := New(1, 3)
	AddInto(sum, a, b)
	if !sum.Equal(FromSlice(1, 3, []float64{11, 22, 33})) {
		t.Fatalf("AddInto = %v", sum.Data)
	}
	AddInto(a, a, b) // in-place accumulate
	if !a.Equal(sum) {
		t.Fatal("AddInto in place disagrees")
	}
}

func TestHConcatIntoMatchesHConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := RandNormal(rng, 5, 2, 0, 1)
	b := RandNormal(rng, 5, 3, 0, 1)
	c := RandNormal(rng, 5, 1, 0, 1)
	want := HConcat(a, b, c)
	dst := New(5, 6)
	fillGarbage(dst)
	HConcatInto(dst, a, b, c)
	if !dst.Equal(want) {
		t.Fatal("HConcatInto disagrees with HConcat")
	}
}

func TestArgmaxRowsIntoMatchesArgmaxRows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := RandNormal(rng, 40, 7, 0, 1)
	want := m.ArgmaxRows()
	got := make([]int, 40)
	m.ArgmaxRowsInto(got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestIntoKernelsPanicOnMisuse(t *testing.T) {
	a := New(4, 3)
	b := New(3, 5)
	cases := map[string]func(){
		"matmul shape":     func() { MatMulInto(New(4, 4), a, b) },
		"matmul alias a":   func() { MatMulInto(a, a, New(3, 3)) },
		"matmul alias b":   func() { MatMulInto(b, New(5, 3), b) },
		"transA shape":     func() { MatMulTransAInto(New(3, 3), a, New(4, 5)) },
		"transB shape":     func() { MatMulTransBInto(New(4, 4), a, New(5, 3)) },
		"bias length":      func() { AddBiasInto(New(4, 3), a, []float64{1}) },
		"relu shape":       func() { ReLUInto(New(4, 4), a) },
		"hconcat shape":    func() { HConcatInto(New(4, 5), a, a) },
		"hconcat alias":    func() { HConcatInto(a, a) },
		"argmax length":    func() { a.ArgmaxRowsInto(make([]int, 3)) },
		"copy shape":       func() { CopyInto(New(3, 3), a) },
		"add shape":        func() { AddInto(New(4, 4), a, a) },
		"matmul dim inner": func() { MatMulInto(New(4, 4), a, New(4, 4)) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestSerialIntoKernelsAllocFree pins the property the inference plan is
// built on: single-threaded Into kernels never touch the heap.
func TestSerialIntoKernelsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := RandNormal(rng, 60, 40, 0, 1)
	b := RandNormal(rng, 40, 30, 0, 1)
	dst := New(60, 30)
	bias := make([]float64, 30)
	labels := make([]int, 60)
	allocs := testing.AllocsPerRun(20, func() {
		MatMulSerialInto(dst, a, b)
		AddBiasInto(dst, dst, bias)
		ReLUInto(dst, dst)
		dst.ArgmaxRowsInto(labels)
	})
	if allocs > 0 {
		t.Fatalf("serial Into kernels allocate %.1f objects/op", allocs)
	}
}

// TestParallelIntoRespectsMaxWorkers: under a per-call budget of one
// worker, even large products stay on the calling goroutine (no spawn, no
// allocation) — the plan-scoped form, no process-global knob involved.
func TestParallelIntoRespectsMaxWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := RandNormal(rng, 128, 128, 0, 1)
	b := RandNormal(rng, 128, 128, 0, 1)
	dst := New(128, 128)
	allocs := testing.AllocsPerRun(5, func() {
		MatMulWorkersInto(dst, a, b, 1)
	})
	if allocs > 0 {
		t.Fatalf("MatMulWorkersInto with 1 worker allocates %.1f objects/op", allocs)
	}
	if !dst.EqualApprox(MatMul(a, b), 1e-12) {
		t.Fatal("single-worker result disagrees")
	}
}

func BenchmarkMatMulInto256(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := RandNormal(rng, 256, 256, 0, 1)
	y := RandNormal(rng, 256, 256, 0, 1)
	dst := New(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}
