package mat

import (
	"fmt"
	"math"
)

// Matrix32 is a dense row-major matrix of float32 values — the storage
// type of the fp32 kernel family. It mirrors the minimal Matrix surface
// the tiled executor needs (views, shape checks, argmax, byte
// accounting); training and the fp64 reference path stay on Matrix.
type Matrix32 struct {
	Rows, Cols int
	Data       []float32
}

// New32 returns a zero-initialised rows×cols float32 matrix.
func New32(rows, cols int) *Matrix32 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// Shape returns "RxC" for error messages and logs.
func (m *Matrix32) Shape() string { return fmt.Sprintf("%dx%d", m.Rows, m.Cols) }

// Row returns a view (not a copy) of row i.
func (m *Matrix32) Row(i int) []float32 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// ViewRows repoints view at rows [lo, hi) of m without copying, exactly
// like Matrix.ViewRows. Mutating the view mutates m.
func (m *Matrix32) ViewRows(lo, hi int, view *Matrix32) *Matrix32 {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("mat: ViewRows [%d,%d) out of range %d", lo, hi, m.Rows))
	}
	view.Rows = hi - lo
	view.Cols = m.Cols
	view.Data = m.Data[lo*m.Cols : hi*m.Cols]
	return view
}

// NumBytes returns the in-memory payload size of the matrix data in
// bytes (4 per element), used for EPC accounting and transfer costing.
func (m *Matrix32) NumBytes() int64 { return int64(len(m.Data)) * 4 }

// Equal reports whether m and o are bit-identical in shape and values.
func (m *Matrix32) Equal(o *Matrix32) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// ArgmaxRowsInto writes, for each row, the column index of its maximum
// value into dst (first maximum wins, matching Matrix.ArgmaxRowsInto).
func (m *Matrix32) ArgmaxRowsInto(dst []int) {
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: ArgmaxRowsInto dst length %d != %d rows", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		if len(row) == 0 {
			dst[i] = 0
			continue
		}
		best, arg := row[0], 0
		for j, v := range row {
			if v > best {
				best, arg = v, j
			}
		}
		dst[i] = arg
	}
}

// MatrixI8 is a dense row-major matrix of symmetric-quantized int8
// codes. A code q represents the real value q·scale; the scale lives
// outside the matrix (per-value activation scales and per-column weight
// scales are owned by the executor's quantization plan).
type MatrixI8 struct {
	Rows, Cols int
	Data       []int8
}

// NewI8 returns a zero-initialised rows×cols int8 matrix.
func NewI8(rows, cols int) *MatrixI8 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &MatrixI8{Rows: rows, Cols: cols, Data: make([]int8, rows*cols)}
}

// Shape returns "RxC" for error messages and logs.
func (m *MatrixI8) Shape() string { return fmt.Sprintf("%dx%d", m.Rows, m.Cols) }

// Row returns a view (not a copy) of row i.
func (m *MatrixI8) Row(i int) []int8 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// ViewRows repoints view at rows [lo, hi) of m without copying, exactly
// like Matrix.ViewRows. Mutating the view mutates m.
func (m *MatrixI8) ViewRows(lo, hi int, view *MatrixI8) *MatrixI8 {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("mat: ViewRows [%d,%d) out of range %d", lo, hi, m.Rows))
	}
	view.Rows = hi - lo
	view.Cols = m.Cols
	view.Data = m.Data[lo*m.Cols : hi*m.Cols]
	return view
}

// NumBytes returns the in-memory payload size of the matrix data in
// bytes (1 per element), used for EPC accounting and transfer costing.
func (m *MatrixI8) NumBytes() int64 { return int64(len(m.Data)) }

// Equal reports whether m and o are identical in shape and codes.
func (m *MatrixI8) Equal(o *MatrixI8) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// ArgmaxRowsScaledInto writes, for each row, the column index of its
// maximum dequantized value code·scales[col] into dst (first maximum
// wins). Per-column scales make raw codes incomparable across columns, so
// the argmax must compare dequantized reals; the comparison is still
// deterministic in the codes, preserving the within-precision
// bit-identity of every execution mode.
func (m *MatrixI8) ArgmaxRowsScaledInto(dst []int, scales []float64) {
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: ArgmaxRowsScaledInto dst length %d != %d rows", len(dst), m.Rows))
	}
	if len(scales) != m.Cols {
		panic(fmt.Sprintf("mat: ArgmaxRowsScaledInto %d scales != %d cols", len(scales), m.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		if len(row) == 0 {
			dst[i] = 0
			continue
		}
		best, arg := float64(row[0])*scales[0], 0
		for j, q := range row {
			if v := float64(q) * scales[j]; v > best {
				best, arg = v, j
			}
		}
		dst[i] = arg
	}
}

// ArgmaxRowsInto writes, for each row, the column index of its maximum
// code into dst (first maximum wins). Only meaningful when every column
// shares one non-negative scale — requantization is then monotone and the
// argmax over codes equals the argmax over the dequantized reals; under
// per-column scales use ArgmaxRowsScaledInto.
func (m *MatrixI8) ArgmaxRowsInto(dst []int) {
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("mat: ArgmaxRowsInto dst length %d != %d rows", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		if len(row) == 0 {
			dst[i] = 0
			continue
		}
		best, arg := row[0], 0
		for j, v := range row {
			if v > best {
				best, arg = v, j
			}
		}
		dst[i] = arg
	}
}

// Convert32Into narrows the float64 matrix src into dst element-wise
// (round-to-nearest-even, the hardware float64→float32 conversion).
// Shapes must match; dst must not alias src's backing array.
func Convert32Into(dst *Matrix32, src *Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("mat: Convert32Into shape mismatch %s vs %s", dst.Shape(), src.Shape()))
	}
	for i, v := range src.Data {
		dst.Data[i] = float32(v)
	}
}

// Widen32Into widens the float32 matrix src into the float64 dst
// element-wise (exact). Shapes must match.
func Widen32Into(dst *Matrix, src *Matrix32) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("mat: Widen32Into shape mismatch %s vs %s", dst.Shape(), src.Shape()))
	}
	for i, v := range src.Data {
		dst.Data[i] = float64(v)
	}
}

// Copy32Into copies src into dst; shapes must match. The float32
// counterpart of CopyInto, used to flush staged tiles into spill buffers.
func Copy32Into(dst, src *Matrix32) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("mat: Copy32Into shape mismatch %s vs %s", dst.Shape(), src.Shape()))
	}
	copy(dst.Data, src.Data)
}

// CopyI8Into copies src into dst; shapes must match.
func CopyI8Into(dst, src *MatrixI8) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("mat: CopyI8Into shape mismatch %s vs %s", dst.Shape(), src.Shape()))
	}
	copy(dst.Data, src.Data)
}

// SymmetricScale returns the symmetric int8 quantization scale for a
// tensor whose largest absolute value is maxAbs: codes span ±127 and a
// code q represents q·scale. A zero (or negative) maxAbs yields scale 0,
// which QuantizeI8 maps every value to code 0.
func SymmetricScale(maxAbs float64) float64 {
	if maxAbs <= 0 {
		return 0
	}
	return maxAbs / 127
}

// QuantizeI8 maps the real value v to its nearest int8 code under
// symmetric scale (round half away from zero, clamped to ±127). A
// non-positive scale quantizes everything to 0.
func QuantizeI8(v, scale float64) int8 {
	if scale <= 0 {
		return 0
	}
	q := math.Round(v / scale)
	if q > 127 {
		return 127
	}
	if q < -127 {
		return -127
	}
	return int8(q)
}

// QuantizeI8Into quantizes the float64 matrix src into dst under a
// single symmetric scale. Shapes must match.
func QuantizeI8Into(dst *MatrixI8, src *Matrix, scale float64) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("mat: QuantizeI8Into shape mismatch %s vs %s", dst.Shape(), src.Shape()))
	}
	if scale <= 0 {
		clear(dst.Data)
		return
	}
	inv := 1 / scale
	for i, v := range src.Data {
		q := math.Round(v * inv)
		switch {
		case q > 127:
			dst.Data[i] = 127
		case q < -127:
			dst.Data[i] = -127
		default:
			dst.Data[i] = int8(q)
		}
	}
}

// DequantizeI8Into widens the int8 matrix src into the float64 dst as
// code·scale per element. Shapes must match.
func DequantizeI8Into(dst *Matrix, src *MatrixI8, scale float64) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("mat: DequantizeI8Into shape mismatch %s vs %s", dst.Shape(), src.Shape()))
	}
	for i, v := range src.Data {
		dst.Data[i] = float64(v) * scale
	}
}

// QuantizeColumnsI8Into quantizes the float64 matrix src into dst under
// per-column symmetric scales (the activation counterpart of
// QuantizeColumnsI8's weight preparation). Alloc-free: the int8 boundary
// conversion of every Run goes through here.
func QuantizeColumnsI8Into(dst *MatrixI8, src *Matrix, scales []float64) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("mat: QuantizeColumnsI8Into shape mismatch %s vs %s", dst.Shape(), src.Shape()))
	}
	if len(scales) != src.Cols {
		panic(fmt.Sprintf("mat: QuantizeColumnsI8Into %d scales != %d cols", len(scales), src.Cols))
	}
	cols := src.Cols
	for i := 0; i < src.Rows; i++ {
		srow := src.Data[i*cols : (i+1)*cols]
		drow := dst.Data[i*cols : (i+1)*cols]
		for j, v := range srow {
			drow[j] = QuantizeI8(v, scales[j])
		}
	}
}

// DequantizeColumnsI8Into widens the int8 matrix src into the float64 dst
// as code·scales[col] per element. Shapes must match.
func DequantizeColumnsI8Into(dst *Matrix, src *MatrixI8, scales []float64) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic(fmt.Sprintf("mat: DequantizeColumnsI8Into shape mismatch %s vs %s", dst.Shape(), src.Shape()))
	}
	if len(scales) != src.Cols {
		panic(fmt.Sprintf("mat: DequantizeColumnsI8Into %d scales != %d cols", len(scales), src.Cols))
	}
	cols := src.Cols
	for i := 0; i < src.Rows; i++ {
		srow := src.Data[i*cols : (i+1)*cols]
		drow := dst.Data[i*cols : (i+1)*cols]
		for j, q := range srow {
			drow[j] = float64(q) * scales[j]
		}
	}
}

// ColMaxAbsInto writes each column's largest absolute value into dst
// (length m.Cols), the per-channel statistic calibration derives int8
// activation scales from.
func (m *Matrix) ColMaxAbsInto(dst []float64) {
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("mat: ColMaxAbsInto dst length %d != %d cols", len(dst), m.Cols))
	}
	clear(dst)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			if a := math.Abs(v); a > dst[j] {
				dst[j] = a
			}
		}
	}
}

// QuantizeColumnsI8 quantizes a float64 weight matrix column-wise with
// per-column symmetric scales (maxabs/127 per output feature), the
// deploy-time weight preparation for int8 plans. It returns the code
// matrix and the per-column scales.
func QuantizeColumnsI8(w *Matrix) (*MatrixI8, []float64) {
	q := NewI8(w.Rows, w.Cols)
	scales := make([]float64, w.Cols)
	for j := 0; j < w.Cols; j++ {
		mx := 0.0
		for i := 0; i < w.Rows; i++ {
			if a := math.Abs(w.Data[i*w.Cols+j]); a > mx {
				mx = a
			}
		}
		scales[j] = SymmetricScale(mx)
	}
	for i := 0; i < w.Rows; i++ {
		wrow := w.Row(i)
		qrow := q.Row(i)
		for j, v := range wrow {
			qrow[j] = QuantizeI8(v, scales[j])
		}
	}
	return q, scales
}
