package mat

import (
	"fmt"
	"sync"
)

// Epilogue-fused kernels. The exec engine's fusion pass folds the
// element-wise consumers of a matrix product — bias add, residual add,
// ReLU — into the producing op, so the product's output tile is finished
// in one pass while it is still cache- (and, tiled, EPC-) resident instead
// of being flushed and re-read once per element-wise op. The epilogue is
// applied in the canonical order bias → residual → activation, which is
// the only order the fusion pass folds, and each step performs exactly the
// float operations of its standalone kernel (AddBiasInto, AddInto,
// ReLUInto) in the same element order — fused results are bit-identical to
// the unfused program by construction.

// ApplyEpilogueRow is the single definition of the fused ops' epilogue:
// drow gains bias (broadcast; len(bias) must equal len(drow) when
// non-nil), then rrow (element-wise, likewise), then ReLU (with
// ReLUInto's exact semantics: non-positive and NaN entries become +0).
// It is unchecked — kernels validate shapes once up front and then
// finish each output row while it is cache-hot. Exported so sibling
// packages' fused kernels (graph's sparse product) share it.
func ApplyEpilogueRow(drow, bias, rrow []float64, relu bool) {
	switch {
	case bias != nil && rrow == nil && relu:
		// The dominant fused tail (GCN conv): one pass instead of two,
		// same per-element operation order.
		for j, bv := range bias {
			if v := drow[j] + bv; v > 0 {
				drow[j] = v
			} else {
				drow[j] = 0
			}
		}
		return
	case bias != nil:
		for j, bv := range bias {
			drow[j] += bv
		}
	}
	if rrow != nil {
		for j, rv := range rrow {
			drow[j] += rv
		}
	}
	if relu {
		for j, v := range drow {
			if v > 0 {
				continue
			}
			drow[j] = 0
		}
	}
}

// MatMulBiasReLUInto computes dst = epilogue(a·b): the blocked product of
// MatMulWorkersInto with the optional bias/residual/ReLU epilogue applied
// to each row band while it is still hot, saving the separate full-matrix
// passes (and, on the tiled engine, their spill flushes). Any of bias, res
// may be nil and relu false — with all three unset this is exactly
// MatMulWorkersInto. dst must be a.Rows×b.Cols and must not alias a, b or
// res. Results are bit-identical to running the unfused op sequence.
func MatMulBiasReLUInto(dst, a, b *Matrix, bias []float64, res *Matrix, relu bool, workers int) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MatMulBiasReLUInto inner dimension mismatch %s · %s", a.Shape(), b.Shape()))
	}
	dst.requireShape(a.Rows, b.Cols, "MatMulBiasReLUInto")
	RequireNoAlias(dst, a, "mat: MatMulBiasReLUInto")
	RequireNoAlias(dst, b, "mat: MatMulBiasReLUInto")
	if bias != nil && len(bias) != dst.Cols {
		panic(fmt.Sprintf("mat: MatMulBiasReLUInto bias length %d != cols %d", len(bias), dst.Cols))
	}
	if res != nil {
		RequireNoAlias(dst, res, "mat: MatMulBiasReLUInto")
		res.requireShape(dst.Rows, dst.Cols, "MatMulBiasReLUInto residual")
	}
	ops := a.Rows * a.Cols * b.Cols
	w := resolveWorkers(workers, a.Rows)
	if ops < parallelThreshold || w == 1 {
		matMulEpilogueRange(a, b, dst, 0, a.Rows, bias, res, relu)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + w - 1) / w
	for i := 0; i < w; i++ {
		lo := i * chunk
		hi := min(lo+chunk, a.Rows)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulEpilogueRange(a, b, dst, lo, hi, bias, res, relu)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulEpilogueRange computes rows [lo,hi) of the product and applies
// the epilogue to each row (or dense-pair of rows) while it is still
// cache-hot instead of in a trailing full pass — rows are independent, so
// the element order, and therefore the bits, are unchanged. The caller
// validated epilogue shapes; with no epilogue set this is the plain
// banded product body.
func matMulEpilogueRange(a, b, dst *Matrix, lo, hi int, bias []float64, res *Matrix, relu bool) {
	n, p := a.Cols, b.Cols
	epi := bias != nil || res != nil || relu
	resRow := func(i int) []float64 {
		if res == nil {
			return nil
		}
		return res.Data[i*p : (i+1)*p]
	}
	i := lo
	for ; i+2 <= hi; i += 2 {
		r1 := a.Data[i*n : (i+1)*n]
		r2 := a.Data[(i+1)*n : (i+2)*n]
		o1 := dst.Data[i*p : (i+1)*p]
		o2 := dst.Data[(i+1)*p : (i+2)*p]
		if n >= 4 && denseRow(r1) && denseRow(r2) {
			matMulRowPairDense(r1, r2, b, o1, o2, n, p)
		} else {
			matMulRow(r1, b, o1, n, p)
			matMulRow(r2, b, o2, n, p)
		}
		if epi {
			ApplyEpilogueRow(o1, bias, resRow(i), relu)
			ApplyEpilogueRow(o2, bias, resRow(i+1), relu)
		}
	}
	if i < hi {
		orow := dst.Data[i*p : (i+1)*p]
		matMulRow(a.Data[i*n:(i+1)*n], b, orow, n, p)
		if epi {
			ApplyEpilogueRow(orow, bias, resRow(i), relu)
		}
	}
}
