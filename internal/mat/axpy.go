package mat

// The two innermost loops of every forward kernel in this codebase — the
// dense product, the sparse product in internal/graph, and the transpose
// gradient kernels — are a scaled vector accumulate (y += α·x) or a dot
// product over one row. The Go compiler does not vectorise either, so the
// helpers here unroll them 8-wide with explicit bounds hints instead:
// ~1.6–1.9× on the activation widths GNN inference lives at (16–64
// columns). Both preserve the element-wise operation order of the naive
// loop exactly, so every caller stays bit-identical to its pre-unrolled
// form — the property the tiled/fused execution-equivalence tests pin.

// Axpy accumulates y[j] += alpha·x[j] for j < len(x). len(y) must be at
// least len(x); each y element receives exactly one fused
// multiply-accumulate, so the result is bit-identical to the naive loop.
func Axpy(alpha float64, x, y []float64) {
	y = y[:len(x)]
	i := 0
	for ; i+8 <= len(x); i += 8 {
		xs := x[i : i+8 : i+8]
		ys := y[i : i+8 : i+8]
		ys[0] += alpha * xs[0]
		ys[1] += alpha * xs[1]
		ys[2] += alpha * xs[2]
		ys[3] += alpha * xs[3]
		ys[4] += alpha * xs[4]
		ys[5] += alpha * xs[5]
		ys[6] += alpha * xs[6]
		ys[7] += alpha * xs[7]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Axpy2 accumulates y[j] += a1·x1[j] + a2·x2[j], associating left to
// right per element — bit-identical to Axpy(a1, x1, y) followed by
// Axpy(a2, x2, y), but with one pass over y instead of two and two
// independent load streams the CPU can miss on concurrently. The sparse
// product feeds pairs of CSR non-zeros through this (and quads through
// Axpy4): its row gathers are cache-miss-bound, and overlapping the miss
// streams is worth more than any in-register trick.
func Axpy2(a1 float64, x1 []float64, a2 float64, x2 []float64, y []float64) {
	n := len(y)
	x1 = x1[:n]
	x2 = x2[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s1 := x1[i : i+4 : i+4]
		s2 := x2[i : i+4 : i+4]
		ys := y[i : i+4 : i+4]
		ys[0] = ys[0] + a1*s1[0] + a2*s2[0]
		ys[1] = ys[1] + a1*s1[1] + a2*s2[1]
		ys[2] = ys[2] + a1*s1[2] + a2*s2[2]
		ys[3] = ys[3] + a1*s1[3] + a2*s2[3]
	}
	for ; i < n; i++ {
		y[i] = y[i] + a1*x1[i] + a2*x2[i]
	}
}

// Axpy4 accumulates four scaled rows into y in one pass, left-associated
// per element like Axpy2 — bit-identical to four sequential Axpy calls.
func Axpy4(a1 float64, x1 []float64, a2 float64, x2 []float64, a3 float64, x3 []float64, a4 float64, x4 []float64, y []float64) {
	n := len(y)
	x1 = x1[:n]
	x2 = x2[:n]
	x3 = x3[:n]
	x4 = x4[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s1 := x1[i : i+4 : i+4]
		s2 := x2[i : i+4 : i+4]
		s3 := x3[i : i+4 : i+4]
		s4 := x4[i : i+4 : i+4]
		ys := y[i : i+4 : i+4]
		ys[0] = ys[0] + a1*s1[0] + a2*s2[0] + a3*s3[0] + a4*s4[0]
		ys[1] = ys[1] + a1*s1[1] + a2*s2[1] + a3*s3[1] + a4*s4[1]
		ys[2] = ys[2] + a1*s1[2] + a2*s2[2] + a3*s3[2] + a4*s4[2]
		ys[3] = ys[3] + a1*s1[3] + a2*s2[3] + a3*s3[3] + a4*s4[3]
	}
	for ; i < n; i++ {
		y[i] = y[i] + a1*x1[i] + a2*x2[i] + a3*x3[i] + a4*x4[i]
	}
}

// AxpySet writes y[j] = alpha·x[j] — the initialising form of Axpy. The
// product kernels start each output row with a Set variant instead of
// zero-filling the whole destination first, which removes a full memclr
// pass over the output matrix (numerically, 0 + α·x ≡ α·x up to the sign
// of zero, which no comparison in this codebase distinguishes).
func AxpySet(alpha float64, x, y []float64) {
	y = y[:len(x)]
	i := 0
	for ; i+8 <= len(x); i += 8 {
		xs := x[i : i+8 : i+8]
		ys := y[i : i+8 : i+8]
		ys[0] = alpha * xs[0]
		ys[1] = alpha * xs[1]
		ys[2] = alpha * xs[2]
		ys[3] = alpha * xs[3]
		ys[4] = alpha * xs[4]
		ys[5] = alpha * xs[5]
		ys[6] = alpha * xs[6]
		ys[7] = alpha * xs[7]
	}
	for ; i < len(x); i++ {
		y[i] = alpha * x[i]
	}
}

// Axpy2Set writes y[j] = a1·x1[j] + a2·x2[j], the initialising form of
// Axpy2.
func Axpy2Set(a1 float64, x1 []float64, a2 float64, x2 []float64, y []float64) {
	n := len(y)
	x1 = x1[:n]
	x2 = x2[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s1 := x1[i : i+4 : i+4]
		s2 := x2[i : i+4 : i+4]
		ys := y[i : i+4 : i+4]
		ys[0] = a1*s1[0] + a2*s2[0]
		ys[1] = a1*s1[1] + a2*s2[1]
		ys[2] = a1*s1[2] + a2*s2[2]
		ys[3] = a1*s1[3] + a2*s2[3]
	}
	for ; i < n; i++ {
		y[i] = a1*x1[i] + a2*x2[i]
	}
}

// Axpy4Set writes four scaled rows into y in one initialising pass, the
// Set form of Axpy4.
func Axpy4Set(a1 float64, x1 []float64, a2 float64, x2 []float64, a3 float64, x3 []float64, a4 float64, x4 []float64, y []float64) {
	n := len(y)
	x1 = x1[:n]
	x2 = x2[:n]
	x3 = x3[:n]
	x4 = x4[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		s1 := x1[i : i+4 : i+4]
		s2 := x2[i : i+4 : i+4]
		s3 := x3[i : i+4 : i+4]
		s4 := x4[i : i+4 : i+4]
		ys := y[i : i+4 : i+4]
		ys[0] = a1*s1[0] + a2*s2[0] + a3*s3[0] + a4*s4[0]
		ys[1] = a1*s1[1] + a2*s2[1] + a3*s3[1] + a4*s4[1]
		ys[2] = a1*s1[2] + a2*s2[2] + a3*s3[2] + a4*s4[2]
		ys[3] = a1*s1[3] + a2*s2[3] + a3*s3[3] + a4*s4[3]
	}
	for ; i < n; i++ {
		y[i] = a1*x1[i] + a2*x2[i] + a3*x3[i] + a4*x4[i]
	}
}

// axpy4Pair accumulates four scaled rows into two destinations at once —
// the dense mat-mul micro-kernel: the four x rows (weight rows) are
// loaded once per pair of output rows instead of once per row. Each
// destination element is left-associated exactly like Axpy4.
func axpy4Pair(a11, a12, a13, a14, a21, a22, a23, a24 float64, x1, x2, x3, x4, y1, y2 []float64) {
	n := len(y1)
	x1 = x1[:n]
	x2 = x2[:n]
	x3 = x3[:n]
	x4 = x4[:n]
	y2 = y2[:n]
	for j := 0; j < n; j++ {
		v1, v2, v3, v4 := x1[j], x2[j], x3[j], x4[j]
		y1[j] = y1[j] + a11*v1 + a12*v2 + a13*v3 + a14*v4
		y2[j] = y2[j] + a21*v1 + a22*v2 + a23*v3 + a24*v4
	}
}

// axpy4PairSet is the initialising form of axpy4Pair.
func axpy4PairSet(a11, a12, a13, a14, a21, a22, a23, a24 float64, x1, x2, x3, x4, y1, y2 []float64) {
	n := len(y1)
	x1 = x1[:n]
	x2 = x2[:n]
	x3 = x3[:n]
	x4 = x4[:n]
	y2 = y2[:n]
	for j := 0; j < n; j++ {
		v1, v2, v3, v4 := x1[j], x2[j], x3[j], x4[j]
		y1[j] = a11*v1 + a12*v2 + a13*v3 + a14*v4
		y2[j] = a21*v1 + a22*v2 + a23*v3 + a24*v4
	}
}

// Dot returns Σ x[j]·y[j] over j < len(x), accumulating in index order
// with a single accumulator (bit-identical to the naive loop; the unroll
// only removes bounds checks and branch overhead). len(y) must be at
// least len(x).
func Dot(x, y []float64) float64 {
	y = y[:len(x)]
	s := 0.0
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xs := x[i : i+4 : i+4]
		ys := y[i : i+4 : i+4]
		s += xs[0] * ys[0]
		s += xs[1] * ys[1]
		s += xs[2] * ys[2]
		s += xs[3] * ys[3]
	}
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}
