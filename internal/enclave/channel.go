package enclave

import (
	"errors"

	"gnnvault/internal/mat"
)

// GNNVault's deployment requires strictly one-directional data flow from
// the untrusted environment into the enclave (paper Sec. IV-B): the
// backbone pushes node embeddings in, and nothing but the final class
// labels ever comes out. The Channel / Uplink pair enforces that shape in
// the type system: untrusted code holds only an Uplink, which has no
// receive or read-back operation.

// ErrChannelClosed is returned when sending on a closed channel.
var ErrChannelClosed = errors.New("enclave: channel closed")

// Channel is the enclave-side endpoint of the one-way embedding stream.
// Only code running inside the enclave boundary should hold a *Channel.
type Channel struct {
	enclave  *Enclave
	queue    []*mat.Matrix
	received []*mat.Matrix // popped but still enclave-resident
	closed   bool
}

// NewChannel creates a one-way channel into e and returns both endpoints.
// The *Uplink is handed to the untrusted world; the *Channel stays inside.
func NewChannel(e *Enclave) (*Channel, *Uplink) {
	c := &Channel{enclave: e}
	return c, &Uplink{ch: c}
}

// Uplink is the untrusted-world endpoint: send-only, by construction.
type Uplink struct {
	ch *Channel
}

// Send copies one embedding matrix into the enclave, paying the modelled
// ECALL and marshalling cost for its payload. The matrix is deep-copied so
// later mutation in the untrusted world cannot reach enclave state.
func (u *Uplink) Send(m *mat.Matrix) error {
	if u.ch.closed {
		return ErrChannelClosed
	}
	var cp *mat.Matrix
	err := u.ch.enclave.Ecall(m.NumBytes(), 0, func() error {
		if err := u.ch.enclave.Alloc(m.NumBytes()); err != nil {
			return err
		}
		cp = m.Clone()
		return nil
	})
	if err != nil {
		return err
	}
	u.ch.queue = append(u.ch.queue, cp)
	return nil
}

// Close marks the stream complete for this inference.
func (u *Uplink) Close() { u.ch.closed = true }

// Recv pops the next embedding inside the enclave. The matrix stays
// EPC-resident (and accounted) until Drain. ok is false when the queue is
// empty.
func (c *Channel) Recv() (m *mat.Matrix, ok bool) {
	if len(c.queue) == 0 {
		return nil, false
	}
	m = c.queue[0]
	c.queue = c.queue[1:]
	c.received = append(c.received, m)
	return m, true
}

// Drain releases every embedding this channel brought into the enclave —
// queued and received — and their EPC accounting; called at the end of an
// inference pass.
func (c *Channel) Drain() {
	for _, m := range c.queue {
		c.enclave.Free(m.NumBytes())
	}
	for _, m := range c.received {
		c.enclave.Free(m.NumBytes())
	}
	c.queue = nil
	c.received = nil
	c.closed = false
}

// Pending returns the number of embeddings waiting inside the enclave.
func (c *Channel) Pending() int { return len(c.queue) }
