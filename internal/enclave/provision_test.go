package enclave

import (
	"bytes"
	"crypto/rand"
	"testing"
)

func freshNonce(t *testing.T) [32]byte {
	t.Helper()
	var n [32]byte
	if _, err := rand.Read(n[:]); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestProvisioningHappyPath(t *testing.T) {
	device := New(DefaultCostModel(), []byte("rectifier-build-1"))
	vendor := NewVendor(device.Measurement(), device)
	nonce := freshNonce(t)

	sess, err := device.BeginProvisioning(nonce)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("rectifier weights + private COO graph")
	vendorPub, wrapped, err := vendor.Provision(nonce, sess.Report, sess.PublicKey(), secret)
	if err != nil {
		t.Fatalf("Provision: %v", err)
	}
	if bytes.Contains(wrapped, secret) {
		t.Fatal("wrapped payload contains plaintext")
	}
	got, err := sess.Receive(vendorPub, wrapped)
	if err != nil {
		t.Fatalf("Receive: %v", err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("provisioned payload differs")
	}
}

func TestProvisioningRejectsWrongMeasurement(t *testing.T) {
	device := New(DefaultCostModel(), []byte("rectifier-build-1"))
	evil := New(DefaultCostModel(), []byte("patched-rectifier"))
	vendor := NewVendor(device.Measurement(), device)
	nonce := freshNonce(t)

	sess, err := evil.BeginProvisioning(nonce)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := vendor.Provision(nonce, sess.Report, sess.PublicKey(), []byte("secret")); err == nil {
		t.Fatal("vendor provisioned an enclave with the wrong measurement")
	}
}

func TestProvisioningRejectsReplayedNonce(t *testing.T) {
	device := New(DefaultCostModel(), []byte("rectifier-build-1"))
	vendor := NewVendor(device.Measurement(), device)
	nonce := freshNonce(t)
	other := freshNonce(t)

	sess, err := device.BeginProvisioning(nonce)
	if err != nil {
		t.Fatal(err)
	}
	// Vendor challenged with `other`, but the report binds `nonce`.
	if _, _, err := vendor.Provision(other, sess.Report, sess.PublicKey(), []byte("secret")); err == nil {
		t.Fatal("stale report accepted")
	}
}

func TestProvisioningRejectsSubstitutedKey(t *testing.T) {
	device := New(DefaultCostModel(), []byte("rectifier-build-1"))
	vendor := NewVendor(device.Measurement(), device)
	nonce := freshNonce(t)

	sess, err := device.BeginProvisioning(nonce)
	if err != nil {
		t.Fatal(err)
	}
	// A MITM swaps in their own key; the report no longer matches it.
	mitm, err := device.BeginProvisioning(freshNonce(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := vendor.Provision(nonce, sess.Report, mitm.PublicKey(), []byte("secret")); err == nil {
		t.Fatal("key substitution not detected")
	}
}

func TestProvisioningRejectsForgedReport(t *testing.T) {
	device := New(DefaultCostModel(), []byte("rectifier-build-1"))
	vendor := NewVendor(device.Measurement(), device)
	nonce := freshNonce(t)

	sess, err := device.BeginProvisioning(nonce)
	if err != nil {
		t.Fatal(err)
	}
	forged := sess.Report
	forged.MAC[0] ^= 1
	if _, _, err := vendor.Provision(nonce, forged, sess.PublicKey(), []byte("secret")); err == nil {
		t.Fatal("forged report MAC accepted")
	}
}

func TestProvisioningWrongSessionCannotUnwrap(t *testing.T) {
	device := New(DefaultCostModel(), []byte("rectifier-build-1"))
	vendor := NewVendor(device.Measurement(), device)
	nonce := freshNonce(t)

	sess, err := device.BeginProvisioning(nonce)
	if err != nil {
		t.Fatal(err)
	}
	vendorPub, wrapped, err := vendor.Provision(nonce, sess.Report, sess.PublicKey(), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	// A second session (different ephemeral key) must not decrypt it.
	sess2, err := device.BeginProvisioning(freshNonce(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess2.Receive(vendorPub, wrapped); err == nil {
		t.Fatal("payload decrypted by the wrong session")
	}
}

func TestProvisioningTamperedPayloadFails(t *testing.T) {
	device := New(DefaultCostModel(), []byte("rectifier-build-1"))
	vendor := NewVendor(device.Measurement(), device)
	nonce := freshNonce(t)

	sess, _ := device.BeginProvisioning(nonce)
	vendorPub, wrapped, err := vendor.Provision(nonce, sess.Report, sess.PublicKey(), []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	wrapped[len(wrapped)-1] ^= 1
	if _, err := sess.Receive(vendorPub, wrapped); err == nil {
		t.Fatal("tampered payload accepted")
	}
}

func TestProvisioningBadPeerKey(t *testing.T) {
	device := New(DefaultCostModel(), []byte("rectifier-build-1"))
	sess, _ := device.BeginProvisioning(freshNonce(t))
	if _, err := sess.Receive([]byte{1, 2, 3}, []byte("xxxx")); err == nil {
		t.Fatal("malformed vendor key accepted")
	}
}
