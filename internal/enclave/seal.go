package enclave

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
)

// Measure computes the enclave measurement (the MRENCLAVE analogue): a
// SHA-256 hash over the concatenated initial contents, each prefixed with
// its length so distinct partitions cannot collide.
func Measure(contents ...[]byte) [32]byte {
	h := sha256.New()
	var lenBuf [8]byte
	for _, c := range contents {
		n := uint64(len(c))
		for i := 0; i < 8; i++ {
			lenBuf[i] = byte(n >> (8 * i))
		}
		h.Write(lenBuf[:])
		h.Write(c)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// DeriveSealKey derives the enclave's sealing key from its measurement,
// modelling MRENCLAVE-bound sealing (EGETKEY): only an enclave with the
// same measurement can unseal.
func DeriveSealKey(measurement [32]byte) []byte {
	h := sha256.Sum256(append([]byte("gnnvault-seal-v1|"), measurement[:]...))
	return h[:]
}

// Seal encrypts data under the enclave's sealing key with AES-256-GCM.
// The nonce is prepended to the ciphertext. Sealed blobs are what GNNVault
// stores on the untrusted filesystem: rectifier parameters and the private
// COO adjacency.
func (e *Enclave) Seal(data []byte) ([]byte, error) {
	aead, err := newAEAD(e.sealKey)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("enclave: nonce: %w", err)
	}
	return aead.Seal(nonce, nonce, data, e.measurement[:]), nil
}

// Unseal authenticates and decrypts a blob produced by Seal on an enclave
// with the same measurement.
func (e *Enclave) Unseal(blob []byte) ([]byte, error) {
	aead, err := newAEAD(e.sealKey)
	if err != nil {
		return nil, err
	}
	if len(blob) < aead.NonceSize() {
		return nil, fmt.Errorf("enclave: sealed blob too short (%d bytes)", len(blob))
	}
	nonce, ct := blob[:aead.NonceSize()], blob[aead.NonceSize():]
	pt, err := aead.Open(nil, nonce, ct, e.measurement[:])
	if err != nil {
		return nil, fmt.Errorf("enclave: unseal failed (wrong enclave identity or tampered blob): %w", err)
	}
	return pt, nil
}

func newAEAD(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("enclave: cipher: %w", err)
	}
	return cipher.NewGCM(block)
}

// AttestationReport is a minimal local-attestation structure: the
// measurement plus a MAC over caller-supplied report data, as produced by
// EREPORT. It lets the model owner verify they are talking to the intended
// rectifier enclave before provisioning secrets.
type AttestationReport struct {
	Measurement [32]byte
	ReportData  [32]byte
	MAC         [32]byte
}

// Report produces an attestation report binding reportData to this
// enclave's identity.
func (e *Enclave) Report(reportData [32]byte) AttestationReport {
	mac := sha256.New()
	mac.Write(e.sealKey) // stand-in for the platform report key
	mac.Write(e.measurement[:])
	mac.Write(reportData[:])
	var m [32]byte
	copy(m[:], mac.Sum(nil))
	return AttestationReport{Measurement: e.measurement, ReportData: reportData, MAC: m}
}

// VerifyReport checks a report against an expected measurement, using the
// verifier enclave's knowledge of the report key (local attestation between
// enclaves with the same sealing authority).
func (e *Enclave) VerifyReport(r AttestationReport) bool {
	if r.Measurement != e.measurement {
		return false
	}
	want := e.Report(r.ReportData)
	return want.MAC == r.MAC
}
