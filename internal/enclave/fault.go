package enclave

import (
	"errors"
	"fmt"
	"math/rand"
)

// Fault injection. Real SGX enclaves die: the EPC is reclaimed on machine
// reboot or S3 sleep, attestation can be revoked, and the AEX path kills
// an enclave whose host thread faults. A production deployment must treat
// every ECALL as fallible, so the simulator makes enclave loss a first-
// class, deterministic event: a FaultPlan scripts (or seeds) exactly when
// an enclave aborts, slows down, or loses EPC headroom, and the rest of
// the stack — fleet barriers, shard recovery, circuit breakers — is built
// and tested against it. Like every other cost in this package the faults
// are modelled, not measured, so chaos runs reproduce bit-for-bit.

// ErrEnclaveLost is returned by Ecall/EcallMeasured when the enclave has
// crashed (a FaultPlan abort, standing in for reboot, EPC reclaim or
// attestation revocation on real hardware). It is deliberately distinct
// from ErrEPCExhausted: exhaustion is a capacity failure answered by
// eviction or tiling, while a lost enclave is gone — the only remedy is
// re-creating and re-provisioning it (core.ShardedVault.RecoverShard).
var ErrEnclaveLost = errors.New("enclave: enclave lost")

// FaultPlan is a deterministic fault schedule for one enclave, installed
// with SetFaultPlan. Every trigger counts ECALL ordinals — 0-based,
// counted from installation — so tests and benches inject crashes at
// exact points without touching call sites.
type FaultPlan struct {
	// AbortECalls lists ECALL ordinals that abort with ErrEnclaveLost
	// before the body runs. An abort marks the enclave lost for good:
	// every subsequent ECALL fails the same way until the deployment
	// replaces the enclave.
	AbortECalls []int64
	// AbortRate injects seeded random crashes: each ECALL aborts with
	// this probability, drawn from a rand.Rand seeded with Seed at
	// installation. 0 disables random aborts.
	AbortRate float64
	// Seed seeds the random-abort stream; two enclaves given the same
	// plan crash on the same ordinals.
	Seed int64
	// SpikeEvery charges SpikeNs of extra modelled transition latency on
	// every SpikeEvery-th ECALL (a periodic latency spike — host
	// preemption, interrupt storms). 0 disables spikes.
	SpikeEvery int64
	// SpikeNs is the modelled nanoseconds one latency spike adds.
	SpikeNs int64
	// SqueezeBytes models a transient EPC squeeze (another enclave on the
	// platform ballooning): while the ECALL ordinal is in [SqueezeFrom,
	// SqueezeUntil), Alloc sees the EPC capacity reduced by this many
	// bytes. 0 disables the squeeze.
	SqueezeBytes int64
	// SqueezeFrom is the first ECALL ordinal of the squeeze window.
	SqueezeFrom int64
	// SqueezeUntil is the first ordinal past the squeeze window.
	SqueezeUntil int64
}

// SetFaultPlan installs (or, with nil, removes) the enclave's fault plan
// and restarts its ECALL ordinal count. Installing a plan does not revive
// a lost enclave — loss is permanent by design.
func (e *Enclave) SetFaultPlan(p *FaultPlan) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.fault = p
	e.faultCalls = 0
	e.faultRNG = nil
	if p != nil && p.AbortRate > 0 {
		e.faultRNG = rand.New(rand.NewSource(p.Seed))
	}
}

// Lost reports whether the enclave has crashed. A lost enclave fails
// every ECALL with ErrEnclaveLost; its ledger and EPC accounting remain
// readable for post-mortems.
func (e *Enclave) Lost() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.lost
}

// MarkLost force-crashes the enclave, as if a fault plan had aborted its
// next ECALL — the hook chaos drivers use to kill a shard "now" without
// waiting for a scheduled ordinal.
func (e *Enclave) MarkLost() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.lost = true
}

// faultECallLocked runs the fault plan for one ECALL: called with e.mu
// held, before any ledger accounting, so an aborted call charges nothing
// (real SGX rejects entry to a dead enclave at the gate). It returns the
// error the ECALL must fail with, or nil to proceed.
func (e *Enclave) faultECallLocked() error {
	if e.lost {
		return fmt.Errorf("%w: ECALL into a dead enclave", ErrEnclaveLost)
	}
	p := e.fault
	if p == nil {
		return nil
	}
	ord := e.faultCalls
	e.faultCalls++
	abort := false
	for _, a := range p.AbortECalls {
		if a == ord {
			abort = true
			break
		}
	}
	if !abort && e.faultRNG != nil && e.faultRNG.Float64() < p.AbortRate {
		abort = true
	}
	if abort {
		e.lost = true
		return fmt.Errorf("%w: ECALL %d aborted by fault plan", ErrEnclaveLost, ord)
	}
	if p.SpikeEvery > 0 && (ord+1)%p.SpikeEvery == 0 {
		e.ledger.TransitionNs += p.SpikeNs
	}
	return nil
}

// squeezeLocked returns the EPC bytes a transient squeeze currently
// withholds from Alloc. Called with e.mu held.
func (e *Enclave) squeezeLocked() int64 {
	p := e.fault
	if p == nil || p.SqueezeBytes <= 0 {
		return 0
	}
	if e.faultCalls >= p.SqueezeFrom && e.faultCalls < p.SqueezeUntil {
		return p.SqueezeBytes
	}
	return 0
}
