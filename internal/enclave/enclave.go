// Package enclave is a software model of an Intel SGX trusted enclave, the
// substitution for the paper's real SGX deployment (see DESIGN.md).
//
// The model captures the three SGX properties that drive the paper's
// real-world results:
//
//  1. Capacity — the Enclave Page Cache is limited (96 MB of the 128 MB
//     PRM); allocations are accounted and exceeding the EPC incurs a
//     per-page swap penalty, reproducing the "full GNN does not fit"
//     argument of Sec. III-C and Fig. 6 (bottom).
//  2. Transition cost — every ECALL crosses the world boundary, paying a
//     fixed switch latency plus a per-byte marshalling + memory-encryption
//     cost, reproducing the transfer component of Fig. 6 (top).
//  3. Confidentiality — enclave state is sealed at rest (AES-GCM) with a
//     key derived from the enclave measurement (SHA-256 of its initial
//     contents), and the public API makes it impossible to read enclave
//     memory from the untrusted side.
//
// Time is modelled, not measured: every operation adds to a deterministic
// cost ledger, so experiments are reproducible on any host. Real compute
// time of in-enclave code is measured separately by the caller and reported
// alongside the modelled overheads.
package enclave

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// CostModel holds the SGX cost constants used by the simulator. Defaults
// follow published measurements for client SGX parts (Skylake-era, as in
// the paper's i7-7700 testbed).
type CostModel struct {
	// ECallLatency is the fixed cost of an enclave transition (world
	// switch, TLB flush). ~8 µs on the paper's hardware generation.
	ECallLatency time.Duration
	// OCallLatency is the fixed cost of an outside call from the enclave.
	OCallLatency time.Duration
	// TransferBytesPerSec is the throughput of copying data across the
	// boundary, including the MEE encryption on EPC writes (~2 GB/s).
	TransferBytesPerSec float64
	// EPCBytes is the usable Enclave Page Cache (96 MB on SGX1).
	EPCBytes int64
	// PageBytes is the EPC page granularity.
	PageBytes int64
	// PageSwapLatency is the cost of evicting + reloading one EPC page
	// (encryption, integrity tree update). ~40 µs.
	PageSwapLatency time.Duration
	// ComputeSlowdown scales in-enclave compute time relative to the
	// normal world (MEE overhead on memory-bound kernels, no AVX-512
	// license, single-threaded enclave). ~1.2×.
	ComputeSlowdown float64
}

// DefaultCostModel returns the SGX1 client-platform constants used
// throughout the experiments.
func DefaultCostModel() CostModel {
	return CostModel{
		ECallLatency:        8 * time.Microsecond,
		OCallLatency:        8 * time.Microsecond,
		TransferBytesPerSec: 2e9,
		EPCBytes:            96 << 20,
		PageBytes:           4096,
		PageSwapLatency:     40 * time.Microsecond,
		ComputeSlowdown:     1.2,
	}
}

// Ledger accumulates the modelled costs of everything an enclave did.
type Ledger struct {
	ECalls        int
	OCalls        int
	BytesIn       int64
	BytesOut      int64
	PageSwaps     int64
	TransitionNs  int64 // modelled world-switch time
	TransferNs    int64 // modelled marshalling/encryption time
	PagingNs      int64 // modelled EPC paging time
	ComputeNs     int64 // in-enclave compute (measured, then scaled)
	PeakEPCBytes  int64
	AllocFailures int
}

// TransferTime returns the total modelled boundary-crossing time.
func (l Ledger) TransferTime() time.Duration {
	return time.Duration(l.TransitionNs + l.TransferNs)
}

// EnclaveTime returns modelled in-enclave time (compute + paging).
func (l Ledger) EnclaveTime() time.Duration {
	return time.Duration(l.ComputeNs + l.PagingNs)
}

// Total returns the full modelled enclave-side cost.
func (l Ledger) Total() time.Duration {
	return l.TransferTime() + l.EnclaveTime()
}

// ErrEPCExhausted is returned when an allocation would exceed the hard EPC
// budget and paging is disabled.
var ErrEPCExhausted = errors.New("enclave: EPC exhausted")

// Enclave models one trusted compartment: an EPC allocator, a cost ledger,
// a measurement, and a sealing identity.
//
// EPC accounting and the ledger are goroutine-safe so one enclave can
// serve a pool of inference workers, and can host several deployed vaults
// at once (core.DeployInto + internal/registry — the paper's edge device
// answering a request stream for many models). Ecall bodies themselves run
// on the calling goroutine
// without holding the lock — in-enclave code must still be single-threaded
// per call, and bodies may re-enter Alloc/Free.
type Enclave struct {
	mu          sync.Mutex
	cost        CostModel
	epcUsed     int64
	ledger      Ledger
	measurement [32]byte
	sealKey     []byte
	// AllowPaging selects the EPC-overflow policy: if true, allocations
	// beyond EPCBytes succeed but pay PageSwapLatency per page on every
	// subsequent touch; if false they fail with ErrEPCExhausted.
	AllowPaging bool

	// Fault-injection state (fault.go): the installed plan, the ECALL
	// ordinal counter it schedules against, the seeded random-abort
	// stream, and the crashed flag — once lost, every ECALL fails with
	// ErrEnclaveLost until the deployment replaces the enclave.
	fault      *FaultPlan
	faultCalls int64
	faultRNG   *rand.Rand
	lost       bool
}

// New creates an enclave with the given cost model and an initial
// measurement over initContents (the code+data the loader would hash into
// MRENCLAVE). The sealing key is derived from the measurement.
func New(cost CostModel, initContents ...[]byte) *Enclave {
	e := &Enclave{cost: cost}
	e.measurement = Measure(initContents...)
	e.sealKey = DeriveSealKey(e.measurement)
	return e
}

// Measurement returns the enclave's MRENCLAVE-analogue.
func (e *Enclave) Measurement() [32]byte { return e.measurement }

// Ledger returns a snapshot of the accumulated cost ledger.
func (e *Enclave) Ledger() Ledger {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ledger
}

// ResetLedger clears the cost counters (EPC usage is preserved).
func (e *Enclave) ResetLedger() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ledger = Ledger{PeakEPCBytes: e.epcUsed}
}

// ResetPeak rebases the ledger's EPC peak to the current usage without
// touching any other counter. Inference paths call it per request so
// PeakEPCBytes reports the call's own high-water mark; when several
// requests share the enclave concurrently the peak is a property of the
// enclave, not of one call.
func (e *Enclave) ResetPeak() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ledger.PeakEPCBytes = e.epcUsed
}

// EPCUsed returns the current accounted EPC allocation.
func (e *Enclave) EPCUsed() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epcUsed
}

// EPCLimit returns the configured EPC capacity.
func (e *Enclave) EPCLimit() int64 { return e.cost.EPCBytes }

// EPCFree returns the unallocated EPC headroom. With paging enabled usage
// may exceed capacity, in which case EPCFree reports zero.
func (e *Enclave) EPCFree() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if free := e.cost.EPCBytes - e.epcUsed; free > 0 {
		return free
	}
	return 0
}

// Alloc accounts an allocation of n bytes of enclave memory. If the
// allocation pushes usage beyond the EPC and paging is disabled, it fails;
// with paging enabled it succeeds and the overflow is charged as page
// swaps.
func (e *Enclave) Alloc(n int64) error {
	if n < 0 {
		return fmt.Errorf("enclave: negative allocation %d", n)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	capacity := e.cost.EPCBytes - e.squeezeLocked()
	newUsed := e.epcUsed + n
	if newUsed > capacity {
		if !e.AllowPaging {
			e.ledger.AllocFailures++
			return fmt.Errorf("%w: %d + %d > %d", ErrEPCExhausted, e.epcUsed, n, capacity)
		}
		over := newUsed - capacity
		pages := (over + e.cost.PageBytes - 1) / e.cost.PageBytes
		e.ledger.PageSwaps += pages
		e.ledger.PagingNs += pages * e.cost.PageSwapLatency.Nanoseconds()
	}
	e.epcUsed = newUsed
	if e.epcUsed > e.ledger.PeakEPCBytes {
		e.ledger.PeakEPCBytes = e.epcUsed
	}
	return nil
}

// Free releases n bytes of accounted enclave memory.
func (e *Enclave) Free(n int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n < 0 || n > e.epcUsed {
		panic(fmt.Sprintf("enclave: bad free %d (used %d)", n, e.epcUsed))
	}
	e.epcUsed -= n
}

// Ecall models a call into the enclave carrying payloadBytes of input and
// returning resultBytes: one transition each way plus marshalling time,
// then runs fn and charges its wall time scaled by ComputeSlowdown.
//
// fn runs on the calling goroutine; in-enclave code must be written
// single-threaded (the nn layers' Serial mode) for the model to be honest.
//
// When a FaultPlan aborts the call (or the enclave is already lost), fn
// never runs, nothing is charged, and the error wraps ErrEnclaveLost.
func (e *Enclave) Ecall(payloadBytes, resultBytes int64, fn func() error) error {
	e.mu.Lock()
	if err := e.faultECallLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	e.ledger.ECalls++
	e.ledger.BytesIn += payloadBytes
	e.ledger.BytesOut += resultBytes
	e.ledger.TransitionNs += e.cost.ECallLatency.Nanoseconds() + e.cost.OCallLatency.Nanoseconds()
	if e.cost.TransferBytesPerSec > 0 {
		ns := float64(payloadBytes+resultBytes) / e.cost.TransferBytesPerSec * 1e9
		e.ledger.TransferNs += int64(ns)
	}
	e.mu.Unlock()
	// fn runs without the lock so it may re-enter Alloc/Free (and so a slow
	// body does not block unrelated ledger reads).
	start := time.Now()
	err := fn()
	elapsed := time.Since(start)
	e.mu.Lock()
	e.ledger.ComputeNs += int64(float64(elapsed.Nanoseconds()) * e.cost.ComputeSlowdown)
	e.mu.Unlock()
	return err
}

// EcallMeasured models an enclave entry whose body reports its own
// in-enclave busy time instead of having it measured from the wall clock.
// Transition, transfer and byte accounting match Ecall exactly; the
// returned busy nanoseconds are charged as compute (scaled by
// ComputeSlowdown like measured compute). Fleet shard ECALLs use it: on a
// shared simulation host a shard's wall time includes fleet-barrier waits
// and interleaved peer compute, which distinct enclaves on real
// multi-enclave hardware would overlap — charging wall time would bill
// the whole fleet's work to every shard.
func (e *Enclave) EcallMeasured(payloadBytes, resultBytes int64, fn func() (busyNs int64, err error)) error {
	e.mu.Lock()
	if err := e.faultECallLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	e.ledger.ECalls++
	e.ledger.BytesIn += payloadBytes
	e.ledger.BytesOut += resultBytes
	e.ledger.TransitionNs += e.cost.ECallLatency.Nanoseconds() + e.cost.OCallLatency.Nanoseconds()
	if e.cost.TransferBytesPerSec > 0 {
		ns := float64(payloadBytes+resultBytes) / e.cost.TransferBytesPerSec * 1e9
		e.ledger.TransferNs += int64(ns)
	}
	e.mu.Unlock()
	busyNs, err := fn()
	e.mu.Lock()
	e.ledger.ComputeNs += int64(float64(busyNs) * e.cost.ComputeSlowdown)
	e.mu.Unlock()
	return err
}

// Ocall models a call out of the enclave (fixed transition cost only).
func (e *Enclave) Ocall() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ledger.OCalls++
	e.ledger.TransitionNs += e.cost.OCallLatency.Nanoseconds()
}
