package enclave

import (
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
)

// Secret provisioning: how the model vendor's rectifier weights and private
// graph reach the device enclave in the first place. The flow models SGX
// remote attestation followed by an authenticated ECDH key exchange:
//
//  1. the vendor sends a nonce;
//  2. the enclave generates an ephemeral X25519 key pair *inside* the
//     enclave and returns its public key inside an attestation report whose
//     report data binds (nonce, public key);
//  3. the vendor verifies the report against the expected measurement,
//     derives the shared secret, and wraps the payload with AES-GCM;
//  4. the enclave unwraps the payload and (typically) re-seals it under its
//     sealing key for storage.
//
// The MAC on the report stands in for the Intel attestation signature — in
// this simulation the vendor verifies through a Verifier bound to the same
// platform key, mirroring how a real verifier trusts Intel's QE.

// ProvisioningSession is the enclave-side state of one provisioning run.
type ProvisioningSession struct {
	enclave *Enclave
	priv    *ecdh.PrivateKey
	// Report binds the enclave identity and the session public key to the
	// vendor's nonce.
	Report AttestationReport
}

// BeginProvisioning starts a provisioning session: the enclave generates an
// ephemeral key pair and produces an attestation report over
// SHA-256(nonce ‖ publicKey).
func (e *Enclave) BeginProvisioning(nonce [32]byte) (*ProvisioningSession, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("enclave: provisioning keygen: %w", err)
	}
	s := &ProvisioningSession{enclave: e, priv: priv}
	s.Report = e.Report(bindReportData(nonce, priv.PublicKey().Bytes()))
	return s, nil
}

// PublicKey returns the session's ephemeral public key bytes.
func (s *ProvisioningSession) PublicKey() []byte { return s.priv.PublicKey().Bytes() }

// Receive unwraps a payload the vendor encrypted to this session and
// returns the plaintext (now enclave-resident).
func (s *ProvisioningSession) Receive(vendorPub, wrapped []byte) ([]byte, error) {
	key, err := sessionKey(s.priv, vendorPub)
	if err != nil {
		return nil, err
	}
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	if len(wrapped) < aead.NonceSize() {
		return nil, fmt.Errorf("enclave: wrapped payload too short")
	}
	pt, err := aead.Open(nil, wrapped[:aead.NonceSize()], wrapped[aead.NonceSize():], s.enclave.measurement[:])
	if err != nil {
		return nil, fmt.Errorf("enclave: provisioning unwrap failed: %w", err)
	}
	return pt, nil
}

// Vendor is the model owner's side of provisioning. It knows the expected
// enclave measurement and (in this simulation) shares the platform report
// key with the target platform, standing in for Intel's attestation
// service.
type Vendor struct {
	Expected [32]byte
	platform *Enclave // used only to verify report MACs
}

// NewVendor creates a vendor that will only provision enclaves measuring
// expected, verifying reports against the given platform.
func NewVendor(expected [32]byte, platform *Enclave) *Vendor {
	return &Vendor{Expected: expected, platform: platform}
}

// Provision verifies the session report against the vendor's nonce and
// expected measurement, then wraps payload for the enclave. It returns the
// vendor's ephemeral public key and the wrapped ciphertext.
func (v *Vendor) Provision(nonce [32]byte, report AttestationReport, enclavePub, payload []byte) (vendorPub, wrapped []byte, err error) {
	if report.Measurement != v.Expected {
		return nil, nil, fmt.Errorf("enclave: refusing to provision: measurement %x, want %x",
			report.Measurement[:4], v.Expected[:4])
	}
	if report.ReportData != bindReportData(nonce, enclavePub) {
		return nil, nil, fmt.Errorf("enclave: report does not bind this nonce and key")
	}
	if !v.platform.VerifyReport(report) {
		return nil, nil, fmt.Errorf("enclave: attestation report MAC invalid")
	}
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("enclave: vendor keygen: %w", err)
	}
	key, err := sessionKey(priv, enclavePub)
	if err != nil {
		return nil, nil, err
	}
	aead, err := newAEAD(key)
	if err != nil {
		return nil, nil, err
	}
	n := make([]byte, aead.NonceSize())
	if _, err := rand.Read(n); err != nil {
		return nil, nil, fmt.Errorf("enclave: nonce: %w", err)
	}
	wrapped = aead.Seal(n, n, payload, report.Measurement[:])
	return priv.PublicKey().Bytes(), wrapped, nil
}

func bindReportData(nonce [32]byte, pub []byte) [32]byte {
	h := sha256.New()
	h.Write(nonce[:])
	h.Write(pub)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func sessionKey(priv *ecdh.PrivateKey, peerPub []byte) ([]byte, error) {
	peer, err := ecdh.X25519().NewPublicKey(peerPub)
	if err != nil {
		return nil, fmt.Errorf("enclave: bad peer key: %w", err)
	}
	shared, err := priv.ECDH(peer)
	if err != nil {
		return nil, fmt.Errorf("enclave: ECDH: %w", err)
	}
	key := sha256.Sum256(append([]byte("gnnvault-provision-v1|"), shared...))
	return key[:], nil
}
