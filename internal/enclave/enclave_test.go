package enclave

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"gnnvault/internal/mat"
)

func testEnclave() *Enclave {
	return New(DefaultCostModel(), []byte("rectifier-code"), []byte("graph"))
}

func TestMeasureDeterministic(t *testing.T) {
	a := Measure([]byte("x"), []byte("y"))
	b := Measure([]byte("x"), []byte("y"))
	if a != b {
		t.Fatal("measurement not deterministic")
	}
}

func TestMeasureLengthPrefixed(t *testing.T) {
	// ("ab", "c") and ("a", "bc") must measure differently.
	if Measure([]byte("ab"), []byte("c")) == Measure([]byte("a"), []byte("bc")) {
		t.Fatal("measurement collides across partition boundaries")
	}
}

func TestMeasureOrderSensitive(t *testing.T) {
	if Measure([]byte("a"), []byte("b")) == Measure([]byte("b"), []byte("a")) {
		t.Fatal("measurement ignores order")
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	e := testEnclave()
	secret := []byte("private adjacency matrix in COO format")
	blob, err := e.Seal(secret)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if bytes.Contains(blob, secret) {
		t.Fatal("sealed blob contains plaintext")
	}
	got, err := e.Unseal(blob)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("unsealed data differs")
	}
}

func TestUnsealWrongEnclaveFails(t *testing.T) {
	e1 := New(DefaultCostModel(), []byte("enclave-one"))
	e2 := New(DefaultCostModel(), []byte("enclave-two"))
	blob, err := e1.Seal([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Unseal(blob); err == nil {
		t.Fatal("enclave with different measurement unsealed the blob")
	}
}

func TestUnsealTamperedBlobFails(t *testing.T) {
	e := testEnclave()
	blob, err := e.Seal([]byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 1
	if _, err := e.Unseal(blob); err == nil {
		t.Fatal("tampered blob unsealed")
	}
}

func TestUnsealShortBlobFails(t *testing.T) {
	e := testEnclave()
	if _, err := e.Unseal([]byte{1, 2, 3}); err == nil {
		t.Fatal("short blob unsealed")
	}
}

func TestSealNondeterministicNonce(t *testing.T) {
	e := testEnclave()
	b1, _ := e.Seal([]byte("x"))
	b2, _ := e.Seal([]byte("x"))
	if bytes.Equal(b1, b2) {
		t.Fatal("two seals of the same plaintext are identical (nonce reuse)")
	}
}

func TestAllocWithinEPC(t *testing.T) {
	e := testEnclave()
	if err := e.Alloc(1 << 20); err != nil {
		t.Fatalf("Alloc 1MB: %v", err)
	}
	if e.EPCUsed() != 1<<20 {
		t.Fatalf("EPCUsed = %d", e.EPCUsed())
	}
	e.Free(1 << 20)
	if e.EPCUsed() != 0 {
		t.Fatalf("EPCUsed after free = %d", e.EPCUsed())
	}
}

func TestAllocBeyondEPCFailsWithoutPaging(t *testing.T) {
	e := testEnclave()
	err := e.Alloc(e.EPCLimit() + 1)
	if !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("err = %v, want ErrEPCExhausted", err)
	}
	if e.Ledger().AllocFailures != 1 {
		t.Fatal("failure not recorded")
	}
}

func TestAllocBeyondEPCPagesWithPaging(t *testing.T) {
	e := testEnclave()
	e.AllowPaging = true
	if err := e.Alloc(e.EPCLimit() + 8192); err != nil {
		t.Fatalf("paged alloc failed: %v", err)
	}
	l := e.Ledger()
	if l.PageSwaps != 2 {
		t.Fatalf("PageSwaps = %d, want 2 (8192/4096)", l.PageSwaps)
	}
	if l.PagingNs != 2*DefaultCostModel().PageSwapLatency.Nanoseconds() {
		t.Fatalf("PagingNs = %d", l.PagingNs)
	}
}

func TestAllocNegativeFails(t *testing.T) {
	e := testEnclave()
	if err := e.Alloc(-5); err == nil {
		t.Fatal("negative alloc accepted")
	}
}

func TestFreeTooMuchPanics(t *testing.T) {
	e := testEnclave()
	defer func() {
		if recover() == nil {
			t.Fatal("over-free did not panic")
		}
	}()
	e.Free(1)
}

func TestPeakEPCTracked(t *testing.T) {
	e := testEnclave()
	e.Alloc(100) //nolint:errcheck
	e.Alloc(200) //nolint:errcheck
	e.Free(250)
	if e.Ledger().PeakEPCBytes != 300 {
		t.Fatalf("peak = %d, want 300", e.Ledger().PeakEPCBytes)
	}
}

func TestEcallLedger(t *testing.T) {
	e := testEnclave()
	ran := false
	err := e.Ecall(1000, 10, func() error {
		ran = true
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil || !ran {
		t.Fatalf("Ecall err=%v ran=%v", err, ran)
	}
	l := e.Ledger()
	if l.ECalls != 1 || l.BytesIn != 1000 || l.BytesOut != 10 {
		t.Fatalf("ledger = %+v", l)
	}
	if l.TransitionNs != (8000 + 8000) {
		t.Fatalf("TransitionNs = %d", l.TransitionNs)
	}
	wantTransfer := int64(float64(l.BytesIn+l.BytesOut) / 2e9 * 1e9)
	if l.TransferNs != wantTransfer {
		t.Fatalf("TransferNs = %d, want %d", l.TransferNs, wantTransfer)
	}
	// Compute is measured (≥1 ms) and scaled by 1.2.
	if l.ComputeNs < int64(1.1e6) {
		t.Fatalf("ComputeNs = %d, want ≥ 1.1ms", l.ComputeNs)
	}
}

func TestEcallPropagatesError(t *testing.T) {
	e := testEnclave()
	want := errors.New("boom")
	if err := e.Ecall(0, 0, func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
}

func TestOcall(t *testing.T) {
	e := testEnclave()
	e.Ocall()
	if e.Ledger().OCalls != 1 || e.Ledger().TransitionNs != 8000 {
		t.Fatalf("ledger = %+v", e.Ledger())
	}
}

func TestResetLedgerPreservesEPC(t *testing.T) {
	e := testEnclave()
	e.Alloc(500) //nolint:errcheck
	e.Ocall()
	e.ResetLedger()
	l := e.Ledger()
	if l.OCalls != 0 || l.PeakEPCBytes != 500 || e.EPCUsed() != 500 {
		t.Fatalf("reset wrong: %+v used=%d", l, e.EPCUsed())
	}
}

func TestLedgerTotals(t *testing.T) {
	l := Ledger{TransitionNs: 100, TransferNs: 200, PagingNs: 300, ComputeNs: 400}
	if l.TransferTime() != 300*time.Nanosecond {
		t.Fatalf("TransferTime = %v", l.TransferTime())
	}
	if l.EnclaveTime() != 700*time.Nanosecond {
		t.Fatalf("EnclaveTime = %v", l.EnclaveTime())
	}
	if l.Total() != time.Microsecond {
		t.Fatalf("Total = %v", l.Total())
	}
}

func TestAttestationRoundTrip(t *testing.T) {
	e := testEnclave()
	var data [32]byte
	copy(data[:], "model-owner-nonce")
	r := e.Report(data)
	if !e.VerifyReport(r) {
		t.Fatal("valid report rejected")
	}
	r.MAC[0] ^= 1
	if e.VerifyReport(r) {
		t.Fatal("forged MAC accepted")
	}
}

func TestAttestationWrongMeasurementRejected(t *testing.T) {
	e1 := New(DefaultCostModel(), []byte("a"))
	e2 := New(DefaultCostModel(), []byte("b"))
	r := e1.Report([32]byte{})
	if e2.VerifyReport(r) {
		t.Fatal("report from a different enclave accepted")
	}
}

func TestChannelSendRecv(t *testing.T) {
	e := testEnclave()
	ch, up := NewChannel(e)
	m := mat.FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err := up.Send(m); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, ok := ch.Recv()
	if !ok || !got.Equal(m) {
		t.Fatal("Recv lost the payload")
	}
	if _, ok := ch.Recv(); ok {
		t.Fatal("Recv on empty channel returned ok")
	}
}

func TestChannelDeepCopies(t *testing.T) {
	e := testEnclave()
	ch, up := NewChannel(e)
	m := mat.FromSlice(1, 1, []float64{1})
	up.Send(m) //nolint:errcheck
	m.Data[0] = 999
	got, _ := ch.Recv()
	if got.Data[0] != 1 {
		t.Fatal("untrusted mutation reached enclave memory")
	}
}

func TestChannelAccountsEPC(t *testing.T) {
	e := testEnclave()
	ch, up := NewChannel(e)
	m := mat.New(16, 16) // 2048 bytes
	up.Send(m)           //nolint:errcheck
	if e.EPCUsed() != 2048 {
		t.Fatalf("EPCUsed = %d, want 2048", e.EPCUsed())
	}
	ch.Drain()
	if e.EPCUsed() != 0 {
		t.Fatalf("EPCUsed after drain = %d", e.EPCUsed())
	}
}

func TestChannelClosedRejectsSend(t *testing.T) {
	e := testEnclave()
	ch, up := NewChannel(e)
	up.Close()
	if err := up.Send(mat.New(1, 1)); !errors.Is(err, ErrChannelClosed) {
		t.Fatalf("err = %v, want ErrChannelClosed", err)
	}
	ch.Drain() // reopens
	if err := up.Send(mat.New(1, 1)); err != nil {
		t.Fatalf("Send after drain: %v", err)
	}
}

func TestChannelSendFailsWhenEPCFull(t *testing.T) {
	cm := DefaultCostModel()
	cm.EPCBytes = 100
	e := New(cm, []byte("tiny"))
	_, up := NewChannel(e)
	if err := up.Send(mat.New(16, 16)); !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("err = %v, want ErrEPCExhausted", err)
	}
}

func TestChannelPending(t *testing.T) {
	e := testEnclave()
	ch, up := NewChannel(e)
	up.Send(mat.New(1, 1)) //nolint:errcheck
	up.Send(mat.New(1, 1)) //nolint:errcheck
	if ch.Pending() != 2 {
		t.Fatalf("Pending = %d", ch.Pending())
	}
}

func TestPropSealRoundTrip(t *testing.T) {
	e := testEnclave()
	f := func(data []byte) bool {
		blob, err := e.Seal(data)
		if err != nil {
			return false
		}
		got, err := e.Unseal(blob)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropAllocFreeBalance(t *testing.T) {
	f := func(sizes []uint16) bool {
		e := testEnclave()
		var total int64
		for _, s := range sizes {
			if err := e.Alloc(int64(s)); err != nil {
				return false
			}
			total += int64(s)
		}
		if e.EPCUsed() != total {
			return false
		}
		e.Free(total)
		return e.EPCUsed() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestChannelDrainFreesReceived(t *testing.T) {
	e := testEnclave()
	ch, up := NewChannel(e)
	up.Send(mat.New(8, 8)) //nolint:errcheck
	if _, ok := ch.Recv(); !ok {
		t.Fatal("Recv failed")
	}
	if e.EPCUsed() == 0 {
		t.Fatal("received embedding should stay EPC-resident until Drain")
	}
	ch.Drain()
	if e.EPCUsed() != 0 {
		t.Fatalf("EPCUsed after drain = %d", e.EPCUsed())
	}
}
