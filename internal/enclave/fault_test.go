package enclave

import (
	"errors"
	"testing"
)

func noopEcall() error { return nil }

// TestFaultScriptedAbort pins the scripted crash: the listed ECALL
// ordinal aborts with ErrEnclaveLost before the body runs, charges
// nothing, and the enclave stays lost afterwards.
func TestFaultScriptedAbort(t *testing.T) {
	e := New(DefaultCostModel(), []byte("m"))
	e.SetFaultPlan(&FaultPlan{AbortECalls: []int64{2}})

	ran := 0
	body := func() error { ran++; return nil }
	for i := 0; i < 2; i++ {
		if err := e.Ecall(8, 8, body); err != nil {
			t.Fatalf("ECALL %d before the scripted abort failed: %v", i, err)
		}
	}
	ledgerBefore := e.Ledger()
	if err := e.Ecall(8, 8, body); !errors.Is(err, ErrEnclaveLost) {
		t.Fatalf("scripted ECALL 2 returned %v, want ErrEnclaveLost", err)
	}
	if ran != 2 {
		t.Fatalf("aborted ECALL ran its body (%d bodies ran, want 2)", ran)
	}
	if !e.Lost() {
		t.Fatal("enclave not marked lost after the abort")
	}
	if got := e.Ledger(); got != ledgerBefore {
		t.Fatalf("aborted ECALL changed the ledger: %+v -> %+v", ledgerBefore, got)
	}
	// Loss is permanent: later calls fail too, including EcallMeasured.
	if err := e.Ecall(8, 8, body); !errors.Is(err, ErrEnclaveLost) {
		t.Fatalf("post-loss Ecall returned %v, want ErrEnclaveLost", err)
	}
	if err := e.EcallMeasured(8, 8, func() (int64, error) { return 0, nil }); !errors.Is(err, ErrEnclaveLost) {
		t.Fatalf("post-loss EcallMeasured returned %v, want ErrEnclaveLost", err)
	}
	// Installing a new plan does not revive a lost enclave.
	e.SetFaultPlan(nil)
	if err := e.Ecall(8, 8, body); !errors.Is(err, ErrEnclaveLost) {
		t.Fatalf("lost enclave revived by SetFaultPlan(nil): %v", err)
	}
}

// TestFaultSeededAbortDeterministic pins that two enclaves under the same
// seeded plan crash on the same ECALL ordinal.
func TestFaultSeededAbortDeterministic(t *testing.T) {
	crashOrdinal := func(seed int64) int {
		e := New(DefaultCostModel(), []byte("m"))
		e.SetFaultPlan(&FaultPlan{AbortRate: 0.05, Seed: seed})
		for i := 0; i < 10_000; i++ {
			if err := e.Ecall(0, 0, noopEcall); err != nil {
				if !errors.Is(err, ErrEnclaveLost) {
					t.Fatalf("seeded abort returned %v, want ErrEnclaveLost", err)
				}
				return i
			}
		}
		return -1
	}
	a, b := crashOrdinal(7), crashOrdinal(7)
	if a != b {
		t.Fatalf("same seed crashed at ordinals %d and %d", a, b)
	}
	if a < 0 {
		t.Fatal("rate 0.05 never crashed in 10k ECALLs")
	}
}

// TestFaultLatencySpike pins the periodic latency spike: every
// SpikeEvery-th ECALL charges SpikeNs extra transition time and nothing
// else changes.
func TestFaultLatencySpike(t *testing.T) {
	cost := DefaultCostModel()
	e := New(cost, []byte("m"))
	e.SetFaultPlan(&FaultPlan{SpikeEvery: 3, SpikeNs: 1_000_000})

	perCall := cost.ECallLatency.Nanoseconds() + cost.OCallLatency.Nanoseconds()
	for i := 0; i < 6; i++ {
		if err := e.Ecall(0, 0, noopEcall); err != nil {
			t.Fatalf("ECALL %d: %v", i, err)
		}
	}
	want := 6*perCall + 2*1_000_000 // spikes on ordinals 2 and 5
	if got := e.Ledger().TransitionNs; got != want {
		t.Fatalf("TransitionNs = %d, want %d (2 spikes over 6 ECALLs)", got, want)
	}
}

// TestFaultEPCSqueeze pins the transient squeeze: Alloc fails with
// ErrEPCExhausted while the ECALL ordinal is inside the window and
// succeeds again once it passes.
func TestFaultEPCSqueeze(t *testing.T) {
	cost := DefaultCostModel()
	cost.EPCBytes = 1 << 20
	e := New(cost, []byte("m"))
	e.SetFaultPlan(&FaultPlan{SqueezeBytes: 1 << 20, SqueezeFrom: 1, SqueezeUntil: 2})

	if err := e.Alloc(512); err != nil {
		t.Fatalf("Alloc before the squeeze window: %v", err)
	}
	if err := e.Ecall(0, 0, noopEcall); err != nil { // ordinal 0 -> counter now 1
		t.Fatalf("Ecall: %v", err)
	}
	if err := e.Alloc(512); !errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("Alloc inside the squeeze returned %v, want ErrEPCExhausted", err)
	}
	if err := e.Ecall(0, 0, noopEcall); err != nil { // counter now 2, window closed
		t.Fatalf("Ecall: %v", err)
	}
	if err := e.Alloc(512); err != nil {
		t.Fatalf("Alloc after the squeeze window: %v", err)
	}
}

// TestEnclaveLostDisjointFromEPCExhausted pins the sentinel contract the
// serving layers map to distinct HTTP statuses and recovery actions.
func TestEnclaveLostDisjointFromEPCExhausted(t *testing.T) {
	if errors.Is(ErrEnclaveLost, ErrEPCExhausted) || errors.Is(ErrEPCExhausted, ErrEnclaveLost) {
		t.Fatal("ErrEnclaveLost and ErrEPCExhausted must be disjoint")
	}
	e := New(DefaultCostModel(), []byte("m"))
	e.MarkLost()
	err := e.Ecall(0, 0, noopEcall)
	if !errors.Is(err, ErrEnclaveLost) || errors.Is(err, ErrEPCExhausted) {
		t.Fatalf("lost-enclave error %v must wrap ErrEnclaveLost only", err)
	}
}
