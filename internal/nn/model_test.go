package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

func buildGCN(rng *rand.Rand, adj *graph.NormAdjacency, dims ...int) *Model {
	var layers []Layer
	for i := 0; i+1 < len(dims); i++ {
		layers = append(layers, NewGCNConv(rng, dims[i], dims[i+1], adj))
		if i+2 < len(dims) {
			layers = append(layers, NewReLU())
		}
	}
	return NewModel(layers...)
}

func TestModelForwardCollect(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	adj := testAdj(12, 20)
	m := buildGCN(rng, adj, 6, 4, 3)
	x := mat.RandNormal(rng, 12, 6, 0, 1)
	out, acts := m.ForwardCollect(x, false)
	if len(acts) != 3 { // gcn, relu, gcn
		t.Fatalf("activations = %d, want 3", len(acts))
	}
	if !acts[len(acts)-1].Equal(out) {
		t.Fatal("last activation != output")
	}
	if acts[0].Cols != 4 || out.Cols != 3 {
		t.Fatal("activation widths wrong")
	}
}

func TestModelNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	adj := testAdj(5, 21)
	m := buildGCN(rng, adj, 10, 8, 4)
	want := (10*8 + 8) + (8*4 + 4)
	if m.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", m.NumParams(), want)
	}
	if m.ParamBytes() != int64(want)*8 {
		t.Fatalf("ParamBytes = %d", m.ParamBytes())
	}
}

func TestModelSetSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	adj := testAdj(8, 22)
	m := NewModel(NewGCNConv(rng, 3, 2, adj), NewReLU(), NewDense(rng, 2, 2))
	m.SetSerial(true)
	if !m.Layers[0].(*GCNConv).Serial || !m.Layers[2].(*Dense).Serial {
		t.Fatal("SetSerial did not reach all layers")
	}
	m.SetSerial(false)
	if m.Layers[0].(*GCNConv).Serial {
		t.Fatal("SetSerial(false) did not clear")
	}
}

func TestGradCheckGCN(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 9
	adj := testAdj(n, 23)
	m := buildGCN(rng, adj, 5, 4, 3)
	x := mat.RandNormal(rng, n, 5, 0, 1)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	mask := []int{0, 2, 4, 6}
	lossFn := func(out *mat.Matrix) (float64, *mat.Matrix) {
		return MaskedCrossEntropy(out, labels, mask)
	}
	if worst := GradCheck(m, x, lossFn, 0); worst > 1e-4 {
		t.Fatalf("GCN gradient check failed: worst relative error %v", worst)
	}
}

func TestGradCheckDenseMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := NewModel(NewDense(rng, 6, 5), NewReLU(), NewDense(rng, 5, 3))
	x := mat.RandNormal(rng, 7, 6, 0, 1)
	labels := []int{0, 1, 2, 0, 1, 2, 0}
	mask := []int{0, 1, 2, 3}
	lossFn := func(out *mat.Matrix) (float64, *mat.Matrix) {
		return MaskedCrossEntropy(out, labels, mask)
	}
	if worst := GradCheck(m, x, lossFn, 0); worst > 1e-4 {
		t.Fatalf("MLP gradient check failed: worst relative error %v", worst)
	}
}

func TestGradCheckDeepMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	n := 8
	adj := testAdj(n, 25)
	m := NewModel(
		NewGCNConv(rng, 4, 6, adj),
		NewReLU(),
		NewGCNConv(rng, 6, 4, adj),
		NewReLU(),
		NewDense(rng, 4, 2),
	)
	x := mat.RandNormal(rng, n, 4, 0, 1)
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	mask := []int{0, 1, 2, 3, 4}
	lossFn := func(out *mat.Matrix) (float64, *mat.Matrix) {
		return MaskedCrossEntropy(out, labels, mask)
	}
	if worst := GradCheck(m, x, lossFn, 0); worst > 1e-4 {
		t.Fatalf("deep mixed gradient check failed: worst %v", worst)
	}
}

func TestAdamReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	n := 30
	g, labels := graph.PlantedPartition(graph.PlantedPartitionConfig{
		Nodes: n, Classes: 3, AvgDegree: 6, Homophily: 0.9, Seed: 26,
	})
	adj := graph.Normalize(g)
	x := mat.RandNormal(rng, n, 8, 0, 1)
	// Make features weakly informative of the class.
	for i := 0; i < n; i++ {
		x.Set(i, labels[i], x.At(i, labels[i])+1.0)
	}
	m := buildGCN(rng, adj, 8, 8, 3)
	mask := make([]int, n)
	for i := range mask {
		mask[i] = i
	}
	opt := NewAdam(0.02, 0)
	var first, last float64
	for epoch := 0; epoch < 60; epoch++ {
		out := m.Forward(x, true)
		loss, dOut := MaskedCrossEntropy(out, labels, mask)
		if epoch == 0 {
			first = loss
		}
		last = loss
		m.Backward(dOut)
		opt.Step(m.Params())
	}
	if last >= first/2 {
		t.Fatalf("Adam failed to optimise: first %v, last %v", first, last)
	}
}

func TestAdamZeroesGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	l := NewDense(rng, 3, 2)
	m := NewModel(l)
	x := mat.RandNormal(rng, 4, 3, 0, 1)
	out := m.Forward(x, true)
	_, dOut := MaskedCrossEntropy(out, []int{0, 1, 0, 1}, []int{0, 1})
	m.Backward(dOut)
	NewAdam(0.01, 0).Step(m.Params())
	for _, p := range m.Params() {
		for _, g := range p.Grad.Data {
			if g != 0 {
				t.Fatal("gradient accumulator not zeroed after Step")
			}
		}
	}
}

func TestZeroGrad(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	l := NewDense(rng, 2, 2)
	l.dwAcc.Data[0] = 5
	ZeroGrad(l.Params())
	if l.dwAcc.Data[0] != 0 {
		t.Fatal("ZeroGrad did not clear")
	}
}

func TestAdamWeightDecayShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	l := NewDense(rng, 4, 4)
	m := NewModel(l)
	before := l.W.Norm()
	opt := NewAdam(0.01, 0.5)
	x := mat.New(2, 4) // zero input → zero data gradient, only decay acts
	for i := 0; i < 50; i++ {
		out := m.Forward(x, true)
		_, dOut := MaskedCrossEntropy(out, []int{0, 1}, []int{0})
		m.Backward(dOut)
		opt.Step(m.Params())
	}
	if l.W.Norm() >= before {
		t.Fatalf("weight decay did not shrink weights: %v → %v", before, l.W.Norm())
	}
}

func TestParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	adj := testAdj(6, 30)
	m1 := buildGCN(rng, adj, 4, 3, 2)
	blob := m1.MarshalParams()

	m2 := buildGCN(rand.New(rand.NewSource(99)), adj, 4, 3, 2)
	if err := m2.UnmarshalParams(blob); err != nil {
		t.Fatalf("UnmarshalParams: %v", err)
	}
	x := mat.RandNormal(rng, 6, 4, 0, 1)
	if !m1.Forward(x, false).EqualApprox(m2.Forward(x, false), 1e-12) {
		t.Fatal("round-tripped model computes different outputs")
	}
}

func TestUnmarshalParamsRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	adj := testAdj(4, 31)
	m := buildGCN(rng, adj, 3, 2)
	blob := m.MarshalParams()

	if err := m.UnmarshalParams(blob[:3]); err == nil {
		t.Error("truncated header accepted")
	}
	bad := append([]byte{}, blob...)
	bad[0] ^= 0xFF
	if err := m.UnmarshalParams(bad); err == nil {
		t.Error("bad magic accepted")
	}
	other := buildGCN(rng, adj, 3, 3) // different shape
	if err := other.UnmarshalParams(blob); err == nil {
		t.Error("shape mismatch accepted")
	}
	if err := m.UnmarshalParams(append(blob, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestPropParamsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		din := 1 + rng.Intn(6)
		dh := 1 + rng.Intn(6)
		dout := 1 + rng.Intn(4)
		adj := testAdj(5, seed)
		m1 := buildGCN(rng, adj, din, dh, dout)
		m2 := buildGCN(rand.New(rand.NewSource(seed+1)), adj, din, dh, dout)
		if err := m2.UnmarshalParams(m1.MarshalParams()); err != nil {
			return false
		}
		x := mat.RandNormal(rng, 5, din, 0, 1)
		return m1.Forward(x, false).EqualApprox(m2.Forward(x, false), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropSoftmaxInvariantToShift(t *testing.T) {
	// softmax(x + c·1) = softmax(x)
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 100 {
			shift = 1.5
		}
		rng := rand.New(rand.NewSource(seed))
		x := mat.RandNormal(rng, 3, 5, 0, 2)
		shifted := x.Apply(func(v float64) float64 { return v + shift })
		return Softmax(x).EqualApprox(Softmax(shifted), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
