package nn

import (
	"fmt"
	"math"
	"math/rand"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

// GATConv is a single-head graph attention layer (Veličković et al.), the
// second architecture named in the paper's future work:
//
//	z_i    = W·x_i
//	e_ij   = LeakyReLU(aₛ·z_i + aₜ·z_j)        for j ∈ N(i) ∪ {i}
//	α_i·   = softmax_j(e_ij)
//	y_i    = Σ_j α_ij z_j + b
//
// Attention coefficients are recomputed per forward pass over a fixed
// CSR structure (adjacency with self loops).
type GATConv struct {
	InDim, OutDim int
	W             *mat.Matrix
	ASrc, ADst    []float64 // aₛ, aₜ — the split attention vector
	B             []float64
	NegSlope      float64 // LeakyReLU slope, default 0.2

	dW           *mat.Matrix
	dASrc, dADst []float64
	dbAcc        []float64

	struct_ *graph.NormAdjacency // adjacency structure incl. self loops
	Serial  bool

	// training caches
	xCache     *mat.Matrix
	zCache     *mat.Matrix
	alphaCache []float64 // per-edge attention, aligned with struct_ nnz
	preCache   []float64 // pre-activation e_ij before LeakyReLU
}

// NewGATConv constructs a single-head GAT layer over g.
func NewGATConv(rng *rand.Rand, inDim, outDim int, g *graph.Graph) *GATConv {
	if g == nil {
		panic("nn: GATConv requires a graph")
	}
	aSrc := make([]float64, outDim)
	aDst := make([]float64, outDim)
	bound := math.Sqrt(6.0 / float64(outDim+1))
	for i := range aSrc {
		aSrc[i] = (2*rng.Float64() - 1) * bound
		aDst[i] = (2*rng.Float64() - 1) * bound
	}
	return &GATConv{
		InDim:    inDim,
		OutDim:   outDim,
		W:        mat.Glorot(rng, inDim, outDim),
		ASrc:     aSrc,
		ADst:     aDst,
		B:        make([]float64, outDim),
		NegSlope: 0.2,
		dW:       mat.New(inDim, outDim),
		dASrc:    make([]float64, outDim),
		dADst:    make([]float64, outDim),
		dbAcc:    make([]float64, outDim),
		struct_:  graph.SelfLoopAdjacency(g),
	}
}

// Forward computes attention-weighted aggregation.
func (l *GATConv) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	if x.Cols != l.InDim {
		panic(fmt.Sprintf("nn: GATConv input dim %d, want %d", x.Cols, l.InDim))
	}
	var z *mat.Matrix
	if l.Serial {
		z = mat.MatMulSerial(x, l.W)
	} else {
		z = mat.MatMul(x, l.W)
	}
	n := z.Rows
	s := make([]float64, n) // aₛ·z_i
	t := make([]float64, n) // aₜ·z_j
	for i := 0; i < n; i++ {
		zi := z.Row(i)
		var ss, tt float64
		for k, v := range zi {
			ss += l.ASrc[k] * v
			tt += l.ADst[k] * v
		}
		s[i], t[i] = ss, tt
	}

	st := l.struct_
	alpha := make([]float64, st.NNZ())
	pre := make([]float64, st.NNZ())
	out := mat.New(n, l.OutDim)
	for i := 0; i < n; i++ {
		lo, hi := st.RowPtr[i], st.RowPtr[i+1]
		// Numerically stable softmax over the neighbourhood.
		mx := math.Inf(-1)
		for p := lo; p < hi; p++ {
			e := s[i] + t[st.ColIdx[p]]
			pre[p] = e
			if e < 0 {
				e *= l.NegSlope
			}
			alpha[p] = e
			if e > mx {
				mx = e
			}
		}
		sum := 0.0
		for p := lo; p < hi; p++ {
			alpha[p] = math.Exp(alpha[p] - mx)
			sum += alpha[p]
		}
		orow := out.Row(i)
		for p := lo; p < hi; p++ {
			alpha[p] /= sum
			zj := z.Row(st.ColIdx[p])
			a := alpha[p]
			for k, v := range zj {
				orow[k] += a * v
			}
		}
	}
	if train {
		l.xCache = x
		l.zCache = z
		l.alphaCache = alpha
		l.preCache = pre
	}
	return out.AddRowVector(l.B)
}

// Backward returns dL/dX, accumulating dW, daₛ, daₜ, db. See the package
// tests for the finite-difference verification of this derivation.
func (l *GATConv) Backward(dOut *mat.Matrix) *mat.Matrix {
	if l.xCache == nil {
		panic("nn: GATConv.Backward before Forward(train=true)")
	}
	st := l.struct_
	n := dOut.Rows
	z := l.zCache
	dz := mat.New(n, l.OutDim)
	ds := make([]float64, n)
	dt := make([]float64, n)

	for i := 0; i < n; i++ {
		lo, hi := st.RowPtr[i], st.RowPtr[i+1]
		dyi := dOut.Row(i)

		// dα_ij = dy_i · z_j, and softmax backward needs the row dot
		// Σ_k α_ik dα_ik.
		rowDot := 0.0
		dAlpha := make([]float64, hi-lo)
		for p := lo; p < hi; p++ {
			zj := z.Row(st.ColIdx[p])
			d := 0.0
			for k, v := range dyi {
				d += v * zj[k]
			}
			dAlpha[p-lo] = d
			rowDot += l.alphaCache[p] * d
		}
		for p := lo; p < hi; p++ {
			j := st.ColIdx[p]
			a := l.alphaCache[p]
			// Output term: dz_j += α_ij dy_i.
			dzj := dz.Row(j)
			for k, v := range dyi {
				dzj[k] += a * v
			}
			// Softmax + LeakyReLU backward to the logit e_ij.
			de := a * (dAlpha[p-lo] - rowDot)
			if l.preCache[p] < 0 {
				de *= l.NegSlope
			}
			ds[i] += de
			dt[j] += de
		}
	}

	// Attention-vector gradients and their contribution to dz.
	for i := 0; i < n; i++ {
		zi := z.Row(i)
		dzi := dz.Row(i)
		for k := range l.ASrc {
			l.dASrc[k] += ds[i] * zi[k]
			l.dADst[k] += dt[i] * zi[k]
			dzi[k] += ds[i]*l.ASrc[k] + dt[i]*l.ADst[k]
		}
	}
	for j, v := range dOut.ColSums() {
		l.dbAcc[j] += v
	}
	l.dW.AddInPlace(mat.MatMulTransAWorkers(l.xCache, dz, kernelBudget(l.Serial)))
	return mat.MatMulTransBWorkers(dz, l.W, kernelBudget(l.Serial))
}

// Params exposes W, aₛ, aₜ and b.
func (l *GATConv) Params() []Param {
	return []Param{
		{Name: "W", W: l.W, Grad: l.dW},
		{Name: "aSrc", W: mat.FromSlice(1, l.OutDim, l.ASrc), Grad: mat.FromSlice(1, l.OutDim, l.dASrc)},
		{Name: "aDst", W: mat.FromSlice(1, l.OutDim, l.ADst), Grad: mat.FromSlice(1, l.OutDim, l.dADst)},
		{Name: "b", W: mat.FromSlice(1, l.OutDim, l.B), Grad: mat.FromSlice(1, l.OutDim, l.dbAcc)},
	}
}

// NumParams returns InDim·OutDim + 3·OutDim.
func (l *GATConv) NumParams() int { return l.InDim*l.OutDim + 3*l.OutDim }

// SetSerialMode switches the dense projection between parallel and
// single-threaded execution (attention itself is always serial).
func (l *GATConv) SetSerialMode(serial bool) { l.Serial = serial }

// MultiHeadGAT concatenates H independent GAT heads (the standard
// multi-head attention of Veličković et al. for hidden layers). OutDim is
// the total width; it must be divisible by the head count.
type MultiHeadGAT struct {
	InDim, OutDim int
	Heads         []*GATConv
}

// NewMultiHeadGAT builds heads GAT heads of width outDim/heads each.
func NewMultiHeadGAT(rng *rand.Rand, inDim, outDim, heads int, g *graph.Graph) *MultiHeadGAT {
	if heads < 1 || outDim%heads != 0 {
		panic(fmt.Sprintf("nn: MultiHeadGAT outDim %d not divisible by heads %d", outDim, heads))
	}
	m := &MultiHeadGAT{InDim: inDim, OutDim: outDim}
	for h := 0; h < heads; h++ {
		m.Heads = append(m.Heads, NewGATConv(rng, inDim, outDim/heads, g))
	}
	return m
}

// Forward concatenates the head outputs.
func (m *MultiHeadGAT) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	outs := make([]*mat.Matrix, len(m.Heads))
	for h, head := range m.Heads {
		outs[h] = head.Forward(x, train)
	}
	return mat.HConcat(outs...)
}

// Backward splits the output gradient per head and sums the input
// gradients.
func (m *MultiHeadGAT) Backward(dOut *mat.Matrix) *mat.Matrix {
	width := m.OutDim / len(m.Heads)
	var dx *mat.Matrix
	for h, head := range m.Heads {
		d := head.Backward(dOut.SliceCols(h*width, (h+1)*width))
		if dx == nil {
			dx = d
		} else {
			dx.AddInPlace(d)
		}
	}
	return dx
}

// Params concatenates every head's parameters.
func (m *MultiHeadGAT) Params() []Param {
	var ps []Param
	for _, head := range m.Heads {
		ps = append(ps, head.Params()...)
	}
	return ps
}

// NumParams sums the heads.
func (m *MultiHeadGAT) NumParams() int {
	n := 0
	for _, head := range m.Heads {
		n += head.NumParams()
	}
	return n
}

// SetSerialMode forwards to every head.
func (m *MultiHeadGAT) SetSerialMode(serial bool) {
	for _, head := range m.Heads {
		head.SetSerialMode(serial)
	}
}
