package nn

import (
	"math/rand"
	"testing"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

// wsTestLayers builds one of each workspace-capable layer over a shared
// random graph, paired with its input width.
func wsTestLayers(rng *rand.Rand, g *graph.Graph) []struct {
	name  string
	layer WorkspaceLayer
	inDim int
} {
	adj := graph.Normalize(g)
	return []struct {
		name  string
		layer WorkspaceLayer
		inDim int
	}{
		{"gcn", NewGCNConv(rng, 6, 4, adj), 6},
		{"dense", NewDense(rng, 6, 4), 6},
		{"relu", NewReLU(), 5},
		{"dropout", NewDropout(rng, 0.5), 5},
		{"sage", NewSAGEConv(rng, 6, 4, g), 6},
		{"gat", NewGATConv(rng, 6, 4, g), 6},
		{"multihead", NewMultiHeadGAT(rng, 6, 4, 2, g), 6},
	}
}

func TestForwardWSMatchesForwardPerLayer(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	g := graph.Random(18, 36, 30)
	x := map[int]*mat.Matrix{
		6: mat.RandNormal(rng, 18, 6, 0, 1),
		5: mat.RandNormal(rng, 18, 5, 0, 1),
	}
	for _, tc := range wsTestLayers(rng, g) {
		t.Run(tc.name, func(t *testing.T) {
			in := x[tc.inDim]
			want := tc.layer.Forward(in, false)
			ws, outCols := tc.layer.PlanWorkspace(18, tc.inDim)
			if want.Cols != outCols {
				t.Fatalf("planned out width %d, forward produced %d", outCols, want.Cols)
			}
			for pass := 0; pass < 2; pass++ { // reuse must be stable
				got := tc.layer.ForwardWS(in, ws)
				if !got.EqualApprox(want, 1e-12) {
					t.Fatalf("pass %d: ForwardWS disagrees with Forward", pass)
				}
			}
		})
	}
}

func TestForwardWSSerialMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.Random(20, 40, 31)
	x := mat.RandNormal(rng, 20, 6, 0, 1)
	for _, tc := range wsTestLayers(rng, g) {
		gc, ok := tc.layer.(GraphConv)
		if !ok || tc.inDim != 6 {
			continue
		}
		ws, _ := tc.layer.PlanWorkspace(20, 6)
		par := tc.layer.ForwardWS(x, ws).Clone()
		gc.SetSerialMode(true)
		ser := tc.layer.ForwardWS(x, ws)
		gc.SetSerialMode(false)
		if !par.EqualApprox(ser, 1e-12) {
			t.Fatalf("%s: serial ForwardWS disagrees with parallel", tc.name)
		}
	}
}

// TestLayerWorkspaceNumBytes pins the per-layer footprint accounting the
// exec engine's opaque-op EPC charges are built on.
func TestLayerWorkspaceNumBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g := graph.Random(10, 20, 34)
	adj := graph.Normalize(g)
	ws, _ := NewGCNConv(rng, 4, 3, adj).PlanWorkspace(10, 4)
	// GCN: two 10×3 buffers.
	if got, want := ws.NumBytes(), int64(2*10*3*8); got != want {
		t.Fatalf("NumBytes = %d, want %d", got, want)
	}
}

func TestPlanWorkspaceDimMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	g := graph.Random(8, 16, 35)
	l := NewSAGEConv(rng, 4, 2, g)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched plan width did not panic")
		}
	}()
	l.PlanWorkspace(8, 5)
}
