package nn

import (
	"math"
	"math/rand"
	"testing"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

// The structural tests for graph.MeanAdjacency / graph.SelfLoopAdjacency /
// graph.Transpose moved to internal/graph/aggregate_test.go, next to the
// code they exercise.

func TestSAGEConvShapesAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := graph.Random(12, 24, 3)
	l := NewSAGEConv(rng, 6, 4, g)
	out := l.Forward(mat.RandNormal(rng, 12, 6, 0, 1), false)
	if out.Rows != 12 || out.Cols != 4 {
		t.Fatalf("shape = %s", out.Shape())
	}
	if l.NumParams() != 2*6*4+4 {
		t.Fatalf("NumParams = %d", l.NumParams())
	}
}

func TestSAGEConvIsolatedNodeUsesSelfOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.New(3, []graph.Edge{{U: 0, V: 1}}) // node 2 isolated
	l := NewSAGEConv(rng, 2, 2, g)
	x := mat.FromSlice(3, 2, []float64{1, 0, 0, 1, 2, 2})
	out := l.Forward(x, false)
	want := mat.MatMul(x.SliceRows(2, 3), l.WSelf).AddRowVector(l.B)
	for k := 0; k < 2; k++ {
		if math.Abs(out.At(2, k)-want.At(0, k)) > 1e-12 {
			t.Fatalf("isolated node output %v, want self-term only %v", out.Row(2), want.Row(0))
		}
	}
}

func TestGradCheckSAGE(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.Random(9, 18, 5)
	m := NewModel(NewSAGEConv(rng, 5, 4, g), NewReLU(), NewSAGEConv(rng, 4, 3, g))
	x := mat.RandNormal(rng, 9, 5, 0, 1)
	labels := []int{0, 1, 2, 0, 1, 2, 0, 1, 2}
	lossFn := func(out *mat.Matrix) (float64, *mat.Matrix) {
		return MaskedCrossEntropy(out, labels, []int{0, 2, 4, 6})
	}
	if worst := GradCheck(m, x, lossFn, 0); worst > 1e-4 {
		t.Fatalf("SAGE gradient check failed: worst %v", worst)
	}
}

func TestGATConvShapesAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.Random(10, 20, 6)
	l := NewGATConv(rng, 5, 3, g)
	out := l.Forward(mat.RandNormal(rng, 10, 5, 0, 1), false)
	if out.Rows != 10 || out.Cols != 3 {
		t.Fatalf("shape = %s", out.Shape())
	}
	if l.NumParams() != 5*3+3*3 {
		t.Fatalf("NumParams = %d", l.NumParams())
	}
}

func TestGATAttentionSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.Random(14, 28, 7)
	l := NewGATConv(rng, 4, 3, g)
	l.Forward(mat.RandNormal(rng, 14, 4, 0, 1), true)
	st := graph.SelfLoopAdjacency(g)
	for i := 0; i < 14; i++ {
		sum := 0.0
		for p := st.RowPtr[i]; p < st.RowPtr[i+1]; p++ {
			a := l.alphaCache[p]
			if a < 0 || a > 1 {
				t.Fatalf("α out of range: %v", a)
			}
			sum += a
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d attention sums to %v", i, sum)
		}
	}
}

func TestGradCheckGAT(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := graph.Random(8, 16, 8)
	m := NewModel(NewGATConv(rng, 4, 5, g), NewReLU(), NewGATConv(rng, 5, 2, g))
	x := mat.RandNormal(rng, 8, 4, 0, 1)
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	lossFn := func(out *mat.Matrix) (float64, *mat.Matrix) {
		return MaskedCrossEntropy(out, labels, []int{0, 1, 2, 3, 4})
	}
	if worst := GradCheck(m, x, lossFn, 0); worst > 1e-4 {
		t.Fatalf("GAT gradient check failed: worst %v", worst)
	}
}

func TestGATSingleNodeSelfAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.New(1, nil)
	l := NewGATConv(rng, 3, 2, g)
	x := mat.FromSlice(1, 3, []float64{1, 2, 3})
	out := l.Forward(x, false)
	// With a single self loop, α = 1, so y = Wᵀx + b exactly.
	want := mat.MatMul(x, l.W).AddRowVector(l.B)
	if !out.EqualApprox(want, 1e-12) {
		t.Fatalf("self-attention output %v, want %v", out.Data, want.Data)
	}
}

func TestSAGEGATTrainingConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 40
	g, labels := graph.PlantedPartition(graph.PlantedPartitionConfig{
		Nodes: n, Classes: 2, AvgDegree: 6, Homophily: 0.9, Seed: 10,
	})
	x := mat.RandNormal(rng, n, 6, 0, 1)
	for i := 0; i < n; i++ {
		x.Set(i, labels[i], x.At(i, labels[i])+1.5)
	}
	mask := make([]int, n)
	for i := range mask {
		mask[i] = i
	}
	builders := map[string]func() *Model{
		"sage": func() *Model {
			return NewModel(NewSAGEConv(rng, 6, 8, g), NewReLU(), NewSAGEConv(rng, 8, 2, g))
		},
		"gat": func() *Model {
			return NewModel(NewGATConv(rng, 6, 8, g), NewReLU(), NewGATConv(rng, 8, 2, g))
		},
	}
	for name, build := range builders {
		m := build()
		opt := NewAdam(0.02, 0)
		var first, last float64
		for epoch := 0; epoch < 50; epoch++ {
			out := m.Forward(x, true)
			loss, dOut := MaskedCrossEntropy(out, labels, mask)
			if epoch == 0 {
				first = loss
			}
			last = loss
			m.Backward(dOut)
			opt.Step(m.Params())
		}
		if last >= first/2 {
			t.Errorf("%s: did not converge (%v → %v)", name, first, last)
		}
	}
}

func TestSAGESerialMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.Random(30, 60, 11)
	l := NewSAGEConv(rng, 8, 4, g)
	x := mat.RandNormal(rng, 30, 8, 0, 1)
	par := l.Forward(x, false)
	l.Serial = true
	if !par.EqualApprox(l.Forward(x, false), 1e-12) {
		t.Fatal("SAGE serial/parallel mismatch")
	}
}

func TestMultiHeadGATShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	g := graph.Random(12, 24, 20)
	l := NewMultiHeadGAT(rng, 5, 8, 4, g)
	out := l.Forward(mat.RandNormal(rng, 12, 5, 0, 1), false)
	if out.Rows != 12 || out.Cols != 8 {
		t.Fatalf("shape = %s", out.Shape())
	}
	if l.NumParams() != 4*(5*2+3*2) {
		t.Fatalf("NumParams = %d", l.NumParams())
	}
}

func TestMultiHeadGATInvalidHeadsPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := graph.Random(5, 8, 21)
	defer func() {
		if recover() == nil {
			t.Fatal("outDim % heads != 0 did not panic")
		}
	}()
	NewMultiHeadGAT(rng, 4, 7, 2, g)
}

func TestGradCheckMultiHeadGAT(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	g := graph.Random(8, 16, 22)
	m := NewModel(NewMultiHeadGAT(rng, 4, 6, 2, g), NewReLU(), NewGATConv(rng, 6, 2, g))
	x := mat.RandNormal(rng, 8, 4, 0, 1)
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	lossFn := func(out *mat.Matrix) (float64, *mat.Matrix) {
		return MaskedCrossEntropy(out, labels, []int{0, 1, 2, 3, 4})
	}
	if worst := GradCheck(m, x, lossFn, 0); worst > 1e-4 {
		t.Fatalf("multi-head GAT gradient check failed: worst %v", worst)
	}
}

func TestMultiHeadGATSerialMode(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.Random(10, 20, 23)
	l := NewMultiHeadGAT(rng, 4, 4, 2, g)
	l.SetSerialMode(true)
	for _, h := range l.Heads {
		if !h.Serial {
			t.Fatal("SetSerialMode did not reach heads")
		}
	}
}
