package nn

import (
	"fmt"
	"math"

	"gnnvault/internal/mat"
)

// Allocation-free inference. Training allocates freely — it runs once,
// offline — but a deployed vault answers a stream of requests, where
// per-call garbage makes steady-state throughput collector-bound. The
// workspace model splits inference into a one-time *plan* (size every
// buffer from the layer spec) and a hot *execute* step (ForwardWS) that
// touches zero fresh heap. It also mirrors enclave reality: EPC is
// pre-allocated once, not malloc'd per request.

// LayerWorkspace holds one layer's pre-sized scratch buffers. The field
// roles depend on the layer (documented per ForwardWS implementation); Out
// is always the buffer the layer's result lives in, except for identity
// layers, which pass their input through and leave Out nil.
type LayerWorkspace struct {
	Out  *mat.Matrix // layer output
	Tmp  *mat.Matrix // first intermediate (XW, D⁻¹A·X, z, …)
	Tmp2 *mat.Matrix // second intermediate (SAGE neighbour term)
	VecA []float64   // per-node scratch (GAT source attention scores)
	VecB []float64   // per-node scratch (GAT target attention scores)
	Edge []float64   // per-edge scratch (GAT attention coefficients)

	// Workers is this workspace's parallel-kernel budget: 0 resolves to the
	// process-global default, 1 runs inline, larger values cap the fan-out.
	// It is carried per plan (not per process) so concurrent servers with
	// different settings cannot stomp each other; a layer's Serial mode
	// still forces 1 regardless.
	Workers int

	// Heads are sub-workspaces for composite layers (multi-head GAT), and
	// Mats caches their output pointers so concatenation needs no per-call
	// slice.
	Heads []*LayerWorkspace
	Mats  []*mat.Matrix
}

// workers resolves the effective kernel budget for a layer running in this
// workspace: serial layers (in-enclave mode) always run inline.
func (ws *LayerWorkspace) workers(serial bool) int {
	if serial {
		return 1
	}
	return ws.Workers
}

// NumBytes returns the workspace's total buffer footprint, the quantity the
// enclave charges against the EPC at plan time.
func (ws *LayerWorkspace) NumBytes() int64 {
	if ws == nil {
		return 0
	}
	n := int64(len(ws.VecA)+len(ws.VecB)+len(ws.Edge)) * 8
	for _, m := range []*mat.Matrix{ws.Out, ws.Tmp, ws.Tmp2} {
		if m != nil {
			n += m.NumBytes()
		}
	}
	for _, h := range ws.Heads {
		n += h.NumBytes()
	}
	return n
}

// WorkspaceLayer is a layer that supports allocation-free inference:
// PlanWorkspace sizes scratch buffers for a fixed batch height once, and
// ForwardWS runs inference (train=false semantics) writing only into those
// buffers. The returned matrix aliases workspace memory (or the input, for
// identity layers) and is valid until the workspace's next use.
type WorkspaceLayer interface {
	Layer
	// PlanWorkspace returns scratch sized for a rows×inCols input, plus
	// the layer's output width (inCols for shape-preserving layers).
	PlanWorkspace(rows, inCols int) (*LayerWorkspace, int)
	// ForwardWS is the inference-mode forward pass into ws.
	ForwardWS(x *mat.Matrix, ws *LayerWorkspace) *mat.Matrix
}

// PlanWorkspace sizes one XW scratch and one output buffer.
func (l *GCNConv) PlanWorkspace(rows, inCols int) (*LayerWorkspace, int) {
	if inCols != l.InDim {
		panic(fmt.Sprintf("nn: GCNConv plan input dim %d, want %d", inCols, l.InDim))
	}
	return &LayerWorkspace{
		Tmp: mat.New(rows, l.OutDim),
		Out: mat.New(rows, l.OutDim),
	}, l.OutDim
}

// ForwardWS computes Â(XW) + b into ws.Out (XW staged in ws.Tmp).
func (l *GCNConv) ForwardWS(x *mat.Matrix, ws *LayerWorkspace) *mat.Matrix {
	if x.Cols != l.InDim {
		panic(fmt.Sprintf("nn: GCNConv input dim %d, want %d", x.Cols, l.InDim))
	}
	w := ws.workers(l.Serial)
	mat.MatMulWorkersInto(ws.Tmp, x, l.W, w)
	l.adj.MulDenseWorkersInto(ws.Out, ws.Tmp, w)
	mat.AddBiasInto(ws.Out, ws.Out, l.B)
	return ws.Out
}

// PlanWorkspace sizes the single output buffer.
func (l *Dense) PlanWorkspace(rows, inCols int) (*LayerWorkspace, int) {
	if inCols != l.InDim {
		panic(fmt.Sprintf("nn: Dense plan input dim %d, want %d", inCols, l.InDim))
	}
	return &LayerWorkspace{Out: mat.New(rows, l.OutDim)}, l.OutDim
}

// ForwardWS computes XW + b into ws.Out.
func (l *Dense) ForwardWS(x *mat.Matrix, ws *LayerWorkspace) *mat.Matrix {
	if x.Cols != l.InDim {
		panic(fmt.Sprintf("nn: Dense input dim %d, want %d", x.Cols, l.InDim))
	}
	mat.MatMulWorkersInto(ws.Out, x, l.W, ws.workers(l.Serial))
	mat.AddBiasInto(ws.Out, ws.Out, l.B)
	return ws.Out
}

// PlanWorkspace sizes a shape-preserving output buffer. ReLU writes into
// its own buffer (rather than in place) because its input may be a
// backbone embedding that must survive for the rectifier.
func (l *ReLU) PlanWorkspace(rows, inCols int) (*LayerWorkspace, int) {
	return &LayerWorkspace{Out: mat.New(rows, inCols)}, inCols
}

// ForwardWS zeroes negative entries into ws.Out.
func (l *ReLU) ForwardWS(x *mat.Matrix, ws *LayerWorkspace) *mat.Matrix {
	mat.ReLUInto(ws.Out, x)
	return ws.Out
}

// PlanWorkspace needs no buffers: inference-mode dropout is identity.
func (l *Dropout) PlanWorkspace(rows, inCols int) (*LayerWorkspace, int) {
	return &LayerWorkspace{}, inCols
}

// ForwardWS is the identity (inference-mode dropout).
func (l *Dropout) ForwardWS(x *mat.Matrix, ws *LayerWorkspace) *mat.Matrix {
	return x
}

// PlanWorkspace sizes the aggregation scratch (Tmp, rows×InDim), the
// neighbour term (Tmp2) and the output buffer.
func (l *SAGEConv) PlanWorkspace(rows, inCols int) (*LayerWorkspace, int) {
	if inCols != l.InDim {
		panic(fmt.Sprintf("nn: SAGEConv plan input dim %d, want %d", inCols, l.InDim))
	}
	return &LayerWorkspace{
		Tmp:  mat.New(rows, l.InDim),
		Tmp2: mat.New(rows, l.OutDim),
		Out:  mat.New(rows, l.OutDim),
	}, l.OutDim
}

// ForwardWS computes X·W_self + (D⁻¹A·X)·W_nbr + b into ws.Out.
func (l *SAGEConv) ForwardWS(x *mat.Matrix, ws *LayerWorkspace) *mat.Matrix {
	if x.Cols != l.InDim {
		panic(fmt.Sprintf("nn: SAGEConv input dim %d, want %d", x.Cols, l.InDim))
	}
	w := ws.workers(l.Serial)
	l.agg.MulDenseWorkersInto(ws.Tmp, x, w)
	mat.MatMulWorkersInto(ws.Out, x, l.WSelf, w)
	mat.MatMulWorkersInto(ws.Tmp2, ws.Tmp, l.WNbr, w)
	mat.AddInto(ws.Out, ws.Out, ws.Tmp2)
	mat.AddBiasInto(ws.Out, ws.Out, l.B)
	return ws.Out
}

// PlanWorkspace sizes the projection (Tmp), output, per-node score vectors
// and the per-edge attention buffer.
func (l *GATConv) PlanWorkspace(rows, inCols int) (*LayerWorkspace, int) {
	if inCols != l.InDim {
		panic(fmt.Sprintf("nn: GATConv plan input dim %d, want %d", inCols, l.InDim))
	}
	return &LayerWorkspace{
		Tmp:  mat.New(rows, l.OutDim),
		Out:  mat.New(rows, l.OutDim),
		VecA: make([]float64, rows),
		VecB: make([]float64, rows),
		Edge: make([]float64, l.struct_.NNZ()),
	}, l.OutDim
}

// ForwardWS computes attention-weighted aggregation into ws.Out, staging
// z = XW in ws.Tmp, the per-node score dots in VecA/VecB and the per-edge
// softmax in Edge.
func (l *GATConv) ForwardWS(x *mat.Matrix, ws *LayerWorkspace) *mat.Matrix {
	if x.Cols != l.InDim {
		panic(fmt.Sprintf("nn: GATConv input dim %d, want %d", x.Cols, l.InDim))
	}
	z := ws.Tmp
	mat.MatMulWorkersInto(z, x, l.W, ws.workers(l.Serial))
	n := z.Rows
	s, t := ws.VecA, ws.VecB
	for i := 0; i < n; i++ {
		zi := z.Data[i*z.Cols : (i+1)*z.Cols]
		var ss, tt float64
		for k, v := range zi {
			ss += l.ASrc[k] * v
			tt += l.ADst[k] * v
		}
		s[i], t[i] = ss, tt
	}

	st := l.struct_
	alpha := ws.Edge
	out := ws.Out
	out.Zero()
	for i := 0; i < n; i++ {
		lo, hi := st.RowPtr[i], st.RowPtr[i+1]
		mx := math.Inf(-1)
		for p := lo; p < hi; p++ {
			e := s[i] + t[st.ColIdx[p]]
			if e < 0 {
				e *= l.NegSlope
			}
			alpha[p] = e
			if e > mx {
				mx = e
			}
		}
		sum := 0.0
		for p := lo; p < hi; p++ {
			alpha[p] = math.Exp(alpha[p] - mx)
			sum += alpha[p]
		}
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for p := lo; p < hi; p++ {
			alpha[p] /= sum
			zj := z.Data[st.ColIdx[p]*z.Cols : (st.ColIdx[p]+1)*z.Cols]
			a := alpha[p]
			for k, v := range zj {
				orow[k] += a * v
			}
		}
	}
	mat.AddBiasInto(out, out, l.B)
	return out
}

// PlanWorkspace plans every head plus the concatenation buffer.
func (m *MultiHeadGAT) PlanWorkspace(rows, inCols int) (*LayerWorkspace, int) {
	if inCols != m.InDim {
		panic(fmt.Sprintf("nn: MultiHeadGAT plan input dim %d, want %d", inCols, m.InDim))
	}
	ws := &LayerWorkspace{Out: mat.New(rows, m.OutDim)}
	for _, head := range m.Heads {
		hws, _ := head.PlanWorkspace(rows, inCols)
		ws.Heads = append(ws.Heads, hws)
		ws.Mats = append(ws.Mats, hws.Out)
	}
	return ws, m.OutDim
}

// ForwardWS runs every head into its sub-workspace and concatenates into
// ws.Out.
func (m *MultiHeadGAT) ForwardWS(x *mat.Matrix, ws *LayerWorkspace) *mat.Matrix {
	for h, head := range m.Heads {
		head.ForwardWS(x, ws.Heads[h])
	}
	mat.HConcatInto(ws.Out, ws.Mats...)
	return ws.Out
}

// SetWorkers applies a budget to a layer workspace and its composite-head
// sub-workspaces. Exported so executors that plan individual layers (the
// opaque-op fallback in internal/exec programs) can carry their budget in.
func (ws *LayerWorkspace) SetWorkers(n int) {
	ws.Workers = n
	for _, h := range ws.Heads {
		h.SetWorkers(n)
	}
}
