package nn

import (
	"fmt"
	"math"

	"gnnvault/internal/mat"
)

// Softmax returns row-wise softmax probabilities of logits, computed with
// the max-subtraction trick for numerical stability.
func Softmax(logits *mat.Matrix) *mat.Matrix {
	out := mat.New(logits.Rows, logits.Cols)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		orow := out.Row(i)
		mx := math.Inf(-1)
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - mx)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// MaskedCrossEntropy computes the mean softmax cross-entropy over the rows
// listed in mask (the labelled training nodes in semi-supervised node
// classification) and the gradient of that loss w.r.t. the logits.
//
// The gradient is (softmax - onehot)/|mask| on masked rows and zero
// elsewhere, which is exactly the full-batch GCN training signal.
func MaskedCrossEntropy(logits *mat.Matrix, labels []int, mask []int) (loss float64, dLogits *mat.Matrix) {
	if len(labels) != logits.Rows {
		panic(fmt.Sprintf("nn: labels length %d != rows %d", len(labels), logits.Rows))
	}
	if len(mask) == 0 {
		panic("nn: empty training mask")
	}
	probs := Softmax(logits)
	dLogits = mat.New(logits.Rows, logits.Cols)
	inv := 1.0 / float64(len(mask))
	for _, i := range mask {
		if i < 0 || i >= logits.Rows {
			panic(fmt.Sprintf("nn: mask index %d out of range %d", i, logits.Rows))
		}
		y := labels[i]
		if y < 0 || y >= logits.Cols {
			panic(fmt.Sprintf("nn: label %d out of range %d classes", y, logits.Cols))
		}
		p := probs.At(i, y)
		loss -= math.Log(math.Max(p, 1e-300)) * inv
		prow := probs.Row(i)
		drow := dLogits.Row(i)
		for j, pv := range prow {
			drow[j] = pv * inv
		}
		drow[y] -= inv
	}
	return loss, dLogits
}

// Accuracy returns the fraction of rows in mask whose argmax prediction
// matches the label.
func Accuracy(logits *mat.Matrix, labels []int, mask []int) float64 {
	if len(mask) == 0 {
		return 0
	}
	pred := logits.ArgmaxRows()
	correct := 0
	for _, i := range mask {
		if pred[i] == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(mask))
}

// SoftCrossEntropy computes the mean cross-entropy between row-wise target
// probability distributions and the softmax of logits, over the rows in
// mask, plus its gradient w.r.t. the logits. It is the distillation loss a
// model-extraction attacker uses when the victim exposes logits.
func SoftCrossEntropy(logits, targets *mat.Matrix, mask []int) (loss float64, dLogits *mat.Matrix) {
	if !logits.SameShape(targets) {
		panic(fmt.Sprintf("nn: SoftCrossEntropy shape mismatch %s vs %s", logits.Shape(), targets.Shape()))
	}
	if len(mask) == 0 {
		panic("nn: empty training mask")
	}
	probs := Softmax(logits)
	dLogits = mat.New(logits.Rows, logits.Cols)
	inv := 1.0 / float64(len(mask))
	for _, i := range mask {
		if i < 0 || i >= logits.Rows {
			panic(fmt.Sprintf("nn: mask index %d out of range %d", i, logits.Rows))
		}
		prow := probs.Row(i)
		trow := targets.Row(i)
		drow := dLogits.Row(i)
		for j := range prow {
			loss -= trow[j] * math.Log(math.Max(prow[j], 1e-300)) * inv
			drow[j] = (prow[j] - trow[j]) * inv
		}
	}
	return loss, dLogits
}
