package nn

import (
	"math"
	"math/rand"
	"testing"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

func testAdj(n int, seed int64) *graph.NormAdjacency {
	return graph.Normalize(graph.Random(n, 2*n, seed))
}

func TestGCNConvShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	adj := testAdj(10, 1)
	l := NewGCNConv(rng, 6, 4, adj)
	x := mat.RandNormal(rng, 10, 6, 0, 1)
	out := l.Forward(x, false)
	if out.Rows != 10 || out.Cols != 4 {
		t.Fatalf("output shape = %s, want 10x4", out.Shape())
	}
}

func TestGCNConvInputDimPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewGCNConv(rng, 6, 4, testAdj(10, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input dim did not panic")
		}
	}()
	l.Forward(mat.New(10, 5), false)
}

func TestGCNConvNilAdjPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	defer func() {
		if recover() == nil {
			t.Fatal("nil adjacency did not panic")
		}
	}()
	NewGCNConv(rng, 3, 2, nil)
}

func TestGCNConvBackwardBeforeForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewGCNConv(rng, 3, 2, testAdj(5, 4))
	defer func() {
		if recover() == nil {
			t.Fatal("Backward before Forward did not panic")
		}
	}()
	l.Backward(mat.New(5, 2))
}

func TestGCNConvMatchesDenseFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.Random(8, 14, 5)
	adj := graph.Normalize(g)
	l := NewGCNConv(rng, 5, 3, adj)
	for i := range l.B {
		l.B[i] = float64(i) * 0.1
	}
	x := mat.RandNormal(rng, 8, 5, 0, 1)
	want := mat.MatMul(adj.Dense(), mat.MatMul(x, l.W)).AddRowVector(l.B)
	if !l.Forward(x, false).EqualApprox(want, 1e-10) {
		t.Fatal("GCNConv disagrees with dense Â(XW)+b")
	}
}

func TestGCNConvSerialMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewGCNConv(rng, 8, 4, testAdj(30, 6))
	x := mat.RandNormal(rng, 30, 8, 0, 1)
	par := l.Forward(x, false)
	l.Serial = true
	ser := l.Forward(x, false)
	if !par.EqualApprox(ser, 1e-12) {
		t.Fatal("serial and parallel GCNConv disagree")
	}
}

func TestGCNConvSetAdjacency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a1 := testAdj(12, 7)
	a2 := testAdj(12, 8)
	l := NewGCNConv(rng, 4, 3, a1)
	x := mat.RandNormal(rng, 12, 4, 0, 1)
	o1 := l.Forward(x, false)
	l.SetAdjacency(a2)
	if l.Adjacency() != a2 {
		t.Fatal("Adjacency not swapped")
	}
	o2 := l.Forward(x, false)
	if o1.EqualApprox(o2, 1e-12) {
		t.Fatal("swapping adjacency did not change the output")
	}
}

func TestGCNConvNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewGCNConv(rng, 128, 32, testAdj(5, 9))
	if l.NumParams() != 128*32+32 {
		t.Fatalf("NumParams = %d", l.NumParams())
	}
}

func TestDenseForward(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	l := NewDense(rng, 3, 2)
	l.W = mat.FromSlice(3, 2, []float64{1, 0, 0, 1, 1, 1})
	l.B = []float64{10, 20}
	x := mat.FromSlice(1, 3, []float64{1, 2, 3})
	got := l.Forward(x, false)
	want := mat.FromSlice(1, 2, []float64{14, 25})
	if !got.EqualApprox(want, 1e-12) {
		t.Fatalf("Dense forward = %v", got.Data)
	}
}

func TestDenseInputDimPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l := NewDense(rng, 3, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input dim did not panic")
		}
	}()
	l.Forward(mat.New(1, 4), false)
}

func TestReLU(t *testing.T) {
	l := NewReLU()
	x := mat.FromSlice(1, 4, []float64{-1, 0, 2, -3})
	got := l.Forward(x, true)
	want := mat.FromSlice(1, 4, []float64{0, 0, 2, 0})
	if !got.Equal(want) {
		t.Fatalf("ReLU forward = %v", got.Data)
	}
	dx := l.Backward(mat.FromSlice(1, 4, []float64{5, 5, 5, 5}))
	wantDx := mat.FromSlice(1, 4, []float64{0, 0, 5, 0})
	if !dx.Equal(wantDx) {
		t.Fatalf("ReLU backward = %v", dx.Data)
	}
}

func TestDropoutInferenceIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewDropout(rng, 0.5)
	x := mat.RandNormal(rng, 4, 4, 0, 1)
	if l.Forward(x, false) != x {
		t.Fatal("inference-mode dropout should pass input through")
	}
}

func TestDropoutTrainDropsAndRescales(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	l := NewDropout(rng, 0.5)
	x := mat.New(100, 100)
	for i := range x.Data {
		x.Data[i] = 1
	}
	out := l.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range out.Data {
		switch {
		case v == 0:
			zeros++
		case math.Abs(v-2) < 1e-12:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros < 4000 || zeros > 6000 {
		t.Fatalf("dropped %d of 10000, want ≈ 5000", zeros)
	}
	if zeros+twos != 10000 {
		t.Fatal("dropout outputs not partitioned into {0, 2}")
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	l := NewDropout(rng, 0.3)
	x := mat.RandNormal(rng, 10, 10, 0, 1)
	out := l.Forward(x, true)
	ones := mat.New(10, 10)
	for i := range ones.Data {
		ones.Data[i] = 1
	}
	dx := l.Backward(ones)
	for i := range out.Data {
		if (out.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("backward mask disagrees with forward mask")
		}
	}
}

func TestDropoutInvalidProbPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	defer func() {
		if recover() == nil {
			t.Fatal("p=1 did not panic")
		}
	}()
	NewDropout(rng, 1.0)
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	logits := mat.RandNormal(rng, 20, 7, 0, 10)
	p := Softmax(logits)
	for i := 0; i < p.Rows; i++ {
		sum := 0.0
		for _, v := range p.Row(i) {
			if v < 0 || v > 1 {
				t.Fatalf("probability %v outside [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := mat.FromSlice(1, 3, []float64{1000, 1000, 1000})
	p := Softmax(logits)
	for _, v := range p.Data {
		if math.IsNaN(v) || math.Abs(v-1.0/3.0) > 1e-9 {
			t.Fatalf("unstable softmax: %v", p.Data)
		}
	}
}

func TestMaskedCrossEntropyKnownValue(t *testing.T) {
	// Uniform logits over C classes → loss = ln(C).
	logits := mat.New(4, 5)
	loss, grad := MaskedCrossEntropy(logits, []int{0, 1, 2, 3}, []int{0, 1})
	if math.Abs(loss-math.Log(5)) > 1e-9 {
		t.Fatalf("loss = %v, want ln 5", loss)
	}
	// Unmasked rows must have zero gradient.
	for j := 0; j < 5; j++ {
		if grad.At(2, j) != 0 || grad.At(3, j) != 0 {
			t.Fatal("gradient leaked to unmasked rows")
		}
	}
}

func TestMaskedCrossEntropyGradientSigns(t *testing.T) {
	logits := mat.FromSlice(1, 2, []float64{0, 0})
	_, grad := MaskedCrossEntropy(logits, []int{0}, []int{0})
	if grad.At(0, 0) >= 0 || grad.At(0, 1) <= 0 {
		t.Fatalf("gradient signs wrong: %v", grad.Data)
	}
}

func TestMaskedCrossEntropyPanics(t *testing.T) {
	logits := mat.New(2, 3)
	cases := map[string]func(){
		"bad labels len": func() { MaskedCrossEntropy(logits, []int{0}, []int{0}) },
		"empty mask":     func() { MaskedCrossEntropy(logits, []int{0, 1}, nil) },
		"mask range":     func() { MaskedCrossEntropy(logits, []int{0, 1}, []int{5}) },
		"label range":    func() { MaskedCrossEntropy(logits, []int{0, 9}, []int{1}) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAccuracy(t *testing.T) {
	logits := mat.FromSlice(3, 2, []float64{0.9, 0.1, 0.2, 0.8, 0.6, 0.4})
	labels := []int{0, 1, 1}
	if got := Accuracy(logits, labels, []int{0, 1, 2}); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("Accuracy = %v, want 2/3", got)
	}
	if Accuracy(logits, labels, nil) != 0 {
		t.Fatal("empty mask should give 0")
	}
}
