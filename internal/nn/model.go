package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"gnnvault/internal/mat"
)

// Model is an ordered stack of layers trained end-to-end.
type Model struct {
	Layers []Layer
}

// NewModel returns a model over the given layers.
func NewModel(layers ...Layer) *Model { return &Model{Layers: layers} }

// Forward runs the full stack and returns the final output.
func (m *Model) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	h := x
	for _, l := range m.Layers {
		h = l.Forward(h, train)
	}
	return h
}

// ForwardCollect runs the stack and additionally returns the output of
// every layer (in order). GNNVault uses the collected activations as the
// embeddings handed from the public backbone to the private rectifier, and
// the link-stealing attack consumes them as its observation surface.
func (m *Model) ForwardCollect(x *mat.Matrix, train bool) (out *mat.Matrix, activations []*mat.Matrix) {
	h := x
	activations = make([]*mat.Matrix, 0, len(m.Layers))
	for _, l := range m.Layers {
		h = l.Forward(h, train)
		activations = append(activations, h)
	}
	return h, activations
}

// Backward propagates dL/dOutput through the stack, accumulating parameter
// gradients, and returns dL/dInput.
func (m *Model) Backward(dOut *mat.Matrix) *mat.Matrix {
	d := dOut
	for i := len(m.Layers) - 1; i >= 0; i-- {
		d = m.Layers[i].Backward(d)
	}
	return d
}

// Params returns every parameter/gradient pair in the stack.
func (m *Model) Params() []Param {
	var ps []Param
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// NumParams returns the total scalar parameter count (θ in the paper's
// tables).
func (m *Model) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		n += l.NumParams()
	}
	return n
}

// SetSerial toggles single-threaded execution on every layer that supports
// it. The enclave simulator switches the rectifier to serial mode to model
// in-enclave execution.
func (m *Model) SetSerial(serial bool) {
	for _, l := range m.Layers {
		if gc, ok := l.(GraphConv); ok {
			gc.SetSerialMode(serial)
		}
	}
}

// ParamBytes returns the in-memory size of all parameters in bytes, used
// for enclave EPC accounting and sealing.
func (m *Model) ParamBytes() int64 { return int64(m.NumParams()) * 8 }

const paramsMagic = uint32(0x474E5650) // "GNVP"

// MarshalParams serialises every parameter matrix into a compact binary
// blob (the payload GNNVault seals into the enclave at deployment).
func (m *Model) MarshalParams() []byte {
	var buf bytes.Buffer
	w := func(v any) { binary.Write(&buf, binary.LittleEndian, v) } //nolint:errcheck
	ps := m.Params()
	w(paramsMagic)
	w(uint32(len(ps)))
	for _, p := range ps {
		w(uint32(p.W.Rows))
		w(uint32(p.W.Cols))
		w(p.W.Data)
	}
	return buf.Bytes()
}

// UnmarshalParams loads a blob produced by MarshalParams into the model's
// existing parameter tensors. Shapes must match exactly.
func (m *Model) UnmarshalParams(data []byte) error {
	r := bytes.NewReader(data)
	var magic, count uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("nn: params header: %w", err)
	}
	if magic != paramsMagic {
		return fmt.Errorf("nn: bad params magic %#x", magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: params count: %w", err)
	}
	ps := m.Params()
	if int(count) != len(ps) {
		return fmt.Errorf("nn: params count %d, model has %d", count, len(ps))
	}
	for i, p := range ps {
		var rows, cols uint32
		if err := binary.Read(r, binary.LittleEndian, &rows); err != nil {
			return fmt.Errorf("nn: param %d rows: %w", i, err)
		}
		if err := binary.Read(r, binary.LittleEndian, &cols); err != nil {
			return fmt.Errorf("nn: param %d cols: %w", i, err)
		}
		if int(rows) != p.W.Rows || int(cols) != p.W.Cols {
			return fmt.Errorf("nn: param %d shape %dx%d, model wants %s", i, rows, cols, p.W.Shape())
		}
		if err := binary.Read(r, binary.LittleEndian, p.W.Data); err != nil {
			return fmt.Errorf("nn: param %d data: %w", i, err)
		}
	}
	if r.Len() != 0 {
		return fmt.Errorf("nn: %d trailing bytes after params", r.Len())
	}
	return nil
}
