package nn

import (
	"fmt"
	"math/rand"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

// SAGEConv is a GraphSAGE layer with the mean aggregator (Hamilton et al.):
//
//	Y = X·W_self + (D⁻¹A·X)·W_nbr + b
//
// It is one of the two additional architectures the paper names as future
// work. Unlike GCN's symmetric Â, the mean operator D⁻¹A is not its own
// transpose, so the layer carries an explicit transpose for backward.
type SAGEConv struct {
	InDim, OutDim int
	WSelf, WNbr   *mat.Matrix
	B             []float64

	dwSelf, dwNbr *mat.Matrix
	dbAcc         []float64

	agg, aggT *graph.NormAdjacency
	Serial    bool

	xCache  *mat.Matrix
	mxCache *mat.Matrix // D⁻¹A·X
}

// NewSAGEConv constructs a mean-aggregator GraphSAGE layer over g.
func NewSAGEConv(rng *rand.Rand, inDim, outDim int, g *graph.Graph) *SAGEConv {
	if g == nil {
		panic("nn: SAGEConv requires a graph")
	}
	agg := graph.MeanAdjacency(g)
	return &SAGEConv{
		InDim:  inDim,
		OutDim: outDim,
		WSelf:  mat.Glorot(rng, inDim, outDim),
		WNbr:   mat.Glorot(rng, inDim, outDim),
		B:      make([]float64, outDim),
		dwSelf: mat.New(inDim, outDim),
		dwNbr:  mat.New(inDim, outDim),
		dbAcc:  make([]float64, outDim),
		agg:    agg,
		aggT:   agg.Transpose(),
	}
}

// Forward computes X·W_self + (D⁻¹A·X)·W_nbr + b.
func (l *SAGEConv) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	if x.Cols != l.InDim {
		panic(fmt.Sprintf("nn: SAGEConv input dim %d, want %d", x.Cols, l.InDim))
	}
	var mx, self, nbr *mat.Matrix
	if l.Serial {
		mx = l.agg.MulDenseSerial(x)
		self = mat.MatMulSerial(x, l.WSelf)
		nbr = mat.MatMulSerial(mx, l.WNbr)
	} else {
		mx = l.agg.MulDense(x)
		self = mat.MatMul(x, l.WSelf)
		nbr = mat.MatMul(mx, l.WNbr)
	}
	if train {
		l.xCache = x
		l.mxCache = mx
	}
	return self.AddInPlace(nbr).AddRowVector(l.B)
}

// Backward returns dL/dX and accumulates the three parameter gradients:
//
//	dW_self = Xᵀ·dY
//	dW_nbr  = (D⁻¹A·X)ᵀ·dY
//	dX      = dY·W_selfᵀ + (D⁻¹A)ᵀ·(dY·W_nbrᵀ)
//	db      = column sums of dY
func (l *SAGEConv) Backward(dOut *mat.Matrix) *mat.Matrix {
	if l.xCache == nil {
		panic("nn: SAGEConv.Backward before Forward(train=true)")
	}
	w := kernelBudget(l.Serial)
	l.dwSelf.AddInPlace(mat.MatMulTransAWorkers(l.xCache, dOut, w))
	l.dwNbr.AddInPlace(mat.MatMulTransAWorkers(l.mxCache, dOut, w))
	for j, s := range dOut.ColSums() {
		l.dbAcc[j] += s
	}
	dx := mat.MatMulTransBWorkers(dOut, l.WSelf, w)
	dxNbr := l.aggT.MulDenseWorkers(mat.MatMulTransBWorkers(dOut, l.WNbr, w), w)
	return dx.AddInPlace(dxNbr)
}

// Params exposes W_self, W_nbr and b.
func (l *SAGEConv) Params() []Param {
	return []Param{
		{Name: "Wself", W: l.WSelf, Grad: l.dwSelf},
		{Name: "Wnbr", W: l.WNbr, Grad: l.dwNbr},
		{Name: "b", W: mat.FromSlice(1, l.OutDim, l.B), Grad: mat.FromSlice(1, l.OutDim, l.dbAcc)},
	}
}

// NumParams returns 2·InDim·OutDim + OutDim.
func (l *SAGEConv) NumParams() int { return 2*l.InDim*l.OutDim + l.OutDim }

// SetSerialMode switches the layer's kernels between parallel and
// single-threaded execution.
func (l *SAGEConv) SetSerialMode(serial bool) { l.Serial = serial }
