package nn

import (
	"math"

	"gnnvault/internal/mat"
)

// GradCheck compares the analytic parameter gradients of loss(model(x))
// against central finite differences and returns the worst relative error
// across all parameters checked. It is the correctness oracle for the
// hand-derived backward passes.
//
// lossFn must be deterministic in the parameters (run dropout-free).
// maxPerParam bounds the number of scalar entries probed per parameter
// matrix (0 = all).
func GradCheck(model *Model, x *mat.Matrix, lossFn func(out *mat.Matrix) (float64, *mat.Matrix), maxPerParam int) float64 {
	// Analytic pass.
	ZeroGrad(model.Params())
	out := model.Forward(x, true)
	_, dOut := lossFn(out)
	model.Backward(dOut)

	const h = 1e-5
	worst := 0.0
	for _, p := range model.Params() {
		n := len(p.W.Data)
		step := 1
		if maxPerParam > 0 && n > maxPerParam {
			step = n / maxPerParam
		}
		for i := 0; i < n; i += step {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			lp, _ := lossFn(model.Forward(x, false))
			p.W.Data[i] = orig - h
			lm, _ := lossFn(model.Forward(x, false))
			p.W.Data[i] = orig

			numeric := (lp - lm) / (2 * h)
			analytic := p.Grad.Data[i]
			denom := math.Max(math.Abs(numeric)+math.Abs(analytic), 1e-8)
			rel := math.Abs(numeric-analytic) / denom
			if rel > worst {
				worst = rel
			}
		}
	}
	return worst
}
