// Package nn implements the neural-network substrate GNNVault trains and
// deploys: GCN and dense layers with hand-derived backward passes, ReLU and
// dropout, masked softmax cross-entropy for semi-supervised node
// classification, and the Adam optimiser.
//
// There is no tape autodiff: each layer caches what its backward pass needs
// during Forward and returns the input gradient from Backward. This keeps
// the enclave-side inference path allocation-predictable, which matters for
// EPC accounting.
package nn

import (
	"fmt"
	"math/rand"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

// Layer is a differentiable module. Forward consumes the previous
// activation; Backward consumes dL/dOutput and returns dL/dInput,
// accumulating parameter gradients internally.
type Layer interface {
	Forward(x *mat.Matrix, train bool) *mat.Matrix
	Backward(dOut *mat.Matrix) *mat.Matrix
	// Params returns the layer's parameter/gradient pairs, empty for
	// stateless layers.
	Params() []Param
	// NumParams returns the scalar parameter count (θ in the paper's
	// tables).
	NumParams() int
}

// GraphConv is a layer whose kernels can be switched to single-threaded
// execution, the mode the enclave simulator requires for in-enclave code.
type GraphConv interface {
	Layer
	SetSerialMode(serial bool)
}

// Param couples a parameter matrix with its gradient accumulator.
type Param struct {
	Name    string
	W, Grad *mat.Matrix
}

// kernelBudget maps a layer's Serial flag to a per-call worker budget: 1
// (inline) for in-enclave layers, 0 (process-global default) otherwise.
// The training backward passes thread it into the Workers kernel variants
// so they never resolve parallelism through a racy global in serial mode.
func kernelBudget(serial bool) int {
	if serial {
		return 1
	}
	return 0
}

// GCNConv is one graph-convolution layer: H' = Â·(H·W) + b, with Â fixed at
// construction (Eq. 1 of the paper). The adjacency can be swapped with
// SetAdjacency, which is how a trained backbone is re-used with a different
// substitute graph in ablations.
type GCNConv struct {
	InDim, OutDim int
	W             *mat.Matrix
	B             []float64
	dwAcc         *mat.Matrix
	dbAcc         []float64
	adj           *graph.NormAdjacency

	// Serial forces single-threaded sparse/dense kernels; the enclave
	// simulator sets it to model in-enclave execution.
	Serial bool

	xCache  *mat.Matrix // input H
	xwCache *mat.Matrix // H·W before propagation
}

// NewGCNConv constructs a GCN layer with Glorot-initialised weights and a
// zero bias over the given normalised adjacency.
func NewGCNConv(rng *rand.Rand, inDim, outDim int, adj *graph.NormAdjacency) *GCNConv {
	if adj == nil {
		panic("nn: GCNConv requires a normalised adjacency")
	}
	return &GCNConv{
		InDim:  inDim,
		OutDim: outDim,
		W:      mat.Glorot(rng, inDim, outDim),
		B:      make([]float64, outDim),
		dwAcc:  mat.New(inDim, outDim),
		dbAcc:  make([]float64, outDim),
		adj:    adj,
	}
}

// SetAdjacency replaces the propagation operator (the layer parameters are
// untouched).
func (l *GCNConv) SetAdjacency(adj *graph.NormAdjacency) { l.adj = adj }

// Adjacency returns the current propagation operator.
func (l *GCNConv) Adjacency() *graph.NormAdjacency { return l.adj }

// Forward computes Â(XW) + b.
func (l *GCNConv) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	if x.Cols != l.InDim {
		panic(fmt.Sprintf("nn: GCNConv input dim %d, want %d", x.Cols, l.InDim))
	}
	var xw *mat.Matrix
	if l.Serial {
		xw = mat.MatMulSerial(x, l.W)
	} else {
		xw = mat.MatMul(x, l.W)
	}
	var out *mat.Matrix
	if l.Serial {
		out = l.adj.MulDenseSerial(xw)
	} else {
		out = l.adj.MulDense(xw)
	}
	if train {
		l.xCache = x
		l.xwCache = xw
	}
	return out.AddRowVector(l.B)
}

// Backward receives dL/dOut and returns dL/dX.
//
// With Y = Â(XW) + b and symmetric Â:
//
//	dXW = Âᵀ·dY = Â·dY
//	dW  = Xᵀ·dXW
//	dX  = dXW·Wᵀ
//	db  = column sums of dY
func (l *GCNConv) Backward(dOut *mat.Matrix) *mat.Matrix {
	if l.xCache == nil {
		panic("nn: GCNConv.Backward before Forward(train=true)")
	}
	dxw := l.adj.MulDenseWorkers(dOut, kernelBudget(l.Serial)) // Â symmetric ⇒ Âᵀ = Â
	l.dwAcc.AddInPlace(mat.MatMulTransAWorkers(l.xCache, dxw, kernelBudget(l.Serial)))
	for j, s := range dOut.ColSums() {
		l.dbAcc[j] += s
	}
	return mat.MatMulTransBWorkers(dxw, l.W, kernelBudget(l.Serial))
}

// Params exposes W and b (as a 1×OutDim matrix view) for the optimiser.
func (l *GCNConv) Params() []Param {
	return []Param{
		{Name: "W", W: l.W, Grad: l.dwAcc},
		{Name: "b", W: mat.FromSlice(1, l.OutDim, l.B), Grad: mat.FromSlice(1, l.OutDim, l.dbAcc)},
	}
}

// NumParams returns InDim·OutDim + OutDim.
func (l *GCNConv) NumParams() int { return l.InDim*l.OutDim + l.OutDim }

// SetSerialMode switches the layer's kernels between parallel and
// single-threaded execution.
func (l *GCNConv) SetSerialMode(serial bool) { l.Serial = serial }

// Dense is a fully-connected layer Y = XW + b, used for the paper's DNN
// (MLP) backbone baseline.
type Dense struct {
	InDim, OutDim int
	W             *mat.Matrix
	B             []float64
	dwAcc         *mat.Matrix
	dbAcc         []float64
	Serial        bool

	xCache *mat.Matrix
}

// NewDense constructs a Glorot-initialised dense layer.
func NewDense(rng *rand.Rand, inDim, outDim int) *Dense {
	return &Dense{
		InDim:  inDim,
		OutDim: outDim,
		W:      mat.Glorot(rng, inDim, outDim),
		B:      make([]float64, outDim),
		dwAcc:  mat.New(inDim, outDim),
		dbAcc:  make([]float64, outDim),
	}
}

// Forward computes XW + b.
func (l *Dense) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	if x.Cols != l.InDim {
		panic(fmt.Sprintf("nn: Dense input dim %d, want %d", x.Cols, l.InDim))
	}
	if train {
		l.xCache = x
	}
	var xw *mat.Matrix
	if l.Serial {
		xw = mat.MatMulSerial(x, l.W)
	} else {
		xw = mat.MatMul(x, l.W)
	}
	return xw.AddRowVector(l.B)
}

// Backward returns dL/dX and accumulates dW, db.
func (l *Dense) Backward(dOut *mat.Matrix) *mat.Matrix {
	if l.xCache == nil {
		panic("nn: Dense.Backward before Forward(train=true)")
	}
	l.dwAcc.AddInPlace(mat.MatMulTransAWorkers(l.xCache, dOut, kernelBudget(l.Serial)))
	for j, s := range dOut.ColSums() {
		l.dbAcc[j] += s
	}
	return mat.MatMulTransBWorkers(dOut, l.W, kernelBudget(l.Serial))
}

// Params exposes W and b for the optimiser.
func (l *Dense) Params() []Param {
	return []Param{
		{Name: "W", W: l.W, Grad: l.dwAcc},
		{Name: "b", W: mat.FromSlice(1, l.OutDim, l.B), Grad: mat.FromSlice(1, l.OutDim, l.dbAcc)},
	}
}

// NumParams returns InDim·OutDim + OutDim.
func (l *Dense) NumParams() int { return l.InDim*l.OutDim + l.OutDim }

// SetSerialMode switches the layer's kernels between parallel and
// single-threaded execution.
func (l *Dense) SetSerialMode(serial bool) { l.Serial = serial }

// ReLU is the element-wise rectifier.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward zeroes negative entries.
func (l *ReLU) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	out := mat.New(x.Rows, x.Cols)
	if train {
		l.mask = make([]bool, len(x.Data))
	}
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			if train {
				l.mask[i] = true
			}
		}
	}
	return out
}

// Backward zeroes gradients where the forward input was non-positive.
func (l *ReLU) Backward(dOut *mat.Matrix) *mat.Matrix {
	if l.mask == nil {
		panic("nn: ReLU.Backward before Forward(train=true)")
	}
	dx := mat.New(dOut.Rows, dOut.Cols)
	for i, v := range dOut.Data {
		if l.mask[i] {
			dx.Data[i] = v
		}
	}
	return dx
}

// Params returns nil; ReLU is stateless.
func (l *ReLU) Params() []Param { return nil }

// NumParams returns 0.
func (l *ReLU) NumParams() int { return 0 }

// Dropout zeroes activations with probability P during training and
// rescales survivors by 1/(1-P) (inverted dropout). Inference is identity.
type Dropout struct {
	P   float64
	Rng *rand.Rand

	scale []float64
}

// NewDropout returns a dropout layer with drop probability p.
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v outside [0,1)", p))
	}
	return &Dropout{P: p, Rng: rng}
}

// Forward applies inverted dropout when train is true.
func (l *Dropout) Forward(x *mat.Matrix, train bool) *mat.Matrix {
	if !train || l.P == 0 {
		l.scale = nil
		return x
	}
	out := mat.New(x.Rows, x.Cols)
	l.scale = make([]float64, len(x.Data))
	keep := 1 - l.P
	inv := 1 / keep
	for i, v := range x.Data {
		if l.Rng.Float64() < keep {
			l.scale[i] = inv
			out.Data[i] = v * inv
		}
	}
	return out
}

// Backward propagates gradients through the surviving units only.
func (l *Dropout) Backward(dOut *mat.Matrix) *mat.Matrix {
	if l.scale == nil { // inference-mode or p=0 forward
		return dOut
	}
	dx := mat.New(dOut.Rows, dOut.Cols)
	for i, v := range dOut.Data {
		dx.Data[i] = v * l.scale[i]
	}
	return dx
}

// Params returns nil; dropout is stateless.
func (l *Dropout) Params() []Param { return nil }

// NumParams returns 0.
func (l *Dropout) NumParams() int { return 0 }
