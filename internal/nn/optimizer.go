package nn

import (
	"math"

	"gnnvault/internal/mat"
)

// Adam implements the Adam optimiser (Kingma & Ba) with optional decoupled
// L2 weight decay, matching the training recipe typical for GCN
// semi-supervised node classification.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64

	t int
	m map[*mat.Matrix]*mat.Matrix
	v map[*mat.Matrix]*mat.Matrix
}

// NewAdam returns an Adam optimiser with the standard β/ε defaults.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{
		LR:          lr,
		Beta1:       0.9,
		Beta2:       0.999,
		Eps:         1e-8,
		WeightDecay: weightDecay,
		m:           make(map[*mat.Matrix]*mat.Matrix),
		v:           make(map[*mat.Matrix]*mat.Matrix),
	}
}

// Step applies one Adam update to every parameter and zeroes the gradient
// accumulators afterwards.
func (a *Adam) Step(params []Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p.W]
		if !ok {
			m = mat.New(p.W.Rows, p.W.Cols)
			a.m[p.W] = m
		}
		v, ok := a.v[p.W]
		if !ok {
			v = mat.New(p.W.Rows, p.W.Cols)
			a.v[p.W] = v
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i]
			if a.WeightDecay != 0 {
				g += a.WeightDecay * p.W.Data[i]
			}
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mHat := m.Data[i] / bc1
			vHat := v.Data[i] / bc2
			p.W.Data[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
			p.Grad.Data[i] = 0
		}
	}
}

// ZeroGrad clears all gradient accumulators without updating parameters.
func ZeroGrad(params []Param) {
	for _, p := range params {
		for i := range p.Grad.Data {
			p.Grad.Data[i] = 0
		}
	}
}
