package core

import (
	"fmt"

	"gnnvault/internal/exec"
	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
	"gnnvault/internal/nn"
)

// Lowering: the compilers that turn a Backbone or Rectifier into an
// internal/exec op program. This is the single place the forward-pass
// structure — layer kernels and the per-design embedding wiring — is
// written down; the full-graph plan (plan.go), the subgraph plan
// (subplan.go) and the standalone RectifierWorkspace all execute the
// programs compiled here on the one shared engine, tiled or direct.
//
// Every program leaves the compilers epilogue-fused (exec.Program.Fused):
// the bias/ReLU tails of each conv collapse into the producing MatMul/SpMM
// op and the fused-away intermediates are eliminated, which removes whole
// activation passes in direct mode and whole tile flushes in tiled mode.
// Block-embedding values are pinned (Builder.Keep) first, so the transfer
// payload the rectifier reads stays materialised and bit-identical.

// lowerWorkspaceLayer wraps a layer without a row-tileable kernel
// decomposition (SAGE, GAT) as an opaque exec op over a planned
// nn.LayerWorkspace, whose output buffer becomes the op's value directly
// (no staging copy). The resulting program still runs on direct machines;
// tiled machines reject it, which is what makes EPC-budgeted plans
// GCN/Dense-only. The closure-held workspace is invisible to
// exec.Machine.BufferBytes, so its footprint is accumulated into *extra
// for the caller's EPC accounting.
func lowerWorkspaceLayer(bld *exec.Builder, l nn.Layer, in, inDim, maxRows, workers int, extra *int64) (val, outDim int) {
	wl, ok := l.(nn.WorkspaceLayer)
	if !ok {
		panic(fmt.Sprintf("core: layer %T does not support workspace inference", l))
	}
	lws, outDim := wl.PlanWorkspace(maxRows, inDim)
	lws.SetWorkers(workers)
	*extra += lws.NumBytes()
	val = bld.Func(in, outDim, func(src *mat.Matrix) *mat.Matrix {
		return wl.ForwardWS(src, lws)
	})
	return val, outDim
}

// lowerIntoExtra compiles the backbone's inference stack into bld, reading
// node features from the program value x. csr, when non-nil, substitutes
// the shared GCN message-passing operator (the subgraph path passes its
// induced public sub-CSR header); nil keeps the backbone's own adjacency.
// workers is the kernel budget baked into any opaque layer ops, whose
// closure-held workspace bytes accumulate into *extra.
//
// It returns one program value per backbone block (post-activation hidden
// embeddings plus final logits) — the transfer payload RequiredEmbeddings
// indexes into, mirroring appendBlockOutputs.
func (b *Backbone) lowerIntoExtra(bld *exec.Builder, x int, csr *graph.NormAdjacency, maxRows, workers int, extra *int64) []int {
	h := x
	width := b.FeatureDim
	acts := make([]int, 0, len(b.Model.Layers))
	for _, l := range b.Model.Layers {
		switch layer := l.(type) {
		case *nn.GCNConv:
			adj := csr
			if adj == nil {
				adj = b.adj
			}
			h = bld.MatMul(h, layer.W)
			h = bld.SpMM(adj, h)
			h = bld.AddBias(h, layer.B)
			width = layer.OutDim
		case *nn.Dense:
			h = bld.MatMul(h, layer.W)
			h = bld.AddBias(h, layer.B)
			width = layer.OutDim
		case *nn.ReLU:
			h = bld.ReLU(h)
		case *nn.Dropout:
			// inference-mode identity: the value passes through
		default:
			h, width = lowerWorkspaceLayer(bld, l, h, width, maxRows, workers, extra)
		}
		acts = append(acts, h)
	}
	blocks := make([]int, 0, len(b.convIdx))
	for i, ci := range b.convIdx {
		idx := ci
		if i < len(b.convIdx)-1 {
			idx = ci + 1 // the ReLU following the conv
		}
		blocks = append(blocks, acts[idx])
	}
	return blocks
}

// lowerInto compiles the rectifier's design wiring into bld. inputs are
// the program values of the transferred embeddings, in RequiredEmbeddings
// order; csr, when non-nil, substitutes the private message-passing
// operator (the subgraph path passes its induced private sub-CSR header,
// the sharded path its rectangular row-range shard). halo, when non-nil,
// marks a sharded lowering: every GCN conv gathers its boundary rows
// through a halo op between the feature transform and the aggregation —
// the MatMul output is row-local, so the SpMM over a rectangular shard
// CSR needs the out-of-range rows computed by the peers that own them.
// The slots are identical for every layer because the shard's halo
// column set is a property of the partition, not of the layer.
// workers should be 1 — the rectifier is in-enclave, single-threaded — and
// is baked into any opaque (non-GCN) conv ops, whose closure-held
// workspace bytes accumulate into *extra. Returns the logits value.
func (r *Rectifier) lowerInto(bld *exec.Builder, inputs []int, csr *graph.NormAdjacency, halo []exec.HaloSlot, maxRows, workers int, extra *int64) int {
	if want := len(r.RequiredEmbeddings()); len(inputs) != want {
		panic(fmt.Sprintf("core: rectifier %s wants %d embeddings, got %d", r.Design, want, len(inputs)))
	}
	adj := csr
	if adj == nil {
		adj = r.adj
	}
	prev := -1
	for k := range r.convs {
		var in int
		switch {
		case k == 0 && r.Design == Cascaded && len(inputs) > 1:
			in = bld.Concat(inputs...)
		case k == 0:
			in = inputs[0]
		case r.Design == Parallel:
			in = bld.Concat(prev, inputs[k])
		default: // cascaded/series: layer input is exactly prev
			in = prev
		}
		var v int
		if conv, ok := r.convs[k].(*nn.GCNConv); ok {
			v = bld.MatMul(in, conv.W)
			if halo != nil {
				v = bld.Halo(v, halo)
			}
			v = bld.SpMM(adj, v)
			v = bld.AddBias(v, conv.B)
		} else {
			v, _ = lowerWorkspaceLayer(bld, r.convs[k], in, r.inDim(k), maxRows, workers, extra)
		}
		if k == len(r.convs)-1 {
			return v
		}
		prev = bld.ReLU(v)
	}
	panic("core: rectifier with no layers")
}

// compileRectifier builds the full rectifier program for batches of
// maxRows rows — one input per required embedding, the design wiring, the
// terminal label reduction — and epilogue-fuses it. csr substitutes the
// private operator when non-nil; halo, when non-nil, lowers the sharded
// variant (see lowerInto). The second result is the closure-held
// workspace footprint of any opaque (non-GCN) conv ops — bytes a direct
// plan must charge on top of the machine's BufferBytes.
func (r *Rectifier) compileRectifier(maxRows int, csr *graph.NormAdjacency, halo []exec.HaloSlot) (*exec.Program, int64) {
	bld := exec.NewBuilder(maxRows)
	needed := r.RequiredEmbeddings()
	inputs := make([]int, 0, len(needed))
	for _, i := range needed {
		inputs = append(inputs, bld.Input(r.BackboneDims[i]))
	}
	var extra int64
	out := r.lowerInto(bld, inputs, csr, halo, maxRows, 1, &extra)
	bld.Argmax(out)
	return bld.Build().Fused(), extra
}

// compileBackbone builds the backbone program for batches of maxRows rows
// and epilogue-fuses it, pinning every block-embedding value first so the
// rectifier's transfer payload survives fusion. csr substitutes the public
// message-passing operator when non-nil (the subgraph path); workers is
// the kernel budget baked into any opaque (SAGE/GAT) layer ops, whose
// workspace footprint accumulates into the second result. The returned
// value ids identify the block embeddings in the fused program, in
// RequiredEmbeddings order.
func (b *Backbone) compileBackbone(maxRows int, csr *graph.NormAdjacency, workers int) (*exec.Program, []int, int64) {
	bld := exec.NewBuilder(maxRows)
	x := bld.Input(b.FeatureDim)
	var extra int64
	blocks := b.lowerIntoExtra(bld, x, csr, maxRows, workers, &extra)
	for _, bv := range blocks {
		bld.Keep(bv)
	}
	return bld.Build().Fused(), blocks, extra
}
