package core

import (
	"errors"
	"math/rand"
	"testing"

	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
	"gnnvault/internal/nn"
	"gnnvault/internal/subgraph"
	"gnnvault/internal/substitute"
)

// pathDataset builds a dataset over a path graph 0—1—…—n-1: the sparsest
// connected topology, where L-hop neighbourhoods stay tiny and the
// subgraph engine's exactness can be checked against the full-graph pass.
func pathDataset(n int) *datasets.Dataset {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: i, V: i + 1})
	}
	g := graph.New(n, edges)
	rng := rand.New(rand.NewSource(11))
	labels := make([]int, n)
	var train, test []int
	for i := range labels {
		labels[i] = rng.Intn(4)
		if i%5 == 0 {
			train = append(train, i)
		} else {
			test = append(test, i)
		}
	}
	return &datasets.Dataset{
		Name:       "path",
		X:          mat.RandUniform(rng, n, 12, 0, 1),
		Graph:      g,
		Labels:     labels,
		NumClasses: 4,
		TrainMask:  train,
		TestMask:   test,
	}
}

// deploySubgraphExact trains a vault whose backbone uses the *private*
// graph as its substitute, so the public expansion covers the private
// receptive field too and exactness is decidable.
func deploySubgraphExact(t *testing.T, ds *datasets.Dataset, design RectifierDesign) *Vault {
	t.Helper()
	train := TrainConfig{Epochs: 5, LR: 0.02, WeightDecay: 5e-4, Seed: 7}
	spec := tinySpec()
	bb := TrainBackbone(ds, spec, substitute.KindKNN, ds.Graph, train)
	rec := TrainRectifier(ds, bb, design, train)
	v, err := Deploy(bb, rec, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return v
}

func TestPredictNodesIntoExactOnPathGraph(t *testing.T) {
	ds := pathDataset(240)
	for _, design := range Designs {
		v := deploySubgraphExact(t, ds, design)
		full, _, err := v.Predict(ds.X)
		if err != nil {
			t.Fatalf("%s: Predict: %v", design, err)
		}
		// tinySpec has 3 backbone convs + 3 rectifier convs: a 6-hop
		// receptive field. On a path graph that is ≤13 nodes per seed.
		ws, err := v.PlanSubgraph(3, subgraph.Config{Hops: 6})
		if err != nil {
			t.Fatalf("%s: PlanSubgraph: %v", design, err)
		}
		seeds := []int{120, 7, 231}
		got, bd, err := v.PredictNodesInto(ds.X, seeds, ws)
		if err != nil {
			t.Fatalf("%s: PredictNodesInto: %v", design, err)
		}
		for i, s := range seeds {
			if got[i] != full[s] {
				t.Errorf("%s: seed %d: subgraph label %d != full-graph label %d", design, s, got[i], full[s])
			}
		}
		if ws.LastExtracted() >= ds.Graph.N()*3/4 {
			t.Fatalf("%s: extraction covered %d nodes; exactness test degenerated to fallback", design, ws.LastExtracted())
		}
		if bd.ECalls != 1 {
			t.Errorf("%s: subgraph query used %d ECALLs, want 1", design, bd.ECalls)
		}
		ws.Release()
		v.Undeploy()
	}
}

func TestPredictNodesIntoSampledAgreement(t *testing.T) {
	ds := tinyDataset()
	v := deploySubgraphExact(t, ds, Parallel)
	defer v.Undeploy()
	full, _, err := v.Predict(ds.X)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	ws, err := v.PlanSubgraph(4, subgraph.Config{Hops: 2, Fanout: 6, Seed: 3})
	if err != nil {
		t.Fatalf("PlanSubgraph: %v", err)
	}
	defer ws.Release()

	agree, total := 0, 0
	for s := 0; s < ds.Graph.N(); s += 7 {
		got, _, err := v.PredictNodesInto(ds.X, []int{s}, ws)
		if err != nil {
			t.Fatalf("seed %d: %v", s, err)
		}
		if got[0] < 0 || got[0] >= ds.NumClasses {
			t.Fatalf("seed %d: label %d outside class space", s, got[0])
		}
		if got[0] == full[s] {
			agree++
		}
		total++
	}
	// Sampled 2-hop inference is approximate; on a homophilous tiny graph
	// it must still agree with the exact pass most of the time.
	if frac := float64(agree) / float64(total); frac < 0.5 {
		t.Fatalf("sampled agreement %.2f < 0.5 (%d/%d)", frac, agree, total)
	}
}

func TestPredictNodesIntoDeterministic(t *testing.T) {
	ds := tinyDataset()
	v := deploySubgraphExact(t, ds, Series)
	defer v.Undeploy()
	ws, err := v.PlanSubgraph(2, subgraph.Config{Hops: 2, Fanout: 3, Seed: 9})
	if err != nil {
		t.Fatalf("PlanSubgraph: %v", err)
	}
	defer ws.Release()
	a, _, err := v.PredictNodesInto(ds.X, []int{5, 50}, ws)
	if err != nil {
		t.Fatal(err)
	}
	first := append([]int{}, a...)
	// Interleave an unrelated query, then repeat: same seeds, same answer.
	if _, _, err := v.PredictNodesInto(ds.X, []int{99}, ws); err != nil {
		t.Fatal(err)
	}
	b, _, err := v.PredictNodesInto(ds.X, []int{5, 50}, ws)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != b[i] {
			t.Fatalf("query not deterministic: %v then %v", first, b)
		}
	}
}

func TestPredictNodesIntoAllocFree(t *testing.T) {
	ds := pathDataset(300)
	v := deploySubgraphExact(t, ds, Parallel)
	defer v.Undeploy()
	ws, err := v.PlanSubgraph(2, subgraph.Config{Hops: 2, Fanout: 4, Seed: 1})
	if err != nil {
		t.Fatalf("PlanSubgraph: %v", err)
	}
	defer ws.Release()
	seeds := []int{40, 200}
	allocs := testing.AllocsPerRun(30, func() {
		if _, _, err := v.PredictNodesInto(ds.X, seeds, ws); err != nil {
			t.Fatalf("PredictNodesInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("hot subgraph query allocates %.1f per run, want 0", allocs)
	}
}

func TestPredictNodesIntoFallbackWhenFrontierCoversGraph(t *testing.T) {
	ds := tinyDataset() // dense enough that a deep unlimited expansion covers it
	v := deploySubgraphExact(t, ds, Series)
	defer v.Undeploy()
	full, _, err := v.Predict(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := v.PlanSubgraph(2, subgraph.Config{Hops: 8})
	if err != nil {
		t.Fatalf("PlanSubgraph: %v", err)
	}
	defer ws.Release()
	seeds := []int{0, 60}
	got, _, err := v.PredictNodesInto(ds.X, seeds, ws)
	if err != nil {
		t.Fatalf("PredictNodesInto: %v", err)
	}
	for i, s := range seeds {
		if got[i] != full[s] {
			t.Fatalf("fallback path differs from exact labels at seed %d", s)
		}
	}
}

func TestPredictNodesIntoErrors(t *testing.T) {
	ds := pathDataset(100)
	v := deploySubgraphExact(t, ds, Series)
	defer v.Undeploy()
	ws, err := v.PlanSubgraph(2, subgraph.Config{Hops: 2, Fanout: 4})
	if err != nil {
		t.Fatalf("PlanSubgraph: %v", err)
	}
	defer ws.Release()
	if _, _, err := v.PredictNodesInto(ds.X, []int{100}, ws); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("out of range: err = %v, want ErrNodeOutOfRange", err)
	}
	if _, _, err := v.PredictNodesInto(ds.X, []int{-1}, ws); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("negative: err = %v, want ErrNodeOutOfRange", err)
	}
	if _, _, err := v.PredictNodesInto(ds.X, []int{1, 2, 3}, ws); !errors.Is(err, subgraph.ErrTooManySeeds) {
		t.Fatalf("over cap: err = %v, want subgraph.ErrTooManySeeds", err)
	}
	ws.Release()
	if _, _, err := v.PredictNodesInto(ds.X, []int{1}, ws); err == nil {
		t.Fatal("released workspace accepted a query")
	}
}

func TestPlanSubgraphEPCAccounting(t *testing.T) {
	ds := pathDataset(1500)
	v := deploySubgraphExact(t, ds, Parallel)
	defer v.Undeploy()
	base := v.Enclave.EPCUsed()

	fullWS, err := v.Plan(v.Nodes())
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	subWS, err := v.PlanSubgraph(4, subgraph.Config{Hops: 2, Fanout: 4})
	if err != nil {
		t.Fatalf("PlanSubgraph: %v", err)
	}
	if subWS.EnclaveBytes() <= 0 {
		t.Fatal("subgraph plan charged no EPC")
	}
	// The point of the engine: the capped working set is far below the
	// full-graph plan on the same vault.
	if subWS.EnclaveBytes()*2 >= fullWS.EnclaveBytes() {
		t.Fatalf("subgraph plan %d B not clearly smaller than full plan %d B",
			subWS.EnclaveBytes(), fullWS.EnclaveBytes())
	}
	if got := v.Enclave.EPCUsed(); got != base+fullWS.EnclaveBytes()+subWS.EnclaveBytes() {
		t.Fatalf("EPC used %d, want %d", got, base+fullWS.EnclaveBytes()+subWS.EnclaveBytes())
	}
	subWS.Release()
	subWS.Release() // idempotent
	fullWS.Release()
	if got := v.Enclave.EPCUsed(); got != base {
		t.Fatalf("EPC not returned: %d, want %d", got, base)
	}
}

func TestPlanSubgraphUnsupported(t *testing.T) {
	ds := tinyDataset()
	train := fastTrain()
	// DNN backbone: no public graph to expand over.
	bbDNN := TrainBackbone(ds, tinySpec(), substitute.KindDNN, nil, train)
	recDNN := TrainRectifier(ds, bbDNN, Series, train)
	vDNN, err := Deploy(bbDNN, recDNN, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		t.Fatalf("Deploy DNN: %v", err)
	}
	defer vDNN.Undeploy()
	if _, err := vDNN.PlanSubgraph(2, subgraph.Config{Hops: 2}); !errors.Is(err, ErrSubgraphUnsupported) {
		t.Fatalf("DNN backbone: err = %v, want ErrSubgraphUnsupported", err)
	}
	// But PredictNodes still serves it via the full-graph path.
	labels, err := vDNN.PredictNodes(ds.X, []int{1, 2})
	if err != nil || len(labels) != 2 {
		t.Fatalf("DNN PredictNodes fallback: labels=%v err=%v", labels, err)
	}

	// SAGE convolutions: kernels bound to their full-graph operator.
	spec := tinySpec()
	spec.Conv = ConvSAGE
	bbSAGE := TrainBackbone(ds, spec, substitute.KindKNN, ds.Graph, train)
	recSAGE := TrainRectifier(ds, bbSAGE, Series, train)
	vSAGE, err := Deploy(bbSAGE, recSAGE, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		t.Fatalf("Deploy SAGE: %v", err)
	}
	defer vSAGE.Undeploy()
	if _, err := vSAGE.PlanSubgraph(2, subgraph.Config{Hops: 2}); !errors.Is(err, ErrSubgraphUnsupported) {
		t.Fatalf("SAGE: err = %v, want ErrSubgraphUnsupported", err)
	}
}

func TestPredictNodesRoutesThroughSubgraphEngine(t *testing.T) {
	ds := pathDataset(240)
	v := deploySubgraphExact(t, ds, Parallel)
	defer v.Undeploy()
	full, _, err := v.Predict(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.EnableNodeServing(3, subgraph.Config{Hops: 6}); err != nil {
		t.Fatalf("EnableNodeServing: %v", err)
	}
	defer v.DisableNodeServing()

	got, err := v.PredictNodes(ds.X, []int{50, 130})
	if err != nil {
		t.Fatalf("PredictNodes: %v", err)
	}
	if got[0] != full[50] || got[1] != full[130] {
		t.Fatalf("routed labels %v != full labels [%d %d]", got, full[50], full[130])
	}

	// Named error for out-of-range seeds, no formatting on the hot path.
	if _, err := v.PredictNodes(ds.X, []int{240}); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("out of range: err = %v, want ErrNodeOutOfRange", err)
	}

	// Batches the engine declines (duplicates, oversize) still get exact
	// full-graph answers.
	dup, err := v.PredictNodes(ds.X, []int{9, 9})
	if err != nil {
		t.Fatalf("duplicate seeds: %v", err)
	}
	if dup[0] != full[9] || dup[1] != full[9] {
		t.Fatalf("duplicate-seed fallback labels %v != %d", dup, full[9])
	}
	big, err := v.PredictNodes(ds.X, []int{1, 2, 3, 4})
	if err != nil || len(big) != 4 {
		t.Fatalf("oversize batch: labels=%v err=%v", big, err)
	}

	// After disabling, the exact path also reports range errors by name.
	v.DisableNodeServing()
	if _, err := v.PredictNodes(ds.X, []int{-3}); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("full path out of range: err = %v, want ErrNodeOutOfRange", err)
	}
}

func TestPredictStreamedFallsBackForCascaded(t *testing.T) {
	// PredictStreamed is the parallel design's layer-by-layer deployment;
	// every other design must transparently serve the batched path.
	v, _, ds := deployTiny(t, Cascaded)
	a, aBD, err := v.Predict(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	b, bBD, err := v.PredictStreamed(ds.X)
	if err != nil {
		t.Fatalf("PredictStreamed: %v", err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("cascaded fallback differs from batched Predict")
		}
	}
	// The fallback must follow the batched path's transfer pattern (one
	// channel send per embedding + the inference ECALL), not the parallel
	// design's per-layer streaming pattern.
	if aBD.ECalls != bBD.ECalls {
		t.Fatalf("cascaded fallback used %d ECALLs, batched Predict uses %d", bBD.ECalls, aBD.ECalls)
	}
	if err := VerifyLabelOnly(b, ds.NumClasses); err != nil {
		t.Fatal(err)
	}
}

// TestSubgraphWorkspaceReuseAcrossBatchSizes exercises the view-rows
// machinery: growing and shrinking extraction sizes must reuse the same
// backing buffers correctly.
func TestSubgraphWorkspaceReuseAcrossBatchSizes(t *testing.T) {
	ds := pathDataset(300)
	v := deploySubgraphExact(t, ds, Cascaded)
	defer v.Undeploy()
	full, _, err := v.Predict(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := v.PlanSubgraph(4, subgraph.Config{Hops: 6})
	if err != nil {
		t.Fatalf("PlanSubgraph: %v", err)
	}
	defer ws.Release()
	for _, seeds := range [][]int{{150}, {20, 80, 140, 260}, {299}, {10, 250}} {
		got, _, err := v.PredictNodesInto(ds.X, seeds, ws)
		if err != nil {
			t.Fatalf("seeds %v: %v", seeds, err)
		}
		for i, s := range seeds {
			if got[i] != full[s] {
				t.Fatalf("seeds %v: label[%d]=%d, want %d", seeds, i, got[i], full[s])
			}
		}
	}
}

// Silence unused-import lint in builds where nn is only used by type
// switches (it is also referenced here to assert the supported layer set
// stays in sync with PlanSubgraph's gating).
var _ nn.Layer = (*nn.GCNConv)(nil)
