package core

import (
	"context"
	"errors"
	"testing"

	"gnnvault/internal/enclave"
	"gnnvault/internal/subgraph"
)

// TestShardFaultRecoverBitIdentical pins the recovery tentpole end to
// end, at fp64 and int8: a fault plan kills one shard's enclave mid-
// fleet, the pass fails with a ShardFault naming that shard (wrapping
// ErrEnclaveLost — peers unwind instead of deadlocking), the shard stays
// dead until RecoverShard re-seals and rejoins it, and the recovered
// fleet's labels are bit-identical to the pre-fault baseline.
func TestShardFaultRecoverBitIdentical(t *testing.T) {
	ds, bb, rec := shardTestModel(t, Parallel)
	cost := enclave.DefaultCostModel()
	for _, tc := range []struct {
		name string
		cfg  PlanConfig
	}{
		{"fp64", PlanConfig{}},
		{"int8", PlanConfig{Precision: PrecisionInt8, MinAgreement: 0.5}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sv, err := DeploySharded(bb, rec, ds.Graph, cost, 3)
			if err != nil {
				t.Fatalf("deploy: %v", err)
			}
			defer sv.Undeploy()
			if err := sv.SetCalibrationFeatures(ds.X); err != nil {
				t.Fatal(err)
			}
			ws, err := sv.PlanSharded(ds.X.Rows, tc.cfg)
			if err != nil {
				t.Fatalf("plan: %v", err)
			}
			defer ws.Release()
			base, _, err := sv.PredictInto(ds.X, ws)
			if err != nil {
				t.Fatalf("baseline predict: %v", err)
			}
			want := append([]int{}, base...)

			// Kill shard 1 at its next ECALL.
			const dead = 1
			sv.Shard(dead).Enclave.SetFaultPlan(&enclave.FaultPlan{AbortECalls: []int64{0}})
			_, _, err = sv.PredictInto(ds.X, ws)
			if !errors.Is(err, enclave.ErrEnclaveLost) {
				t.Fatalf("faulted predict: %v, want ErrEnclaveLost", err)
			}
			var sf *ShardFault
			if !errors.As(err, &sf) || sf.Shard != dead {
				t.Fatalf("faulted predict error %v does not attribute shard %d", err, dead)
			}
			// The shard is gone for good until recovered.
			if _, _, err := sv.PredictInto(ds.X, ws); !errors.Is(err, enclave.ErrEnclaveLost) {
				t.Fatalf("second faulted predict: %v, want ErrEnclaveLost", err)
			}
			if !sv.Shard(dead).Enclave.Lost() {
				t.Fatal("faulted shard enclave not marked lost")
			}

			oldVault := sv.Shard(dead)
			if err := sv.RecoverShard(dead, ws); err != nil {
				t.Fatalf("RecoverShard: %v", err)
			}
			if sv.Shard(dead) == oldVault {
				t.Fatal("RecoverShard did not swap the vault")
			}
			if sv.Shard(dead).Enclave.Lost() {
				t.Fatal("recovered enclave marked lost")
			}
			for pass := 0; pass < 2; pass++ {
				got, bd, err := sv.PredictInto(ds.X, ws)
				if err != nil {
					t.Fatalf("post-recovery pass %d: %v", pass, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("post-recovery pass %d label[%d] = %d, baseline %d", pass, i, got[i], want[i])
					}
				}
				if bd.ECalls != sv.Shards() {
					t.Fatalf("post-recovery pass %d: %d ECALLs, want %d", pass, bd.ECalls, sv.Shards())
				}
			}
		})
	}
}

// TestShardedPredictContextDeadline pins the deadline contract: an
// already-expired context fails the pass with ctx.Err() wrapped, kills
// no enclave, and the workspace serves the next pass normally.
func TestShardedPredictContextDeadline(t *testing.T) {
	ds, bb, rec := shardTestModel(t, Parallel)
	sv, err := DeploySharded(bb, rec, ds.Graph, enclave.DefaultCostModel(), 2)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	defer sv.Undeploy()
	ws, err := sv.PlanSharded(ds.X.Rows, PlanConfig{})
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	defer ws.Release()
	want, _, err := sv.PredictInto(ds.X, ws)
	if err != nil {
		t.Fatal(err)
	}
	wantCopy := append([]int{}, want...)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := sv.PredictIntoContext(ctx, ds.X, ws); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled predict: %v, want context.Canceled", err)
	}
	for s := 0; s < sv.Shards(); s++ {
		if sv.Shard(s).Enclave.Lost() {
			t.Fatalf("cancelled pass killed shard %d", s)
		}
	}
	got, _, err := sv.PredictInto(ds.X, ws)
	if err != nil {
		t.Fatalf("predict after cancellation: %v", err)
	}
	for i := range wantCopy {
		if got[i] != wantCopy[i] {
			t.Fatalf("label[%d] = %d after cancellation, want %d", i, got[i], wantCopy[i])
		}
	}
}

// TestShardedWorkspaceAbortIdleIsBenign pins that an Abort landing while
// no pass is in flight (the SetShardAvailable race window) leaves no
// stale poison: the next pass runs clean.
func TestShardedWorkspaceAbortIdleIsBenign(t *testing.T) {
	ds, bb, rec := shardTestModel(t, Parallel)
	sv, err := DeploySharded(bb, rec, ds.Graph, enclave.DefaultCostModel(), 2)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	defer sv.Undeploy()
	ws, err := sv.PlanSharded(ds.X.Rows, PlanConfig{})
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	defer ws.Release()
	ws.Abort(errors.New("administrative"))
	// Poison the barrier directly too — the worst case Abort could race
	// into — and the pass must still recover by re-arming on entry.
	ws.fleet.Abort(errors.New("stale"))
	if _, _, err := sv.PredictInto(ds.X, ws); err != nil {
		t.Fatalf("predict after idle abort: %v", err)
	}
}

// TestRecoverShardRefusals covers the guard rails: bad index, foreign
// workspace, and a workspace with a pass in flight.
func TestRecoverShardRefusals(t *testing.T) {
	ds, bb, rec := shardTestModel(t, Parallel)
	sv, err := DeploySharded(bb, rec, ds.Graph, enclave.DefaultCostModel(), 2)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	defer sv.Undeploy()
	ws, err := sv.PlanSharded(ds.X.Rows, PlanConfig{})
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	defer ws.Release()
	if err := sv.RecoverShard(5, ws); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	other, err := DeploySharded(bb, rec, ds.Graph, enclave.DefaultCostModel(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Undeploy()
	if err := other.RecoverShard(0, ws); err == nil {
		t.Fatal("foreign workspace accepted")
	}
	ws.inflight.Store(true)
	if err := sv.RecoverShard(0, ws); err == nil {
		t.Fatal("busy workspace accepted")
	}
	ws.inflight.Store(false)
	if err := sv.RecoverShard(0, ws); err != nil {
		t.Fatalf("recovery of a healthy shard (idempotent restart): %v", err)
	}
}

// TestShardedNodeQueryLostAndRecovered pins the node-query path through
// a shard loss: queries to the dead shard fail with ErrEnclaveLost,
// queries keep their deadline contract, and after RecoverShard a
// subgraph workspace replanned from the fresh vault answers bit-
// identically to the pre-fault shard.
func TestShardedNodeQueryLostAndRecovered(t *testing.T) {
	ds, bb, rec := shardTestModel(t, Series)
	sv, err := DeploySharded(bb, rec, ds.Graph, enclave.DefaultCostModel(), 2)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	defer sv.Undeploy()
	scfg := subgraph.Config{Hops: 2, Fanout: 4, Seed: 11}
	seeds := []int{1}
	s, err := sv.RouteSeeds(seeds)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := sv.Shard(s).PlanSubgraph(2, scfg)
	if err != nil {
		t.Fatalf("subgraph plan: %v", err)
	}
	want, _, _, err := sv.PredictNodesAt(ds.X, seeds, s, ws)
	if err != nil {
		t.Fatalf("baseline query: %v", err)
	}
	wantCopy := append([]int{}, want...)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := sv.PredictNodesAtContext(ctx, ds.X, seeds, s, ws); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled node query: %v, want context.Canceled", err)
	}

	sv.Shard(s).Enclave.MarkLost()
	if _, _, _, err := sv.PredictNodesAt(ds.X, seeds, s, ws); !errors.Is(err, enclave.ErrEnclaveLost) {
		t.Fatalf("query on lost shard: %v, want ErrEnclaveLost", err)
	}
	ws.Release()

	if err := sv.RecoverShard(s); err != nil {
		t.Fatalf("RecoverShard: %v", err)
	}
	fresh, err := sv.Shard(s).PlanSubgraph(2, scfg)
	if err != nil {
		t.Fatalf("replanning subgraph on recovered shard: %v", err)
	}
	defer fresh.Release()
	got, _, _, err := sv.PredictNodesAt(ds.X, seeds, s, fresh)
	if err != nil {
		t.Fatalf("post-recovery query: %v", err)
	}
	for i := range wantCopy {
		if got[i] != wantCopy[i] {
			t.Fatalf("post-recovery label[%d] = %d, want %d", i, got[i], wantCopy[i])
		}
	}
}
