package core

import (
	"math"
	"math/rand"
	"testing"

	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/nn"
	"gnnvault/internal/substitute"
)

// tinyDataset is a fast, well-separated task for unit tests.
func tinyDataset() *datasets.Dataset {
	return datasets.Generate(datasets.Config{
		Name: "tiny", Nodes: 120, FeatureDim: 32, Classes: 4,
		AvgDegree: 6, Homophily: 0.9,
		ProtoDensity: 0.15, FeatureSignal: 0.5, FeatureNoise: 0.03,
		TrainPerClass: 8, Seed: 1,
	})
}

// fastTrain is a shortened training recipe for tests.
func fastTrain() TrainConfig {
	return TrainConfig{Epochs: 60, LR: 0.02, WeightDecay: 5e-4, Seed: 3}
}

func tinySpec() ModelSpec {
	return ModelSpec{Name: "tiny", BackboneHidden: []int{16, 8}, RectifierHidden: []int{16, 8}, Dropout: 0}
}

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"M1", "M2", "M3"} {
		if got := SpecByName(name); got.Name != name {
			t.Errorf("SpecByName(%q).Name = %q", name, got.Name)
		}
	}
}

func TestSpecByNameUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown spec did not panic")
		}
	}()
	SpecByName("M9")
}

func TestSpecForDataset(t *testing.T) {
	cases := map[string]string{
		"cora": "M1", "citeseer": "M1", "pubmed": "M1",
		"corafull": "M2", "computer": "M3", "photo": "M3",
		"unknown": "M1",
	}
	for ds, want := range cases {
		if got := SpecForDataset(ds).Name; got != want {
			t.Errorf("SpecForDataset(%q) = %q, want %q", ds, got, want)
		}
	}
}

func TestBackboneParamCountsMatchPaperShape(t *testing.T) {
	// M1 on a Cora-shaped input must have θ_bb = d·128+128 + 128·32+32 + 32·C+C.
	ds := tinyDataset()
	bb := TrainBackbone(ds, M1(), substitute.KindKNN, substitute.KNN(ds.X, 2),
		TrainConfig{Epochs: 1, LR: 0.01, Seed: 1})
	d := ds.X.Cols
	c := ds.NumClasses
	want := (d*128 + 128) + (128*32 + 32) + (32*c + c)
	if bb.NumParams() != want {
		t.Fatalf("θ_bb = %d, want %d", bb.NumParams(), want)
	}
}

func TestTrainBackboneLearns(t *testing.T) {
	ds := tinyDataset()
	sub := substitute.KNN(ds.X, 2)
	bb := TrainBackbone(ds, tinySpec(), substitute.KindKNN, sub, fastTrain())
	acc := bb.TestAccuracy(ds.X, ds.Labels, ds.TestMask)
	if acc < 0.5 {
		t.Fatalf("backbone test accuracy = %v, want > 0.5 on separable data", acc)
	}
}

func TestTrainDNNBackbone(t *testing.T) {
	ds := tinyDataset()
	bb := TrainBackbone(ds, tinySpec(), substitute.KindDNN, nil, fastTrain())
	if bb.SubGraph != nil {
		t.Fatal("DNN backbone should have no substitute graph")
	}
	acc := bb.TestAccuracy(ds.X, ds.Labels, ds.TestMask)
	if acc < 0.4 {
		t.Fatalf("DNN backbone accuracy = %v", acc)
	}
}

func TestOriginalBeatsBackbone(t *testing.T) {
	// The paper's core premise: GCN on the real graph ≫ GCN on a random
	// substitute graph.
	ds := tinyDataset()
	cfg := fastTrain()
	orig := TrainOriginal(ds, tinySpec(), cfg)
	rndSub := substitute.Random(ds.X.Rows, ds.Graph.NumUndirectedEdges(), 1.0, 5)
	bb := TrainBackbone(ds, tinySpec(), substitute.KindRandom, rndSub, cfg)
	pOrg := orig.TestAccuracy(ds.X, ds.Labels, ds.TestMask)
	pBB := bb.TestAccuracy(ds.X, ds.Labels, ds.TestMask)
	if pOrg <= pBB {
		t.Fatalf("p_org (%v) not above random-substitute p_bb (%v)", pOrg, pBB)
	}
}

func TestBackboneEmbeddingsShapes(t *testing.T) {
	ds := tinyDataset()
	bb := TrainBackbone(ds, tinySpec(), substitute.KindKNN, substitute.KNN(ds.X, 2),
		TrainConfig{Epochs: 2, LR: 0.01, Seed: 1})
	embs := bb.Embeddings(ds.X)
	if len(embs) != 3 { // 2 hidden blocks + logits
		t.Fatalf("blocks = %d, want 3", len(embs))
	}
	wantDims := []int{16, 8, ds.NumClasses}
	for i, e := range embs {
		if e.Cols != wantDims[i] || e.Rows != ds.X.Rows {
			t.Fatalf("block %d shape %s, want %dx%d", i, e.Shape(), ds.X.Rows, wantDims[i])
		}
	}
	// Hidden blocks are post-ReLU: non-negative.
	for i := 0; i < 2; i++ {
		for _, v := range embs[i].Data {
			if v < 0 {
				t.Fatalf("block %d has negative activation %v", i, v)
			}
		}
	}
}

func TestRectifierDesignsDimsAndRequirements(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ds := tinyDataset()
	bbDims := []int{16, 8, ds.NumClasses}

	rec := NewRectifier(rng, Parallel, bbDims, []int{16, 8}, ds.NumClasses, ds.Graph)
	if got := rec.RequiredEmbeddings(); len(got) != 3 || got[0] != 0 {
		t.Fatalf("parallel required = %v", got)
	}

	rec = NewRectifier(rng, Cascaded, bbDims, []int{16, 8}, ds.NumClasses, ds.Graph)
	if got := rec.RequiredEmbeddings(); len(got) != 3 {
		t.Fatalf("cascaded required = %v", got)
	}
	if rec.inDim(0) != 16+8+ds.NumClasses {
		t.Fatalf("cascaded first input = %d", rec.inDim(0))
	}

	rec = NewRectifier(rng, Series, bbDims, []int{16, 8}, ds.NumClasses, ds.Graph)
	if got := rec.RequiredEmbeddings(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("series required = %v (want final hidden block)", got)
	}
	if rec.inDim(0) != 8 {
		t.Fatalf("series first input = %d, want 8", rec.inDim(0))
	}
}

func TestParallelRectifierUnequalDepth(t *testing.T) {
	// M3-style: 5 backbone blocks, 3 rectifier layers → consume last 3.
	rng := rand.New(rand.NewSource(8))
	ds := tinyDataset()
	bbDims := []int{64, 32, 16, 8, ds.NumClasses}
	rec := NewRectifier(rng, Parallel, bbDims, []int{12, 6}, ds.NumClasses, ds.Graph)
	got := rec.RequiredEmbeddings()
	want := []int{2, 3, 4}
	if len(got) != 3 || got[0] != want[0] || got[2] != want[2] {
		t.Fatalf("required = %v, want %v", got, want)
	}
	if rec.inDim(0) != 16 || rec.inDim(1) != 12+8 || rec.inDim(2) != 6+ds.NumClasses {
		t.Fatalf("input dims = %d,%d,%d", rec.inDim(0), rec.inDim(1), rec.inDim(2))
	}
}

func TestParallelDeeperThanBackbonePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := tinyDataset()
	defer func() {
		if recover() == nil {
			t.Fatal("too-deep parallel rectifier did not panic")
		}
	}()
	NewRectifier(rng, Parallel, []int{8, 4}, []int{8, 8, 8}, 4, ds.Graph)
}

func TestRectifierSeriesSmallest(t *testing.T) {
	// Table II invariant: θ_series < θ_parallel and θ_series < θ_cascaded.
	rng := rand.New(rand.NewSource(10))
	ds := tinyDataset()
	bbDims := []int{16, 8, ds.NumClasses}
	sizes := map[RectifierDesign]int{}
	for _, d := range Designs {
		rec := NewRectifier(rng, d, bbDims, []int{16, 8}, ds.NumClasses, ds.Graph)
		sizes[d] = rec.NumParams()
	}
	if sizes[Series] >= sizes[Parallel] || sizes[Series] >= sizes[Cascaded] {
		t.Fatalf("sizes = %v, series should be smallest", sizes)
	}
}

// TestRectifierGradCheck verifies the custom concat backward of every
// design against finite differences.
func TestRectifierGradCheck(t *testing.T) {
	ds := datasets.Generate(datasets.Config{
		Name: "grad", Nodes: 14, FeatureDim: 6, Classes: 3,
		AvgDegree: 3, Homophily: 0.8,
		ProtoDensity: 0.3, FeatureSignal: 0.5, FeatureNoise: 0.05,
		TrainPerClass: 2, Seed: 11,
	})
	spec := ModelSpec{Name: "g", BackboneHidden: []int{5, 4}, RectifierHidden: []int{5, 4}, Dropout: 0}
	bb := TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2),
		TrainConfig{Epochs: 3, LR: 0.01, Seed: 11})
	all := bb.Embeddings(ds.X)

	for _, design := range Designs {
		rng := rand.New(rand.NewSource(12))
		rec := NewRectifier(rng, design, bb.BlockDims, spec.RectifierHidden, ds.NumClasses, ds.Graph)
		embs := selectEmbeddings(all, rec.RequiredEmbeddings())

		lossOf := func() float64 {
			out := rec.Forward(embs, false)
			l, _ := nn.MaskedCrossEntropy(out, ds.Labels, ds.TrainMask)
			return l
		}
		// Analytic gradients.
		nn.ZeroGrad(rec.Params())
		out := rec.Forward(embs, true)
		_, dOut := nn.MaskedCrossEntropy(out, ds.Labels, ds.TrainMask)
		rec.Backward(dOut)

		const h = 1e-5
		worst := 0.0
		for _, p := range rec.Params() {
			for i := 0; i < len(p.W.Data); i += 1 + len(p.W.Data)/25 {
				orig := p.W.Data[i]
				p.W.Data[i] = orig + h
				lp := lossOf()
				p.W.Data[i] = orig - h
				lm := lossOf()
				p.W.Data[i] = orig
				numeric := (lp - lm) / (2 * h)
				analytic := p.Grad.Data[i]
				denom := math.Max(math.Abs(numeric)+math.Abs(analytic), 1e-8)
				if rel := math.Abs(numeric-analytic) / denom; rel > worst {
					worst = rel
				}
			}
		}
		if worst > 1e-4 {
			t.Errorf("%s: rectifier gradient check worst error %v", design, worst)
		}
	}
}

func TestRectifierForwardWrongEmbeddingCountPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds := tinyDataset()
	rec := NewRectifier(rng, Series, []int{16, 8, 4}, []int{8}, 4, ds.Graph)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong embedding count did not panic")
		}
	}()
	rec.Forward(nil, false)
}

func TestRectifierParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ds := tinyDataset()
	bbDims := []int{16, 8, ds.NumClasses}
	r1 := NewRectifier(rng, Parallel, bbDims, []int{16, 8}, ds.NumClasses, ds.Graph)
	r2 := NewRectifier(rand.New(rand.NewSource(15)), Parallel, bbDims, []int{16, 8}, ds.NumClasses, ds.Graph)
	if err := r2.UnmarshalParams(r1.MarshalParams()); err != nil {
		t.Fatalf("UnmarshalParams: %v", err)
	}
	bb := TrainBackbone(ds, tinySpec(), substitute.KindKNN, substitute.KNN(ds.X, 2),
		TrainConfig{Epochs: 2, LR: 0.01, Seed: 14})
	embs := selectEmbeddings(bb.Embeddings(ds.X), r1.RequiredEmbeddings())
	if !r1.Forward(embs, false).EqualApprox(r2.Forward(embs, false), 1e-12) {
		t.Fatal("round-tripped rectifier differs")
	}
}

func TestRunPipelineRectifierBeatsBackbone(t *testing.T) {
	ds := tinyDataset()
	cfg := PipelineConfig{
		Spec: tinySpec(), Design: Parallel,
		SubKind: substitute.KindRandom, KNNK: 2,
		Train: fastTrain(),
	}
	res := RunPipeline(ds, cfg)
	if res.PRec <= res.PBB {
		t.Fatalf("Δp = %v ≤ 0: rectifier (%v) did not beat random-substitute backbone (%v)",
			res.DeltaP(), res.PRec, res.PBB)
	}
	if res.POrg == 0 || res.Original == nil {
		t.Fatal("original model missing")
	}
}

func TestRunPipelineSkipOriginal(t *testing.T) {
	ds := tinyDataset()
	cfg := PipelineConfig{
		Spec: tinySpec(), Design: Series,
		SubKind: substitute.KindKNN, KNNK: 2,
		Train:        TrainConfig{Epochs: 10, LR: 0.02, Seed: 2},
		SkipOriginal: true,
	}
	res := RunPipeline(ds, cfg)
	if res.Original != nil || res.POrg != 0 {
		t.Fatal("SkipOriginal did not skip")
	}
	if res.Rectifier.Design != Series {
		t.Fatal("wrong design")
	}
}

func TestDefaultPipelineConfig(t *testing.T) {
	cfg := DefaultPipelineConfig("corafull")
	if cfg.Spec.Name != "M2" || cfg.SubKind != substitute.KindKNN || cfg.KNNK != 2 {
		t.Fatalf("default config = %+v", cfg)
	}
}

func TestPipelineAllConvKinds(t *testing.T) {
	// The partition-before-training strategy must hold for GCN, GraphSAGE
	// and GAT alike (the paper's future work).
	ds := tinyDataset()
	for _, conv := range ConvKinds {
		spec := tinySpec()
		spec.Conv = conv
		cfg := PipelineConfig{
			Spec: spec, Design: Parallel,
			SubKind: substitute.KindKNN, KNNK: 2,
			Train:        TrainConfig{Epochs: 50, LR: 0.02, WeightDecay: 5e-4, Seed: 3},
			SkipOriginal: true,
		}
		res := RunPipeline(ds, cfg)
		if res.PRec <= res.PBB {
			t.Errorf("%s: p_rec (%v) did not beat p_bb (%v)", conv, res.PRec, res.PBB)
		}
	}
}

func TestDeployNonGCNRectifier(t *testing.T) {
	// SAGE rectifiers deploy and predict like GCN ones.
	ds := tinyDataset()
	spec := tinySpec()
	spec.Conv = ConvSAGE
	cfg := PipelineConfig{
		Spec: spec, Design: Series,
		SubKind: substitute.KindKNN, KNNK: 2,
		Train:        TrainConfig{Epochs: 30, LR: 0.02, Seed: 4},
		SkipOriginal: true,
	}
	res := RunPipeline(ds, cfg)
	v, err := Deploy(res.Backbone, res.Rectifier, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	labels, _, err := v.Predict(ds.X)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	if err := VerifyLabelOnly(labels, ds.NumClasses); err != nil {
		t.Fatal(err)
	}
}

func TestNewGraphConvUnknownPanics(t *testing.T) {
	ds := tinyDataset()
	rng := rand.New(rand.NewSource(1))
	defer func() {
		if recover() == nil {
			t.Fatal("unknown conv kind did not panic")
		}
	}()
	newGraphConv(rng, ConvKind("transformer"), 3, 2, ds.Graph, nil)
}
