package core

import (
	"fmt"
	"math/rand"

	"gnnvault/internal/bundle"
	"gnnvault/internal/enclave"
	"gnnvault/internal/graph"
)

// Export packages a deployed vault into the on-disk bundle format a model
// vendor ships to devices: public backbone parameters and substitute graph
// in the clear, rectifier parameters and private adjacency sealed to the
// rectifier enclave's measurement.
func (v *Vault) Export(dataset string) ([]byte, error) {
	if v.Backbone.SubGraph == nil {
		return nil, fmt.Errorf("core: export requires a GNN backbone (DNN backbones have no substitute graph)")
	}
	man := bundle.Manifest{
		Dataset:        dataset,
		ModelSpec:      v.Backbone.Spec.Name,
		Design:         string(v.rectifier.Design),
		Conv:           string(v.rectifier.Conv),
		Classes:        v.Backbone.BlockDims[len(v.Backbone.BlockDims)-1],
		FeatureDim:     v.Backbone.FeatureDim,
		Nodes:          v.privateGraph.N(),
		ThetaBackbone:  v.Backbone.NumParams(),
		ThetaRectifier: v.rectifier.NumParams(),
	}
	b := bundle.New(v.Enclave.Measurement(), man)
	b.Add(bundle.SectionBackboneParams, v.Backbone.Model.MarshalParams())
	b.Add(bundle.SectionSubstituteCOO, graph.MarshalCOO(v.Backbone.SubGraph))
	b.Add(bundle.SectionSealedRectifier, v.sealedParams)
	b.Add(bundle.SectionSealedGraph, v.sealedGraph)
	return b.Marshal()
}

// Import reconstructs a deployable Vault from a bundle on a device: it
// rebuilds the public backbone from the clear sections, launches a
// rectifier enclave of the architecture named in the manifest, verifies
// the measurement matches the bundle's, and unseals the private sections
// inside it.
func Import(data []byte, cost enclave.CostModel) (*Vault, error) {
	b, err := bundle.Unmarshal(data)
	if err != nil {
		return nil, err
	}
	man := b.Manifest
	spec := SpecByName(man.ModelSpec)
	spec.Conv = ConvKind(man.Conv)

	subCOO, ok := b.Section(bundle.SectionSubstituteCOO)
	if !ok {
		return nil, fmt.Errorf("core: bundle missing substitute graph")
	}
	sub, err := graph.UnmarshalCOO(subCOO)
	if err != nil {
		return nil, fmt.Errorf("core: substitute graph: %w", err)
	}

	// Rebuild the public backbone.
	rng := rand.New(rand.NewSource(0)) // weights are overwritten below
	adj := graph.Normalize(sub)
	model, dims, convIdx := buildBackboneModel(rng, spec, man.FeatureDim, man.Classes, sub, adj)
	bbParams, ok := b.Section(bundle.SectionBackboneParams)
	if !ok {
		return nil, fmt.Errorf("core: bundle missing backbone parameters")
	}
	if err := model.UnmarshalParams(bbParams); err != nil {
		return nil, fmt.Errorf("core: backbone parameters: %w", err)
	}
	bb := &Backbone{
		Spec: spec, Kind: "imported", Model: model,
		SubGraph: sub, adj: adj, FeatureDim: man.FeatureDim,
		BlockDims: dims, convIdx: convIdx,
	}

	// Launch the rectifier enclave and verify the measurement before
	// trusting the sealed sections to it. The private graph is only known
	// after unsealing, so the rectifier is built in two phases: identity
	// first (for the measurement), wiring after.
	sealedGraph, ok := b.Section(bundle.SectionSealedGraph)
	if !ok {
		return nil, fmt.Errorf("core: bundle missing sealed graph")
	}
	sealedRec, ok := b.Section(bundle.SectionSealedRectifier)
	if !ok {
		return nil, fmt.Errorf("core: bundle missing sealed rectifier")
	}
	probe := &Rectifier{
		Design:       RectifierDesign(man.Design),
		Conv:         spec.Conv,
		BackboneDims: dims,
		Dims:         append(append([]int{}, spec.RectifierHidden...), man.Classes),
	}
	encl := enclave.New(cost, probe.Identity())
	if encl.Measurement() != b.Measurement {
		return nil, fmt.Errorf("core: enclave measurement mismatch: bundle was built for a different rectifier build")
	}
	cooBytes, err := encl.Unseal(sealedGraph)
	if err != nil {
		return nil, fmt.Errorf("core: unsealing private graph: %w", err)
	}
	private, err := graph.UnmarshalCOO(cooBytes)
	if err != nil {
		return nil, fmt.Errorf("core: private graph: %w", err)
	}
	rec := NewRectifierConv(rng, RectifierDesign(man.Design), spec.Conv,
		dims, spec.RectifierHidden, man.Classes, private)
	recParams, err := encl.Unseal(sealedRec)
	if err != nil {
		return nil, fmt.Errorf("core: unsealing rectifier: %w", err)
	}
	if err := rec.UnmarshalParams(recParams); err != nil {
		return nil, fmt.Errorf("core: rectifier parameters: %w", err)
	}

	if err := encl.Alloc(rec.ParamBytes()); err != nil {
		return nil, fmt.Errorf("core: rectifier parameters do not fit EPC: %w", err)
	}
	if err := encl.Alloc(rec.Adjacency().NumBytes()); err != nil {
		return nil, fmt.Errorf("core: private adjacency does not fit EPC: %w", err)
	}
	rec.SetSerial(true)
	return &Vault{
		Backbone:     bb,
		Enclave:      encl,
		rectifier:    rec,
		privateGraph: private,
		sealedParams: sealedRec,
		sealedGraph:  sealedGraph,
	}, nil
}
