package core

import (
	"errors"
	"fmt"
	"time"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
	"gnnvault/internal/nn"
	"gnnvault/internal/subgraph"
)

// Subgraph inference plans. Full-graph inference (Plan/PredictInto) costs
// O(graph) per query regardless of how few labels the caller wants; a
// node-level query only needs the seeds' L-hop receptive field. A
// SubgraphWorkspace answers such queries from a sampled induced subgraph:
//
//   - the L-hop frontier is expanded over the *public* substitute
//     adjacency in the normal world, so the extracted node set reveals
//     nothing the untrusted side did not already hold (seeds are the
//     query; the substitute graph is public by construction);
//   - the backbone runs on the induced substitute sub-CSR over the
//     gathered feature rows, normal-world parallel kernels;
//   - inside the enclave, the *private* adjacency is induced over the
//     same (public) node set and the rectifier runs on that sub-CSR with
//     single-threaded kernels — private edges never influence which
//     nodes are extracted, only how their embeddings are recalibrated.
//
// Accuracy is approximate: receptive fields are truncated at Hops and
// sampled at Fanout (see DESIGN.md). Exact-GCN semantics remain available
// through the full-graph path, which PredictNodesInto falls back to when
// the frontier covers most of the graph anyway.

// ErrNodeOutOfRange is returned for query seeds outside the deployed
// graph's node range. It is a named error (not a formatted one) so the
// hot serving loop never pays a fmt on validation.
var ErrNodeOutOfRange = errors.New("core: query node out of range")

// ErrSubgraphUnsupported is returned by PlanSubgraph for deployments the
// subgraph engine cannot serve: DNN backbones (no public graph to expand
// over) and non-GCN convolutions (SAGE/GAT kernels are bound to their
// full-graph operators).
var ErrSubgraphUnsupported = errors.New("core: deployment not servable via subgraph engine")

// viewRows re-slices a cap-rows workspace buffer to its first rows rows.
// The backing array is untouched, so later calls can view more rows again
// without allocating.
func viewRows(m *mat.Matrix, rows int) *mat.Matrix {
	m.Rows = rows
	m.Data = m.Data[:rows*m.Cols]
	return m
}

// SubgraphWorkspace is a planned node-query pipeline for one vault:
// expansion state and the induced substitute CSR in the normal world,
// the induced private CSR plus rectifier scratch charged against the EPC,
// and the pre-bound ECALL body. Like Workspace, it belongs to one
// goroutine at a time; a serving fleet plans one per worker.
type SubgraphWorkspace struct {
	v    *Vault
	plan subgraph.Plan

	exp    *subgraph.Workspace
	pubCS  *subgraph.CSRSpace // induced substitute operator (normal world)
	privCS *subgraph.CSRSpace // induced private operator (enclave)

	feat   *mat.Matrix   // gathered feature rows, CapNodes×d backing
	bbOut  []*mat.Matrix // per backbone layer output (nil for identity layers)
	bbTmp  []*mat.Matrix // per backbone layer XW staging (GCN only)
	acts   []*mat.Matrix // reused per-layer activation list
	blocks []*mat.Matrix // reused block-output list

	needed     []int
	embs       []*mat.Matrix
	rectTmp    []*mat.Matrix // per rectifier conv XW staging
	rectOut    []*mat.Matrix // per rectifier conv output
	rectRelu   []*mat.Matrix // per hidden rectifier layer ReLU output
	rectConcat []*mat.Matrix // design wiring assembly buffers (sparse)

	labels []int // per-extracted-node labels; seeds occupy [0:numSeeds]

	curRows  int // extracted nodes of the in-flight query
	curSeeds int
	payload  int64 // per-row transferred embedding bytes
	epc      int64 // EPC charged at plan time
	ecall    func() error

	released bool
}

// PlanSubgraph builds a reusable node-query workspace for seed batches of
// up to maxSeeds nodes. Every buffer is sized for the worst case the
// (Hops, Fanout, maxSeeds) geometry admits, and the enclave is charged
// once, here, for the private-side working set: the induced private CSR,
// the rectifier scratch, the transferred embedding residency and the
// label buffer — all at CapNodes rows, which for realistic fanouts is
// orders of magnitude below the full-graph plan.
//
// PlanSubgraph fails with ErrSubgraphUnsupported for DNN backbones and
// non-GCN convolutions, and with enclave.ErrEPCExhausted (wrapped) when
// even the capped working set does not fit.
func (v *Vault) PlanSubgraph(maxSeeds int, cfg subgraph.Config) (*SubgraphWorkspace, error) {
	if v.undeployed.Load() {
		return nil, fmt.Errorf("core: subgraph plan on undeployed vault")
	}
	if v.Backbone.adj == nil {
		return nil, fmt.Errorf("%w: DNN backbone has no public graph to expand over", ErrSubgraphUnsupported)
	}
	for _, l := range v.Backbone.Model.Layers {
		switch l.(type) {
		case *nn.GCNConv, *nn.Dense, *nn.ReLU, *nn.Dropout:
		default:
			return nil, fmt.Errorf("%w: backbone layer %T", ErrSubgraphUnsupported, l)
		}
	}
	for _, c := range v.rectifier.convs {
		if _, ok := c.(*nn.GCNConv); !ok {
			return nil, fmt.Errorf("%w: rectifier conv %T", ErrSubgraphUnsupported, c)
		}
	}

	n := v.privateGraph.N()
	plan := subgraph.NewPlan(cfg, maxSeeds, n)
	capRows := plan.CapNodes
	ws := &SubgraphWorkspace{
		v:      v,
		plan:   plan,
		exp:    plan.NewWorkspace(),
		pubCS:  plan.NewCSRSpace(v.Backbone.adj.NNZ()),
		privCS: plan.NewCSRSpace(v.rectifier.adj.NNZ()),
		feat:   mat.New(capRows, v.Backbone.FeatureDim),
		needed: v.rectifier.RequiredEmbeddings(),
		labels: make([]int, capRows),
	}

	// Backbone scratch, one entry per layer (nil where the layer passes
	// its input through).
	cols := v.Backbone.FeatureDim
	for _, l := range v.Backbone.Model.Layers {
		var out, tmp *mat.Matrix
		switch layer := l.(type) {
		case *nn.GCNConv:
			tmp = mat.New(capRows, layer.OutDim)
			out = mat.New(capRows, layer.OutDim)
			cols = layer.OutDim
		case *nn.Dense:
			out = mat.New(capRows, layer.OutDim)
			cols = layer.OutDim
		case *nn.ReLU:
			out = mat.New(capRows, cols)
		}
		ws.bbOut = append(ws.bbOut, out)
		ws.bbTmp = append(ws.bbTmp, tmp)
	}
	ws.acts = make([]*mat.Matrix, 0, len(v.Backbone.Model.Layers))
	ws.blocks = make([]*mat.Matrix, 0, len(v.Backbone.convIdx))
	ws.embs = make([]*mat.Matrix, 0, len(ws.needed))

	// Rectifier scratch, mirroring Rectifier.Plan but at CapNodes rows.
	r := v.rectifier
	ws.rectConcat = make([]*mat.Matrix, len(r.convs))
	for k := range r.convs {
		needsConcat := (r.Design == Parallel && k > 0) ||
			(r.Design == Cascaded && k == 0 && len(ws.needed) > 1)
		if needsConcat {
			ws.rectConcat[k] = mat.New(capRows, r.inDim(k))
		}
		ws.rectTmp = append(ws.rectTmp, mat.New(capRows, r.Dims[k]))
		ws.rectOut = append(ws.rectOut, mat.New(capRows, r.Dims[k]))
		if k < len(r.convs)-1 {
			ws.rectRelu = append(ws.rectRelu, mat.New(capRows, r.Dims[k]))
		}
	}

	// EPC accounting: the enclave-resident share of the plan — induced
	// private CSR, rectifier scratch, transferred embeddings, labels —
	// charged once at the worst-case row count. Expansion state and the
	// substitute CSR stay in the normal world (the node set is public).
	for _, i := range ws.needed {
		ws.payload += int64(v.Backbone.BlockDims[i]) * 8
	}
	var rectBytes int64
	for _, m := range ws.rectTmp {
		rectBytes += m.NumBytes()
	}
	for _, m := range ws.rectOut {
		rectBytes += m.NumBytes()
	}
	for _, m := range ws.rectRelu {
		rectBytes += m.NumBytes()
	}
	for _, m := range ws.rectConcat {
		if m != nil {
			rectBytes += m.NumBytes()
		}
	}
	ws.epc = ws.privCS.NumBytes() + rectBytes + ws.payload*int64(capRows) + int64(capRows)*8
	if err := v.Enclave.Alloc(ws.epc); err != nil {
		return nil, fmt.Errorf("core: subgraph workspace does not fit EPC: %w", err)
	}
	ws.ecall = ws.rectifyExtracted
	return ws, nil
}

// rectifyExtracted is the pre-bound ECALL body: induce the private
// operator over the (publicly expanded) node set, run the rectifier on
// the induced CSR with single-threaded kernels, and reduce to labels.
// Everything it touches was planned; it never allocates.
func (ws *SubgraphWorkspace) rectifyExtracted() error {
	s := ws.curRows
	subPriv, err := ws.exp.Induce(ws.v.rectifier.adj, ws.privCS)
	if err != nil {
		return err
	}
	r := ws.v.rectifier
	var h *mat.Matrix
	for k := range r.convs {
		var in *mat.Matrix
		switch {
		case k == 0 && ws.rectConcat[0] != nil:
			c := viewRows(ws.rectConcat[0], s)
			mat.HConcatInto(c, ws.embs...)
			in = c
		case k == 0:
			in = ws.embs[0]
		case ws.rectConcat[k] != nil: // parallel wiring
			c := viewRows(ws.rectConcat[k], s)
			mat.HConcatInto(c, h, ws.embs[k])
			in = c
		default: // cascaded/series: layer input is exactly prev
			in = h
		}
		conv := r.convs[k].(*nn.GCNConv)
		tmp := viewRows(ws.rectTmp[k], s)
		z := viewRows(ws.rectOut[k], s)
		mat.MatMulSerialInto(tmp, in, conv.W)
		subPriv.MulDenseSerialInto(z, tmp)
		mat.AddBiasInto(z, z, conv.B)
		if k < len(r.convs)-1 {
			ro := viewRows(ws.rectRelu[k], s)
			mat.ReLUInto(ro, z)
			h = ro
		} else {
			h = z
		}
	}
	h.ArgmaxRowsInto(ws.labels[:s])
	return nil
}

// backboneExtracted runs the backbone layer stack over the gathered
// feature rows using the induced substitute operator, returning the
// per-block embeddings (the transfer payload). Normal world, parallel
// kernels, no allocation.
func (ws *SubgraphWorkspace) backboneExtracted(subPub *graph.NormAdjacency, s int) []*mat.Matrix {
	h := ws.feat // already viewed to s rows by the gather
	ws.acts = ws.acts[:0]
	for i, l := range ws.v.Backbone.Model.Layers {
		switch layer := l.(type) {
		case *nn.GCNConv:
			tmp := viewRows(ws.bbTmp[i], s)
			out := viewRows(ws.bbOut[i], s)
			mat.MatMulInto(tmp, h, layer.W)
			subPub.MulDenseInto(out, tmp)
			mat.AddBiasInto(out, out, layer.B)
			h = out
		case *nn.Dense:
			out := viewRows(ws.bbOut[i], s)
			mat.MatMulInto(out, h, layer.W)
			mat.AddBiasInto(out, out, layer.B)
			h = out
		case *nn.ReLU:
			out := viewRows(ws.bbOut[i], s)
			mat.ReLUInto(out, h)
			h = out
		case *nn.Dropout:
			// inference-mode identity
		}
		ws.acts = append(ws.acts, h)
	}
	ws.blocks = ws.v.Backbone.appendBlockOutputs(ws.blocks[:0], ws.acts)
	return ws.blocks
}

// EnclaveBytes returns the EPC charged for this workspace at plan time.
func (ws *SubgraphWorkspace) EnclaveBytes() int64 { return ws.epc }

// MaxSeeds returns the largest seed batch one query accepts.
func (ws *SubgraphWorkspace) MaxSeeds() int { return ws.plan.MaxSeeds }

// Config returns the sampling geometry the workspace was planned with.
func (ws *SubgraphWorkspace) Config() subgraph.Config { return ws.plan.Cfg }

// CapNodes returns the worst-case extracted node count per query.
func (ws *SubgraphWorkspace) CapNodes() int { return ws.plan.CapNodes }

// LastExtracted returns the node count of the most recent extraction —
// the effective batch height of the last query's forward pass.
func (ws *SubgraphWorkspace) LastExtracted() int { return ws.curRows }

// Release returns the workspace's EPC to the enclave. The workspace must
// not be used afterwards. Idempotent.
func (ws *SubgraphWorkspace) Release() {
	if ws.released {
		return
	}
	ws.released = true
	ws.v.Enclave.Free(ws.epc)
}

// PredictNodesInto answers a node-level query from the sampled L-hop
// subgraph of the seeds: frontier expansion over the public substitute
// adjacency, backbone forward on the induced substitute CSR, then one
// ECALL that induces the private adjacency over the same node set and
// rectifies inside the enclave. x is the full public feature matrix; only
// the seeds' feature rows (and their extracted neighbourhoods') are
// touched.
//
// The returned slice holds one label per seed, aliases the workspace and
// is overwritten by the next call. Out-of-range seeds fail with
// ErrNodeOutOfRange before any work happens.
//
// When the expanded frontier covers more than ¾ of the graph, the sampled
// pass would cost full-graph money anyway, so the query falls back to the
// exact full-graph Predict (allocating — the subgraph plan's buffers
// cannot hold the whole graph) and returns exact-GCN labels.
func (v *Vault) PredictNodesInto(x *mat.Matrix, seeds []int, ws *SubgraphWorkspace) ([]int, InferenceBreakdown, error) {
	var bd InferenceBreakdown
	if ws.released {
		return nil, bd, fmt.Errorf("core: PredictNodesInto on released workspace")
	}
	if ws.v != v {
		return nil, bd, fmt.Errorf("core: workspace planned for a different vault")
	}
	n := v.privateGraph.N()
	if x.Rows != n {
		return nil, bd, fmt.Errorf("core: input rows %d != deployed graph nodes %d", x.Rows, n)
	}
	if x.Cols != v.Backbone.FeatureDim {
		return nil, bd, fmt.Errorf("core: input features %d != backbone feature dim %d", x.Cols, v.Backbone.FeatureDim)
	}
	for _, s := range seeds {
		if s < 0 || s >= n {
			return nil, bd, ErrNodeOutOfRange
		}
	}

	before := v.Enclave.Ledger()
	v.Enclave.ResetPeak()

	// Normal world: expand, induce the public operator, gather features,
	// run the backbone — all into planned buffers.
	start := time.Now()
	cnt, err := ws.exp.Expand(v.Backbone.adj, seeds)
	if err != nil {
		return nil, bd, err
	}
	if cnt*4 >= n*3 {
		// The frontier is most of the graph: sampled inference saves
		// nothing, so serve exact full-graph labels instead.
		all, fbd, err := v.Predict(x)
		if err != nil {
			return nil, fbd, err
		}
		out := ws.labels[:len(seeds)]
		for i, s := range seeds {
			out[i] = all[s]
		}
		return out, fbd, nil
	}
	subPub, err := ws.exp.Induce(v.Backbone.adj, ws.pubCS)
	if err != nil {
		return nil, bd, err
	}
	viewRows(ws.feat, cnt)
	subgraph.GatherRowsInto(ws.feat, x, ws.exp.Nodes())
	blocks := ws.backboneExtracted(subPub, cnt)
	bd.BackboneTime = time.Since(start)

	// One ECALL: seed IDs and the extracted embeddings cross in, labels
	// for the seeds cross out.
	ws.embs = ws.embs[:0]
	for _, i := range ws.needed {
		ws.embs = append(ws.embs, blocks[i])
	}
	ws.curRows = cnt
	ws.curSeeds = len(seeds)
	payload := ws.payload*int64(cnt) + int64(len(seeds))*8
	if err := v.Enclave.Ecall(payload, int64(len(seeds))*8, ws.ecall); err != nil {
		return nil, bd, fmt.Errorf("core: enclave subgraph inference: %w", err)
	}

	fillBreakdown(&bd, before, v.Enclave.Ledger())
	// Seeds occupy local rows 0..len(seeds)-1 by construction.
	return ws.labels[:len(seeds)], bd, nil
}

// EnableNodeServing plans a vault-owned subgraph workspace and routes
// subsequent PredictNodes calls through it (guarded by an internal mutex,
// so the convenience API stays safe for casual concurrent use; serving
// fleets should plan per-worker workspaces instead). Re-enabling replaces
// the previous plan.
func (v *Vault) EnableNodeServing(maxSeeds int, cfg subgraph.Config) error {
	ws, err := v.PlanSubgraph(maxSeeds, cfg)
	if err != nil {
		return err
	}
	v.nodeMu.Lock()
	old := v.nodeWS
	v.nodeWS = ws
	v.nodeMu.Unlock()
	if old != nil {
		old.Release()
	}
	return nil
}

// DisableNodeServing releases the vault-owned subgraph workspace (if
// any); PredictNodes reverts to the exact full-graph path.
func (v *Vault) DisableNodeServing() {
	v.nodeMu.Lock()
	old := v.nodeWS
	v.nodeWS = nil
	v.nodeMu.Unlock()
	if old != nil {
		old.Release()
	}
}
