package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"gnnvault/internal/exec"
	"gnnvault/internal/mat"
	"gnnvault/internal/nn"
	"gnnvault/internal/obs"
	"gnnvault/internal/subgraph"
)

// Subgraph inference plans. Full-graph inference (Plan/PredictInto) costs
// O(graph) per query regardless of how few labels the caller wants; a
// node-level query only needs the seeds' L-hop receptive field. A
// SubgraphWorkspace answers such queries from a sampled induced subgraph:
//
//   - the L-hop frontier is expanded over the *public* substitute
//     adjacency in the normal world, so the extracted node set reveals
//     nothing the untrusted side did not already hold (seeds are the
//     query; the substitute graph is public by construction);
//   - the backbone runs on the induced substitute sub-CSR over the
//     gathered feature rows, normal-world parallel kernels;
//   - inside the enclave, the *private* adjacency is induced over the
//     same (public) node set and the rectifier runs on that sub-CSR with
//     single-threaded kernels — private edges never influence which
//     nodes are extracted, only how their embeddings are recalibrated.
//
// Both forward passes execute on the shared internal/exec engine: at plan
// time the backbone and rectifier are compiled once against the induced
// sub-CSR headers (which Induce re-fills in place per query), so a
// subgraph plan is just a small-n direct instance of the same programs the
// full-graph path runs — the per-design wiring lives in one compiler
// (lower.go), not here.
//
// Accuracy is approximate: receptive fields are truncated at Hops and
// sampled at Fanout (see DESIGN.md). Exact-GCN semantics remain available
// through the full-graph path, which PredictNodesInto falls back to when
// the frontier covers most of the graph anyway.

// ErrNodeOutOfRange is returned for query seeds outside the deployed
// graph's node range. It is a named error (not a formatted one) so the
// hot serving loop never pays a fmt on validation.
var ErrNodeOutOfRange = errors.New("core: query node out of range")

// ErrSubgraphUnsupported is returned by PlanSubgraph for deployments the
// subgraph engine cannot serve: DNN backbones (no public graph to expand
// over) and non-GCN convolutions (SAGE/GAT kernels are bound to their
// full-graph operators).
var ErrSubgraphUnsupported = errors.New("core: deployment not servable via subgraph engine")

// viewRows re-slices a cap-rows workspace buffer to its first rows rows.
// The backing array is untouched, so later calls can view more rows again
// without allocating.
func viewRows(m *mat.Matrix, rows int) *mat.Matrix {
	m.Rows = rows
	m.Data = m.Data[:rows*m.Cols]
	return m
}

// SubgraphWorkspace is a planned node-query pipeline for one vault:
// expansion state and the induced substitute CSR in the normal world,
// the induced private CSR plus the rectifier machine's buffers charged
// against the EPC, and the pre-bound ECALL body. Like Workspace, it
// belongs to one goroutine at a time; a serving fleet plans one per
// worker.
type SubgraphWorkspace struct {
	v    *Vault
	plan subgraph.Plan

	exp    *subgraph.Workspace
	pubCS  *subgraph.CSRSpace // induced substitute operator (normal world)
	privCS *subgraph.CSRSpace // induced private operator (enclave)

	feat   *mat.Matrix   // gathered feature rows, CapNodes×d backing
	featIn []*mat.Matrix // pre-bound backbone input list ({feat})
	bbMach *exec.Machine // backbone program over the induced public CSR
	blocks []*mat.Matrix // stable views of the backbone block values

	rectMach *exec.Machine // rectifier program over the induced private CSR
	needed   []int
	embs     []*mat.Matrix

	labels []int // per-extracted-node labels; seeds occupy [0:numSeeds]

	curRows  int // extracted nodes of the in-flight query
	curSeeds int
	payload  int64 // per-row transferred embedding bytes
	epc      int64 // EPC charged at plan time
	ecall    func() error

	// Flight-recorder state. rec is never nil (obs.Nop default);
	// curTrace/curECall carry the in-flight query's trace and ECALL span
	// IDs into the pre-bound ECALL body, which records the private-side
	// induction span under them.
	rec      obs.Recorder
	curTrace uint64
	curECall uint64

	released bool
}

// PlanSubgraph builds a reusable node-query workspace for seed batches of
// up to maxSeeds nodes. Every buffer is sized for the worst case the
// (Hops, Fanout, maxSeeds) geometry admits, and the enclave is charged
// once, here, for the private-side working set: the induced private CSR,
// the rectifier machine's buffers, the transferred embedding residency and
// the label buffer — all at CapNodes rows, which for realistic fanouts is
// orders of magnitude below the full-graph plan.
//
// PlanSubgraph fails with ErrSubgraphUnsupported for DNN backbones and
// non-GCN convolutions, and with enclave.ErrEPCExhausted (wrapped) when
// even the capped working set does not fit.
func (v *Vault) PlanSubgraph(maxSeeds int, cfg subgraph.Config) (*SubgraphWorkspace, error) {
	return v.PlanSubgraphWith(maxSeeds, cfg, PlanConfig{})
}

// PlanSubgraphWith is PlanSubgraph under a plan configuration: only the
// Precision, MinAgreement and Workers fields apply (subgraph rectifier
// execution is direct, never tiled — the induced batch is already small).
// A reduced-precision subgraph plan calibrates against the *full* graph:
// the fp64 reference backbone and rectifier run once over the registered
// calibration features, the derived scales carry over to the per-query
// machine (both machines compile from the same lowering, so their value
// tables — and hence scale indices — align), and a full-graph reduced
// check machine must meet the agreement floor before the plan is
// admitted. Like PlanWith, int8 without registered calibration features
// fails with ErrCalibrationRequired.
func (v *Vault) PlanSubgraphWith(maxSeeds int, cfg subgraph.Config, pcfg PlanConfig) (*SubgraphWorkspace, error) {
	if v.undeployed.Load() {
		return nil, fmt.Errorf("core: subgraph plan on undeployed vault")
	}
	if !pcfg.Precision.valid() {
		return nil, fmt.Errorf("core: unknown plan precision %d", pcfg.Precision)
	}
	if v.Backbone.adj == nil {
		return nil, fmt.Errorf("%w: DNN backbone has no public graph to expand over", ErrSubgraphUnsupported)
	}
	for _, l := range v.Backbone.Model.Layers {
		switch l.(type) {
		case *nn.GCNConv, *nn.Dense, *nn.ReLU, *nn.Dropout:
		default:
			return nil, fmt.Errorf("%w: backbone layer %T", ErrSubgraphUnsupported, l)
		}
	}
	for _, c := range v.rectifier.convs {
		if _, ok := c.(*nn.GCNConv); !ok {
			return nil, fmt.Errorf("%w: rectifier conv %T", ErrSubgraphUnsupported, c)
		}
	}

	n := v.privateGraph.N()
	elem := pcfg.Precision.Elem()
	rec := pcfg.Recorder
	if rec == nil {
		rec = obs.Nop
	}
	rectCfg := exec.Config{Workers: 1, Elem: elem, Recorder: rec}
	if elem != exec.F64 {
		// Calibrate against the full graph: the per-query sub-CSR is not
		// known at plan time, but the sub program compiles from the same
		// lowering as the full-graph one, so scales derived here index the
		// same values the per-query machine computes.
		fullProg, _ := v.rectifier.compileRectifier(n, nil, nil)
		if !fullProg.Tileable() {
			return nil, fmt.Errorf("core: %s subgraph plan: %w", pcfg.Precision, exec.ErrPrecisionUnsupported)
		}
		fullBBProg, fullBlockVals, _ := v.Backbone.compileBackbone(n, nil, pcfg.Workers)
		fullBB, err := fullBBProg.NewMachine(exec.Config{Workers: pcfg.Workers})
		if err != nil {
			return nil, fmt.Errorf("core: compiling calibration backbone: %w", err)
		}
		fullBlocks := make([]*mat.Matrix, 0, len(fullBlockVals))
		for _, bv := range fullBlockVals {
			fullBlocks = append(fullBlocks, fullBB.Value(bv))
		}
		scales, ref, embs, err := v.calibrateReduced(fullProg, fullBB, fullBlocks, pcfg)
		if err != nil {
			return nil, err
		}
		rectCfg.Scales = scales
		if ref != nil {
			check, err := fullProg.NewMachine(exec.Config{Workers: 1, Elem: elem, Scales: scales})
			if err != nil {
				return nil, fmt.Errorf("core: compiling calibration check machine: %w", err)
			}
			if err := checkAgreement(check, n, embs, ref, pcfg); err != nil {
				return nil, err
			}
		}
	}
	plan := subgraph.NewPlan(cfg, maxSeeds, n)
	capRows := plan.CapNodes
	ws := &SubgraphWorkspace{
		v:      v,
		plan:   plan,
		exp:    plan.NewWorkspace(),
		pubCS:  plan.NewCSRSpace(v.Backbone.adj.NNZ()),
		privCS: plan.NewCSRSpace(v.rectifier.adj.NNZ()),
		feat:   mat.New(capRows, v.Backbone.FeatureDim),
		needed: v.rectifier.RequiredEmbeddings(),
		labels: make([]int, capRows),
		rec:    rec,
	}

	// Compile both halves against the induced sub-CSR headers: the header
	// pointers are stable, their contents are re-filled by Induce per
	// query. Both programs come out of the compiler epilogue-fused, with
	// block embeddings pinned. The backbone machine runs normal-world
	// (global worker default); the rectifier machine is in-enclave,
	// single-threaded.
	bbProg, blockVals, _ := v.Backbone.compileBackbone(capRows, ws.pubCS.Sub(), 0)
	bbMach, err := bbProg.NewMachine(exec.Config{Recorder: rec})
	if err != nil {
		return nil, fmt.Errorf("core: compiling subgraph backbone: %w", err)
	}
	ws.bbMach = bbMach
	ws.featIn = []*mat.Matrix{ws.feat}
	for _, bv := range blockVals {
		ws.blocks = append(ws.blocks, bbMach.Value(bv))
	}
	rectProg, _ := v.rectifier.compileRectifier(capRows, ws.privCS.Sub(), nil) // GCN-only here: no opaque bytes
	rectMach, err := rectProg.NewMachine(rectCfg)
	if err != nil {
		return nil, fmt.Errorf("core: compiling subgraph rectifier: %w", err)
	}
	ws.rectMach = rectMach
	ws.embs = make([]*mat.Matrix, 0, len(ws.needed))

	// EPC accounting: the enclave-resident share of the plan — induced
	// private CSR, rectifier machine buffers, transferred embeddings,
	// labels — charged once at the worst-case row count. Expansion state,
	// the substitute CSR and the backbone machine stay in the normal world
	// (the node set is public).
	for _, i := range ws.needed {
		ws.payload += int64(v.Backbone.BlockDims[i]) * pcfg.Precision.ElemBytes()
	}
	ws.epc = ws.privCS.NumBytes() + rectMach.BufferBytes() + ws.payload*int64(capRows) + int64(capRows)*8
	if err := v.Enclave.Alloc(ws.epc); err != nil {
		return nil, fmt.Errorf("core: subgraph workspace does not fit EPC: %w", err)
	}
	ws.ecall = ws.rectifyExtracted
	return ws, nil
}

// rectifyExtracted is the pre-bound ECALL body: induce the private
// operator over the (publicly expanded) node set — filling the sub-CSR
// header the rectifier program was compiled against — then run the
// machine, which reduces to labels. Everything it touches was planned; it
// never allocates.
func (ws *SubgraphWorkspace) rectifyExtracted() error {
	s := ws.curRows
	rec := ws.rec
	var t0 int64
	recOn := rec.Enabled()
	if recOn {
		t0 = rec.Clock()
	}
	if _, err := ws.exp.Induce(ws.v.rectifier.adj, ws.privCS); err != nil {
		return err
	}
	if recOn {
		rec.Record(obs.Span{Trace: ws.curTrace, Parent: ws.curECall, Kind: obs.SpanInducePrivate,
			Rows: int32(s), Start: t0, Dur: rec.Clock() - t0})
	}
	ws.rectMach.Run(s, ws.embs, ws.labels[:s])
	return nil
}

// EnclaveBytes returns the EPC charged for this workspace at plan time.
func (ws *SubgraphWorkspace) EnclaveBytes() int64 { return ws.epc }

// MaxSeeds returns the largest seed batch one query accepts.
func (ws *SubgraphWorkspace) MaxSeeds() int { return ws.plan.MaxSeeds }

// Config returns the sampling geometry the workspace was planned with.
func (ws *SubgraphWorkspace) Config() subgraph.Config { return ws.plan.Cfg }

// CapNodes returns the worst-case extracted node count per query.
func (ws *SubgraphWorkspace) CapNodes() int { return ws.plan.CapNodes }

// LastExtracted returns the node count of the most recent extraction —
// the effective batch height of the last query's forward pass.
func (ws *SubgraphWorkspace) LastExtracted() int { return ws.curRows }

// ExtractedNodes returns the global node ids of the most recent
// extraction, seeds first. The slice aliases workspace state and is
// overwritten by the next query. Sharded routing uses it to price the
// induced rows a shard enclave had to fetch from peers.
func (ws *SubgraphWorkspace) ExtractedNodes() []int { return ws.exp.Nodes() }

// Release returns the workspace's EPC to the enclave. The workspace must
// not be used afterwards. Idempotent.
func (ws *SubgraphWorkspace) Release() {
	if ws.released {
		return
	}
	ws.released = true
	ws.v.Enclave.Free(ws.epc)
}

// PredictNodesInto answers a node-level query from the sampled L-hop
// subgraph of the seeds: frontier expansion over the public substitute
// adjacency, the compiled backbone program on the induced substitute CSR,
// then one ECALL that induces the private adjacency over the same node set
// and runs the compiled rectifier program inside the enclave. x is the
// full public feature matrix; only the seeds' feature rows (and their
// extracted neighbourhoods') are touched.
//
// The returned slice holds one label per seed, aliases the workspace and
// is overwritten by the next call. Out-of-range seeds fail with
// ErrNodeOutOfRange before any work happens.
//
// When the expanded frontier covers more than ¾ of the graph, the sampled
// pass would cost full-graph money anyway, so the query falls back to the
// exact full-graph Predict (allocating — the subgraph plan's buffers
// cannot hold the whole graph) and returns exact-GCN labels.
func (v *Vault) PredictNodesInto(x *mat.Matrix, seeds []int, ws *SubgraphWorkspace) ([]int, InferenceBreakdown, error) {
	labels, _, bd, err := v.predictNodesInto(context.Background(), x, seeds, ws, false)
	return labels, bd, err
}

// PredictNodesIntoContext is PredictNodesInto with a deadline: a
// cancelled or expired ctx fails the query at the next boundary — on
// entry or just before the ECALL — with an error wrapping ctx.Err(),
// so a query routed to a slow or dead shard never outlives its budget.
func (v *Vault) PredictNodesIntoContext(ctx context.Context, x *mat.Matrix, seeds []int, ws *SubgraphWorkspace) ([]int, InferenceBreakdown, error) {
	labels, _, bd, err := v.predictNodesInto(ctx, x, seeds, ws, false)
	return labels, bd, err
}

// PredictNodesScoresInto is PredictNodesInto for deployments that expose
// per-class scores: the seeds' rectified logit rows cross the boundary
// alongside their labels, priced into the ECALL result payload. The
// returned matrix has one row per seed and aliases workspace memory —
// overwritten by the next call — except on the full-graph fallback path,
// where it is freshly allocated. See Vault.PredictScoresInto for what
// exposing scores means for the threat model.
func (v *Vault) PredictNodesScoresInto(x *mat.Matrix, seeds []int, ws *SubgraphWorkspace) (*mat.Matrix, []int, InferenceBreakdown, error) {
	labels, scores, bd, err := v.predictNodesInto(context.Background(), x, seeds, ws, true)
	return scores, labels, bd, err
}

func (v *Vault) predictNodesInto(ctx context.Context, x *mat.Matrix, seeds []int, ws *SubgraphWorkspace, wantScores bool) ([]int, *mat.Matrix, InferenceBreakdown, error) {
	var bd InferenceBreakdown
	if err := ctx.Err(); err != nil {
		return nil, nil, bd, fmt.Errorf("core: node query: %w", err)
	}
	if ws.released {
		return nil, nil, bd, fmt.Errorf("core: PredictNodesInto on released workspace")
	}
	if ws.v != v {
		return nil, nil, bd, fmt.Errorf("core: workspace planned for a different vault")
	}
	n := v.privateGraph.N()
	if x.Rows != n {
		return nil, nil, bd, fmt.Errorf("core: input rows %d != deployed graph nodes %d", x.Rows, n)
	}
	if x.Cols != v.Backbone.FeatureDim {
		return nil, nil, bd, fmt.Errorf("core: input features %d != backbone feature dim %d", x.Cols, v.Backbone.FeatureDim)
	}
	for _, s := range seeds {
		if s < 0 || s >= n {
			return nil, nil, bd, ErrNodeOutOfRange
		}
	}

	before := v.Enclave.Ledger()
	v.Enclave.ResetPeak()

	// Flight recorder: one trace per node query — expand, induce and
	// backbone stage spans in the normal world, the ECALL span wrapping
	// the in-enclave induction and rectifier ops, all under one
	// SpanNodeQuery root. Scalar probe state only; the hot path stays at
	// 0 allocs/op with recording on or off.
	rec := ws.rec
	recOn := rec.Enabled()
	var trace, ecID uint64
	var qStart, stageStart int64
	if recOn {
		trace = rec.NewSpan()
		ecID = rec.NewSpan()
		ws.bbMach.SetTrace(trace, trace)
		ws.rectMach.SetTrace(trace, ecID)
		ws.curTrace, ws.curECall = trace, ecID
		qStart = rec.Clock()
		stageStart = qStart
	}

	// Normal world: expand, induce the public operator, gather features,
	// run the backbone program — all into planned buffers.
	start := time.Now()
	cnt, err := ws.exp.Expand(v.Backbone.adj, seeds)
	if err != nil {
		return nil, nil, bd, err
	}
	if recOn {
		now := rec.Clock()
		rec.Record(obs.Span{Trace: trace, Parent: trace, Kind: obs.SpanExpand,
			Rows: int32(cnt), Start: stageStart, Dur: now - stageStart})
		stageStart = now
	}
	if cnt*4 >= n*3 {
		// The frontier is most of the graph: sampled inference saves
		// nothing, so serve exact full-graph answers instead.
		all, allScores, fbd, err := v.predict(x, wantScores)
		if err != nil {
			return nil, nil, fbd, err
		}
		out := ws.labels[:len(seeds)]
		var scores *mat.Matrix
		if wantScores {
			scores = mat.New(len(seeds), allScores.Cols)
		}
		for i, s := range seeds {
			out[i] = all[s]
			if wantScores {
				copy(scores.Row(i), allScores.Row(s))
			}
		}
		if recOn {
			rec.Record(obs.Span{Trace: trace, ID: trace, Kind: obs.SpanNodeQuery,
				Rows: int32(len(seeds)), Start: qStart, Dur: rec.Clock() - qStart})
		}
		return out, scores, fbd, nil
	}
	if _, err := ws.exp.Induce(v.Backbone.adj, ws.pubCS); err != nil {
		return nil, nil, bd, err
	}
	viewRows(ws.feat, cnt)
	subgraph.GatherRowsInto(ws.feat, x, ws.exp.Nodes())
	if recOn {
		now := rec.Clock()
		rec.Record(obs.Span{Trace: trace, Parent: trace, Kind: obs.SpanInduce,
			Rows: int32(cnt), Start: stageStart, Dur: now - stageStart})
		stageStart = now
	}
	ws.bbMach.Run(cnt, ws.featIn, nil)
	bd.BackboneTime = time.Since(start)
	if recOn {
		now := rec.Clock()
		rec.Record(obs.Span{Trace: trace, Parent: trace, Kind: obs.SpanBackbone,
			Rows: int32(cnt), Start: stageStart, Dur: now - stageStart})
		stageStart = now
	}

	// One ECALL: seed IDs and the extracted embeddings cross in, labels
	// — plus, for a scores call, the seeds' logit rows — cross out.
	ws.embs = ws.embs[:0]
	for _, i := range ws.needed {
		ws.embs = append(ws.embs, ws.blocks[i])
	}
	ws.curRows = cnt
	ws.curSeeds = len(seeds)
	payload := ws.payload*int64(cnt) + int64(len(seeds))*8
	resultBytes := int64(len(seeds)) * 8
	if wantScores {
		resultBytes += int64(len(seeds)) * int64(ws.rectMach.OutputWidth()) * 8
	}
	// Last deadline check before the enclave transition: the ECALL itself
	// is modelled (not wall-clock), so the boundary is the right place to
	// observe an expired budget.
	if err := ctx.Err(); err != nil {
		return nil, nil, bd, fmt.Errorf("core: node query: %w", err)
	}
	if err := v.Enclave.Ecall(payload, resultBytes, ws.ecall); err != nil {
		return nil, nil, bd, fmt.Errorf("core: enclave subgraph inference: %w", err)
	}
	if recOn {
		now := rec.Clock()
		rec.Record(obs.Span{Trace: trace, ID: ecID, Parent: trace, Kind: obs.SpanECall,
			Rows: int32(cnt), Bytes: payload + resultBytes,
			Start: stageStart, Dur: now - stageStart})
		rec.Record(obs.Span{Trace: trace, ID: trace, Kind: obs.SpanNodeQuery,
			Rows: int32(len(seeds)), Start: qStart, Dur: now - qStart})
	}

	fillBreakdown(&bd, before, v.Enclave.Ledger())
	// Seeds occupy local rows 0..len(seeds)-1 by construction.
	var scores *mat.Matrix
	if wantScores {
		scores = &mat.Matrix{}
		ws.rectMach.Output().ViewRows(0, len(seeds), scores)
	}
	return ws.labels[:len(seeds)], scores, bd, nil
}

// EnableNodeServing plans a vault-owned subgraph workspace and routes
// subsequent PredictNodes calls through it (guarded by an internal mutex,
// so the convenience API stays safe for casual concurrent use; serving
// fleets should plan per-worker workspaces instead). Re-enabling replaces
// the previous plan.
func (v *Vault) EnableNodeServing(maxSeeds int, cfg subgraph.Config) error {
	ws, err := v.PlanSubgraph(maxSeeds, cfg)
	if err != nil {
		return err
	}
	v.nodeMu.Lock()
	old := v.nodeWS
	v.nodeWS = ws
	v.nodeMu.Unlock()
	if old != nil {
		old.Release()
	}
	return nil
}

// DisableNodeServing releases the vault-owned subgraph workspace (if
// any); PredictNodes reverts to the exact full-graph path.
func (v *Vault) DisableNodeServing() {
	v.nodeMu.Lock()
	old := v.nodeWS
	v.nodeWS = nil
	v.nodeMu.Unlock()
	if old != nil {
		old.Release()
	}
}
