package core_test

import (
	"fmt"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/substitute"
)

// Example walks the full GNNVault lifecycle: train the public backbone on
// a substitute graph, train the private rectifier on the real adjacency,
// deploy both into a simulated enclave, plan an allocation-free inference
// workspace, and answer a label-only query.
func Example() {
	ds := datasets.Load("cora")
	cfg := core.TrainConfig{Epochs: 3, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
	spec := core.SpecForDataset("cora")

	// Step 1-2: public backbone over a KNN substitute graph (it never sees
	// the real adjacency), then the enclave-resident rectifier over the
	// private graph with the backbone frozen.
	bb := core.TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), cfg)
	rec := core.TrainRectifier(ds, bb, core.Parallel, cfg)

	// Step 3: deploy — seal rectifier parameters and the private adjacency
	// into the enclave and charge its EPC for the persistent residents.
	vault, err := core.Deploy(bb, rec, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		panic(err)
	}

	// Step 4: plan once, predict many. The workspace charges the EPC for
	// the inference working set up front; PredictInto then reuses it with
	// zero steady-state heap allocation.
	ws, err := vault.Plan(vault.Nodes())
	if err != nil {
		panic(err)
	}
	defer ws.Release()
	labels, bd, err := vault.PredictInto(ds.X, ws)
	if err != nil {
		panic(err)
	}

	fmt.Println("design:", vault.Design())
	fmt.Println("one label per node:", len(labels) == vault.Nodes())
	fmt.Println("labels in class range:", core.VerifyLabelOnly(labels, ds.NumClasses) == nil)
	fmt.Println("enclave charged:", vault.Enclave.EPCUsed() > 0)
	fmt.Println("one ECALL per query:", bd.ECalls == 1)
	// Output:
	// design: parallel
	// one label per node: true
	// labels in class range: true
	// enclave charged: true
	// one ECALL per query: true
}
