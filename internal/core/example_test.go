package core_test

import (
	"fmt"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/subgraph"
	"gnnvault/internal/substitute"
)

// Example walks the full GNNVault lifecycle: train the public backbone on
// a substitute graph, train the private rectifier on the real adjacency,
// deploy both into a simulated enclave, plan an allocation-free inference
// workspace, and answer a label-only query.
func Example() {
	ds := datasets.Load("cora")
	cfg := core.TrainConfig{Epochs: 3, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
	spec := core.SpecForDataset("cora")

	// Step 1-2: public backbone over a KNN substitute graph (it never sees
	// the real adjacency), then the enclave-resident rectifier over the
	// private graph with the backbone frozen.
	bb := core.TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), cfg)
	rec := core.TrainRectifier(ds, bb, core.Parallel, cfg)

	// Step 3: deploy — seal rectifier parameters and the private adjacency
	// into the enclave and charge its EPC for the persistent residents.
	vault, err := core.Deploy(bb, rec, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		panic(err)
	}

	// Step 4: plan once, predict many. The workspace charges the EPC for
	// the inference working set up front; PredictInto then reuses it with
	// zero steady-state heap allocation.
	ws, err := vault.Plan(vault.Nodes())
	if err != nil {
		panic(err)
	}
	defer ws.Release()
	labels, bd, err := vault.PredictInto(ds.X, ws)
	if err != nil {
		panic(err)
	}

	fmt.Println("design:", vault.Design())
	fmt.Println("one label per node:", len(labels) == vault.Nodes())
	fmt.Println("labels in class range:", core.VerifyLabelOnly(labels, ds.NumClasses) == nil)
	fmt.Println("enclave charged:", vault.Enclave.EPCUsed() > 0)
	fmt.Println("one ECALL per query:", bd.ECalls == 1)
	// Output:
	// design: parallel
	// one label per node: true
	// labels in class range: true
	// enclave charged: true
	// one ECALL per query: true
}

// ExampleVault_PredictNodesInto answers node-level queries through the
// subgraph engine: the seeds' L-hop neighbourhood is expanded over the
// public substitute graph, the private adjacency is induced over that
// set inside the enclave, and only the seeds' labels come back —
// per-query cost is O(hops × fanout), not O(graph).
func ExampleVault_PredictNodesInto() {
	ds := datasets.Load("cora")
	cfg := core.TrainConfig{Epochs: 3, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
	spec := core.SpecForDataset("cora")
	bb := core.TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), cfg)
	rec := core.TrainRectifier(ds, bb, core.Parallel, cfg)
	vault, err := core.Deploy(bb, rec, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		panic(err)
	}

	// Plan once for batches of up to 4 seeds: every buffer — and the
	// enclave EPC — is sized from (hops, fanout, seeds) up front.
	ws, err := vault.PlanSubgraph(4, subgraph.Config{Hops: 2, Fanout: 8, Seed: 1})
	if err != nil {
		panic(err)
	}
	defer ws.Release()

	seeds := []int{17, 42, 311}
	labels, bd, err := vault.PredictNodesInto(ds.X, seeds, ws)
	if err != nil {
		panic(err)
	}

	fmt.Println("one label per seed:", len(labels) == len(seeds))
	fmt.Println("labels in class range:", core.VerifyLabelOnly(labels, ds.NumClasses) == nil)
	fmt.Println("subgraph smaller than graph:", ws.LastExtracted() < vault.Nodes())
	fmt.Println("answered in one ECALL:", bd.ECalls == 1)
	// Output:
	// one label per seed: true
	// labels in class range: true
	// subgraph smaller than graph: true
	// answered in one ECALL: true
}
