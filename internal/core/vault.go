package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gnnvault/internal/enclave"
	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
	"gnnvault/internal/nn"
)

// Vault is a deployed GNNVault instance (paper step 4, Fig. 2): the public
// backbone and substitute graph live in the untrusted world; the rectifier
// parameters and the real COO adjacency are sealed inside the enclave. The
// only output that ever leaves the enclave is the predicted class label per
// node — logits stay inside (paper Sec. IV-E).
type Vault struct {
	Backbone *Backbone
	Enclave  *enclave.Enclave

	// rectifier and privateGraph are enclave-resident state. They are
	// unexported: untrusted callers of this package cannot reach them.
	rectifier    *Rectifier
	privateGraph *graph.Graph

	sealedParams []byte
	sealedGraph  []byte

	// persistentBytes is the EPC held by the vault's resident state
	// (rectifier parameters + private adjacency), returned by Undeploy.
	// undeployed is atomic so Undeploy is idempotent under the concurrent
	// serving the enclave's goroutine-safe ledger invites.
	persistentBytes int64
	undeployed      atomic.Bool

	// nodeWS is the optional vault-owned subgraph workspace installed by
	// EnableNodeServing; PredictNodes routes through it under nodeMu.
	nodeMu sync.Mutex
	nodeWS *SubgraphWorkspace

	// calibX is the optional calibration feature matrix registered by
	// SetCalibrationFeatures, the fp64-reference input reduced-precision
	// plans derive their quantization scales and agreement check from.
	// Atomic: serving code registers it once while planners may already
	// be running.
	calibX atomic.Pointer[mat.Matrix]
}

// InferenceBreakdown is the Fig. 6 decomposition of one inference pass.
type InferenceBreakdown struct {
	BackboneTime time.Duration // measured, normal world (parallel kernels)
	TransferTime time.Duration // modelled: ECALL transitions + marshalling
	EnclaveTime  time.Duration // measured in-enclave compute ×slowdown + paging
	PeakEPCBytes int64
	BytesIn      int64
	ECalls       int
}

// Total returns the end-to-end inference latency.
func (b InferenceBreakdown) Total() time.Duration {
	return b.BackboneTime + b.TransferTime + b.EnclaveTime
}

// Deploy provisions a trained GNNVault onto a device: it creates an enclave
// measured over the sealed rectifier+graph payloads, allocates EPC for the
// persistent state (parameters, normalised adjacency, precomputed degrees),
// and returns the deployment handle.
//
// Deploy fails with enclave.ErrEPCExhausted if the persistent state cannot
// fit the EPC — the check that motivates Table I's DenseA column.
func Deploy(bb *Backbone, rec *Rectifier, private *graph.Graph, cost enclave.CostModel) (*Vault, error) {
	// The measurement covers the enclave's code identity — design, conv
	// kind and layer dimensions — as MRENCLAVE covers code and initial
	// data pages. Weights and the private graph are provisioned as sealed
	// blobs after launch, so two devices running the same rectifier build
	// measure identically and can exchange sealed state.
	return DeployInto(enclave.New(cost, rec.Identity()), bb, rec, private)
}

// DeployInto provisions a trained GNNVault into an existing enclave, so one
// enclave (one device's EPC) can host several deployed vaults — the
// multi-vault serving setup managed by internal/registry. It seals the
// rectifier parameters and real adjacency under the enclave's identity and
// charges the EPC for the persistent residents; on failure nothing stays
// allocated.
//
// A multi-vault enclave's measurement covers whatever identities the caller
// passed to enclave.New, typically every hosted rectifier's Identity.
func DeployInto(encl *enclave.Enclave, bb *Backbone, rec *Rectifier, private *graph.Graph) (*Vault, error) {
	sealedGraph, err := encl.Seal(graph.MarshalCOO(private))
	if err != nil {
		return nil, fmt.Errorf("core: sealing private graph: %w", err)
	}
	return deployInto(encl, bb, rec, private, sealedGraph, rec.Adjacency().NumBytes())
}

// deployInto seals the rectifier parameters under the enclave's identity,
// charges the EPC for the persistent residents (parameters + graphBytes of
// adjacency), and assembles the vault handle. The full-graph path passes
// the whole normalised adjacency's bytes; a shard deployment
// (DeploySharded) passes only its row-range slab's bytes — and a nil
// sealedGraph, because the shard's at-rest adjacency lives inside the
// partition's shared value slab rather than as a standalone COO blob.
func deployInto(encl *enclave.Enclave, bb *Backbone, rec *Rectifier, private *graph.Graph, sealedGraph []byte, graphBytes int64) (*Vault, error) {
	sealedParams, err := encl.Seal(rec.MarshalParams())
	if err != nil {
		return nil, fmt.Errorf("core: sealing rectifier params: %w", err)
	}

	// Persistent EPC residents: parameters + normalised adjacency share.
	paramBytes := rec.ParamBytes()
	if err := encl.Alloc(paramBytes); err != nil {
		return nil, fmt.Errorf("core: rectifier parameters do not fit EPC: %w", err)
	}
	if err := encl.Alloc(graphBytes); err != nil {
		encl.Free(paramBytes)
		return nil, fmt.Errorf("core: private adjacency does not fit EPC: %w", err)
	}

	rec.SetSerial(true) // enclave execution is single-threaded
	return &Vault{
		Backbone:        bb,
		Enclave:         encl,
		rectifier:       rec,
		privateGraph:    private,
		sealedParams:    sealedParams,
		sealedGraph:     sealedGraph,
		persistentBytes: paramBytes + graphBytes,
	}, nil
}

// PersistentBytes returns the EPC held by the vault's resident state
// (rectifier parameters + private adjacency), charged at deploy time and
// released only by Undeploy.
func (v *Vault) PersistentBytes() int64 { return v.persistentBytes }

// Undeploy returns the vault's persistent EPC to the enclave, making room
// for other tenants of a shared enclave. The vault must not be used for
// inference afterwards, and any planned workspaces must be released first.
// Idempotent.
func (v *Vault) Undeploy() {
	if v.undeployed.Swap(true) {
		return
	}
	v.Enclave.Free(v.persistentBytes)
}

// SealedArtifacts returns the encrypted blobs persisted on untrusted
// storage. Exposed so tests and examples can demonstrate that the at-rest
// payloads are ciphertext.
func (v *Vault) SealedArtifacts() (params, coo []byte) {
	return v.sealedParams, v.sealedGraph
}

// Design returns the deployed rectifier's communication scheme.
func (v *Vault) Design() RectifierDesign { return v.rectifier.Design }

// RectifierParams returns θ_rec of the deployed rectifier.
func (v *Vault) RectifierParams() int { return v.rectifier.NumParams() }

// Predict runs one full GNNVault inference over the node features:
// backbone in the normal world, one-way transfer of the required
// embeddings, rectification inside the enclave, label-only output.
func (v *Vault) Predict(x *mat.Matrix) ([]int, InferenceBreakdown, error) {
	labels, _, bd, err := v.predict(x, false)
	return labels, bd, err
}

// predict is Predict's body. With wantScores the rectified logits leave
// the enclave too — the deliberately weakened output mode the privacy
// harness attacks — and their exposure is priced into the ECALL result
// payload (classes × 8 extra bytes per node). The returned logits matrix
// is freshly allocated and owned by the caller.
func (v *Vault) predict(x *mat.Matrix, wantScores bool) ([]int, *mat.Matrix, InferenceBreakdown, error) {
	var bd InferenceBreakdown
	before := v.Enclave.Ledger()
	v.Enclave.ResetPeak()

	// Normal world: backbone forward (parallel kernels, GPU-class side).
	start := time.Now()
	all := v.Backbone.Embeddings(x)
	bd.BackboneTime = time.Since(start)

	// One-way transfer of exactly the embeddings the design requires.
	ch, uplink := enclave.NewChannel(v.Enclave)
	needed := selectEmbeddings(all, v.rectifier.RequiredEmbeddings())
	for _, e := range needed {
		if err := uplink.Send(e); err != nil {
			return nil, nil, bd, fmt.Errorf("core: transferring embeddings: %w", err)
		}
	}
	uplink.Close()

	// Enclave: rectify and reduce to labels. By default only `labels`
	// crosses back (modelled as the ECALL result payload: 8 bytes per
	// node); a scores-exposing deployment additionally pays for the
	// logits.
	resultBytes := int64(x.Rows) * 8
	if wantScores {
		resultBytes += int64(x.Rows) * int64(v.Classes()) * 8
	}
	var labels []int
	var scores *mat.Matrix
	err := v.Enclave.Ecall(0, resultBytes, func() error {
		embs := make([]*mat.Matrix, 0, len(needed))
		for {
			m, ok := ch.Recv()
			if !ok {
				break
			}
			embs = append(embs, m)
		}
		actBytes := v.rectifier.ActivationBytes(x.Rows)
		if err := v.Enclave.Alloc(actBytes); err != nil {
			return err
		}
		defer v.Enclave.Free(actBytes)
		logits := v.rectifier.Forward(embs, false)
		labels = logits.ArgmaxRows()
		if wantScores {
			scores = logits
		}
		return nil
	})
	ch.Drain()
	if err != nil {
		return nil, nil, bd, fmt.Errorf("core: enclave inference: %w", err)
	}

	fillBreakdown(&bd, before, v.Enclave.Ledger())
	return labels, scores, bd, nil
}

// Classes returns the deployed rectifier's output dimension — the label
// space every served prediction reduces to.
func (v *Vault) Classes() int { return v.rectifier.Dims[len(v.rectifier.Dims)-1] }

// fillBreakdown derives the enclave components of a breakdown from
// before/after ledger snapshots, so inference paths never reset the shared
// ledger (which would corrupt concurrent callers' deltas). PeakEPCBytes is
// the ledger's running peak, rebased per call via ResetPeak.
func fillBreakdown(bd *InferenceBreakdown, before, after enclave.Ledger) {
	bd.TransferTime = after.TransferTime() - before.TransferTime()
	bd.EnclaveTime = after.EnclaveTime() - before.EnclaveTime()
	bd.PeakEPCBytes = after.PeakEPCBytes
	bd.BytesIn = after.BytesIn - before.BytesIn
	bd.ECalls = after.ECalls - before.ECalls
}

// UnprotectedInference measures the baseline of Fig. 6: the original GNN
// running entirely on the normal-world CPU (single-threaded, as the paper's
// CPU baseline), returning its labels and wall time.
func UnprotectedInference(orig *Backbone, x *mat.Matrix) ([]int, time.Duration) {
	orig.Model.SetSerial(true)
	defer orig.Model.SetSerial(false)
	start := time.Now()
	logits := orig.Model.Forward(x, false)
	elapsed := time.Since(start)
	return logits.ArgmaxRows(), elapsed
}

// EnclaveMemoryEstimate returns the static Fig. 6 (bottom) estimate for a
// rectifier deployment over n nodes: persistent parameters + adjacency +
// transferred embeddings + peak activations.
func EnclaveMemoryEstimate(rec *Rectifier, backboneDims []int, n int) int64 {
	embBytes := int64(0)
	for _, i := range rec.RequiredEmbeddings() {
		embBytes += int64(backboneDims[i]) * int64(n) * 8
	}
	return rec.ParamBytes() + rec.Adjacency().NumBytes() + embBytes + rec.ActivationBytes(n)
}

// FullModelMemoryEstimate returns what hosting the *entire* original GNN in
// the enclave would cost: all parameters, the adjacency, the input features
// and the widest activation — the quantity the paper compares against the
// 128 MB PRM to argue full-model enclaving is impractical.
func FullModelMemoryEstimate(orig *Backbone, n, featureDim int) int64 {
	adj := int64(0)
	if orig.adj != nil {
		adj = orig.adj.NumBytes()
	}
	widest := featureDim
	for _, d := range orig.BlockDims {
		if d > widest {
			widest = d
		}
	}
	actBytes := int64(widest) * int64(n) * 8 * 2 // in+out coexist
	featBytes := int64(featureDim) * int64(n) * 8
	return orig.Model.ParamBytes() + adj + featBytes + actBytes
}

// VerifyLabelOnly is a compile-time style assertion helper used in tests:
// it re-runs Predict and confirms the outputs are class indices, not
// logits.
func VerifyLabelOnly(labels []int, classes int) error {
	for i, l := range labels {
		if l < 0 || l >= classes {
			return fmt.Errorf("core: output %d = %d outside label space [0,%d)", i, l, classes)
		}
	}
	return nil
}

// compile-time check that nn.Param stays usable for rectifier training.
var _ = nn.Param{}

// PredictNodes answers queries for specific nodes (the paper's attacker
// "can query the GNN model with any chosen node").
//
// When node serving is planned (EnableNodeServing), the query routes
// through the subgraph engine: per-query cost is O(hops × fanout) rather
// than O(graph), at the documented sampling-accuracy trade-off.
//
// Otherwise — and whenever the subgraph path declines a batch (too many
// or duplicate seeds) — the exact full-graph path runs: GNN inference is
// full-graph — message passing needs every node's features — so the whole
// pipeline runs, but only the requested labels leave this function.
// Out-of-range seeds fail with the named ErrNodeOutOfRange on both paths.
func (v *Vault) PredictNodes(x *mat.Matrix, nodes []int) ([]int, error) {
	v.nodeMu.Lock()
	if ws := v.nodeWS; ws != nil && len(nodes) > 0 && len(nodes) <= ws.MaxSeeds() {
		labels, _, err := v.PredictNodesInto(x, nodes, ws)
		switch {
		case err == nil:
			out := make([]int, len(nodes))
			copy(out, labels)
			v.nodeMu.Unlock()
			return out, nil
		case errors.Is(err, ErrNodeOutOfRange):
			v.nodeMu.Unlock()
			return nil, err
		}
		// Batches the engine declines (e.g. duplicate seeds) fall back to
		// the exact full-graph path below.
	}
	v.nodeMu.Unlock()

	all, _, err := v.Predict(x)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(nodes))
	for i, u := range nodes {
		if u < 0 || u >= len(all) {
			return nil, ErrNodeOutOfRange
		}
		out[i] = all[u]
	}
	return out, nil
}

// PredictStreamed is the layer-by-layer variant of Predict for the
// parallel rectifier (the paper's Fig. 3b narrative: backbone and
// rectifier run layer-by-layer in parallel). Each backbone embedding is
// sent in its own ECALL and freed as soon as the matching rectifier layer
// consumed it, trading more world transitions for a smaller peak EPC
// footprint. Other designs need the full payload at once and fall back to
// Predict.
func (v *Vault) PredictStreamed(x *mat.Matrix) ([]int, InferenceBreakdown, error) {
	if v.rectifier.Design != Parallel {
		return v.Predict(x)
	}
	var bd InferenceBreakdown
	before := v.Enclave.Ledger()
	v.Enclave.ResetPeak()

	start := time.Now()
	all := v.Backbone.Embeddings(x)
	bd.BackboneTime = time.Since(start)

	needed := selectEmbeddings(all, v.rectifier.RequiredEmbeddings())
	var labels []int
	var prev *mat.Matrix
	actBytes := v.rectifier.ActivationBytes(x.Rows)
	if err := v.Enclave.Alloc(actBytes); err != nil {
		return nil, bd, fmt.Errorf("core: streamed inference: %w", err)
	}
	defer v.Enclave.Free(actBytes)
	for k, emb := range needed {
		k, emb := k, emb
		resultBytes := int64(0)
		if k == len(needed)-1 {
			resultBytes = int64(x.Rows) * 8 // the final labels
		}
		err := v.Enclave.Ecall(emb.NumBytes(), resultBytes, func() error {
			if err := v.Enclave.Alloc(emb.NumBytes()); err != nil {
				return err
			}
			defer v.Enclave.Free(emb.NumBytes())
			prev = v.rectifier.forwardLayer(k, prev, emb)
			if k == len(needed)-1 {
				labels = prev.ArgmaxRows()
			}
			return nil
		})
		if err != nil {
			return nil, bd, fmt.Errorf("core: streamed inference layer %d: %w", k, err)
		}
	}

	fillBreakdown(&bd, before, v.Enclave.Ledger())
	return labels, bd, nil
}
