package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"gnnvault/internal/enclave"
	"gnnvault/internal/exec"
	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
	"gnnvault/internal/nn"
	"gnnvault/internal/obs"
)

// Sharded deployment: the vault split across a multi-enclave fleet. One
// enclave's EPC caps how large a private graph a single vault can seal;
// DeploySharded instead cuts the private CSR into contiguous row-range
// shards at nnz-balanced boundaries (graph.Partition) and seals each
// shard — its rectangular CSR slab plus a full copy of the rectifier
// parameters — inside its own enclave with its own EPC budget and cost
// ledger. Cross-shard message passing lowers to a local SpMM over the
// shard's resident rows plus a halo op that gathers the boundary nodes'
// activations from the peers that own them (exec.Fleet); the gathered
// bytes are priced into each shard's ECALL payload exactly like spill
// traffic, so the sealed halo exchange shows up in the modelled cost the
// same way SGX sealed buffers would on real hardware.
//
// The partition preserves per-row non-zero order and pins the parent's
// value-scale hint, so a sharded plan's labels are bit-identical to the
// single-enclave plan's at every precision tier — sharding is a capacity
// and throughput move, never an accuracy one.

// ErrShardUnsupported is returned by DeploySharded for rectifiers the
// fleet cannot run: non-GCN convolutions lower to opaque ops that cannot
// participate in barrier-synchronised fleet execution.
var ErrShardUnsupported = errors.New("core: deployment not shardable (GCN rectifier required)")

// ShardedVault is a GNNVault deployment split across a fleet of shard
// enclaves. The backbone and rectifier objects are shared (the same
// trained parameters everywhere); each shard holds its own enclave,
// sealed with the shard's row-range slab of the private adjacency.
type ShardedVault struct {
	Backbone *Backbone
	Part     *graph.Partition

	rectifier    *Rectifier
	privateGraph *graph.Graph
	vaults       []*Vault
}

// DeploySharded provisions a trained GNNVault across shards enclaves,
// each created with the given (per-shard) cost model: the private CSR is
// cut at nnz-balanced row boundaries and every shard's enclave is charged
// for the rectifier parameters plus its own slab — so the fleet's
// admissible graph size scales with the shard count while each enclave's
// EPC stays fixed. Fails with ErrShardUnsupported for non-GCN rectifiers
// and with enclave.ErrEPCExhausted (wrapped) when a shard's residents do
// not fit its EPC.
func DeploySharded(bb *Backbone, rec *Rectifier, private *graph.Graph, cost enclave.CostModel, shards int) (*ShardedVault, error) {
	if shards < 1 {
		return nil, fmt.Errorf("core: sharded deploy wants >= 1 shards, got %d", shards)
	}
	for _, c := range rec.convs {
		if _, ok := c.(*nn.GCNConv); !ok {
			return nil, fmt.Errorf("%w: rectifier conv %T", ErrShardUnsupported, c)
		}
	}
	part := graph.NewPartition(rec.Adjacency(), shards)
	sv := &ShardedVault{Backbone: bb, Part: part, rectifier: rec, privateGraph: private}
	for s := 0; s < shards; s++ {
		// Each shard enclave's measurement covers the rectifier identity
		// plus its shard index, so peers have distinct sealing keys.
		encl := enclave.New(cost, rec.Identity(), []byte{byte(s)})
		v, err := deployInto(encl, bb, rec, private, nil, part.CSR[s].NumBytes())
		if err != nil {
			sv.Undeploy()
			return nil, fmt.Errorf("core: deploying shard %d: %w", s, err)
		}
		sv.vaults = append(sv.vaults, v)
	}
	return sv, nil
}

// Shards returns the fleet's shard count.
func (sv *ShardedVault) Shards() int { return len(sv.vaults) }

// Shard returns shard s's vault — its own enclave over the shared model.
// Node-query serving plans per-shard subgraph workspaces through it.
func (sv *ShardedVault) Shard(s int) *Vault { return sv.vaults[s] }

// Owner returns the shard owning global node u.
func (sv *ShardedVault) Owner(u int) int { return sv.Part.Owner(u) }

// Nodes returns the node count of the deployed private graph.
func (sv *ShardedVault) Nodes() int { return sv.privateGraph.N() }

// Classes returns the label-space width every served prediction reduces to.
func (sv *ShardedVault) Classes() int { return sv.vaults[0].Classes() }

// Design returns the deployed rectifier's communication scheme.
func (sv *ShardedVault) Design() RectifierDesign { return sv.rectifier.Design }

// Undeploy returns every shard's persistent EPC. Idempotent.
func (sv *ShardedVault) Undeploy() {
	for _, v := range sv.vaults {
		v.Undeploy()
	}
}

// SetCalibrationFeatures registers the calibration batch on every shard
// vault, so both the sharded planner and per-shard subgraph planners can
// gate reduced-precision plans against the fp64 reference.
func (sv *ShardedVault) SetCalibrationFeatures(x *mat.Matrix) error {
	for _, v := range sv.vaults {
		if err := v.SetCalibrationFeatures(x); err != nil {
			return err
		}
	}
	return nil
}

// ShardedWorkspace is a full-graph inference plan over the shard fleet:
// the backbone compiled once at full height in the normal world, one
// rectifier machine per shard — lowered against the shard's rectangular
// CSR with a halo gather per conv layer — coupled into an exec.Fleet, and
// per-shard EPC, payload, spill and halo accounting. PredictInto fans one
// modelled ECALL out per shard (concurrently — the fleet's barriers
// require it) and the shards write disjoint ranges of one label buffer,
// so stitching is free. Like Workspace, it belongs to one goroutine at a
// time.
type ShardedWorkspace struct {
	Rows int

	sv     *ShardedVault
	bbMach *exec.Machine
	bbIn   []*mat.Matrix
	blocks []*mat.Matrix
	fleet  *exec.Fleet
	needed []int

	// Per-shard state, indexed by shard. shardEmbs[s] holds reusable view
	// headers over the backbone block matrices, rebound to the shard's row
	// range after every backbone run; shardLabels[s] is the shard's slice
	// of the shared label buffer.
	shardEmbs   [][]*mat.Matrix
	shardLabels [][]int
	payload     []int64
	spill       []int64
	halo        []int64
	epc         []int64
	ecalls      []func() (int64, error)
	errs        []error
	ecIDs       []uint64

	labels   []int
	rec      obs.Recorder
	released bool
}

// PlanSharded builds a reusable sharded inference workspace for batches
// of rows nodes (rows must equal the deployed graph's node count). Every
// PlanConfig knob keeps its PlanWith meaning, applied per shard: an
// EPCBudgetBytes is each *shard's* budget — tiles derive from the shard's
// own row count — and reduced precisions calibrate once against the
// unsharded fp64 reference, so every shard quantizes on the same grid and
// the fleet's labels stay bit-identical to the single-enclave plan's.
func (sv *ShardedVault) PlanSharded(rows int, cfg PlanConfig) (*ShardedWorkspace, error) {
	if n := sv.privateGraph.N(); rows != n {
		return nil, fmt.Errorf("core: sharded plan rows %d != deployed graph nodes %d", rows, n)
	}
	if !cfg.Precision.valid() {
		return nil, fmt.Errorf("core: unknown plan precision %d", cfg.Precision)
	}
	part := sv.Part
	shards := sv.Shards()
	elem := cfg.Precision.Elem()
	rec := cfg.Recorder
	if rec == nil {
		rec = obs.Nop
	}

	// Per-shard rectifier programs: identical lowering everywhere (the
	// fleet checks), with a halo gather between each conv's MatMul and
	// SpMM whenever the partition has boundary columns at all — shards
	// whose own halo is empty still emit the op, as a barrier the peers'
	// gathers rely on.
	withHalo := part.HaloCols() > 0
	progs := make([]*exec.Program, shards)
	for s := range progs {
		var hs []exec.HaloSlot
		if withHalo {
			hs = exec.HaloSlots(part.Bounds, part.Halo[s])
		}
		prog, _ := sv.rectifier.compileRectifier(part.Rows(s), part.CSR[s], hs)
		if !prog.Tileable() {
			return nil, ErrShardUnsupported
		}
		progs[s] = prog
	}

	bbProg, blockVals, _ := sv.Backbone.compileBackbone(rows, nil, cfg.Workers)
	bbMach, err := bbProg.NewMachine(exec.Config{Workers: cfg.Workers, Recorder: rec})
	if err != nil {
		return nil, fmt.Errorf("core: compiling backbone plan: %w", err)
	}
	blocks := make([]*mat.Matrix, 0, len(blockVals))
	for _, bv := range blockVals {
		blocks = append(blocks, bbMach.Value(bv))
	}

	// Reduced tiers calibrate against the unsharded reference program —
	// the scale grid every shard must share — and remap the scales onto
	// each shard's value table (halo values copy their source's grid).
	var baseScales [][]float64
	var refLabels []int
	if elem != exec.F64 {
		fullProg, _ := sv.rectifier.compileRectifier(rows, nil, nil)
		scales, ref, _, err := sv.vaults[0].calibrateReduced(fullProg, bbMach, blocks, cfg)
		if err != nil {
			return nil, err
		}
		baseScales, refLabels = scales, ref
	}

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	machines := make([]*exec.Machine, shards)
	for s := range machines {
		mcfg := exec.Config{Workers: 1, Elem: elem, Recorder: rec} // direct in-enclave: single-threaded
		if cfg.tiled() {
			if t := deriveTileRows(cfg, progs[s].MaxWidth(), part.Rows(s), workers, cfg.Precision.ElemBytes()); t > 0 {
				mcfg = exec.Config{TileRows: t, Workers: workers, Elem: elem, Recorder: rec}
			}
		}
		if baseScales != nil {
			shardScales, err := exec.ShardScales(progs[s], baseScales)
			if err != nil {
				return nil, fmt.Errorf("core: shard %d scales: %w", s, err)
			}
			mcfg.Scales = shardScales
		}
		m, err := progs[s].NewMachine(mcfg)
		if err != nil {
			return nil, fmt.Errorf("core: compiling shard %d plan: %w", s, err)
		}
		machines[s] = m
	}
	fleet, err := exec.NewFleet(machines)
	if err != nil {
		return nil, fmt.Errorf("core: assembling shard fleet: %w", err)
	}

	ws := &ShardedWorkspace{
		Rows:        rows,
		sv:          sv,
		bbMach:      bbMach,
		bbIn:        make([]*mat.Matrix, 1),
		blocks:      blocks,
		fleet:       fleet,
		needed:      sv.rectifier.RequiredEmbeddings(),
		shardEmbs:   make([][]*mat.Matrix, shards),
		shardLabels: make([][]int, shards),
		payload:     make([]int64, shards),
		spill:       make([]int64, shards),
		halo:        make([]int64, shards),
		epc:         make([]int64, shards),
		ecalls:      make([]func() (int64, error), shards),
		errs:        make([]error, shards),
		ecIDs:       make([]uint64, shards),
		labels:      make([]int, rows),
		rec:         rec,
	}
	for s := 0; s < shards; s++ {
		s := s
		lo, hi := part.Bounds[s], part.Bounds[s+1]
		local := hi - lo
		embs := make([]*mat.Matrix, len(ws.needed))
		for k := range embs {
			embs[k] = &mat.Matrix{}
		}
		ws.shardEmbs[s] = embs
		ws.shardLabels[s] = ws.labels[lo:hi:hi]
		for _, i := range ws.needed {
			ws.payload[s] += int64(sv.Backbone.BlockDims[i]) * int64(local) * cfg.Precision.ElemBytes()
		}
		m := machines[s]
		ws.halo[s] = m.HaloBytes()
		if m.TileRows() > 0 {
			// Tiled shard: only the staging tiles are enclave-resident;
			// activations — including the halo extension rows — stream
			// through sealed spill buffers, charged as transfer.
			ws.epc[s] = m.TileBytes()
			ws.spill[s] = m.SpillTraffic(local)
		} else {
			ws.epc[s] = m.BufferBytes() + ws.payload[s]
		}
		ws.ecalls[s] = func() (int64, error) {
			ws.fleet.RunShard(s, local, ws.shardEmbs[s], ws.shardLabels[s])
			// The machine's busy time — kernels and halo copies, not
			// fleet-barrier waits — is this ECALL's in-enclave compute.
			return ws.fleet.Machine(s).TakeBusyNs(), nil
		}
	}

	// Admission gate for reduced tiers: the actual fleet must reproduce
	// the fp64 reference labels on the calibration batch (the backbone
	// machine still holds the calibration embeddings from calibrateReduced).
	if refLabels != nil {
		check := make([]int, rows)
		ws.bindShardEmbs()
		ws.runFleet(check)
		if err := agreementFloor(check, refLabels, cfg); err != nil {
			return nil, err
		}
	}

	for s := 0; s < shards; s++ {
		if err := sv.vaults[s].Enclave.Alloc(ws.epc[s]); err != nil {
			for t := 0; t < s; t++ {
				sv.vaults[t].Enclave.Free(ws.epc[t])
			}
			return nil, fmt.Errorf("core: shard %d inference workspace does not fit EPC: %w", s, err)
		}
	}
	return ws, nil
}

// bindShardEmbs rebinds every shard's embedding views onto the backbone
// block matrices' current contents — called after each backbone run, and
// zero-alloc: the view headers are planned once.
func (ws *ShardedWorkspace) bindShardEmbs() {
	part := ws.sv.Part
	for s := range ws.shardEmbs {
		lo, hi := part.Bounds[s], part.Bounds[s+1]
		for k, i := range ws.needed {
			ws.blocks[i].ViewRows(lo, hi, ws.shardEmbs[s][k])
		}
	}
}

// runFleet executes one fleet round outside any enclave accounting —
// plan-time only (the calibration agreement gate). labels must have Rows
// entries; each shard writes its own range.
func (ws *ShardedWorkspace) runFleet(labels []int) {
	part := ws.sv.Part
	var wg sync.WaitGroup
	for s := 0; s < ws.fleet.Shards(); s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			lo, hi := part.Bounds[s], part.Bounds[s+1]
			ws.fleet.RunShard(s, hi-lo, ws.shardEmbs[s], labels[lo:hi])
		}()
	}
	wg.Wait()
	// Drain the busy counters this unaccounted round accumulated, so the
	// first real ECALL charges only its own run.
	for s := 0; s < ws.fleet.Shards(); s++ {
		ws.fleet.Machine(s).TakeBusyNs()
	}
}

// Shards returns the workspace's shard count.
func (ws *ShardedWorkspace) Shards() int { return ws.fleet.Shards() }

// EnclaveBytes returns the total EPC charged across all shard enclaves at
// plan time.
func (ws *ShardedWorkspace) EnclaveBytes() int64 {
	var n int64
	for _, b := range ws.epc {
		n += b
	}
	return n
}

// ShardEnclaveBytes returns the EPC charged to shard s's enclave.
func (ws *ShardedWorkspace) ShardEnclaveBytes(s int) int64 { return ws.epc[s] }

// HaloBytes returns the boundary-activation bytes one inference exchanges
// across the fleet — the per-call halo traffic priced into the shard
// ECALL payloads and surfaced on /metrics.
func (ws *ShardedWorkspace) HaloBytes() int64 { return ws.fleet.HaloBytes() }

// ShardHaloBytes returns shard s's gathered halo bytes per call.
func (ws *ShardedWorkspace) ShardHaloBytes(s int) int64 { return ws.halo[s] }

// PayloadBytes returns the total per-call ECALL embedding payload summed
// over shards — each shard receives exactly its own rows of each required
// block, so the fleet total matches the unsharded plan's payload.
func (ws *ShardedWorkspace) PayloadBytes() int64 {
	var n int64
	for _, b := range ws.payload {
		n += b
	}
	return n
}

// SpillBytes returns the total per-call tile-flush traffic over shards
// (0 when every shard planned untiled).
func (ws *ShardedWorkspace) SpillBytes() int64 {
	var n int64
	for _, b := range ws.spill {
		n += b
	}
	return n
}

// Release returns every shard's workspace EPC. Idempotent.
func (ws *ShardedWorkspace) Release() {
	if ws.released {
		return
	}
	ws.released = true
	for s, v := range ws.sv.vaults {
		v.Enclave.Free(ws.epc[s])
	}
}

// PredictInto runs one full sharded inference: the backbone once at full
// height in the normal world, then one modelled ECALL per shard, fanned
// out concurrently — each carries the shard's embedding rows plus its
// spill and halo traffic in, and its rows of the label vector out, while
// the fleet's barriers synchronise the per-layer halo exchange between
// the enclaves. The returned labels are in seed (global row) order,
// owned by the workspace and overwritten by the next call; they are
// bit-identical to the single-enclave plan's at every precision tier.
//
// The breakdown's byte and call counts sum over shards; its modelled time
// components follow the slowest shard, since the fleet runs them in
// parallel. PeakEPCBytes is the busiest single enclave — each shard has
// its own EPC.
func (sv *ShardedVault) PredictInto(x *mat.Matrix, ws *ShardedWorkspace) ([]int, InferenceBreakdown, error) {
	var bd InferenceBreakdown
	if ws.released {
		return nil, bd, fmt.Errorf("core: PredictInto on released sharded workspace")
	}
	if ws.sv != sv {
		return nil, bd, fmt.Errorf("core: workspace planned for a different sharded vault")
	}
	if x.Rows != ws.Rows {
		return nil, bd, fmt.Errorf("core: input rows %d != planned rows %d", x.Rows, ws.Rows)
	}
	if x.Cols != sv.Backbone.FeatureDim {
		return nil, bd, fmt.Errorf("core: input features %d != backbone feature dim %d", x.Cols, sv.Backbone.FeatureDim)
	}
	shards := sv.Shards()
	before := make([]enclave.Ledger, shards)
	for s, v := range sv.vaults {
		before[s] = v.Enclave.Ledger()
		v.Enclave.ResetPeak()
	}

	// Flight recorder: one trace per call — a query root, the backbone
	// stage, and one ECALL span per shard, so the trace tree shows the
	// fan-out and each shard's halo-priced payload.
	rec := ws.rec
	recOn := rec.Enabled()
	var trace, bbID uint64
	var qStart, stageStart int64
	if recOn {
		trace = rec.NewSpan()
		bbID = rec.NewSpan()
		ws.bbMach.SetTrace(trace, bbID)
		for s := range ws.ecIDs {
			ws.ecIDs[s] = rec.NewSpan()
			ws.fleet.Machine(s).SetTrace(trace, ws.ecIDs[s])
		}
		qStart = rec.Clock()
		stageStart = qStart
	}

	start := time.Now()
	ws.bbIn[0] = x
	ws.bbMach.Run(ws.Rows, ws.bbIn, nil)
	bd.BackboneTime = time.Since(start)
	if recOn {
		now := rec.Clock()
		rec.Record(obs.Span{Trace: trace, ID: bbID, Parent: trace, Kind: obs.SpanBackbone,
			Rows: int32(ws.Rows), Start: stageStart, Dur: now - stageStart})
		stageStart = now
	}

	// Fan out: one ECALL per shard, necessarily concurrent — every shard
	// must reach the fleet barriers for any to pass them.
	ws.bindShardEmbs()
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			resultBytes := int64(len(ws.shardLabels[s])) * 8
			ws.errs[s] = sv.vaults[s].Enclave.EcallMeasured(ws.payload[s]+ws.spill[s]+ws.halo[s], resultBytes, ws.ecalls[s])
		}()
	}
	wg.Wait()
	for s, err := range ws.errs {
		if err != nil {
			return nil, bd, fmt.Errorf("core: shard %d enclave inference: %w", s, err)
		}
	}
	if recOn {
		now := rec.Clock()
		for s := range ws.ecIDs {
			rec.Record(obs.Span{Trace: trace, ID: ws.ecIDs[s], Parent: trace, Kind: obs.SpanECall,
				Rows:  int32(len(ws.shardLabels[s])),
				Bytes: ws.payload[s] + ws.spill[s] + ws.halo[s] + int64(len(ws.shardLabels[s]))*8,
				Start: stageStart, Dur: now - stageStart})
		}
		rec.Record(obs.Span{Trace: trace, ID: trace, Kind: obs.SpanQuery,
			Rows: int32(ws.Rows), Start: qStart, Dur: now - qStart})
	}

	var slowest time.Duration
	for s, v := range sv.vaults {
		after := v.Enclave.Ledger()
		tr := after.TransferTime() - before[s].TransferTime()
		en := after.EnclaveTime() - before[s].EnclaveTime()
		if tr+en >= slowest {
			slowest = tr + en
			bd.TransferTime, bd.EnclaveTime = tr, en
		}
		bd.BytesIn += after.BytesIn - before[s].BytesIn
		bd.ECalls += after.ECalls - before[s].ECalls
		if after.PeakEPCBytes > bd.PeakEPCBytes {
			bd.PeakEPCBytes = after.PeakEPCBytes
		}
	}
	return ws.labels, bd, nil
}

// RouteSeeds returns the shard a node-query batch routes to: the owner of
// the first seed. The whole batch goes to one shard — splitting seeds
// would change the joint L-hop frontier the subgraph engine extracts and
// break bit-identity with the single-enclave answer. Fails with
// ErrNodeOutOfRange on an empty batch or an out-of-range first seed (the
// per-seed validation of the query itself happens downstream).
func (sv *ShardedVault) RouteSeeds(seeds []int) (int, error) {
	if len(seeds) == 0 {
		return 0, ErrNodeOutOfRange
	}
	if u := seeds[0]; u >= 0 && u < sv.privateGraph.N() {
		return sv.Part.Owner(u), nil
	}
	return 0, ErrNodeOutOfRange
}

// PredictNodesAt answers a node-level query on shard s's vault (ws must
// be a subgraph workspace planned from that vault) and prices the
// cross-shard traffic the query induced: every extracted node owned by a
// peer shard models one OCALL from s's enclave — the sealed fetch of that
// node's embedding row — and the fetched bytes are returned as halo
// traffic for the caller's accounting. Labels alias ws, one per seed.
func (sv *ShardedVault) PredictNodesAt(x *mat.Matrix, seeds []int, s int, ws *SubgraphWorkspace) ([]int, int64, InferenceBreakdown, error) {
	labels, bd, err := sv.vaults[s].PredictNodesInto(x, seeds, ws)
	if err != nil {
		return nil, 0, bd, err
	}
	var haloBytes int64
	for _, u := range ws.ExtractedNodes() {
		if sv.Part.Owner(u) != s {
			sv.vaults[s].Enclave.Ocall()
			haloBytes += ws.payload
		}
	}
	return labels, haloBytes, bd, nil
}
