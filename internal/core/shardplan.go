package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gnnvault/internal/enclave"
	"gnnvault/internal/exec"
	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
	"gnnvault/internal/nn"
	"gnnvault/internal/obs"
)

// Sharded deployment: the vault split across a multi-enclave fleet. One
// enclave's EPC caps how large a private graph a single vault can seal;
// DeploySharded instead cuts the private CSR into contiguous row-range
// shards at nnz-balanced boundaries (graph.Partition) and seals each
// shard — its rectangular CSR slab plus a full copy of the rectifier
// parameters — inside its own enclave with its own EPC budget and cost
// ledger. Cross-shard message passing lowers to a local SpMM over the
// shard's resident rows plus a halo op that gathers the boundary nodes'
// activations from the peers that own them (exec.Fleet); the gathered
// bytes are priced into each shard's ECALL payload exactly like spill
// traffic, so the sealed halo exchange shows up in the modelled cost the
// same way SGX sealed buffers would on real hardware.
//
// The partition preserves per-row non-zero order and pins the parent's
// value-scale hint, so a sharded plan's labels are bit-identical to the
// single-enclave plan's at every precision tier — sharding is a capacity
// and throughput move, never an accuracy one.

// ErrShardUnsupported is returned by DeploySharded for rectifiers the
// fleet cannot run: non-GCN convolutions lower to opaque ops that cannot
// participate in barrier-synchronised fleet execution.
var ErrShardUnsupported = errors.New("core: deployment not shardable (GCN rectifier required)")

// ShardFault attributes a sharded-inference failure to the shard whose
// enclave caused it, so the serving layer can trip that shard's circuit
// breaker instead of guessing from an opaque error string. It wraps the
// underlying cause (errors.Is sees enclave.ErrEnclaveLost through it)
// and also rides inside the abort cause every peer unwinds with, so
// errors.As recovers the culprit shard from echo errors too.
type ShardFault struct {
	// Shard is the index of the shard whose enclave failed.
	Shard int
	// Err is the underlying failure — typically wrapping
	// enclave.ErrEnclaveLost.
	Err error
}

// Error formats the fault with its shard index.
func (f *ShardFault) Error() string { return fmt.Sprintf("core: shard %d: %v", f.Shard, f.Err) }

// Unwrap exposes the underlying cause to errors.Is/As.
func (f *ShardFault) Unwrap() error { return f.Err }

// ShardedVault is a GNNVault deployment split across a fleet of shard
// enclaves. The backbone and rectifier objects are shared (the same
// trained parameters everywhere); each shard holds its own enclave,
// sealed with the shard's row-range slab of the private adjacency. The
// vault pointers are atomic so RecoverShard can swap a dead shard's
// vault for a freshly provisioned one while stats readers keep loading
// a consistent snapshot.
type ShardedVault struct {
	Backbone *Backbone
	Part     *graph.Partition

	rectifier    *Rectifier
	privateGraph *graph.Graph
	cost         enclave.CostModel
	vaults       []atomic.Pointer[Vault]
}

// DeploySharded provisions a trained GNNVault across shards enclaves,
// each created with the given (per-shard) cost model: the private CSR is
// cut at nnz-balanced row boundaries and every shard's enclave is charged
// for the rectifier parameters plus its own slab — so the fleet's
// admissible graph size scales with the shard count while each enclave's
// EPC stays fixed. Fails with ErrShardUnsupported for non-GCN rectifiers
// and with enclave.ErrEPCExhausted (wrapped) when a shard's residents do
// not fit its EPC.
func DeploySharded(bb *Backbone, rec *Rectifier, private *graph.Graph, cost enclave.CostModel, shards int) (*ShardedVault, error) {
	if shards < 1 {
		return nil, fmt.Errorf("core: sharded deploy wants >= 1 shards, got %d", shards)
	}
	for _, c := range rec.convs {
		if _, ok := c.(*nn.GCNConv); !ok {
			return nil, fmt.Errorf("%w: rectifier conv %T", ErrShardUnsupported, c)
		}
	}
	part := graph.NewPartition(rec.Adjacency(), shards)
	sv := &ShardedVault{Backbone: bb, Part: part, rectifier: rec, privateGraph: private, cost: cost}
	sv.vaults = make([]atomic.Pointer[Vault], shards)
	for s := 0; s < shards; s++ {
		v, err := sv.provisionShard(s)
		if err != nil {
			sv.Undeploy()
			return nil, fmt.Errorf("core: deploying shard %d: %w", s, err)
		}
		sv.vaults[s].Store(v)
	}
	return sv, nil
}

// provisionShard creates and seals one shard vault: a fresh enclave under
// the deployment's cost model, charged for the rectifier parameters plus
// the shard's CSR slab. Used at deploy time and again by RecoverShard.
func (sv *ShardedVault) provisionShard(s int) (*Vault, error) {
	// Each shard enclave's measurement covers the rectifier identity
	// plus its shard index, so peers have distinct sealing keys.
	encl := enclave.New(sv.cost, sv.rectifier.Identity(), []byte{byte(s)})
	return deployInto(encl, sv.Backbone, sv.rectifier, sv.privateGraph, nil, sv.Part.CSR[s].NumBytes())
}

// Shards returns the fleet's shard count.
func (sv *ShardedVault) Shards() int { return len(sv.vaults) }

// Shard returns shard s's current vault — its own enclave over the
// shared model. Node-query serving plans per-shard subgraph workspaces
// through it. The pointer is a snapshot: after a RecoverShard it names
// the replaced vault, so callers must not cache it across failures.
func (sv *ShardedVault) Shard(s int) *Vault { return sv.vaults[s].Load() }

// Owner returns the shard owning global node u.
func (sv *ShardedVault) Owner(u int) int { return sv.Part.Owner(u) }

// Nodes returns the node count of the deployed private graph.
func (sv *ShardedVault) Nodes() int { return sv.privateGraph.N() }

// Classes returns the label-space width every served prediction reduces to.
func (sv *ShardedVault) Classes() int { return sv.vaults[0].Load().Classes() }

// Design returns the deployed rectifier's communication scheme.
func (sv *ShardedVault) Design() RectifierDesign { return sv.rectifier.Design }

// Undeploy returns every shard's persistent EPC. Idempotent.
func (sv *ShardedVault) Undeploy() {
	for s := range sv.vaults {
		if v := sv.vaults[s].Load(); v != nil {
			v.Undeploy()
		}
	}
}

// SetCalibrationFeatures registers the calibration batch on every shard
// vault, so both the sharded planner and per-shard subgraph planners can
// gate reduced-precision plans against the fp64 reference.
func (sv *ShardedVault) SetCalibrationFeatures(x *mat.Matrix) error {
	for s := range sv.vaults {
		if err := sv.vaults[s].Load().SetCalibrationFeatures(x); err != nil {
			return err
		}
	}
	return nil
}

// ShardedWorkspace is a full-graph inference plan over the shard fleet:
// the backbone compiled once at full height in the normal world, one
// rectifier machine per shard — lowered against the shard's rectangular
// CSR with a halo gather per conv layer — coupled into an exec.Fleet, and
// per-shard EPC, payload, spill and halo accounting. PredictInto fans one
// modelled ECALL out per shard (concurrently — the fleet's barriers
// require it) and the shards write disjoint ranges of one label buffer,
// so stitching is free. Like Workspace, it belongs to one goroutine at a
// time.
type ShardedWorkspace struct {
	Rows int

	sv     *ShardedVault
	bbMach *exec.Machine
	bbIn   []*mat.Matrix
	blocks []*mat.Matrix
	fleet  *exec.Fleet
	needed []int

	// Per-shard state, indexed by shard. shardEmbs[s] holds reusable view
	// headers over the backbone block matrices, rebound to the shard's row
	// range after every backbone run; shardLabels[s] is the shard's slice
	// of the shared label buffer.
	shardEmbs   [][]*mat.Matrix
	shardLabels [][]int
	payload     []int64
	spill       []int64
	halo        []int64
	epc         []int64
	ecalls      []func() (int64, error)
	errs        []error
	ecIDs       []uint64

	// Replan state for shard recovery: the per-shard programs and machine
	// configs (including the calibrated scales, so a rebuilt machine
	// quantizes on the identical grid), the fp64 reference labels of the
	// calibration batch, and the plan config — everything rejoinShard
	// needs to rebuild one shard's machine and re-prove bit-identity.
	progs     []*exec.Program
	mcfgs     []exec.Config
	refLabels []int
	planCfg   PlanConfig

	// inflight guards the workspace's single-pass-at-a-time contract and
	// lets Abort know whether a poison could still reach a live pass.
	inflight atomic.Bool

	labels   []int
	rec      obs.Recorder
	released bool
}

// PlanSharded builds a reusable sharded inference workspace for batches
// of rows nodes (rows must equal the deployed graph's node count). Every
// PlanConfig knob keeps its PlanWith meaning, applied per shard: an
// EPCBudgetBytes is each *shard's* budget — tiles derive from the shard's
// own row count — and reduced precisions calibrate once against the
// unsharded fp64 reference, so every shard quantizes on the same grid and
// the fleet's labels stay bit-identical to the single-enclave plan's.
func (sv *ShardedVault) PlanSharded(rows int, cfg PlanConfig) (*ShardedWorkspace, error) {
	if n := sv.privateGraph.N(); rows != n {
		return nil, fmt.Errorf("core: sharded plan rows %d != deployed graph nodes %d", rows, n)
	}
	if !cfg.Precision.valid() {
		return nil, fmt.Errorf("core: unknown plan precision %d", cfg.Precision)
	}
	part := sv.Part
	shards := sv.Shards()
	elem := cfg.Precision.Elem()
	rec := cfg.Recorder
	if rec == nil {
		rec = obs.Nop
	}

	// Per-shard rectifier programs: identical lowering everywhere (the
	// fleet checks), with a halo gather between each conv's MatMul and
	// SpMM whenever the partition has boundary columns at all — shards
	// whose own halo is empty still emit the op, as a barrier the peers'
	// gathers rely on.
	withHalo := part.HaloCols() > 0
	progs := make([]*exec.Program, shards)
	for s := range progs {
		var hs []exec.HaloSlot
		if withHalo {
			hs = exec.HaloSlots(part.Bounds, part.Halo[s])
		}
		prog, _ := sv.rectifier.compileRectifier(part.Rows(s), part.CSR[s], hs)
		if !prog.Tileable() {
			return nil, ErrShardUnsupported
		}
		progs[s] = prog
	}

	bbProg, blockVals, _ := sv.Backbone.compileBackbone(rows, nil, cfg.Workers)
	bbMach, err := bbProg.NewMachine(exec.Config{Workers: cfg.Workers, Recorder: rec})
	if err != nil {
		return nil, fmt.Errorf("core: compiling backbone plan: %w", err)
	}
	blocks := make([]*mat.Matrix, 0, len(blockVals))
	for _, bv := range blockVals {
		blocks = append(blocks, bbMach.Value(bv))
	}

	// Reduced tiers calibrate against the unsharded reference program —
	// the scale grid every shard must share — and remap the scales onto
	// each shard's value table (halo values copy their source's grid).
	var baseScales [][]float64
	var refLabels []int
	if elem != exec.F64 {
		fullProg, _ := sv.rectifier.compileRectifier(rows, nil, nil)
		scales, ref, _, err := sv.vaults[0].Load().calibrateReduced(fullProg, bbMach, blocks, cfg)
		if err != nil {
			return nil, err
		}
		baseScales, refLabels = scales, ref
	}

	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	machines := make([]*exec.Machine, shards)
	mcfgs := make([]exec.Config, shards)
	for s := range machines {
		mcfg := exec.Config{Workers: 1, Elem: elem, Recorder: rec} // direct in-enclave: single-threaded
		if cfg.tiled() {
			if t := deriveTileRows(cfg, progs[s].MaxWidth(), part.Rows(s), workers, cfg.Precision.ElemBytes()); t > 0 {
				mcfg = exec.Config{TileRows: t, Workers: workers, Elem: elem, Recorder: rec}
			}
		}
		if baseScales != nil {
			shardScales, err := exec.ShardScales(progs[s], baseScales)
			if err != nil {
				return nil, fmt.Errorf("core: shard %d scales: %w", s, err)
			}
			mcfg.Scales = shardScales
		}
		mcfgs[s] = mcfg
		m, err := progs[s].NewMachine(mcfg)
		if err != nil {
			return nil, fmt.Errorf("core: compiling shard %d plan: %w", s, err)
		}
		machines[s] = m
	}
	fleet, err := exec.NewFleet(machines)
	if err != nil {
		return nil, fmt.Errorf("core: assembling shard fleet: %w", err)
	}

	ws := &ShardedWorkspace{
		Rows:        rows,
		sv:          sv,
		bbMach:      bbMach,
		bbIn:        make([]*mat.Matrix, 1),
		blocks:      blocks,
		fleet:       fleet,
		needed:      sv.rectifier.RequiredEmbeddings(),
		shardEmbs:   make([][]*mat.Matrix, shards),
		shardLabels: make([][]int, shards),
		payload:     make([]int64, shards),
		spill:       make([]int64, shards),
		halo:        make([]int64, shards),
		epc:         make([]int64, shards),
		ecalls:      make([]func() (int64, error), shards),
		errs:        make([]error, shards),
		ecIDs:       make([]uint64, shards),
		progs:       progs,
		mcfgs:       mcfgs,
		refLabels:   refLabels,
		planCfg:     cfg,
		labels:      make([]int, rows),
		rec:         rec,
	}
	for s := 0; s < shards; s++ {
		s := s
		lo, hi := part.Bounds[s], part.Bounds[s+1]
		local := hi - lo
		embs := make([]*mat.Matrix, len(ws.needed))
		for k := range embs {
			embs[k] = &mat.Matrix{}
		}
		ws.shardEmbs[s] = embs
		ws.shardLabels[s] = ws.labels[lo:hi:hi]
		for _, i := range ws.needed {
			ws.payload[s] += int64(sv.Backbone.BlockDims[i]) * int64(local) * cfg.Precision.ElemBytes()
		}
		m := machines[s]
		ws.halo[s] = m.HaloBytes()
		if m.TileRows() > 0 {
			// Tiled shard: only the staging tiles are enclave-resident;
			// activations — including the halo extension rows — stream
			// through sealed spill buffers, charged as transfer.
			ws.epc[s] = m.TileBytes()
			ws.spill[s] = m.SpillTraffic(local)
		} else {
			ws.epc[s] = m.BufferBytes() + ws.payload[s]
		}
		ws.ecalls[s] = func() (int64, error) {
			_, err := ws.fleet.RunShard(s, local, ws.shardEmbs[s], ws.shardLabels[s])
			// The machine's busy time — kernels and halo copies, not
			// fleet-barrier waits — is this ECALL's in-enclave compute.
			return ws.fleet.Machine(s).TakeBusyNs(), err
		}
	}

	// Admission gate for reduced tiers: the actual fleet must reproduce
	// the fp64 reference labels on the calibration batch (the backbone
	// machine still holds the calibration embeddings from calibrateReduced).
	if refLabels != nil {
		check := make([]int, rows)
		ws.bindShardEmbs()
		if err := ws.runFleet(check); err != nil {
			return nil, fmt.Errorf("core: calibration fleet round: %w", err)
		}
		if err := agreementFloor(check, refLabels, cfg); err != nil {
			return nil, err
		}
	}

	for s := 0; s < shards; s++ {
		if err := sv.vaults[s].Load().Enclave.Alloc(ws.epc[s]); err != nil {
			for t := 0; t < s; t++ {
				sv.vaults[t].Load().Enclave.Free(ws.epc[t])
			}
			return nil, fmt.Errorf("core: shard %d inference workspace does not fit EPC: %w", s, err)
		}
	}
	return ws, nil
}

// bindShardEmbs rebinds every shard's embedding views onto the backbone
// block matrices' current contents — called after each backbone run, and
// zero-alloc: the view headers are planned once.
func (ws *ShardedWorkspace) bindShardEmbs() {
	part := ws.sv.Part
	for s := range ws.shardEmbs {
		lo, hi := part.Bounds[s], part.Bounds[s+1]
		for k, i := range ws.needed {
			ws.blocks[i].ViewRows(lo, hi, ws.shardEmbs[s][k])
		}
	}
}

// runFleet executes one fleet round outside any enclave accounting —
// plan-time and recovery only (the calibration agreement gate). labels
// must have Rows entries; each shard writes its own range.
func (ws *ShardedWorkspace) runFleet(labels []int) error {
	part := ws.sv.Part
	errs := make([]error, ws.fleet.Shards())
	var wg sync.WaitGroup
	for s := 0; s < ws.fleet.Shards(); s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			lo, hi := part.Bounds[s], part.Bounds[s+1]
			_, errs[s] = ws.fleet.RunShard(s, hi-lo, ws.shardEmbs[s], labels[lo:hi])
		}()
	}
	wg.Wait()
	// Drain the busy counters this unaccounted round accumulated, so the
	// first real ECALL charges only its own run.
	for s := 0; s < ws.fleet.Shards(); s++ {
		ws.fleet.Machine(s).TakeBusyNs()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Shards returns the workspace's shard count.
func (ws *ShardedWorkspace) Shards() int { return ws.fleet.Shards() }

// EnclaveBytes returns the total EPC charged across all shard enclaves at
// plan time.
func (ws *ShardedWorkspace) EnclaveBytes() int64 {
	var n int64
	for _, b := range ws.epc {
		n += b
	}
	return n
}

// ShardEnclaveBytes returns the EPC charged to shard s's enclave.
func (ws *ShardedWorkspace) ShardEnclaveBytes(s int) int64 { return ws.epc[s] }

// HaloBytes returns the boundary-activation bytes one inference exchanges
// across the fleet — the per-call halo traffic priced into the shard
// ECALL payloads and surfaced on /metrics.
func (ws *ShardedWorkspace) HaloBytes() int64 { return ws.fleet.HaloBytes() }

// ShardHaloBytes returns shard s's gathered halo bytes per call.
func (ws *ShardedWorkspace) ShardHaloBytes(s int) int64 { return ws.halo[s] }

// PayloadBytes returns the total per-call ECALL embedding payload summed
// over shards — each shard receives exactly its own rows of each required
// block, so the fleet total matches the unsharded plan's payload.
func (ws *ShardedWorkspace) PayloadBytes() int64 {
	var n int64
	for _, b := range ws.payload {
		n += b
	}
	return n
}

// SpillBytes returns the total per-call tile-flush traffic over shards
// (0 when every shard planned untiled).
func (ws *ShardedWorkspace) SpillBytes() int64 {
	var n int64
	for _, b := range ws.spill {
		n += b
	}
	return n
}

// Release returns every shard's workspace EPC (on each shard's current
// vault — after a recovery the charge lives on the replacement enclave).
// Idempotent.
func (ws *ShardedWorkspace) Release() {
	if ws.released {
		return
	}
	ws.released = true
	for s := range ws.sv.vaults {
		ws.sv.vaults[s].Load().Enclave.Free(ws.epc[s])
	}
}

// Abort poisons any pass currently in flight on this workspace with the
// given cause: every shard unwinds at its next fleet barrier and the
// pass returns an error wrapping the cause instead of hanging — the hook
// the serving layer uses when a shard is administratively pulled or a
// deadline expires from outside. Aborting an idle workspace is a no-op,
// and a pass already past its last barrier may still complete
// successfully; the contract is "clean error or clean success, never a
// hung barrier".
func (ws *ShardedWorkspace) Abort(cause error) {
	if ws.inflight.Load() {
		ws.fleet.Abort(cause)
	}
}

// PredictInto runs one full sharded inference with no deadline; see
// PredictIntoContext.
func (sv *ShardedVault) PredictInto(x *mat.Matrix, ws *ShardedWorkspace) ([]int, InferenceBreakdown, error) {
	return sv.PredictIntoContext(context.Background(), x, ws)
}

// PredictIntoContext runs one full sharded inference: the backbone once
// at full height in the normal world, then one modelled ECALL per shard,
// fanned out concurrently — each carries the shard's embedding rows plus
// its spill and halo traffic in, and its rows of the label vector out,
// while the fleet's barriers synchronise the per-layer halo exchange
// between the enclaves. The returned labels are in seed (global row)
// order, owned by the workspace and overwritten by the next call; they
// are bit-identical to the single-enclave plan's at every precision tier.
//
// Cancelling or expiring ctx aborts the fleet pass: every shard unwinds
// at its next barrier and the call returns an error wrapping ctx.Err()
// — bounded unwind, never a hung barrier. A shard enclave failure (e.g.
// enclave.ErrEnclaveLost under a fault plan) likewise aborts the pass;
// the returned error is a *ShardFault naming the culprit shard, so the
// serving layer can trip that shard's breaker and recover it.
//
// The breakdown's byte and call counts sum over shards; its modelled time
// components follow the slowest shard, since the fleet runs them in
// parallel. PeakEPCBytes is the busiest single enclave — each shard has
// its own EPC.
func (sv *ShardedVault) PredictIntoContext(ctx context.Context, x *mat.Matrix, ws *ShardedWorkspace) ([]int, InferenceBreakdown, error) {
	var bd InferenceBreakdown
	if ws.released {
		return nil, bd, fmt.Errorf("core: PredictInto on released sharded workspace")
	}
	if ws.sv != sv {
		return nil, bd, fmt.Errorf("core: workspace planned for a different sharded vault")
	}
	if x.Rows != ws.Rows {
		return nil, bd, fmt.Errorf("core: input rows %d != planned rows %d", x.Rows, ws.Rows)
	}
	if x.Cols != sv.Backbone.FeatureDim {
		return nil, bd, fmt.Errorf("core: input features %d != backbone feature dim %d", x.Cols, sv.Backbone.FeatureDim)
	}
	if err := ctx.Err(); err != nil {
		return nil, bd, fmt.Errorf("core: sharded inference: %w", err)
	}
	if !ws.inflight.CompareAndSwap(false, true) {
		return nil, bd, fmt.Errorf("core: sharded workspace already has a pass in flight")
	}
	defer ws.inflight.Store(false)
	// An Abort that landed while the workspace was idle left the barrier
	// poisoned with a stale cause; re-arm before the pass begins.
	ws.fleet.Reset()

	shards := sv.Shards()
	vaults := make([]*Vault, shards)
	before := make([]enclave.Ledger, shards)
	for s := range vaults {
		v := sv.vaults[s].Load()
		vaults[s] = v
		before[s] = v.Enclave.Ledger()
		v.Enclave.ResetPeak()
	}

	// Flight recorder: one trace per call — a query root, the backbone
	// stage, and one ECALL span per shard, so the trace tree shows the
	// fan-out and each shard's halo-priced payload.
	rec := ws.rec
	recOn := rec.Enabled()
	var trace, bbID uint64
	var qStart, stageStart int64
	if recOn {
		trace = rec.NewSpan()
		bbID = rec.NewSpan()
		ws.bbMach.SetTrace(trace, bbID)
		for s := range ws.ecIDs {
			ws.ecIDs[s] = rec.NewSpan()
			ws.fleet.Machine(s).SetTrace(trace, ws.ecIDs[s])
		}
		qStart = rec.Clock()
		stageStart = qStart
	}

	start := time.Now()
	ws.bbIn[0] = x
	ws.bbMach.Run(ws.Rows, ws.bbIn, nil)
	bd.BackboneTime = time.Since(start)
	if recOn {
		now := rec.Clock()
		rec.Record(obs.Span{Trace: trace, ID: bbID, Parent: trace, Kind: obs.SpanBackbone,
			Rows: int32(ws.Rows), Start: stageStart, Dur: now - stageStart})
		stageStart = now
	}

	// Fan out: one ECALL per shard, necessarily concurrent — every shard
	// must reach the fleet barriers for any to pass them. A watcher
	// poisons the fleet when ctx expires, and a shard whose ECALL fails
	// at the enclave gate (fault plan, lost enclave) poisons it too — its
	// peers would otherwise wait forever on a barrier it never reaches.
	ws.bindShardEmbs()
	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	if ctx.Done() != nil {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			select {
			case <-ctx.Done():
				ws.fleet.Abort(ctx.Err())
			case <-watchDone:
			}
		}()
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		s := s
		wg.Add(1)
		go func() {
			defer wg.Done()
			resultBytes := int64(len(ws.shardLabels[s])) * 8
			err := vaults[s].Enclave.EcallMeasured(ws.payload[s]+ws.spill[s]+ws.halo[s], resultBytes, ws.ecalls[s])
			if err != nil {
				ws.errs[s] = err
				if !errors.Is(err, exec.ErrFleetAborted) {
					ws.fleet.Abort(&ShardFault{Shard: s, Err: err})
				}
				return
			}
			ws.errs[s] = nil
		}()
	}
	wg.Wait()
	close(watchDone)
	watchWG.Wait()
	// Re-arm the barrier for the next pass whether or not this one was
	// poisoned; every RunShard of this pass has returned.
	ws.fleet.Reset()
	if err := ws.firstFault(); err != nil {
		return nil, bd, err
	}
	if recOn {
		now := rec.Clock()
		for s := range ws.ecIDs {
			rec.Record(obs.Span{Trace: trace, ID: ws.ecIDs[s], Parent: trace, Kind: obs.SpanECall,
				Rows:  int32(len(ws.shardLabels[s])),
				Bytes: ws.payload[s] + ws.spill[s] + ws.halo[s] + int64(len(ws.shardLabels[s]))*8,
				Start: stageStart, Dur: now - stageStart})
		}
		rec.Record(obs.Span{Trace: trace, ID: trace, Kind: obs.SpanQuery,
			Rows: int32(ws.Rows), Start: qStart, Dur: now - qStart})
	}

	var slowest time.Duration
	for s, v := range vaults {
		after := v.Enclave.Ledger()
		tr := after.TransferTime() - before[s].TransferTime()
		en := after.EnclaveTime() - before[s].EnclaveTime()
		if tr+en >= slowest {
			slowest = tr + en
			bd.TransferTime, bd.EnclaveTime = tr, en
		}
		bd.BytesIn += after.BytesIn - before[s].BytesIn
		bd.ECalls += after.ECalls - before[s].ECalls
		if after.PeakEPCBytes > bd.PeakEPCBytes {
			bd.PeakEPCBytes = after.PeakEPCBytes
		}
	}
	return ws.labels, bd, nil
}

// firstFault selects the error a failed sharded pass returns. A shard
// that failed for its own reason — not merely the poisoned barrier — is
// the culprit and is reported as a *ShardFault; otherwise the first echo
// error is returned (it wraps the abort cause, so errors.Is still sees
// the context error or the culprit's ShardFault through it). Nil when
// every shard succeeded.
func (ws *ShardedWorkspace) firstFault() error {
	var echo error
	for s, err := range ws.errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, exec.ErrFleetAborted) {
			return &ShardFault{Shard: s, Err: err}
		}
		if echo == nil {
			echo = fmt.Errorf("core: sharded inference: %w", err)
		}
	}
	return echo
}

// RecoverShard replaces shard s's lost enclave with a freshly
// provisioned one and rejoins it to every given workspace: the shard's
// CSR slab and the rectifier parameters are re-sealed into a new enclave
// (same cost model and measurement as the original deploy), the
// calibration batch is re-registered, the vault pointer is swapped
// atomically, and each workspace rebuilds the shard's machine under its
// original plan config — including the calibrated int8 scales, so the
// rebuilt shard quantizes on the identical grid — and re-proves label
// agreement with the stored fp64 reference through a live fleet round.
//
// No pass may be in flight on any of the workspaces (the serving layer
// quiesces first); RecoverShard refuses busy workspaces — and *claims*
// each idle workspace's in-flight slot for the duration, so a pass
// racing the recovery is refused by the same CAS rather than running
// through a fleet whose machine is being swapped. On a mid-recovery
// error the shard stays dead and the call can simply be retried.
func (sv *ShardedVault) RecoverShard(s int, wss ...*ShardedWorkspace) error {
	if s < 0 || s >= len(sv.vaults) {
		return fmt.Errorf("core: recover shard %d of %d", s, len(sv.vaults))
	}
	claimed := make([]*ShardedWorkspace, 0, len(wss))
	defer func() {
		for _, ws := range claimed {
			ws.inflight.Store(false)
		}
	}()
	for _, ws := range wss {
		if ws.sv != sv {
			return fmt.Errorf("core: recover shard %d: workspace planned for a different sharded vault", s)
		}
		if !ws.inflight.CompareAndSwap(false, true) {
			return fmt.Errorf("core: recover shard %d: workspace has a pass in flight", s)
		}
		claimed = append(claimed, ws)
	}
	old := sv.vaults[s].Load()
	calibX := old.calibX.Load()
	// The old enclave is gone with everything charged to it; Undeploy
	// only keeps the vault's own books consistent.
	old.Undeploy()
	v, err := sv.provisionShard(s)
	if err != nil {
		return fmt.Errorf("core: re-provisioning shard %d: %w", s, err)
	}
	if calibX != nil {
		if err := v.SetCalibrationFeatures(calibX); err != nil {
			return fmt.Errorf("core: re-registering shard %d calibration batch: %w", s, err)
		}
	}
	sv.vaults[s].Store(v)
	for _, ws := range wss {
		if err := ws.rejoinShard(s); err != nil {
			return fmt.Errorf("core: rejoining shard %d: %w", s, err)
		}
	}
	return nil
}

// rejoinShard rebuilds shard s's machine from the stored plan state,
// swaps it into the fleet, charges the workspace EPC on the replacement
// enclave, and — for reduced precision tiers — re-runs the calibration
// agreement gate through a fleet round so the recovered shard is proven
// bit-compatible before it serves.
func (ws *ShardedWorkspace) rejoinShard(s int) error {
	m, err := ws.progs[s].NewMachine(ws.mcfgs[s])
	if err != nil {
		return fmt.Errorf("recompiling machine: %w", err)
	}
	if err := ws.sv.vaults[s].Load().Enclave.Alloc(ws.epc[s]); err != nil {
		return fmt.Errorf("workspace does not fit replacement EPC: %w", err)
	}
	if err := ws.fleet.Replace(s, m); err != nil {
		ws.sv.vaults[s].Load().Enclave.Free(ws.epc[s])
		return err
	}
	if ws.refLabels != nil {
		calibX := ws.sv.vaults[s].Load().calibX.Load()
		if calibX == nil {
			return fmt.Errorf("reduced-precision plan lost its calibration batch")
		}
		ws.bbIn[0] = calibX
		ws.bbMach.Run(ws.Rows, ws.bbIn, nil)
		ws.bindShardEmbs()
		check := make([]int, ws.Rows)
		if err := ws.runFleet(check); err != nil {
			return fmt.Errorf("agreement fleet round: %w", err)
		}
		if err := agreementFloor(check, ws.refLabels, ws.planCfg); err != nil {
			return fmt.Errorf("recovered shard failed calibration agreement: %w", err)
		}
	}
	return nil
}

// RouteSeeds returns the shard a node-query batch routes to: the owner of
// the first seed. The whole batch goes to one shard — splitting seeds
// would change the joint L-hop frontier the subgraph engine extracts and
// break bit-identity with the single-enclave answer. Fails with
// ErrNodeOutOfRange on an empty batch or an out-of-range first seed (the
// per-seed validation of the query itself happens downstream).
func (sv *ShardedVault) RouteSeeds(seeds []int) (int, error) {
	if len(seeds) == 0 {
		return 0, ErrNodeOutOfRange
	}
	if u := seeds[0]; u >= 0 && u < sv.privateGraph.N() {
		return sv.Part.Owner(u), nil
	}
	return 0, ErrNodeOutOfRange
}

// PredictNodesAt answers a node-level query on shard s's vault with no
// deadline; see PredictNodesAtContext.
func (sv *ShardedVault) PredictNodesAt(x *mat.Matrix, seeds []int, s int, ws *SubgraphWorkspace) ([]int, int64, InferenceBreakdown, error) {
	return sv.PredictNodesAtContext(context.Background(), x, seeds, s, ws)
}

// PredictNodesAtContext answers a node-level query on shard s's vault
// (ws must be a subgraph workspace planned from that vault) and prices
// the cross-shard traffic the query induced: every extracted node owned
// by a peer shard models one OCALL from s's enclave — the sealed fetch
// of that node's embedding row — and the fetched bytes are returned as
// halo traffic for the caller's accounting. Labels alias ws, one per
// seed. A cancelled or expired ctx fails the query before its ECALL; a
// lost shard enclave fails it with enclave.ErrEnclaveLost (wrapped).
func (sv *ShardedVault) PredictNodesAtContext(ctx context.Context, x *mat.Matrix, seeds []int, s int, ws *SubgraphWorkspace) ([]int, int64, InferenceBreakdown, error) {
	v := sv.vaults[s].Load()
	labels, bd, err := v.PredictNodesIntoContext(ctx, x, seeds, ws)
	if err != nil {
		return nil, 0, bd, err
	}
	var haloBytes int64
	for _, u := range ws.ExtractedNodes() {
		if sv.Part.Owner(u) != s {
			v.Enclave.Ocall()
			haloBytes += ws.payload
		}
	}
	return labels, haloBytes, bd, nil
}
