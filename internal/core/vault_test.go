package core

import (
	"bytes"
	"errors"
	"testing"

	"gnnvault/internal/bundle"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/nn"
	"gnnvault/internal/substitute"
)

// deployTiny trains and deploys a tiny vault for deployment tests.
func deployTiny(t *testing.T, design RectifierDesign) (*Vault, *PipelineResult, *datasets.Dataset) {
	t.Helper()
	ds := tinyDataset()
	cfg := PipelineConfig{
		Spec: tinySpec(), Design: design,
		SubKind: substitute.KindKNN, KNNK: 2,
		Train:        TrainConfig{Epochs: 40, LR: 0.02, WeightDecay: 5e-4, Seed: 5},
		SkipOriginal: true,
	}
	res := RunPipeline(ds, cfg)
	v, err := Deploy(res.Backbone, res.Rectifier, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		t.Fatalf("Deploy(%s): %v", design, err)
	}
	return v, res, ds
}

func TestDeployAndPredictAllDesigns(t *testing.T) {
	for _, design := range Designs {
		v, res, ds := deployTiny(t, design)
		labels, bd, err := v.Predict(ds.X)
		if err != nil {
			t.Fatalf("%s: Predict: %v", design, err)
		}
		if len(labels) != ds.X.Rows {
			t.Fatalf("%s: %d labels for %d nodes", design, len(labels), ds.X.Rows)
		}
		if err := VerifyLabelOnly(labels, ds.NumClasses); err != nil {
			t.Fatalf("%s: %v", design, err)
		}
		// The deployed prediction must match the software rectifier.
		acc := 0
		embs := selectEmbeddings(res.Backbone.Embeddings(ds.X), res.Rectifier.RequiredEmbeddings())
		want := res.Rectifier.Forward(embs, false).ArgmaxRows()
		for i := range labels {
			if labels[i] == want[i] {
				acc++
			}
		}
		if acc != len(labels) {
			t.Fatalf("%s: deployed prediction differs from software rectifier (%d/%d match)",
				design, acc, len(labels))
		}
		if bd.Total() <= 0 {
			t.Fatalf("%s: breakdown has no time: %+v", design, bd)
		}
		if bd.PeakEPCBytes <= 0 || bd.PeakEPCBytes > v.Enclave.EPCLimit() {
			t.Fatalf("%s: peak EPC %d outside (0, limit]", design, bd.PeakEPCBytes)
		}
	}
}

func TestSeriesTransfersLeast(t *testing.T) {
	// Fig. 6's shape: series sends only the final hidden embedding, so its
	// transfer payload is strictly smaller than parallel's and cascaded's.
	in := map[RectifierDesign]int64{}
	for _, design := range Designs {
		v, _, ds := deployTiny(t, design)
		_, bd, err := v.Predict(ds.X)
		if err != nil {
			t.Fatal(err)
		}
		in[design] = bd.BytesIn
	}
	if in[Series] >= in[Parallel] || in[Series] >= in[Cascaded] {
		t.Fatalf("transfer bytes = %v; series should be smallest", in)
	}
}

func TestSealedArtifactsAreCiphertext(t *testing.T) {
	v, res, _ := deployTiny(t, Series)
	params, coo := v.SealedArtifacts()
	plainParams := res.Rectifier.MarshalParams()
	if bytes.Contains(params, plainParams[:32]) {
		t.Fatal("sealed params contain plaintext prefix")
	}
	if len(coo) == 0 || len(params) == 0 {
		t.Fatal("sealed artifacts empty")
	}
	// The enclave itself can unseal them.
	got, err := v.Enclave.Unseal(params)
	if err != nil {
		t.Fatalf("Unseal: %v", err)
	}
	if !bytes.Equal(got, plainParams) {
		t.Fatal("unsealed params differ")
	}
}

func TestDeployFailsWhenEPCTooSmall(t *testing.T) {
	ds := tinyDataset()
	cfg := PipelineConfig{
		Spec: tinySpec(), Design: Series,
		SubKind: substitute.KindKNN, KNNK: 2,
		Train:        TrainConfig{Epochs: 2, LR: 0.02, Seed: 6},
		SkipOriginal: true,
	}
	res := RunPipeline(ds, cfg)
	cm := enclave.DefaultCostModel()
	cm.EPCBytes = 1024 // absurdly small EPC
	_, err := Deploy(res.Backbone, res.Rectifier, ds.Graph, cm)
	if !errors.Is(err, enclave.ErrEPCExhausted) {
		t.Fatalf("err = %v, want ErrEPCExhausted", err)
	}
}

func TestPredictTooLargeForEPCFails(t *testing.T) {
	v, _, ds := deployTiny(t, Parallel)
	// Shrink the EPC post-deploy is not possible; instead deploy with a
	// limit that fits the static state but not the per-inference payload.
	cm := enclave.DefaultCostModel()
	static := v.rectifier.ParamBytes() + v.rectifier.Adjacency().NumBytes()
	cm.EPCBytes = static + 100 // embeddings won't fit
	v2, err := Deploy(v.Backbone, v.rectifier, v.privateGraph, cm)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if _, _, err := v2.Predict(ds.X); !errors.Is(err, enclave.ErrEPCExhausted) {
		t.Fatalf("err = %v, want ErrEPCExhausted", err)
	}
}

func TestUnprotectedInference(t *testing.T) {
	ds := tinyDataset()
	orig := TrainOriginal(ds, tinySpec(), TrainConfig{Epochs: 30, LR: 0.02, Seed: 7})
	labels, elapsed := UnprotectedInference(orig, ds.X)
	if len(labels) != ds.X.Rows || elapsed <= 0 {
		t.Fatalf("labels=%d elapsed=%v", len(labels), elapsed)
	}
	// SetSerial must have been restored after the measurement.
	for _, l := range orig.Model.Layers {
		if conv, ok := l.(*nn.GCNConv); ok && conv.Serial {
			t.Fatal("UnprotectedInference left the model in serial mode")
		}
	}
}

func TestEnclaveMemoryEstimates(t *testing.T) {
	_, res, ds := deployTiny(t, Series)
	recMem := EnclaveMemoryEstimate(res.Rectifier, res.Backbone.BlockDims, ds.X.Rows)
	if recMem <= 0 {
		t.Fatal("rectifier memory estimate not positive")
	}
	orig := TrainOriginal(ds, tinySpec(), TrainConfig{Epochs: 2, LR: 0.02, Seed: 8})
	fullMem := FullModelMemoryEstimate(orig, ds.X.Rows, ds.X.Cols)
	if fullMem <= recMem {
		t.Fatalf("full model (%d) should dwarf rectifier (%d)", fullMem, recMem)
	}
}

func TestPredictEPCReleasedBetweenRuns(t *testing.T) {
	v, _, ds := deployTiny(t, Parallel)
	base := v.Enclave.EPCUsed()
	for i := 0; i < 3; i++ {
		if _, _, err := v.Predict(ds.X); err != nil {
			t.Fatal(err)
		}
		if v.Enclave.EPCUsed() != base {
			t.Fatalf("run %d leaked EPC: %d != %d", i, v.Enclave.EPCUsed(), base)
		}
	}
}

func TestVaultDesignAndParams(t *testing.T) {
	v, res, _ := deployTiny(t, Cascaded)
	if v.Design() != Cascaded {
		t.Fatalf("Design = %s", v.Design())
	}
	if v.RectifierParams() != res.Rectifier.NumParams() {
		t.Fatal("RectifierParams mismatch")
	}
}

func TestVerifyLabelOnly(t *testing.T) {
	if err := VerifyLabelOnly([]int{0, 1, 2}, 3); err != nil {
		t.Fatalf("valid labels rejected: %v", err)
	}
	if err := VerifyLabelOnly([]int{0, 3}, 3); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

// exportableVault builds a vault on a named spec (Import only supports
// M1/M2/M3) for bundle round-trip tests.
func exportableVault(t *testing.T) (*Vault, *datasets.Dataset) {
	t.Helper()
	ds := tinyDataset()
	cfg := PipelineConfig{
		Spec: M1(), Design: Parallel,
		SubKind: substitute.KindKNN, KNNK: 2,
		Train:        TrainConfig{Epochs: 25, LR: 0.02, Seed: 21},
		SkipOriginal: true,
	}
	res := RunPipeline(ds, cfg)
	v, err := Deploy(res.Backbone, res.Rectifier, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return v, ds
}

func TestExportImportRoundTrip(t *testing.T) {
	v, ds := exportableVault(t)
	data, err := v.Export("cora")
	if err != nil {
		t.Fatalf("Export: %v", err)
	}
	imported, err := Import(data, enclave.DefaultCostModel())
	if err != nil {
		t.Fatalf("Import: %v", err)
	}
	want, _, err := v.Predict(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := imported.Predict(ds.X)
	if err != nil {
		t.Fatalf("imported Predict: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("imported vault predicts differently at node %d", i)
		}
	}
	if imported.Enclave.Measurement() != v.Enclave.Measurement() {
		t.Fatal("measurement changed across export/import")
	}
}

func TestImportRejectsTamperedSealedSection(t *testing.T) {
	v, _ := exportableVault(t)
	data, err := v.Export("cora")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupting any byte trips the outer integrity hash; a realistic
	// attacker rewrites a section and fixes the hash. Simulate by
	// rebuilding the bundle with a mangled sealed payload.
	b, err := bundle.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	sealed, _ := b.Section(bundle.SectionSealedRectifier)
	mangled := append([]byte(nil), sealed...)
	mangled[len(mangled)-1] ^= 1
	b.Add(bundle.SectionSealedRectifier, mangled)
	reData, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Import(reData, enclave.DefaultCostModel()); err == nil {
		t.Fatal("tampered sealed rectifier imported successfully")
	}
}

func TestImportRejectsWrongMeasurement(t *testing.T) {
	v, _ := exportableVault(t)
	data, err := v.Export("cora")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	// Re-declare the bundle as a series-design build: the device's enclave
	// measurement will not match and the sealed data must stay opaque.
	man := b.Manifest
	man.Design = string(Series)
	b2 := bundle.New(b.Measurement, man)
	for _, name := range b.Names() {
		body, _ := b.Section(name)
		b2.Add(name, body)
	}
	reData, err := b2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Import(reData, enclave.DefaultCostModel()); err == nil {
		t.Fatal("measurement mismatch not detected")
	}
}

func TestExportDNNBackboneFails(t *testing.T) {
	ds := tinyDataset()
	bb := TrainBackbone(ds, M1(), substitute.KindDNN, nil, TrainConfig{Epochs: 2, LR: 0.02, Seed: 22})
	rec := TrainRectifier(ds, bb, Series, TrainConfig{Epochs: 2, LR: 0.02, Seed: 22})
	v, err := Deploy(bb, rec, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Export("cora"); err == nil {
		t.Fatal("DNN backbone export should fail")
	}
}

func TestPredictNodes(t *testing.T) {
	v, _, ds := deployTiny(t, Series)
	all, _, err := v.Predict(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.PredictNodes(ds.X, []int{5, 0, 17})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != all[5] || got[1] != all[0] || got[2] != all[17] {
		t.Fatalf("PredictNodes = %v", got)
	}
	if _, err := v.PredictNodes(ds.X, []int{-1}); err == nil {
		t.Fatal("out-of-range query accepted")
	}
}

func TestPredictStreamedMatchesBatched(t *testing.T) {
	v, _, ds := deployTiny(t, Parallel)
	batched, bdB, err := v.Predict(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	streamed, bdS, err := v.PredictStreamed(ds.X)
	if err != nil {
		t.Fatalf("PredictStreamed: %v", err)
	}
	for i := range batched {
		if batched[i] != streamed[i] {
			t.Fatalf("streamed label differs at node %d", i)
		}
	}
	// Batched: one ECALL per embedding + one compute ECALL. Streamed folds
	// compute into each transfer: exactly one ECALL per rectifier layer.
	if bdS.ECalls != bdB.ECalls-1 {
		t.Fatalf("ECALLs: streamed %d, batched %d (want streamed = batched-1)", bdS.ECalls, bdB.ECalls)
	}
	if bdS.PeakEPCBytes >= bdB.PeakEPCBytes {
		t.Fatalf("streamed peak EPC (%d) should be below batched (%d)",
			bdS.PeakEPCBytes, bdB.PeakEPCBytes)
	}
}

func TestPredictStreamedFallsBackForSeries(t *testing.T) {
	v, _, ds := deployTiny(t, Series)
	a, _, err := v.Predict(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := v.PredictStreamed(ds.X)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("series fallback differs")
		}
	}
}

func TestPredictStreamedEPCReleased(t *testing.T) {
	v, _, ds := deployTiny(t, Parallel)
	base := v.Enclave.EPCUsed()
	if _, _, err := v.PredictStreamed(ds.X); err != nil {
		t.Fatal(err)
	}
	if v.Enclave.EPCUsed() != base {
		t.Fatalf("streamed inference leaked EPC: %d != %d", v.Enclave.EPCUsed(), base)
	}
}
