// Package core implements GNNVault, the paper's contribution: a
// partition-before-training deployment for GNN inference where a public
// backbone trained on a substitute graph runs in the untrusted world and a
// small private rectifier holding the real adjacency runs inside a TEE.
//
// The pipeline mirrors the paper's Fig. 2:
//
//  1. build a substitute graph from public node features (package
//     substitute),
//  2. train the public backbone on the substitute graph (TrainBackbone),
//  3. freeze the backbone and train the rectifier with the real adjacency
//     (TrainRectifier),
//  4. deploy: backbone + substitute graph in the normal world, rectifier +
//     real COO adjacency sealed inside the enclave (Deploy → Vault).
package core

import "fmt"

// RectifierDesign selects the backbone→rectifier communication scheme of
// the paper's Fig. 3.
type RectifierDesign string

// The three rectifier designs evaluated in Table II and Fig. 6.
const (
	// Parallel rectifies the node embeddings after every backbone
	// message-passing layer: rectifier layer k consumes the concatenation
	// of the previous rectifier output and backbone layer k's embedding.
	Parallel RectifierDesign = "parallel"
	// Cascaded runs the backbone to completion first and feeds the
	// concatenation of all backbone layer outputs to the rectifier.
	Cascaded RectifierDesign = "cascaded"
	// Series feeds only the backbone's final hidden embedding to the
	// rectifier — the smallest transfer and enclave footprint.
	Series RectifierDesign = "series"
)

// Designs lists the rectifier designs in the paper's presentation order.
var Designs = []RectifierDesign{Parallel, Series, Cascaded}

// ConvKind selects the graph-convolution architecture used by both the
// backbone and the rectifier. GCN is the paper's evaluated architecture;
// GraphSAGE and GAT implement its stated future work.
type ConvKind string

// The supported graph-convolution architectures.
const (
	ConvGCN  ConvKind = "gcn"
	ConvSAGE ConvKind = "sage"
	ConvGAT  ConvKind = "gat"
)

// ConvKinds lists the supported architectures.
var ConvKinds = []ConvKind{ConvGCN, ConvSAGE, ConvGAT}

// ModelSpec fixes the channel widths of a GNNVault model family. Hidden
// dims exclude the class count C, which is appended per dataset.
type ModelSpec struct {
	Name string
	// Conv is the graph-convolution architecture (default ConvGCN).
	Conv ConvKind
	// BackboneHidden are the backbone GCN output widths before the final
	// C-wide classifier layer, e.g. (128, 32) for M1's (128, 32, C).
	BackboneHidden []int
	// RectifierHidden are the rectifier widths before its C-wide output
	// layer.
	RectifierHidden []int
	// Dropout applied between layers during training.
	Dropout float64
}

// The paper's three model families (Sec. V-A "Models"). M1 targets the
// small citation graphs, M2 the many-class CoraFull, M3 is the larger and
// deeper design used for the Amazon graphs.
func M1() ModelSpec {
	return ModelSpec{Name: "M1", BackboneHidden: []int{128, 32}, RectifierHidden: []int{128, 32}, Dropout: 0.5}
}

// M2 widens the channels to 256 for datasets with a large label space.
func M2() ModelSpec {
	return ModelSpec{Name: "M2", BackboneHidden: []int{256, 64}, RectifierHidden: []int{160, 64}, Dropout: 0.5}
}

// M3 is the deeper five-layer backbone with a three-layer rectifier.
func M3() ModelSpec {
	return ModelSpec{Name: "M3", BackboneHidden: []int{256, 64, 32, 16}, RectifierHidden: []int{64, 32}, Dropout: 0.5}
}

// SpecByName returns the named model spec (M1, M2 or M3).
func SpecByName(name string) ModelSpec {
	switch name {
	case "M1":
		return M1()
	case "M2":
		return M2()
	case "M3":
		return M3()
	default:
		panic(fmt.Sprintf("core: unknown model spec %q", name))
	}
}

// SpecForDataset returns the paper's model assignment: M1 for the citation
// graphs, M2 for CoraFull, M3 for the Amazon graphs.
func SpecForDataset(dataset string) ModelSpec {
	switch dataset {
	case "cora", "citeseer", "pubmed":
		return M1()
	case "corafull":
		return M2()
	case "computer", "photo":
		return M3()
	default:
		return M1()
	}
}

// TrainConfig holds the optimisation hyper-parameters shared by backbone,
// rectifier, and original-model training.
type TrainConfig struct {
	Epochs      int
	LR          float64
	WeightDecay float64
	Seed        int64
	// Quiet suppresses per-epoch logging (always quiet in this build;
	// kept for CLI verbosity control).
	Quiet bool
}

// DefaultTrainConfig is the full-batch Adam recipe used by all experiments.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 200, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
}
