package core

import (
	"testing"

	"gnnvault/internal/obs"
	"gnnvault/internal/subgraph"
)

// TestPredictIntoAllocFreeInstrumented pins the full-graph hot path at
// zero allocations per query with a LIVE span recorder attached — not the
// no-op default — so turning the flight recorder on in production cannot
// reintroduce per-query garbage.
func TestPredictIntoAllocFreeInstrumented(t *testing.T) {
	ds, v := planTestVault(t, Parallel)
	ring := obs.NewRing(1024)
	ws, err := v.PlanWith(ds.X.Rows, PlanConfig{Workers: 1, Recorder: ring})
	if err != nil {
		t.Fatalf("PlanWith: %v", err)
	}
	defer ws.Release()
	if _, _, err := v.PredictInto(ds.X, ws); err != nil { // warm-up
		t.Fatalf("warm-up: %v", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := v.PredictInto(ds.X, ws); err != nil {
			t.Fatalf("PredictInto: %v", err)
		}
	})
	if allocs > 0 {
		t.Fatalf("instrumented PredictInto allocates %.1f objects/op, want 0", allocs)
	}
	if ring.Len() == 0 {
		t.Fatalf("live recorder captured no spans")
	}
	var queries, ops int
	for _, s := range ring.Last(0) {
		switch s.Kind {
		case obs.SpanQuery:
			queries++
		case obs.SpanOp:
			ops++
		}
	}
	if queries == 0 || ops == 0 {
		t.Fatalf("expected query and op spans in the ring, got %d queries / %d ops", queries, ops)
	}
}

// TestPredictNodesIntoAllocFreeInstrumented is the node-query twin: the
// subgraph hot path stays allocation-free with span recording on.
func TestPredictNodesIntoAllocFreeInstrumented(t *testing.T) {
	ds := pathDataset(300)
	v := deploySubgraphExact(t, ds, Parallel)
	defer v.Undeploy()
	ring := obs.NewRing(1024)
	ws, err := v.PlanSubgraphWith(2, subgraph.Config{Hops: 2, Fanout: 4, Seed: 1}, PlanConfig{Recorder: ring})
	if err != nil {
		t.Fatalf("PlanSubgraphWith: %v", err)
	}
	defer ws.Release()
	seeds := []int{40, 200}
	if _, _, err := v.PredictNodesInto(ds.X, seeds, ws); err != nil { // warm-up
		t.Fatalf("warm-up: %v", err)
	}
	allocs := testing.AllocsPerRun(30, func() {
		if _, _, err := v.PredictNodesInto(ds.X, seeds, ws); err != nil {
			t.Fatalf("PredictNodesInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("instrumented node query allocates %.1f per run, want 0", allocs)
	}
	var nodeQueries, ecalls int
	for _, s := range ring.Last(0) {
		switch s.Kind {
		case obs.SpanNodeQuery:
			nodeQueries++
		case obs.SpanECall:
			ecalls++
		}
	}
	if nodeQueries == 0 || ecalls == 0 {
		t.Fatalf("expected node_query and ecall spans, got %d / %d", nodeQueries, ecalls)
	}
}

// TestInstrumentedOutputsBitIdentical checks a live recorder changes
// nothing about the answers: labels from instrumented and uninstrumented
// workspaces of the same vault must match exactly.
func TestInstrumentedOutputsBitIdentical(t *testing.T) {
	ds, v := planTestVault(t, Parallel)
	wsPlain, err := v.PlanWith(ds.X.Rows, PlanConfig{Workers: 1})
	if err != nil {
		t.Fatalf("PlanWith: %v", err)
	}
	defer wsPlain.Release()
	wsObs, err := v.PlanWith(ds.X.Rows, PlanConfig{Workers: 1, Recorder: obs.NewRing(1024)})
	if err != nil {
		t.Fatalf("PlanWith instrumented: %v", err)
	}
	defer wsObs.Release()
	want, _, err := v.PredictInto(ds.X, wsPlain)
	if err != nil {
		t.Fatalf("PredictInto: %v", err)
	}
	got, _, err := v.PredictInto(ds.X, wsObs)
	if err != nil {
		t.Fatalf("instrumented PredictInto: %v", err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("label %d differs under instrumentation: %d vs %d", i, got[i], want[i])
		}
	}
}
