package core

import (
	"errors"
	"fmt"
	"time"

	"gnnvault/internal/exec"
	"gnnvault/internal/mat"
	"gnnvault/internal/obs"
)

// Execution plans. A deployed vault answers a stream of inference requests;
// re-allocating every activation per call makes steady-state throughput
// garbage-collector-bound. Plan splits inference into a one-time setup —
// compile the rectifier into an internal/exec op program, size every buffer,
// charge the enclave's EPC ledger once, pre-bind the ECALL body — and a hot
// PredictInto step that reuses the workspace and touches zero fresh heap.
//
// Plans come in two EPC shapes. The default (PlanConfig zero value) keeps
// the whole rectifier working set — scratch plus transferred embeddings —
// EPC-resident, exactly the pre-tiling behaviour: fast, but O(n × width)
// enclave bytes, which stops fitting real EPCs somewhere around 50k nodes.
// A plan with an EPCBudgetBytes (or explicit TileRows) instead executes the
// same program row tile by row tile: full activations spill to untrusted
// memory (modelled as sealed pages, like SGX paging) and the enclave is
// charged only for the tile-sized staging buffers — one per tile worker —
// so the footprint becomes O(workers × tileRows × width): a 200k-node
// full-graph plan fits a 64 MB budget that its untiled form exceeds 4×.
// Since the fusion pass, both plan shapes also run fewer, fatter ops: the
// compilers fold each conv's bias/ReLU tail into its product op and erase
// the fused-away intermediates, so untiled plans charge less EPC and tiled
// plans flush roughly half the tiles.

// PlanConfig tunes one inference plan. The zero value reproduces the
// classic untiled plan.
type PlanConfig struct {
	// EPCBudgetBytes caps the enclave bytes this plan's *workspace* may
	// charge (persistent deploy-time residents are separate). A non-zero
	// budget selects tiled execution with TileRows derived as
	// budget / (element bytes × widest program value × workers), clamped
	// to [1, rows] — the whole worker pool's staging tiles fit the
	// budget, and reduced-precision plans buy proportionally taller
	// tiles from the same budget.
	EPCBudgetBytes int64
	// TileRows, when non-zero, fixes the tile height directly and
	// overrides the budget derivation.
	TileRows int
	// Workers is this plan's parallelism budget. In the normal world it is
	// the backbone kernel fan-out (0 = process-global default, 1 =
	// inline), carried in the workspace so concurrent servers with
	// different budgets never race on the deprecated mat.SetMaxWorkers
	// global. For a tiled plan it additionally sets the in-enclave
	// tile-parallel fan-out — the modelled ECALL enters on that many TCS
	// threads, each with its own EPC-charged staging tile, so the enclave
	// charge is Workers × tile bytes (with the derivation above keeping
	// the product inside the budget). Untiled plans keep the in-enclave
	// side single-threaded regardless — a direct rectifier forward has no
	// race-free decomposition to hand the pool.
	Workers int
	// Precision selects the in-enclave kernel family (fp64, fp32, int8).
	// The zero value is fp64 — the bit-exact reference. Reduced tiers
	// shrink every enclave byte by the element width; int8 plans require
	// calibration features (Vault.SetCalibrationFeatures) and both reduced
	// tiers are checked against the fp64 reference when features are
	// registered, failing with ErrCalibrationFailed below MinAgreement.
	Precision Precision
	// MinAgreement overrides the argmax-agreement floor a reduced plan
	// must reach on the calibration batch (0 = DefaultMinAgreement).
	MinAgreement float64
	// Recorder receives the plan's flight-recorder spans: one query root
	// per call plus backbone/ECALL stage spans and the executor's per-op
	// spans beneath them. Nil means obs.Nop — probes compile in, record
	// nothing, and the hot path keeps 0 allocs/op and bit-identical
	// outputs either way.
	Recorder obs.Recorder
}

// tiled reports whether the config selects tiled streaming execution.
func (c PlanConfig) tiled() bool { return c.EPCBudgetBytes > 0 || c.TileRows > 0 }

// ErrTiledUnsupported is returned by PlanWith when an EPC budget (or tile
// height) is requested for a deployment whose ops have no row-tileable
// kernel decomposition — SAGE or GAT convolutions. Such vaults still plan
// untiled.
var ErrTiledUnsupported = errors.New("core: deployment has non-tileable convolutions; plan without an EPC budget")

// RectifierWorkspace is a standalone execution context for one rectifier:
// its design wiring compiled to an exec program plus a direct (fully
// resident, single-threaded) machine. Vault plans embed the same program
// in their own machines; this type exists for direct rectifier use in
// tests and analysis.
type RectifierWorkspace struct {
	Rows     int
	mach     *exec.Machine
	extra    int64 // closure-held workspace bytes of opaque (non-GCN) convs
	wantEmbs int
}

// Plan compiles the rectifier and sizes a direct workspace for inference
// over rows nodes (rows must equal the private graph's node count; the
// SpMM kernels check at execution).
func (r *Rectifier) Plan(rows int) *RectifierWorkspace {
	bld := exec.NewBuilder(rows)
	needed := r.RequiredEmbeddings()
	inputs := make([]int, 0, len(needed))
	for _, i := range needed {
		inputs = append(inputs, bld.Input(r.BackboneDims[i]))
	}
	var extra int64
	r.lowerInto(bld, inputs, nil, nil, rows, 1, &extra)
	mach, err := bld.Build().Fused().NewMachine(exec.Config{Workers: 1})
	if err != nil {
		panic(fmt.Sprintf("core: rectifier plan: %v", err))
	}
	return &RectifierWorkspace{Rows: rows, mach: mach, extra: extra, wantEmbs: len(needed)}
}

// NumBytes returns the rectifier workspace's buffer footprint: the
// quantity an untiled plan charges against the EPC at plan time.
func (ws *RectifierWorkspace) NumBytes() int64 { return ws.mach.BufferBytes() + ws.extra }

// ForwardWS rectifies the transferred embeddings into logits using only
// workspace memory. embs must match RequiredEmbeddings, in order; the
// result aliases the workspace.
func (r *Rectifier) ForwardWS(embs []*mat.Matrix, ws *RectifierWorkspace) *mat.Matrix {
	if len(embs) != ws.wantEmbs {
		panic(fmt.Sprintf("core: rectifier %s wants %d embeddings, got %d", r.Design, ws.wantEmbs, len(embs)))
	}
	return ws.mach.Run(ws.Rows, embs, nil)
}

// Workspace is a full inference plan for one vault: the compiled backbone
// machine in the normal world, the compiled rectifier machine charged
// against the EPC (wholly, or tiles-only under a budget), the label output
// buffer, and the pre-bound ECALL body. Both halves run fused programs on
// the shared exec engine. A Workspace belongs to one goroutine at a time;
// a serving fleet plans one per worker.
type Workspace struct {
	Rows int

	v       *Vault
	bbMach  *exec.Machine // backbone program, normal world
	bbIn    []*mat.Matrix // reused single-input list for bbMach.Run
	blocks  []*mat.Matrix // stable views of the kept block-embedding values
	mach    *exec.Machine // rectifier program, in-enclave
	needed  []int
	embs    []*mat.Matrix
	labels  []int
	payload int64 // transferred embedding bytes per call
	spill   int64 // tiled only: modelled tile-flush traffic per call
	epc     int64 // EPC charged at plan time
	ecall   func() error
	rec     obs.Recorder // never nil; obs.Nop when unconfigured

	released bool
}

// Plan builds a classic untiled inference workspace — the PlanConfig zero
// value — for batches of rows nodes. See PlanWith.
func (v *Vault) Plan(rows int) (*Workspace, error) {
	return v.PlanWith(rows, PlanConfig{})
}

// PlanWith builds a reusable inference workspace for batches of rows nodes
// (rows must equal the deployed graph's node count — GNN inference is
// full-graph). The enclave is charged once, here: an untiled plan charges
// the rectifier's full scratch plus the transferred-embedding residency; a
// plan with an EPC budget (or explicit tile height) charges only its
// staging tile, streaming everything else through untrusted memory.
// PlanWith fails with enclave.ErrEPCExhausted wrapped if the working set
// does not fit — which for untiled plans bounds how many concurrent
// workspaces one enclave can serve, and for tiled plans essentially never
// happens — and with ErrTiledUnsupported when a budget is requested for
// non-tileable (SAGE/GAT) convolutions.
func (v *Vault) PlanWith(rows int, cfg PlanConfig) (*Workspace, error) {
	if v.undeployed.Load() {
		return nil, fmt.Errorf("core: plan on undeployed vault")
	}
	if n := v.privateGraph.N(); rows != n {
		return nil, fmt.Errorf("core: plan rows %d != deployed graph nodes %d", rows, n)
	}
	if !cfg.Precision.valid() {
		return nil, fmt.Errorf("core: unknown plan precision %d", cfg.Precision)
	}
	elem := cfg.Precision.Elem()
	prog, extra := v.rectifier.compileRectifier(rows, nil, nil)
	if elem != exec.F64 && !prog.Tileable() {
		return nil, fmt.Errorf("core: %s plan: %w", cfg.Precision, exec.ErrPrecisionUnsupported)
	}
	rec := cfg.Recorder
	if rec == nil {
		rec = obs.Nop
	}
	machCfg := exec.Config{Workers: 1, Elem: elem, Recorder: rec} // direct in-enclave: single-threaded
	if cfg.tiled() {
		if !prog.Tileable() {
			return nil, ErrTiledUnsupported
		}
		workers := cfg.Workers
		if workers < 1 {
			workers = 1
		}
		machCfg = exec.Config{
			TileRows: deriveTileRows(cfg, prog.MaxWidth(), rows, workers, cfg.Precision.ElemBytes()),
			Workers:  workers,
			Elem:     elem,
			Recorder: rec,
		}
	}
	// Backbone first: reduced plans calibrate their scales and agreement
	// against its fp64 embeddings before the enclave machine exists.
	bbProg, blockVals, _ := v.Backbone.compileBackbone(rows, nil, cfg.Workers)
	bbMach, err := bbProg.NewMachine(exec.Config{Workers: cfg.Workers, Recorder: rec})
	if err != nil {
		return nil, fmt.Errorf("core: compiling backbone plan: %w", err)
	}
	blocks := make([]*mat.Matrix, 0, len(blockVals))
	for _, bv := range blockVals {
		blocks = append(blocks, bbMach.Value(bv))
	}
	var refLabels []int
	var calibEmbs []*mat.Matrix
	if elem != exec.F64 {
		scales, ref, embs, err := v.calibrateReduced(prog, bbMach, blocks, cfg)
		if err != nil {
			return nil, err
		}
		machCfg.Scales = scales
		refLabels, calibEmbs = ref, embs
	}
	mach, err := prog.NewMachine(machCfg)
	if err != nil {
		return nil, fmt.Errorf("core: compiling inference plan: %w", err)
	}
	if refLabels != nil {
		// Admission gate: the actual plan machine (tiled or direct) must
		// reproduce the fp64 reference labels on the calibration batch.
		if err := checkAgreement(mach, rows, calibEmbs, refLabels, cfg); err != nil {
			return nil, err
		}
	}
	ws := &Workspace{
		Rows:   rows,
		v:      v,
		bbMach: bbMach,
		bbIn:   make([]*mat.Matrix, 1),
		mach:   mach,
		needed: v.rectifier.RequiredEmbeddings(),
		labels: make([]int, rows),
		blocks: blocks,
		rec:    rec,
	}
	ws.embs = make([]*mat.Matrix, 0, len(ws.needed))
	for _, i := range ws.needed {
		ws.payload += int64(v.Backbone.BlockDims[i]) * int64(rows) * cfg.Precision.ElemBytes()
	}
	if machCfg.TileRows > 0 {
		// Tiled: only the staging tiles (one per tile worker) are
		// enclave-resident; activations and embeddings stream. The
		// per-call flush traffic is charged as boundary transfer instead.
		ws.epc = mach.TileBytes()
		ws.spill = mach.SpillTraffic(rows)
	} else {
		ws.epc = mach.BufferBytes() + extra + ws.payload
	}
	if err := v.Enclave.Alloc(ws.epc); err != nil {
		return nil, fmt.Errorf("core: inference workspace does not fit EPC: %w", err)
	}
	// Pre-bound ECALL body: everything it touches lives in ws, so the hot
	// path never materialises a new closure.
	ws.ecall = func() error {
		ws.mach.Run(ws.Rows, ws.embs, ws.labels)
		return nil
	}
	return ws, nil
}

// cacheTileBytes caps a budget-derived staging tile at a size that stays
// resident in a last-level cache slice: beyond this, taller tiles buy no
// fewer kernel calls per row but push the staging buffer (and its flush)
// out to DRAM, measurably slowing the stream. Explicit TileRows requests
// are honoured uncapped.
const cacheTileBytes = 2 << 20

// deriveTileRows maps a plan config to a tile height: an explicit TileRows
// wins; otherwise the EPC budget buys budget/(elemBytes·maxWidth·workers)
// rows of the widest program value — every tile worker charges its own
// staging tile, so the pool as a whole stays inside the budget, and a
// narrower element type buys proportionally taller tiles (int8 tiles hold
// 8× the rows of fp64 ones for the same budget). Budget-derived heights
// are additionally capped at one worker's row share (taller tiles would
// idle workers without saving anything) and at a cache-resident staging
// size (taller tiles are measurably slower, not just pointless), and the
// result is clamped to [1, rows] — a budget too small for even one row
// still plans, charging its actual (minimal) tiles.
func deriveTileRows(cfg PlanConfig, maxWidth, rows, workers int, elemBytes int64) int {
	t := cfg.TileRows
	if t <= 0 {
		t = int(cfg.EPCBudgetBytes / (elemBytes * int64(maxWidth) * int64(workers)))
		if lim := int(cacheTileBytes / (elemBytes * int64(maxWidth))); t > lim {
			t = lim
		}
		if share := (rows + workers - 1) / workers; t > share {
			t = share
		}
	}
	if t < 1 {
		t = 1
	}
	if t > rows {
		t = rows
	}
	return t
}

// EnclaveBytes returns the EPC charged for this workspace at plan time.
func (ws *Workspace) EnclaveBytes() int64 { return ws.epc }

// TileRows returns the plan's tile height (0 for untiled plans).
func (ws *Workspace) TileRows() int { return ws.mach.TileRows() }

// TileWorkers returns the tile-parallel fan-out of the plan's enclave
// machine (1 for untiled and serially tiled plans).
func (ws *Workspace) TileWorkers() int { return ws.mach.TileWorkers() }

// SpillBytes returns the modelled per-call tile-flush traffic the plan
// charges to the ECALL transfer payload (0 for untiled plans). Fusion
// shrinks it: folded chains flush once instead of once per element-wise
// op.
func (ws *Workspace) SpillBytes() int64 { return ws.spill }

// PayloadBytes returns the modelled per-call ECALL embedding payload: the
// backbone blocks the rectifier consumes, priced at the plan's element
// width — a reduced-precision plan carries proportionally smaller
// payloads across the boundary.
func (ws *Workspace) PayloadBytes() int64 { return ws.payload }

// Release returns the workspace's EPC to the enclave. The workspace must
// not be used afterwards.
func (ws *Workspace) Release() {
	if ws.released {
		return
	}
	ws.released = true
	ws.v.Enclave.Free(ws.epc)
}

// PredictInto is Predict over a planned workspace: backbone forward in the
// normal world, one modelled ECALL carrying exactly the embeddings the
// design requires, rectification and label reduction inside the enclave —
// all into pre-sized buffers, with zero steady-state heap allocation.
// Tiled plans additionally charge their activation spill traffic to the
// ECALL's transfer payload, so the latency cost of streaming shows up in
// the modelled breakdown.
//
// The returned label slice is owned by the workspace and overwritten by the
// next call. The breakdown is computed from enclave-ledger deltas; when
// several workspaces share one enclave concurrently, the wall-clock fields
// remain exact but the modelled enclave components may interleave.
func (v *Vault) PredictInto(x *mat.Matrix, ws *Workspace) ([]int, InferenceBreakdown, error) {
	labels, _, bd, err := v.predictInto(x, ws, false)
	return labels, bd, err
}

// PredictScoresInto is PredictInto for deployments that expose per-class
// scores: the rectified logits cross the boundary alongside the labels,
// priced into the ECALL result payload at classes × 8 extra bytes per
// node. This is the deliberately weakened output mode the privacy
// harness (internal/privharness) attacks — the paper's label-only rule
// (Sec. IV-E) corresponds to never calling it. The returned matrix is the
// plan machine's output view: machine-owned, overwritten by the next
// call, so serving code must copy what it sends out.
func (v *Vault) PredictScoresInto(x *mat.Matrix, ws *Workspace) (*mat.Matrix, []int, InferenceBreakdown, error) {
	labels, scores, bd, err := v.predictInto(x, ws, true)
	return scores, labels, bd, err
}

func (v *Vault) predictInto(x *mat.Matrix, ws *Workspace, wantScores bool) ([]int, *mat.Matrix, InferenceBreakdown, error) {
	var bd InferenceBreakdown
	if ws.released {
		return nil, nil, bd, fmt.Errorf("core: PredictInto on released workspace")
	}
	if ws.v != v {
		return nil, nil, bd, fmt.Errorf("core: workspace planned for a different vault")
	}
	if x.Rows != ws.Rows {
		return nil, nil, bd, fmt.Errorf("core: input rows %d != planned rows %d", x.Rows, ws.Rows)
	}
	if x.Cols != v.Backbone.FeatureDim {
		return nil, nil, bd, fmt.Errorf("core: input features %d != backbone feature dim %d", x.Cols, v.Backbone.FeatureDim)
	}
	before := v.Enclave.Ledger()
	v.Enclave.ResetPeak()

	// Flight recorder: one trace per call — a query root with backbone
	// and ECALL stage spans beneath it; the machines attach their per-op
	// spans to those stages. All probe state is scalar, so an enabled
	// recorder costs a handful of clock reads and ring writes and the
	// disabled one a predictable branch — either way 0 allocs/op.
	rec := ws.rec
	recOn := rec.Enabled()
	var trace, bbID, ecID uint64
	var qStart, stageStart int64
	if recOn {
		trace = rec.NewSpan()
		bbID = rec.NewSpan()
		ecID = rec.NewSpan()
		ws.bbMach.SetTrace(trace, bbID)
		ws.mach.SetTrace(trace, ecID)
		qStart = rec.Clock()
		stageStart = qStart
	}

	// Normal world: the fused backbone program into machine buffers.
	start := time.Now()
	ws.bbIn[0] = x
	ws.bbMach.Run(ws.Rows, ws.bbIn, nil)
	bd.BackboneTime = time.Since(start)
	if recOn {
		now := rec.Clock()
		rec.Record(obs.Span{Trace: trace, ID: bbID, Parent: trace, Kind: obs.SpanBackbone,
			Rows: int32(ws.Rows), Start: stageStart, Dur: now - stageStart})
		stageStart = now
	}

	// One-way transfer of exactly the embeddings the design requires,
	// modelled as a single ECALL (for untiled plans the buffers are
	// EPC-resident since plan time; tiled plans stream them, plus the
	// tile flushes, through the boundary). By default only the labels
	// cross back — 8 bytes per node; a scores call pays for the logits
	// too.
	ws.embs = ws.embs[:0]
	for _, i := range ws.needed {
		ws.embs = append(ws.embs, ws.blocks[i])
	}
	resultBytes := int64(ws.Rows) * 8
	if wantScores {
		resultBytes += int64(ws.Rows) * int64(ws.mach.OutputWidth()) * 8
	}
	if err := v.Enclave.Ecall(ws.payload+ws.spill, resultBytes, ws.ecall); err != nil {
		return nil, nil, bd, fmt.Errorf("core: enclave inference: %w", err)
	}
	if recOn {
		now := rec.Clock()
		rec.Record(obs.Span{Trace: trace, ID: ecID, Parent: trace, Kind: obs.SpanECall,
			Rows: int32(ws.Rows), Bytes: ws.payload + ws.spill + resultBytes,
			Start: stageStart, Dur: now - stageStart})
		rec.Record(obs.Span{Trace: trace, ID: trace, Kind: obs.SpanQuery,
			Rows: int32(ws.Rows), Start: qStart, Dur: now - qStart})
	}

	fillBreakdown(&bd, before, v.Enclave.Ledger())
	var scores *mat.Matrix
	if wantScores {
		scores = ws.mach.Output()
	}
	return ws.labels, scores, bd, nil
}

// Nodes returns the node count of the deployed private graph — the batch
// height every inference over this vault uses.
func (v *Vault) Nodes() int { return v.privateGraph.N() }
