package core

import (
	"fmt"
	"time"

	"gnnvault/internal/mat"
	"gnnvault/internal/nn"
)

// Execution plans. A deployed vault answers a stream of inference requests;
// re-allocating every activation per call makes steady-state throughput
// garbage-collector-bound. Plan splits inference into a one-time setup —
// size every buffer from the layer specs, charge the enclave's EPC ledger
// once for the rectifier's working set, pre-bind the ECALL body — and a hot
// PredictInto step that reuses the workspace and touches zero fresh heap.
// This mirrors how a real enclave operates: EPC pages are committed at
// initialisation, not malloc'd per request.

// BackboneWorkspace is the normal-world half of an inference plan: one
// scratch buffer chain for the backbone model plus the reused per-block
// embedding list.
type BackboneWorkspace struct {
	Rows   int
	model  *nn.ModelWorkspace
	blocks []*mat.Matrix
}

// Plan sizes a backbone workspace for inference over rows nodes.
func (b *Backbone) Plan(rows int) *BackboneWorkspace {
	return &BackboneWorkspace{
		Rows:   rows,
		model:  b.Model.PlanWorkspace(rows, b.FeatureDim),
		blocks: make([]*mat.Matrix, 0, len(b.convIdx)),
	}
}

// NumBytes returns the workspace buffer footprint.
func (ws *BackboneWorkspace) NumBytes() int64 { return ws.model.NumBytes() }

// EmbeddingsWS is Embeddings into a planned workspace. The returned
// matrices alias workspace buffers and are overwritten by the next call.
func (b *Backbone) EmbeddingsWS(x *mat.Matrix, ws *BackboneWorkspace) []*mat.Matrix {
	_, acts := b.Model.ForwardCollectWS(x, ws.model)
	ws.blocks = b.appendBlockOutputs(ws.blocks[:0], acts)
	return ws.blocks
}

// LogitsWS is Logits into a planned workspace.
func (b *Backbone) LogitsWS(x *mat.Matrix, ws *BackboneWorkspace) *mat.Matrix {
	return b.Model.ForwardWS(x, ws.model)
}

// RectifierWorkspace is the enclave-side half of an inference plan:
// per-layer conv and ReLU scratch plus the concatenation buffers the design
// wiring needs. Its NumBytes is what Deploy-time EPC accounting charges for
// one planned inference stream.
type RectifierWorkspace struct {
	Rows     int
	convs    []*nn.LayerWorkspace
	relus    []*nn.LayerWorkspace
	convWS   []nn.WorkspaceLayer
	concat   []*mat.Matrix // non-nil where layer k's input must be assembled
	wantEmbs int
}

// Plan sizes a rectifier workspace for inference over rows nodes (rows must
// equal the private graph's node count; the kernels check at execution).
func (r *Rectifier) Plan(rows int) *RectifierWorkspace {
	ws := &RectifierWorkspace{
		Rows:     rows,
		concat:   make([]*mat.Matrix, len(r.convs)),
		wantEmbs: len(r.RequiredEmbeddings()),
	}
	for k, conv := range r.convs {
		wl, ok := conv.(nn.WorkspaceLayer)
		if !ok {
			panic(fmt.Sprintf("core: rectifier conv %T does not support workspace inference", conv))
		}
		// Layers whose input is a concatenation (parallel k>0, cascaded
		// k=0 over multiple blocks) need an assembly buffer; the rest
		// alias an embedding or the previous activation directly.
		needsConcat := (r.Design == Parallel && k > 0) ||
			(r.Design == Cascaded && k == 0 && ws.wantEmbs > 1)
		if needsConcat {
			ws.concat[k] = mat.New(rows, r.inDim(k))
		}
		cws, _ := wl.PlanWorkspace(rows, r.inDim(k))
		ws.convWS = append(ws.convWS, wl)
		ws.convs = append(ws.convs, cws)
		if k < len(r.convs)-1 {
			rws, _ := r.relus[k].PlanWorkspace(rows, r.Dims[k])
			ws.relus = append(ws.relus, rws)
		}
	}
	return ws
}

// NumBytes returns the rectifier workspace's buffer footprint: the quantity
// the enclave charges against the EPC once at plan time.
func (ws *RectifierWorkspace) NumBytes() int64 {
	n := int64(0)
	for _, c := range ws.convs {
		n += c.NumBytes()
	}
	for _, rl := range ws.relus {
		n += rl.NumBytes()
	}
	for _, m := range ws.concat {
		if m != nil {
			n += m.NumBytes()
		}
	}
	return n
}

// ForwardWS rectifies the transferred embeddings into logits using only
// workspace memory. embs must match RequiredEmbeddings, in order; the
// result aliases the workspace.
func (r *Rectifier) ForwardWS(embs []*mat.Matrix, ws *RectifierWorkspace) *mat.Matrix {
	if len(embs) != ws.wantEmbs {
		panic(fmt.Sprintf("core: rectifier %s wants %d embeddings, got %d", r.Design, ws.wantEmbs, len(embs)))
	}
	var h *mat.Matrix
	for k := range r.convs {
		var in *mat.Matrix
		switch {
		case k == 0 && ws.concat[0] != nil:
			mat.HConcatInto(ws.concat[0], embs...)
			in = ws.concat[0]
		case k == 0:
			in = embs[0]
		case ws.concat[k] != nil: // parallel wiring
			mat.HConcatInto(ws.concat[k], h, embs[k])
			in = ws.concat[k]
		default: // cascaded/series: layer input is exactly prev
			in = h
		}
		z := ws.convWS[k].ForwardWS(in, ws.convs[k])
		if k < len(r.convs)-1 {
			h = r.relus[k].ForwardWS(z, ws.relus[k])
		} else {
			h = z
		}
	}
	return h
}

// Workspace is a full inference plan for one vault: backbone scratch in the
// normal world, rectifier scratch charged against the EPC, the label
// output buffer, and the pre-bound ECALL body. A Workspace belongs to one
// goroutine at a time; a serving fleet plans one per worker.
type Workspace struct {
	Rows int

	v       *Vault
	bb      *BackboneWorkspace
	rect    *RectifierWorkspace
	needed  []int
	embs    []*mat.Matrix
	labels  []int
	payload int64 // transferred embedding bytes per call
	epc     int64 // EPC charged at plan time
	ecall   func() error

	released bool
}

// Plan builds a reusable inference workspace for batches of rows nodes
// (rows must equal the deployed graph's node count — GNN inference is
// full-graph). The enclave is charged once, here, for the rectifier's
// scratch plus the transferred-embedding residency; Plan fails with
// enclave.ErrEPCExhausted wrapped if that working set does not fit, which
// bounds how many concurrent workspaces one enclave can serve.
func (v *Vault) Plan(rows int) (*Workspace, error) {
	if v.undeployed.Load() {
		return nil, fmt.Errorf("core: plan on undeployed vault")
	}
	if n := v.privateGraph.N(); rows != n {
		return nil, fmt.Errorf("core: plan rows %d != deployed graph nodes %d", rows, n)
	}
	ws := &Workspace{
		Rows:   rows,
		v:      v,
		bb:     v.Backbone.Plan(rows),
		rect:   v.rectifier.Plan(rows),
		needed: v.rectifier.RequiredEmbeddings(),
		labels: make([]int, rows),
	}
	ws.embs = make([]*mat.Matrix, 0, len(ws.needed))
	for _, i := range ws.needed {
		ws.payload += int64(v.Backbone.BlockDims[i]) * int64(rows) * 8
	}
	ws.epc = ws.rect.NumBytes() + ws.payload
	if err := v.Enclave.Alloc(ws.epc); err != nil {
		return nil, fmt.Errorf("core: inference workspace does not fit EPC: %w", err)
	}
	// Pre-bound ECALL body: everything it touches lives in ws, so the hot
	// path never materialises a new closure.
	ws.ecall = func() error {
		logits := v.rectifier.ForwardWS(ws.embs, ws.rect)
		logits.ArgmaxRowsInto(ws.labels)
		return nil
	}
	return ws, nil
}

// EnclaveBytes returns the EPC charged for this workspace at plan time.
func (ws *Workspace) EnclaveBytes() int64 { return ws.epc }

// Release returns the workspace's EPC to the enclave. The workspace must
// not be used afterwards.
func (ws *Workspace) Release() {
	if ws.released {
		return
	}
	ws.released = true
	ws.v.Enclave.Free(ws.epc)
}

// PredictInto is Predict over a planned workspace: backbone forward in the
// normal world, one modelled ECALL carrying exactly the embeddings the
// design requires, rectification and label reduction inside the enclave —
// all into pre-sized buffers, with zero steady-state heap allocation.
//
// The returned label slice is owned by the workspace and overwritten by the
// next call. The breakdown is computed from enclave-ledger deltas; when
// several workspaces share one enclave concurrently, the wall-clock fields
// remain exact but the modelled enclave components may interleave.
func (v *Vault) PredictInto(x *mat.Matrix, ws *Workspace) ([]int, InferenceBreakdown, error) {
	var bd InferenceBreakdown
	if ws.released {
		return nil, bd, fmt.Errorf("core: PredictInto on released workspace")
	}
	if ws.v != v {
		return nil, bd, fmt.Errorf("core: workspace planned for a different vault")
	}
	if x.Rows != ws.Rows {
		return nil, bd, fmt.Errorf("core: input rows %d != planned rows %d", x.Rows, ws.Rows)
	}
	if x.Cols != v.Backbone.FeatureDim {
		return nil, bd, fmt.Errorf("core: input features %d != backbone feature dim %d", x.Cols, v.Backbone.FeatureDim)
	}
	before := v.Enclave.Ledger()
	v.Enclave.ResetPeak()

	// Normal world: backbone forward into workspace buffers.
	start := time.Now()
	blocks := v.Backbone.EmbeddingsWS(x, ws.bb)
	bd.BackboneTime = time.Since(start)

	// One-way transfer of exactly the embeddings the design requires,
	// modelled as a single ECALL (the buffers are EPC-resident since plan
	// time). Only the labels cross back: 8 bytes per node.
	ws.embs = ws.embs[:0]
	for _, i := range ws.needed {
		ws.embs = append(ws.embs, blocks[i])
	}
	if err := v.Enclave.Ecall(ws.payload, int64(ws.Rows)*8, ws.ecall); err != nil {
		return nil, bd, fmt.Errorf("core: enclave inference: %w", err)
	}

	fillBreakdown(&bd, before, v.Enclave.Ledger())
	return ws.labels, bd, nil
}

// Nodes returns the node count of the deployed private graph — the batch
// height every inference over this vault uses.
func (v *Vault) Nodes() int { return v.privateGraph.N() }
