package core

import (
	"errors"
	"sync"
	"testing"

	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/substitute"
)

// TestTiledPredictIntoMatchesUntiled is the tiling property at the vault
// level: for every rectifier design and tile heights {1, 7, n-1, n}, a
// tile-streamed plan must produce bit-identical labels to the untiled
// reference — the engine runs the same kernels in the same per-row order,
// only the staging differs.
func TestTiledPredictIntoMatchesUntiled(t *testing.T) {
	for _, design := range Designs {
		design := design
		t.Run(string(design), func(t *testing.T) {
			ds, v := planTestVault(t, design)
			n := ds.X.Rows
			ref, err := v.Plan(n)
			if err != nil {
				t.Fatalf("untiled Plan: %v", err)
			}
			defer ref.Release()
			want, _, err := v.PredictInto(ds.X, ref)
			if err != nil {
				t.Fatalf("untiled PredictInto: %v", err)
			}
			wantCopy := append([]int{}, want...)

			for _, tile := range []int{1, 7, n - 1, n} {
				ws, err := v.PlanWith(n, PlanConfig{TileRows: tile})
				if err != nil {
					t.Fatalf("tile=%d PlanWith: %v", tile, err)
				}
				if got := ws.TileRows(); got != tile {
					ws.Release()
					t.Fatalf("tile=%d: workspace reports TileRows %d", tile, got)
				}
				if ws.EnclaveBytes() >= ref.EnclaveBytes() && tile < n {
					ws.Release()
					t.Fatalf("tile=%d: tiled EPC %d not below untiled %d", tile, ws.EnclaveBytes(), ref.EnclaveBytes())
				}
				got, _, err := v.PredictInto(ds.X, ws)
				if err != nil {
					ws.Release()
					t.Fatalf("tile=%d PredictInto: %v", tile, err)
				}
				for i := range got {
					if got[i] != wantCopy[i] {
						ws.Release()
						t.Fatalf("tile=%d: label[%d] = %d, want %d", tile, i, got[i], wantCopy[i])
					}
				}
				ws.Release()
			}
		})
	}
}

// TestBudgetDerivesTileRowsAndBoundsEPC checks the budget→tileRows
// derivation: the charged enclave bytes of a budgeted plan never exceed
// the budget (whenever the budget admits at least one row), and shrink
// with the budget.
func TestBudgetDerivesTileRowsAndBoundsEPC(t *testing.T) {
	ds, v := planTestVault(t, Series)
	for _, budgetKB := range []int64{64, 256, 1024} {
		budget := budgetKB << 10
		ws, err := v.PlanWith(ds.X.Rows, PlanConfig{EPCBudgetBytes: budget})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if ws.EnclaveBytes() > budget {
			t.Fatalf("budget %d: charged %d bytes", budget, ws.EnclaveBytes())
		}
		if ws.TileRows() < 1 || ws.TileRows() > ds.X.Rows {
			t.Fatalf("budget %d: tileRows %d", budget, ws.TileRows())
		}
		got, _, err := v.PredictInto(ds.X, ws)
		if err != nil {
			t.Fatalf("budget %d PredictInto: %v", budget, err)
		}
		if err := VerifyLabelOnly(got, ds.NumClasses); err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		ws.Release()
	}
}

// TestTiledPredictIntoAllocFree pins the tiled hot path at zero
// steady-state heap allocations, with the kernel worker budget carried in
// the plan (not the deprecated process global).
func TestTiledPredictIntoAllocFree(t *testing.T) {
	ds, v := planTestVault(t, Parallel)
	ws, err := v.PlanWith(ds.X.Rows, PlanConfig{TileRows: 256, Workers: 1})
	if err != nil {
		t.Fatalf("PlanWith: %v", err)
	}
	defer ws.Release()
	if _, _, err := v.PredictInto(ds.X, ws); err != nil { // warm-up
		t.Fatalf("warm-up: %v", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := v.PredictInto(ds.X, ws); err != nil {
			t.Fatalf("PredictInto: %v", err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state tiled PredictInto allocates %.1f objects/op, want 0", allocs)
	}
}

// TestTiledUnsupportedForNonGCN checks that an EPC budget on a SAGE-conv
// rectifier fails with the named error instead of silently exceeding the
// budget (the attention/fused kernels have no row-tileable decomposition).
func TestTiledUnsupportedForNonGCN(t *testing.T) {
	ds := datasets.Load("cora")
	cfg := TrainConfig{Epochs: 2, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
	spec := SpecForDataset("cora")
	spec.Conv = ConvSAGE
	bb := TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), cfg)
	rec := TrainRectifier(ds, bb, Series, cfg) // spec.Conv = SAGE → SAGE rectifier
	v, err := Deploy(bb, rec, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if _, err := v.PlanWith(ds.X.Rows, PlanConfig{EPCBudgetBytes: 1 << 20}); !errors.Is(err, ErrTiledUnsupported) {
		t.Fatalf("budgeted SAGE plan: err = %v, want ErrTiledUnsupported", err)
	}
	// The untiled plan still serves.
	ws, err := v.Plan(ds.X.Rows)
	if err != nil {
		t.Fatalf("untiled SAGE plan: %v", err)
	}
	defer ws.Release()
	if _, _, err := v.PredictInto(ds.X, ws); err != nil {
		t.Fatalf("untiled SAGE PredictInto: %v", err)
	}
}

// TestTileParallelPlanBudgetAndIdentity checks the Workers × tileBytes
// EPC accounting: a budgeted plan with a tile-worker pool must keep the
// whole pool's staging tiles inside the budget (tileRows shrinks as
// workers grow), report positive spill traffic, and still produce
// bit-identical labels to the untiled reference.
func TestTileParallelPlanBudgetAndIdentity(t *testing.T) {
	ds, v := planTestVault(t, Series)
	n := ds.X.Rows
	ref, err := v.Plan(n)
	if err != nil {
		t.Fatalf("untiled Plan: %v", err)
	}
	want, _, err := v.PredictInto(ds.X, ref)
	if err != nil {
		t.Fatalf("untiled PredictInto: %v", err)
	}
	wantCopy := append([]int{}, want...)
	ref.Release()

	const budget = 256 << 10
	prevRows := 0
	for _, workers := range []int{1, 2, 4} {
		ws, err := v.PlanWith(n, PlanConfig{EPCBudgetBytes: budget, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := ws.EnclaveBytes(); got > budget {
			t.Fatalf("workers=%d: charged %d bytes over the %d budget", workers, got, budget)
		}
		if got := ws.TileWorkers(); got < 1 || got > workers {
			t.Fatalf("workers=%d: TileWorkers %d", workers, got)
		}
		if prevRows > 0 && ws.TileRows() > prevRows {
			t.Fatalf("workers=%d: tileRows grew to %d from %d — budget not divided across the pool", workers, ws.TileRows(), prevRows)
		}
		prevRows = ws.TileRows()
		if ws.SpillBytes() <= 0 {
			t.Fatalf("workers=%d: no spill traffic reported", workers)
		}
		got, _, err := v.PredictInto(ds.X, ws)
		if err != nil {
			t.Fatalf("workers=%d PredictInto: %v", workers, err)
		}
		for i := range got {
			if got[i] != wantCopy[i] {
				t.Fatalf("workers=%d: label[%d] = %d, want %d", workers, i, got[i], wantCopy[i])
			}
		}
		ws.Release()
	}
}

// TestTiledConcurrentWorkspaces hammers the tiled hot path from several
// goroutines with *different* per-plan worker budgets — the scenario the
// deprecated process-global SetMaxWorkers could not express — and checks
// every stream still produces the untiled reference labels. Run under
// -race in CI.
func TestTiledConcurrentWorkspaces(t *testing.T) {
	ds, v := planTestVault(t, Parallel)
	n := ds.X.Rows
	ref, err := v.Plan(n)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	want, _, err := v.PredictInto(ds.X, ref)
	if err != nil {
		t.Fatalf("PredictInto: %v", err)
	}
	wantCopy := append([]int{}, want...)
	ref.Release()

	const goroutines = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ws, err := v.PlanWith(n, PlanConfig{TileRows: 100 + 57*g, Workers: 1 + g%3})
			if err != nil {
				errs <- err
				return
			}
			defer ws.Release()
			for pass := 0; pass < 3; pass++ {
				got, _, err := v.PredictInto(ds.X, ws)
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					if got[i] != wantCopy[i] {
						errs <- errors.New("concurrent tiled labels diverged from reference")
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
