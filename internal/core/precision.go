package core

import (
	"errors"
	"fmt"
	"strings"

	"gnnvault/internal/exec"
	"gnnvault/internal/mat"
)

// Precision tiers. A plan's Precision selects which kernel family the
// in-enclave rectifier machine runs — the backbone stays fp64 in the
// normal world, and conversion (or quantization) happens once at the
// ECALL boundary — so EPC charge, spill traffic and transfer payload all
// shrink with the element width: fp32 halves every byte, int8 cuts it
// 8×, turning vaults inadmissible at fp64 into residents. Reduced plans
// are gated by plan-time calibration against the fp64 reference: like
// the DAC cost model's lookup-and-clamp precision tables, a requested
// tier outside what the deployment supports (or below the accuracy
// floor) is refused rather than silently degraded.

// Precision selects the element type of a plan's in-enclave machine.
type Precision uint8

// The precision vocabulary. PrecisionFP64 is the zero value: existing
// PlanConfig literals keep the reference engine.
const (
	PrecisionFP64 Precision = iota // float64 reference
	PrecisionFP32                  // float32 kernels, half the bytes
	PrecisionInt8                  // calibrated symmetric int8, ⅛ the bytes
)

// ParsePrecision maps a user-facing precision name to its tier. The
// empty string means fp64; unknown names are refused, never clamped.
func ParsePrecision(s string) (Precision, error) {
	switch strings.ToLower(s) {
	case "", "fp64", "f64", "float64":
		return PrecisionFP64, nil
	case "fp32", "f32", "float32":
		return PrecisionFP32, nil
	case "int8", "i8":
		return PrecisionInt8, nil
	}
	return 0, fmt.Errorf("core: unknown precision %q (want fp64, fp32 or int8)", s)
}

// String names the tier for flags, logs and benchmark rows.
func (p Precision) String() string {
	switch p {
	case PrecisionFP32:
		return "fp32"
	case PrecisionInt8:
		return "int8"
	default:
		return "fp64"
	}
}

// valid reports whether p is a known tier.
func (p Precision) valid() bool { return p <= PrecisionInt8 }

// Elem returns the exec element type of the tier.
func (p Precision) Elem() exec.Elem {
	switch p {
	case PrecisionFP32:
		return exec.F32
	case PrecisionInt8:
		return exec.I8
	default:
		return exec.F64
	}
}

// ElemBytes returns the tier's element width in bytes — the factor the
// plan's tile sizing, payload and spill accounting price.
func (p Precision) ElemBytes() int64 { return int64(p.Elem().Size()) }

// DefaultMinAgreement is the argmax-agreement floor a reduced-precision
// plan must reach against the fp64 reference on the calibration batch
// when PlanConfig.MinAgreement is unset.
const DefaultMinAgreement = 0.99

// ErrCalibrationRequired is returned when an int8 plan is requested for
// a vault with no registered calibration features: quantization scales
// are derived from a reference run, so there is nothing to derive them
// from. Register the deployment's public feature matrix with
// Vault.SetCalibrationFeatures first.
var ErrCalibrationRequired = errors.New("core: int8 plan needs calibration features (Vault.SetCalibrationFeatures)")

// ErrCalibrationFailed is returned when a reduced-precision plan's
// argmax agreement with the fp64 reference falls below the configured
// floor. It is distinct from enclave.ErrEPCExhausted by design: the
// registry's admission loop evicts residents on EPC pressure, and an
// accuracy refusal must not trigger evictions.
var ErrCalibrationFailed = errors.New("core: reduced-precision plan below accuracy floor")

// minAgreement resolves the configured agreement floor.
func (c PlanConfig) minAgreement() float64 {
	if c.MinAgreement > 0 {
		return c.MinAgreement
	}
	return DefaultMinAgreement
}

// SetCalibrationFeatures registers the deployed graph's public feature
// matrix as the held-out calibration batch reduced-precision plans
// verify against: PlanWith (and the subgraph planner) runs the fp64
// reference on it, derives the int8 activation scales, and refuses any
// plan whose argmax agreement falls below the floor. The matrix is
// shared, not copied — serving code passes the same features it predicts
// with. A nil x clears the registration (fp32 plans then skip the
// agreement gate; int8 plans fail with ErrCalibrationRequired).
func (v *Vault) SetCalibrationFeatures(x *mat.Matrix) error {
	if x != nil {
		if n := v.privateGraph.N(); x.Rows != n {
			return fmt.Errorf("core: calibration features %d rows != deployed graph nodes %d", x.Rows, n)
		}
		if x.Cols != v.Backbone.FeatureDim {
			return fmt.Errorf("core: calibration features %d cols != backbone feature dim %d", x.Cols, v.Backbone.FeatureDim)
		}
	}
	v.calibX.Store(x)
	return nil
}

// calibrateReduced derives a reduced plan's quantization state from the
// registered calibration features: it runs the given full-graph fp64
// backbone machine over them, feeds the resulting block embeddings
// through the fp64 reference of the rectifier program, and returns the
// per-value per-column activation scales, the reference argmax labels,
// and the embedding views (still bound into bbMach, valid until its next
// Run). With no features registered, fp32 plans proceed unverified (nil
// scales/labels); int8 plans fail with ErrCalibrationRequired.
func (v *Vault) calibrateReduced(prog *exec.Program, bbMach *exec.Machine, blocks []*mat.Matrix, cfg PlanConfig) ([][]float64, []int, []*mat.Matrix, error) {
	calibX := v.calibX.Load()
	if calibX == nil {
		if cfg.Precision == PrecisionInt8 {
			return nil, nil, nil, ErrCalibrationRequired
		}
		return nil, nil, nil, nil
	}
	rows := v.privateGraph.N()
	bbMach.Run(rows, []*mat.Matrix{calibX}, nil)
	needed := v.rectifier.RequiredEmbeddings()
	embs := make([]*mat.Matrix, 0, len(needed))
	for _, i := range needed {
		embs = append(embs, blocks[i])
	}
	scales, ref, err := exec.CalibrateScales(prog, rows, embs)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("core: calibrating %s plan: %w", cfg.Precision, err)
	}
	return scales, ref, embs, nil
}

// checkAgreement runs the reduced machine over the calibration
// embeddings and compares its argmax labels against the fp64 reference,
// failing with ErrCalibrationFailed below the configured floor. The
// machine's buffers are scratched; plan-time only.
func checkAgreement(mach *exec.Machine, rows int, embs []*mat.Matrix, ref []int, cfg PlanConfig) error {
	labels := make([]int, rows)
	mach.Run(rows, embs, labels)
	return agreementFloor(labels, ref, cfg)
}

// agreementFloor compares reduced-precision argmax labels against the
// fp64 reference and enforces the configured floor. Shared by the
// single-machine gate above and the sharded fleet's gate, which produces
// its labels by running every shard concurrently.
func agreementFloor(labels, ref []int, cfg PlanConfig) error {
	agree := 0
	for i, l := range labels {
		if l == ref[i] {
			agree++
		}
	}
	frac := 1.0
	if len(labels) > 0 {
		frac = float64(agree) / float64(len(labels))
	}
	if floor := cfg.minAgreement(); frac < floor {
		return fmt.Errorf("%w: %s agrees with fp64 on %.4f of calibration nodes, floor %.4f", ErrCalibrationFailed, cfg.Precision, frac, floor)
	}
	return nil
}
