package core

import (
	"errors"
	"testing"

	"gnnvault/internal/exec"
	"gnnvault/internal/mat"
	"gnnvault/internal/subgraph"
)

// subConfigForTest is the sampling geometry the reduced-precision
// subgraph tests share: seeded, so two workspaces extract identically.
func subConfigForTest() subgraph.Config {
	return subgraph.Config{Hops: 2, Fanout: 6, Seed: 3}
}

func TestParsePrecision(t *testing.T) {
	cases := map[string]Precision{
		"": PrecisionFP64, "fp64": PrecisionFP64, "f64": PrecisionFP64, "Float64": PrecisionFP64,
		"fp32": PrecisionFP32, "F32": PrecisionFP32, "float32": PrecisionFP32,
		"int8": PrecisionInt8, "I8": PrecisionInt8,
	}
	for s, want := range cases {
		got, err := ParsePrecision(s)
		if err != nil || got != want {
			t.Fatalf("ParsePrecision(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"fp16", "int4", "double", "quantized"} {
		if _, err := ParsePrecision(s); err == nil {
			t.Fatalf("ParsePrecision(%q) accepted, want refusal", s)
		}
	}
	if PrecisionFP64.ElemBytes() != 8 || PrecisionFP32.ElemBytes() != 4 || PrecisionInt8.ElemBytes() != 1 {
		t.Fatal("ElemBytes mismatch")
	}
}

// TestPlanPrecisionAgainstReference is the end-to-end admission +
// accuracy test on cora: fp32 plans must reproduce the fp64 reference
// labels exactly (argmax is far more stable than the 2^-29 relative
// rounding fp32 adds), and calibrated int8 plans must agree on ≥99% of
// nodes — the same floor plan admission itself enforces. Both reduced
// tiers are exercised direct and tiled, and tiled output must equal
// direct output bit-for-bit within each tier.
func TestPlanPrecisionAgainstReference(t *testing.T) {
	ds, v := planTestVault(t, Parallel)
	if err := v.SetCalibrationFeatures(ds.X); err != nil {
		t.Fatalf("SetCalibrationFeatures: %v", err)
	}
	ref, _, err := v.Predict(ds.X)
	if err != nil {
		t.Fatalf("fp64 Predict: %v", err)
	}
	labelsFor := func(cfg PlanConfig) []int {
		t.Helper()
		ws, err := v.PlanWith(ds.X.Rows, cfg)
		if err != nil {
			t.Fatalf("PlanWith(%+v): %v", cfg, err)
		}
		defer ws.Release()
		got, _, err := v.PredictInto(ds.X, ws)
		if err != nil {
			t.Fatalf("PredictInto(%+v): %v", cfg, err)
		}
		out := make([]int, len(got))
		copy(out, got)
		return out
	}
	agreement := func(got []int) float64 {
		agree := 0
		for i := range got {
			if got[i] == ref[i] {
				agree++
			}
		}
		return float64(agree) / float64(len(ref))
	}

	for _, prec := range []Precision{PrecisionFP32, PrecisionInt8} {
		direct := labelsFor(PlanConfig{Precision: prec})
		tiled := labelsFor(PlanConfig{Precision: prec, TileRows: 97, Workers: 3})
		for i := range direct {
			if direct[i] != tiled[i] {
				t.Fatalf("%s: tiled label[%d] = %d != direct %d", prec, i, tiled[i], direct[i])
			}
		}
		switch prec {
		case PrecisionFP32:
			if a := agreement(direct); a != 1.0 {
				t.Fatalf("fp32 agreement %.4f, want exact argmax", a)
			}
		case PrecisionInt8:
			if a := agreement(direct); a < 0.99 {
				t.Fatalf("int8 agreement %.4f, want >= 0.99", a)
			}
		}
	}
}

// TestReducedPlansShrinkBytes pins the accounting the tiers exist for:
// payload and (tiled) EPC/spill scale with the element width.
func TestReducedPlansShrinkBytes(t *testing.T) {
	ds, v := planTestVault(t, Parallel)
	if err := v.SetCalibrationFeatures(ds.X); err != nil {
		t.Fatalf("SetCalibrationFeatures: %v", err)
	}
	plan := func(cfg PlanConfig) *Workspace {
		t.Helper()
		ws, err := v.PlanWith(ds.X.Rows, cfg)
		if err != nil {
			t.Fatalf("PlanWith(%+v): %v", cfg, err)
		}
		return ws
	}
	const budget = 1 << 20
	f64 := plan(PlanConfig{EPCBudgetBytes: budget})
	f32 := plan(PlanConfig{EPCBudgetBytes: budget, Precision: PrecisionFP32})
	i8 := plan(PlanConfig{EPCBudgetBytes: budget, Precision: PrecisionInt8})
	defer f64.Release()
	defer f32.Release()
	defer i8.Release()

	if f32.payload*2 != f64.payload || i8.payload*8 != f64.payload {
		t.Fatalf("payloads fp64=%d fp32=%d int8=%d, want exact 2x/8x ratios", f64.payload, f32.payload, i8.payload)
	}
	// Same budget buys proportionally taller tiles, so per-call spill
	// traffic (rows × width × elem bytes summed over spilled values)
	// shrinks by the element width: int8 must spill ≥4× less than fp64.
	if i8.spill*4 > f64.spill {
		t.Fatalf("int8 spill %d vs fp64 %d, want >= 4x reduction", i8.spill, f64.spill)
	}
	if f32.spill >= f64.spill {
		t.Fatalf("fp32 spill %d not below fp64 %d", f32.spill, f64.spill)
	}
}

// TestInt8PlanRequiresCalibration: an int8 plan with no registered
// features must refuse with the named error — and the refusal must not
// read as EPC pressure, so the registry never evicts over it.
func TestInt8PlanRequiresCalibration(t *testing.T) {
	ds, v := planTestVault(t, Parallel)
	_, err := v.PlanWith(ds.X.Rows, PlanConfig{Precision: PrecisionInt8})
	if !errors.Is(err, ErrCalibrationRequired) {
		t.Fatalf("int8 plan without features: %v, want ErrCalibrationRequired", err)
	}
	if _, err := v.PlanSubgraphWith(4, subConfigForTest(), PlanConfig{Precision: PrecisionInt8}); !errors.Is(err, ErrCalibrationRequired) {
		t.Fatalf("int8 subgraph plan without features: %v, want ErrCalibrationRequired", err)
	}
	// fp32 needs no scales: it plans unverified when no features exist.
	ws, err := v.PlanWith(ds.X.Rows, PlanConfig{Precision: PrecisionFP32})
	if err != nil {
		t.Fatalf("fp32 plan without features: %v", err)
	}
	ws.Release()
}

// TestAgreementFloorRefusesPlan: an unreachable floor turns admission
// into a refusal with the distinct calibration error.
func TestAgreementFloorRefusesPlan(t *testing.T) {
	ds, v := planTestVault(t, Parallel)
	if err := v.SetCalibrationFeatures(ds.X); err != nil {
		t.Fatalf("SetCalibrationFeatures: %v", err)
	}
	_, err := v.PlanWith(ds.X.Rows, PlanConfig{Precision: PrecisionInt8, MinAgreement: 1.5})
	if !errors.Is(err, ErrCalibrationFailed) {
		t.Fatalf("unreachable floor: %v, want ErrCalibrationFailed", err)
	}
	if errors.Is(err, exec.ErrPrecisionUnsupported) {
		t.Fatal("calibration refusal must not read as precision-unsupported")
	}
}

// TestCalibrationFeatureValidation rejects shape mismatches up front.
func TestCalibrationFeatureValidation(t *testing.T) {
	ds, v := planTestVault(t, Parallel)
	bad := ds.X.ViewRows(0, ds.X.Rows-1, &mat.Matrix{})
	if err := v.SetCalibrationFeatures(bad); err == nil {
		t.Fatal("row-mismatched calibration features accepted")
	}
	if err := v.SetCalibrationFeatures(nil); err != nil {
		t.Fatalf("clearing calibration features: %v", err)
	}
}

// TestSubgraphPlanReducedPrecision: the subgraph planner admits reduced
// tiers (full-graph calibration) and serves in-range labels; with the
// same sampling seed, int8 queries mostly agree with the fp64 subgraph
// path. The floor here is looser than the full-graph 99% gate: subgraph
// serving is already approximate (truncated, sampled receptive fields
// shift logits toward ties), so quantization flips compound with
// sampling noise — the calibrated guarantee lives in plan admission,
// which checks the full-graph machine against the fp64 reference.
func TestSubgraphPlanReducedPrecision(t *testing.T) {
	ds, v := planTestVault(t, Parallel)
	if err := v.SetCalibrationFeatures(ds.X); err != nil {
		t.Fatalf("SetCalibrationFeatures: %v", err)
	}
	scfg := subConfigForTest()
	ref, err := v.PlanSubgraphWith(4, scfg, PlanConfig{})
	if err != nil {
		t.Fatalf("fp64 subgraph plan: %v", err)
	}
	defer ref.Release()
	red, err := v.PlanSubgraphWith(4, scfg, PlanConfig{Precision: PrecisionInt8})
	if err != nil {
		t.Fatalf("int8 subgraph plan: %v", err)
	}
	defer red.Release()
	if red.EnclaveBytes() >= ref.EnclaveBytes() {
		t.Fatalf("int8 subgraph EPC %d not below fp64 %d", red.EnclaveBytes(), ref.EnclaveBytes())
	}
	total, agree := 0, 0
	for q := 0; q < 50; q++ {
		seeds := []int{(q * 53) % ds.Graph.N(), (q*97 + 1) % ds.Graph.N()}
		if seeds[0] == seeds[1] {
			continue
		}
		want, _, err := v.PredictNodesInto(ds.X, seeds, ref)
		if err != nil {
			t.Fatalf("fp64 query %d: %v", q, err)
		}
		wantCopy := append([]int(nil), want...)
		got, _, err := v.PredictNodesInto(ds.X, seeds, red)
		if err != nil {
			t.Fatalf("int8 query %d: %v", q, err)
		}
		for i := range got {
			total++
			if got[i] == wantCopy[i] {
				agree++
			}
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.8 {
		t.Fatalf("int8 subgraph agreement %.4f over %d labels, want >= 0.8", frac, total)
	}
}
