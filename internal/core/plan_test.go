package core

import (
	"errors"
	"testing"

	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/exec"
	"gnnvault/internal/mat"
	"gnnvault/internal/substitute"
)

// planTestVault trains a small vault quickly for plan/workspace tests.
func planTestVault(t testing.TB, design RectifierDesign) (*datasets.Dataset, *Vault) {
	t.Helper()
	ds := datasets.Load("cora")
	cfg := TrainConfig{Epochs: 20, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
	spec := SpecForDataset("cora")
	bb := TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), cfg)
	rec := TrainRectifier(ds, bb, design, cfg)
	v, err := Deploy(bb, rec, ds.Graph, enclave.DefaultCostModel())
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return ds, v
}

func TestPredictIntoMatchesPredict(t *testing.T) {
	for _, design := range Designs {
		design := design
		t.Run(string(design), func(t *testing.T) {
			ds, v := planTestVault(t, design)
			want, _, err := v.Predict(ds.X)
			if err != nil {
				t.Fatalf("Predict: %v", err)
			}
			ws, err := v.Plan(ds.X.Rows)
			if err != nil {
				t.Fatalf("Plan: %v", err)
			}
			defer ws.Release()
			for pass := 0; pass < 3; pass++ { // reuse must be stable
				got, bd, err := v.PredictInto(ds.X, ws)
				if err != nil {
					t.Fatalf("PredictInto pass %d: %v", pass, err)
				}
				if len(got) != len(want) {
					t.Fatalf("pass %d: %d labels, want %d", pass, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("pass %d: label[%d] = %d, want %d", pass, i, got[i], want[i])
					}
				}
				if bd.ECalls != 1 {
					t.Fatalf("pass %d: %d ECALLs, want 1", pass, bd.ECalls)
				}
				if bd.BytesIn == 0 || bd.TransferTime <= 0 {
					t.Fatalf("pass %d: transfer not modelled: %+v", pass, bd)
				}
			}
		})
	}
}

func TestRectifierForwardWSMatchesForward(t *testing.T) {
	for _, design := range Designs {
		design := design
		t.Run(string(design), func(t *testing.T) {
			ds, v := planTestVault(t, design)
			embs := selectEmbeddings(v.Backbone.Embeddings(ds.X), v.rectifier.RequiredEmbeddings())
			want := v.rectifier.Forward(embs, false)
			ws := v.rectifier.Plan(ds.X.Rows)
			got := v.rectifier.ForwardWS(embs, ws)
			if !got.EqualApprox(want, 1e-12) {
				t.Fatal("ForwardWS disagrees with Forward")
			}
		})
	}
}

// TestCompiledBackboneMatchesEmbeddings pins the compiled (fused)
// backbone program to the reference nn forward: the block embeddings a
// plan transfers must match what Backbone.Embeddings computes.
func TestCompiledBackboneMatchesEmbeddings(t *testing.T) {
	ds, v := planTestVault(t, Parallel)
	want := v.Backbone.Embeddings(ds.X)
	prog, blockVals, _ := v.Backbone.compileBackbone(ds.X.Rows, nil, 1)
	mach, err := prog.NewMachine(exec.Config{Workers: 1})
	if err != nil {
		t.Fatalf("backbone machine: %v", err)
	}
	mach.Run(ds.X.Rows, []*mat.Matrix{ds.X}, nil)
	if len(blockVals) != len(want) {
		t.Fatalf("%d blocks, want %d", len(blockVals), len(want))
	}
	for i, bv := range blockVals {
		if !mach.Value(bv).EqualApprox(want[i], 1e-12) {
			t.Fatalf("block %d disagrees", i)
		}
	}
}

// TestPredictIntoAllocFree is the hot-path regression test: after warm-up,
// steady-state PredictInto must perform zero heap allocations. Parallel
// kernels are pinned to one worker through the plan's own budget —
// goroutine spawns allocate — rather than the deprecated process-global
// knob; the enclave side is single-threaded (serial kernels) by
// construction.
func TestPredictIntoAllocFree(t *testing.T) {
	ds, v := planTestVault(t, Parallel)
	ws, err := v.PlanWith(ds.X.Rows, PlanConfig{Workers: 1})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	defer ws.Release()
	if _, _, err := v.PredictInto(ds.X, ws); err != nil { // warm-up
		t.Fatalf("warm-up: %v", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := v.PredictInto(ds.X, ws); err != nil {
			t.Fatalf("PredictInto: %v", err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state PredictInto allocates %.1f objects/op, want 0", allocs)
	}
}

func TestPlanChargesEPCOnceAndReleaseReturnsIt(t *testing.T) {
	ds, v := planTestVault(t, Series)
	base := v.Enclave.EPCUsed()
	ws, err := v.Plan(ds.X.Rows)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	charged := v.Enclave.EPCUsed() - base
	if charged != ws.EnclaveBytes() || charged <= 0 {
		t.Fatalf("EPC charged %d, workspace reports %d", charged, ws.EnclaveBytes())
	}
	for i := 0; i < 3; i++ {
		if _, _, err := v.PredictInto(ds.X, ws); err != nil {
			t.Fatalf("PredictInto: %v", err)
		}
		if got := v.Enclave.EPCUsed(); got != base+charged {
			t.Fatalf("per-call EPC drift: %d, want %d", got, base+charged)
		}
	}
	ws.Release()
	ws.Release() // idempotent
	if got := v.Enclave.EPCUsed(); got != base {
		t.Fatalf("EPC after release %d, want %d", got, base)
	}
}

func TestPlanFailsWhenEPCExhausted(t *testing.T) {
	ds := datasets.Load("cora")
	cfg := TrainConfig{Epochs: 5, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
	spec := SpecForDataset("cora")
	bb := TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), cfg)
	rec := TrainRectifier(ds, bb, Parallel, cfg)
	cost := enclave.DefaultCostModel()
	v, err := Deploy(bb, rec, ds.Graph, cost)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	// Exhaust the EPC with workspaces until Plan refuses.
	persistent := v.Enclave.EPCUsed()
	perWS := int64(0)
	var held []*Workspace
	defer func() {
		for _, ws := range held {
			ws.Release()
		}
	}()
	for i := 0; i < 1<<16; i++ {
		ws, err := v.Plan(ds.X.Rows)
		if err != nil {
			if !errors.Is(err, enclave.ErrEPCExhausted) {
				t.Fatalf("Plan failed with %v, want ErrEPCExhausted", err)
			}
			if perWS == 0 {
				t.Fatal("first Plan already failed")
			}
			return
		}
		perWS = ws.EnclaveBytes()
		held = append(held, ws)
		if persistent+int64(i+1)*perWS > v.Enclave.EPCLimit() {
			t.Fatalf("Plan succeeded beyond the EPC limit (%d workspaces)", i+1)
		}
	}
	t.Fatal("EPC never exhausted")
}

func TestPlanRowMismatchRejected(t *testing.T) {
	ds, v := planTestVault(t, Parallel)
	if _, err := v.Plan(ds.X.Rows + 1); err == nil {
		t.Fatal("Plan accepted a row count != graph nodes")
	}
	ws, err := v.Plan(ds.X.Rows)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	defer ws.Release()
	bad := mat.New(ds.X.Rows-1, ds.X.Cols)
	if _, _, err := v.PredictInto(bad, ws); err == nil {
		t.Fatal("PredictInto accepted mismatched rows")
	}
	ws2, _ := v.Plan(ds.X.Rows)
	ws2.Release()
	if _, _, err := v.PredictInto(ds.X, ws2); err == nil {
		t.Fatal("PredictInto accepted a released workspace")
	}
}
