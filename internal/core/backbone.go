package core

import (
	"fmt"
	"math/rand"

	"gnnvault/internal/datasets"
	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
	"gnnvault/internal/nn"
	"gnnvault/internal/substitute"
)

// Backbone is the public half of GNNVault: a GCN over a substitute graph
// (or an MLP when Kind is KindDNN) trained only on public data. It is
// deployed in the untrusted world, so everything it computes — parameters
// and all intermediate embeddings — is attacker-observable.
type Backbone struct {
	Spec  ModelSpec
	Kind  substitute.Kind
	Model *nn.Model
	// SubGraph is the substitute graph (nil for the DNN backbone). It is
	// public by construction: derived from node features only.
	SubGraph *graph.Graph
	adj      *graph.NormAdjacency
	// FeatureDim is the input feature width the model was built for.
	FeatureDim int
	// BlockDims are the widths of the per-block embeddings, hidden dims
	// followed by the class count.
	BlockDims []int
	// convIdx[i] is the index in Model.Layers of block i's conv layer.
	convIdx []int
}

// appendBlockOutputs extracts the per-block embeddings from a
// ForwardCollect activation list into dst: the post-activation output of
// each hidden block and the final logits. These are the tensors that cross
// into the enclave. Shared by the allocating and workspace paths so the
// block-selection rule lives in one place.
func (b *Backbone) appendBlockOutputs(dst []*mat.Matrix, acts []*mat.Matrix) []*mat.Matrix {
	for i, ci := range b.convIdx {
		idx := ci
		if i < len(b.convIdx)-1 {
			idx = ci + 1 // the ReLU following the conv
		}
		dst = append(dst, acts[idx])
	}
	return dst
}

// blockOutputs is the allocating form of appendBlockOutputs.
func (b *Backbone) blockOutputs(acts []*mat.Matrix) []*mat.Matrix {
	return b.appendBlockOutputs(make([]*mat.Matrix, 0, len(b.convIdx)), acts)
}

// Embeddings runs the backbone in inference mode and returns the per-block
// node embeddings (hidden activations plus final logits). This is exactly
// the observation surface of a link-stealing attacker in the untrusted
// world, and the payload GNNVault ships to the rectifier.
func (b *Backbone) Embeddings(x *mat.Matrix) []*mat.Matrix {
	_, acts := b.Model.ForwardCollect(x, false)
	return b.blockOutputs(acts)
}

// Logits runs the backbone and returns its raw (low-accuracy) predictions.
func (b *Backbone) Logits(x *mat.Matrix) *mat.Matrix {
	return b.Model.Forward(x, false)
}

// NumParams returns θ_bb.
func (b *Backbone) NumParams() int { return b.Model.NumParams() }

// newGraphConv constructs one conv layer of the requested architecture
// over g (with adj its precomputed GCN normalisation, shared across
// layers).
func newGraphConv(rng *rand.Rand, kind ConvKind, inDim, outDim int, g *graph.Graph, adj *graph.NormAdjacency) nn.GraphConv {
	switch kind {
	case ConvGCN, "":
		return nn.NewGCNConv(rng, inDim, outDim, adj)
	case ConvSAGE:
		return nn.NewSAGEConv(rng, inDim, outDim, g)
	case ConvGAT:
		return nn.NewGATConv(rng, inDim, outDim, g)
	default:
		panic(fmt.Sprintf("core: unknown conv kind %q", kind))
	}
}

// buildBackboneModel assembles the layer stack. For GNN backbones each
// block is a graph conv (+ReLU+Dropout except the last); the DNN backbone
// uses Dense layers (an MLP on raw features, Table III's first column).
func buildBackboneModel(rng *rand.Rand, spec ModelSpec, inDim, classes int, g *graph.Graph, adj *graph.NormAdjacency) (*nn.Model, []int, []int) {
	dims := append(append([]int{}, spec.BackboneHidden...), classes)
	var layers []nn.Layer
	var convIdx []int
	prev := inDim
	for i, d := range dims {
		convIdx = append(convIdx, len(layers))
		if g != nil {
			layers = append(layers, newGraphConv(rng, spec.Conv, prev, d, g, adj))
		} else {
			layers = append(layers, nn.NewDense(rng, prev, d))
		}
		if i < len(dims)-1 {
			layers = append(layers, nn.NewReLU())
			if spec.Dropout > 0 {
				layers = append(layers, nn.NewDropout(rng, spec.Dropout))
			}
		}
		prev = d
	}
	return nn.NewModel(layers...), dims, convIdx
}

// TrainBackbone trains the public backbone of GNNVault on ds using the
// given substitute graph (nil = DNN backbone), never touching the private
// adjacency. Returns the trained backbone; accuracy on ds.TestMask is the
// paper's p_bb.
func TrainBackbone(ds *datasets.Dataset, spec ModelSpec, kind substitute.Kind, sub *graph.Graph, cfg TrainConfig) *Backbone {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var adj *graph.NormAdjacency
	if sub != nil {
		adj = graph.Normalize(sub)
	}
	model, dims, convIdx := buildBackboneModel(rng, spec, ds.X.Cols, ds.NumClasses, sub, adj)
	trainModel(model, ds.X, ds.Labels, ds.TrainMask, cfg)
	return &Backbone{
		Spec: spec, Kind: kind, Model: model,
		SubGraph: sub, adj: adj, FeatureDim: ds.X.Cols,
		BlockDims: dims, convIdx: convIdx,
	}
}

// TrainOriginal trains the paper's reference model: the same architecture
// as the GNN backbone but message-passing over the real private adjacency.
// Its test accuracy is p_org, and its embeddings are the M_org observation
// surface of Table IV.
func TrainOriginal(ds *datasets.Dataset, spec ModelSpec, cfg TrainConfig) *Backbone {
	rng := rand.New(rand.NewSource(cfg.Seed))
	adj := graph.Normalize(ds.Graph)
	model, dims, convIdx := buildBackboneModel(rng, spec, ds.X.Cols, ds.NumClasses, ds.Graph, adj)
	trainModel(model, ds.X, ds.Labels, ds.TrainMask, cfg)
	return &Backbone{
		Spec: spec, Kind: "original", Model: model,
		SubGraph: ds.Graph, adj: adj, FeatureDim: ds.X.Cols,
		BlockDims: dims, convIdx: convIdx,
	}
}

// trainModel runs full-batch Adam with masked cross-entropy.
func trainModel(model *nn.Model, x *mat.Matrix, labels []int, mask []int, cfg TrainConfig) {
	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		out := model.Forward(x, true)
		_, dOut := nn.MaskedCrossEntropy(out, labels, mask)
		model.Backward(dOut)
		opt.Step(model.Params())
	}
}

// TestAccuracy evaluates a backbone-style model on a node mask.
func (b *Backbone) TestAccuracy(x *mat.Matrix, labels, mask []int) float64 {
	return nn.Accuracy(b.Logits(x), labels, mask)
}
