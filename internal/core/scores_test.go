package core

import (
	"testing"

	"gnnvault/internal/subgraph"
)

// TestPredictScoresIntoMatchesLabels pins the scores surface to the
// label surface: the score rows' argmax must reproduce PredictInto's
// labels exactly, the row width must be the class count, and exposing
// scores must charge a larger ECALL result payload than labels alone.
func TestPredictScoresIntoMatchesLabels(t *testing.T) {
	ds, v := planTestVault(t, Parallel)
	n := ds.Graph.N()
	ws, err := v.Plan(n)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	defer ws.Release()

	labels, _, err := v.PredictInto(ds.X, ws)
	if err != nil {
		t.Fatalf("PredictInto: %v", err)
	}
	want := append([]int{}, labels...)

	scores, got, bd, err := v.PredictScoresInto(ds.X, ws)
	if err != nil {
		t.Fatalf("PredictScoresInto: %v", err)
	}
	if scores.Rows != n || scores.Cols != v.Classes() {
		t.Fatalf("scores shape %dx%d, want %dx%d", scores.Rows, scores.Cols, n, v.Classes())
	}
	if bd.ECalls != 1 {
		t.Fatalf("scores pass used %d ECALLs, want 1", bd.ECalls)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d", i, got[i], want[i])
		}
		row := scores.Row(i)
		top := 0
		for k := range row {
			if row[k] > row[top] {
				top = k
			}
		}
		if top != want[i] {
			t.Fatalf("argmax(scores[%d]) = %d, label %d", i, top, want[i])
		}
	}
}

// TestPredictScoresAllocating covers the allocating Vault path that
// serve's full-graph fallback uses.
func TestPredictScoresAllocating(t *testing.T) {
	ds, v := planTestVault(t, Series)
	labels, _, err := v.Predict(ds.X)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	got, scores, _, err := v.predict(ds.X, true)
	if err != nil {
		t.Fatalf("predict(scores): %v", err)
	}
	if scores.Rows != ds.Graph.N() || scores.Cols != v.Classes() {
		t.Fatalf("scores shape %dx%d", scores.Rows, scores.Cols)
	}
	for i, w := range labels {
		if got[i] != w {
			t.Fatalf("label[%d] = %d, want %d", i, got[i], w)
		}
	}
}

// TestPredictNodesScoresIntoMatchesLabels checks the subgraph scores
// path: per-seed score rows whose argmax equals the node-query labels,
// on both the extracted path and the full-graph fallback.
func TestPredictNodesScoresIntoMatchesLabels(t *testing.T) {
	ds := pathDataset(240)
	v := deploySubgraphExact(t, ds, Parallel)
	defer v.Undeploy()
	ws, err := v.PlanSubgraph(3, subgraph.Config{Hops: 6})
	if err != nil {
		t.Fatalf("PlanSubgraph: %v", err)
	}
	defer ws.Release()

	seeds := []int{120, 7, 231}
	want, _, err := v.PredictNodesInto(ds.X, seeds, ws)
	if err != nil {
		t.Fatalf("PredictNodesInto: %v", err)
	}
	wantCopy := append([]int{}, want...)
	scores, got, _, err := v.PredictNodesScoresInto(ds.X, seeds, ws)
	if err != nil {
		t.Fatalf("PredictNodesScoresInto: %v", err)
	}
	if scores.Rows != len(seeds) || scores.Cols != v.Classes() {
		t.Fatalf("scores shape %dx%d, want %dx%d", scores.Rows, scores.Cols, len(seeds), v.Classes())
	}
	for i := range seeds {
		if got[i] != wantCopy[i] {
			t.Fatalf("label[%d] = %d, want %d", i, got[i], wantCopy[i])
		}
		row := scores.Row(i)
		top := 0
		for k := range row {
			if row[k] > row[top] {
				top = k
			}
		}
		if top != wantCopy[i] {
			t.Fatalf("argmax(scores[%d]) = %d, label %d", i, top, wantCopy[i])
		}
	}

	// Hops deep enough to cover the whole path graph trip the fallback;
	// the scores must then be gathered from the full-graph pass.
	wsAll, err := v.PlanSubgraph(3, subgraph.Config{Hops: 300})
	if err != nil {
		t.Fatalf("PlanSubgraph(fallback): %v", err)
	}
	defer wsAll.Release()
	fbScores, fbLabels, _, err := v.PredictNodesScoresInto(ds.X, seeds, wsAll)
	if err != nil {
		t.Fatalf("fallback PredictNodesScoresInto: %v", err)
	}
	full, _, err := v.Predict(ds.X)
	if err != nil {
		t.Fatalf("Predict: %v", err)
	}
	for i, s := range seeds {
		if fbLabels[i] != full[s] {
			t.Fatalf("fallback label[%d] = %d, want %d", i, fbLabels[i], full[s])
		}
		row := fbScores.Row(i)
		top := 0
		for k := range row {
			if row[k] > row[top] {
				top = k
			}
		}
		if top != full[s] {
			t.Fatalf("fallback argmax(scores[%d]) = %d, label %d", i, top, full[s])
		}
	}
}
