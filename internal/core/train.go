package core

import (
	"math/rand"

	"gnnvault/internal/datasets"
	"gnnvault/internal/mat"
	"gnnvault/internal/nn"
	"gnnvault/internal/substitute"
)

// TrainRectifier freezes the backbone and trains a rectifier of the given
// design over ds's real private adjacency (paper step 3, Fig. 2). The
// backbone embeddings are computed once in inference mode — the backbone
// receives no gradient.
func TrainRectifier(ds *datasets.Dataset, bb *Backbone, design RectifierDesign, cfg TrainConfig) *Rectifier {
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	rec := NewRectifierConv(rng, design, bb.Spec.Conv, bb.BlockDims, bb.Spec.RectifierHidden, ds.NumClasses, ds.Graph)

	all := bb.Embeddings(ds.X)
	embs := selectEmbeddings(all, rec.RequiredEmbeddings())

	opt := nn.NewAdam(cfg.LR, cfg.WeightDecay)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		out := rec.Forward(embs, true)
		_, dOut := nn.MaskedCrossEntropy(out, ds.Labels, ds.TrainMask)
		rec.Backward(dOut)
		opt.Step(rec.Params())
	}
	return rec
}

// selectEmbeddings picks the blocks a rectifier consumes.
func selectEmbeddings(all []*mat.Matrix, idx []int) []*mat.Matrix {
	out := make([]*mat.Matrix, len(idx))
	for i, j := range idx {
		out[i] = all[j]
	}
	return out
}

// RectifierAccuracy evaluates prec: rectified predictions on a node mask.
func RectifierAccuracy(ds *datasets.Dataset, bb *Backbone, rec *Rectifier, mask []int) float64 {
	embs := selectEmbeddings(bb.Embeddings(ds.X), rec.RequiredEmbeddings())
	out := rec.Forward(embs, false)
	return nn.Accuracy(out, ds.Labels, mask)
}

// PipelineResult bundles everything one GNNVault training run produces,
// with the paper's Table II quantities precomputed.
type PipelineResult struct {
	Original  *Backbone // reference GNN trained on the real graph (p_org)
	Backbone  *Backbone
	Rectifier *Rectifier

	POrg float64 // original model test accuracy
	PBB  float64 // public backbone test accuracy
	PRec float64 // rectified test accuracy
}

// DeltaP returns the protection performance Δp = p_rec − p_bb.
func (p *PipelineResult) DeltaP() float64 { return p.PRec - p.PBB }

// AccuracyDegradation returns p_org − p_rec (lower is better).
func (p *PipelineResult) AccuracyDegradation() float64 { return p.POrg - p.PRec }

// PipelineConfig parameterises a full partition-before-training run.
type PipelineConfig struct {
	Spec    ModelSpec
	Design  RectifierDesign
	SubKind substitute.Kind
	KNNK    int // k for the KNN substitute graph (paper default 2)
	Train   TrainConfig
	// SkipOriginal avoids training the reference model when only
	// p_bb/p_rec are needed (saves the most expensive third of a run).
	SkipOriginal bool
}

// DefaultPipelineConfig is Table II's setup: KNN(k=2) substitute graph,
// parallel rectifier, spec chosen per dataset.
func DefaultPipelineConfig(dataset string) PipelineConfig {
	return PipelineConfig{
		Spec:    SpecForDataset(dataset),
		Design:  Parallel,
		SubKind: substitute.KindKNN,
		KNNK:    2,
		Train:   DefaultTrainConfig(),
	}
}

// RunPipeline executes the four GNNVault steps on ds: substitute graph,
// backbone, rectifier, and evaluation. Deployment into an enclave is a
// separate step (Deploy).
func RunPipeline(ds *datasets.Dataset, cfg PipelineConfig) *PipelineResult {
	sub := substitute.Build(cfg.SubKind, ds.X, cfg.KNNK, ds.Graph.NumUndirectedEdges(), cfg.Train.Seed)
	bb := TrainBackbone(ds, cfg.Spec, cfg.SubKind, sub, cfg.Train)
	rec := TrainRectifier(ds, bb, cfg.Design, cfg.Train)

	res := &PipelineResult{
		Backbone:  bb,
		Rectifier: rec,
		PBB:       bb.TestAccuracy(ds.X, ds.Labels, ds.TestMask),
		PRec:      RectifierAccuracy(ds, bb, rec, ds.TestMask),
	}
	if !cfg.SkipOriginal {
		res.Original = TrainOriginal(ds, cfg.Spec, cfg.Train)
		res.POrg = res.Original.TestAccuracy(ds.X, ds.Labels, ds.TestMask)
	}
	return res
}

// RectifierActivations runs the rectifier in inference mode and returns its
// per-layer activations (post-ReLU hidden layers plus the final logits).
// Used by the Fig. 4 silhouette analysis; note these tensors exist only
// inside the enclave in a real deployment.
func RectifierActivations(ds *datasets.Dataset, bb *Backbone, rec *Rectifier) []*mat.Matrix {
	embs := selectEmbeddings(bb.Embeddings(ds.X), rec.RequiredEmbeddings())
	return rec.ForwardCollect(embs)
}
