package core

import (
	"errors"
	"testing"

	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/subgraph"
	"gnnvault/internal/substitute"
)

// shardTestModel trains the small cora backbone+rectifier pair the
// sharded tests deploy both ways: once as a single-enclave vault (the
// bit-identity reference) and once across a shard fleet.
func shardTestModel(t testing.TB, design RectifierDesign) (*datasets.Dataset, *Backbone, *Rectifier) {
	t.Helper()
	ds := datasets.Load("cora")
	cfg := TrainConfig{Epochs: 20, LR: 0.01, WeightDecay: 5e-4, Seed: 1}
	spec := SpecForDataset("cora")
	bb := TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), cfg)
	rec := TrainRectifier(ds, bb, design, cfg)
	return ds, bb, rec
}

// TestShardedPredictBitIdentical pins the tentpole invariant: a sharded
// plan's labels equal the single-enclave plan's, label for label, at
// every shard count and precision tier, tiled or not — sharding is a
// capacity move, never an accuracy one.
func TestShardedPredictBitIdentical(t *testing.T) {
	ds, bb, rec := shardTestModel(t, Parallel)
	cost := enclave.DefaultCostModel()
	single, err := Deploy(bb, rec, ds.Graph, cost)
	if err != nil {
		t.Fatalf("deploy reference: %v", err)
	}
	if err := single.SetCalibrationFeatures(ds.X); err != nil {
		t.Fatalf("calibration features: %v", err)
	}
	cfgs := []struct {
		name string
		cfg  PlanConfig
	}{
		{"fp64", PlanConfig{}},
		{"fp64-tiled", PlanConfig{EPCBudgetBytes: 1 << 20, Workers: 2}},
		{"fp32", PlanConfig{Precision: PrecisionFP32}},
		{"int8", PlanConfig{Precision: PrecisionInt8, MinAgreement: 0.5}},
	}
	for _, tc := range cfgs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ws, err := single.PlanWith(ds.X.Rows, tc.cfg)
			if err != nil {
				t.Fatalf("reference plan: %v", err)
			}
			defer ws.Release()
			want, _, err := single.PredictInto(ds.X, ws)
			if err != nil {
				t.Fatalf("reference predict: %v", err)
			}
			for shards := 1; shards <= 3; shards++ {
				sv, err := DeploySharded(bb, rec, ds.Graph, cost, shards)
				if err != nil {
					t.Fatalf("%d shards: deploy: %v", shards, err)
				}
				defer sv.Undeploy()
				if err := sv.SetCalibrationFeatures(ds.X); err != nil {
					t.Fatalf("%d shards: calibration features: %v", shards, err)
				}
				sws, err := sv.PlanSharded(ds.X.Rows, tc.cfg)
				if err != nil {
					t.Fatalf("%d shards: plan: %v", shards, err)
				}
				defer sws.Release()
				for pass := 0; pass < 2; pass++ { // reuse must be stable
					got, bd, err := sv.PredictInto(ds.X, sws)
					if err != nil {
						t.Fatalf("%d shards pass %d: predict: %v", shards, pass, err)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%d shards pass %d: label[%d] = %d, single-enclave %d",
								shards, pass, i, got[i], want[i])
						}
					}
					if bd.ECalls != shards {
						t.Fatalf("%d shards: %d ECALLs, want one per shard", shards, bd.ECalls)
					}
					if wantIn := sws.PayloadBytes() + sws.SpillBytes() + sws.HaloBytes(); bd.BytesIn != wantIn {
						t.Fatalf("%d shards: BytesIn %d, want payload+spill+halo %d", shards, bd.BytesIn, wantIn)
					}
				}
				if shards > 1 && sws.HaloBytes() == 0 {
					t.Fatalf("%d shards: no halo traffic on a connected graph", shards)
				}
				if shards == 1 && sws.HaloBytes() != 0 {
					t.Fatalf("1 shard: halo traffic %d, want 0", sws.HaloBytes())
				}
			}
		})
	}
}

// TestShardedNodeQueriesBitIdentical routes node queries to the shard
// owning the first seed and pins the answers to the single-enclave
// subgraph engine's: expansion is a deterministic function of (seeds,
// config), so the induced forward — and hence every label — must agree
// exactly. Cross-shard extracted rows must be priced as OCALLs + halo
// bytes on the serving shard's ledger.
func TestShardedNodeQueriesBitIdentical(t *testing.T) {
	ds, bb, rec := shardTestModel(t, Series)
	cost := enclave.DefaultCostModel()
	single, err := Deploy(bb, rec, ds.Graph, cost)
	if err != nil {
		t.Fatalf("deploy reference: %v", err)
	}
	scfg := subgraph.Config{Hops: 2, Fanout: 4, Seed: 11}
	refWS, err := single.PlanSubgraph(3, scfg)
	if err != nil {
		t.Fatalf("reference subgraph plan: %v", err)
	}
	defer refWS.Release()

	sv, err := DeploySharded(bb, rec, ds.Graph, cost, 3)
	if err != nil {
		t.Fatalf("sharded deploy: %v", err)
	}
	defer sv.Undeploy()
	shardWS := make([]*SubgraphWorkspace, sv.Shards())
	for s := range shardWS {
		ws, err := sv.Shard(s).PlanSubgraph(3, scfg)
		if err != nil {
			t.Fatalf("shard %d subgraph plan: %v", s, err)
		}
		defer ws.Release()
		shardWS[s] = ws
	}

	n := ds.Graph.N()
	batches := [][]int{{0}, {n - 1}, {n / 2, n/2 + 1}, {1, n - 2, n / 3}}
	sawCross := false
	for _, seeds := range batches {
		want, _, err := single.PredictNodesInto(ds.X, seeds, refWS)
		if err != nil {
			t.Fatalf("reference query %v: %v", seeds, err)
		}
		wantCopy := append([]int{}, want...)

		s, err := sv.RouteSeeds(seeds)
		if err != nil {
			t.Fatalf("route %v: %v", seeds, err)
		}
		if own := sv.Owner(seeds[0]); s != own {
			t.Fatalf("route %v to shard %d, owner is %d", seeds, s, own)
		}
		before := sv.Shard(s).Enclave.Ledger()
		got, haloBytes, _, err := sv.PredictNodesAt(ds.X, seeds, s, shardWS[s])
		if err != nil {
			t.Fatalf("sharded query %v: %v", seeds, err)
		}
		for i := range wantCopy {
			if got[i] != wantCopy[i] {
				t.Fatalf("query %v label[%d] = %d, single-enclave %d", seeds, i, got[i], wantCopy[i])
			}
		}
		cross := 0
		for _, u := range shardWS[s].ExtractedNodes() {
			if sv.Owner(u) != s {
				cross++
			}
		}
		after := sv.Shard(s).Enclave.Ledger()
		if gotOC := after.OCalls - before.OCalls; gotOC != cross {
			t.Fatalf("query %v: %d OCALLs for %d cross-shard rows", seeds, gotOC, cross)
		}
		if (haloBytes > 0) != (cross > 0) {
			t.Fatalf("query %v: halo bytes %d with %d cross-shard rows", seeds, haloBytes, cross)
		}
		if cross > 0 {
			sawCross = true
		}
	}
	if !sawCross {
		t.Fatal("no batch induced cross-shard rows; test exercises nothing")
	}

	if _, err := sv.RouteSeeds(nil); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("empty route: %v, want ErrNodeOutOfRange", err)
	}
	if _, err := sv.RouteSeeds([]int{n}); !errors.Is(err, ErrNodeOutOfRange) {
		t.Fatalf("out-of-range route: %v, want ErrNodeOutOfRange", err)
	}
}

// TestShardedEPCChargedPerShardAndReleased verifies the fleet's EPC
// story: deploy charges each enclave for the parameters plus its own
// slab, the plan charges each shard its reported share, and Release
// returns exactly that.
func TestShardedEPCChargedPerShardAndReleased(t *testing.T) {
	ds, bb, rec := shardTestModel(t, Parallel)
	sv, err := DeploySharded(bb, rec, ds.Graph, enclave.DefaultCostModel(), 4)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	defer sv.Undeploy()
	var slabs int64
	base := make([]int64, sv.Shards())
	for s := 0; s < sv.Shards(); s++ {
		base[s] = sv.Shard(s).Enclave.EPCUsed()
		if want := rec.ParamBytes() + sv.Part.CSR[s].NumBytes(); base[s] != want {
			t.Fatalf("shard %d residents %d, want params+slab %d", s, base[s], want)
		}
		slabs += sv.Part.CSR[s].NumBytes()
	}
	// nnz and row-pointer arrays are disjoint slices of the parent's, so
	// the fleet's total adjacency residency stays in the same ballpark as
	// the single enclave's (halo columns do not duplicate values).
	if full := rec.Adjacency().NumBytes(); slabs > full+int64(sv.Shards())*64 {
		t.Fatalf("slab total %d far exceeds full adjacency %d", slabs, full)
	}

	ws, err := sv.PlanSharded(ds.X.Rows, PlanConfig{})
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	var total int64
	for s := 0; s < sv.Shards(); s++ {
		charged := sv.Shard(s).Enclave.EPCUsed() - base[s]
		if charged != ws.ShardEnclaveBytes(s) {
			t.Fatalf("shard %d charged %d, workspace reports %d", s, charged, ws.ShardEnclaveBytes(s))
		}
		total += charged
	}
	if total != ws.EnclaveBytes() || total <= 0 {
		t.Fatalf("total charge %d, workspace reports %d", total, ws.EnclaveBytes())
	}
	ws.Release()
	ws.Release() // idempotent
	for s := 0; s < sv.Shards(); s++ {
		if got := sv.Shard(s).Enclave.EPCUsed(); got != base[s] {
			t.Fatalf("shard %d EPC after release %d, want %d", s, got, base[s])
		}
	}
}

// TestDeployShardedRejectsNonGCN: non-GCN rectifiers lower to opaque ops
// that cannot join barrier-synchronised fleet execution.
func TestDeployShardedRejectsNonGCN(t *testing.T) {
	ds := datasets.Load("cora")
	cfg := TrainConfig{Epochs: 2, LR: 0.01, Seed: 1}
	spec := SpecForDataset("cora")
	spec.Conv = ConvSAGE
	bb := TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), cfg)
	rec := TrainRectifier(ds, bb, Series, cfg)
	if _, err := DeploySharded(bb, rec, ds.Graph, enclave.DefaultCostModel(), 2); !errors.Is(err, ErrShardUnsupported) {
		t.Fatalf("SAGE rectifier: %v, want ErrShardUnsupported", err)
	}
	spec = SpecForDataset("cora")
	bbGCN := TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), cfg)
	if _, err := DeploySharded(bbGCN, TrainRectifier(ds, bbGCN, Series, cfg), ds.Graph, enclave.DefaultCostModel(), 0); err == nil {
		t.Fatal("0 shards accepted")
	}
}

// TestShardedPlanValidation covers the plan/predict guard rails.
func TestShardedPlanValidation(t *testing.T) {
	ds, bb, rec := shardTestModel(t, Parallel)
	sv, err := DeploySharded(bb, rec, ds.Graph, enclave.DefaultCostModel(), 2)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	defer sv.Undeploy()
	if _, err := sv.PlanSharded(ds.X.Rows+1, PlanConfig{}); err == nil {
		t.Fatal("row mismatch accepted")
	}
	if _, err := sv.PlanSharded(ds.X.Rows, PlanConfig{Precision: PrecisionInt8}); !errors.Is(err, ErrCalibrationRequired) {
		t.Fatalf("int8 without calibration: %v, want ErrCalibrationRequired", err)
	}
	ws, err := sv.PlanSharded(ds.X.Rows, PlanConfig{})
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	ws.Release()
	if _, _, err := sv.PredictInto(ds.X, ws); err == nil {
		t.Fatal("released workspace accepted")
	}
}
