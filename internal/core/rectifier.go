package core

import (
	"fmt"
	"math/rand"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
	"gnnvault/internal/nn"
)

// Rectifier is the private half of GNNVault: a small GCN over the *real*
// adjacency that recalibrates the backbone's embeddings (paper Sec. IV-D).
// It lives inside the enclave; its parameters and every intermediate
// activation stay sealed.
//
// The three designs differ only in how backbone embeddings are wired in:
//
//	Parallel: layer k input = [rectifier layer k-1 output ‖ backbone block k output]
//	Cascaded: layer 0 input = [all backbone block outputs ‖ … ]
//	Series:   layer 0 input = backbone's final hidden embedding
type Rectifier struct {
	Design RectifierDesign
	// BackboneDims are the block widths of the backbone this rectifier was
	// built against (hidden dims + C).
	BackboneDims []int
	// Dims are the rectifier's own output widths (hidden + C).
	Dims []int

	// Conv is the convolution architecture (default ConvGCN).
	Conv ConvKind

	private *graph.Graph
	adj     *graph.NormAdjacency
	convs   []nn.GraphConv
	relus   []*nn.ReLU
}

// NewRectifier builds an untrained rectifier for the given design against a
// backbone with block widths backboneDims, over the real private graph.
func NewRectifier(rng *rand.Rand, design RectifierDesign, backboneDims []int, hidden []int, classes int, private *graph.Graph) *Rectifier {
	return NewRectifierConv(rng, design, ConvGCN, backboneDims, hidden, classes, private)
}

// NewRectifierConv is NewRectifier with an explicit convolution
// architecture (GCN, GraphSAGE, or GAT).
func NewRectifierConv(rng *rand.Rand, design RectifierDesign, conv ConvKind, backboneDims []int, hidden []int, classes int, private *graph.Graph) *Rectifier {
	if len(backboneDims) == 0 {
		panic("core: rectifier needs backbone block dims")
	}
	dims := append(append([]int{}, hidden...), classes)
	r := &Rectifier{
		Design:       design,
		Conv:         conv,
		BackboneDims: append([]int{}, backboneDims...),
		Dims:         dims,
		private:      private,
		adj:          graph.Normalize(private),
	}
	for k := 0; k < len(dims); k++ {
		r.convs = append(r.convs, newGraphConv(rng, conv, r.inDim(k), dims[k], private, r.adj))
		if k < len(dims)-1 {
			r.relus = append(r.relus, nn.NewReLU())
		}
	}
	return r
}

// inDim returns rectifier layer k's input width under the design wiring.
func (r *Rectifier) inDim(k int) int {
	switch r.Design {
	case Parallel:
		used := r.usedBackboneDims()
		if k == 0 {
			return used[0]
		}
		return r.Dims[k-1] + used[k]
	case Cascaded:
		if k == 0 {
			total := 0
			for _, d := range r.BackboneDims {
				total += d
			}
			return total
		}
		return r.Dims[k-1]
	case Series:
		if k == 0 {
			return r.seriesInputDim()
		}
		return r.Dims[k-1]
	default:
		panic(fmt.Sprintf("core: unknown rectifier design %q", r.Design))
	}
}

// usedBackboneDims returns the backbone block widths the parallel design
// consumes: the last len(Dims) blocks, so unequal depths (M3) align the
// rectifier with the tail of the backbone.
func (r *Rectifier) usedBackboneDims() []int {
	off := len(r.BackboneDims) - len(r.Dims)
	if off < 0 {
		panic(fmt.Sprintf("core: parallel rectifier deeper (%d) than backbone (%d)", len(r.Dims), len(r.BackboneDims)))
	}
	return r.BackboneDims[off:]
}

// seriesInputDim is the backbone's final hidden width (or its logits width
// for a single-layer backbone).
func (r *Rectifier) seriesInputDim() int {
	if len(r.BackboneDims) >= 2 {
		return r.BackboneDims[len(r.BackboneDims)-2]
	}
	return r.BackboneDims[len(r.BackboneDims)-1]
}

// RequiredEmbeddings lists which backbone block outputs (by index) must be
// transferred into the enclave for this design — the transfer payload of
// Fig. 6.
func (r *Rectifier) RequiredEmbeddings() []int {
	switch r.Design {
	case Parallel:
		off := len(r.BackboneDims) - len(r.Dims)
		idx := make([]int, len(r.Dims))
		for k := range idx {
			idx[k] = off + k
		}
		return idx
	case Cascaded:
		idx := make([]int, len(r.BackboneDims))
		for k := range idx {
			idx[k] = k
		}
		return idx
	case Series:
		if len(r.BackboneDims) >= 2 {
			return []int{len(r.BackboneDims) - 2}
		}
		return []int{len(r.BackboneDims) - 1}
	default:
		panic(fmt.Sprintf("core: unknown rectifier design %q", r.Design))
	}
}

// assembleInput builds layer k's input from the transferred embeddings and
// the previous rectifier activation.
func (r *Rectifier) assembleInput(k int, prev *mat.Matrix, embs []*mat.Matrix) *mat.Matrix {
	switch r.Design {
	case Parallel:
		if k == 0 {
			return embs[0]
		}
		return mat.HConcat(prev, embs[k])
	case Cascaded:
		if k == 0 {
			return mat.HConcat(embs...)
		}
		return prev
	case Series:
		if k == 0 {
			return embs[0]
		}
		return prev
	default:
		panic(fmt.Sprintf("core: unknown rectifier design %q", r.Design))
	}
}

// Forward rectifies the transferred backbone embeddings into logits. embs
// must contain exactly the blocks listed by RequiredEmbeddings, in order.
func (r *Rectifier) Forward(embs []*mat.Matrix, train bool) *mat.Matrix {
	want := len(r.RequiredEmbeddings())
	if len(embs) != want {
		panic(fmt.Sprintf("core: rectifier %s wants %d embeddings, got %d", r.Design, want, len(embs)))
	}
	var h *mat.Matrix
	for k, conv := range r.convs {
		in := r.assembleInput(k, h, embs)
		z := conv.Forward(in, train)
		if k < len(r.convs)-1 {
			h = r.relus[k].Forward(z, train)
		} else {
			h = z
		}
	}
	return h
}

// Backward propagates dL/dLogits through the rectifier, accumulating
// parameter gradients. Gradients flowing toward the backbone embeddings
// are discarded: the backbone is frozen during rectifier training (paper
// Sec. IV-D) and the deployment channel is one-way anyway.
func (r *Rectifier) Backward(dOut *mat.Matrix) {
	d := dOut
	for k := len(r.convs) - 1; k >= 0; k-- {
		dIn := r.convs[k].Backward(d)
		if k == 0 {
			return
		}
		// Keep only the slice of the input gradient that flowed from the
		// previous rectifier layer.
		var dPrev *mat.Matrix
		switch r.Design {
		case Parallel:
			dPrev = dIn.SliceCols(0, r.Dims[k-1])
		default: // cascaded, series: layer k>0 input is exactly prev
			dPrev = dIn
		}
		d = r.relus[k-1].Backward(dPrev)
	}
}

// Params returns the rectifier parameters for the optimiser.
func (r *Rectifier) Params() []nn.Param {
	var ps []nn.Param
	for _, c := range r.convs {
		ps = append(ps, c.Params()...)
	}
	return ps
}

// NumParams returns θ_rec.
func (r *Rectifier) NumParams() int {
	n := 0
	for _, c := range r.convs {
		n += c.NumParams()
	}
	return n
}

// SetSerial toggles single-threaded kernels on every conv (in-enclave
// execution mode).
func (r *Rectifier) SetSerial(serial bool) {
	for _, c := range r.convs {
		c.SetSerialMode(serial)
	}
}

// Adjacency exposes the normalised private adjacency (enclave-side use
// only: deployment accounting and tests).
func (r *Rectifier) Adjacency() *graph.NormAdjacency { return r.adj }

// MarshalParams serialises the rectifier parameters (the blob that gets
// sealed at deployment).
func (r *Rectifier) MarshalParams() []byte {
	m := nn.NewModel()
	for _, c := range r.convs {
		m.Layers = append(m.Layers, c)
	}
	return m.MarshalParams()
}

// UnmarshalParams restores parameters from MarshalParams output.
func (r *Rectifier) UnmarshalParams(data []byte) error {
	m := nn.NewModel()
	for _, c := range r.convs {
		m.Layers = append(m.Layers, c)
	}
	return m.UnmarshalParams(data)
}

// ActivationBytes returns the peak transient activation footprint of one
// inference pass over n nodes: the widest concatenated input plus the
// widest two consecutive activations (input to and output of one layer
// coexist).
func (r *Rectifier) ActivationBytes(n int) int64 {
	peak := 0
	for k := range r.convs {
		if w := r.inDim(k) + r.Dims[k]; w > peak {
			peak = w
		}
	}
	return int64(peak) * int64(n) * 8
}

// ParamBytes returns the parameter footprint in bytes.
func (r *Rectifier) ParamBytes() int64 { return int64(r.NumParams()) * 8 }

// ForwardCollect runs inference and returns every layer's activation
// (hidden post-ReLU outputs plus final logits). Enclave-internal analysis
// only — these never cross the boundary in a deployment.
func (r *Rectifier) ForwardCollect(embs []*mat.Matrix) []*mat.Matrix {
	want := len(r.RequiredEmbeddings())
	if len(embs) != want {
		panic(fmt.Sprintf("core: rectifier %s wants %d embeddings, got %d", r.Design, want, len(embs)))
	}
	var h *mat.Matrix
	acts := make([]*mat.Matrix, 0, len(r.convs))
	for k, conv := range r.convs {
		in := r.assembleInput(k, h, embs)
		z := conv.Forward(in, false)
		if k < len(r.convs)-1 {
			h = r.relus[k].Forward(z, false)
		} else {
			h = z
		}
		acts = append(acts, h)
	}
	return acts
}

// Identity returns the canonical encoding of the rectifier's code identity
// (design, conv kind, backbone dims, own dims): the enclave measurement
// input. Two rectifiers with the same architecture measure identically
// regardless of their trained weights.
func (r *Rectifier) Identity() []byte {
	s := fmt.Sprintf("gnnvault-rectifier-v1|%s|%s|%v|%v", r.Design, r.Conv, r.BackboneDims, r.Dims)
	return []byte(s)
}

// forwardLayer runs exactly one rectifier layer in inference mode, for the
// streamed (layer-by-layer) deployment path of the parallel design. prev is
// the previous layer's activation (nil for k=0); emb is the backbone
// embedding this layer consumes.
func (r *Rectifier) forwardLayer(k int, prev, emb *mat.Matrix) *mat.Matrix {
	var in *mat.Matrix
	switch {
	case k == 0:
		in = emb
	case r.Design == Parallel:
		in = mat.HConcat(prev, emb)
	default:
		in = prev
	}
	z := r.convs[k].Forward(in, false)
	if k < len(r.convs)-1 {
		return r.relus[k].Forward(z, false)
	}
	return z
}
