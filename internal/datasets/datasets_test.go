package datasets

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLoadAllBuiltins(t *testing.T) {
	for _, name := range Names {
		ds := Load(name)
		if ds.Name != name {
			t.Errorf("%s: name = %q", name, ds.Name)
		}
		if ds.X.Rows != ds.Graph.N() || len(ds.Labels) != ds.X.Rows {
			t.Errorf("%s: inconsistent sizes", name)
		}
		if len(ds.TrainMask)+len(ds.TestMask) != ds.X.Rows {
			t.Errorf("%s: split does not partition nodes", name)
		}
		if ds.Paper.Nodes == 0 {
			t.Errorf("%s: missing paper stats", name)
		}
	}
}

func TestLoadUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset did not panic")
		}
	}()
	Load("imagenet")
}

func TestGenerateInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Generate(Config{Nodes: -1, Classes: 2, FeatureDim: 4})
}

func TestSplitTwentyPerClass(t *testing.T) {
	ds := Load("cora")
	counts := make(map[int]int)
	for _, i := range ds.TrainMask {
		counts[ds.Labels[i]]++
	}
	for c := 0; c < ds.NumClasses; c++ {
		if counts[c] != 20 {
			t.Errorf("class %d has %d train nodes, want 20", c, counts[c])
		}
	}
}

func TestSplitDisjoint(t *testing.T) {
	ds := Load("citeseer")
	seen := make(map[int]bool)
	for _, i := range ds.TrainMask {
		seen[i] = true
	}
	for _, i := range ds.TestMask {
		if seen[i] {
			t.Fatalf("node %d in both train and test", i)
		}
	}
}

func TestFeaturesRowNormalised(t *testing.T) {
	ds := Load("cora")
	for i := 0; i < ds.X.Rows; i++ {
		s := 0.0
		for _, v := range ds.X.Row(i) {
			if v < 0 {
				t.Fatalf("negative feature at row %d", i)
			}
			s += v
		}
		if s != 0 && math.Abs(s-1) > 1e-9 {
			t.Fatalf("row %d L1 norm = %v, want 1", i, s)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Load("pubmed")
	b := Load("pubmed")
	if !a.X.Equal(b.X) || !a.Graph.Equal(b.Graph) {
		t.Fatal("Load is not deterministic")
	}
}

func TestHomophilyMatchesConfig(t *testing.T) {
	for _, name := range Names {
		ds := Load(name)
		cfg := ConfigOf(name)
		h := ds.Graph.Homophily(ds.Labels)
		// Generated homophily tracks the config within sampling noise and
		// the cross-class collision rate.
		if h < cfg.Homophily-0.15 || h > cfg.Homophily+0.12 {
			t.Errorf("%s: homophily %v, config %v", name, h, cfg.Homophily)
		}
	}
}

func TestFeaturesClassCorrelated(t *testing.T) {
	// Mean intra-class feature cosine similarity should exceed the
	// inter-class one — this is the property that makes KNN substitute
	// graphs work.
	ds := Load("cora")
	rng := rand.New(rand.NewSource(1))
	intra, inter := 0.0, 0.0
	nIntra, nInter := 0, 0
	for trial := 0; trial < 4000; trial++ {
		i, j := rng.Intn(ds.X.Rows), rng.Intn(ds.X.Rows)
		if i == j {
			continue
		}
		c := cosine(ds.X.Row(i), ds.X.Row(j))
		if ds.Labels[i] == ds.Labels[j] {
			intra += c
			nIntra++
		} else {
			inter += c
			nInter++
		}
	}
	if nIntra == 0 || nInter == 0 {
		t.Skip("no pairs sampled")
	}
	if intra/float64(nIntra) <= 1.5*inter/float64(nInter) {
		t.Fatalf("features not class-correlated: intra %v vs inter %v",
			intra/float64(nIntra), inter/float64(nInter))
	}
}

func cosine(a, b []float64) float64 {
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func TestSplitSmallClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	labels := []int{0, 0, 0, 1, 1, 2} // class 2 has a single node
	train, test := Split(rng, labels, 3, 20)
	if len(train)+len(test) != len(labels) {
		t.Fatal("split lost nodes")
	}
	// Every class must keep at least one node out of training.
	inTest := make(map[int]bool)
	for _, i := range test {
		inTest[labels[i]] = true
	}
	for c := 0; c < 3; c++ {
		if !inTest[c] {
			t.Fatalf("class %d has no test node", c)
		}
	}
}

func TestPropSplitPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(200)
		classes := 2 + rng.Intn(5)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(classes)
		}
		train, test := Split(rng, labels, classes, 1+rng.Intn(10))
		seen := make(map[int]int)
		for _, i := range train {
			seen[i]++
		}
		for _, i := range test {
			seen[i]++
		}
		if len(seen) != n {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConfigOfReturnsCopy(t *testing.T) {
	cfg := ConfigOf("cora")
	cfg.Nodes = 1
	if ConfigOf("cora").Nodes == 1 {
		t.Fatal("ConfigOf exposed internal state")
	}
}

func TestGeneratePowerLaw(t *testing.T) {
	ds := GeneratePowerLaw(PowerLawConfig{Nodes: 5000, Seed: 3})
	if ds.Graph.N() != 5000 || ds.X.Rows != 5000 {
		t.Fatalf("sizes: graph %d features %d, want 5000", ds.Graph.N(), ds.X.Rows)
	}
	if ds.X.Cols != 64 || ds.NumClasses != 8 {
		t.Fatalf("defaults: d=%d classes=%d, want 64/8", ds.X.Cols, ds.NumClasses)
	}
	for i, l := range ds.Labels {
		if l < 0 || l >= ds.NumClasses {
			t.Fatalf("label[%d] = %d outside [0,%d)", i, l, ds.NumClasses)
		}
	}
	if len(ds.TrainMask) == 0 || len(ds.TestMask) == 0 {
		t.Fatal("empty split")
	}
	if len(ds.TrainMask)+len(ds.TestMask) != 5000 {
		t.Fatalf("split covers %d nodes, want 5000", len(ds.TrainMask)+len(ds.TestMask))
	}
	// Label propagation must leave homophily clearly above the 1/classes
	// random baseline so the GCN has signal to aggregate (hub mixing caps
	// it well below planted-partition levels).
	if h := ds.Graph.Homophily(ds.Labels); h < 0.2 {
		t.Fatalf("homophily %.3f too low; label propagation broken", h)
	}
	// Determinism.
	ds2 := GeneratePowerLaw(PowerLawConfig{Nodes: 5000, Seed: 3})
	if !ds.Graph.Equal(ds2.Graph) {
		t.Fatal("same seed produced different graphs")
	}
	for i := range ds.Labels {
		if ds.Labels[i] != ds2.Labels[i] {
			t.Fatalf("label %d differs across identical configs", i)
		}
	}
}
