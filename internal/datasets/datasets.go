// Package datasets synthesises the six node-classification datasets of the
// paper's Table I (Cora, Citeseer, Pubmed, Amazon Computer, Amazon Photo,
// CoraFull) at laptop scale.
//
// The real datasets are replaced per the substitution rule (see DESIGN.md):
// each synthetic dataset is a planted-partition graph with class-correlated
// sparse bag-of-words features, shaped so that the *relative* quantities
// that drive the paper's results are preserved:
//
//   - feature informativeness: an MLP on features alone reaches mid-range
//     accuracy (the paper's DNN backbone column),
//   - homophily: a GCN with the real adjacency clearly beats the MLP
//     (the paper's original-model column),
//   - feature/graph correlation: KNN and cosine substitute graphs built
//     from public features recover part of the structure (the paper's
//     substitute-backbone columns).
package datasets

import (
	"fmt"
	"math/rand"
	"sort"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

// Dataset is a semi-supervised node-classification task: public node
// features, a private graph, labels, and the paper's 20-labels-per-class
// train split with the remaining nodes as the test set.
type Dataset struct {
	Name       string
	X          *mat.Matrix  // n×d public node features
	Graph      *graph.Graph // the private adjacency (the protected asset)
	Labels     []int
	NumClasses int
	TrainMask  []int
	TestMask   []int

	// Paper holds the original dataset's statistics for Table I.
	Paper PaperStats
}

// PaperStats records the statistics the paper reports for the original
// dataset, so Table I can print paper-vs-synthetic side by side.
type PaperStats struct {
	Nodes, Edges, Features, Classes int
	DenseAMB                        float64
}

// Config parameterises the synthetic generator.
type Config struct {
	Name          string
	Nodes         int
	FeatureDim    int
	Classes       int
	AvgDegree     float64
	Homophily     float64 // fraction of intra-class edge endpoints
	ProtoDensity  float64 // fraction of feature dims active in a class prototype
	FeatureSignal float64 // probability a prototype dim is on in a node of that class
	FeatureNoise  float64 // probability a non-prototype dim is on
	ClassSkew     float64
	TrainPerClass int // 0 means the paper default of 20
	Seed          int64
	Paper         PaperStats
}

// Generate samples a dataset from cfg. Deterministic in cfg.Seed.
func Generate(cfg Config) *Dataset {
	if cfg.Nodes <= 0 || cfg.Classes <= 0 || cfg.FeatureDim <= 0 {
		panic(fmt.Sprintf("datasets: invalid config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g, labels := graph.PlantedPartition(graph.PlantedPartitionConfig{
		Nodes:     cfg.Nodes,
		Classes:   cfg.Classes,
		AvgDegree: cfg.AvgDegree,
		Homophily: cfg.Homophily,
		ClassSkew: cfg.ClassSkew,
		Seed:      cfg.Seed + 1,
	})

	// Class prototypes: each class activates a random ProtoDensity
	// fraction of the feature dims. Prototypes may overlap, which is what
	// keeps the features only partially informative.
	protoSize := int(cfg.ProtoDensity * float64(cfg.FeatureDim))
	if protoSize < 1 {
		protoSize = 1
	}
	protos := make([][]int, cfg.Classes)
	for c := range protos {
		perm := rng.Perm(cfg.FeatureDim)
		protos[c] = append([]int(nil), perm[:protoSize]...)
		sort.Ints(protos[c])
	}

	x := mat.New(cfg.Nodes, cfg.FeatureDim)
	inProto := make([]bool, cfg.FeatureDim)
	for i := 0; i < cfg.Nodes; i++ {
		for j := range inProto {
			inProto[j] = false
		}
		for _, j := range protos[labels[i]] {
			inProto[j] = true
		}
		row := x.Row(i)
		for j := 0; j < cfg.FeatureDim; j++ {
			p := cfg.FeatureNoise
			if inProto[j] {
				p = cfg.FeatureSignal
			}
			if rng.Float64() < p {
				row[j] = 1
			}
		}
	}
	rowNormalize(x)

	perClass := cfg.TrainPerClass
	if perClass == 0 {
		perClass = 20
	}
	train, test := Split(rng, labels, cfg.Classes, perClass)
	return &Dataset{
		Name:       cfg.Name,
		X:          x,
		Graph:      g,
		Labels:     labels,
		NumClasses: cfg.Classes,
		TrainMask:  train,
		TestMask:   test,
		Paper:      cfg.Paper,
	}
}

// rowNormalize scales each row to unit L1 norm (the standard Planetoid
// feature preprocessing). All-zero rows are left untouched.
func rowNormalize(x *mat.Matrix) {
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		s := 0.0
		for _, v := range row {
			s += v
		}
		if s == 0 {
			continue
		}
		for j := range row {
			row[j] /= s
		}
	}
}

// Split draws perClass training nodes from each class uniformly at random
// and returns (train, test) index sets. Classes with fewer than perClass+1
// nodes contribute all but one node to training.
func Split(rng *rand.Rand, labels []int, classes, perClass int) (train, test []int) {
	byClass := make([][]int, classes)
	for i, c := range labels {
		byClass[c] = append(byClass[c], i)
	}
	inTrain := make([]bool, len(labels))
	for _, nodes := range byClass {
		idx := append([]int(nil), nodes...)
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		take := perClass
		if take >= len(idx) {
			take = len(idx) - 1
		}
		if take < 0 {
			take = 0
		}
		for _, u := range idx[:take] {
			inTrain[u] = true
		}
	}
	for i := range labels {
		if inTrain[i] {
			train = append(train, i)
		} else {
			test = append(test, i)
		}
	}
	return train, test
}
