package datasets

import "fmt"

// Builtin dataset names, in the paper's Table I order.
var Names = []string{"cora", "citeseer", "pubmed", "computer", "photo", "corafull"}

// configs holds the synthetic stand-in for each paper dataset. Node and
// feature counts are scaled down ~5–20× (pure-Go full-batch training
// budget); class counts, relative densities, homophily, and the
// feature-signal strength that determines MLP-vs-GCN accuracy gaps follow
// the published characteristics of the originals.
var configs = map[string]Config{
	"cora": {
		Name: "cora", Nodes: 600, FeatureDim: 128, Classes: 7,
		AvgDegree: 3.9, Homophily: 0.74,
		ProtoDensity: 0.10, FeatureSignal: 0.22, FeatureNoise: 0.024,
		Seed:  101,
		Paper: PaperStats{Nodes: 2708, Edges: 10556, Features: 1433, Classes: 7, DenseAMB: 167.85},
	},
	"citeseer": {
		Name: "citeseer", Nodes: 660, FeatureDim: 160, Classes: 6,
		AvgDegree: 2.8, Homophily: 0.64,
		ProtoDensity: 0.10, FeatureSignal: 0.20, FeatureNoise: 0.026,
		Seed:  102,
		Paper: PaperStats{Nodes: 3327, Edges: 9104, Features: 3703, Classes: 6, DenseAMB: 253.35},
	},
	"pubmed": {
		Name: "pubmed", Nodes: 1200, FeatureDim: 100, Classes: 3,
		AvgDegree: 4.5, Homophily: 0.68,
		ProtoDensity: 0.12, FeatureSignal: 0.17, FeatureNoise: 0.045,
		Seed:  103,
		Paper: PaperStats{Nodes: 19717, Edges: 88648, Features: 500, Classes: 3, DenseAMB: 8898.01},
	},
	"computer": {
		Name: "computer", Nodes: 1000, FeatureDim: 120, Classes: 10,
		AvgDegree: 12, Homophily: 0.72,
		ProtoDensity: 0.09, FeatureSignal: 0.17, FeatureNoise: 0.026,
		ClassSkew: 0.25, Seed: 104,
		Paper: PaperStats{Nodes: 13752, Edges: 491722, Features: 767, Classes: 10, DenseAMB: 4328.56},
	},
	"photo": {
		Name: "photo", Nodes: 800, FeatureDim: 118, Classes: 8,
		AvgDegree: 12, Homophily: 0.70,
		ProtoDensity: 0.10, FeatureSignal: 0.16, FeatureNoise: 0.025,
		ClassSkew: 0.25, Seed: 105,
		Paper: PaperStats{Nodes: 7650, Edges: 238162, Features: 745, Classes: 8, DenseAMB: 1339.47},
	},
	"corafull": {
		Name: "corafull", Nodes: 1500, FeatureDim: 200, Classes: 20,
		AvgDegree: 6.4, Homophily: 0.55,
		ProtoDensity: 0.06, FeatureSignal: 0.16, FeatureNoise: 0.024,
		ClassSkew: 0.15, Seed: 106,
		Paper: PaperStats{Nodes: 19793, Edges: 126842, Features: 8710, Classes: 70, DenseAMB: 8966.74},
	},
}

// Load returns the named builtin dataset. It panics on unknown names; use
// Names for the valid set.
func Load(name string) *Dataset {
	cfg, ok := configs[name]
	if !ok {
		panic(fmt.Sprintf("datasets: unknown dataset %q (have %v)", name, Names))
	}
	return Generate(cfg)
}

// ConfigOf returns the generator configuration for a builtin dataset, so
// experiments can derive variants (different seeds, sizes).
func ConfigOf(name string) Config {
	cfg, ok := configs[name]
	if !ok {
		panic(fmt.Sprintf("datasets: unknown dataset %q (have %v)", name, Names))
	}
	return cfg
}
