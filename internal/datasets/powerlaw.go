package datasets

import (
	"fmt"
	"math/rand"

	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

// PowerLawConfig parameterises the synthetic preferential-attachment
// dataset generator behind the large-scale node-serving benchmarks:
// graphs of 100k–1M nodes where full-graph inference is off the table and
// GNNVault must serve node-level queries from sampled subgraphs.
type PowerLawConfig struct {
	Name string
	// Nodes is the graph size; the benchmarks sweep 50k–1M.
	Nodes int
	// EdgesPerNode is the Barabási–Albert attachment count (mean degree
	// ≈ 2×this). Default 8.
	EdgesPerNode int
	// FeatureDim is the node feature width. Default 64.
	FeatureDim int
	// Classes is the label-space size. Default 8.
	Classes int
	// FeatureSignal is the probability a class-prototype dimension is
	// active in a node of that class (defaults mirror the Table I
	// generator's informative-but-noisy regime).
	FeatureSignal float64
	// FeatureNoise is the probability a non-prototype dimension is
	// active.
	FeatureNoise float64
	// TrainPerClass is the training-label budget per class (default 20).
	TrainPerClass int
	Seed          int64
}

func (cfg PowerLawConfig) withDefaults() PowerLawConfig {
	if cfg.EdgesPerNode <= 0 {
		cfg.EdgesPerNode = 8
	}
	if cfg.FeatureDim <= 0 {
		cfg.FeatureDim = 64
	}
	if cfg.Classes <= 0 {
		cfg.Classes = 8
	}
	if cfg.FeatureSignal == 0 {
		cfg.FeatureSignal = 0.25
	}
	if cfg.FeatureNoise == 0 {
		cfg.FeatureNoise = 0.02
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("powerlaw-%d", cfg.Nodes)
	}
	return cfg
}

// GeneratePowerLaw samples a power-law (preferential-attachment) dataset:
// a Barabási–Albert private graph with hub-dominated degrees and
// class-correlated sparse features. Labels are propagated from hub seeds
// along the attachment structure, so the graph carries label signal (a
// GCN has something to aggregate) without the planted-partition
// generator's dense community blocks. Deterministic in cfg.Seed.
//
// Unlike the Table I stand-ins, these graphs are meant to be *too large*
// for full-graph inference workspaces: they exist to benchmark the
// subgraph serving path, where per-query cost is O(hops × fanout) rather
// than O(Nodes).
func GeneratePowerLaw(cfg PowerLawConfig) *Dataset {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 {
		panic(fmt.Sprintf("datasets: invalid power-law config %+v", cfg))
	}
	g := graph.PreferentialAttachment(graph.PreferentialAttachmentConfig{
		Nodes:        cfg.Nodes,
		EdgesPerNode: cfg.EdgesPerNode,
		Seed:         cfg.Seed + 1,
	})
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Label propagation from the attachment order: early (hub) nodes draw
	// uniform labels, later nodes copy a uniformly-drawn neighbour's label
	// with high probability. Attachment targets are earlier nodes, so one
	// ascending pass is a complete propagation.
	labels := make([]int, cfg.Nodes)
	for u := 0; u < cfg.Nodes; u++ {
		nb := g.Neighbors(u)
		if u <= cfg.EdgesPerNode || len(nb) == 0 || rng.Float64() < 0.08 {
			labels[u] = rng.Intn(cfg.Classes)
			continue
		}
		// Neighbour lists are sorted, so earlier (already-labelled) nodes
		// are a prefix; u attached to at least EdgesPerNode of them.
		labels[u] = labels[nb[rng.Intn(min(len(nb), cfg.EdgesPerNode))]]
	}

	// Class prototypes: disjoint feature bands plus background noise, the
	// cheap large-n variant of the Table I feature model.
	band := cfg.FeatureDim / cfg.Classes
	if band < 1 {
		band = 1
	}
	x := mat.New(cfg.Nodes, cfg.FeatureDim)
	for i := 0; i < cfg.Nodes; i++ {
		row := x.Row(i)
		lo := (labels[i] * band) % cfg.FeatureDim
		for j := 0; j < cfg.FeatureDim; j++ {
			p := cfg.FeatureNoise
			if j >= lo && j < lo+band {
				p = cfg.FeatureSignal
			}
			if rng.Float64() < p {
				row[j] = 1
			}
		}
	}
	rowNormalize(x)

	perClass := cfg.TrainPerClass
	if perClass == 0 {
		perClass = 20
	}
	train, test := Split(rng, labels, cfg.Classes, perClass)
	return &Dataset{
		Name:       cfg.Name,
		X:          x,
		Graph:      g,
		Labels:     labels,
		NumClasses: cfg.Classes,
		TrainMask:  train,
		TestMask:   test,
	}
}
