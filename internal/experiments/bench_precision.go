package experiments

import (
	"fmt"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/graph"
	"gnnvault/internal/substitute"
)

// ExtPrecision is the plan-level leg of the precision trajectory
// (BENCH_precision.json): where ExtExec prices the raw kernel families on
// an untrained program, this sweep plans *calibrated* tiled workspaces
// through Vault.PlanWith on trained models — the real serving path, where
// admission itself enforces the argmax-agreement floor — and reports what
// each tier charges. Two workloads: a Table I dataset (cora by default)
// and a power-law graph at the largest requested size, both under the
// same EPC budget, so the fp64/fp32/int8 rows price exactly the
// quality/memory/throughput trade registry scheduling works with.

// ExtPrecisionRow is one (dataset, precision) point of the tiled
// full-graph plan sweep.
type ExtPrecisionRow struct {
	Dataset      string  `json:"dataset"`
	Nodes        int     `json:"nodes"`
	Precision    string  `json:"precision"`
	TileRows     int     `json:"tile_rows"`
	QueryUS      float64 `json:"query_us"`
	EPCBytes     int64   `json:"epc_bytes"`
	SpillBytes   int64   `json:"spill_bytes"`
	PayloadBytes int64   `json:"payload_bytes"`
	Agreement    float64 `json:"argmax_agreement"` // vs this vault's fp64 plan
}

// extPrecisionBudget is the shared per-workspace EPC budget: every tier
// plans under the same cap, so narrower elements show up as taller tiles
// and proportionally less spill, not as a different budget.
const extPrecisionBudget = 4 << 20

// ExtPrecision sweeps tiled full-graph plans across the precision tiers
// on trained vaults. Training runs a fixed 20 epochs regardless of
// -epochs — more than the other serving sweeps' 3, deliberately: int8
// admission gates on argmax agreement, and a half-trained model's
// near-tie logits flip under quantization noise that a converged model
// shrugs off. Quantized serving presumes a converged model, so that is
// what this sweep prices.
func ExtPrecision(opts Options) ([]ExtPrecisionRow, string) {
	opts = opts.normalise()
	train := opts.train()
	train.Epochs = 20
	n := 100_000
	for _, s := range opts.SubgraphSizes {
		if s > 0 {
			n = s
		}
	}

	type workload struct {
		ds *datasets.Dataset
		v  *core.Vault
	}
	var loads []workload

	// Table I workload: the same KNN-substitute deployment ExtCore runs.
	name := opts.Datasets[0]
	ds := datasets.Load(name)
	spec := core.SpecForDataset(name)
	bb := core.TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), train)
	rec := core.TrainRectifier(ds, bb, core.Parallel, train)
	v, err := core.Deploy(bb, rec, ds.Graph, enclaveDefaultCost())
	if err != nil {
		panic(fmt.Sprintf("experiments: ExtPrecision deploy %s: %v", name, err))
	}
	loads = append(loads, workload{ds, v})

	// Power-law workload: the same random-substitute deployment
	// ExtSubgraph runs, at the largest requested size.
	pds := datasets.GeneratePowerLaw(datasets.PowerLawConfig{Nodes: n, Seed: int64(n)})
	sub := graph.PreferentialAttachment(graph.PreferentialAttachmentConfig{
		Nodes: n, EdgesPerNode: 8, Seed: int64(n) + 999,
	})
	pspec := core.ModelSpec{Name: "bench-pl", BackboneHidden: []int{64, 32}, RectifierHidden: []int{32, 16}}
	pbb := core.TrainBackbone(pds, pspec, substitute.KindRandom, sub, train)
	prec := core.TrainRectifier(pds, pbb, core.Series, train)
	pcost := enclaveDefaultCost()
	pcost.EPCBytes = 4 << 30 // persistent state grows with n; the budget under test is the workspace's
	pv, err := core.Deploy(pbb, prec, pds.Graph, pcost)
	if err != nil {
		panic(fmt.Sprintf("experiments: ExtPrecision deploy powerlaw-%d: %v", n, err))
	}
	loads = append(loads, workload{pds, pv})

	var rows []ExtPrecisionRow
	var cells [][]string
	for _, l := range loads {
		if err := l.v.SetCalibrationFeatures(l.ds.X); err != nil {
			panic(fmt.Sprintf("experiments: ExtPrecision calibration features %s: %v", l.ds.Name, err))
		}
		var ref []int
		for _, p := range []core.Precision{core.PrecisionFP64, core.PrecisionFP32, core.PrecisionInt8} {
			ws, err := l.v.PlanWith(l.v.Nodes(), core.PlanConfig{EPCBudgetBytes: extPrecisionBudget, Precision: p})
			if err != nil {
				panic(fmt.Sprintf("experiments: ExtPrecision plan %s/%s: %v", l.ds.Name, p, err))
			}
			predict := func() []int {
				labels, _, err := l.v.PredictInto(l.ds.X, ws)
				if err != nil {
					panic(err)
				}
				return labels
			}
			labels := predict() // warm-up
			if p == core.PrecisionFP64 {
				ref = append([]int(nil), labels...)
			}
			agree := 0
			for i := range labels {
				if labels[i] == ref[i] {
					agree++
				}
			}
			const reps = 2
			start := time.Now()
			for i := 0; i < reps; i++ {
				predict()
			}
			us := float64(time.Since(start).Microseconds()) / reps
			r := ExtPrecisionRow{
				Dataset: l.ds.Name, Nodes: l.v.Nodes(), Precision: p.String(),
				TileRows: ws.TileRows(), QueryUS: us,
				EPCBytes: ws.EnclaveBytes(), SpillBytes: ws.SpillBytes(),
				PayloadBytes: ws.PayloadBytes(),
				Agreement:    float64(agree) / float64(len(ref)),
			}
			rows = append(rows, r)
			cells = append(cells, []string{r.Dataset, fmt.Sprintf("%d", r.Nodes),
				r.Precision, fmt.Sprintf("%d", r.TileRows), fmt.Sprintf("%.0f", r.QueryUS),
				mb(r.SpillBytes), mb(r.PayloadBytes), mb(r.EPCBytes),
				fmt.Sprintf("%.4f", r.Agreement)})
			ws.Release()
		}
		l.v.Undeploy()
	}
	text := "Ext: calibrated tiled plans across precision tiers (shared 4 MB budget)\n" +
		table([]string{"Dataset", "n", "prec", "tileRows", "µs/query", "spill(MB)", "payload(MB)", "EPC(MB)", "agree"}, cells)
	return rows, text
}
