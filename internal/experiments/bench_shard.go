package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/graph"
	"gnnvault/internal/subgraph"
	"gnnvault/internal/substitute"
)

// extShardEPCMB is the fixed per-shard EPC budget the shard sweep holds
// constant across shard counts: big enough that the 1M-node single-shard
// baseline can deploy at all (its CSR alone is ~280 MB), small enough
// that the single enclave must tile its workspace where the fleet plans
// untiled. Sharding N× multiplies the fleet's total EPC while each
// enclave stays at this budget — exactly the scale lever the
// multi-enclave fleet exists to pull.
const extShardEPCMB = 384

// ExtShardRow is one shard-count point of the multi-enclave fleet sweep,
// serialised into BENCH_shard.json by `make bench-json` so the scale-out
// trajectory is tracked across PRs. Latencies are the repo's modelled
// serving time (InferenceBreakdown.Total: measured backbone + the cost
// model's transfer and in-enclave components) — on a real fleet the
// shard enclaves run on their own hardware, which the simulation's
// per-shard busy-time accounting models, while raw wall time on the
// benchmark host would serialise the shards through its scheduler.
type ExtShardRow struct {
	Nodes         int   `json:"nodes"`
	DirectedEdges int   `json:"directed_edges"`
	Shards        int   `json:"shards"`
	PerShardEPCMB int64 `json:"per_shard_epc_mb"`
	// Mode is "untiled" when every shard's workspace fits its enclave
	// budget, "tiled" when the fixed budget forced tiled execution.
	Mode string `json:"mode"`
	// NodesPerSec is full-graph inference throughput: graph nodes
	// labelled per second of modelled serving time at the median pass
	// (the median keeps the headline robust against a single
	// GC-disturbed backbone measurement at multi-second pass times).
	NodesPerSec float64 `json:"nodes_per_sec"`
	// P50US and P99US are modelled per-pass latency quantiles in
	// microseconds.
	P50US float64 `json:"p50_us"`
	P99US float64 `json:"p99_us"`
	// WallUS is the mean measured wall time per pass on the benchmark
	// host, for reference (shards interleave on shared cores here).
	WallUS float64 `json:"wall_us"`
	// HaloMB is the boundary-activation traffic one pass exchanges across
	// the fleet (0 for a single shard).
	HaloMB float64 `json:"halo_mb_per_pass"`
	// SpillMB is the per-pass tiled spill traffic (0 when every shard
	// planned untiled within its EPC budget).
	SpillMB float64 `json:"spill_mb_per_pass"`
	// PeakShardEPCMB is the busiest single enclave's EPC occupancy after
	// planning — the number that must stay under PerShardEPCMB.
	PeakShardEPCMB float64 `json:"peak_shard_epc_mb"`
	// MaxAdmissibleNodes is the headline: at this configuration's
	// measured EPC bytes per node, how many nodes the fleet's total EPC
	// (shards × per-shard budget) admits. Grows with the shard count
	// while each enclave's budget stays fixed.
	MaxAdmissibleNodes int `json:"max_admissible_nodes"`
	// Failure is the injected-outage leg, measured on the widest fleet
	// (shards=4) only: nodes/s with one enclave lost vs healthy, the
	// wall time to re-seal and rejoin the shard, and whether the
	// recovered fleet answers bit-identically.
	Failure *ExtShardFailure `json:"failure,omitempty"`
}

// ExtShardFailure is the shards=4 row's injected-failure leg: one
// enclave of the fleet is marked lost mid-serving, node-query
// throughput is measured while the fleet runs degraded, then the
// shard's re-provision + re-seal + rejoin is timed and the recovered
// fleet is required to reproduce the pre-fault full-graph labels.
type ExtShardFailure struct {
	KilledShard int `json:"killed_shard"`
	// RecoveryMS is the wall time of RecoverShard: provisioning a fresh
	// enclave, re-sealing the shard's CSR slice and models, rejoining
	// the halo topology and re-proving fleet agreement.
	RecoveryMS float64 `json:"recovery_ms"`
	// HealthyNodesPerSec and DegradedNodesPerSec are seed nodes
	// labelled per wall second by a round-robin node-query stream over
	// every shard. During the outage, queries routed to the dead shard
	// fail fast and label nothing, so the degraded rate is what the
	// surviving shards can sustain — graceful degradation, not an
	// outage of the whole fleet.
	HealthyNodesPerSec  float64 `json:"healthy_nodes_per_sec"`
	DegradedNodesPerSec float64 `json:"degraded_nodes_per_sec"`
	// RecoveredBitIdentical records that the post-recovery full-graph
	// pass matched the pre-fault labels exactly.
	RecoveredBitIdentical bool `json:"recovered_bit_identical"`
}

// ExtShard sweeps full-graph inference across multi-enclave shard fleets
// (shard count 1, 2, 4) on a power-law graph, holding the per-shard EPC
// budget fixed. The graph size is the largest entry of
// Options.SubgraphSizes (default 50k; the committed BENCH_shard.json run
// uses 1M). Model dims are reduced (32-dim features, 32/16 backbone,
// 16/8 rectifier) so the 1M-node sweep trains in minutes — the sweep
// measures the fleet's scale-out, not accuracy. Per pass the backbone
// runs once at full height in the normal world; the rectifier fans out
// as one ECALL per shard with the per-layer halo exchange priced into
// each shard's payload. Each shard count first tries an untiled plan and
// falls back to tiling within the fixed budget — the single-enclave
// baseline pays spill traffic where the fleet's pooled EPC plans
// untiled, and the modelled latency prices both against the halo bytes
// sharding costs.
func ExtShard(opts Options) ([]ExtShardRow, string) {
	opts = opts.normalise()
	n := 50_000
	for _, s := range opts.SubgraphSizes {
		if s > n {
			n = s
		}
	}
	train := opts.train()
	if train.Epochs > 3 {
		train.Epochs = 3
	}

	ds := datasets.GeneratePowerLaw(datasets.PowerLawConfig{
		Nodes: n, FeatureDim: 32, Seed: int64(n),
	})
	sub := graph.PreferentialAttachment(graph.PreferentialAttachmentConfig{
		Nodes: n, EdgesPerNode: 8, Seed: int64(n) + 999,
	})
	spec := core.ModelSpec{Name: "bench-shard", BackboneHidden: []int{32, 16}, RectifierHidden: []int{16, 8}}
	bb := core.TrainBackbone(ds, spec, substitute.KindRandom, sub, train)
	rec := core.TrainRectifier(ds, bb, core.Series, train)

	reps := 8
	if n >= 200_000 {
		reps = 6
	}

	var rows []ExtShardRow
	var cells [][]string
	for _, shards := range []int{1, 2, 4} {
		cost := enclaveDefaultCost()
		cost.EPCBytes = extShardEPCMB << 20 // per shard: each enclave has its own EPC
		sv, err := core.DeploySharded(bb, rec, ds.Graph, cost, shards)
		if err != nil {
			panic(fmt.Sprintf("experiments: ExtShard deploy n=%d shards=%d: %v", n, shards, err))
		}
		mode := "untiled"
		ws, err := sv.PlanSharded(sv.Nodes(), core.PlanConfig{})
		if errors.Is(err, enclave.ErrEPCExhausted) {
			// The fixed budget cannot hold this shard count's untiled
			// workspace: re-plan tiled against the tightest shard's free
			// EPC, like a real deployment would.
			free := int64(0)
			for s := 0; s < shards; s++ {
				if f := sv.Shard(s).Enclave.EPCFree(); free == 0 || f < free {
					free = f
				}
			}
			mode = "tiled"
			ws, err = sv.PlanSharded(sv.Nodes(), core.PlanConfig{EPCBudgetBytes: free})
		}
		if err != nil {
			panic(fmt.Sprintf("experiments: ExtShard plan n=%d shards=%d: %v", n, shards, err))
		}

		predict := func() (time.Duration, time.Duration) {
			start := time.Now()
			_, bd, err := sv.PredictInto(ds.X, ws)
			if err != nil {
				panic(fmt.Sprintf("experiments: ExtShard predict n=%d shards=%d: %v", n, shards, err))
			}
			return bd.Total(), time.Since(start)
		}
		predict()    // warm-up
		runtime.GC() // settle training/planning garbage before timing
		lat := make([]float64, reps)
		var wall time.Duration
		for i := 0; i < reps; i++ {
			m, w := predict()
			lat[i] = float64(m.Microseconds())
			wall += w
		}
		sort.Float64s(lat)
		quantile := func(q float64) float64 {
			return lat[int(q*float64(len(lat)-1))]
		}

		var usedEPC, peakEPC int64
		for s := 0; s < shards; s++ {
			u := sv.Shard(s).Enclave.EPCUsed()
			usedEPC += u
			if u > peakEPC {
				peakEPC = u
			}
		}
		perNode := float64(usedEPC) / float64(n)
		budget := float64(int64(shards) * extShardEPCMB << 20)

		r := ExtShardRow{
			Nodes: n, DirectedEdges: ds.Graph.NumDirectedEdges(),
			Shards: shards, PerShardEPCMB: extShardEPCMB, Mode: mode,
			NodesPerSec:        float64(n) / (quantile(0.50) * 1e-6),
			P50US:              quantile(0.50),
			P99US:              quantile(0.99),
			WallUS:             float64(wall.Microseconds()) / float64(reps),
			HaloMB:             float64(ws.HaloBytes()) / (1 << 20),
			SpillMB:            float64(ws.SpillBytes()) / (1 << 20),
			PeakShardEPCMB:     float64(peakEPC) / (1 << 20),
			MaxAdmissibleNodes: int(budget / perNode),
		}
		if shards == 4 {
			r.Failure = extShardFailureLeg(sv, ds, ws)
		}
		rows = append(rows, r)
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Nodes), fmt.Sprintf("%d", r.Shards), r.Mode,
			fmt.Sprintf("%.0f", r.NodesPerSec),
			fmt.Sprintf("%.0f", r.P50US), fmt.Sprintf("%.0f", r.P99US),
			fmt.Sprintf("%.2f", r.HaloMB), fmt.Sprintf("%.2f", r.SpillMB),
			fmt.Sprintf("%.1f", r.PeakShardEPCMB),
			fmt.Sprintf("%d", r.MaxAdmissibleNodes),
		})
		ws.Release()
		sv.Undeploy()
	}
	text := fmt.Sprintf("Ext: multi-enclave shard fleet, modelled full-graph serving (per-shard EPC %d MB)\n", extShardEPCMB) +
		table([]string{"Nodes", "Shards", "mode", "nodes/s", "p50 µs", "p99 µs", "halo MB", "spill MB", "peak EPC(MB)", "max admissible"}, cells)
	for _, r := range rows {
		if f := r.Failure; f != nil {
			text += fmt.Sprintf("failure leg (shards=%d): killed shard %d, node queries %.0f/s degraded vs %.0f/s healthy, recovered in %.1f ms, bit-identical=%v\n",
				r.Shards, f.KilledShard, f.DegradedNodesPerSec, f.HealthyNodesPerSec, f.RecoveryMS, f.RecoveredBitIdentical)
		}
	}
	return rows, text
}

// extShardFailureLeg runs the injected-outage measurement on a deployed
// fleet: a round-robin node-query stream prices the fleet's healthy
// capacity, one shard's enclave is marked lost and the stream re-run to
// price graceful degradation (dead-shard queries fail fast, the
// survivors keep answering), then RecoverShard is timed and the
// recovered fleet must reproduce the pre-fault full-graph labels.
func extShardFailureLeg(sv *core.ShardedVault, ds *datasets.Dataset, ws *core.ShardedWorkspace) *ExtShardFailure {
	baseline, _, err := sv.PredictInto(ds.X, ws)
	if err != nil {
		panic(fmt.Sprintf("experiments: ExtShard failure-leg baseline: %v", err))
	}
	baseline = append([]int{}, baseline...)

	shards := sv.Shards()
	scfg := subgraph.Config{Hops: 2, Fanout: 8, Seed: 7}
	const seedsPerQuery = 8
	subWS := make([]*core.SubgraphWorkspace, shards)
	for s := range subWS {
		if subWS[s], err = sv.Shard(s).PlanSubgraph(seedsPerQuery, scfg); err != nil {
			panic(fmt.Sprintf("experiments: ExtShard failure-leg subgraph plan shard %d: %v", s, err))
		}
	}
	defer func() {
		for _, w := range subWS {
			w.Release()
		}
	}()

	// shardSeeds picks seedsPerQuery distinct rows owned by shard s,
	// sliding the window with q so successive queries touch fresh
	// neighbourhoods.
	shardSeeds := func(s, q int) []int {
		lo, rows := sv.Part.Bounds[s], sv.Part.Rows(s)
		seeds := make([]int, seedsPerQuery)
		base := (q * 131) % rows
		for i := range seeds {
			seeds[i] = lo + (base+i)%rows
		}
		return seeds
	}

	// stream round-robins node queries over every shard and returns seed
	// nodes labelled per wall second. Queries routed to the lost shard
	// fail fast with ErrEnclaveLost and label nothing — that shortfall
	// is exactly the degradation being priced.
	const queriesPerShard = 24
	stream := func(lost int) float64 {
		labelled := 0
		start := time.Now()
		for q := 0; q < queriesPerShard; q++ {
			for s := 0; s < shards; s++ {
				labels, _, _, err := sv.PredictNodesAt(ds.X, shardSeeds(s, q), s, subWS[s])
				if err != nil {
					if s == lost && errors.Is(err, enclave.ErrEnclaveLost) {
						continue
					}
					panic(fmt.Sprintf("experiments: ExtShard failure-leg query shard %d: %v", s, err))
				}
				labelled += len(labels)
			}
		}
		return float64(labelled) / time.Since(start).Seconds()
	}

	healthy := stream(-1)
	const killed = 1
	sv.Shard(killed).Enclave.MarkLost()
	degraded := stream(killed)

	recStart := time.Now()
	if err := sv.RecoverShard(killed, ws); err != nil {
		panic(fmt.Sprintf("experiments: ExtShard failure-leg recover: %v", err))
	}
	recovery := time.Since(recStart)
	// The killed shard's subgraph workspace died with its enclave;
	// replan it on the recovered vault so the deferred releases stay
	// uniform.
	subWS[killed].Release()
	if subWS[killed], err = sv.Shard(killed).PlanSubgraph(seedsPerQuery, scfg); err != nil {
		panic(fmt.Sprintf("experiments: ExtShard failure-leg replan: %v", err))
	}

	after, _, err := sv.PredictInto(ds.X, ws)
	if err != nil {
		panic(fmt.Sprintf("experiments: ExtShard failure-leg post-recovery predict: %v", err))
	}
	identical := len(after) == len(baseline)
	for i := 0; identical && i < len(after); i++ {
		identical = after[i] == baseline[i]
	}

	return &ExtShardFailure{
		KilledShard:           killed,
		RecoveryMS:            float64(recovery.Microseconds()) / 1e3,
		HealthyNodesPerSec:    healthy,
		DegradedNodesPerSec:   degraded,
		RecoveredBitIdentical: identical,
	}
}
