// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. V): Table I (datasets), Table II (rectifier designs),
// Table III (backbone types), Table IV (link-stealing security analysis),
// Fig. 4 (latent-space rectification), Fig. 5 (substitute-graph ablations)
// and Fig. 6 (inference overhead and enclave memory).
//
// Every experiment returns structured rows plus a formatted text rendering,
// so cmd/experiments can print paper-style tables for comparison against
// the paper. All runs are deterministic in Options.Seed.
package experiments

import (
	"fmt"
	"strings"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
)

// Options scales experiment cost. The zero value is upgraded to the
// paper-faithful defaults by normalise().
type Options struct {
	// Epochs for every training run (default 200).
	Epochs int
	// Datasets restricts the dataset list (default: all six).
	Datasets []string
	// Seed drives all randomness (default 1).
	Seed int64
	// AttackPairs is the balanced pair-sample size per class for Table IV
	// (default 400).
	AttackPairs int
	// SubgraphSizes are the power-law graph sizes the ExtSubgraph sweep
	// benchmarks (default 20k and 50k).
	SubgraphSizes []int
}

func (o Options) normalise() Options {
	if o.Epochs <= 0 {
		o.Epochs = 200
	}
	if len(o.Datasets) == 0 {
		o.Datasets = append([]string{}, datasets.Names...)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.AttackPairs <= 0 {
		o.AttackPairs = 400
	}
	return o
}

func (o Options) train() core.TrainConfig {
	cfg := core.DefaultTrainConfig()
	cfg.Epochs = o.Epochs
	cfg.Seed = o.Seed
	return cfg
}

// table renders rows as an aligned plain-text table.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func pct(v float64) string  { return fmt.Sprintf("%.1f", v*100) }
func mparam(n int) string   { return fmt.Sprintf("%.4f", float64(n)/1e6) }
func mb(bytes int64) string { return fmt.Sprintf("%.2f", float64(bytes)/(1<<20)) }
