package experiments

import (
	"strings"
	"testing"

	"gnnvault/internal/attack"
	"gnnvault/internal/core"
	"gnnvault/internal/substitute"
)

// quick runs experiments at a budget suitable for unit tests: one small
// dataset, few epochs. The assertions check the paper's qualitative shapes,
// not absolute numbers.
func quick() Options {
	return Options{Epochs: 40, Datasets: []string{"cora"}, Seed: 1, AttackPairs: 150}
}

func TestTableFormatter(t *testing.T) {
	out := table([]string{"A", "Bee"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "A    Bee") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestOptionsNormalise(t *testing.T) {
	o := Options{}.normalise()
	if o.Epochs != 200 || len(o.Datasets) != 6 || o.Seed != 1 || o.AttackPairs != 400 {
		t.Fatalf("normalised = %+v", o)
	}
}

func TestTable1AllDatasets(t *testing.T) {
	rows, text := Table1(Options{})
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PaperDenseAMB <= 0 || r.DenseAMB <= 0 {
			t.Errorf("%s: missing dense-A numbers", r.Dataset)
		}
		if r.Nodes >= r.PaperNodes {
			t.Errorf("%s: synthetic should be smaller than the original", r.Dataset)
		}
	}
	if !strings.Contains(text, "cora") || !strings.Contains(text, "DenseA") {
		t.Error("text table incomplete")
	}
}

func TestTable2Shape(t *testing.T) {
	rows, text := Table2(quick())
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.POrg <= r.PBB {
		t.Errorf("p_org (%v) should exceed p_bb (%v)", r.POrg, r.PBB)
	}
	for _, design := range core.Designs {
		cell, ok := r.Designs[design]
		if !ok {
			t.Fatalf("missing design %s", design)
		}
		if cell.PRec <= r.PBB {
			t.Errorf("%s: p_rec (%v) did not beat p_bb (%v)", design, cell.PRec, r.PBB)
		}
	}
	// θ_rec < θ_bb holds for the series design at any scale; parallel and
	// cascaded inputs can exceed the scaled-down synthetic θ_bb because
	// the mini feature dim (128 vs the paper's 1433) shrinks the backbone
	// far more than the rectifier.
	if r.Designs[core.Series].ThetaRec >= r.ThetaBB {
		t.Errorf("series: θ_rec (%d) should be below θ_bb (%d)",
			r.Designs[core.Series].ThetaRec, r.ThetaBB)
	}
	if r.Designs[core.Series].ThetaRec >= r.Designs[core.Parallel].ThetaRec {
		t.Error("series rectifier should be smaller than parallel")
	}
	if !strings.Contains(text, "Table II") {
		t.Error("missing caption")
	}
}

func TestTable3Shape(t *testing.T) {
	rows, _ := Table3(quick())
	r := rows[0]
	if len(r.Kinds) != 4 {
		t.Fatalf("kinds = %d", len(r.Kinds))
	}
	rand := r.Kinds[substitute.KindRandom]
	knn := r.Kinds[substitute.KindKNN]
	if rand.PBB >= knn.PBB {
		t.Errorf("random backbone (%v) should trail KNN (%v)", rand.PBB, knn.PBB)
	}
	for kind, cell := range r.Kinds {
		if cell.PRec < cell.PBB-0.02 {
			t.Errorf("%s: rectification hurt accuracy (%v → %v)", kind, cell.PBB, cell.PRec)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	rows, _ := Table4(quick())
	if len(rows) != len(attack.Metrics) {
		t.Fatalf("rows = %d, want %d", len(rows), len(attack.Metrics))
	}
	for _, r := range rows {
		if r.MOrg <= r.MGV-0.05 {
			t.Errorf("%s/%s: unprotected AUC (%v) should exceed GNNVault's (%v)",
				r.Dataset, r.Metric, r.MOrg, r.MGV)
		}
		for _, v := range []float64{r.MOrg, r.MGV, r.MBase} {
			if v < 0 || v > 1 {
				t.Errorf("AUC %v out of range", v)
			}
		}
	}
}

func TestFig4Shape(t *testing.T) {
	res, text := Fig4(quick())
	if len(res.RectifierSilhouette) == 0 || len(res.BackboneSilhouette) == 0 {
		t.Fatal("missing silhouette series")
	}
	lastRec := res.RectifierSilhouette[len(res.RectifierSilhouette)-1]
	lastBB := res.BackboneSilhouette[len(res.BackboneSilhouette)-1]
	if lastRec <= lastBB {
		t.Errorf("rectifier silhouette (%v) should exceed backbone's (%v)", lastRec, lastBB)
	}
	for _, csv := range []string{res.OriginalTSNE, res.BackboneTSNE, res.RectifierTSNE} {
		if !strings.HasPrefix(csv, "x,y,label\n") {
			t.Error("t-SNE CSV malformed")
		}
	}
	if !strings.Contains(text, "Fig. 4") {
		t.Error("missing caption")
	}
}

func TestFig5Shape(t *testing.T) {
	// Trim the sweep grids for test speed.
	origK, origTau, origFrac := Fig5KValues, Fig5TauValues, Fig5RandomFracs
	Fig5KValues = []float64{2}
	Fig5TauValues = []float64{0.4}
	Fig5RandomFracs = []float64{0.25, 1.0}
	defer func() { Fig5KValues, Fig5TauValues, Fig5RandomFracs = origK, origTau, origFrac }()

	results, text := Fig5(quick())
	if len(results) != 1 {
		t.Fatalf("results = %d", len(results))
	}
	res := results[0]
	if len(res.KNNK) != 1 || len(res.CosineTau) != 1 || len(res.RandomRatio) != 2 {
		t.Fatalf("sweep sizes wrong: %+v", res)
	}
	// More random edges → worse (or equal) backbone accuracy, the Fig. 5
	// trend.
	if res.RandomRatio[1].PBB > res.RandomRatio[0].PBB+0.1 {
		t.Errorf("more random edges improved the backbone markedly: %v → %v",
			res.RandomRatio[0].PBB, res.RandomRatio[1].PBB)
	}
	if !strings.Contains(text, "Fig. 5") {
		t.Error("missing caption")
	}
}

func TestFig6Shape(t *testing.T) {
	rows, text := Fig6(quick()) // only the cora/M1 pair runs
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 designs", len(rows))
	}
	var series, parallel Fig6Row
	for _, r := range rows {
		if r.Total <= 0 || r.UnprotectedCPU <= 0 {
			t.Errorf("%s: non-positive timings", r.Design)
		}
		if !r.FitsEPC {
			t.Errorf("%s: rectifier should fit the EPC", r.Design)
		}
		switch r.Design {
		case core.Series:
			series = r
		case core.Parallel:
			parallel = r
		}
	}
	if series.Transfer >= parallel.Transfer {
		t.Errorf("series transfer (%v) should be below parallel's (%v)",
			series.Transfer, parallel.Transfer)
	}
	// The paper's memory argument: the smallest (series) rectifier needs
	// far less enclave memory than hosting the whole model would.
	if series.FullModelMemBytes <= series.EnclaveMemBytes {
		t.Errorf("full model (%d B) should need more memory than the series rectifier (%d B)",
			series.FullModelMemBytes, series.EnclaveMemBytes)
	}
	if !strings.Contains(text, "Fig. 6") {
		t.Error("missing caption")
	}
}

func TestExtArchitecturesShape(t *testing.T) {
	opts := quick()
	opts.Datasets = []string{"cora"}
	rows, text := ExtArchitectures(opts)
	if len(rows) != len(core.ConvKinds) {
		t.Fatalf("rows = %d, want %d", len(rows), len(core.ConvKinds))
	}
	for _, r := range rows {
		// The partition strategy must hold for every architecture.
		if r.PRec <= r.PBB {
			t.Errorf("%s: p_rec (%v) did not beat p_bb (%v)", r.Conv, r.PRec, r.PBB)
		}
	}
	if !strings.Contains(text, "sage") || !strings.Contains(text, "gat") {
		t.Error("missing architectures in output")
	}
}

func TestExtLabelOnlyShape(t *testing.T) {
	rows, _ := ExtLabelOnly(quick())
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 surfaces", len(rows))
	}
	// Labels must leak no more than logits would.
	var logitAUC, labelAUC float64
	for _, r := range rows {
		switch {
		case strings.HasPrefix(r.Surface, "rectified logits"):
			logitAUC = r.WorstAUC
		case strings.HasPrefix(r.Surface, "labels only"):
			labelAUC = r.WorstAUC
		}
	}
	if labelAUC > logitAUC+0.02 {
		t.Errorf("labels (%v) leak more than logits (%v)?", labelAUC, logitAUC)
	}
}

func TestExtSilhouetteGap(t *testing.T) {
	bb, rec, _ := ExtSilhouetteGap(quick())
	if rec <= bb {
		t.Errorf("rectifier silhouette (%v) should exceed backbone's (%v)", rec, bb)
	}
}

func TestExtExtractionShape(t *testing.T) {
	rows, text := ExtExtraction(quick())
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 victims", len(rows))
	}
	for _, r := range rows {
		if r.Fidelity < 0.3 || r.Fidelity > 1 {
			t.Errorf("%s: implausible fidelity %v", r.Victim, r.Fidelity)
		}
	}
	if !strings.Contains(text, "GNNVault (labels only)") {
		t.Error("missing vault victim row")
	}
}

func TestExtStreamingShape(t *testing.T) {
	rows, _ := ExtStreaming(quick())
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].PeakEPCBytes >= rows[0].PeakEPCBytes {
		t.Errorf("streamed peak EPC (%d) should be below batched (%d)",
			rows[1].PeakEPCBytes, rows[0].PeakEPCBytes)
	}
}
