package experiments

import (
	"fmt"

	"gnnvault/internal/attack"
	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/substitute"
)

// Table1Row pairs the paper's dataset statistics with the synthetic
// stand-in actually used in this reproduction.
type Table1Row struct {
	Dataset                                     string
	PaperNodes, PaperEdges, PaperFeats, Classes int
	PaperDenseAMB                               float64
	Nodes, Edges, Feats                         int
	DenseAMB                                    float64
	Homophily                                   float64
}

// Table1 reproduces Table I: dataset statistics and the dense-adjacency
// memory cost that motivates COO storage in the enclave.
func Table1(opts Options) ([]Table1Row, string) {
	opts = opts.normalise()
	var rows []Table1Row
	var cells [][]string
	for _, name := range opts.Datasets {
		ds := datasets.Load(name)
		r := Table1Row{
			Dataset:    name,
			PaperNodes: ds.Paper.Nodes, PaperEdges: ds.Paper.Edges,
			PaperFeats: ds.Paper.Features, Classes: ds.Paper.Classes,
			PaperDenseAMB: ds.Paper.DenseAMB,
			Nodes:         ds.Graph.N(),
			Edges:         ds.Graph.NumDirectedEdges(),
			Feats:         ds.X.Cols,
			DenseAMB:      float64(ds.Graph.DenseAdjacencyBytes()) / (1 << 20),
			Homophily:     ds.Graph.Homophily(ds.Labels),
		}
		rows = append(rows, r)
		cells = append(cells, []string{
			name,
			fmt.Sprintf("%d/%d", r.PaperNodes, r.Nodes),
			fmt.Sprintf("%d/%d", r.PaperEdges, r.Edges),
			fmt.Sprintf("%d/%d", r.PaperFeats, r.Feats),
			fmt.Sprintf("%d", r.Classes),
			fmt.Sprintf("%.2f/%.2f", r.PaperDenseAMB, r.DenseAMB),
			fmt.Sprintf("%.2f", r.Homophily),
		})
	}
	text := "Table I — datasets (paper/synthetic)\n" + table(
		[]string{"Dataset", "#Node", "#Edge", "#Feature", "#Class", "DenseA(MB)", "Homophily"}, cells)
	return rows, text
}

// Table2Cell is one rectifier design's outcome on one dataset.
type Table2Cell struct {
	PRec, DeltaP float64
	ThetaRec     int
}

// Table2Row is one dataset row of Table II.
type Table2Row struct {
	Dataset string
	POrg    float64
	ThetaBB int
	PBB     float64
	Designs map[core.RectifierDesign]Table2Cell
}

// Table2 reproduces Table II: GNNVault performance with the KNN(k=2)
// substitute graph across the three rectifier designs.
func Table2(opts Options) ([]Table2Row, string) {
	opts = opts.normalise()
	var rows []Table2Row
	var cells [][]string
	for _, name := range opts.Datasets {
		ds := datasets.Load(name)
		spec := core.SpecForDataset(name)
		train := opts.train()

		orig := core.TrainOriginal(ds, spec, train)
		sub := substitute.KNN(ds.X, 2)
		bb := core.TrainBackbone(ds, spec, substitute.KindKNN, sub, train)

		row := Table2Row{
			Dataset: name,
			POrg:    orig.TestAccuracy(ds.X, ds.Labels, ds.TestMask),
			ThetaBB: bb.NumParams(),
			PBB:     bb.TestAccuracy(ds.X, ds.Labels, ds.TestMask),
			Designs: map[core.RectifierDesign]Table2Cell{},
		}
		for _, design := range core.Designs {
			rec := core.TrainRectifier(ds, bb, design, train)
			pRec := core.RectifierAccuracy(ds, bb, rec, ds.TestMask)
			row.Designs[design] = Table2Cell{
				PRec:     pRec,
				DeltaP:   pRec - row.PBB,
				ThetaRec: rec.NumParams(),
			}
		}
		rows = append(rows, row)

		c := []string{name, pct(row.POrg), mparam(row.ThetaBB), pct(row.PBB)}
		for _, design := range core.Designs {
			cell := row.Designs[design]
			c = append(c, pct(cell.PRec), pct(cell.DeltaP), mparam(cell.ThetaRec))
		}
		cells = append(cells, c)
	}
	text := "Table II — GNNVault with KNN graph (k=2)\n" + table(
		[]string{"Dataset", "p_org", "θ_bb(M)", "p_bb",
			"par p_rec", "par Δp", "par θ_rec(M)",
			"ser p_rec", "ser Δp", "ser θ_rec(M)",
			"cas p_rec", "cas Δp", "cas θ_rec(M)"}, cells)
	return rows, text
}

// Table3Cell is (p_bb, p_rec) for one backbone kind.
type Table3Cell struct {
	PBB, PRec float64
}

// Table3Row is one dataset row of Table III.
type Table3Row struct {
	Dataset string
	Kinds   map[substitute.Kind]Table3Cell
}

// Table3Kinds is the paper's backbone ordering for Table III.
var Table3Kinds = []substitute.Kind{
	substitute.KindDNN, substitute.KindRandom, substitute.KindCosine, substitute.KindKNN,
}

// Table3 reproduces Table III: backbone designs compared (DNN vs random vs
// cosine vs KNN substitute graphs), each with a parallel rectifier;
// GNN substitutes are density-matched to the real graph.
func Table3(opts Options) ([]Table3Row, string) {
	opts = opts.normalise()
	var rows []Table3Row
	var cells [][]string
	for _, name := range opts.Datasets {
		ds := datasets.Load(name)
		spec := core.SpecForDataset(name)
		train := opts.train()
		row := Table3Row{Dataset: name, Kinds: map[substitute.Kind]Table3Cell{}}
		c := []string{name}
		for _, kind := range Table3Kinds {
			sub := substitute.Build(kind, ds.X, 2, ds.Graph.NumUndirectedEdges(), opts.Seed)
			bb := core.TrainBackbone(ds, spec, kind, sub, train)
			rec := core.TrainRectifier(ds, bb, core.Parallel, train)
			cell := Table3Cell{
				PBB:  bb.TestAccuracy(ds.X, ds.Labels, ds.TestMask),
				PRec: core.RectifierAccuracy(ds, bb, rec, ds.TestMask),
			}
			row.Kinds[kind] = cell
			c = append(c, pct(cell.PBB), pct(cell.PRec))
		}
		rows = append(rows, row)
		cells = append(cells, c)
	}
	text := "Table III — backbone designs (p_bb / p_rec per kind)\n" + table(
		[]string{"Dataset", "DNN p_bb", "DNN p_rec", "rand p_bb", "rand p_rec",
			"cos p_bb", "cos p_rec", "knn p_bb", "knn p_rec"}, cells)
	return rows, text
}

// Table4Row holds link-stealing AUCs for one dataset × one metric.
type Table4Row struct {
	Dataset string
	Metric  attack.Metric
	MOrg    float64 // attack on the unprotected GNN's embeddings
	MGV     float64 // attack on GNNVault's untrusted-world observations
	MBase   float64 // attack on a DNN's embeddings (feature-only baseline)
}

// Table4 reproduces Table IV: link-stealing ROC-AUC on the unprotected
// model (M_org), on GNNVault's attacker-observable surface (M_gv: the
// public backbone's embeddings — the rectifier's activations never leave
// the enclave), and on the feature-only DNN baseline (M_base).
func Table4(opts Options) ([]Table4Row, string) {
	opts = opts.normalise()
	var rows []Table4Row
	var cells [][]string
	for _, name := range opts.Datasets {
		ds := datasets.Load(name)
		spec := core.SpecForDataset(name)
		train := opts.train()

		orig := core.TrainOriginal(ds, spec, train)
		bb := core.TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), train)
		dnn := core.TrainBackbone(ds, spec, substitute.KindDNN, nil, train)

		sample := attack.SamplePairs(ds.Graph, opts.AttackPairs, opts.Seed+42)
		aucOrg := attack.Run(orig.Embeddings(ds.X), sample)
		aucGV := attack.Run(bb.Embeddings(ds.X), sample)
		aucBase := attack.Run(dnn.Embeddings(ds.X), sample)

		for _, m := range attack.Metrics {
			r := Table4Row{Dataset: name, Metric: m,
				MOrg: aucOrg[m], MGV: aucGV[m], MBase: aucBase[m]}
			rows = append(rows, r)
			cells = append(cells, []string{name, string(m),
				fmt.Sprintf("%.3f", r.MOrg),
				fmt.Sprintf("%.3f", r.MGV),
				fmt.Sprintf("%.3f", r.MBase)})
		}
	}
	text := "Table IV — link stealing attack ROC-AUC\n" + table(
		[]string{"Dataset", "Metric", "M_org", "M_gv", "M_base"}, cells)
	return rows, text
}
