package experiments

import (
	"fmt"
	"sort"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/obs"
	"gnnvault/internal/registry"
	"gnnvault/internal/serve"
	"gnnvault/internal/substitute"
)

// ExtObs prices the flight recorder: the same serving workloads run twice,
// once with the default no-op recorder and once with a live span ring, and
// the committed BENCH_obs.json records the median per-query delta. CI
// gates the overhead (cmd/experiments -obs-check) so instrumentation can
// never quietly tax the hot path.

// ExtObsRow is one workload's no-op vs instrumented comparison.
type ExtObsRow struct {
	Bench          string  `json:"bench"` // tiled_full_graph | serve
	Dataset        string  `json:"dataset"`
	Rounds         int     `json:"rounds"`
	NopUS          float64 `json:"nop_us"`
	InstrumentedUS float64 `json:"instrumented_us"`
	OverheadPct    float64 `json:"overhead_pct"`
}

// obsRounds is how many interleaved measurement rounds each workload runs;
// medians over interleaved rounds cancel drift (GC, thermal, scheduler)
// that would bias a run-A-then-run-B comparison.
const obsRounds = 7

// ExtObs measures telemetry overhead on the two hot serving paths: a
// tile-streamed full-graph PredictInto workspace and the multi-vault
// registry server. Both variants execute identical plans — only the
// Recorder differs — so the delta is purely the clock reads, span
// construction and ring appends the instrumentation adds.
func ExtObs(opts Options) ([]ExtObsRow, string) {
	opts = opts.normalise()
	name := opts.Datasets[0]
	ds := datasets.Load(name)
	train := opts.train()
	if train.Epochs > 3 {
		train.Epochs = 3
	}
	spec := core.SpecForDataset(name)
	bb := core.TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), train)
	rc := core.TrainRectifier(ds, bb, core.Parallel, train)

	rows := []ExtObsRow{
		obsFullGraph(name, ds, bb, rc),
		obsServe(name, ds, bb, rc),
	}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{r.Bench, name,
			fmt.Sprintf("%.0f", r.NopUS), fmt.Sprintf("%.0f", r.InstrumentedUS),
			fmt.Sprintf("%+.2f%%", r.OverheadPct)})
	}
	text := "Ext: telemetry overhead, no-op recorder vs live flight-recorder ring (median of interleaved rounds)\n" +
		table([]string{"Bench", "Dataset", "nop µs", "instr µs", "overhead"}, cells)
	return rows, text
}

// obsFullGraph interleaves tiled full-graph PredictInto rounds over two
// workspaces planned from the same vault: one on the no-op recorder, one
// feeding a live span ring.
func obsFullGraph(name string, ds *datasets.Dataset, bb *core.Backbone, rc *core.Rectifier) ExtObsRow {
	v, err := core.Deploy(bb, rc, ds.Graph, enclaveDefaultCost())
	if err != nil {
		panic(fmt.Sprintf("experiments: ExtObs deploy: %v", err))
	}
	defer v.Undeploy()
	plan := func(r obs.Recorder) *core.Workspace {
		ws, err := v.PlanWith(v.Nodes(), core.PlanConfig{EPCBudgetBytes: extCoreBudget, Recorder: r})
		if err != nil {
			panic(fmt.Sprintf("experiments: ExtObs plan: %v", err))
		}
		return ws
	}
	wsNop := plan(nil)
	defer wsNop.Release()
	wsRec := plan(obs.NewRing(4096))
	defer wsRec.Release()

	measure := func(ws *core.Workspace) float64 {
		const reps = 4
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, _, err := v.PredictInto(ds.X, ws); err != nil {
				panic(fmt.Sprintf("experiments: ExtObs predict: %v", err))
			}
		}
		return float64(time.Since(start).Microseconds()) / reps
	}
	measure(wsNop) // warm-up both paths before timing
	measure(wsRec)
	var nop, instr []float64
	for i := 0; i < obsRounds; i++ {
		nop = append(nop, measure(wsNop))
		instr = append(instr, measure(wsRec))
	}
	return obsRow("tiled_full_graph", name, nop, instr)
}

// obsServe interleaves synthetic client streams against two identical
// single-vault registry servers, one per recorder variant. The enclave is
// sized generously so plan/evict churn cannot leak into the comparison.
func obsServe(name string, ds *datasets.Dataset, bb *core.Backbone, rc *core.Rectifier) ExtObsRow {
	build := func(r obs.Recorder) (*serve.MultiServer, *registry.Registry, string) {
		encl := enclave.New(enclaveDefaultCost(), rc.Identity())
		reg := registry.New(encl, registry.Config{
			WorkspacesPerVault: 2,
			Plan:               core.PlanConfig{EPCBudgetBytes: extCoreBudget},
			Recorder:           r,
		})
		v, err := core.DeployInto(encl, bb, rc, ds.Graph)
		if err != nil {
			panic(fmt.Sprintf("experiments: ExtObs serve deploy: %v", err))
		}
		id := name + "/" + string(core.Parallel)
		if err := reg.Register(id, v); err != nil {
			panic(err)
		}
		return serve.NewMulti(reg, serve.Config{Workers: 2, MaxBatch: 4}), reg, id
	}
	srvNop, regNop, id := build(nil)
	defer func() { srvNop.Close(); regNop.Close() }()
	srvRec, regRec, _ := build(obs.NewRing(4096))
	defer func() { srvRec.Close(); regRec.Close() }()

	stream := func(srv *serve.MultiServer) float64 {
		const clients, perClient = 4, 8
		start := time.Now()
		done := make(chan error, clients)
		for c := 0; c < clients; c++ {
			go func() {
				for r := 0; r < perClient; r++ {
					if _, err := srv.Predict(id, ds.X); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
		}
		for c := 0; c < clients; c++ {
			if err := <-done; err != nil {
				panic(fmt.Sprintf("experiments: ExtObs stream: %v", err))
			}
		}
		return float64(time.Since(start).Microseconds()) / (clients * perClient)
	}
	stream(srvNop) // warm-up both servers before timing
	stream(srvRec)
	var nop, instr []float64
	for i := 0; i < obsRounds; i++ {
		nop = append(nop, stream(srvNop))
		instr = append(instr, stream(srvRec))
	}
	return obsRow("serve", name, nop, instr)
}

// obsRow folds the interleaved round samples into one comparison row.
func obsRow(bench, dataset string, nop, instr []float64) ExtObsRow {
	n, i := median(nop), median(instr)
	r := ExtObsRow{Bench: bench, Dataset: dataset, Rounds: obsRounds, NopUS: n, InstrumentedUS: i}
	if n > 0 {
		r.OverheadPct = (i - n) / n * 100
	}
	return r
}

// median of a sample set; does not modify its argument.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
