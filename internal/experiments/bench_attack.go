package experiments

import (
	"fmt"

	"gnnvault/internal/attack"
	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/mat"
	"gnnvault/internal/privharness"
	"gnnvault/internal/registry"
	"gnnvault/internal/serve"
	"gnnvault/internal/substitute"
)

// ExtAttackRow is one (design, precision, defense) point of the privacy
// regression sweep: every attack query in it flowed through serve.API —
// the same code path the HTTP endpoints execute — never through the vault
// directly, so the numbers price what a network adversary actually gets.
type ExtAttackRow struct {
	Dataset   string `json:"dataset"`
	Design    string `json:"design"`
	Precision string `json:"precision"`
	// Defense names the serving configuration: undefended (raw posteriors),
	// round1 (1-digit rounding), top1 (top-k masking, k=1), ratelimited
	// (per-client query budget), labelonly (the paper's hard-label rule).
	Defense string `json:"defense"`
	// Surface is what the adversary observes per answered query.
	Surface string `json:"surface"`
	// Link-stealing strength: best distance-metric AUC through /predict
	// (exact full-graph serving) and through /predict_nodes (sampled
	// subgraph serving), plus the per-metric breakdown on the full path.
	LinkAUCFull     map[attack.Metric]float64 `json:"link_auc_full"`
	BestLinkAUCFull float64                   `json:"best_link_auc_full"`
	BestLinkAUCSub  float64                   `json:"best_link_auc_subgraph"`
	// Extraction strength: surrogate/victim agreement on a held-out set.
	Fidelity float64 `json:"extraction_fidelity"`
	// Query accounting. Observed counts distinct nodes the extraction
	// actually saw before any rate limit cut it off.
	LinkQueries    int  `json:"link_queries"`
	ExtractQueries int  `json:"extract_queries"`
	Observed       int  `json:"extract_observed_nodes"`
	RateLimited    bool `json:"rate_limited"`
	// Serving cost of the defense, measured over the whole attack stream.
	ReqPerSec float64 `json:"req_per_sec"`
	P99MS     float64 `json:"p99_ms"`
}

// Fixed attack budgets: small enough for CI, large enough that the
// defense ordering is measurable. extAttackBudget is the per-client label
// budget the ratelimited row enforces — below the ~150 nodes the link
// work-list needs, so that row demonstrably attacks with partial
// observations.
const (
	extAttackPairs  = 80
	extAttackBudget = 96
	extAttackNodes  = 240
)

// ExtAttack replays the link-stealing and model-extraction attacks
// against the served API under each defense configuration, across
// rectifier designs and precision tiers. Training is capped at 30 epochs:
// enough structure in the posteriors for the attacks to have teeth (the
// sweep prices defenses, not model accuracy), still cheap enough for the
// CI smoke. The int8 tier runs on the parallel design, whose calibrated
// quantised plan clears the agreement floor on cora.
func ExtAttack(opts Options) ([]ExtAttackRow, string) {
	opts = opts.normalise()
	name := opts.Datasets[0]
	ds := datasets.Load(name)
	train := opts.train()
	if train.Epochs > 30 {
		train.Epochs = 30
	}
	spec := core.SpecForDataset(name)
	bb := core.TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), train)

	sample := attack.SamplePairs(ds.Graph, extAttackPairs, 7)
	eval := make([]int, 0, 80)
	for i := 0; i < 80; i++ {
		eval = append(eval, (i*7+3)%ds.Graph.N())
	}

	type combo struct {
		design core.RectifierDesign
		prec   core.Precision
	}
	combos := []combo{
		{core.Parallel, core.PrecisionFP64},
		{core.Parallel, core.PrecisionInt8},
		{core.Series, core.PrecisionFP64},
	}
	type defense struct {
		name  string
		scfg  serve.Config
		limit *serve.RateLimit
	}
	defenses := []defense{
		{"undefended", serve.Config{ExposeScores: true}, nil},
		{"round1", serve.Config{ExposeScores: true, RoundDigits: 1}, nil},
		{"top1", serve.Config{ExposeScores: true, TopK: 1}, nil},
		{"ratelimited", serve.Config{ExposeScores: true}, &serve.RateLimit{Budget: extAttackBudget}},
		{"labelonly", serve.Config{}, nil},
	}

	var rows []ExtAttackRow
	var cells [][]string
	for _, cb := range combos {
		rec := core.TrainRectifier(ds, bb, cb.design, train)
		v, err := core.Deploy(bb, rec, ds.Graph, enclaveDefaultCost())
		if err != nil {
			panic(fmt.Sprintf("experiments: ExtAttack deploy %s: %v", cb.design, err))
		}
		if err := v.SetCalibrationFeatures(ds.X); err != nil {
			panic(fmt.Sprintf("experiments: ExtAttack calibration %s: %v", cb.design, err))
		}
		reg := registry.New(v.Enclave, registry.Config{
			WorkspacesPerVault: 2,
			Plan:               core.PlanConfig{Precision: cb.prec},
			// Fanout 0: exact L-hop extraction, so the sweep is
			// deterministic in its seeds.
			NodeQuery: &registry.NodeQueryConfig{Hops: 2, Fanout: 0, MaxSeeds: 16, Seed: 5},
		})
		id := name + "/" + string(cb.design)
		if err := reg.Register(id, v); err != nil {
			panic(fmt.Sprintf("experiments: ExtAttack register: %v", err))
		}
		if err := reg.EnableNodeQueries(id, ds.X); err != nil {
			panic(fmt.Sprintf("experiments: ExtAttack node queries: %v", err))
		}

		for _, d := range defenses {
			scfg := d.scfg
			scfg.Workers = 1 // deterministic replay order
			srv := serve.NewMulti(reg, scfg)
			api := serve.NewAPI(srv, reg, serve.APIConfig{
				Vaults: []serve.APIVault{
					{ID: id, Dataset: name, Design: string(cb.design), Nodes: ds.Graph.N()},
				},
				Features:    func(string) *mat.Matrix { return ds.X },
				NodeQueries: true,
				Limit:       d.limit,
			})
			surface := privharness.SurfaceScores
			if !scfg.ExposeScores {
				surface = privharness.SurfaceLabels
			}
			tr := &privharness.Trace{}
			tc := &privharness.Traced{Inner: &privharness.InProc{API: api}, Trace: tr}

			lsFull, err := privharness.StealLinks(tc, "link-full", id, ds.Graph.N(), sample, privharness.LinkStealConfig{
				Surface: surface, Path: privharness.PathFull, Classes: ds.NumClasses, BatchSize: 16,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: ExtAttack link-steal full %s/%s: %v", cb.design, d.name, err))
			}
			lsSub, err := privharness.StealLinks(tc, "link-sub", id, ds.Graph.N(), sample, privharness.LinkStealConfig{
				Surface: surface, Path: privharness.PathSubgraph, Classes: ds.NumClasses, BatchSize: 16,
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: ExtAttack link-steal subgraph %s/%s: %v", cb.design, d.name, err))
			}
			ext, err := privharness.ExtractModel(tc, "extract", id, ds.X, nil, privharness.ExtractConfig{
				Surface: surface, Path: privharness.PathFull, Classes: ds.NumClasses,
				Budget: extAttackNodes, BatchSize: 16, Seed: 9, Eval: eval,
				Train: attack.ExtractionConfig{HiddenDims: []int{16}, Epochs: 40, LR: 0.02, Seed: 3},
			})
			if err != nil {
				panic(fmt.Sprintf("experiments: ExtAttack extraction %s/%s: %v", cb.design, d.name, err))
			}
			srv.Close()

			perf := tr.Perf()
			r := ExtAttackRow{
				Dataset: name, Design: string(cb.design), Precision: cb.prec.String(),
				Defense: d.name, Surface: surface,
				LinkAUCFull:     lsFull.AUC,
				BestLinkAUCFull: lsFull.BestAUC,
				BestLinkAUCSub:  lsSub.BestAUC,
				Fidelity:        ext.Fidelity,
				LinkQueries:     lsFull.Queries + lsSub.Queries,
				ExtractQueries:  ext.Queries,
				Observed:        ext.Observed,
				RateLimited:     lsFull.Limited || lsSub.Limited || ext.Limited,
				ReqPerSec:       perf.ReqPerSec,
				P99MS:           perf.P99MS,
			}
			rows = append(rows, r)
			cells = append(cells, []string{string(cb.design), cb.prec.String(), d.name,
				fmt.Sprintf("%.3f", r.BestLinkAUCFull), fmt.Sprintf("%.3f", r.BestLinkAUCSub),
				fmt.Sprintf("%.3f", r.Fidelity), fmt.Sprintf("%d", r.Observed),
				fmt.Sprintf("%.0f", r.ReqPerSec), fmt.Sprintf("%.2f", r.P99MS),
				fmt.Sprintf("%v", r.RateLimited)})
		}
		reg.Close()
		v.Undeploy()
	}
	text := "Ext: attack strength vs serving defenses, every query through the served API\n" +
		table([]string{"Design", "Prec", "Defense", "AUC(full)", "AUC(sub)", "Fidelity", "obs", "req/s", "p99ms", "limited"}, cells)
	return rows, text
}
