package experiments

import (
	"fmt"
	"time"

	"gnnvault/internal/attack"
	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
	"gnnvault/internal/subgraph"
	"gnnvault/internal/substitute"
)

// The experiments in this file go beyond the paper's evaluation:
// ExtArchitectures implements its stated future work (GraphSAGE and GAT
// under the GNNVault strategy), and ExtLabelOnly quantifies the Sec. IV-E
// design decision to keep logits inside the enclave.

// ExtArchRow is one (dataset, architecture) result.
type ExtArchRow struct {
	Dataset string
	Conv    core.ConvKind
	POrg    float64
	PBB     float64
	PRec    float64
}

// ExtArchitectures runs the GNNVault pipeline with GCN, GraphSAGE, and GAT
// convolutions (backbone and rectifier alike) — the paper's future-work
// section realised. The partition-before-training strategy should hold for
// every architecture: p_bb ≪ p_rec ≈ p_org.
func ExtArchitectures(opts Options) ([]ExtArchRow, string) {
	opts = opts.normalise()
	names := opts.Datasets
	if len(names) > 2 {
		names = names[:2]
	}
	var rows []ExtArchRow
	var cells [][]string
	for _, name := range names {
		ds := datasets.Load(name)
		for _, conv := range core.ConvKinds {
			spec := core.SpecForDataset(name)
			spec.Conv = conv
			cfg := core.PipelineConfig{
				Spec: spec, Design: core.Parallel,
				SubKind: substitute.KindKNN, KNNK: 2,
				Train: opts.train(),
			}
			res := core.RunPipeline(ds, cfg)
			row := ExtArchRow{
				Dataset: name, Conv: conv,
				POrg: res.POrg, PBB: res.PBB, PRec: res.PRec,
			}
			rows = append(rows, row)
			cells = append(cells, []string{name, string(conv),
				pct(row.POrg), pct(row.PBB), pct(row.PRec), pct(row.PRec - row.PBB)})
		}
	}
	text := "Extension — GNNVault across architectures (future work of the paper)\n" +
		table([]string{"Dataset", "Conv", "p_org", "p_bb", "p_rec", "Δp"}, cells)
	return rows, text
}

// ExtLabelOnlyRow quantifies one output-exposure policy.
type ExtLabelOnlyRow struct {
	Dataset string
	Surface string // what the attacker observes
	// WorstAUC is the maximum link-stealing AUC across the six metrics.
	WorstAUC float64
}

// ExtLabelOnly justifies the paper's label-only output rule (Sec. IV-E):
// it mounts the link-stealing attack on three progressively smaller
// observation surfaces of the *protected* deployment — all backbone
// embeddings, the rectified logits (as if the enclave returned them), and
// the rectified labels alone (one-hot encoded). Logit exposure re-leaks
// edge information that the enclave isolation had removed; labels leak the
// least.
func ExtLabelOnly(opts Options) ([]ExtLabelOnlyRow, string) {
	opts = opts.normalise()
	names := opts.Datasets
	if len(names) > 1 {
		names = names[:1]
	}
	var rows []ExtLabelOnlyRow
	var cells [][]string
	for _, name := range names {
		ds := datasets.Load(name)
		cfg := core.PipelineConfig{
			Spec: core.SpecForDataset(name), Design: core.Parallel,
			SubKind: substitute.KindKNN, KNNK: 2,
			Train: opts.train(), SkipOriginal: true,
		}
		res := core.RunPipeline(ds, cfg)
		sample := attack.SamplePairs(ds.Graph, opts.AttackPairs, opts.Seed+42)

		recActs := core.RectifierActivations(ds, res.Backbone, res.Rectifier)
		logits := recActs[len(recActs)-1]
		labels := oneHot(logits.ArgmaxRows(), ds.NumClasses)

		surfaces := []struct {
			name string
			obs  []*mat.Matrix
		}{
			{"backbone embeddings (deployed)", res.Backbone.Embeddings(ds.X)},
			{"rectified logits (if leaked)", []*mat.Matrix{logits}},
			{"labels only (paper's policy)", []*mat.Matrix{labels}},
		}
		for _, s := range surfaces {
			worst := 0.0
			for _, m := range attack.Metrics {
				if auc := attack.AUC(m, s.obs, sample); auc > worst {
					worst = auc
				}
			}
			rows = append(rows, ExtLabelOnlyRow{Dataset: name, Surface: s.name, WorstAUC: worst})
			cells = append(cells, []string{name, s.name, fmt.Sprintf("%.3f", worst)})
		}
	}
	text := "Extension — output exposure vs link leakage (worst AUC over 6 metrics)\n" +
		table([]string{"Dataset", "Attacker observes", "Worst AUC"}, cells)
	return rows, text
}

func oneHot(labels []int, classes int) *mat.Matrix {
	m := mat.New(len(labels), classes)
	for i, l := range labels {
		m.Set(i, l, 1)
	}
	return m
}

// ExtSilhouetteGap is a compact numeric summary of Fig. 4 used by the
// ablation bench: the silhouette gap closed by the rectifier.
func ExtSilhouetteGap(opts Options) (backbone, rectifier, original float64) {
	res, _ := Fig4(opts)
	last := func(s []float64) float64 { return s[len(s)-1] }
	return last(res.BackboneSilhouette), last(res.RectifierSilhouette), last(res.OriginalSilhouette)
}

// ExtExtractionRow is one model-extraction result.
type ExtExtractionRow struct {
	Dataset  string
	Victim   string  // what the attacker queries
	Fidelity float64 // agreement with the victim's predictions (test nodes)
	TestAcc  float64 // surrogate's own test accuracy
}

// ExtExtraction runs the model-stealing arm of the threat model: an
// attacker who can query the deployment on every node trains a surrogate
// from the responses, using only public knowledge (features + KNN
// substitute graph). Against an unprotected deployment the victim's logits
// are observable and the surrogate distils them; against GNNVault only the
// label-only output is available. The gap between the surrogate's accuracy
// and p_org is the model IP that stays protected.
func ExtExtraction(opts Options) ([]ExtExtractionRow, string) {
	opts = opts.normalise()
	names := opts.Datasets
	if len(names) > 1 {
		names = names[:1]
	}
	var rows []ExtExtractionRow
	var cells [][]string
	for _, name := range names {
		ds := datasets.Load(name)
		cfg := core.PipelineConfig{
			Spec: core.SpecForDataset(name), Design: core.Parallel,
			SubKind: substitute.KindKNN, KNNK: 2,
			Train: opts.train(),
		}
		res := core.RunPipeline(ds, cfg)
		public := substitute.KNN(ds.X, 2)
		queries := make([]int, ds.X.Rows)
		for i := range queries {
			queries[i] = i
		}
		exCfg := attack.DefaultExtractionConfig()
		exCfg.Epochs = opts.Epochs
		exCfg.Seed = opts.Seed

		// Unprotected: victim logits observable.
		origLogits := res.Original.Logits(ds.X)
		sLogit := attack.ExtractFromLogits(ds.X, public, origLogits, queries, exCfg)
		origPred := origLogits.ArgmaxRows()
		rowU := ExtExtractionRow{
			Dataset:  name,
			Victim:   "unprotected (logits)",
			Fidelity: attack.Fidelity(sLogit.Predict(ds.X), origPred, ds.TestMask),
			TestAcc:  accuracyOf(sLogit.Predict(ds.X), ds.Labels, ds.TestMask),
		}

		// GNNVault: label-only responses from the rectified model.
		recActs := core.RectifierActivations(ds, res.Backbone, res.Rectifier)
		vaultLabels := recActs[len(recActs)-1].ArgmaxRows()
		sLabel := attack.ExtractFromLabels(ds.X, public, vaultLabels, ds.NumClasses, queries, exCfg)
		rowG := ExtExtractionRow{
			Dataset:  name,
			Victim:   "GNNVault (labels only)",
			Fidelity: attack.Fidelity(sLabel.Predict(ds.X), vaultLabels, ds.TestMask),
			TestAcc:  accuracyOf(sLabel.Predict(ds.X), ds.Labels, ds.TestMask),
		}
		rows = append(rows, rowU, rowG)
		for _, r := range []ExtExtractionRow{rowU, rowG} {
			cells = append(cells, []string{name, r.Victim, pct(r.Fidelity), pct(r.TestAcc)})
		}
		cells = append(cells, []string{name, "reference p_org / p_bb",
			pct(res.POrg), pct(res.PBB)})
	}
	text := "Extension — model extraction with public knowledge only\n" +
		table([]string{"Dataset", "Victim surface", "Fidelity", "Surrogate acc"}, cells)
	return rows, text
}

func accuracyOf(pred, labels []int, mask []int) float64 {
	if len(mask) == 0 {
		return 0
	}
	ok := 0
	for _, i := range mask {
		if pred[i] == labels[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(mask))
}

// ExtStreamingRow compares the batched and streamed deployment paths of
// the parallel rectifier.
type ExtStreamingRow struct {
	Dataset      string
	Mode         string
	ECalls       int
	PeakEPCBytes int64
	Total        string
}

// ExtStreaming is the deployment-path ablation: batched transfer (all
// embeddings enter the enclave, then one compute ECALL) versus streamed
// layer-by-layer execution (one ECALL per rectifier layer, embeddings freed
// as consumed). Streamed cuts the peak EPC footprint — the constraint
// Sec. III-C is about — at no accuracy cost.
func ExtStreaming(opts Options) ([]ExtStreamingRow, string) {
	opts = opts.normalise()
	name := opts.Datasets[0]
	ds := datasets.Load(name)
	cfg := core.PipelineConfig{
		Spec: core.SpecForDataset(name), Design: core.Parallel,
		SubKind: substitute.KindKNN, KNNK: 2,
		Train: opts.train(), SkipOriginal: true,
	}
	res := core.RunPipeline(ds, cfg)
	vault, err := core.Deploy(res.Backbone, res.Rectifier, ds.Graph, enclaveDefaultCost())
	if err != nil {
		panic(fmt.Sprintf("experiments: ExtStreaming deploy: %v", err))
	}
	var rows []ExtStreamingRow
	var cells [][]string
	run := func(mode string, fn func(*mat.Matrix) ([]int, core.InferenceBreakdown, error)) {
		if _, _, err := fn(ds.X); err != nil { // warm-up
			panic(err)
		}
		_, bd, err := fn(ds.X)
		if err != nil {
			panic(err)
		}
		r := ExtStreamingRow{
			Dataset: name, Mode: mode, ECalls: bd.ECalls,
			PeakEPCBytes: bd.PeakEPCBytes, Total: bd.Total().String(),
		}
		rows = append(rows, r)
		cells = append(cells, []string{name, mode,
			fmt.Sprintf("%d", r.ECalls), mb(r.PeakEPCBytes), r.Total})
	}
	run("batched", vault.Predict)
	run("streamed", vault.PredictStreamed)
	text := "Extension — batched vs streamed parallel-rectifier deployment\n" +
		table([]string{"Dataset", "Mode", "ECALLs", "peak EPC(MB)", "total"}, cells)
	return rows, text
}

func enclaveDefaultCost() enclave.CostModel { return enclave.DefaultCostModel() }

// ExtSubgraphRow is one graph-size point of the node-level serving
// latency sweep, serialised into BENCH_subgraph.json by `make bench-json`
// so the perf trajectory is tracked across PRs.
type ExtSubgraphRow struct {
	Nodes           int     `json:"nodes"`
	DirectedEdges   int     `json:"directed_edges"`
	Hops            int     `json:"hops"`
	Fanout          int     `json:"fanout"`
	ExtractedNodes  int     `json:"extracted_nodes"`
	SubgraphQueryUS float64 `json:"subgraph_query_us"`
	FullQueryUS     float64 `json:"full_query_us"`
	Speedup         float64 `json:"speedup"`
	SubgraphEPC     int64   `json:"subgraph_epc_bytes"`
	FullEPC         int64   `json:"full_epc_bytes"`
}

// ExtSubgraph sweeps node-query latency through the subgraph engine
// against the full-graph baseline over growing power-law graphs
// (hops=2, fanout=10, 4-seed batches). Sizes come from
// Options.SubgraphSizes (default 20k and 50k — large enough to show the
// O(query) vs O(graph) separation, small enough for CI). Training is
// capped at 3 epochs: the sweep measures serving latency, not accuracy.
func ExtSubgraph(opts Options) ([]ExtSubgraphRow, string) {
	opts = opts.normalise()
	sizes := opts.SubgraphSizes
	if len(sizes) == 0 {
		sizes = []int{20_000, 50_000}
	}
	train := opts.train()
	if train.Epochs > 3 {
		train.Epochs = 3
	}
	const hops, fanout, seedBatch = 2, 10, 4

	var rows []ExtSubgraphRow
	var cells [][]string
	for _, n := range sizes {
		ds := datasets.GeneratePowerLaw(datasets.PowerLawConfig{Nodes: n, Seed: int64(n)})
		sub := graph.PreferentialAttachment(graph.PreferentialAttachmentConfig{
			Nodes: n, EdgesPerNode: 8, Seed: int64(n) + 999,
		})
		spec := core.ModelSpec{Name: "bench-pl", BackboneHidden: []int{64, 32}, RectifierHidden: []int{32, 16}}
		bb := core.TrainBackbone(ds, spec, substitute.KindRandom, sub, train)
		rec := core.TrainRectifier(ds, bb, core.Series, train)
		cost := enclaveDefaultCost()
		cost.EPCBytes = 4 << 30 // let the full-graph baseline plan at every size
		v, err := core.Deploy(bb, rec, ds.Graph, cost)
		if err != nil {
			panic(fmt.Sprintf("experiments: ExtSubgraph deploy %d: %v", n, err))
		}

		sws, err := v.PlanSubgraph(seedBatch, subgraph.Config{Hops: hops, Fanout: fanout, Seed: 1})
		if err != nil {
			panic(fmt.Sprintf("experiments: ExtSubgraph plan %d: %v", n, err))
		}
		fws, err := v.Plan(v.Nodes())
		if err != nil {
			panic(fmt.Sprintf("experiments: ExtSubgraph full plan %d: %v", n, err))
		}
		seeds := []int{n / 3, n/3 + 7, n / 2, n - 11}

		timeIt := func(reps int, f func()) float64 {
			f() // warm-up
			start := time.Now()
			for i := 0; i < reps; i++ {
				f()
			}
			return float64(time.Since(start).Microseconds()) / float64(reps)
		}
		subUS := timeIt(5, func() {
			if _, _, err := v.PredictNodesInto(ds.X, seeds, sws); err != nil {
				panic(err)
			}
		})
		fullUS := timeIt(2, func() {
			if _, _, err := v.PredictInto(ds.X, fws); err != nil {
				panic(err)
			}
		})

		r := ExtSubgraphRow{
			Nodes: n, DirectedEdges: ds.Graph.NumDirectedEdges(),
			Hops: hops, Fanout: fanout, ExtractedNodes: sws.LastExtracted(),
			SubgraphQueryUS: subUS, FullQueryUS: fullUS, Speedup: fullUS / subUS,
			SubgraphEPC: sws.EnclaveBytes(), FullEPC: fws.EnclaveBytes(),
		}
		rows = append(rows, r)
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Nodes), fmt.Sprintf("%d", r.ExtractedNodes),
			fmt.Sprintf("%.0f", r.SubgraphQueryUS), fmt.Sprintf("%.0f", r.FullQueryUS),
			fmt.Sprintf("%.1f×", r.Speedup), mb(r.SubgraphEPC), mb(r.FullEPC),
		})
		sws.Release()
		fws.Release()
		v.Undeploy()
	}
	text := "Ext: node-query latency, subgraph engine vs full-graph (hops=2, fanout=10)\n" +
		table([]string{"Nodes", "SubNodes", "sub µs/q", "full µs/q", "speedup", "subEPC(MB)", "fullEPC(MB)"}, cells)
	return rows, text
}
