package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"gnnvault/internal/exec"
	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
)

// ExtExec is the engine-level leg of the perf trajectory
// (BENCH_exec.json): it prices the PR 5 execution rewrites — epilogue
// fusion, dead-spill elimination, tile-parallel streaming — directly on an
// internal/exec program, isolated from training and serving noise, and
// since the precision tiers also the fp32/int8 kernel families. The fp64
// legs run the same GCN-shaped forward over a power-law graph in
// direct/tiled × unfused/fused modes plus the fused tile-parallel pool;
// the reduced legs run the fused program per precision (direct, tiled,
// tile-parallel) under the *same* staging budget — narrower elements buy
// proportionally taller tiles, so spill traffic and EPC shrink by the
// element width — with argmax agreement against the fp64 reference
// reported per row.

// ExtExecRow is one (mode, program, precision) point of the engine sweep.
type ExtExecRow struct {
	Nodes       int     `json:"nodes"`
	Mode        string  `json:"mode"` // direct | tiled | tiled-parallel
	Fused       bool    `json:"fused"`
	Precision   string  `json:"precision"` // fp64 | fp32 | int8
	Workers     int     `json:"workers"`
	TileRows    int     `json:"tile_rows,omitempty"`
	Ops         int     `json:"ops"`
	EpilogueOps int     `json:"epilogue_ops"` // epilogue steps folded into fused ops
	QueryUS     float64 `json:"query_us"`
	SpillBytes  int64   `json:"spill_bytes"`      // per call; 0 for direct machines
	EPCBytes    int64   `json:"epc_bytes"`        // staging (tiled) or buffers (direct)
	Agreement   float64 `json:"argmax_agreement"` // vs the fp64 direct reference
}

// extExecBudget is the per-machine staging budget of the tiled legs.
const extExecBudget = 4 << 20

// extExecProgram lowers a two-conv GCN plus dense head over a power-law
// adjacency into an exec program with deterministic weights, mirroring the
// shape core's compilers emit.
func extExecProgram(n int, seed int64) (*exec.Program, []*mat.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.PreferentialAttachment(graph.PreferentialAttachmentConfig{Nodes: n, EdgesPerNode: 8, Seed: seed})
	adj := graph.Normalize(g)
	dims := []int{64, 32, 16}
	randM := func(r, c int) *mat.Matrix {
		m := mat.New(r, c)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		return m
	}
	bld := exec.NewBuilder(n)
	v := bld.Input(dims[0])
	for l := 0; l+1 < len(dims); l++ {
		v = bld.MatMul(v, randM(dims[l], dims[l+1]))
		v = bld.SpMM(adj, v)
		v = bld.AddBias(v, randM(1, dims[l+1]).Data)
		v = bld.ReLU(v)
	}
	v = bld.MatMul(v, randM(dims[len(dims)-1], 8))
	v = bld.AddBias(v, randM(1, 8).Data)
	bld.Argmax(v)

	x := randM(n, dims[0])
	return bld.Build(), []*mat.Matrix{x}
}

// ExtExec sweeps the execution modes and precision tiers of the shared
// forward engine and returns one row per machine. Rows are deterministic
// in the seed; timing obviously is not.
func ExtExec(opts Options) ([]ExtExecRow, string) {
	opts = opts.normalise()
	n := 20_000
	if len(opts.SubgraphSizes) > 0 {
		n = opts.SubgraphSizes[0]
	}
	prog, inputs := extExecProgram(n, opts.Seed)
	fused := prog.Fused()
	labels := make([]int, n)

	// fp64 direct reference labels + int8 activation scales, derived once
	// — the same calibration a reduced core plan performs at admission.
	scales, refLabels, err := exec.CalibrateScales(fused, n, inputs)
	if err != nil {
		panic(fmt.Sprintf("experiments: ExtExec calibration: %v", err))
	}

	var rows []ExtExecRow
	var cells [][]string
	measure := func(mode string, p *exec.Program, isFused bool, cfg exec.Config) {
		m, err := p.NewMachine(cfg)
		if err != nil {
			panic(fmt.Sprintf("experiments: ExtExec %s machine: %v", mode, err))
		}
		m.Run(n, inputs, labels) // warm-up
		const reps = 3
		start := time.Now()
		for i := 0; i < reps; i++ {
			m.Run(n, inputs, labels)
		}
		us := float64(time.Since(start).Microseconds()) / reps
		epc := m.TileBytes()
		if cfg.TileRows == 0 {
			epc = m.BufferBytes()
		}
		agree := 0
		for i, l := range labels {
			if l == refLabels[i] {
				agree++
			}
		}
		r := ExtExecRow{
			Nodes: n, Mode: mode, Fused: isFused, Precision: cfg.Elem.String(),
			Workers: m.TileWorkers(), TileRows: m.TileRows(),
			Ops: len(p.Ops()), EpilogueOps: p.EpilogueOps(), QueryUS: us,
			SpillBytes: m.SpillTraffic(n), EPCBytes: epc,
			Agreement: float64(agree) / float64(n),
		}
		rows = append(rows, r)
		cells = append(cells, []string{fmt.Sprintf("%d", n), mode,
			fmt.Sprintf("%v", isFused), r.Precision, fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d+%d", r.Ops, r.EpilogueOps), fmt.Sprintf("%.0f", r.QueryUS),
			mb(r.SpillBytes), mb(r.EPCBytes), fmt.Sprintf("%.4f", r.Agreement)})
	}
	poolWorkers := runtime.GOMAXPROCS(0)
	// The same budget buys elementwise-taller tiles per precision.
	tileRowsFor := func(e exec.Elem) int {
		return extExecBudget / (e.Size() * prog.MaxWidth())
	}
	t64 := tileRowsFor(exec.F64)
	measure("direct", prog, false, exec.Config{Workers: 1})
	measure("direct", fused, true, exec.Config{Workers: 1})
	measure("tiled", prog, false, exec.Config{TileRows: t64, Workers: 1})
	measure("tiled", fused, true, exec.Config{TileRows: t64, Workers: 1})
	measure("tiled-parallel", fused, true, exec.Config{TileRows: (t64 + poolWorkers - 1) / poolWorkers, Workers: poolWorkers})
	for _, e := range []exec.Elem{exec.F32, exec.I8} {
		cfg := exec.Config{Elem: e}
		if e == exec.I8 {
			cfg.Scales = scales
		}
		tr := tileRowsFor(e)
		d := cfg
		d.Workers = 1
		measure("direct", fused, true, d)
		ti := cfg
		ti.TileRows, ti.Workers = tr, 1
		measure("tiled", fused, true, ti)
		tp := cfg
		tp.TileRows, tp.Workers = (tr+poolWorkers-1)/poolWorkers, poolWorkers
		measure("tiled-parallel", fused, true, tp)
	}

	text := "Ext: shared forward engine, fusion × tiling × tile-parallelism × precision\n" +
		table([]string{"n", "mode", "fused", "prec", "workers", "ops+epi", "µs/run", "spill(MB)", "EPC(MB)", "agree"}, cells)
	return rows, text
}
