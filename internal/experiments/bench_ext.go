package experiments

import (
	"fmt"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/registry"
	"gnnvault/internal/serve"
	"gnnvault/internal/substitute"
)

// The perf-trajectory experiments behind `make bench-json`: ExtSubgraph
// (extensions.go) covers node-level queries; the two sweeps here cover the
// other serving surfaces — full-graph PredictInto through the tiled
// engine (BENCH_core.json) and multi-vault registry serving under EPC
// pressure (BENCH_serve.json) — so every hot path leaves a JSON artifact
// to diff across PRs.

// ExtCoreRow is one (design, plan shape) point of the full-graph
// inference sweep.
type ExtCoreRow struct {
	Dataset     string  `json:"dataset"`
	Design      string  `json:"design"`
	Nodes       int     `json:"nodes"`
	Mode        string  `json:"mode"` // untiled | tiled
	EPCBudgetMB int64   `json:"epc_budget_mb,omitempty"`
	TileRows    int     `json:"tile_rows,omitempty"`
	QueryUS     float64 `json:"query_us"`
	EPCBytes    int64   `json:"epc_bytes"`
}

// extCoreBudget is the per-workspace budget the tiled leg of ExtCore runs
// under: small enough that every design actually tiles on cora, large
// enough to stay well above one row.
const extCoreBudget = 1 << 20

// ExtCore sweeps steady-state full-graph PredictInto latency and
// enclave-charged bytes across the three rectifier designs, each measured
// through an untiled plan and through a tile-streamed plan under a 1 MB
// EPC budget. The pair prices the tiling trade precisely: bounded enclave
// bytes against the extra staging copies. Training is capped at 3 epochs —
// the sweep measures serving, not accuracy.
func ExtCore(opts Options) ([]ExtCoreRow, string) {
	opts = opts.normalise()
	name := opts.Datasets[0]
	ds := datasets.Load(name)
	train := opts.train()
	if train.Epochs > 3 {
		train.Epochs = 3
	}
	spec := core.SpecForDataset(name)
	bb := core.TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), train)

	var rows []ExtCoreRow
	var cells [][]string
	for _, design := range core.Designs {
		rec := core.TrainRectifier(ds, bb, design, train)
		v, err := core.Deploy(bb, rec, ds.Graph, enclaveDefaultCost())
		if err != nil {
			panic(fmt.Sprintf("experiments: ExtCore deploy %s: %v", design, err))
		}
		measure := func(mode string, cfg core.PlanConfig) {
			ws, err := v.PlanWith(v.Nodes(), cfg)
			if err != nil {
				panic(fmt.Sprintf("experiments: ExtCore plan %s/%s: %v", design, mode, err))
			}
			defer ws.Release()
			predict := func() {
				if _, _, err := v.PredictInto(ds.X, ws); err != nil {
					panic(err)
				}
			}
			predict() // warm-up
			const reps = 5
			start := time.Now()
			for i := 0; i < reps; i++ {
				predict()
			}
			us := float64(time.Since(start).Microseconds()) / reps
			r := ExtCoreRow{
				Dataset: name, Design: string(design), Nodes: v.Nodes(),
				Mode: mode, QueryUS: us, EPCBytes: ws.EnclaveBytes(),
				TileRows: ws.TileRows(),
			}
			if cfg.EPCBudgetBytes > 0 {
				r.EPCBudgetMB = cfg.EPCBudgetBytes >> 20
			}
			rows = append(rows, r)
			cells = append(cells, []string{name, string(design), mode,
				fmt.Sprintf("%.0f", r.QueryUS), mb(r.EPCBytes), fmt.Sprintf("%d", r.TileRows)})
		}
		measure("untiled", core.PlanConfig{})
		measure("tiled", core.PlanConfig{EPCBudgetBytes: extCoreBudget})
		v.Undeploy()
	}
	text := "Ext: full-graph PredictInto, untiled vs tile-streamed (1 MB workspace budget)\n" +
		table([]string{"Dataset", "Design", "Mode", "µs/query", "EPC(MB)", "tileRows"}, cells)
	return rows, text
}

// ExtServeRow is one (plan shape) point of the registry serving sweep.
type ExtServeRow struct {
	Dataset       string  `json:"dataset"`
	Vaults        int     `json:"vaults"`
	Mode          string  `json:"mode"` // untiled | tiled
	Requests      uint64  `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	AvgLatencyUS  float64 `json:"avg_latency_us"`
	Plans         uint64  `json:"plans"`
	Evictions     uint64  `json:"evictions"`
	EPCUsedMB     float64 `json:"epc_used_mb"`
}

// ExtServe drives a synthetic request stream across a multi-vault
// registry fleet whose EPC admits every vault's persistent state but only
// ONE untiled workspace — the oversubscribed regime PR 2 priced — first
// with classic untiled plans (plan/evict churn on every vault switch),
// then with tile-streamed plans under a small per-workspace budget (the
// whole fleet stays resident). The plans/evictions columns are the EPC
// cliff flipping.
func ExtServe(opts Options) ([]ExtServeRow, string) {
	opts = opts.normalise()
	name := opts.Datasets[0]
	ds := datasets.Load(name)
	train := opts.train()
	if train.Epochs > 3 {
		train.Epochs = 3
	}
	spec := core.SpecForDataset(name)
	bb := core.TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), train)
	recs := map[core.RectifierDesign]*core.Rectifier{}
	for _, design := range core.Designs {
		recs[design] = core.TrainRectifier(ds, bb, design, train)
	}

	// Probe one roomy deployment for the two EPC quanta, then size the
	// shared enclave to fleet persistents + one untiled workspace.
	probe, err := core.Deploy(bb, recs[core.Parallel], ds.Graph, enclaveDefaultCost())
	if err != nil {
		panic(fmt.Sprintf("experiments: ExtServe probe deploy: %v", err))
	}
	persist := probe.PersistentBytes()
	pws, err := probe.Plan(probe.Nodes())
	if err != nil {
		panic(fmt.Sprintf("experiments: ExtServe probe plan: %v", err))
	}
	wsBytes := pws.EnclaveBytes()
	pws.Release()
	probe.Undeploy()

	const clients, perClient = 4, 12
	var rows []ExtServeRow
	var cells [][]string
	run := func(mode string, plan core.PlanConfig) {
		cost := enclaveDefaultCost()
		cost.EPCBytes = int64(len(recs))*persist + wsBytes + wsBytes/2
		var identities [][]byte
		for _, design := range core.Designs {
			identities = append(identities, recs[design].Identity())
		}
		encl := enclave.New(cost, identities...)
		reg := registry.New(encl, registry.Config{WorkspacesPerVault: 1, Plan: plan})
		var ids []string
		for _, design := range core.Designs {
			v, err := core.DeployInto(encl, bb, recs[design], ds.Graph)
			if err != nil {
				panic(fmt.Sprintf("experiments: ExtServe deploy %s: %v", design, err))
			}
			id := name + "/" + string(design)
			if err := reg.Register(id, v); err != nil {
				panic(err)
			}
			ids = append(ids, id)
		}
		srv := serve.NewMulti(reg, serve.Config{Workers: 2, MaxBatch: 4})
		start := time.Now()
		done := make(chan error, clients)
		for c := 0; c < clients; c++ {
			go func(c int) {
				for r := 0; r < perClient; r++ {
					if _, err := srv.Predict(ids[(c+r)%len(ids)], ds.X); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}(c)
		}
		for c := 0; c < clients; c++ {
			if err := <-done; err != nil {
				panic(fmt.Sprintf("experiments: ExtServe %s stream: %v", mode, err))
			}
		}
		wall := time.Since(start)
		st := srv.Stats()
		rst := reg.Stats()
		srv.Close()
		reg.Close()
		r := ExtServeRow{
			Dataset: name, Vaults: len(ids), Mode: mode,
			Requests:      st.Completed,
			ThroughputRPS: float64(st.Completed) / wall.Seconds(),
			AvgLatencyUS:  float64(st.AvgLatency.Microseconds()),
			Plans:         rst.Plans, Evictions: rst.Evictions,
			EPCUsedMB: float64(rst.EPCUsed) / (1 << 20),
		}
		rows = append(rows, r)
		cells = append(cells, []string{name, mode, fmt.Sprintf("%d", r.Requests),
			fmt.Sprintf("%.1f", r.ThroughputRPS), fmt.Sprintf("%.0f", r.AvgLatencyUS),
			fmt.Sprintf("%d", r.Plans), fmt.Sprintf("%d", r.Evictions)})
	}
	run("untiled", core.PlanConfig{})
	run("tiled", core.PlanConfig{EPCBudgetBytes: wsBytes / 8})
	text := "Ext: registry serving under EPC pressure, untiled vs tiled workspaces\n" +
		table([]string{"Dataset", "Mode", "req", "req/s", "avg µs", "plans", "evictions"}, cells)
	return rows, text
}
