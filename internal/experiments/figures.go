package experiments

import (
	"fmt"
	"time"

	"gnnvault/internal/core"
	"gnnvault/internal/datasets"
	"gnnvault/internal/enclave"
	"gnnvault/internal/graph"
	"gnnvault/internal/mat"
	"gnnvault/internal/metrics"
	"gnnvault/internal/substitute"
)

// Fig4Result carries the per-layer silhouette series of Fig. 4 plus t-SNE
// CSVs of the final embeddings for plotting.
type Fig4Result struct {
	Dataset string
	// Layer silhouette series, one value per GCN block, for the three
	// models the figure compares.
	OriginalSilhouette  []float64
	BackboneSilhouette  []float64
	RectifierSilhouette []float64
	// Test accuracies annotated on the figure.
	POrg, PBB, PRec float64
	// t-SNE CSVs ("x,y,label") of each model's last-hidden embedding.
	OriginalTSNE, BackboneTSNE, RectifierTSNE string
}

// Fig4 reproduces Fig. 4: layer-by-layer latent-space rectification on
// Cora with a parallel rectifier. The silhouette of the rectifier's
// embeddings should climb toward the original model's while the backbone's
// stays low.
func Fig4(opts Options) (*Fig4Result, string) {
	opts = opts.normalise()
	name := "cora"
	if len(opts.Datasets) > 0 {
		name = opts.Datasets[0]
	}
	ds := datasets.Load(name)
	spec := core.SpecForDataset(name)
	train := opts.train()

	orig := core.TrainOriginal(ds, spec, train)
	bb := core.TrainBackbone(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, 2), train)
	rec := core.TrainRectifier(ds, bb, core.Parallel, train)

	res := &Fig4Result{
		Dataset: name,
		POrg:    orig.TestAccuracy(ds.X, ds.Labels, ds.TestMask),
		PBB:     bb.TestAccuracy(ds.X, ds.Labels, ds.TestMask),
		PRec:    core.RectifierAccuracy(ds, bb, rec, ds.TestMask),
	}
	for _, e := range orig.Embeddings(ds.X) {
		res.OriginalSilhouette = append(res.OriginalSilhouette, metrics.Silhouette(e, ds.Labels))
	}
	bbEmbs := bb.Embeddings(ds.X)
	for _, e := range bbEmbs {
		res.BackboneSilhouette = append(res.BackboneSilhouette, metrics.Silhouette(e, ds.Labels))
	}
	for _, e := range core.RectifierActivations(ds, bb, rec) {
		res.RectifierSilhouette = append(res.RectifierSilhouette, metrics.Silhouette(e, ds.Labels))
	}

	// Exact t-SNE is O(n²·iters); subsample nodes for the visual panels so
	// Fig. 4 stays cheap (the silhouette series above uses all nodes).
	tsneCfg := metrics.TSNEConfig{Perplexity: 20, Iterations: 250, Seed: opts.Seed}
	sampleIdx := tsneSample(ds.Graph.N(), 300)
	sampleLabels := make([]int, len(sampleIdx))
	for i, j := range sampleIdx {
		sampleLabels[i] = ds.Labels[j]
	}
	origEmbs := orig.Embeddings(ds.X)
	recActs := core.RectifierActivations(ds, bb, rec)
	embed := func(m *mat.Matrix) string {
		return metrics.TSNEToCSV(metrics.TSNE(m.SelectRows(sampleIdx), tsneCfg), sampleLabels)
	}
	res.OriginalTSNE = embed(origEmbs[len(origEmbs)-2])
	res.BackboneTSNE = embed(bbEmbs[len(bbEmbs)-2])
	res.RectifierTSNE = embed(recActs[len(recActs)-1])

	var cells [][]string
	maxLen := len(res.OriginalSilhouette)
	if len(res.RectifierSilhouette) > maxLen {
		maxLen = len(res.RectifierSilhouette)
	}
	for i := 0; i < maxLen; i++ {
		get := func(s []float64) string {
			if i < len(s) {
				return fmt.Sprintf("%.3f", s[i])
			}
			return "-"
		}
		cells = append(cells, []string{
			fmt.Sprintf("gconv %d", i+1),
			get(res.OriginalSilhouette), get(res.BackboneSilhouette), get(res.RectifierSilhouette),
		})
	}
	text := fmt.Sprintf("Fig. 4 — silhouette per layer on %s (acc: org %.1f%%, bb %.1f%%, rec %.1f%%)\n",
		name, res.POrg*100, res.PBB*100, res.PRec*100) +
		table([]string{"Layer", "original", "backbone", "rectifier"}, cells)
	return res, text
}

// Fig5Point is one sweep sample: a substitute-graph hyperparameter value
// and the resulting backbone/rectified accuracies.
type Fig5Point struct {
	Param     float64
	PBB, PRec float64
}

// Fig5Result holds the three ablation sweeps for one dataset.
type Fig5Result struct {
	Dataset     string
	KNNK        []Fig5Point // vs k
	CosineTau   []Fig5Point // vs τ
	RandomRatio []Fig5Point // vs fraction of real edge count
}

// Fig5Sweeps are the default hyperparameter grids of the ablation.
var (
	Fig5KValues     = []float64{1, 2, 3, 4, 6, 8}
	Fig5TauValues   = []float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8}
	Fig5RandomFracs = []float64{0.05, 0.25, 0.5, 1.0, 2.0}
)

// Fig5 reproduces Fig. 5: the impact of each substitute graph's
// hyperparameter on p_bb and p_rec (parallel rectifier).
func Fig5(opts Options) ([]Fig5Result, string) {
	opts = opts.normalise()
	names := opts.Datasets
	if len(names) > 2 {
		names = names[:2] // the paper sweeps Cora and Citeseer
	}
	train := opts.train()
	var results []Fig5Result
	text := "Fig. 5 — substitute graph hyperparameter sweeps\n"

	run := func(ds *datasets.Dataset, spec core.ModelSpec, kind substitute.Kind, sub *graph.Graph) Fig5Point {
		bb := core.TrainBackbone(ds, spec, kind, sub, train)
		rec := core.TrainRectifier(ds, bb, core.Parallel, train)
		return Fig5Point{
			PBB:  bb.TestAccuracy(ds.X, ds.Labels, ds.TestMask),
			PRec: core.RectifierAccuracy(ds, bb, rec, ds.TestMask),
		}
	}

	for _, name := range names {
		ds := datasets.Load(name)
		spec := core.SpecForDataset(name)
		res := Fig5Result{Dataset: name}

		var cells [][]string
		for _, k := range Fig5KValues {
			p := run(ds, spec, substitute.KindKNN, substitute.KNN(ds.X, int(k)))
			p.Param = k
			res.KNNK = append(res.KNNK, p)
			cells = append(cells, []string{"knn", fmt.Sprintf("k=%.0f", k), pct(p.PBB), pct(p.PRec)})
		}
		for _, tau := range Fig5TauValues {
			p := run(ds, spec, substitute.KindCosine, substitute.Cosine(ds.X, tau))
			p.Param = tau
			res.CosineTau = append(res.CosineTau, p)
			cells = append(cells, []string{"cosine", fmt.Sprintf("τ=%.2f", tau), pct(p.PBB), pct(p.PRec)})
		}
		for _, frac := range Fig5RandomFracs {
			sub := substitute.Random(ds.X.Rows, ds.Graph.NumUndirectedEdges(), frac, opts.Seed)
			p := run(ds, spec, substitute.KindRandom, sub)
			p.Param = frac
			res.RandomRatio = append(res.RandomRatio, p)
			cells = append(cells, []string{"random", fmt.Sprintf("%.0f%% edges", frac*100), pct(p.PBB), pct(p.PRec)})
		}
		results = append(results, res)
		text += "\n" + name + ":\n" + table([]string{"Graph", "Param", "p_bb", "p_rec"}, cells)
	}
	return results, text
}

// Fig6Row is one (model, design) inference measurement of Fig. 6.
type Fig6Row struct {
	Model   string // M1/M2/M3
	Dataset string
	Design  core.RectifierDesign

	Backbone time.Duration
	Transfer time.Duration
	Enclave  time.Duration
	Total    time.Duration

	UnprotectedCPU time.Duration
	OverheadPct    float64 // (Total-Unprotected)/Unprotected × 100

	EnclaveMemBytes   int64
	FullModelMemBytes int64
	FitsEPC           bool
}

// Fig6Pairs maps the paper's model/dataset pairing: M1 on Cora, M2 on
// CoraFull, M3 on Amazon Computer.
var Fig6Pairs = []struct{ Model, Dataset string }{
	{"M1", "cora"}, {"M2", "corafull"}, {"M3", "computer"},
}

// Fig6 reproduces Fig. 6: the inference-time breakdown
// (backbone/transfer/enclave) and enclave memory usage for the three model
// families × three rectifier designs, against the unprotected CPU baseline.
func Fig6(opts Options) ([]Fig6Row, string) {
	opts = opts.normalise()
	train := opts.train()
	var rows []Fig6Row
	var cells [][]string
	for _, pair := range Fig6Pairs {
		if !contains(opts.Datasets, pair.Dataset) {
			continue
		}
		ds := datasets.Load(pair.Dataset)
		spec := core.SpecByName(pair.Model)
		orig := core.TrainOriginal(ds, spec, train)
		_, unprotected := core.UnprotectedInference(orig, ds.X)
		sub := substitute.KNN(ds.X, 2)
		bb := core.TrainBackbone(ds, spec, substitute.KindKNN, sub, train)

		for _, design := range core.Designs {
			rec := core.TrainRectifier(ds, bb, design, train)
			vault, err := core.Deploy(bb, rec, ds.Graph, enclave.DefaultCostModel())
			if err != nil {
				panic(fmt.Sprintf("experiments: Fig6 deploy %s/%s: %v", pair.Model, design, err))
			}
			// Warm up once, then measure.
			if _, _, err := vault.Predict(ds.X); err != nil {
				panic(fmt.Sprintf("experiments: Fig6 warmup: %v", err))
			}
			_, bd, err := vault.Predict(ds.X)
			if err != nil {
				panic(fmt.Sprintf("experiments: Fig6 predict: %v", err))
			}
			mem := core.EnclaveMemoryEstimate(rec, bb.BlockDims, ds.X.Rows)
			full := core.FullModelMemoryEstimate(orig, ds.X.Rows, ds.X.Cols)
			row := Fig6Row{
				Model: pair.Model, Dataset: pair.Dataset, Design: design,
				Backbone: bd.BackboneTime, Transfer: bd.TransferTime,
				Enclave: bd.EnclaveTime, Total: bd.Total(),
				UnprotectedCPU: unprotected,
				OverheadPct: 100 * (float64(bd.Total()) - float64(unprotected)) /
					float64(unprotected),
				EnclaveMemBytes:   mem,
				FullModelMemBytes: full,
				FitsEPC:           mem <= vault.Enclave.EPCLimit(),
			}
			rows = append(rows, row)
			cells = append(cells, []string{
				pair.Model, pair.Dataset, string(design),
				row.Backbone.String(), row.Transfer.String(), row.Enclave.String(),
				row.Total.String(), row.UnprotectedCPU.String(),
				fmt.Sprintf("%+.0f%%", row.OverheadPct),
				mb(row.EnclaveMemBytes), mb(row.FullModelMemBytes),
				fmt.Sprintf("%v", row.FitsEPC),
			})
		}
	}
	text := "Fig. 6 — inference time breakdown and enclave memory\n" + table(
		[]string{"Model", "Dataset", "Design", "backbone", "transfer", "enclave",
			"total", "unprot CPU", "overhead", "encl mem(MB)", "full mem(MB)", "fits EPC"}, cells)
	return rows, text
}

// tsneSample returns an evenly spaced subsample of [0, n).
func tsneSample(n, max int) []int {
	if n <= max {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	idx := make([]int, max)
	for i := range idx {
		idx[i] = i * n / max
	}
	return idx
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
