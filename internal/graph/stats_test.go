package graph

import (
	"math"
	"testing"
)

func TestConnectedComponents(t *testing.T) {
	g := New(6, []Edge{{0, 1}, {1, 2}, {3, 4}})
	count, comp := ConnectedComponents(g)
	if count != 3 { // {0,1,2}, {3,4}, {5}
		t.Fatalf("components = %d, want 3", count)
	}
	if comp[0] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] || comp[5] == comp[0] {
		t.Fatalf("component ids wrong: %v", comp)
	}
}

func TestConnectedComponentsComplete(t *testing.T) {
	g := Random(10, 45, 1) // K10
	if count, _ := ConnectedComponents(g); count != 1 {
		t.Fatalf("complete graph components = %d", count)
	}
}

func TestClusteringCoefficientTriangle(t *testing.T) {
	g := New(3, []Edge{{0, 1}, {1, 2}, {2, 0}})
	if c := ClusteringCoefficient(g); math.Abs(c-1) > 1e-12 {
		t.Fatalf("triangle clustering = %v, want 1", c)
	}
}

func TestClusteringCoefficientStar(t *testing.T) {
	g := New(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if c := ClusteringCoefficient(g); c != 0 {
		t.Fatalf("star clustering = %v, want 0", c)
	}
}

func TestClusteringCoefficientEmpty(t *testing.T) {
	if c := ClusteringCoefficient(New(0, nil)); c != 0 {
		t.Fatalf("empty graph clustering = %v", c)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := New(4, []Edge{{0, 1}, {0, 2}, {0, 3}})
	hist := DegreeHistogram(g)
	// Node 0 has degree 3; nodes 1..3 degree 1.
	if hist[1] != 3 || hist[3] != 1 {
		t.Fatalf("hist = %v", hist)
	}
}

func TestBFSDistancesPath(t *testing.T) {
	g := pathGraph(5)
	dist := BFSDistances(g, 0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Fatalf("dist = %v", dist)
		}
	}
}

func TestBFSDistancesUnreachable(t *testing.T) {
	g := New(3, []Edge{{0, 1}})
	dist := BFSDistances(g, 0)
	if dist[2] != -1 {
		t.Fatalf("unreachable node dist = %d", dist[2])
	}
}

func TestEffectiveDiameterPath(t *testing.T) {
	g := pathGraph(11)
	d := EffectiveDiameter(g, 0) // all sources
	if d < 5 || d > 10 {
		t.Fatalf("path effective diameter = %d", d)
	}
}

func TestEffectiveDiameterDegenerate(t *testing.T) {
	if EffectiveDiameter(New(1, nil), 0) != 0 {
		t.Fatal("single node diameter should be 0")
	}
	if EffectiveDiameter(New(3, nil), 0) != 0 {
		t.Fatal("edgeless graph diameter should be 0")
	}
}

func TestEffectiveDiameterSampled(t *testing.T) {
	g := Random(200, 800, 2)
	full := EffectiveDiameter(g, 0)
	sampled := EffectiveDiameter(g, 20)
	if sampled < full-2 || sampled > full+2 {
		t.Fatalf("sampled diameter %d far from full %d", sampled, full)
	}
}
