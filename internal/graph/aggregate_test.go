package graph

import (
	"math"
	"math/rand"
	"testing"

	"gnnvault/internal/mat"
)

// These structural tests lived in internal/nn (next to the SAGE/GAT layers
// that consume the operators) but exercise aggregate.go exclusively, so
// they belong — and count toward coverage — here.

func TestMeanAdjacencyRowsStochastic(t *testing.T) {
	g := Random(20, 40, 1)
	agg := MeanAdjacency(g)
	for i := 0; i < 20; i++ {
		sum := 0.0
		for p := agg.RowPtr[i]; p < agg.RowPtr[i+1]; p++ {
			sum += agg.Val[p]
		}
		if g.Degree(i) == 0 {
			if sum != 0 {
				t.Fatalf("isolated node row sum = %v", sum)
			}
		} else if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sum = %v, want 1", i, sum)
		}
	}
}

func TestTransposeMatchesDense(t *testing.T) {
	g := Random(15, 30, 2)
	agg := MeanAdjacency(g)
	if !agg.Transpose().Dense().EqualApprox(agg.Dense().T(), 1e-12) {
		t.Fatal("CSR transpose disagrees with dense transpose")
	}
}

func TestSelfLoopAdjacencyStructure(t *testing.T) {
	g := New(3, []Edge{{U: 0, V: 1}})
	st := SelfLoopAdjacency(g)
	d := st.Dense()
	want := mat.FromSlice(3, 3, []float64{1, 1, 0, 1, 1, 0, 0, 0, 1})
	if !d.EqualApprox(want, 1e-12) {
		t.Fatalf("self-loop structure = %v", d.Data)
	}
}

func TestMulDenseIntoMatchesMulDense(t *testing.T) {
	for _, n := range []int{1, 17, 300} { // below and above the parallel cutover
		g := Random(n, 3*n, int64(n))
		na := Normalize(g)
		h := mat.RandNormal(rand.New(rand.NewSource(int64(n))), n, 7, 0, 1)
		want := na.MulDense(h)
		dst := mat.New(n, 7)
		dst.Data[0] = 42 // stale content must be overwritten
		na.MulDenseInto(dst, h)
		if !dst.EqualApprox(want, 1e-12) {
			t.Fatalf("n=%d: MulDenseInto disagrees with MulDense", n)
		}
		dst.Zero()
		na.MulDenseSerialInto(dst, h)
		if !dst.EqualApprox(want, 1e-12) {
			t.Fatalf("n=%d: MulDenseSerialInto disagrees with MulDense", n)
		}
	}
}

func TestMulDenseIntoAllocFree(t *testing.T) {
	g := Random(100, 300, 5)
	na := Normalize(g)
	h := mat.RandNormal(rand.New(rand.NewSource(5)), 100, 8, 0, 1)
	dst := mat.New(100, 8)
	allocs := testing.AllocsPerRun(20, func() {
		na.MulDenseSerialInto(dst, h)
	})
	if allocs > 0 {
		t.Fatalf("MulDenseSerialInto allocates %.1f objects/op", allocs)
	}
}

func TestMulDenseIntoShapeAndAliasPanics(t *testing.T) {
	g := Random(10, 20, 3)
	na := Normalize(g)
	h := mat.RandNormal(rand.New(rand.NewSource(3)), 10, 4, 0, 1)
	for name, fn := range map[string]func(){
		"bad shape": func() { na.MulDenseInto(mat.New(10, 5), h) },
		"alias":     func() { na.MulDenseInto(h, h) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}
