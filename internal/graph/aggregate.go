package graph

// Aggregation operators for the non-GCN architectures (the paper's stated
// future work: GraphSAGE and GAT). GraphSAGE needs the row-stochastic mean
// aggregator D⁻¹A, which — unlike the symmetric GCN normalisation — is not
// its own transpose, so the backward pass needs an explicit transpose
// operator.

// MeanAdjacency returns the row-normalised neighbour-mean operator D⁻¹A
// (no self loops; isolated nodes get an all-zero row). This is GraphSAGE's
// mean aggregator.
func MeanAdjacency(g *Graph) *NormAdjacency {
	n := g.N()
	na := &NormAdjacency{
		N:      n,
		RowPtr: make([]int, n+1),
		ColIdx: make([]int, 0, len(g.edges)),
		Val:    make([]float64, 0, len(g.edges)),
	}
	for u := 0; u < n; u++ {
		deg := g.Degree(u)
		if deg > 0 {
			inv := 1.0 / float64(deg)
			for _, v := range g.Neighbors(u) {
				na.ColIdx = append(na.ColIdx, v)
				na.Val = append(na.Val, inv)
			}
		}
		na.RowPtr[u+1] = len(na.ColIdx)
	}
	return na
}

// SelfLoopAdjacency returns the unnormalised adjacency structure with self
// loops and unit values, in CSR. GAT uses the *structure* (attention
// recomputes the values per forward pass).
func SelfLoopAdjacency(g *Graph) *NormAdjacency {
	n := g.N()
	na := &NormAdjacency{
		N:      n,
		RowPtr: make([]int, n+1),
		ColIdx: make([]int, 0, len(g.edges)+n),
		Val:    make([]float64, 0, len(g.edges)+n),
	}
	for u := 0; u < n; u++ {
		inserted := false
		for _, v := range g.Neighbors(u) {
			if !inserted && u < v {
				na.ColIdx = append(na.ColIdx, u)
				na.Val = append(na.Val, 1)
				inserted = true
			}
			na.ColIdx = append(na.ColIdx, v)
			na.Val = append(na.Val, 1)
		}
		if !inserted {
			na.ColIdx = append(na.ColIdx, u)
			na.Val = append(na.Val, 1)
		}
		na.RowPtr[u+1] = len(na.ColIdx)
	}
	return na
}

// Transpose returns the CSR of naᵀ. Used for backward passes through
// non-symmetric operators (mean aggregation, attention).
func (na *NormAdjacency) Transpose() *NormAdjacency {
	t := &NormAdjacency{
		N:      na.N,
		RowPtr: make([]int, na.N+1),
		ColIdx: make([]int, len(na.ColIdx)),
		Val:    make([]float64, len(na.Val)),
	}
	for _, j := range na.ColIdx {
		t.RowPtr[j+1]++
	}
	for i := 0; i < na.N; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	fill := make([]int, na.N)
	for i := 0; i < na.N; i++ {
		for p := na.RowPtr[i]; p < na.RowPtr[i+1]; p++ {
			j := na.ColIdx[p]
			pos := t.RowPtr[j] + fill[j]
			t.ColIdx[pos] = i
			t.Val[pos] = na.Val[p]
			fill[j]++
		}
	}
	return t
}
