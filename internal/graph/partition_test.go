package graph

import (
	"math"
	"math/rand"
	"testing"

	"gnnvault/internal/mat"
)

// reassemble multiplies each shard's rectangular CSR against a halo-
// extended view of h and stitches the shard outputs back into global row
// order — the exact data movement the fleet's halo op performs.
func reassemble(t *testing.T, p *Partition, h *mat.Matrix) *mat.Matrix {
	t.Helper()
	n := p.Bounds[len(p.Bounds)-1]
	out := mat.New(n, h.Cols)
	for s := 0; s < p.Shards(); s++ {
		rows := p.Rows(s)
		lo := p.Bounds[s]
		ext := mat.New(rows+len(p.Halo[s]), h.Cols)
		for i := 0; i < rows; i++ {
			copy(ext.Data[i*h.Cols:(i+1)*h.Cols], h.Data[(lo+i)*h.Cols:(lo+i+1)*h.Cols])
		}
		for k, c := range p.Halo[s] {
			copy(ext.Data[(rows+k)*h.Cols:(rows+k+1)*h.Cols], h.Data[c*h.Cols:(c+1)*h.Cols])
		}
		dst := mat.New(rows, h.Cols)
		p.CSR[s].MulDenseRangeInto(dst, ext, 0, rows)
		copy(out.Data[lo*h.Cols:(lo+rows)*h.Cols], dst.Data)
	}
	return out
}

func TestPartition(t *testing.T) {
	hub := make([]Edge, 0, 9)
	for v := 1; v < 10; v++ {
		hub = append(hub, Edge{0, v})
	}
	rng := rand.New(rand.NewSource(7))
	skewed := make([]Edge, 0, 600)
	for i := 0; i < 300; i++ {
		// Power-law-ish: low-id nodes soak up most edges.
		u := rng.Intn(1 + rng.Intn(40))
		v := rng.Intn(200)
		if u != v {
			skewed = append(skewed, Edge{u, v})
		}
	}
	cases := []struct {
		name   string
		graph  *Graph
		shards int
	}{
		{"path/1shard", New(6, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}), 1},
		{"path/3shards", New(6, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}), 3},
		{"singleton", New(1, nil), 2},
		{"edgeless", New(5, nil), 3},
		{"hub/2shards", New(10, hub), 2},
		{"hub/4shards", New(10, hub), 4},
		{"shards>rows", New(3, []Edge{{0, 1}, {1, 2}}), 8},
		{"skewed/4shards", New(200, skewed), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			na := Normalize(tc.graph)
			p := NewPartition(na, tc.shards)
			if got := p.Shards(); got != tc.shards {
				t.Fatalf("Shards() = %d, want %d", got, tc.shards)
			}
			if p.Bounds[0] != 0 || p.Bounds[tc.shards] != na.N {
				t.Fatalf("bounds %v do not cover [0,%d)", p.Bounds, na.N)
			}
			for s := 0; s < tc.shards; s++ {
				lo, hi := p.Bounds[s], p.Bounds[s+1]
				if lo > hi {
					t.Fatalf("shard %d bounds [%d,%d) decrease", s, lo, hi)
				}
				csr := p.CSR[s]
				if csr.N != hi-lo {
					t.Fatalf("shard %d CSR rows %d, want %d", s, csr.N, hi-lo)
				}
				if want := (hi - lo) + len(p.Halo[s]); csr.ColCount() != want {
					t.Fatalf("shard %d ColCount %d, want %d", s, csr.ColCount(), want)
				}
				if csr.ValMaxAbs() != na.ValMaxAbs() {
					t.Fatalf("shard %d ValMaxAbs %g != parent %g", s, csr.ValMaxAbs(), na.ValMaxAbs())
				}
				prev := -1
				for _, c := range p.Halo[s] {
					if c >= lo && c < hi {
						t.Fatalf("shard %d halo col %d inside own range [%d,%d)", s, c, lo, hi)
					}
					if c <= prev {
						t.Fatalf("shard %d halo %v not sorted/deduped", s, p.Halo[s])
					}
					prev = c
				}
				// Every remapped non-zero round-trips to its global column.
				for i := 0; i < csr.N; i++ {
					for q := csr.RowPtr[i]; q < csr.RowPtr[i+1]; q++ {
						gq := na.RowPtr[lo] + q
						var global int
						if c := csr.ColIdx[q]; c < csr.N {
							global = lo + c
						} else {
							global = p.Halo[s][c-csr.N]
						}
						if global != na.ColIdx[gq] {
							t.Fatalf("shard %d row %d nnz %d remaps to %d, want %d", s, i, q, global, na.ColIdx[gq])
						}
						if csr.Val[q] != na.Val[gq] {
							t.Fatalf("shard %d row %d nnz %d value %g, want %g", s, i, q, csr.Val[q], na.Val[gq])
						}
					}
				}
			}
			for i := 0; i < na.N; i++ {
				s := p.Owner(i)
				if i < p.Bounds[s] || i >= p.Bounds[s+1] {
					t.Fatalf("Owner(%d) = %d with bounds %v", i, s, p.Bounds)
				}
			}
			if na.N == 0 {
				return
			}
			// Sharded SpMM through the halo-extended operands must be
			// bit-identical to the unsharded product.
			h := mat.New(na.N, 3)
			for i := range h.Data {
				h.Data[i] = rng.NormFloat64()
			}
			want := na.MulDenseSerial(h)
			got := reassemble(t, p, h)
			for i, v := range want.Data {
				if math.Float64bits(v) != math.Float64bits(got.Data[i]) {
					t.Fatalf("element %d: sharded %g != unsharded %g", i, got.Data[i], v)
				}
			}
		})
	}
}

func TestPartitionRejectsBadInput(t *testing.T) {
	na := Normalize(New(4, []Edge{{0, 1}, {2, 3}}))
	mustPanic(t, func() { NewPartition(na, 0) })
	p := NewPartition(na, 2)
	mustPanic(t, func() { p.Owner(-1) })
	mustPanic(t, func() { p.Owner(4) })
	mustPanic(t, func() { NewPartition(p.CSR[0], 2) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
