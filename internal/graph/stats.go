package graph

// Analysis utilities used to characterise the synthetic datasets against
// their published originals (DESIGN.md's substitution argument) and by the
// CLI's info command.

// ConnectedComponents returns the number of connected components and a
// per-node component id.
func ConnectedComponents(g *Graph) (count int, component []int) {
	n := g.N()
	component = make([]int, n)
	for i := range component {
		component[i] = -1
	}
	var stack []int
	for start := 0; start < n; start++ {
		if component[start] != -1 {
			continue
		}
		component[start] = count
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, v := range g.Neighbors(u) {
				if component[v] == -1 {
					component[v] = count
					stack = append(stack, v)
				}
			}
		}
		count++
	}
	return count, component
}

// ClusteringCoefficient returns the mean local clustering coefficient:
// for each node, the fraction of its neighbour pairs that are themselves
// connected (0 for nodes of degree < 2).
func ClusteringCoefficient(g *Graph) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	total := 0.0
	for u := 0; u < n; u++ {
		nb := g.Neighbors(u)
		d := len(nb)
		if d < 2 {
			continue
		}
		links := 0
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(nb[i], nb[j]) {
					links++
				}
			}
		}
		total += 2 * float64(links) / float64(d*(d-1))
	}
	return total / float64(n)
}

// DegreeHistogram returns counts per degree, indexed by degree (the slice
// length is maxDegree+1).
func DegreeHistogram(g *Graph) []int {
	maxDeg := 0
	for u := 0; u < g.N(); u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	hist := make([]int, maxDeg+1)
	for u := 0; u < g.N(); u++ {
		hist[g.Degree(u)]++
	}
	return hist
}

// BFSDistances returns hop distances from src (-1 for unreachable nodes).
func BFSDistances(g *Graph, src int) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// EffectiveDiameter returns the 90th-percentile of finite pairwise BFS
// distances sampled from up to sampleSrc source nodes (deterministic:
// evenly spaced sources). Returns 0 for graphs with < 2 nodes.
func EffectiveDiameter(g *Graph, sampleSrc int) int {
	n := g.N()
	if n < 2 {
		return 0
	}
	if sampleSrc <= 0 || sampleSrc > n {
		sampleSrc = n
	}
	var finite []int
	for s := 0; s < sampleSrc; s++ {
		src := s * n / sampleSrc
		for _, d := range BFSDistances(g, src) {
			if d > 0 {
				finite = append(finite, d)
			}
		}
	}
	if len(finite) == 0 {
		return 0
	}
	// Counting sort up to the max distance.
	maxD := 0
	for _, d := range finite {
		if d > maxD {
			maxD = d
		}
	}
	counts := make([]int, maxD+1)
	for _, d := range finite {
		counts[d]++
	}
	target := (len(finite)*9 + 9) / 10 // ceil(0.9·n)
	seen := 0
	for d, c := range counts {
		seen += c
		if seen >= target {
			return d
		}
	}
	return maxD
}
