package graph

import (
	"fmt"
	"math"
	"sync"

	"gnnvault/internal/mat"
)

// Reduced-precision sparse products. The CSR itself stays float64 — it
// is sealed at deploy time and shared by every plan over the graph — and
// each kernel narrows (fp32) or quantizes (int8) the stored values on
// the fly, one scalar per non-zero. That keeps the families free of a
// second materialised value array, which matters for the subgraph path
// where the CSR is re-induced per query: scalar conversion is
// deterministic, so full-graph and re-induced executions of the same
// rows still agree bit-for-bit within a precision.

// ValMaxAbs returns the largest absolute stored value (0 when empty),
// the deploy/plan-time input to the int8 kernels' symmetric value scale.
// Partition shards return their parent operator's global maximum so the
// per-shard quantization codes match the unsharded run exactly.
func (na *NormAdjacency) ValMaxAbs() float64 {
	if na.valMaxAbsHint > 0 {
		return na.valMaxAbsHint
	}
	mx := 0.0
	for _, v := range na.Val {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// accumRow32 computes graph row i of Â·H into orow over float32,
// narrowing each CSR value as it is consumed. Same multi-stream axpy
// structure and per-element order as accumRow, so the fp32 bits are
// pinned across direct/tiled/banded execution.
func (na *NormAdjacency) accumRow32(orow []float32, h *mat.Matrix32, i int) {
	d := h.Cols
	p, end := na.RowPtr[i], na.RowPtr[i+1]
	switch {
	case end-p >= 4:
		c1, c2, c3, c4 := na.ColIdx[p], na.ColIdx[p+1], na.ColIdx[p+2], na.ColIdx[p+3]
		mat.Axpy4SetG(
			float32(na.Val[p]), h.Data[c1*d:(c1+1)*d],
			float32(na.Val[p+1]), h.Data[c2*d:(c2+1)*d],
			float32(na.Val[p+2]), h.Data[c3*d:(c3+1)*d],
			float32(na.Val[p+3]), h.Data[c4*d:(c4+1)*d],
			orow)
		p += 4
	case end-p >= 2:
		c1, c2 := na.ColIdx[p], na.ColIdx[p+1]
		mat.Axpy2SetG(float32(na.Val[p]), h.Data[c1*d:(c1+1)*d], float32(na.Val[p+1]), h.Data[c2*d:(c2+1)*d], orow)
		p += 2
	case end-p == 1:
		c := na.ColIdx[p]
		mat.AxpySetG(float32(na.Val[p]), h.Data[c*d:(c+1)*d], orow)
		p++
	default:
		clear(orow)
		return
	}
	for ; p+4 <= end; p += 4 {
		c1, c2, c3, c4 := na.ColIdx[p], na.ColIdx[p+1], na.ColIdx[p+2], na.ColIdx[p+3]
		mat.Axpy4G(
			float32(na.Val[p]), h.Data[c1*d:(c1+1)*d],
			float32(na.Val[p+1]), h.Data[c2*d:(c2+1)*d],
			float32(na.Val[p+2]), h.Data[c3*d:(c3+1)*d],
			float32(na.Val[p+3]), h.Data[c4*d:(c4+1)*d],
			orow)
	}
	if p+2 <= end {
		c1, c2 := na.ColIdx[p], na.ColIdx[p+1]
		mat.Axpy2G(float32(na.Val[p]), h.Data[c1*d:(c1+1)*d], float32(na.Val[p+1]), h.Data[c2*d:(c2+1)*d], orow)
		p += 2
	}
	if p < end {
		c := na.ColIdx[p]
		mat.AxpyG(float32(na.Val[p]), h.Data[c*d:(c+1)*d], orow)
	}
}

// MulDense32BiasReLURangeInto computes rows [lo, hi) of
// epilogue(Â·H) over float32 into dst ((hi-lo)×H.Cols, row 0 pairing
// with graph row lo; res aligned to dst likewise). H must span all N
// rows. The fp32 counterpart of MulDenseBiasReLURangeInto: runs inline
// on the calling goroutine and never allocates.
func (na *NormAdjacency) MulDense32BiasReLURangeInto(dst, h *mat.Matrix32, lo, hi int, bias []float32, res *mat.Matrix32, relu bool) {
	na.require32(dst, h, lo, hi, hi-lo, bias, res, "graph: MulDense32BiasReLURangeInto")
	d := h.Cols
	for i := lo; i < hi; i++ {
		drow := dst.Data[(i-lo)*d : (i-lo+1)*d]
		na.accumRow32(drow, h, i)
		if bias != nil || res != nil || relu {
			var rrow []float32
			if res != nil {
				rrow = res.Data[(i-lo)*d : (i-lo+1)*d]
			}
			mat.ApplyEpilogueRow32(drow, bias, rrow, relu)
		}
	}
}

// MulDense32BiasReLUInto is the full-height fused fp32 product dst =
// epilogue(Â·H), parallelised over nnz-balanced row bands under an
// explicit worker budget — the kernel fused OpSpMM ops run on fp32
// direct machines. res, when non-nil, must match dst's shape.
func (na *NormAdjacency) MulDense32BiasReLUInto(dst, h *mat.Matrix32, bias []float32, res *mat.Matrix32, relu bool, workers int) {
	na.require32(dst, h, 0, na.N, na.N, bias, res, "graph: MulDense32BiasReLUInto")
	w := mat.ResolveWorkers(workers, na.N)
	if w <= 1 || na.N < 256 {
		na.mulDense32Range(dst, h, 0, na.N, bias, res, relu)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := na.NNZBound(0, na.N, i, w)
		hi := na.NNZBound(0, na.N, i+1, w)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			na.mulDense32Range(dst, h, lo, hi, bias, res, relu)
		}(lo, hi)
	}
	wg.Wait()
}

// mulDense32Range accumulates rows [lo,hi) of Â·H into the same-indexed
// rows of dst with the per-row epilogue; the caller validated operands.
func (na *NormAdjacency) mulDense32Range(dst, h *mat.Matrix32, lo, hi int, bias []float32, res *mat.Matrix32, relu bool) {
	d := h.Cols
	epi := bias != nil || res != nil || relu
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*d : (i+1)*d]
		na.accumRow32(drow, h, i)
		if epi {
			var rrow []float32
			if res != nil {
				rrow = res.Data[i*d : (i+1)*d]
			}
			mat.ApplyEpilogueRow32(drow, bias, rrow, relu)
		}
	}
}

// require32 validates a fp32 kernel call: dst is dstRows×H.Cols, H spans
// all N rows, [lo,hi) in range, epilogue operands shaped, no aliasing.
// op must arrive pre-prefixed ("graph: …") so the happy path performs no
// string concatenation — these checks run on every hot-loop call.
func (na *NormAdjacency) require32(dst, h *mat.Matrix32, lo, hi, dstRows int, bias []float32, res *mat.Matrix32, op string) {
	if h.Rows != na.ColCount() {
		panic(fmt.Sprintf("%s rows %d != n %d", op, h.Rows, na.ColCount()))
	}
	if lo < 0 || hi > na.N || lo > hi {
		panic(fmt.Sprintf("%s range [%d,%d) out of [0,%d)", op, lo, hi, na.N))
	}
	if dst.Rows != dstRows || dst.Cols != h.Cols {
		panic(fmt.Sprintf("%s destination %s, want %dx%d", op, dst.Shape(), dstRows, h.Cols))
	}
	mat.RequireNoAlias32(dst, h, op)
	if bias != nil && len(bias) != dst.Cols {
		panic(fmt.Sprintf("%s bias length %d != cols %d", op, len(bias), dst.Cols))
	}
	if res != nil {
		mat.RequireNoAlias32(dst, res, op)
		if res.Rows != dst.Rows || res.Cols != dst.Cols {
			panic(fmt.Sprintf("%s residual %s != destination %s", op, res.Shape(), dst.Shape()))
		}
	}
}

// MulDenseI8EpilogueRangeInto computes rows [lo, hi) of the quantized
// product requantize(epilogue(Â·H)) into dst ((hi-lo)×H.Cols, row 0
// pairing with graph row lo). Each CSR value is quantized on the fly
// under valScale (mat.SymmetricScale of ValMaxAbs, chosen by the caller
// per Run so re-induced subgraph CSRs reuse the rule); products
// accumulate in the caller-owned int32 scratch row acc (≥ H.Cols long).
// The SpMM reduction runs over H's rows, so H's per-column scales stay
// constant inside each sum and deq[j] is simply source-column-scale[j] ×
// valScale — no folding needed, unlike MatMul. bias is the float64 bias,
// res/resScales the optional residual codes aligned to dst and their
// per-column scales, dstScales the destination value's per-column scales.
// labels, when non-nil (length ≥ hi-lo), receives each row's wide argmax
// over the pre-requantization epilogue floats (mat.ApplyEpilogueRowI8),
// labels[0] pairing with graph row lo. Runs inline on the calling
// goroutine and never allocates; int32 accumulation makes the result
// independent of tiling and banding by construction.
func (na *NormAdjacency) MulDenseI8EpilogueRangeInto(dst, h *mat.MatrixI8, lo, hi int, valScale float64, deq, bias []float64, res *mat.MatrixI8, resScales []float64, relu bool, dstScales []float64, acc []int32, labels []int) {
	if h.Rows != na.ColCount() {
		panic(fmt.Sprintf("graph: MulDenseI8EpilogueRangeInto rows %d != n %d", h.Rows, na.ColCount()))
	}
	if lo < 0 || hi > na.N || lo > hi {
		panic(fmt.Sprintf("graph: MulDenseI8EpilogueRangeInto range [%d,%d) out of [0,%d)", lo, hi, na.N))
	}
	if dst.Rows != hi-lo || dst.Cols != h.Cols {
		panic(fmt.Sprintf("graph: MulDenseI8EpilogueRangeInto destination %s, want %dx%d", dst.Shape(), hi-lo, h.Cols))
	}
	if len(deq) != h.Cols {
		panic(fmt.Sprintf("graph: MulDenseI8EpilogueRangeInto deq length %d != cols %d", len(deq), h.Cols))
	}
	if bias != nil && len(bias) != h.Cols {
		panic(fmt.Sprintf("graph: MulDenseI8EpilogueRangeInto bias length %d != cols %d", len(bias), h.Cols))
	}
	if res != nil && (res.Rows != dst.Rows || res.Cols != dst.Cols) {
		panic(fmt.Sprintf("graph: MulDenseI8EpilogueRangeInto residual %s != destination %s", res.Shape(), dst.Shape()))
	}
	if len(dstScales) != h.Cols {
		panic(fmt.Sprintf("graph: MulDenseI8EpilogueRangeInto dstScales length %d != cols %d", len(dstScales), h.Cols))
	}
	if len(acc) < h.Cols {
		panic(fmt.Sprintf("graph: MulDenseI8EpilogueRangeInto accumulator length %d < cols %d", len(acc), h.Cols))
	}
	if labels != nil && len(labels) < hi-lo {
		panic(fmt.Sprintf("graph: MulDenseI8EpilogueRangeInto labels length %d < rows %d", len(labels), hi-lo))
	}
	d := h.Cols
	for i := lo; i < hi; i++ {
		na.accumRowI8(acc[:d], h, i, valScale)
		var rrow []int8
		if res != nil {
			rrow = res.Data[(i-lo)*d : (i-lo+1)*d]
		}
		am := mat.ApplyEpilogueRowI8(dst.Data[(i-lo)*d:(i-lo+1)*d], acc, deq, bias, rrow, resScales, relu, dstScales)
		if labels != nil {
			labels[i-lo] = am
		}
	}
}

// accumRowI8 accumulates graph row i of the quantized Â·H into acc:
// each stored value is quantized to its int8 code under valScale and
// zero codes skip their row gather entirely (like matMulRow's zero-skip
// path — quantization rounds small normalised edge weights to zero,
// which the skip turns into saved work).
func (na *NormAdjacency) accumRowI8(acc []int32, h *mat.MatrixI8, i int, valScale float64) {
	d := h.Cols
	inited := false
	for p, end := na.RowPtr[i], na.RowPtr[i+1]; p < end; p++ {
		qv := mat.QuantizeI8(na.Val[p], valScale)
		if qv == 0 {
			continue
		}
		c := na.ColIdx[p]
		if inited {
			mat.AxpyI8(int32(qv), h.Data[c*d:(c+1)*d], acc)
		} else {
			mat.AxpyI8Set(int32(qv), h.Data[c*d:(c+1)*d], acc)
			inited = true
		}
	}
	if !inited {
		clear(acc)
	}
}
