package graph

import (
	"math/rand"
	"testing"

	"gnnvault/internal/mat"
)

// nnzTestAdj builds a deliberately skewed adjacency: node 0 is a hub
// connected to everyone, the tail is sparse — the power-law shape that
// breaks row-count partitions.
func nnzTestAdj(n int) *NormAdjacency {
	var edges []Edge
	for v := 1; v < n; v++ {
		edges = append(edges, Edge{U: 0, V: v})
	}
	for v := 3; v+1 < n; v += 2 {
		edges = append(edges, Edge{U: v, V: v + 1})
	}
	return Normalize(New(n, edges))
}

// TestNNZBoundPartitionProperties checks the partition contract: for any
// band and part count the boundaries are monotone, cover the band
// exactly, and split the non-zeros within one row's worth of balance.
func TestNNZBoundPartitionProperties(t *testing.T) {
	na := nnzTestAdj(101)
	for _, span := range [][2]int{{0, na.N}, {5, 90}, {40, 41}, {7, 7}} {
		lo, hi := span[0], span[1]
		for _, parts := range []int{1, 2, 3, 8, 64} {
			prev := lo
			for w := 0; w <= parts; w++ {
				b := na.NNZBound(lo, hi, w, parts)
				if b < prev || b > hi {
					t.Fatalf("span [%d,%d) parts=%d: bound %d at part %d not monotone in [%d,%d]", lo, hi, parts, b, w, prev, hi)
				}
				prev = b
			}
			if first, last := na.NNZBound(lo, hi, 0, parts), na.NNZBound(lo, hi, parts, parts); first != lo || last != hi {
				t.Fatalf("span [%d,%d) parts=%d: cover [%d,%d)", lo, hi, parts, first, last)
			}
			// Each interior band holds at most its fair share plus the
			// largest single row (rows are indivisible).
			total := na.RowPtr[hi] - na.RowPtr[lo]
			maxRow := 0
			for i := lo; i < hi; i++ {
				if r := na.RowPtr[i+1] - na.RowPtr[i]; r > maxRow {
					maxRow = r
				}
			}
			for w := 0; w < parts; w++ {
				bLo := na.NNZBound(lo, hi, w, parts)
				bHi := na.NNZBound(lo, hi, w+1, parts)
				got := na.RowPtr[bHi] - na.RowPtr[bLo]
				if fair := total/parts + maxRow; got > fair {
					t.Fatalf("span [%d,%d) parts=%d: band %d holds %d nnz, fair share+maxRow is %d", lo, hi, parts, w, got, fair)
				}
			}
		}
	}
}

// TestMulDenseNNZBalancedMatchesSerial checks the nnz-balanced parallel
// bands still compute exactly the serial product, trailing empty rows
// included.
func TestMulDenseNNZBalancedMatchesSerial(t *testing.T) {
	na := nnzTestAdj(400)
	rng := rand.New(rand.NewSource(4))
	h := mat.New(na.N, 7)
	for i := range h.Data {
		h.Data[i] = rng.NormFloat64()
	}
	want := mat.New(na.N, 7)
	na.MulDenseWorkersInto(want, h, 1)
	for _, w := range []int{2, 3, 8} {
		got := mat.New(na.N, 7)
		// Poison the buffer: unwritten rows would leak through.
		for i := range got.Data {
			got.Data[i] = 42
		}
		na.MulDenseWorkersInto(got, h, w)
		if !got.Equal(want) {
			t.Fatalf("workers=%d: nnz-balanced product differs from serial", w)
		}
	}
}

// TestMulDenseBiasReLUMatchesUnfused pins the fused sparse kernels —
// full-height banded and tile-range forms — to the exact bits of the
// unfused op sequence.
func TestMulDenseBiasReLUMatchesUnfused(t *testing.T) {
	na := nnzTestAdj(300)
	rng := rand.New(rand.NewSource(5))
	const d = 6
	h := mat.New(na.N, d)
	for i := range h.Data {
		h.Data[i] = rng.NormFloat64()
	}
	bias := make([]float64, d)
	for i := range bias {
		bias[i] = rng.NormFloat64()
	}
	res := mat.New(na.N, d)
	for i := range res.Data {
		res.Data[i] = rng.NormFloat64()
	}

	want := mat.New(na.N, d)
	na.MulDenseWorkersInto(want, h, 1)
	mat.AddBiasInto(want, want, bias)
	mat.AddInto(want, want, res)
	mat.ReLUInto(want, want)

	for _, w := range []int{1, 4} {
		got := mat.New(na.N, d)
		na.MulDenseBiasReLUInto(got, h, bias, res, true, w)
		if !got.Equal(want) {
			t.Fatalf("workers=%d: fused product differs from unfused sequence", w)
		}
	}

	// Tile-range form: assemble the same result tile by tile.
	got := mat.New(na.N, d)
	tile := mat.New(64, d)
	resTile := &mat.Matrix{}
	for lo := 0; lo < na.N; lo += 64 {
		hi := min(lo+64, na.N)
		view := &mat.Matrix{Rows: hi - lo, Cols: d, Data: tile.Data[:(hi-lo)*d]}
		res.ViewRows(lo, hi, resTile)
		na.MulDenseBiasReLURangeInto(view, h, lo, hi, bias, resTile, true)
		copy(got.Data[lo*d:hi*d], view.Data)
	}
	if !got.Equal(want) {
		t.Fatal("tiled fused product differs from unfused sequence")
	}
}
