package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// The private adjacency matrix is persisted and sealed in the Coordinate
// (COO) format: a compact binary layout of (row, col) index pairs plus the
// node count. This mirrors the paper's deployment choice (Sec. IV-E): only
// non-zero entries with their indices are kept inside the enclave, with the
// degree information recomputed at load.

const cooMagic = uint32(0x474E4E56) // "GNNV"

// MarshalCOO serialises g into the binary COO layout:
//
//	magic  uint32
//	n      uint32
//	nnz    uint32 (directed edge count)
//	rows   [nnz]uint32
//	cols   [nnz]uint32
func MarshalCOO(g *Graph) []byte {
	var buf bytes.Buffer
	write := func(v uint32) { binary.Write(&buf, binary.LittleEndian, v) } //nolint:errcheck
	write(cooMagic)
	write(uint32(g.n))
	write(uint32(len(g.edges)))
	for _, e := range g.edges {
		write(uint32(e.U))
	}
	for _, e := range g.edges {
		write(uint32(e.V))
	}
	return buf.Bytes()
}

// UnmarshalCOO parses the binary COO layout produced by MarshalCOO.
func UnmarshalCOO(data []byte) (*Graph, error) {
	r := bytes.NewReader(data)
	var magic, n, nnz uint32
	for _, p := range []*uint32{&magic, &n, &nnz} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("graph: COO header truncated: %w", err)
		}
	}
	if magic != cooMagic {
		return nil, fmt.Errorf("graph: bad COO magic %#x", magic)
	}
	want := int64(12) + int64(nnz)*8
	if int64(len(data)) != want {
		return nil, fmt.Errorf("graph: COO payload length %d, want %d", len(data), want)
	}
	rows := make([]uint32, nnz)
	cols := make([]uint32, nnz)
	if err := binary.Read(r, binary.LittleEndian, rows); err != nil {
		return nil, fmt.Errorf("graph: COO rows truncated: %w", err)
	}
	if err := binary.Read(r, binary.LittleEndian, cols); err != nil && err != io.EOF {
		return nil, fmt.Errorf("graph: COO cols truncated: %w", err)
	}
	edges := make([]Edge, nnz)
	for i := range edges {
		if rows[i] >= n || cols[i] >= n {
			return nil, fmt.Errorf("graph: COO edge (%d,%d) out of range n=%d", rows[i], cols[i], n)
		}
		edges[i] = Edge{int(rows[i]), int(cols[i])}
	}
	return NewFromDirected(int(n), edges), nil
}
