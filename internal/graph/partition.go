package graph

import (
	"fmt"
	"sort"
)

// Partition splits a normalised adjacency into contiguous row-range
// shards cut at nnz-balanced boundaries (NNZBound), the layout the
// multi-enclave fleet seals one shard per enclave. Each shard owns the
// rows [Bounds[s], Bounds[s+1]) and a compact rectangular CSR over a
// local column space: columns [0, rows_s) are the shard's own rows and
// columns [rows_s, rows_s+len(Halo[s])) are its halo — the boundary
// nodes owned by other shards whose activations must be gathered before
// the shard's local SpMM can run. The remap preserves each row's
// non-zero order, so a shard SpMM accumulates in exactly the element
// order of the unsharded kernel and the results agree bit-for-bit.
type Partition struct {
	// Bounds has len Shards+1; shard s owns global rows
	// [Bounds[s], Bounds[s+1]). Boundaries come from NNZBound, so edge
	// work — not row count — is what balances across shards, and
	// degenerate cuts (empty shards on tiny or hub-dominated graphs) are
	// legal.
	Bounds []int

	// Halo[s] lists, sorted ascending, the global column indices outside
	// shard s's own row range that its rows reference: the activations
	// shard s must fetch from their owners each layer. Halo[s][k] maps to
	// local column rows_s + k of CSR[s].
	Halo [][]int

	// CSR[s] is shard s's rectangular operator: N = rows_s resident rows,
	// ColCount() = rows_s + len(Halo[s]) columns, column indices remapped
	// into the local space and Val aliasing the parent's value slab. Each
	// shard CSR carries the parent's ValMaxAbs so int8 value codes match
	// the unsharded run.
	CSR []*NormAdjacency
}

// Shards returns the shard count the partition was cut for.
func (p *Partition) Shards() int { return len(p.Bounds) - 1 }

// Rows returns the number of resident rows of shard s.
func (p *Partition) Rows(s int) int { return p.Bounds[s+1] - p.Bounds[s] }

// Owner returns the shard owning global row i. Empty shards own no rows,
// so the answer is the unique shard with Bounds[s] <= i < Bounds[s+1].
func (p *Partition) Owner(i int) int {
	n := p.Bounds[len(p.Bounds)-1]
	if i < 0 || i >= n {
		panic(fmt.Sprintf("graph: Partition.Owner row %d out of [0,%d)", i, n))
	}
	// The last bound <= i. Searching for i+1 lands past every empty
	// shard ending at or before i, so [Bounds[s], Bounds[s+1]) is the
	// unique non-empty range containing i.
	return sort.SearchInts(p.Bounds, i+1) - 1
}

// HaloCols returns the total halo width — Σ_s len(Halo[s]) — the number
// of boundary-node activations the fleet exchanges per layer.
func (p *Partition) HaloCols() int {
	total := 0
	for _, h := range p.Halo {
		total += len(h)
	}
	return total
}

// NewPartition cuts na into the given number of contiguous row-range
// shards at nnz-balanced boundaries and builds each shard's compact
// rectangular CSR plus halo column index. shards must be >= 1; counts
// exceeding the row count simply yield trailing empty shards (legal, and
// covered by the degenerate-graph tests).
func NewPartition(na *NormAdjacency, shards int) *Partition {
	if shards < 1 {
		panic(fmt.Sprintf("graph: NewPartition shards %d < 1", shards))
	}
	if na.NCols > 0 {
		panic("graph: NewPartition of an already-rectangular operator")
	}
	p := &Partition{
		Bounds: make([]int, shards+1),
		Halo:   make([][]int, shards),
		CSR:    make([]*NormAdjacency, shards),
	}
	for s := 0; s <= shards; s++ {
		p.Bounds[s] = na.NNZBound(0, na.N, s, shards)
	}
	hint := na.ValMaxAbs()
	for s := 0; s < shards; s++ {
		lo, hi := p.Bounds[s], p.Bounds[s+1]
		rows := hi - lo
		start, end := na.RowPtr[lo], na.RowPtr[hi]

		// Collect the shard's out-of-range columns, then sort and
		// deduplicate them into the halo index.
		seen := map[int]int{}
		halo := []int(nil)
		for q := start; q < end; q++ {
			c := na.ColIdx[q]
			if c < lo || c >= hi {
				if _, ok := seen[c]; !ok {
					seen[c] = 0
					halo = append(halo, c)
				}
			}
		}
		sort.Ints(halo)
		for k, c := range halo {
			seen[c] = rows + k
		}

		// Rebase the row pointers and remap the columns into the local
		// space, preserving per-row non-zero order.
		rowPtr := make([]int, rows+1)
		for i := 0; i <= rows; i++ {
			rowPtr[i] = na.RowPtr[lo+i] - start
		}
		colIdx := make([]int, end-start)
		for q := start; q < end; q++ {
			c := na.ColIdx[q]
			if c >= lo && c < hi {
				colIdx[q-start] = c - lo
			} else {
				colIdx[q-start] = seen[c]
			}
		}
		p.Halo[s] = halo
		p.CSR[s] = &NormAdjacency{
			N:             rows,
			RowPtr:        rowPtr,
			ColIdx:        colIdx,
			Val:           na.Val[start:end:end],
			NCols:         rows + len(halo),
			valMaxAbsHint: hint,
		}
	}
	return p
}
