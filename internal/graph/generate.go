package graph

import (
	"fmt"
	"math/rand"
)

// PlantedPartitionConfig parameterises a stochastic block model graph with
// controllable homophily — the generator used to synthesise the paper's
// datasets (see DESIGN.md, substitutions table).
type PlantedPartitionConfig struct {
	Nodes     int     // number of nodes
	Classes   int     // number of communities / labels
	AvgDegree float64 // target mean degree
	Homophily float64 // fraction of edge endpoints landing inside the class, in [0,1]
	ClassSkew float64 // 0 = balanced classes; >0 adds geometric imbalance
	Seed      int64
}

// PlantedPartition samples a graph and its node labels from a stochastic
// block model. Edges are sampled by repeatedly drawing (source, target)
// pairs: targets are intra-class with probability Homophily, inter-class
// otherwise.
func PlantedPartition(cfg PlantedPartitionConfig) (*Graph, []int) {
	if cfg.Nodes <= 0 || cfg.Classes <= 0 {
		panic(fmt.Sprintf("graph: invalid planted partition config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	labels := assignLabels(rng, cfg.Nodes, cfg.Classes, cfg.ClassSkew)

	byClass := make([][]int, cfg.Classes)
	for u, c := range labels {
		byClass[c] = append(byClass[c], u)
	}

	wantEdges := int(cfg.AvgDegree * float64(cfg.Nodes) / 2)
	seen := make(map[[2]int]bool, wantEdges)
	edges := make([]Edge, 0, wantEdges)
	maxAttempts := wantEdges * 50
	for attempts := 0; len(edges) < wantEdges && attempts < maxAttempts; attempts++ {
		u := rng.Intn(cfg.Nodes)
		var v int
		if rng.Float64() < cfg.Homophily {
			peers := byClass[labels[u]]
			if len(peers) < 2 {
				continue
			}
			v = peers[rng.Intn(len(peers))]
		} else {
			v = rng.Intn(cfg.Nodes)
		}
		if u == v {
			continue
		}
		key := [2]int{min2(u, v), max2(u, v)}
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, Edge{key[0], key[1]})
	}
	return New(cfg.Nodes, edges), labels
}

func assignLabels(rng *rand.Rand, n, classes int, skew float64) []int {
	labels := make([]int, n)
	if skew <= 0 {
		for i := range labels {
			labels[i] = i % classes
		}
		rng.Shuffle(n, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
		return labels
	}
	// Geometric class weights: class c has weight (1+skew)^{-c}.
	weights := make([]float64, classes)
	total := 0.0
	w := 1.0
	for c := range weights {
		weights[c] = w
		total += w
		w /= 1 + skew
	}
	for i := range labels {
		r := rng.Float64() * total
		for c, wc := range weights {
			r -= wc
			if r <= 0 {
				labels[i] = c
				break
			}
		}
	}
	// Guarantee every class appears at least twice so the 20-per-class
	// splits in datasets never starve.
	for c := 0; c < classes; c++ {
		labels[2*c%n] = c
		labels[(2*c+1)%n] = c
	}
	return labels
}

// Random returns an Erdős–Rényi-style graph with exactly numUndirected
// edges sampled without replacement (by rejection). Used for the paper's
// "random substitute graph" backbone baseline and Fig. 5 sweeps.
func Random(n, numUndirected int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	maxPossible := n * (n - 1) / 2
	if numUndirected > maxPossible {
		numUndirected = maxPossible
	}
	seen := make(map[[2]int]bool, numUndirected)
	edges := make([]Edge, 0, numUndirected)
	for len(edges) < numUndirected {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		key := [2]int{min2(u, v), max2(u, v)}
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, Edge{key[0], key[1]})
	}
	return New(n, edges)
}

// PreferentialAttachmentConfig parameterises the Barabási–Albert power-law
// generator used for the large-scale node-serving benchmarks: graphs whose
// degree distribution (a few massive hubs, a long tail of low-degree
// nodes) matches the web/social/citation graphs that are too large for
// full-graph inference inside an enclave.
type PreferentialAttachmentConfig struct {
	// Nodes is the final node count.
	Nodes int
	// EdgesPerNode is the number of edges each arriving node attaches
	// with (the BA "m" parameter); the mean degree converges to 2m.
	EdgesPerNode int
	Seed         int64
}

// PreferentialAttachment samples a Barabási–Albert graph: nodes arrive one
// at a time and attach EdgesPerNode edges to existing nodes with
// probability proportional to their current degree. The first m+1 nodes
// form a seed clique so early arrivals have targets. Deterministic in
// Seed; generation is O(Nodes·EdgesPerNode).
func PreferentialAttachment(cfg PreferentialAttachmentConfig) *Graph {
	n, m := cfg.Nodes, cfg.EdgesPerNode
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("graph: invalid preferential attachment config %+v", cfg))
	}
	if m >= n {
		m = n - 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	edges := make([]Edge, 0, n*m)
	// rep holds every edge endpoint once, so a uniform draw from rep is a
	// degree-proportional draw over nodes.
	rep := make([]int, 0, 2*n*m)

	// Seed clique over the first m+1 nodes.
	start := m + 1
	for u := 1; u < start && u < n; u++ {
		for v := 0; v < u; v++ {
			edges = append(edges, Edge{v, u})
			rep = append(rep, v, u)
		}
	}
	picked := make([]int, 0, m)
	for u := start; u < n; u++ {
		picked = picked[:0]
	attach:
		for len(picked) < m {
			v := rep[rng.Intn(len(rep))]
			for _, w := range picked {
				if w == v {
					continue attach // distinct targets per arrival
				}
			}
			picked = append(picked, v)
		}
		for _, v := range picked {
			edges = append(edges, Edge{v, u})
			rep = append(rep, v, u)
		}
	}
	return New(n, edges)
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
