package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gnnvault/internal/mat"
)

func TestNormalizeSingleNode(t *testing.T) {
	na := Normalize(New(1, nil))
	if na.NNZ() != 1 || na.Val[0] != 1.0 {
		t.Fatalf("isolated node normalisation = %+v", na)
	}
}

func TestNormalizeTwoNodes(t *testing.T) {
	na := Normalize(New(2, []Edge{{0, 1}}))
	// Each node has degree 1 + self loop → D̃ = 2. All entries = 1/2.
	d := na.Dense()
	want := mat.FromSlice(2, 2, []float64{0.5, 0.5, 0.5, 0.5})
	if !d.EqualApprox(want, 1e-12) {
		t.Fatalf("normalised 2-node = %v", d.Data)
	}
}

func TestNormalizeSymmetric(t *testing.T) {
	g := Random(40, 120, 1)
	d := Normalize(g).Dense()
	if !d.EqualApprox(d.T(), 1e-12) {
		t.Fatal("Â not symmetric")
	}
}

func TestNormalizeDiagonalPresent(t *testing.T) {
	g := Random(30, 60, 2)
	na := Normalize(g)
	d := na.Dense()
	for i := 0; i < g.N(); i++ {
		want := 1.0 / float64(g.Degree(i)+1)
		if math.Abs(d.At(i, i)-want) > 1e-12 {
			t.Fatalf("Â[%d,%d] = %v, want %v", i, i, d.At(i, i), want)
		}
	}
}

func TestNormalizeMatchesDenseFormula(t *testing.T) {
	g := Random(25, 50, 3)
	n := g.N()
	aPlusI := g.Dense().Add(mat.Identity(n))
	dInvSqrt := mat.New(n, n)
	for i := 0; i < n; i++ {
		dInvSqrt.Set(i, i, 1/math.Sqrt(float64(g.Degree(i)+1)))
	}
	want := mat.MatMul(mat.MatMul(dInvSqrt, aPlusI), dInvSqrt)
	if !Normalize(g).Dense().EqualApprox(want, 1e-12) {
		t.Fatal("CSR normalisation disagrees with dense D^-1/2 (A+I) D^-1/2")
	}
}

func TestMulDenseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := Random(35, 80, 4)
	na := Normalize(g)
	h := mat.RandNormal(rng, 35, 9, 0, 1)
	want := mat.MatMul(na.Dense(), h)
	if !na.MulDense(h).EqualApprox(want, 1e-10) {
		t.Fatal("sparse MulDense disagrees with dense product")
	}
	if !na.MulDenseSerial(h).EqualApprox(want, 1e-10) {
		t.Fatal("MulDenseSerial disagrees with dense product")
	}
}

func TestMulDenseParallelPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := Random(600, 2400, 5) // above the parallel threshold
	na := Normalize(g)
	h := mat.RandNormal(rng, 600, 8, 0, 1)
	if !na.MulDense(h).EqualApprox(na.MulDenseSerial(h), 1e-10) {
		t.Fatal("parallel and serial sparse products disagree")
	}
}

func TestMulDenseShapePanics(t *testing.T) {
	na := Normalize(New(3, nil))
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch did not panic")
		}
	}()
	na.MulDense(mat.New(4, 2))
}

func TestNormAdjacencyNumBytes(t *testing.T) {
	na := Normalize(New(2, []Edge{{0, 1}}))
	// nnz = 4 (two edges + two self loops), rowPtr = 3 entries.
	want := int64(4*16 + 3*8)
	if na.NumBytes() != want {
		t.Fatalf("NumBytes = %d, want %d", na.NumBytes(), want)
	}
}

func TestPropNormalizedRowSumsBounded(t *testing.T) {
	// Rows of Â are strictly positive on their support, every entry is at
	// most 1, and each row sum is bounded by sqrt(d̃_i): row i sums
	// Σ_j 1/sqrt(d̃_i d̃_j) over d̃_i terms, each ≤ 1/sqrt(d̃_i).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := Random(n, rng.Intn(2*n), seed)
		na := Normalize(g)
		for i := 0; i < n; i++ {
			sum := 0.0
			for p := na.RowPtr[i]; p < na.RowPtr[i+1]; p++ {
				if na.Val[p] <= 0 || na.Val[p] > 1+1e-12 {
					return false
				}
				sum += na.Val[p]
			}
			bound := math.Sqrt(float64(g.Degree(i) + 1))
			if sum <= 0 || sum > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropMulDensePreservesConstantVector(t *testing.T) {
	// On a regular graph, Â·1 = 1 exactly. Path/ring regularity: use a ring.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		edges := make([]Edge, n)
		for i := 0; i < n; i++ {
			edges[i] = Edge{i, (i + 1) % n}
		}
		g := New(n, edges)
		ones := mat.New(n, 1)
		for i := range ones.Data {
			ones.Data[i] = 1
		}
		out := Normalize(g).MulDense(ones)
		for _, v := range out.Data {
			if math.Abs(v-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPlantedPartitionBasics(t *testing.T) {
	cfg := PlantedPartitionConfig{Nodes: 300, Classes: 5, AvgDegree: 6, Homophily: 0.9, Seed: 42}
	g, labels := PlantedPartition(cfg)
	if g.N() != 300 || len(labels) != 300 {
		t.Fatalf("n = %d, labels = %d", g.N(), len(labels))
	}
	for _, l := range labels {
		if l < 0 || l >= 5 {
			t.Fatalf("label %d out of range", l)
		}
	}
	if got := g.AvgDegree(); got < 4 || got > 8 {
		t.Fatalf("AvgDegree = %v, want ≈ 6", got)
	}
	if h := g.Homophily(labels); h < 0.75 {
		t.Fatalf("Homophily = %v, want high (cfg 0.9)", h)
	}
}

func TestPlantedPartitionHomophilyKnob(t *testing.T) {
	lo, ll := PlantedPartition(PlantedPartitionConfig{Nodes: 400, Classes: 4, AvgDegree: 8, Homophily: 0.1, Seed: 7})
	hi, hl := PlantedPartition(PlantedPartitionConfig{Nodes: 400, Classes: 4, AvgDegree: 8, Homophily: 0.95, Seed: 7})
	if lo.Homophily(ll) >= hi.Homophily(hl) {
		t.Fatalf("homophily knob not monotone: %v vs %v", lo.Homophily(ll), hi.Homophily(hl))
	}
}

func TestPlantedPartitionDeterministic(t *testing.T) {
	cfg := PlantedPartitionConfig{Nodes: 100, Classes: 3, AvgDegree: 4, Homophily: 0.8, Seed: 11}
	g1, l1 := PlantedPartition(cfg)
	g2, l2 := PlantedPartition(cfg)
	if !g1.Equal(g2) {
		t.Fatal("same seed produced different graphs")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("same seed produced different labels")
		}
	}
}

func TestPlantedPartitionSkewedClasses(t *testing.T) {
	_, labels := PlantedPartition(PlantedPartitionConfig{
		Nodes: 500, Classes: 8, AvgDegree: 5, Homophily: 0.8, ClassSkew: 0.5, Seed: 13,
	})
	counts := make([]int, 8)
	for _, l := range labels {
		counts[l]++
	}
	for c, n := range counts {
		if n < 2 {
			t.Fatalf("class %d has %d nodes, want >= 2", c, n)
		}
	}
	if counts[0] <= counts[7] {
		t.Fatalf("skew not applied: counts = %v", counts)
	}
}

func TestPlantedPartitionInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	PlantedPartition(PlantedPartitionConfig{Nodes: 0, Classes: 3})
}

func TestRandomGraphEdgeCount(t *testing.T) {
	g := Random(50, 100, 3)
	if g.NumUndirectedEdges() != 100 {
		t.Fatalf("edges = %d, want 100", g.NumUndirectedEdges())
	}
}

func TestRandomGraphClampsToMax(t *testing.T) {
	g := Random(4, 100, 3)
	if g.NumUndirectedEdges() != 6 {
		t.Fatalf("edges = %d, want 6 (complete K4)", g.NumUndirectedEdges())
	}
}

func TestCOORoundTrip(t *testing.T) {
	g := Random(64, 200, 17)
	data := MarshalCOO(g)
	got, err := UnmarshalCOO(data)
	if err != nil {
		t.Fatalf("UnmarshalCOO: %v", err)
	}
	if !got.Equal(g) {
		t.Fatal("COO round trip changed the graph")
	}
}

func TestCOOBytesAccounting(t *testing.T) {
	g := Random(100, 300, 19)
	// Two int32 per directed edge + 8 bytes per node for the degree vector.
	want := int64(g.NumDirectedEdges())*8 + int64(100)*8
	if g.COOBytes() != want {
		t.Fatalf("COOBytes = %d, want %d", g.COOBytes(), want)
	}
	if g.COOBytes() >= g.DenseAdjacencyBytes() {
		t.Fatal("COO not smaller than dense for sparse graph")
	}
}

func TestUnmarshalCOORejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"short":     {1, 2, 3},
		"bad magic": append([]byte{0, 0, 0, 0}, make([]byte, 8)...),
	}
	for name, data := range cases {
		if _, err := UnmarshalCOO(data); err == nil {
			t.Errorf("%s: UnmarshalCOO accepted invalid input", name)
		}
	}
}

func TestUnmarshalCOORejectsTruncatedPayload(t *testing.T) {
	g := Random(10, 20, 23)
	data := MarshalCOO(g)
	if _, err := UnmarshalCOO(data[:len(data)-4]); err == nil {
		t.Fatal("truncated COO accepted")
	}
}

func TestUnmarshalCOORejectsOutOfRangeIndex(t *testing.T) {
	g := New(2, []Edge{{0, 1}})
	data := MarshalCOO(g)
	// Corrupt a column index to point beyond n.
	data[len(data)-4] = 0xFF
	if _, err := UnmarshalCOO(data); err == nil {
		t.Fatal("out-of-range COO index accepted")
	}
}

func TestPropCOORoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := Random(n, rng.Intn(3*n), seed)
		got, err := UnmarshalCOO(MarshalCOO(g))
		return err == nil && got.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
