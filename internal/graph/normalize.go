package graph

import (
	"fmt"
	"math"
	"sync"

	"gnnvault/internal/mat"
)

// NormAdjacency is the GCN-normalised adjacency Â = D̃^{-1/2} (A + I) D̃^{-1/2}
// in CSR form, where D̃ is the degree matrix of A + I. It is the operator
// applied in every GCN layer's message-passing step (Eq. 1 of the paper).
//
// Values are stored per non-zero so the structure supports both the forward
// product Â·H and (because Â is symmetric) the backward product Âᵀ·dH with
// the same kernel.
type NormAdjacency struct {
	N      int
	RowPtr []int
	ColIdx []int
	Val    []float64
}

// Normalize builds the symmetric GCN normalisation of g with self loops.
// The paper stores the private adjacency in COO with a precomputed degree
// vector; this constructor is that precomputation.
func Normalize(g *Graph) *NormAdjacency {
	n := g.N()
	invSqrt := make([]float64, n)
	for u := 0; u < n; u++ {
		invSqrt[u] = 1.0 / math.Sqrt(float64(g.Degree(u)+1)) // +1 self loop
	}
	nnz := len(g.edges) + n
	na := &NormAdjacency{
		N:      n,
		RowPtr: make([]int, n+1),
		ColIdx: make([]int, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
	for u := 0; u < n; u++ {
		nb := g.Neighbors(u)
		// Merge the self loop into the sorted neighbour run.
		inserted := false
		for _, v := range nb {
			if !inserted && u < v {
				na.ColIdx = append(na.ColIdx, u)
				na.Val = append(na.Val, invSqrt[u]*invSqrt[u])
				inserted = true
			}
			na.ColIdx = append(na.ColIdx, v)
			na.Val = append(na.Val, invSqrt[u]*invSqrt[v])
		}
		if !inserted {
			na.ColIdx = append(na.ColIdx, u)
			na.Val = append(na.Val, invSqrt[u]*invSqrt[u])
		}
		na.RowPtr[u+1] = len(na.ColIdx)
	}
	return na
}

// NNZ returns the number of stored non-zeros.
func (na *NormAdjacency) NNZ() int { return len(na.Val) }

// NumBytes returns the in-memory footprint of the normalised adjacency
// (8-byte value + 8-byte index per non-zero, plus the row pointer array),
// used for enclave EPC accounting.
func (na *NormAdjacency) NumBytes() int64 {
	return int64(len(na.Val))*16 + int64(len(na.RowPtr))*8
}

// MulDense returns Â·H where H is a dense N×d matrix. This is the
// message-passing step; it is parallelised over row bands in the normal
// world. Allocating wrapper over MulDenseInto.
func (na *NormAdjacency) MulDense(h *mat.Matrix) *mat.Matrix {
	out := mat.New(na.N, h.Cols)
	na.mulDenseInto(out, h, 0)
	return out
}

// MulDenseSerial is MulDense restricted to the calling goroutine, used to
// model single-threaded in-enclave execution.
func (na *NormAdjacency) MulDenseSerial(h *mat.Matrix) *mat.Matrix {
	out := mat.New(na.N, h.Cols)
	na.mulDenseInto(out, h, 1)
	return out
}

// MulDenseInto computes dst = Â·H without allocating. dst must be N×H.Cols
// and must not alias h. Parallelised over row bands; the worker count
// honours mat.SetMaxWorkers.
func (na *NormAdjacency) MulDenseInto(dst, h *mat.Matrix) {
	na.mulDenseInto(dst, h, 0)
}

// MulDenseSerialInto is MulDenseInto restricted to the calling goroutine,
// the form in-enclave (single-threaded) code must use.
func (na *NormAdjacency) MulDenseSerialInto(dst, h *mat.Matrix) {
	na.mulDenseInto(dst, h, 1)
}

// MulDenseWorkersInto is MulDenseInto under an explicit per-call worker
// budget (mat.MatMulWorkersInto semantics: <= 0 resolves to the process
// global, 1 runs inline, larger budgets are clamped to the row count).
func (na *NormAdjacency) MulDenseWorkersInto(dst, h *mat.Matrix, workers int) {
	na.mulDenseInto(dst, h, workers)
}

// MulDenseRangeInto computes rows [lo, hi) of Â·H into dst, which must be
// (hi-lo)×H.Cols: dst row 0 receives graph row lo. H must span all N rows —
// a CSR row's neighbours reach outside [lo, hi) — which is exactly why the
// tiled executor must materialise a layer's full input before streaming its
// output tile by tile. Runs inline on the calling goroutine (the in-enclave
// form) and never allocates.
func (na *NormAdjacency) MulDenseRangeInto(dst, h *mat.Matrix, lo, hi int) {
	if h.Rows != na.N {
		panic(fmt.Sprintf("graph: MulDenseRangeInto rows %d != n %d", h.Rows, na.N))
	}
	if lo < 0 || hi > na.N || lo > hi {
		panic(fmt.Sprintf("graph: MulDenseRangeInto range [%d,%d) out of [0,%d)", lo, hi, na.N))
	}
	if dst.Rows != hi-lo || dst.Cols != h.Cols {
		panic(fmt.Sprintf("graph: MulDenseRangeInto destination %s, want %dx%d", dst.Shape(), hi-lo, h.Cols))
	}
	mat.RequireNoAlias(dst, h, "graph: MulDenseRangeInto")
	dst.Zero()
	d := h.Cols
	for i := lo; i < hi; i++ {
		orow := dst.Data[(i-lo)*d : (i-lo+1)*d]
		for p := na.RowPtr[i]; p < na.RowPtr[i+1]; p++ {
			v := na.Val[p]
			hrow := h.Data[na.ColIdx[p]*d : (na.ColIdx[p]+1)*d]
			for j, hv := range hrow {
				orow[j] += v * hv
			}
		}
	}
}

func (na *NormAdjacency) mulDenseInto(dst, h *mat.Matrix, budget int) {
	if h.Rows != na.N {
		panic(fmt.Sprintf("graph: MulDense rows %d != n %d", h.Rows, na.N))
	}
	if dst.Rows != na.N || dst.Cols != h.Cols {
		panic(fmt.Sprintf("graph: MulDenseInto destination %s, want %dx%d", dst.Shape(), na.N, h.Cols))
	}
	mat.RequireNoAlias(dst, h, "graph: MulDenseInto")
	dst.Zero()
	workers := mat.ResolveWorkers(budget, na.N)
	if workers <= 1 || na.N < 256 {
		na.mulDenseRange(dst, h, 0, na.N)
		return
	}
	var wg sync.WaitGroup
	chunk := (na.N + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > na.N {
			hi = na.N
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			na.mulDenseRange(dst, h, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// mulDenseRange accumulates rows [lo,hi) of out = Â·H.
func (na *NormAdjacency) mulDenseRange(out, h *mat.Matrix, lo, hi int) {
	d := h.Cols
	for i := lo; i < hi; i++ {
		orow := out.Data[i*d : (i+1)*d]
		for p := na.RowPtr[i]; p < na.RowPtr[i+1]; p++ {
			v := na.Val[p]
			hrow := h.Data[na.ColIdx[p]*d : (na.ColIdx[p]+1)*d]
			for j, hv := range hrow {
				orow[j] += v * hv
			}
		}
	}
}

// Dense materialises Â as a dense matrix. Tests only.
func (na *NormAdjacency) Dense() *mat.Matrix {
	d := mat.New(na.N, na.N)
	for i := 0; i < na.N; i++ {
		for p := na.RowPtr[i]; p < na.RowPtr[i+1]; p++ {
			d.Set(i, na.ColIdx[p], na.Val[p])
		}
	}
	return d
}

// RowSumsOfSquares returns Σ_j Â[i,j]² per row; used by tests to check the
// normalisation invariants.
func (na *NormAdjacency) RowSumsOfSquares() []float64 {
	out := make([]float64, na.N)
	for i := 0; i < na.N; i++ {
		for p := na.RowPtr[i]; p < na.RowPtr[i+1]; p++ {
			out[i] += na.Val[p] * na.Val[p]
		}
	}
	return out
}
