package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"gnnvault/internal/mat"
)

// NormAdjacency is the GCN-normalised adjacency Â = D̃^{-1/2} (A + I) D̃^{-1/2}
// in CSR form, where D̃ is the degree matrix of A + I. It is the operator
// applied in every GCN layer's message-passing step (Eq. 1 of the paper).
//
// Values are stored per non-zero so the structure supports both the forward
// product Â·H and (because Â is symmetric) the backward product Âᵀ·dH with
// the same kernel.
type NormAdjacency struct {
	N      int
	RowPtr []int
	ColIdx []int
	Val    []float64

	// NCols is the column count when the operator is rectangular — a
	// shard of a partitioned graph owns N resident rows but gathers
	// columns from N local + halo positions (see Partition). Zero means
	// square (NCols == N), which every constructor other than
	// NewPartition produces, so existing literals keep their meaning.
	NCols int

	// valMaxAbsHint, when positive, pins ValMaxAbs to the parent
	// operator's global maximum. Shard CSRs carry their parent's bound so
	// int8 plans quantize edge values under the same symmetric scale on
	// every shard — the codes, and therefore the bits, match the
	// single-enclave run.
	valMaxAbsHint float64
}

// ColCount returns the operator's column count: N for the square
// adjacencies built by Normalize and the subgraph inducers, N + halo
// width for a partition shard. Dense operands multiplied from the right
// must span this many rows.
func (na *NormAdjacency) ColCount() int {
	if na.NCols > 0 {
		return na.NCols
	}
	return na.N
}

// Normalize builds the symmetric GCN normalisation of g with self loops.
// The paper stores the private adjacency in COO with a precomputed degree
// vector; this constructor is that precomputation.
func Normalize(g *Graph) *NormAdjacency {
	n := g.N()
	invSqrt := make([]float64, n)
	for u := 0; u < n; u++ {
		invSqrt[u] = 1.0 / math.Sqrt(float64(g.Degree(u)+1)) // +1 self loop
	}
	nnz := len(g.edges) + n
	na := &NormAdjacency{
		N:      n,
		RowPtr: make([]int, n+1),
		ColIdx: make([]int, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
	for u := 0; u < n; u++ {
		nb := g.Neighbors(u)
		// Merge the self loop into the sorted neighbour run.
		inserted := false
		for _, v := range nb {
			if !inserted && u < v {
				na.ColIdx = append(na.ColIdx, u)
				na.Val = append(na.Val, invSqrt[u]*invSqrt[u])
				inserted = true
			}
			na.ColIdx = append(na.ColIdx, v)
			na.Val = append(na.Val, invSqrt[u]*invSqrt[v])
		}
		if !inserted {
			na.ColIdx = append(na.ColIdx, u)
			na.Val = append(na.Val, invSqrt[u]*invSqrt[u])
		}
		na.RowPtr[u+1] = len(na.ColIdx)
	}
	return na
}

// NNZ returns the number of stored non-zeros.
func (na *NormAdjacency) NNZ() int { return len(na.Val) }

// NumBytes returns the in-memory footprint of the normalised adjacency
// (8-byte value + 8-byte index per non-zero, plus the row pointer array),
// used for enclave EPC accounting.
func (na *NormAdjacency) NumBytes() int64 {
	return int64(len(na.Val))*16 + int64(len(na.RowPtr))*8
}

// MulDense returns Â·H where H is a dense N×d matrix. This is the
// message-passing step; it is parallelised over row bands in the normal
// world. Allocating wrapper over MulDenseInto.
func (na *NormAdjacency) MulDense(h *mat.Matrix) *mat.Matrix {
	out := mat.New(na.N, h.Cols)
	na.mulDenseInto(out, h, 0)
	return out
}

// MulDenseSerial is MulDense restricted to the calling goroutine, used to
// model single-threaded in-enclave execution.
func (na *NormAdjacency) MulDenseSerial(h *mat.Matrix) *mat.Matrix {
	out := mat.New(na.N, h.Cols)
	na.mulDenseInto(out, h, 1)
	return out
}

// MulDenseInto computes dst = Â·H without allocating. dst must be N×H.Cols
// and must not alias h. Parallelised over nnz-balanced row bands
// (NNZBound); the worker count resolves the process-global default — see
// MulDenseWorkersInto for the per-call-budget form.
func (na *NormAdjacency) MulDenseInto(dst, h *mat.Matrix) {
	na.mulDenseInto(dst, h, 0)
}

// MulDenseSerialInto is MulDenseInto restricted to the calling goroutine,
// the form in-enclave (single-threaded) code must use.
func (na *NormAdjacency) MulDenseSerialInto(dst, h *mat.Matrix) {
	na.mulDenseInto(dst, h, 1)
}

// MulDenseWorkersInto is MulDenseInto under an explicit per-call worker
// budget (mat.MatMulWorkersInto semantics: <= 0 resolves to the process
// global, 1 runs inline, larger budgets are clamped to the row count).
func (na *NormAdjacency) MulDenseWorkersInto(dst, h *mat.Matrix, workers int) {
	na.mulDenseInto(dst, h, workers)
}

// MulDenseWorkers is the allocating form of MulDenseWorkersInto, used by
// the training backward passes to carry a layer's worker budget instead of
// consulting the process-global default.
func (na *NormAdjacency) MulDenseWorkers(h *mat.Matrix, workers int) *mat.Matrix {
	out := mat.New(na.N, h.Cols)
	na.mulDenseInto(out, h, workers)
	return out
}

// NNZBound returns the row boundary of the part-th of parts nnz-balanced
// bands over rows [lo, hi): part 0 maps to lo, part parts to hi, and
// interior boundaries are placed where the CSR's non-zero prefix (RowPtr —
// already a running nnz sum) crosses part/parts of the band's non-zeros.
// Successive boundaries are non-decreasing and always cover [lo, hi)
// exactly, so splitting work as [NNZBound(…, w, W), NNZBound(…, w+1, W))
// per worker partitions every row — including trailing empty ones — while
// balancing the actual non-zero work, which row-count splits badly skew on
// power-law graphs. Runs in O(log(hi-lo)) with no allocation.
func (na *NormAdjacency) NNZBound(lo, hi, part, parts int) int {
	if lo < 0 || hi > na.N || lo > hi {
		panic(fmt.Sprintf("graph: NNZBound range [%d,%d) out of [0,%d)", lo, hi, na.N))
	}
	if parts <= 0 || part < 0 || part > parts {
		panic(fmt.Sprintf("graph: NNZBound part %d/%d", part, parts))
	}
	switch part {
	case 0:
		return lo
	case parts:
		return hi
	}
	base := na.RowPtr[lo]
	total := na.RowPtr[hi] - base
	target := base + int(int64(total)*int64(part)/int64(parts))
	return lo + sort.SearchInts(na.RowPtr[lo:hi], target)
}

// MulDenseRangeInto computes rows [lo, hi) of Â·H into dst, which must be
// (hi-lo)×H.Cols: dst row 0 receives graph row lo. H must span all N rows —
// a CSR row's neighbours reach outside [lo, hi) — which is exactly why the
// tiled executor must materialise a layer's full input before streaming its
// output tile by tile. Runs inline on the calling goroutine (the in-enclave
// form) and never allocates.
func (na *NormAdjacency) MulDenseRangeInto(dst, h *mat.Matrix, lo, hi int) {
	if h.Rows != na.ColCount() {
		panic(fmt.Sprintf("graph: MulDenseRangeInto rows %d != n %d", h.Rows, na.ColCount()))
	}
	if lo < 0 || hi > na.N || lo > hi {
		panic(fmt.Sprintf("graph: MulDenseRangeInto range [%d,%d) out of [0,%d)", lo, hi, na.N))
	}
	if dst.Rows != hi-lo || dst.Cols != h.Cols {
		panic(fmt.Sprintf("graph: MulDenseRangeInto destination %s, want %dx%d", dst.Shape(), hi-lo, h.Cols))
	}
	mat.RequireNoAlias(dst, h, "graph: MulDenseRangeInto")
	d := h.Cols
	for i := lo; i < hi; i++ {
		na.accumRow(dst.Data[(i-lo)*d:(i-lo+1)*d], h, i)
	}
}

// accumRow computes graph row i of Â·H into orow (no prior zeroing
// needed: the first axpy group initialises the row, empty CSR rows are
// cleared), feeding the CSR non-zeros through the multi-stream axpy
// kernels four (then two, then one) at a time. The row gathers of a
// sparse product are cache-miss bound; batching them gives the CPU
// independent miss streams to overlap while keeping the per-element
// accumulation order — and therefore the bits — of the one-at-a-time
// loop.
func (na *NormAdjacency) accumRow(orow []float64, h *mat.Matrix, i int) {
	d := h.Cols
	p, end := na.RowPtr[i], na.RowPtr[i+1]
	switch {
	case end-p >= 4:
		c1, c2, c3, c4 := na.ColIdx[p], na.ColIdx[p+1], na.ColIdx[p+2], na.ColIdx[p+3]
		mat.Axpy4Set(
			na.Val[p], h.Data[c1*d:(c1+1)*d],
			na.Val[p+1], h.Data[c2*d:(c2+1)*d],
			na.Val[p+2], h.Data[c3*d:(c3+1)*d],
			na.Val[p+3], h.Data[c4*d:(c4+1)*d],
			orow)
		p += 4
	case end-p >= 2:
		c1, c2 := na.ColIdx[p], na.ColIdx[p+1]
		mat.Axpy2Set(na.Val[p], h.Data[c1*d:(c1+1)*d], na.Val[p+1], h.Data[c2*d:(c2+1)*d], orow)
		p += 2
	case end-p == 1:
		c := na.ColIdx[p]
		mat.AxpySet(na.Val[p], h.Data[c*d:(c+1)*d], orow)
		p++
	default:
		clear(orow)
		return
	}
	for ; p+4 <= end; p += 4 {
		c1, c2, c3, c4 := na.ColIdx[p], na.ColIdx[p+1], na.ColIdx[p+2], na.ColIdx[p+3]
		mat.Axpy4(
			na.Val[p], h.Data[c1*d:(c1+1)*d],
			na.Val[p+1], h.Data[c2*d:(c2+1)*d],
			na.Val[p+2], h.Data[c3*d:(c3+1)*d],
			na.Val[p+3], h.Data[c4*d:(c4+1)*d],
			orow)
	}
	if p+2 <= end {
		c1, c2 := na.ColIdx[p], na.ColIdx[p+1]
		mat.Axpy2(na.Val[p], h.Data[c1*d:(c1+1)*d], na.Val[p+1], h.Data[c2*d:(c2+1)*d], orow)
		p += 2
	}
	if p < end {
		c := na.ColIdx[p]
		mat.Axpy(na.Val[p], h.Data[c*d:(c+1)*d], orow)
	}
}

// MulDenseBiasReLURangeInto is MulDenseRangeInto with the epilogue of the
// fused exec ops applied to the finished rows while they are still hot:
// dst = epilogue(Â[lo:hi]·H) with the optional bias (broadcast), residual
// res (which must be (hi-lo)×H.Cols, aligned to dst — row 0 pairs with
// graph row lo) and ReLU applied in canonical order (see
// mat.ApplyEpilogueRow). With all three unset this is exactly
// MulDenseRangeInto. Runs inline on the calling goroutine (the in-enclave
// tile form) and never allocates; results are bit-identical to the unfused
// op sequence.
func (na *NormAdjacency) MulDenseBiasReLURangeInto(dst, h *mat.Matrix, lo, hi int, bias []float64, res *mat.Matrix, relu bool) {
	if h.Rows != na.ColCount() {
		panic(fmt.Sprintf("graph: MulDenseBiasReLURangeInto rows %d != n %d", h.Rows, na.ColCount()))
	}
	if lo < 0 || hi > na.N || lo > hi {
		panic(fmt.Sprintf("graph: MulDenseBiasReLURangeInto range [%d,%d) out of [0,%d)", lo, hi, na.N))
	}
	if dst.Rows != hi-lo || dst.Cols != h.Cols {
		panic(fmt.Sprintf("graph: MulDenseBiasReLURangeInto destination %s, want %dx%d", dst.Shape(), hi-lo, h.Cols))
	}
	mat.RequireNoAlias(dst, h, "graph: MulDenseBiasReLURangeInto")
	na.requireEpilogue(dst, bias, res, "MulDenseBiasReLURangeInto")
	d := h.Cols
	for i := lo; i < hi; i++ {
		// Epilogue per finished row, while it is still cache-hot — the
		// same element order as a trailing full pass, rows being
		// independent.
		drow := dst.Data[(i-lo)*d : (i-lo+1)*d]
		na.accumRow(drow, h, i)
		if bias != nil || res != nil || relu {
			mat.ApplyEpilogueRow(drow, bias, epilogueResRow(res, i-lo, d), relu)
		}
	}
}

// requireEpilogue validates the optional epilogue operands against dst:
// done once per kernel call so the per-row epilogue can run unchecked.
func (na *NormAdjacency) requireEpilogue(dst *mat.Matrix, bias []float64, res *mat.Matrix, op string) {
	if bias != nil && len(bias) != dst.Cols {
		panic(fmt.Sprintf("graph: %s bias length %d != cols %d", op, len(bias), dst.Cols))
	}
	if res != nil {
		mat.RequireNoAlias(dst, res, "graph: "+op)
		if res.Rows != dst.Rows || res.Cols != dst.Cols {
			panic(fmt.Sprintf("graph: %s residual %s != destination %s", op, res.Shape(), dst.Shape()))
		}
	}
}

// epilogueResRow returns local row i of the residual operand, nil when
// there is none.
func epilogueResRow(res *mat.Matrix, i, d int) []float64 {
	if res == nil {
		return nil
	}
	return res.Data[i*d : (i+1)*d]
}

// MulDenseBiasReLUInto is the full-height fused product dst =
// epilogue(Â·H), parallelised over nnz-balanced row bands under an
// explicit worker budget: each band applies the bias/residual/ReLU
// epilogue to its own rows right after accumulating them. res, when
// non-nil, must match dst's shape. This is the kernel fused OpSpMM ops
// run on direct machines; with no epilogue set it is exactly
// MulDenseWorkersInto.
func (na *NormAdjacency) MulDenseBiasReLUInto(dst, h *mat.Matrix, bias []float64, res *mat.Matrix, relu bool, workers int) {
	if h.Rows != na.ColCount() {
		panic(fmt.Sprintf("graph: MulDenseBiasReLUInto rows %d != n %d", h.Rows, na.ColCount()))
	}
	if dst.Rows != na.N || dst.Cols != h.Cols {
		panic(fmt.Sprintf("graph: MulDenseBiasReLUInto destination %s, want %dx%d", dst.Shape(), na.N, h.Cols))
	}
	mat.RequireNoAlias(dst, h, "graph: MulDenseBiasReLUInto")
	na.requireEpilogue(dst, bias, res, "MulDenseBiasReLUInto")
	w := mat.ResolveWorkers(workers, na.N)
	if w <= 1 || na.N < 256 {
		na.mulDenseEpilogueRange(dst, h, 0, na.N, bias, res, relu)
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := na.NNZBound(0, na.N, i, w)
		hi := na.NNZBound(0, na.N, i+1, w)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			na.mulDenseEpilogueRange(dst, h, lo, hi, bias, res, relu)
		}(lo, hi)
	}
	wg.Wait()
}

// mulDenseEpilogueRange accumulates rows [lo,hi) of Â·H into the
// same-indexed rows of dst, applying any epilogue to each row while it is
// still cache-hot instead of in a trailing full pass (rows are
// independent, so the element order — and the bits — are unchanged). The
// caller validated the epilogue operands.
func (na *NormAdjacency) mulDenseEpilogueRange(dst, h *mat.Matrix, lo, hi int, bias []float64, res *mat.Matrix, relu bool) {
	d := h.Cols
	if bias == nil && res == nil && !relu {
		for i := lo; i < hi; i++ {
			na.accumRow(dst.Data[i*d:(i+1)*d], h, i)
		}
		return
	}
	for i := lo; i < hi; i++ {
		drow := dst.Data[i*d : (i+1)*d]
		na.accumRow(drow, h, i)
		mat.ApplyEpilogueRow(drow, bias, epilogueResRow(res, i, d), relu)
	}
}

// mulDenseInto is the plain product: exactly MulDenseBiasReLUInto with no
// epilogue — one nnz-balanced banded driver, not two copies to keep in
// sync.
func (na *NormAdjacency) mulDenseInto(dst, h *mat.Matrix, budget int) {
	na.MulDenseBiasReLUInto(dst, h, nil, nil, false, budget)
}

// Dense materialises Â as a dense matrix. Tests only.
func (na *NormAdjacency) Dense() *mat.Matrix {
	d := mat.New(na.N, na.N)
	for i := 0; i < na.N; i++ {
		for p := na.RowPtr[i]; p < na.RowPtr[i+1]; p++ {
			d.Set(i, na.ColIdx[p], na.Val[p])
		}
	}
	return d
}

// RowSumsOfSquares returns Σ_j Â[i,j]² per row; used by tests to check the
// normalisation invariants.
func (na *NormAdjacency) RowSumsOfSquares() []float64 {
	out := make([]float64, na.N)
	for i := 0; i < na.N; i++ {
		for p := na.RowPtr[i]; p < na.RowPtr[i+1]; p++ {
			out[i] += na.Val[p] * na.Val[p]
		}
	}
	return out
}
