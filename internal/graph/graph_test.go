package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	edges := make([]Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	return New(n, edges)
}

func TestNewDedupAndSymmetry(t *testing.T) {
	g := New(4, []Edge{{0, 1}, {1, 0}, {0, 1}, {2, 3}})
	if g.NumUndirectedEdges() != 2 {
		t.Fatalf("undirected edges = %d, want 2", g.NumUndirectedEdges())
	}
	if g.NumDirectedEdges() != 4 {
		t.Fatalf("directed edges = %d, want 4", g.NumDirectedEdges())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(3, 2) {
		t.Fatal("symmetric edge missing")
	}
}

func TestNewDropsSelfLoops(t *testing.T) {
	g := New(3, []Edge{{0, 0}, {1, 2}})
	if g.HasEdge(0, 0) {
		t.Fatal("self loop retained")
	}
	if g.NumUndirectedEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumUndirectedEdges())
	}
}

func TestNewOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range edge did not panic")
		}
	}()
	New(2, []Edge{{0, 5}})
}

func TestDegreeNeighbors(t *testing.T) {
	g := New(5, []Edge{{0, 1}, {0, 2}, {0, 3}})
	if g.Degree(0) != 3 {
		t.Fatalf("deg(0) = %d, want 3", g.Degree(0))
	}
	if g.Degree(4) != 0 {
		t.Fatalf("deg(4) = %d, want 0", g.Degree(4))
	}
	nb := g.Neighbors(0)
	want := []int{1, 2, 3}
	for i := range want {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(0) = %v, want %v", nb, want)
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := pathGraph(4)
	if !g.HasEdge(1, 2) || g.HasEdge(0, 3) {
		t.Fatal("HasEdge wrong on path graph")
	}
}

func TestUndirectedEdges(t *testing.T) {
	g := New(3, []Edge{{2, 0}, {1, 2}})
	ue := g.UndirectedEdges()
	if len(ue) != 2 {
		t.Fatalf("len = %d, want 2", len(ue))
	}
	for _, e := range ue {
		if e.U >= e.V {
			t.Fatalf("representative edge not ordered: %+v", e)
		}
	}
}

func TestDensityAvgDegree(t *testing.T) {
	g := New(4, []Edge{{0, 1}, {2, 3}})
	if got := g.Density(); got != 2.0/6.0 {
		t.Fatalf("Density = %v", got)
	}
	if got := g.AvgDegree(); got != 1.0 {
		t.Fatalf("AvgDegree = %v", got)
	}
}

func TestDenseAdjacencyBytes(t *testing.T) {
	g := New(1000, nil)
	if got := g.DenseAdjacencyBytes(); got != 8_000_000 {
		t.Fatalf("DenseAdjacencyBytes = %d", got)
	}
}

func TestHomophily(t *testing.T) {
	g := New(4, []Edge{{0, 1}, {2, 3}, {0, 2}})
	labels := []int{0, 0, 1, 1}
	// Directed edges: (0,1),(1,0),(2,3),(3,2) same-label; (0,2),(2,0) not.
	if got := g.Homophily(labels); got != 4.0/6.0 {
		t.Fatalf("Homophily = %v, want 2/3", got)
	}
}

func TestHomophilyBadLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad labels did not panic")
		}
	}()
	New(3, nil).Homophily([]int{0})
}

func TestDenseMatchesHasEdge(t *testing.T) {
	g := New(4, []Edge{{0, 1}, {1, 3}})
	d := g.Dense()
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if g.HasEdge(i, j) {
				want = 1
			}
			if d.At(i, j) != want {
				t.Fatalf("Dense(%d,%d) = %v, want %v", i, j, d.At(i, j), want)
			}
		}
	}
}

func TestEqual(t *testing.T) {
	a := New(3, []Edge{{0, 1}})
	b := New(3, []Edge{{1, 0}})
	c := New(3, []Edge{{1, 2}})
	if !a.Equal(b) {
		t.Fatal("a != b despite same edge set")
	}
	if a.Equal(c) {
		t.Fatal("a == c despite different edges")
	}
}

func TestPropSymmetryInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		var edges []Edge
		for i := 0; i < rng.Intn(60); i++ {
			edges = append(edges, Edge{rng.Intn(n), rng.Intn(n)})
		}
		g := New(n, edges)
		for _, e := range g.Edges() {
			if !g.HasEdge(e.V, e.U) {
				return false
			}
			if e.U == e.V {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropDegreeSumEqualsDirectedEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		g := Random(n, rng.Intn(n*2), seed)
		sum := 0
		for u := 0; u < n; u++ {
			sum += g.Degree(u)
		}
		return sum == g.NumDirectedEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
