// Package graph provides the sparse graph substrate for GNNVault: COO edge
// lists, CSR adjacency, GCN-style symmetric normalisation, sparse×dense
// products with hand-derived backward passes, graph statistics, and binary
// serialisation of the private adjacency in the Coordinate (COO) format the
// paper seals inside the enclave.
package graph

import (
	"fmt"
	"sort"

	"gnnvault/internal/mat"
)

// Edge is a single directed edge (u → v). Undirected graphs store both
// directions.
type Edge struct {
	U, V int
}

// Graph is an unweighted graph over n nodes, stored as a deduplicated,
// sorted COO edge list with a CSR index built on demand.
//
// GNNVault treats the edge set as the private asset: a Graph value is what
// gets sealed into the enclave, and what link-stealing attacks try to
// recover.
type Graph struct {
	n     int
	edges []Edge // sorted by (U, V), deduplicated, no self loops

	// CSR index over edges; rowPtr has n+1 entries, colIdx holds the
	// neighbour of each edge in row order.
	rowPtr []int
	colIdx []int
}

// New returns a graph over n nodes with the given undirected edges.
// Each input pair {u, v} is stored in both directions; self loops and
// duplicates are dropped. It panics if any endpoint is out of range.
func New(n int, undirected []Edge) *Graph {
	g := &Graph{n: n}
	seen := make(map[[2]int]bool, 2*len(undirected))
	for _, e := range undirected {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", e.U, e.V, n))
		}
		if e.U == e.V {
			continue
		}
		for _, d := range [2][2]int{{e.U, e.V}, {e.V, e.U}} {
			if !seen[d] {
				seen[d] = true
				g.edges = append(g.edges, Edge{d[0], d[1]})
			}
		}
	}
	sort.Slice(g.edges, func(i, j int) bool {
		if g.edges[i].U != g.edges[j].U {
			return g.edges[i].U < g.edges[j].U
		}
		return g.edges[i].V < g.edges[j].V
	})
	g.buildCSR()
	return g
}

// NewFromDirected builds a graph from an already-symmetric directed edge
// list (both directions present). Used by deserialisation.
func NewFromDirected(n int, directed []Edge) *Graph {
	half := make([]Edge, 0, len(directed)/2+1)
	for _, e := range directed {
		if e.U < e.V {
			half = append(half, e)
		}
	}
	return New(n, half)
}

func (g *Graph) buildCSR() {
	g.rowPtr = make([]int, g.n+1)
	g.colIdx = make([]int, len(g.edges))
	for _, e := range g.edges {
		g.rowPtr[e.U+1]++
	}
	for i := 0; i < g.n; i++ {
		g.rowPtr[i+1] += g.rowPtr[i]
	}
	fill := make([]int, g.n)
	for _, e := range g.edges {
		g.colIdx[g.rowPtr[e.U]+fill[e.U]] = e.V
		fill[e.U]++
	}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// NumDirectedEdges returns the number of stored directed edges (twice the
// undirected edge count). This matches the "# Edge" convention of the
// paper's Table I, which counts each undirected edge twice.
func (g *Graph) NumDirectedEdges() int { return len(g.edges) }

// NumUndirectedEdges returns the number of undirected edges.
func (g *Graph) NumUndirectedEdges() int { return len(g.edges) / 2 }

// Degree returns the degree of node u (not counting self loops).
func (g *Graph) Degree(u int) int { return g.rowPtr[u+1] - g.rowPtr[u] }

// Neighbors returns a view of u's neighbour list, sorted ascending.
func (g *Graph) Neighbors(u int) []int {
	return g.colIdx[g.rowPtr[u]:g.rowPtr[u+1]]
}

// HasEdge reports whether the directed edge (u → v) exists. The graph is
// symmetric, so this equals undirected adjacency.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Neighbors(u)
	i := sort.SearchInts(nb, v)
	return i < len(nb) && nb[i] == v
}

// Edges returns a copy of the directed edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// UndirectedEdges returns one representative (u < v) per undirected edge.
func (g *Graph) UndirectedEdges() []Edge {
	out := make([]Edge, 0, len(g.edges)/2)
	for _, e := range g.edges {
		if e.U < e.V {
			out = append(out, e)
		}
	}
	return out
}

// Density returns the fraction of possible undirected edges present.
func (g *Graph) Density() float64 {
	if g.n < 2 {
		return 0
	}
	possible := float64(g.n) * float64(g.n-1) / 2
	return float64(g.NumUndirectedEdges()) / possible
}

// AvgDegree returns the mean node degree.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(len(g.edges)) / float64(g.n)
}

// DenseAdjacencyBytes returns the memory an n×n dense float64 adjacency
// matrix would occupy, the quantity reported in the paper's Table I
// ("DenseA (MB)") to motivate COO storage inside the enclave.
func (g *Graph) DenseAdjacencyBytes() int64 {
	return int64(g.n) * int64(g.n) * 8
}

// COOBytes returns the enclave-resident footprint of the COO representation
// (two int32 indices per directed edge) plus the precomputed inverse-sqrt
// degree vector the paper stores alongside it.
func (g *Graph) COOBytes() int64 {
	return int64(len(g.edges))*8 + int64(g.n)*8
}

// Homophily returns the fraction of directed edges whose endpoints share a
// label. GCN accuracy on a graph is driven by this quantity, which is why
// the synthetic dataset generator controls it explicitly.
func (g *Graph) Homophily(labels []int) float64 {
	if len(labels) != g.n {
		panic(fmt.Sprintf("graph: Homophily labels length %d != n %d", len(labels), g.n))
	}
	if len(g.edges) == 0 {
		return 0
	}
	same := 0
	for _, e := range g.edges {
		if labels[e.U] == labels[e.V] {
			same++
		}
	}
	return float64(same) / float64(len(g.edges))
}

// Dense returns the dense {0,1} adjacency matrix. Intended for tests and
// small graphs only.
func (g *Graph) Dense() *mat.Matrix {
	a := mat.New(g.n, g.n)
	for _, e := range g.edges {
		a.Set(e.U, e.V, 1)
	}
	return a
}

// Equal reports whether two graphs have identical node counts and edge sets.
func (g *Graph) Equal(o *Graph) bool {
	if g.n != o.n || len(g.edges) != len(o.edges) {
		return false
	}
	for i, e := range g.edges {
		if o.edges[i] != e {
			return false
		}
	}
	return true
}
