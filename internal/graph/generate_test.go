package graph

import "testing"

func TestPreferentialAttachment(t *testing.T) {
	cfg := PreferentialAttachmentConfig{Nodes: 2000, EdgesPerNode: 4, Seed: 9}
	g := PreferentialAttachment(cfg)
	if g.N() != cfg.Nodes {
		t.Fatalf("N = %d, want %d", g.N(), cfg.Nodes)
	}
	// Every arrival adds EdgesPerNode edges (plus the seed clique), so the
	// undirected edge count is fixed by construction.
	m := cfg.EdgesPerNode
	want := m*(m+1)/2 + (cfg.Nodes-m-1)*m
	if got := g.NumUndirectedEdges(); got != want {
		t.Fatalf("undirected edges = %d, want %d", got, want)
	}
	// Power-law shape: the max degree should dwarf the mean (hubs), and
	// most nodes should sit near the minimum degree m.
	maxDeg, nearMin := 0, 0
	for u := 0; u < g.N(); u++ {
		d := g.Degree(u)
		if d > maxDeg {
			maxDeg = d
		}
		if d <= 2*m {
			nearMin++
		}
	}
	if avg := g.AvgDegree(); float64(maxDeg) < 5*avg {
		t.Fatalf("max degree %d not hub-like vs mean %.1f", maxDeg, avg)
	}
	if frac := float64(nearMin) / float64(g.N()); frac < 0.5 {
		t.Fatalf("only %.2f of nodes near the minimum degree; not a long tail", frac)
	}
}

func TestPreferentialAttachmentDeterministic(t *testing.T) {
	cfg := PreferentialAttachmentConfig{Nodes: 300, EdgesPerNode: 3, Seed: 4}
	if !PreferentialAttachment(cfg).Equal(PreferentialAttachment(cfg)) {
		t.Fatal("same seed produced different graphs")
	}
	cfg2 := cfg
	cfg2.Seed = 5
	if PreferentialAttachment(cfg).Equal(PreferentialAttachment(cfg2)) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestPreferentialAttachmentSmall(t *testing.T) {
	// m >= n-1 degenerates to a clique.
	g := PreferentialAttachment(PreferentialAttachmentConfig{Nodes: 4, EdgesPerNode: 10, Seed: 1})
	if got := g.NumUndirectedEdges(); got != 6 {
		t.Fatalf("clique edges = %d, want 6", got)
	}
}
