package graph

import (
	"math/rand"
	"testing"

	"gnnvault/internal/mat"
)

// Kernel micro-benchmarks for the serving hot loops: the sparse product
// over a power-law adjacency (gather-bound) and its fused-epilogue form.
// Run with:
//
//	go test -run '^$' -bench Kernel ./internal/graph/
func benchAdj(n int) *NormAdjacency {
	g := PreferentialAttachment(PreferentialAttachmentConfig{Nodes: n, EdgesPerNode: 8, Seed: 1})
	return Normalize(g)
}

func benchDense(rows, cols int) *mat.Matrix {
	rng := rand.New(rand.NewSource(2))
	m := mat.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func BenchmarkKernelSpMM(b *testing.B) {
	const n, d = 100_000, 64
	adj := benchAdj(n)
	h := benchDense(n, d)
	out := mat.New(n, d)
	b.SetBytes(int64(adj.NNZ()) * int64(d) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adj.MulDenseWorkersInto(out, h, 1)
	}
}

func BenchmarkKernelSpMMFused(b *testing.B) {
	const n, d = 100_000, 64
	adj := benchAdj(n)
	h := benchDense(n, d)
	bias := benchDense(1, d).Data
	out := mat.New(n, d)
	b.SetBytes(int64(adj.NNZ()) * int64(d) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adj.MulDenseBiasReLUInto(out, h, bias, nil, true, 1)
	}
}

func BenchmarkKernelMatMul(b *testing.B) {
	const n, k, p = 100_000, 64, 32
	a := benchDense(n, k)
	w := benchDense(k, p)
	out := mat.New(n, p)
	b.SetBytes(int64(n) * k * p * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MatMulWorkersInto(out, a, w, 1)
	}
}
