package metrics

import (
	"fmt"
	"math"
	"math/rand"

	"gnnvault/internal/mat"
)

// TSNEConfig parameterises the exact (O(n²)) t-SNE used to reproduce the
// latent-space panels of the paper's Fig. 4.
type TSNEConfig struct {
	Perplexity float64 // default 30
	LearnRate  float64 // default 100
	Iterations int     // default 300
	Seed       int64
}

// TSNE embeds the rows of x into 2-D with t-distributed stochastic
// neighbour embedding (van der Maaten & Hinton, 2008): Gaussian input
// affinities with per-point bandwidth calibrated to the target perplexity
// by bisection, Student-t output affinities, gradient descent with
// momentum and early exaggeration.
func TSNE(x *mat.Matrix, cfg TSNEConfig) *mat.Matrix {
	n := x.Rows
	if n == 0 {
		return mat.New(0, 2)
	}
	if cfg.Perplexity <= 0 {
		cfg.Perplexity = 30
	}
	if cfg.Perplexity > float64(n-1)/3 {
		cfg.Perplexity = math.Max(2, float64(n-1)/3)
	}
	if cfg.LearnRate <= 0 {
		cfg.LearnRate = 100
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 300
	}

	p := jointAffinities(x, cfg.Perplexity)
	rng := rand.New(rand.NewSource(cfg.Seed))
	y := mat.RandNormal(rng, n, 2, 0, 1e-4)

	gains := mat.New(n, 2)
	for i := range gains.Data {
		gains.Data[i] = 1
	}
	update := mat.New(n, 2)

	const exaggeration = 4.0
	exaggerated := true
	for i := range p.Data {
		p.Data[i] *= exaggeration
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		if exaggerated && iter >= cfg.Iterations/4 {
			for i := range p.Data {
				p.Data[i] /= exaggeration
			}
			exaggerated = false
		}
		momentum := 0.5
		if iter >= 50 {
			momentum = 0.8
		}
		grad := tsneGradient(p, y)
		for i := range y.Data {
			// Adaptive gains (standard t-SNE trick).
			if (grad.Data[i] > 0) != (update.Data[i] > 0) {
				gains.Data[i] += 0.2
			} else {
				gains.Data[i] *= 0.8
				if gains.Data[i] < 0.01 {
					gains.Data[i] = 0.01
				}
			}
			update.Data[i] = momentum*update.Data[i] - cfg.LearnRate*gains.Data[i]*grad.Data[i]
			y.Data[i] += update.Data[i]
		}
		centre(y)
	}
	return y
}

// jointAffinities returns the symmetrised input probabilities P with
// per-point σ chosen by bisection to hit the target perplexity.
func jointAffinities(x *mat.Matrix, perplexity float64) *mat.Matrix {
	n := x.Rows
	d2 := mat.New(n, n)
	for i := 0; i < n; i++ {
		xi := x.Row(i)
		for j := i + 1; j < n; j++ {
			dist := euclid(xi, x.Row(j))
			d2.Set(i, j, dist*dist)
			d2.Set(j, i, dist*dist)
		}
	}
	logU := math.Log(perplexity)
	p := mat.New(n, n)
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		beta := 1.0
		betaMin, betaMax := math.Inf(-1), math.Inf(1)
		for tries := 0; tries < 50; tries++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				if j == i {
					row[j] = 0
					continue
				}
				row[j] = math.Exp(-d2.At(i, j) * beta)
				sum += row[j]
			}
			if sum == 0 {
				sum = 1e-300
			}
			// Shannon entropy of the conditional distribution.
			h := 0.0
			for j := 0; j < n; j++ {
				if row[j] > 0 {
					pj := row[j] / sum
					h -= pj * math.Log(pj)
				}
			}
			diff := h - logU
			if math.Abs(diff) < 1e-5 {
				break
			}
			if diff > 0 { // entropy too high → sharpen
				betaMin = beta
				if math.IsInf(betaMax, 1) {
					beta *= 2
				} else {
					beta = (beta + betaMax) / 2
				}
			} else {
				betaMax = beta
				if math.IsInf(betaMin, -1) {
					beta /= 2
				} else {
					beta = (beta + betaMin) / 2
				}
			}
		}
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += row[j]
		}
		if sum == 0 {
			sum = 1e-300
		}
		for j := 0; j < n; j++ {
			p.Set(i, j, row[j]/sum)
		}
	}
	// Symmetrise and normalise to a joint distribution.
	total := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (p.At(i, j) + p.At(j, i)) / (2 * float64(n))
			v = math.Max(v, 1e-12)
			p.Set(i, j, v)
			p.Set(j, i, v)
			total += 2 * v
		}
		p.Set(i, i, 0)
	}
	_ = total
	return p
}

func tsneGradient(p, y *mat.Matrix) *mat.Matrix {
	n := y.Rows
	// Student-t numerators and their sum.
	num := mat.New(n, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		yi := y.Row(i)
		for j := i + 1; j < n; j++ {
			d := euclid(yi, y.Row(j))
			v := 1 / (1 + d*d)
			num.Set(i, j, v)
			num.Set(j, i, v)
			sum += 2 * v
		}
	}
	if sum == 0 {
		sum = 1e-300
	}
	grad := mat.New(n, 2)
	for i := 0; i < n; i++ {
		yi := y.Row(i)
		grow := grad.Row(i)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			q := math.Max(num.At(i, j)/sum, 1e-12)
			mult := 4 * (p.At(i, j) - q) * num.At(i, j)
			yj := y.Row(j)
			grow[0] += mult * (yi[0] - yj[0])
			grow[1] += mult * (yi[1] - yj[1])
		}
	}
	return grad
}

func centre(y *mat.Matrix) {
	var mx, my float64
	for i := 0; i < y.Rows; i++ {
		mx += y.At(i, 0)
		my += y.At(i, 1)
	}
	mx /= float64(y.Rows)
	my /= float64(y.Rows)
	for i := 0; i < y.Rows; i++ {
		y.Set(i, 0, y.At(i, 0)-mx)
		y.Set(i, 1, y.At(i, 1)-my)
	}
}

// TSNEToCSV renders 2-D coordinates plus labels as CSV lines ("x,y,label"),
// the artifact cmd/experiments emits for plotting Fig. 4's panels.
func TSNEToCSV(y *mat.Matrix, labels []int) string {
	if y.Cols != 2 || y.Rows != len(labels) {
		panic(fmt.Sprintf("metrics: TSNEToCSV wants Nx2 + labels, got %s + %d", y.Shape(), len(labels)))
	}
	out := "x,y,label\n"
	for i := 0; i < y.Rows; i++ {
		out += fmt.Sprintf("%.4f,%.4f,%d\n", y.At(i, 0), y.At(i, 1), labels[i])
	}
	return out
}
