// Package metrics provides the evaluation metrics of the paper's
// experiments: silhouette score for embedding-cluster quality (Fig. 4),
// ROC-AUC for link-stealing attack strength (Table IV), and an exact t-SNE
// implementation for latent-space visualisation.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"gnnvault/internal/mat"
)

// Silhouette returns the mean silhouette coefficient of the embedding rows
// of x grouped by labels, using Euclidean distance.
//
// For each point: a = mean intra-cluster distance, b = smallest mean
// distance to another cluster, s = (b-a)/max(a,b). Points in singleton
// clusters score 0 (scikit-learn convention).
func Silhouette(x *mat.Matrix, labels []int) float64 {
	n := x.Rows
	if len(labels) != n {
		panic(fmt.Sprintf("metrics: labels length %d != rows %d", len(labels), n))
	}
	if n == 0 {
		return 0
	}
	classes := 0
	for _, l := range labels {
		if l < 0 {
			panic("metrics: negative label")
		}
		if l+1 > classes {
			classes = l + 1
		}
	}
	if classes < 2 {
		return 0
	}
	counts := make([]int, classes)
	for _, l := range labels {
		counts[l]++
	}
	total := 0.0
	sums := make([]float64, classes)
	for i := 0; i < n; i++ {
		for c := range sums {
			sums[c] = 0
		}
		xi := x.Row(i)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[labels[j]] += euclid(xi, x.Row(j))
		}
		own := labels[i]
		if counts[own] <= 1 {
			continue // silhouette of a singleton is 0
		}
		a := sums[own] / float64(counts[own]-1)
		b := math.Inf(1)
		for c := 0; c < classes; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		d := math.Max(a, b)
		if d > 0 {
			total += (b - a) / d
		}
	}
	return total / float64(n)
}

func euclid(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// ROCAUC computes the area under the ROC curve for scores against binary
// labels (true = positive). Ties in scores are handled by the rank-sum
// (Mann-Whitney U) formulation with midranks.
func ROCAUC(scores []float64, positive []bool) float64 {
	if len(scores) != len(positive) {
		panic(fmt.Sprintf("metrics: ROCAUC length mismatch %d vs %d", len(scores), len(positive)))
	}
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })

	// Midranks over tied score groups.
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		r := float64(i+j-1)/2 + 1
		for k := i; k < j; k++ {
			ranks[idx[k]] = r
		}
		i = j
	}
	var nPos, nNeg int
	var rankSum float64
	for i, p := range positive {
		if p {
			nPos++
			rankSum += ranks[i]
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return 0.5
	}
	u := rankSum - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// ConfusionMatrix returns the classes×classes confusion counts
// (rows = true label, cols = predicted).
func ConfusionMatrix(pred, labels []int, classes int) [][]int {
	if len(pred) != len(labels) {
		panic("metrics: confusion matrix length mismatch")
	}
	cm := make([][]int, classes)
	for i := range cm {
		cm[i] = make([]int, classes)
	}
	for i := range pred {
		cm[labels[i]][pred[i]]++
	}
	return cm
}

// MacroF1 returns the unweighted mean of per-class F1 scores.
func MacroF1(pred, labels []int, classes int) float64 {
	cm := ConfusionMatrix(pred, labels, classes)
	total := 0.0
	for c := 0; c < classes; c++ {
		tp := cm[c][c]
		fp, fn := 0, 0
		for o := 0; o < classes; o++ {
			if o == c {
				continue
			}
			fp += cm[o][c]
			fn += cm[c][o]
		}
		if tp == 0 {
			continue
		}
		prec := float64(tp) / float64(tp+fp)
		rec := float64(tp) / float64(tp+fn)
		total += 2 * prec * rec / (prec + rec)
	}
	return total / float64(classes)
}
